// Package policyanon is a from-scratch Go implementation of
// "Policy-Aware Sender Anonymity in Location Based Services"
// (Deutsch, Hull, Vyas, Zhao — ICDE 2010).
//
// It provides sender k-anonymity for location-based-service requests that
// holds even against attackers who know the anonymization policy in use
// ("the design is not secret"), via the paper's polynomial-time optimal
// cloaking algorithm over quad-tree and binary semi-quadrant cloaks.
//
// The package is a facade over the implementation packages:
//
//   - the optimal policy-aware anonymizer (Anonymizer), with bulk
//     computation, policy extraction and incremental maintenance under
//     user movement;
//   - the prior-art k-inside baselines it is evaluated against (PUQ, PUB,
//     Casper, KSharing, circular cloaks);
//   - the attacker model (Audit, Candidates, IsKAnonymous) for both
//     policy-aware and policy-unaware attacker classes;
//   - parallel deployment over map jurisdictions (NewEngine, Partition);
//   - the privacy-conscious LBS pipeline (CSP, POIStore, POIProvider)
//     with cloaked nearest-neighbour evaluation and the request cache;
//   - a synthetic Bay-Area workload generator (GenerateWorkload).
//
// Quick start:
//
//	db := policyanon.NewLocationDB()
//	db.Add("alice", policyanon.Pt(120, 450))
//	// ... add the rest of the snapshot ...
//	anon, err := policyanon.NewAnonymizer(db, policyanon.Square(0, 0, 1<<17),
//	    policyanon.Options{K: 50})
//	policy, err := anon.Policy()          // optimal policy-aware cloaking
//	cloak, err := policy.CloakOf("alice") // the region sent to the LBS
//
// See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
// reproduced evaluation.
package policyanon

import (
	"context"
	"io"

	"policyanon/internal/attacker"
	"policyanon/internal/baseline"
	"policyanon/internal/checkpoint"
	"policyanon/internal/cluster"
	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/history"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
	"policyanon/internal/obs"
	"policyanon/internal/parallel"
	"policyanon/internal/roadnet"
	"policyanon/internal/rolling"
	"policyanon/internal/sim"
	"policyanon/internal/tree"
	"policyanon/internal/verify"
	"policyanon/internal/workload"
)

// Geometry.
type (
	// Point is a map location in integer meters.
	Point = geo.Point
	// Rect is an axis-aligned rectangular region (half-open), the cloak
	// shape of the quad-tree and binary-tree policies.
	Rect = geo.Rect
	// Circle is a circular cloak (Theorem 1's cloak family).
	Circle = geo.Circle
)

// Location database.
type (
	// LocationDB is one snapshot of the schema D = {userid, locx, locy}.
	LocationDB = location.DB
	// Record is one row of the location database.
	Record = location.Record
)

// LBS model.
type (
	// ServiceRequest is the precise request the CSP assembles (Def. 1).
	ServiceRequest = lbs.ServiceRequest
	// AnonymizedRequest is the cloaked request sent to the LBS (Def. 2).
	AnonymizedRequest = lbs.AnonymizedRequest
	// Param is one name-value pair of a request's parameter vector.
	Param = lbs.Param
	// Assignment is a cloaking policy for one snapshot: user -> cloak.
	Assignment = lbs.Assignment
	// Group is one cloaking group of an Assignment.
	Group = lbs.Group
	// POI is a point of interest served by the LBS provider.
	POI = lbs.POI
	// POIStore is the provider's spatial index.
	POIStore = lbs.POIStore
	// POIProvider answers anonymized requests from a POIStore.
	POIProvider = lbs.POIProvider
	// CSP is the trusted anonymizing front end with result cache.
	CSP = lbs.CSP
)

// Core algorithm.
type (
	// Anonymizer computes optimal policy-aware k-anonymous policies for
	// one snapshot and maintains them incrementally under movement.
	Anonymizer = core.Anonymizer
	// Options configures NewAnonymizer.
	Options = core.AnonymizerOptions
	// DPOptions exposes the ablation switches of the dynamic program.
	DPOptions = core.Options
	// TreeKind selects quad-tree or binary semi-quadrant cloaks.
	TreeKind = tree.Kind
)

// Attacker model.
type (
	// Awareness is the attacker class of Section III.
	Awareness = attacker.Awareness
	// Breach records a sender k-anonymity violation.
	Breach = attacker.Breach
	// FrequencyFinding is a Section VII counting-attack disclosure.
	FrequencyFinding = attacker.FrequencyFinding
	// TrajectoryObservation is one snapshot of a pinned request series
	// for the trajectory-aware attack (out of the paper's defence scope;
	// provided to demonstrate the limitation).
	TrajectoryObservation = attacker.TrajectoryObservation
)

// Parallel deployment.
type (
	// Engine runs per-jurisdiction anonymization servers.
	Engine = parallel.Engine
	// EngineOptions configures NewEngine.
	EngineOptions = parallel.Options
)

// Workload generation.
type (
	// WorkloadConfig parameterizes the synthetic Bay-Area generator.
	WorkloadConfig = workload.Config
	// Move is one user relocation between snapshots.
	Move = workload.Move
)

// Circular cloaks.
type (
	// CircleAssignment is a circular cloaking policy with centers from a
	// fixed set (Theorem 1's family).
	CircleAssignment = baseline.CircleAssignment
	// MBCAssignment is a free-center minimum-bounding-circle policy
	// (FindMBC [27]).
	MBCAssignment = baseline.MBCAssignment
)

// Attacker classes.
const (
	// PolicyUnaware attackers know only the cloak family (Prop. 2).
	PolicyUnaware = attacker.PolicyUnaware
	// PolicyAware attackers know the exact policy (the paper's threat).
	PolicyAware = attacker.PolicyAware
)

// Tree kinds.
const (
	// BinaryTree is the semi-quadrant tree of Section V (the default).
	BinaryTree = tree.Binary
	// QuadTree is the classical quad tree of [16].
	QuadTree = tree.Quad
)

// ErrInsufficientUsers is returned when a snapshot holds fewer than k
// users, in which case no policy can provide sender k-anonymity.
var ErrInsufficientUsers = core.ErrInsufficientUsers

// Pt builds a Point.
func Pt(x, y int32) Point { return Point{X: x, Y: y} }

// Square builds the square map region with the given origin and side.
func Square(x, y, side int32) Rect { return geo.NewRect(x, y, x+side, y+side) }

// NewLocationDB returns an empty location snapshot.
func NewLocationDB() *LocationDB { return location.New(0) }

// ReadLocationCSV parses a "userid,locx,locy" CSV snapshot.
func ReadLocationCSV(r io.Reader) (*LocationDB, error) { return location.ReadCSV(r) }

// NewAnonymizer builds the cloaking tree over the snapshot and runs the
// optimal policy-aware bulk anonymization (Theorem 2 / Algorithm 1 with
// the Section V optimizations).
func NewAnonymizer(db *LocationDB, bounds Rect, opt Options) (*Anonymizer, error) {
	return core.NewAnonymizer(db, bounds, opt)
}

// NewAnonymizerContext is NewAnonymizer with a context: when ctx carries a
// tracer (WithTracer), the build emits bulkdp.build, tree.build and
// bulkdp.combine spans, and later Policy/Update calls emit bulkdp.extract
// and bulkdp.update nested under the build. Without a tracer it behaves
// exactly like NewAnonymizer at zero overhead.
func NewAnonymizerContext(ctx context.Context, db *LocationDB, bounds Rect, opt Options) (*Anonymizer, error) {
	return core.NewAnonymizerContext(ctx, db, bounds, opt)
}

// PUQ computes the policy-unaware quad-tree baseline of [16].
func PUQ(db *LocationDB, bounds Rect, k int) (*Assignment, error) {
	return baseline.PUQ(db, bounds, k)
}

// PUB computes the policy-unaware binary-tree baseline.
func PUB(db *LocationDB, bounds Rect, k int) (*Assignment, error) {
	return baseline.PUB(db, bounds, k)
}

// Casper computes the basic Casper baseline of [23].
func Casper(db *LocationDB, bounds Rect, k int) (*Assignment, error) {
	return baseline.Casper(db, bounds, k)
}

// KSharing simulates a k-sharing anonymizer over a request sequence and
// returns one cloak per request; see the baseline package for the attack
// it admits.
func KSharing(db *LocationDB, k int, order []int) ([]Rect, error) {
	return baseline.KSharing(db, k, order)
}

// NearestCenterCircles computes the Fig. 6(b) circular policy: each user
// is cloaked by the minimal >= k-covering circle at her nearest center.
func NearestCenterCircles(db *LocationDB, centers []Point, k int) (*CircleAssignment, error) {
	return baseline.NearestCenterCircles(db, centers, k)
}

// OptimalCircular solves the NP-complete circular-cloak variant exactly
// (small instances only; Theorem 1).
func OptimalCircular(db *LocationDB, centers []Point, k int) (*CircleAssignment, error) {
	return baseline.OptimalCircular(db, centers, k)
}

// GreedyCircular is the polynomial circular-cloak heuristic.
func GreedyCircular(db *LocationDB, centers []Point, k int) (*CircleAssignment, error) {
	return baseline.GreedyCircular(db, centers, k)
}

// HilbertCloak computes the space-filling-curve bucketing of Kalnis et
// al. [17]: deterministic static groups of k..2k-1 users, policy-aware
// safe but not cost-optimal within any cloak family.
func HilbertCloak(db *LocationDB, bounds Rect, k int) (*Assignment, error) {
	return baseline.HilbertCloak(db, bounds, k)
}

// FindMBC computes the per-user minimum-bounding-circle cloaking of
// Xu–Cai [27]; k-inside but policy-aware breached (its cloaking groups
// are near-singletons).
func FindMBC(db *LocationDB, bounds Rect, k int) (*MBCAssignment, error) {
	return baseline.FindMBC(db, bounds, k)
}

// Audit checks sender k-anonymity of a policy against the given attacker
// class and returns all breaches with the minimum candidate-set size.
func Audit(a *Assignment, k int, aw Awareness) ([]Breach, int) {
	return attacker.Audit(a, k, aw)
}

// IsKAnonymous reports whether the policy provides sender k-anonymity on
// its snapshot against the given attacker class (Definition 6).
func IsKAnonymous(a *Assignment, k int, aw Awareness) bool {
	return attacker.IsKAnonymous(a, k, aw)
}

// Candidates returns the possible senders of a request with the given
// cloak, as computed by the attack function of Section III.
func Candidates(a *Assignment, cloak Rect, aw Awareness) []string {
	return attacker.Candidates(a, cloak, aw)
}

// VerifyReport is the outcome of the full defence-in-depth verification.
type VerifyReport = verify.Report

// Verify re-derives every promised property of a policy from first
// principles — masking, sender k-anonymity against both attacker classes,
// and the explicit Definition 6 PRE witness. Operational surfaces should
// verify rather than trust.
func Verify(a *Assignment, k int) *VerifyReport { return verify.Policy(a, k) }

// FrequencyAttack replays the Section VII counting attack over a provider
// log; the CSP result cache is the defence.
func FrequencyAttack(a *Assignment, log []AnonymizedRequest) []FrequencyFinding {
	return attacker.FrequencyAttack(a, log)
}

// TrajectoryCandidates intersects per-snapshot candidate sets for a
// request series known to come from one user, demonstrating that
// per-snapshot k-anonymity does not compose over time (the future-work
// attacker of Section I).
func TrajectoryCandidates(series []TrajectoryObservation) []string {
	return attacker.TrajectoryCandidates(series)
}

// MultiKPolicy computes a policy-aware anonymous policy with per-user
// anonymity levels ks (a sound, conservative realization of the paper's
// user-specified-k future work; see internal/core for the construction).
func MultiKPolicy(db *LocationDB, bounds Rect, ks []int, opt Options) (*Assignment, error) {
	return core.MultiKPolicy(db, bounds, ks, opt)
}

// MultiKAudit returns the indices of users whose requested anonymity the
// assignment fails to deliver (empty means the guarantee holds).
func MultiKAudit(a *Assignment, ks []int) []int { return core.MultiKAudit(a, ks) }

// NewEngine partitions the map into jurisdictions and anonymizes them in
// parallel (Section V, "Parallel Anonymization").
func NewEngine(db *LocationDB, bounds Rect, opt EngineOptions) (*Engine, error) {
	return parallel.NewEngine(db, bounds, opt)
}

// NewEngineContext is NewEngine with a context: a ctx-carried tracer
// records parallel.build, parallel.partition and one parallel.worker lane
// per jurisdiction server.
func NewEngineContext(ctx context.Context, db *LocationDB, bounds Rect, opt EngineOptions) (*Engine, error) {
	return parallel.NewEngineContext(ctx, db, bounds, opt)
}

// Partition returns the greedy jurisdiction partition without running the
// anonymizers.
func Partition(db *LocationDB, bounds Rect, k, n int) ([]Rect, error) {
	return parallel.Partition(db, bounds, k, n)
}

// GenerateWorkload produces a deterministic synthetic Bay-Area snapshot.
func GenerateWorkload(cfg WorkloadConfig, seed int64) *LocationDB {
	return workload.Generate(cfg, seed)
}

// DefaultMapSide is the default square map side of the synthetic workload
// (2^17 m, about the extent of the San Francisco Bay Area).
const DefaultMapSide = workload.DefaultMapSide

// NewPOIStore indexes points of interest for the LBS provider.
func NewPOIStore(pois []POI, bounds Rect, cellSide int32) (*POIStore, error) {
	return lbs.NewPOIStore(pois, bounds, cellSide)
}

// NewPOIProvider wraps a store as an answering, logging LBS provider.
func NewPOIProvider(store *POIStore) *POIProvider { return lbs.NewPOIProvider(store) }

// NewCSP wires a policy to a provider with the Section VII result cache.
func NewCSP(policy *Assignment, provider lbs.Provider) *CSP {
	return lbs.NewCSP(policy, provider)
}

// FilterNearest is the client-side refinement of a candidate answer set.
func FilterNearest(cands []POI, loc Point) (POI, bool) { return lbs.FilterNearest(cands, loc) }

// NewAssignment wraps explicit per-record cloaks as a policy, verifying
// the masking property (Definition 4). Most callers should use
// Anonymizer.Policy instead.
func NewAssignment(db *LocationDB, cloaks []Rect) (*Assignment, error) {
	return lbs.NewAssignment(db, cloaks)
}

// Serving-path and operations layer.
type (
	// RollingAnonymizer serves lock-free cloak lookups while the next
	// snapshot's policy is maintained and swapped atomically.
	RollingAnonymizer = rolling.Anonymizer
	// RollingStats reports a rolling commit.
	RollingStats = rolling.Stats
	// SimConfig parameterizes the end-to-end LBS ecosystem simulation.
	SimConfig = sim.Config
	// SimReport is a simulation outcome.
	SimReport = sim.Report
	// ClusterCoordinator drives a pool of HTTP anonymization servers.
	ClusterCoordinator = cluster.Coordinator
	// CheckpointState is a restored (snapshot, policy) pair.
	CheckpointState = checkpoint.State
	// RoadNetwork is a Brinkhoff-style road graph for network movement.
	RoadNetwork = roadnet.Network
	// RoadAgents is a population moving on a road network.
	RoadAgents = roadnet.Agents
)

// NewRollingAnonymizer computes and publishes the initial policy and
// takes ownership of db.
func NewRollingAnonymizer(db *LocationDB, bounds Rect, k int) (*RollingAnonymizer, error) {
	return rolling.New(db, bounds, k)
}

// RunSimulation executes the discrete-event LBS ecosystem simulation.
func RunSimulation(cfg SimConfig) (*SimReport, error) { return sim.Run(cfg) }

// NewCluster returns a coordinator over anonymization-server base URLs.
func NewCluster(workers []string) (*ClusterCoordinator, error) {
	return cluster.New(workers, nil)
}

// SaveCheckpoint serializes a (k, bounds, policy) state with integrity
// protection.
func SaveCheckpoint(w io.Writer, k int, bounds Rect, policy *Assignment) error {
	return checkpoint.Save(w, k, bounds, policy)
}

// LoadCheckpoint restores and safety-revalidates a checkpoint.
func LoadCheckpoint(r io.Reader) (*CheckpointState, error) { return checkpoint.Load(r) }

// BuildRoadNetwork connects intersections into a road graph for the
// network-based moving-objects model (the paper's dataset source [8]).
func BuildRoadNetwork(intersections []Point, bounds Rect, degree int) (*RoadNetwork, error) {
	return roadnet.BuildNetwork(intersections, bounds, degree)
}

// NewRoadAgents places n agents on the network, deterministically from
// the seed.
func NewRoadAgents(net *RoadNetwork, n int, seed int64) (*RoadAgents, error) {
	return roadnet.NewAgents(net, n, seed)
}

// AdaptivePolicy computes the optimal policy over the adaptive-orientation
// cloak family the paper sketches in Section V (each square chooses
// vertical or horizontal semi-quadrants at run time); its cost is never
// worse than the static binary tree's optimum.
func AdaptivePolicy(db *LocationDB, bounds Rect, k int) (*Assignment, error) {
	return core.AdaptivePolicy(db, bounds, k, core.Options{})
}

// History of (snapshot, policy) epochs — the attacker's "sequence of
// location databases" made concrete.
type (
	// HistoryWriter appends checkpoint-encoded epochs to a stream.
	HistoryWriter = history.Writer
	// HistoryReader iterates stored epochs.
	HistoryReader = history.Reader
)

// NewHistoryWriter wraps a destination stream for epoch recording.
func NewHistoryWriter(w io.Writer) *HistoryWriter { return history.NewWriter(w) }

// ReadHistory loads every stored epoch.
func ReadHistory(r io.Reader) ([]*CheckpointState, error) { return history.ReadAll(r) }

// ReplayTrajectory runs the trajectory-aware attack over stored epochs for
// a pinned user and returns the intersected candidate set.
func ReplayTrajectory(states []*CheckpointState, userID string) ([]string, error) {
	return history.ReplayTrajectory(states, userID)
}

// Observability layer: hierarchical phase tracing and metrics. A Tracer
// rides in a context (WithTracer) and every traced operation — bulk
// anonymization, incremental maintenance, parallel workers, cluster shard
// RPCs, the CSP serve path — records spans into it; export them as a
// Chrome trace_event file (Tracer.WriteChromeTrace), an aggregated phase
// table (Tracer.WritePhaseTable), or Prometheus text exposition via a
// MetricsRegistry (Tracer.SetRegistry + Registry.WritePrometheus). A
// context without a tracer costs nothing. See docs/OBSERVABILITY.md.
type (
	// Tracer collects hierarchical timing spans from traced operations.
	Tracer = obs.Tracer
	// Span is one timed phase; it is nil-safe, so untraced paths pay
	// nothing.
	Span = obs.Span
	// PhaseStat is one row of the aggregated per-phase timing summary.
	PhaseStat = obs.PhaseStat
	// MetricsRegistry holds named counters and latency histograms and
	// serves them as JSON or Prometheus text exposition.
	MetricsRegistry = metrics.Registry
)

// NewTracer returns an empty tracer ready to attach with WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// WithTracer returns a context whose traced operations record spans into
// tr. Library calls that take a context (NewAnonymizerContext,
// NewEngineContext, cluster and CSP paths) pick it up automatically.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return obs.WithTracer(ctx, tr)
}

// StartSpan opens an application-level span under the context's current
// span, for bracketing caller code in the same trace; it returns the
// unmodified context and a nil span when the context carries no tracer.
// End the span with Span.End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.Start(ctx, name)
}

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Unified engine layer: every anonymization algorithm in the module — the
// optimal policy-aware anonymizer, its ablations and extensions, the
// k-inside baselines, and the parallel deployment — is registered behind
// one name-keyed interface. Consumers select algorithms by name
// (GetEngine, EngineNames) instead of linking concrete constructors; the
// middleware in internal/engine adds tracing, metrics, post-hoc
// verification and per-snapshot caching uniformly. See docs/ENGINES.md.
//
// Note: Engine (above) remains the Section V parallel deployment for
// compatibility; the algorithm interface is PolicyEngine.
type (
	// PolicyEngine is the uniform anonymization-algorithm interface.
	PolicyEngine = engine.Engine
	// EngineParams carries per-call parameters (k, per-user ks, options).
	EngineParams = engine.Params
	// EngineInfo describes a registered engine's capabilities.
	EngineInfo = engine.Info
	// EngineRegistry is a name-keyed engine collection; most callers use
	// the package-level default registry via GetEngine / RegisterEngine.
	EngineRegistry = engine.Registry
	// EngineMiddleware decorates a PolicyEngine (tracing, metrics,
	// verification, caching).
	EngineMiddleware = engine.Middleware
)

// DefaultEngineName names the engine used when no selection is made: the
// paper's optimal policy-aware anonymizer over binary semi-quadrant
// cloaks.
const DefaultEngineName = engine.DefaultName

// ErrUnknownEngine is wrapped by GetEngine for unregistered names.
var ErrUnknownEngine = engine.ErrUnknownEngine

// GetEngine resolves a registered engine by name ("bulkdp-binary",
// "casper", "hilbert", ...; see EngineNames).
func GetEngine(name string) (PolicyEngine, error) { return engine.Get(name) }

// EngineNames lists the registered engine names, sorted.
func EngineNames() []string { return engine.Names() }

// EngineInfos lists the registered engines with capability flags, sorted
// by name.
func EngineInfos() []EngineInfo { return engine.Infos() }

// RegisterEngine adds an engine to the default registry, e.g. a caller's
// own algorithm so that benches and servers can sweep it by name.
func RegisterEngine(info EngineInfo, e PolicyEngine) error {
	return engine.Register(info, e)
}

// NewEngineFunc wraps a plain function as a named PolicyEngine.
func NewEngineFunc(name string, fn func(ctx context.Context, db *LocationDB, bounds Rect, p EngineParams) (*Assignment, error)) PolicyEngine {
	return engine.New(name, fn)
}

// AnonymizeWith resolves name in the default registry and runs it with
// tracing enabled (spans appear when ctx carries a Tracer). It is the
// one-call path for engine-agnostic callers:
//
//	policy, err := policyanon.AnonymizeWith(ctx, "casper", db, bounds, 50)
func AnonymizeWith(ctx context.Context, name string, db *LocationDB, bounds Rect, k int) (*Assignment, error) {
	e, err := engine.Get(name)
	if err != nil {
		return nil, err
	}
	return engine.Wrap(e, engine.WithTracing()).Anonymize(ctx, db, bounds, EngineParams{K: k})
}
