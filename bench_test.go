// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI), plus the ablations called out in DESIGN.md §6
// and the micro-benchmarks of the Section VII discussion (cloak lookup,
// cloaked nearest-neighbour query).
//
// Each benchmark runs at a reduced default scale so `go test -bench=.`
// finishes quickly; the full paper-scale sweep (to 1.75M users) is
// available via `go run ./cmd/lbsbench -scale paper`. EXPERIMENTS.md
// records paper-vs-measured for both scales.
package policyanon

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/baseline"
	"policyanon/internal/core"
	"policyanon/internal/experiments"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/parallel"
	"policyanon/internal/tree"
	"policyanon/internal/workload"
)

const benchK = 50

var (
	benchOnce    sync.Once
	benchDataset experiments.Dataset
)

// benchData lazily generates a shared ~50k-user synthetic snapshot.
func benchData() experiments.Dataset {
	benchOnce.Do(func() {
		benchDataset = experiments.NewDataset(workload.Config{
			MapSide: 1 << 15, Intersections: 10000, UsersPerIntersection: 5, SpreadSigma: 150,
		}, 42)
	})
	return benchDataset
}

func benchSample(b *testing.B, n int) *location.DB {
	b.Helper()
	db, err := benchData().Sample(n)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkTable1Example regenerates the Table I / Example 1 scenario:
// anonymize the five-user database both ways and audit the breach.
func BenchmarkTable1Example(b *testing.B) {
	recs := []location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 5}},
		{UserID: "Sam", Loc: geo.Point{X: 5, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 6, Y: 2}},
	}
	bounds := geo.NewRect(0, 0, 8, 8)
	for i := 0; i < b.N; i++ {
		db, err := location.FromRecords(recs)
		if err != nil {
			b.Fatal(err)
		}
		puq, err := baseline.PUQ(db, bounds, 2)
		if err != nil {
			b.Fatal(err)
		}
		if breaches, _ := attacker.Audit(puq, 2, attacker.PolicyAware); len(breaches) != 1 {
			b.Fatal("Example 1 breach not reproduced")
		}
		anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		pol, err := anon.Policy()
		if err != nil {
			b.Fatal(err)
		}
		if !attacker.IsKAnonymous(pol, 2, attacker.PolicyAware) {
			b.Fatal("optimal policy breached")
		}
	}
}

// BenchmarkFig2MasterGeneration regenerates the synthetic intersection-
// derived location data of Figure 2.
func BenchmarkFig2MasterGeneration(b *testing.B) {
	cfg := workload.Config{MapSide: 1 << 15, Intersections: 5000, UsersPerIntersection: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := workload.Generate(cfg, int64(i))
		if db.Len() != 50000 {
			b.Fatal("bad size")
		}
	}
}

// BenchmarkFig3TreeShape builds the lazy binary cloaking tree (Figure 3).
func BenchmarkFig3TreeShape(b *testing.B) {
	for _, n := range []int{10000, 25000, 50000} {
		db := benchSample(b, n)
		pts := db.Points()
		b.Run(fmt.Sprintf("D=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var height int
			for i := 0; i < b.N; i++ {
				t, err := tree.Build(pts, benchData().Bounds, tree.Options{
					Kind: tree.Binary, MinCountToSplit: benchK,
				})
				if err != nil {
					b.Fatal(err)
				}
				height = t.Stats().MaxHeight
			}
			b.ReportMetric(float64(height), "tree-height")
		})
	}
}

// BenchmarkFig4aBulkTime measures bulk anonymization over |D| and server
// pool size (Figure 4a).
func BenchmarkFig4aBulkTime(b *testing.B) {
	for _, n := range []int{10000, 25000, 50000} {
		for _, servers := range []int{1, 4, 16} {
			db := benchSample(b, n)
			b.Run(fmt.Sprintf("D=%d/servers=%d", n, servers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng, err := parallel.NewEngine(db, benchData().Bounds,
						parallel.Options{K: benchK, Servers: servers})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.TotalCost(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4bVaryK measures bulk anonymization across k (Figure 4b).
func BenchmarkFig4bVaryK(b *testing.B) {
	db := benchSample(b, 50000)
	for _, k := range []int{10, 25, 50, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: k})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := anon.OptimalCost(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5aCostOverhead runs the four policies of Figure 5(a) and
// reports the policy-aware/Casper average-area ratio as a custom metric.
func BenchmarkFig5aCostOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5a(benchData(), []int{25000}, benchK)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].RatioToCasper
	}
	b.ReportMetric(ratio, "PA/Casper-ratio")
}

// BenchmarkFig5bIncremental measures incremental maintenance per snapshot
// at varying movement rates (Figure 5b). Each iteration applies one
// snapshot's worth of movement and refreshes the matrix.
func BenchmarkFig5bIncremental(b *testing.B) {
	for _, pct := range []float64{0.001, 0.01, 0.05} {
		b.Run(fmt.Sprintf("move=%.1f%%", 100*pct), func(b *testing.B) {
			db := benchSample(b, 50000).Clone()
			anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				moves := workload.PlanMoves(rng, db, pct, 200, benchData().Bounds.MaxX)
				for _, mv := range moves {
					if err := anon.Move(mv.Index, mv.To); err != nil {
						b.Fatal(err)
					}
				}
				anon.Refresh()
			}
		})
	}
}

// BenchmarkFig5bBulkRecompute is the Figure 5(b) reference: full
// recomputation of the same snapshot.
func BenchmarkFig5bBulkRecompute(b *testing.B) {
	db := benchSample(b, 50000)
	for i := 0; i < b.N; i++ {
		anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := anon.OptimalCost(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelUtilityLoss reproduces the Section VI-D stress test and
// reports the divergence from the single-server optimum as a metric.
func BenchmarkParallelUtilityLoss(b *testing.B) {
	var div float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ParallelUtility(benchData(), 50000, benchK, []int{64})
		if err != nil {
			b.Fatal(err)
		}
		div = rows[0].DivergencePct
	}
	b.ReportMetric(div, "divergence-%")
}

// BenchmarkCloakLookup measures per-request cloak lookup under a computed
// policy — the paper reports 0.3-0.5 ms per lookup; a map-backed policy
// should be far below that.
func BenchmarkCloakLookup(b *testing.B) {
	db := benchSample(b, 50000)
	anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, db.Len())
	for i := range ids {
		ids[i] = db.At(i).UserID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.CloakOf(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCloakedNN measures the LBS-side candidate nearest-neighbour
// query over a 10k-POI store (the Section VII comparison with Casper's
// reported 2 ms per query).
func BenchmarkCloakedNN(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	side := int32(1 << 15)
	pois := make([]lbs.POI, 10000)
	for i := range pois {
		pois[i] = lbs.POI{
			ID: fmt.Sprintf("p%d", i), Loc: geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)},
			Category: "gas",
		}
	}
	store, err := lbs.NewPOIStore(pois, geo.NewRect(0, 0, side, side), 0)
	if err != nil {
		b.Fatal(err)
	}
	db := benchSample(b, 50000)
	anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloak := pol.CloakAt(i % db.Len())
		if got := store.CandidateNearest(cloak, "gas"); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkCircularExactVsGreedy exhibits the Theorem 1 hardness gap: the
// exact solver is exponential in |D| while the greedy heuristic stays
// polynomial.
func BenchmarkCircularExactVsGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	mk := func(n int) (*location.DB, []geo.Point) {
		db := location.New(n)
		for i := 0; i < n; i++ {
			if err := db.Add(fmt.Sprintf("u%d", i),
				geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}); err != nil {
				b.Fatal(err)
			}
		}
		centers := []geo.Point{{X: 64, Y: 64}, {X: 192, Y: 64}, {X: 128, Y: 192}}
		return db, centers
	}
	for _, n := range []int{8, 12, 14} {
		db, centers := mk(n)
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.OptimalCircular(db, centers, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("greedy/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.GreedyCircular(db, centers, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations of the Section V design choices (DESIGN.md §6). ---

// BenchmarkAblationQuadVsBinary compares the dynamic program over quad
// and binary trees at equal k.
func BenchmarkAblationQuadVsBinary(b *testing.B) {
	db := benchSample(b, 25000)
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{
					K: benchK, Kind: kind,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := anon.OptimalCost(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPruning toggles the Lemma 5 pass-up bound.
func BenchmarkAblationPruning(b *testing.B) {
	db := benchSample(b, 25000)
	for _, opt := range []struct {
		name string
		dp   core.Options
	}{{"pruned", core.Options{}}, {"unpruned", core.Options{NoPrune: true}}} {
		b.Run(opt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{
					K: benchK, DP: opt.dp,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := anon.OptimalCost(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTempMatrix toggles the two-stage temp-profile combine
// against the first-cut tuple enumeration.
func BenchmarkAblationTempMatrix(b *testing.B) {
	db := benchSample(b, 25000)
	for _, opt := range []struct {
		name string
		dp   core.Options
	}{{"two-stage", core.Options{}}, {"naive-combine", core.Options{NaiveCombine: true}}} {
		b.Run(opt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{
					K: benchK, DP: opt.dp,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := anon.OptimalCost(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLazyTree compares the lazy materialization rule with an
// eagerly materialized tree of bounded depth.
func BenchmarkAblationLazyTree(b *testing.B) {
	db := benchSample(b, 25000)
	pts := db.Points()
	for _, opt := range []struct {
		name  string
		split int
		depth int
	}{{"lazy", benchK, 0}, {"eager-depth14", 1, 14}} {
		b.Run(opt.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t, err := tree.Build(pts, benchData().Bounds, tree.Options{
					Kind: tree.Binary, MinCountToSplit: opt.split, MaxDepth: opt.depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				m, err := core.NewMatrix(t, benchK, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.OptimalCost(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
