// Benchmarks for the systems beyond the paper's evaluation: the attacker
// tooling, the user-specified-k extension, the road-network workload, the
// ecosystem simulation, and checkpointing.
package policyanon

import (
	"bytes"
	"math/rand"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/checkpoint"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/roadnet"
	"policyanon/internal/sim"
	"policyanon/internal/tree"
)

// BenchmarkAuditPolicyAware measures the full-policy anonymity audit the
// CSP would run before installing a policy (grid-accelerated).
func BenchmarkAuditPolicyAware(b *testing.B) {
	db := benchSample(b, 50000)
	anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, aw := range []attacker.Awareness{attacker.PolicyAware, attacker.PolicyUnaware} {
			if breaches, _ := attacker.Audit(pol, benchK, aw); len(breaches) != 0 {
				b.Fatal("optimal policy breached")
			}
		}
	}
}

// BenchmarkFrequencyAttack measures the Section VII counting attack over a
// snapshot-sized provider log.
func BenchmarkFrequencyAttack(b *testing.B) {
	db := benchSample(b, 25000)
	anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	log := make([]lbs.AnonymizedRequest, 2000)
	params := []lbs.Param{{Name: "cat", Value: "gas"}}
	for i := range log {
		log[i] = lbs.AnonymizedRequest{
			RID: uint64(i), Cloak: pol.CloakAt(rng.Intn(db.Len())), Params: params,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attacker.FrequencyAttack(pol, log)
	}
}

// BenchmarkMultiK measures the user-specified-k extension against flat k.
func BenchmarkMultiK(b *testing.B) {
	db := benchSample(b, 25000)
	ks := make([]int, db.Len())
	for i := range ks {
		ks[i] = []int{20, 50, 100}[i%3]
	}
	b.Run("per-user-k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MultiKPolicy(db, benchData().Bounds, ks, core.AnonymizerOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat-kmax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: 100})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := anon.Matrix().Extract(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoadnetStep measures one snapshot interval of network movement
// for a metropolitan population.
func BenchmarkRoadnetStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geo.Point, 20000)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Int31n(1 << 15), Y: rng.Int31n(1 << 15)}
	}
	net, err := roadnet.BuildNetwork(pts, geo.NewRect(0, 0, 1<<15, 1<<15), 3)
	if err != nil {
		b.Fatal(err)
	}
	agents, err := roadnet.NewAgents(net, 50000, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agents.Step(10)
	}
}

// BenchmarkSimSnapshot measures one full ecosystem snapshot: movement,
// incremental maintenance, request serving, and attack replay.
func BenchmarkSimSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := sim.Run(sim.Config{Users: 5000, K: 25, Snapshots: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if rep.BreachedSnapshots != 0 {
			b.Fatal("simulation breached")
		}
	}
}

// BenchmarkCheckpoint measures policy state save/load round trips.
func BenchmarkCheckpoint(b *testing.B) {
	db := benchSample(b, 25000)
	anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		b.Fatal(err)
	}
	var size int
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := checkpoint.Save(&buf, benchK, benchData().Bounds, pol); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
		}
		b.ReportMetric(float64(size), "bytes")
	})
	var blob bytes.Buffer
	if err := checkpoint.Save(&blob, benchK, benchData().Bounds, pol); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := checkpoint.Load(bytes.NewReader(blob.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdaptiveOrientation compares the static vertical binary
// tree with the adaptive-orientation DP (Section V's sketched variant):
// roughly twice the combine work for a cost that is never worse. The cost
// improvement is reported as a custom metric.
func BenchmarkAblationAdaptiveOrientation(b *testing.B) {
	db := benchSample(b, 25000)
	var staticCost, adaptiveCost int64
	b.Run("static-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			anon, err := core.NewAnonymizer(db, benchData().Bounds, core.AnonymizerOptions{K: benchK})
			if err != nil {
				b.Fatal(err)
			}
			c, err := anon.OptimalCost()
			if err != nil {
				b.Fatal(err)
			}
			staticCost = c
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, err := tree.Build(db.Points(), benchData().Bounds, tree.Options{
				Kind: tree.Quad, MinCountToSplit: benchK,
			})
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewAdaptiveMatrix(t, benchK, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			c, err := m.OptimalCost()
			if err != nil {
				b.Fatal(err)
			}
			adaptiveCost = c
		}
		if staticCost > 0 {
			b.ReportMetric(float64(adaptiveCost)/float64(staticCost), "adaptive/static-cost")
		}
	})
}
