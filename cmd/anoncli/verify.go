package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"policyanon/internal/ledger"
)

// verifyLedger implements the verify-ledger subcommand: an offline
// replay of an anonserver ledger anchor file that fails on any mutation
// of the sealed audit history.
func verifyLedger(args []string) error {
	fs := flag.NewFlagSet("verify-ledger", flag.ExitOnError)
	anchor := fs.String("anchor", "", "ledger anchor file to verify (required)")
	pubkey := fs.String("pubkey", "", "hex ed25519 public key to pin (optional; default trusts the file's own keys)")
	quiet := fs.Bool("q", false, "suppress the summary; exit status only")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *anchor == "" {
		fs.Usage()
		return fmt.Errorf("-anchor is required")
	}
	var pin ed25519.PublicKey
	if *pubkey != "" {
		raw, err := hex.DecodeString(*pubkey)
		if err != nil {
			return fmt.Errorf("bad -pubkey: %w", err)
		}
		if len(raw) != ed25519.PublicKeySize {
			return fmt.Errorf("bad -pubkey: %d bytes, want %d", len(raw), ed25519.PublicKeySize)
		}
		pin = ed25519.PublicKey(raw)
	}
	res, err := ledger.VerifyAnchorFile(*anchor, pin)
	if err != nil {
		return err
	}
	if !*quiet {
		printVerifyResult(os.Stdout, *anchor, res)
	}
	return nil
}

func printVerifyResult(w io.Writer, path string, res *ledger.VerifyResult) {
	fmt.Fprintf(w, "anoncli: %s OK: %d batches, %d events\n", path, res.Batches, res.Events)
	kinds := make([]string, 0, len(res.ByKind))
	for k := range res.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-16s %d\n", k, res.ByKind[ledger.Kind(k)])
	}
	cp := res.LastCheckpoint
	fmt.Fprintf(w, "  chain head: batch %d, root %s, sealed %d\n", cp.BatchSeq, cp.ChainRoot, cp.SealedMs)
	for _, pk := range res.PublicKeys {
		fmt.Fprintf(w, "  signed by: %s\n", pk)
	}
}
