// Command anoncli bulk-anonymizes a location snapshot: it reads a CSV
// location database (userid,locx,locy), computes a sender k-anonymous
// cloaking policy with the selected engine, and writes the per-user
// cloaks as CSV (userid,minx,miny,maxx,maxy).
//
// Usage:
//
//	datagen -intersections 5000 -out snap.csv
//	anoncli -in snap.csv -k 50 -out cloaks.csv
//	anoncli -in snap.csv -k 50 -engine casper -out cloaks.csv
//	anoncli -list-engines
//	anoncli verify-ledger -anchor audit.ledger
//
// The verify-ledger subcommand replays an anonserver -ledger-anchor file
// offline: it recomputes every event leaf hash, Merkle batch root, and
// chain link, and checks every checkpoint signature. Any mutation of the
// sealed history — a flipped byte, a dropped or reordered event, an
// excised batch, a torn tail — fails with a nonzero exit. -pubkey HEX
// additionally pins the expected signing key.
//
// Observability: -trace FILE writes a Chrome trace_event JSON file of the
// run's phase spans (open it in chrome://tracing or https://ui.perfetto.dev);
// -phase-summary prints an aggregated per-phase timing table to stderr.
// See docs/OBSERVABILITY.md for the span taxonomy and docs/ENGINES.md for
// the engine registry.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/obs"
	_ "policyanon/internal/parallel" // register the "parallel" engine
	"policyanon/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "verify-ledger" {
		if err := verifyLedger(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "anoncli: verify-ledger:", err)
			os.Exit(1)
		}
		return
	}
	var (
		in       = flag.String("in", "-", "input CSV ('-' for stdin)")
		out      = flag.String("out", "-", "output CSV ('-' for stdout)")
		k        = flag.Int("k", 50, "anonymity parameter k")
		engName  = flag.String("engine", engine.DefaultName, "anonymization engine (see -list-engines)")
		list     = flag.Bool("list-engines", false, "list registered engines and exit")
		mapSide  = flag.Int("mapside", int(workload.DefaultMapSide), "square map side (meters)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		phases   = flag.Bool("phase-summary", false, "print per-phase timing table to stderr")
	)
	flag.Parse()
	if *list {
		listEngines(os.Stdout)
		return
	}
	if err := run(*in, *out, *k, *engName, int32(*mapSide), *traceOut, *phases); err != nil {
		fmt.Fprintln(os.Stderr, "anoncli:", err)
		os.Exit(1)
	}
}

// listEngines prints the registry, one engine per line, default first
// column marked with '*'.
func listEngines(w io.Writer) {
	for _, info := range engine.Infos() {
		marker := " "
		if info.Name == engine.DefaultName {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-14s policy-aware=%-5t incremental=%-5t %s\n",
			marker, info.Name, info.PolicyAware, info.Incremental, info.Description)
	}
}

func run(in, out string, k int, engName string, mapSide int32, traceOut string, phases bool) error {
	eng, err := engine.Get(engName)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if traceOut != "" || phases {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	r := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	db, err := location.ReadCSV(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		return err
	}
	bounds := geo.NewRect(0, 0, mapSide, mapSide)
	start := time.Now()
	policy, err := engine.Wrap(eng, engine.WithTracing()).Anonymize(ctx, db, bounds, engine.Params{K: k})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := csv.NewWriter(bw)
	for i := 0; i < db.Len(); i++ {
		c := policy.CloakAt(i)
		rec := []string{
			db.At(i).UserID,
			strconv.FormatInt(int64(c.MinX), 10), strconv.FormatInt(int64(c.MinY), 10),
			strconv.FormatInt(int64(c.MaxX), 10), strconv.FormatInt(int64(c.MaxY), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"anoncli: anonymized %d users with %s k=%d in %v (cost %d, avg cloak %.0f m^2)\n",
		db.Len(), engName, k, elapsed.Round(time.Millisecond), policy.Cost(), policy.AvgArea())
	if phases {
		if err := tracer.WritePhaseTable(os.Stderr); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "anoncli: trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
	return nil
}
