package main

import (
	"context"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/ledger"
	"policyanon/internal/location"
	"policyanon/internal/workload"
)

func writeSnapshot(t *testing.T, path string, n int) *location.DB {
	t.Helper()
	db := workload.Generate(workload.Config{
		MapSide: 1 << 12, Intersections: n / 4, UsersPerIntersection: 4, SpreadSigma: 50,
	}, 5)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := db.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunAnonymizesCSV(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	db := writeSnapshot(t, in, 400)
	const k = 10
	if err := run(in, out, k, engine.DefaultName, 1<<12, "", false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != db.Len() {
		t.Fatalf("wrote %d cloaks for %d users", len(rows), db.Len())
	}
	groupSize := make(map[geo.Rect]int)
	cloakOf := make(map[string]geo.Rect)
	for _, row := range rows {
		if len(row) != 5 {
			t.Fatalf("bad row %v", row)
		}
		minx, _ := strconv.ParseInt(row[1], 10, 32)
		miny, _ := strconv.ParseInt(row[2], 10, 32)
		maxx, _ := strconv.ParseInt(row[3], 10, 32)
		maxy, _ := strconv.ParseInt(row[4], 10, 32)
		r := geo.NewRect(int32(minx), int32(miny), int32(maxx), int32(maxy))
		groupSize[r]++
		cloakOf[row[0]] = r
	}
	// Masking + policy-aware k-anonymity of the emitted cloaking.
	for _, rec := range db.Records() {
		c, ok := cloakOf[rec.UserID]
		if !ok {
			t.Fatalf("no cloak for %q", rec.UserID)
		}
		if !c.ContainsClosed(rec.Loc) {
			t.Fatalf("cloak %v does not mask %q at %v", c, rec.UserID, rec.Loc)
		}
		if groupSize[c] < k {
			t.Fatalf("cloaking group of %q has %d < k members", rec.UserID, groupSize[c])
		}
	}
}

// TestRunEmitsChromeTrace locks the acceptance criterion: a -trace run
// produces a valid Chrome trace_event file holding at least 4 distinct
// phase span names.
func TestRunEmitsChromeTrace(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	tracePath := filepath.Join(dir, "trace.json")
	writeSnapshot(t, in, 400)
	if err := run(in, filepath.Join(dir, "out.csv"), 10, engine.DefaultName, 1<<12, tracePath, false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid trace_event JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("negative duration on %q", ev.Name)
		}
		names[ev.Name] = true
	}
	if len(names) < 4 {
		t.Fatalf("trace has %d distinct span names (%v), want >= 4", len(names), names)
	}
	for _, want := range []string{"bulkdp.build", "tree.build", "bulkdp.combine", "bulkdp.extract"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	writeSnapshot(t, in, 40)
	if err := run(in, filepath.Join(dir, "out.csv"), 0, engine.DefaultName, 1<<12, "", false); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run(filepath.Join(dir, "missing.csv"), "-", 5, engine.DefaultName, 1<<12, "", false); err == nil {
		t.Error("missing input accepted")
	}
	// Too few users for k.
	if err := run(in, filepath.Join(dir, "out2.csv"), 10000, engine.DefaultName, 1<<12, "", false); err == nil {
		t.Error("k > |D| accepted")
	}
	// Unknown engine.
	if err := run(in, filepath.Join(dir, "out3.csv"), 5, "no-such-engine", 1<<12, "", false); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRunWithBaselineEngine exercises per-engine selection end to end: the
// casper engine produces a valid masking cloaking via the same CLI path.
func TestRunWithBaselineEngine(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	db := writeSnapshot(t, in, 400)
	if err := run(in, out, 10, "casper", 1<<12, "", false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != db.Len() {
		t.Fatalf("wrote %d cloaks for %d users", len(rows), db.Len())
	}
}

func TestListEngines(t *testing.T) {
	var sb strings.Builder
	listEngines(&sb)
	got := sb.String()
	for _, name := range []string{"bulkdp-binary", "casper", "hilbert", "parallel"} {
		if !strings.Contains(got, name) {
			t.Errorf("list-engines output missing %q:\n%s", name, got)
		}
	}
	if !strings.Contains(got, "* bulkdp-binary") {
		t.Errorf("default engine not marked:\n%s", got)
	}
}

func TestVerifyLedgerSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.ledger")
	anchor, err := ledger.OpenFileAnchor(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.New(anchor, ledger.Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := l.Append(ctx, ledger.KindPolicyAudit, "bulkdp-binary", "", `{}`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := anchor.Close(); err != nil {
		t.Fatal(err)
	}

	if err := verifyLedger([]string{"-anchor", path, "-q"}); err != nil {
		t.Fatalf("intact anchor rejected: %v", err)
	}
	// Pinning the right key passes; the wrong key fails.
	pub := hex.EncodeToString(l.PublicKey())
	if err := verifyLedger([]string{"-anchor", path, "-pubkey", pub, "-q"}); err != nil {
		t.Fatalf("pinned verify failed: %v", err)
	}
	if err := verifyLedger([]string{"-anchor", path, "-pubkey", strings.Repeat("00", 32), "-q"}); err == nil {
		t.Fatal("wrong pinned key accepted")
	}

	// One flipped byte in the sealed history must fail the replay.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := verifyLedger([]string{"-anchor", path, "-q"}); err == nil {
		t.Fatal("tampered anchor accepted")
	}

	if err := verifyLedger([]string{"-anchor", filepath.Join(dir, "missing"), "-q"}); err == nil {
		t.Fatal("missing anchor accepted")
	}
}
