package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesPGM(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tree.pgm")
	if err := run(3000, 25, 64, out, 7); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, []byte("P5\n64 64\n255\n")) {
		t.Fatalf("bad PGM header: %q", blob[:16])
	}
}

func TestRunRejectsTinyWidth(t *testing.T) {
	if err := run(1000, 25, 2, filepath.Join(t.TempDir(), "x.pgm"), 1); err == nil {
		t.Fatal("tiny width accepted")
	}
}
