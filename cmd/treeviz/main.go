// Command treeviz reproduces Figure 3(a): it builds the binary cloaking
// tree over a synthetic snapshot and renders the leaf (semi-)quadrants as
// a PGM image shaded by height — nodes of greater height are brighter, so
// dense areas show finer, brighter subdivision. It also prints the
// Figure 2-style ASCII density map to stderr for quick eyeballing.
//
// Usage:
//
//	treeviz -users 1000000 -k 50 -width 1024 -out tree.pgm
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"policyanon/internal/geo"
	"policyanon/internal/render"
	"policyanon/internal/tree"
	"policyanon/internal/workload"
)

func main() {
	var (
		users = flag.Int("users", 100000, "number of user locations")
		k     = flag.Int("k", 50, "anonymity parameter (split threshold)")
		width = flag.Int("width", 512, "image width in pixels")
		out   = flag.String("out", "tree.pgm", "output PGM file")
		seed  = flag.Int64("seed", 42, "dataset seed")
	)
	flag.Parse()
	if err := run(*users, *k, *width, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
}

func run(users, k, width int, out string, seed int64) error {
	master := workload.Generate(workload.Config{}, seed)
	db := master
	if users < master.Len() {
		var err error
		db, err = master.Sample(rand.New(rand.NewSource(seed)), users)
		if err != nil {
			return err
		}
	}
	bounds := geo.NewRect(0, 0, workload.DefaultMapSide, workload.DefaultMapSide)
	t, err := tree.Build(db.Points(), bounds, tree.Options{Kind: tree.Binary, MinCountToSplit: k})
	if err != nil {
		return err
	}
	img, err := render.TreePGM(t, width)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, img, 0o644); err != nil {
		return err
	}
	s := t.Stats()
	fmt.Fprintf(os.Stderr, "treeviz: %d locations, %d nodes, height %d -> %s (%dx%d)\n",
		db.Len(), s.Nodes, s.MaxHeight, out, width, width)
	fmt.Fprintln(os.Stderr, "population density:")
	fmt.Fprint(os.Stderr, render.DensityASCII(db, workload.DefaultMapSide, 32))
	return nil
}
