package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"policyanon/internal/server"
	"policyanon/internal/workload"
)

func TestRunAgainstLivePool(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(server.New().Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "snap.csv")
	out := filepath.Join(dir, "cloaks.csv")
	const mapSide = 1 << 12
	db := workload.Generate(workload.Config{
		MapSide: mapSide, Intersections: 150, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 9)
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run(strings.Join(urls, ","), in, out, 10, "", mapSide, time.Minute); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != db.Len() {
		t.Fatalf("wrote %d cloaks for %d users", len(lines), db.Len())
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "-", "-", 5, "", 1<<10, time.Second); err == nil {
		t.Error("empty worker list accepted")
	}
	if err := run("http://127.0.0.1:1", "/nonexistent.csv", "-", 5, "", 1<<10, time.Second); err == nil {
		t.Error("missing input accepted")
	}
}
