// Command anoncluster coordinates a pool of anonserver instances: it
// reads a location snapshot, partitions the map into jurisdictions
// (Section V's greedy rule), ships one shard to each worker, and writes
// the assembled master policy as CSV (userid,minx,miny,maxx,maxy).
//
// Usage:
//
//	anonserver -addr :8081 & anonserver -addr :8082 &
//	datagen -intersections 5000 -out snap.csv
//	anoncluster -workers http://localhost:8081,http://localhost:8082 \
//	    -in snap.csv -k 50 -out cloaks.csv
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"policyanon/internal/cluster"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/workload"
)

func main() {
	var (
		workers = flag.String("workers", "", "comma-separated worker base URLs")
		in      = flag.String("in", "-", "input CSV ('-' for stdin)")
		out     = flag.String("out", "-", "output CSV ('-' for stdout)")
		k       = flag.Int("k", 50, "anonymity parameter k")
		engName = flag.String("engine", "", "anonymization engine run by every worker (empty = worker default)")
		mapSide = flag.Int("mapside", int(workload.DefaultMapSide), "square map side (meters)")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall deadline")
	)
	flag.Parse()
	if err := run(*workers, *in, *out, *k, *engName, int32(*mapSide), *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "anoncluster:", err)
		os.Exit(1)
	}
}

func run(workers, in, out string, k int, engName string, mapSide int32, timeout time.Duration) error {
	var urls []string
	for _, w := range strings.Split(workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, w)
		}
	}
	coord, err := cluster.New(urls, nil)
	if err != nil {
		return err
	}
	if engName != "" {
		coord.UseEngine(engName)
	}
	r := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	db, err := location.ReadCSV(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	policy, err := coord.AnonymizeWithFailover(ctx, db, geo.NewRect(0, 0, mapSide, mapSide), k)
	if err != nil && !errors.Is(err, cluster.ErrDegraded) {
		return err
	}
	if errors.Is(err, cluster.ErrDegraded) {
		fmt.Fprintln(os.Stderr, "anoncluster: warning:", err)
	}
	elapsed := time.Since(start)

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := csv.NewWriter(bw)
	for i := 0; i < db.Len(); i++ {
		c := policy.CloakAt(i)
		rec := []string{
			db.At(i).UserID,
			strconv.FormatInt(int64(c.MinX), 10), strconv.FormatInt(int64(c.MinY), 10),
			strconv.FormatInt(int64(c.MaxX), 10), strconv.FormatInt(int64(c.MaxY), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"anoncluster: anonymized %d users over %d workers in %v (cost %d, avg cloak %.0f m^2)\n",
		db.Len(), coord.NumWorkers(), elapsed.Round(time.Millisecond), policy.Cost(), policy.AvgArea())
	return nil
}
