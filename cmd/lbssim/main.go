// Command lbssim runs the end-to-end LBS ecosystem simulation: moving
// users, periodic snapshots with incremental policy maintenance, cached
// request serving, and per-snapshot replay of the policy-aware and
// frequency-counting attacks against the provider log.
//
// Usage:
//
//	lbssim -users 20000 -k 50 -snapshots 10 -roadnet
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"policyanon/internal/sim"
)

func main() {
	var (
		users     = flag.Int("users", 10000, "population size")
		k         = flag.Int("k", 50, "anonymity parameter")
		snapshots = flag.Int("snapshots", 10, "number of snapshot intervals")
		reqProb   = flag.Float64("reqprob", 0.1, "per-user request probability per snapshot")
		pois      = flag.Int("pois", 2000, "provider catalogue size")
		roadnet   = flag.Bool("roadnet", false, "road-network movement instead of random jitter")
		cont      = flag.Bool("continuous", false, "continuous trajectories (bounded moves from each user's previous position)")
		seed      = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()
	rep, err := sim.Run(sim.Config{
		Users: *users, K: *k, Snapshots: *snapshots,
		RequestProb: *reqProb, POIs: *pois, RoadNetwork: *roadnet, Continuous: *cont, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbssim:", err)
		os.Exit(1)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "snap\tmaintenance\trows\tavg cloak m^2\trequests\tprovider trips\tcache hits\tmin anonymity\tfreq leaks")
	for _, s := range rep.Snapshots {
		fmt.Fprintf(tw, "%d\t%v\t%d\t%.0f\t%d\t%d\t%d\t%d\t%d\n",
			s.Snapshot, s.MaintenanceTime.Round(time.Millisecond), s.RowsRecomputed,
			s.AvgCloakArea, s.Requests, s.ProviderTrips, s.CacheHits, s.MinAnonymity, s.FrequencyLeaks)
	}
	tw.Flush()
	if rep.BreachedSnapshots > 0 {
		fmt.Fprintf(os.Stderr, "lbssim: BREACH in %d snapshots\n", rep.BreachedSnapshots)
		os.Exit(2)
	}
	fmt.Printf("\nsender %d-anonymity held against the policy-aware attacker in all %d snapshots\n",
		*k, len(rep.Snapshots))
}
