package main

import (
	"testing"

	"policyanon/internal/sim"
)

// The CLI is a thin veneer over sim.Run; exercise the wiring at a small
// scale to keep the flag plumbing covered.
func TestSimRunSmall(t *testing.T) {
	rep, err := sim.Run(sim.Config{Users: 600, K: 8, Snapshots: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreachedSnapshots != 0 {
		t.Fatalf("breached %d snapshots", rep.BreachedSnapshots)
	}
}
