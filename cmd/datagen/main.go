// Command datagen writes a synthetic Bay-Area location snapshot as CSV
// (userid,locx,locy), the stand-in for the paper's street-intersection-
// derived Master dataset.
//
// Usage:
//
//	datagen -intersections 175000 -per 10 -seed 42 -out master.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"policyanon/internal/workload"
)

func main() {
	var (
		out           = flag.String("out", "-", "output file ('-' for stdout)")
		intersections = flag.Int("intersections", 175000, "number of street intersections")
		per           = flag.Int("per", 10, "users per intersection")
		sigma         = flag.Float64("sigma", 500, "Gaussian spread around intersections (meters)")
		mapSide       = flag.Int("mapside", int(workload.DefaultMapSide), "square map side (meters, power of two recommended)")
		seed          = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()
	if err := run(*out, *intersections, *per, *sigma, int32(*mapSide), *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, intersections, per int, sigma float64, mapSide int32, seed int64) error {
	db := workload.Generate(workload.Config{
		MapSide:              mapSide,
		Intersections:        intersections,
		UsersPerIntersection: per,
		SpreadSigma:          sigma,
	}, seed)
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := db.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d locations (map side %d m)\n", db.Len(), mapSide)
	return nil
}
