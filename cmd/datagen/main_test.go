package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"policyanon/internal/location"
)

func TestRunWritesValidCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snap.csv")
	if err := run(out, 200, 3, 100, 1<<12, 7); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db, err := location.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 600 {
		t.Fatalf("wrote %d locations, want 600", db.Len())
	}
	for _, r := range db.Records() {
		if r.Loc.X < 0 || r.Loc.X >= 1<<12 || r.Loc.Y < 0 || r.Loc.Y >= 1<<12 {
			t.Fatalf("location %v outside map", r.Loc)
		}
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")
	if err := run(a, 50, 2, 100, 1<<10, 3); err != nil {
		t.Fatal(err)
	}
	if err := run(b, 50, 2, 100, 1<<10, 3); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("same seed produced different files")
	}
}

func TestRunBadPath(t *testing.T) {
	err := run(filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv"), 10, 1, 100, 1<<10, 1)
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("expected path error, got %v", err)
	}
}
