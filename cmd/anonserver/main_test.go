package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"policyanon/internal/server"
)

// installTestSnapshot primes a server with a small snapshot via its own
// HTTP handler, exactly as the daemon would receive it.
func installTestSnapshot(t *testing.T, srv *server.Server) {
	t.Helper()
	users := []server.UserJSON{}
	for i := 0; i < 12; i++ {
		users = append(users, server.UserJSON{
			ID: string(rune('a' + i)), X: int32((i * 7) % 32), Y: int32((i * 11) % 32),
		})
	}
	body, err := json.Marshal(server.SnapshotRequest{K: 3, MapSide: 32, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/snapshot", bytes.NewReader(body))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("snapshot install failed: %d %s", rec.Code, rec.Body)
	}
}

func TestWriteCheckpointAtomic(t *testing.T) {
	srv := server.New()
	installTestSnapshot(t, srv)
	path := filepath.Join(t.TempDir(), "state.ck")
	if err := writeCheckpoint(srv, path); err != nil {
		t.Fatal(err)
	}
	// The temp file must be gone and the final file restorable.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fresh := server.New()
	if err := fresh.RestoreFrom(f); err != nil {
		t.Fatalf("restore of written checkpoint failed: %v", err)
	}
}

// TestEndpointListMatchesHandler pins the -h endpoint table to the mux
// internal/server actually registers: every listed route must resolve to
// a handler (a 404 or 405-on-listed-method means the table drifted).
// /debug/pprof/ is mounted by main, not the server handler, so it is
// exempt here.
func TestEndpointListMatchesHandler(t *testing.T) {
	srv := server.New()
	installTestSnapshot(t, srv)
	for _, line := range strings.Split(strings.TrimSpace(endpointList), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed endpoint line: %q", line)
		}
		method, path := fields[0], fields[1]
		if path == "/debug/pprof/" {
			continue
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, bytes.NewReader(nil))
		srv.Handler().ServeHTTP(rec, req)
		// An unregistered route draws the mux's plain-text default page
		// ("404 page not found" / "Method Not Allowed"); registered
		// handlers answer JSON even when they refuse (e.g. the ledger
		// endpoints 404 until -ledger enables them).
		body := rec.Body.String()
		if (rec.Code == 404 || rec.Code == 405) &&
			(strings.Contains(body, "page not found") || strings.Contains(body, "Method Not Allowed")) {
			t.Errorf("%s %s: listed in -h but not routed (%d: %q)", method, path, rec.Code, body)
		}
	}
}

func TestWriteCheckpointEmptyServerFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ck")
	if err := writeCheckpoint(server.New(), path); err == nil {
		t.Fatal("checkpoint of empty server accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed checkpoint left a file behind")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("failed checkpoint left a temp file behind")
	}
}
