// Command anonserver runs the anonymizing CSP as an HTTP service; see
// internal/server for the endpoint list.
//
// Usage:
//
//	anonserver -addr :8080 -state state.ck
//	anonserver -addr :8080 -engine casper    # default engine for snapshots
//
// Snapshot requests may override the engine per request with ?engine=NAME
// or an "engine" body field; GET /v1/engines lists the registry.
//
// With -state, the server restores the snapshot and policy from the file
// at startup (when it exists) and checkpoints back to it on SIGINT or
// SIGTERM, so a restarted server resumes serving cloak lookups without
// recomputation.
//
// Observability: GET /v1/metrics serves the metrics registry as JSON, or
// as Prometheus text exposition with ?format=prometheus (per-route
// request counters and latency histograms plus per-phase anonymization
// timings — bulkdp.build, bulkdp.combine, bulkdp.extract, bulkdp.update,
// csp.serve). Unless -pprof=false, the Go profiling endpoints are mounted
// under /debug/pprof/ (CPU: /debug/pprof/profile, heap: /debug/pprof/heap).
// See docs/OBSERVABILITY.md.
//
// Quick exercise:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/snapshot -d '{"k":2,"mapSide":8,
//	  "users":[{"id":"Alice","x":1,"y":1},{"id":"Bob","x":1,"y":2},
//	           {"id":"Carol","x":1,"y":4},{"id":"Sam","x":3,"y":1},
//	           {"id":"Tom","x":4,"y":4}]}'
//	curl -s 'localhost:8080/v1/cloak?user=Carol'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"policyanon/internal/engine"
	_ "policyanon/internal/parallel" // register the "parallel" engine
	"policyanon/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		state     = flag.String("state", "", "checkpoint file: restored at startup, written on shutdown")
		engName   = flag.String("engine", engine.DefaultName, "default anonymization engine (see GET /v1/engines)")
		withPprof = flag.Bool("pprof", true, "mount Go profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	srv := server.New()
	if err := srv.SetDefaultEngine(*engName); err != nil {
		log.Fatalf("anonserver: %v", err)
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			err := srv.RestoreFrom(f)
			f.Close()
			if err != nil {
				log.Fatalf("anonserver: restore %s: %v", *state, err)
			}
			log.Printf("anonserver: restored state from %s", *state)
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("anonserver: open %s: %v", *state, err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler(srv, *withPprof),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("anonserver: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("anonserver: %v", err)
	case <-ctx.Done():
	}
	log.Print("anonserver: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("anonserver: shutdown: %v", err)
	}
	if *state != "" {
		if err := writeCheckpoint(srv, *state); err != nil {
			log.Printf("anonserver: checkpoint: %v", err)
		} else {
			log.Printf("anonserver: state checkpointed to %s", *state)
		}
	}
}

// handler mounts the service tree, plus the Go profiling endpoints under
// /debug/pprof/ when withPprof is set. The pprof handlers are referenced
// explicitly instead of relying on the net/http/pprof side-effect
// registration, so nothing leaks onto http.DefaultServeMux.
func handler(srv *server.Server, withPprof bool) http.Handler {
	if !withPprof {
		return srv.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeCheckpoint saves atomically via a temp file rename.
func writeCheckpoint(srv *server.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.CheckpointTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
