// Command anonserver runs the anonymizing CSP as an HTTP service.
//
// Endpoints (also printed by -h):
//
//	GET  /healthz           readiness (200 once a snapshot is loaded) vs liveness
//	POST /v1/snapshot       install a user snapshot and compute its policy
//	POST /v1/moves          apply user moves (queued when -motion is set)
//	POST /v1/pois           install the POI database served to requests
//	GET  /v1/cloak          cloak lookup for one user (?user=U&engine=NAME)
//	POST /v1/request        full LBS round: cloak + candidate POIs
//	POST /v1/request/batch  many LBS rounds in one call (amortized hot path)
//	GET  /v1/stats          CSP serving counters (cache, coalescing, POIs)
//	GET  /v1/engines        the anonymization-engine registry
//	GET  /v1/checkpoint     serialize current state to the response
//	POST /v1/restore        restore state from a checkpoint body
//	GET  /v1/motion         streaming-ingest loop statistics (-motion)
//	GET  /v1/metrics        metrics registry (JSON or ?format=prometheus)
//	GET  /v1/audit          privacy observatory rolling report
//	GET  /v1/audit/root     latest signed ledger checkpoint (-ledger)
//	GET  /v1/audit/proof    Merkle inclusion proof for one event (-ledger)
//	GET  /v1/debug/flightrecorder  flight recorder dump: retained traces + events
//	GET  /v1/debug/trace    one retained trace by ?rid= or ?tid= (&format=chrome)
//	GET  /debug/pprof/      Go profiling endpoints (unless -pprof=false)
//
// Usage:
//
//	anonserver -addr :8080 -state state.ck
//	anonserver -addr :8080 -engine casper    # default engine for snapshots
//
// Snapshot requests may override the engine per request with ?engine=NAME
// or an "engine" body field; GET /v1/engines lists the registry.
//
// With -state, the server restores the snapshot and policy from the file
// at startup (when it exists) and checkpoints back to it on SIGINT or
// SIGTERM, so a restarted server resumes serving cloak lookups without
// recomputation.
//
// With -motion, POST /v1/moves switches to streaming ingest: updates are
// validated and queued (202 Accepted) and a maintenance loop applies
// them in coalesced batches, publishing fresh policy snapshots that the
// serving endpoints adopt atomically. -motion-queue/-motion-batch/
// -motion-flush size the queue and batching, -motion-policy picks the
// full-queue backpressure (block or drop → 429), -motion-strategy forces
// incremental or rebuild maintenance (auto decides per batch), and
// -motion-checkpoint-every N persists -state every N batches from the
// live loop. On shutdown the queue is drained before the final
// checkpoint, so accepted updates are never lost. See docs/STREAMING.md.
//
// With -ledger, every audit event (policy audits, sampled request
// verdicts, breaches, motion snapshot swaps) is appended to a
// tamper-evident ledger: events batch into Merkle trees whose roots form
// a signed hash chain, served at GET /v1/audit/root (latest checkpoint)
// and GET /v1/audit/proof?seq=N (inclusion proof). -ledger-anchor
// persists sealed batches to an append-only file — verify it offline
// with `anoncli verify-ledger -anchor FILE` — and -ledger-key pins the
// signing identity across restarts. -ledger-batch/-ledger-flush/
// -ledger-retain tune batching and proof retention.
//
// Observability: GET /v1/metrics serves the metrics registry as JSON, or
// as Prometheus text exposition with ?format=prometheus (per-route
// request counters and latency histograms plus per-phase anonymization
// timings — bulkdp.build, bulkdp.combine, bulkdp.extract, bulkdp.update,
// csp.serve). GET /v1/audit serves the privacy observatory's rolling
// achieved-anonymity report; -audit-rate tunes its per-request sampling.
// All diagnostics are structured JSON log lines on stderr (-log-level
// selects the floor; breach records log at warn, per-request access
// records at debug), each carrying the request ID from the X-Request-ID
// header so log lines, trace spans, and metrics correlate. Unless
// -pprof=false, the Go profiling endpoints are mounted under
// /debug/pprof/ (CPU: /debug/pprof/profile, heap: /debug/pprof/heap).
//
// Serving requests are additionally traced end to end: every
// /v1/request and /v1/request/batch call gets a root span and an
// X-Trace-Id, and tail-based sampling retains the full span tree of
// interesting requests (slow against a rolling p99 threshold, errored,
// audit breaches, motion fallbacks, cache-miss flights, forced via
// X-Debug-Trace) into an in-memory flight recorder, dumpable at
// GET /v1/debug/flightrecorder and GET /v1/debug/trace?rid=... (JSON or
// ?format=chrome for chrome://tracing). -trace-requests=false disables
// the capture layer; -flight-traces/-flight-events resize the rings.
// See docs/OBSERVABILITY.md.
//
// Quick exercise:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/snapshot -d '{"k":2,"mapSide":8,
//	  "users":[{"id":"Alice","x":1,"y":1},{"id":"Bob","x":1,"y":2},
//	           {"id":"Carol","x":1,"y":4},{"id":"Sam","x":3,"y":1},
//	           {"id":"Tom","x":4,"y":4}]}'
//	curl -s 'localhost:8080/v1/cloak?user=Carol'
//	curl -s localhost:8080/v1/audit
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/checkpoint"
	"policyanon/internal/engine"
	"policyanon/internal/ledger"
	"policyanon/internal/motion"
	"policyanon/internal/obs/flight"
	_ "policyanon/internal/parallel" // register the "parallel" engine
	"policyanon/internal/server"
)

// endpointList is the HTTP surface printed by -h. It must match the
// routes internal/server registers and the table in the package doc
// above; TestEndpointListMatchesHandler pins the correspondence.
const endpointList = `  GET  /healthz           readiness (200 once a snapshot is loaded) vs liveness
  POST /v1/snapshot       install a user snapshot and compute its policy
  POST /v1/moves          apply user moves (queued when -motion is set)
  POST /v1/pois           install the POI database served to requests
  GET  /v1/cloak          cloak lookup for one user (?user=U&engine=NAME)
  POST /v1/request        full LBS round: cloak + candidate POIs
  POST /v1/request/batch  many LBS rounds in one call (amortized hot path)
  GET  /v1/stats          CSP serving counters (cache, coalescing, POIs)
  GET  /v1/engines        the anonymization-engine registry
  GET  /v1/checkpoint     serialize current state to the response
  POST /v1/restore        restore state from a checkpoint body
  GET  /v1/motion         streaming-ingest loop statistics (-motion)
  GET  /v1/metrics        metrics registry (JSON or ?format=prometheus)
  GET  /v1/audit          privacy observatory rolling report
  GET  /v1/audit/root     latest signed ledger checkpoint (-ledger)
  GET  /v1/audit/proof    Merkle inclusion proof for one event (-ledger)
  GET  /v1/debug/flightrecorder  flight recorder dump: retained traces + events
  GET  /v1/debug/trace    one retained trace by ?rid= or ?tid= (&format=chrome)
  GET  /debug/pprof/      Go profiling endpoints (unless -pprof=false)
`

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		state     = flag.String("state", "", "checkpoint file: restored at startup, written on shutdown")
		engName   = flag.String("engine", engine.DefaultName, "default anonymization engine (see GET /v1/engines)")
		withPprof = flag.Bool("pprof", true, "mount Go profiling endpoints under /debug/pprof/")
		logLevel  = flag.String("log-level", "info", "log floor: debug, info, warn, or error")
		auditRate = flag.Float64("audit-rate", audit.DefaultRate, "fraction of /v1/request calls audited for achieved anonymity (0 disables)")

		traceReqs    = flag.Bool("trace-requests", true, "per-request tracing with tail sampling into the flight recorder (/v1/debug/flightrecorder)")
		flightTraces = flag.Int("flight-traces", 0, "flight recorder trace ring capacity (0 = flight default)")
		flightEvents = flag.Int("flight-events", 0, "flight recorder event ring capacity (0 = flight default)")

		ledgerOn     = flag.Bool("ledger", false, "tamper-evident audit ledger: Merkle-batched hash chain over audit events, served at /v1/audit/root and /v1/audit/proof")
		ledgerAnchor = flag.String("ledger-anchor", "", "append-only anchor file for sealed ledger batches (empty = in-memory anchor; verify offline with anoncli verify-ledger)")
		ledgerKey    = flag.String("ledger-key", "", "ed25519 seed file signing ledger checkpoints (created if missing; empty = ephemeral per-process key)")
		ledgerBatch  = flag.Int("ledger-batch", 0, "max events per sealed ledger batch (0 = ledger default)")
		ledgerFlush  = flag.Duration("ledger-flush", 0, "max time an appended event waits before its batch seals (0 = ledger default)")
		ledgerRetain = flag.Int("ledger-retain", 0, "sealed batches kept in memory for proof serving (0 = ledger default)")

		motionOn        = flag.Bool("motion", false, "streaming movement ingest: POST /v1/moves queues updates; a maintenance loop applies them in batches off the read path")
		motionQueue     = flag.Int("motion-queue", 0, "ingest queue capacity (0 = motion default)")
		motionBatch     = flag.Int("motion-batch", 0, "max coalesced updates per maintenance batch (0 = motion default)")
		motionFlush     = flag.Duration("motion-flush", 0, "max time a queued update waits before a flush (0 = motion default)")
		motionPolicy    = flag.String("motion-policy", "block", "backpressure when the ingest queue is full: block or drop")
		motionStrategy  = flag.String("motion-strategy", "auto", "maintenance strategy: auto, incremental, or rebuild")
		motionCkptEvery = flag.Int("motion-checkpoint-every", 0, "checkpoint -state every N applied batches (0 disables periodic checkpoints)")
		motionVerEvery  = flag.Int("motion-verify-every", 0, "full-verification cadence for delta publishes: full verify every Nth publish, delta-scoped verify otherwise (0 or 1 = always full)")
	)
	// -h prints the endpoint set alongside the flags so the CLI surface and
	// the README stay in sync (the list mirrors internal/server's mux).
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage: anonserver [flags]\n\nEndpoints:\n%s\nFlags:\n", endpointList)
		flag.PrintDefaults()
	}
	flag.Parse()

	level, err := audit.ParseLevel(*logLevel)
	if err != nil {
		slog.New(slog.NewJSONHandler(os.Stderr, nil)).Error("bad -log-level", "err", err)
		os.Exit(1)
	}
	logger := audit.NewJSONLogger(os.Stderr, level)
	fatal := func(msg string, attrs ...any) {
		logger.Error(msg, attrs...)
		os.Exit(1)
	}

	srv := server.New()
	srv.SetLogger(logger)
	srv.SetAuditRate(*auditRate)
	srv.SetRequestTracing(*traceReqs)
	if *flightTraces > 0 || *flightEvents > 0 {
		srv.SetFlightRecorder(flight.New(*flightTraces, *flightEvents))
	}
	if err := srv.SetDefaultEngine(*engName); err != nil {
		fatal("engine selection failed", "err", err)
	}
	// Attach the ledger before motion and state restore, so the very first
	// policy audit (a restored snapshot's install) is already on the chain.
	var led *ledger.Ledger
	var ledFile *ledger.FileAnchor
	if *ledgerOn {
		var anchor ledger.Anchor
		if *ledgerAnchor != "" {
			fa, err := ledger.OpenFileAnchor(*ledgerAnchor, srv.Metrics(), logger)
			if err != nil {
				fatal("ledger anchor open failed", "path", *ledgerAnchor, "err", err)
			}
			ledFile, anchor = fa, fa
		} else {
			anchor = ledger.NewMemAnchor()
		}
		var key ed25519.PrivateKey
		if *ledgerKey != "" {
			var err error
			key, err = ledger.LoadOrCreateKey(*ledgerKey)
			if err != nil {
				fatal("ledger key load failed", "path", *ledgerKey, "err", err)
			}
		}
		var err error
		led, err = ledger.New(anchor, ledger.Options{
			MaxBatch:      *ledgerBatch,
			FlushInterval: *ledgerFlush,
			Retain:        *ledgerRetain,
			Key:           key,
			Registry:      srv.Metrics(),
			Logger:        logger,
		})
		if err != nil {
			fatal("ledger start failed", "err", err)
		}
		srv.EnableLedger(led)
		logger.Info("ledger enabled",
			"anchor", *ledgerAnchor, "keyFile", *ledgerKey,
			"publicKey", hex.EncodeToString(led.PublicKey()))
	}
	// Arm motion before restoring state: RestoreFrom starts the pipeline
	// for the restored snapshot only if the config is already in place.
	if *motionOn {
		var bp motion.BackpressurePolicy
		switch *motionPolicy {
		case "block":
			bp = motion.Block
		case "drop":
			bp = motion.Drop
		default:
			fatal("bad -motion-policy", "value", *motionPolicy, "want", "block or drop")
		}
		strategy := motion.Strategy(*motionStrategy)
		switch strategy {
		case motion.StrategyAuto, motion.StrategyIncremental, motion.StrategyRebuild:
		default:
			fatal("bad -motion-strategy", "value", *motionStrategy, "want", "auto, incremental, or rebuild")
		}
		cfg := motion.Config{
			QueueCapacity: *motionQueue,
			MaxBatch:      *motionBatch,
			FlushInterval: *motionFlush,
			Policy:        bp,
			Strategy:      strategy,
			VerifyEvery:   *motionVerEvery,
		}
		if *state != "" && *motionCkptEvery > 0 {
			// Periodic persistence from the live loop. The callback runs on
			// the maintenance goroutine and must not reach back into the
			// server (lock-ordering), so it saves the self-contained
			// snapshot record directly.
			path := *state
			cfg.CheckpointEvery = *motionCkptEvery
			cfg.Checkpoint = func(snap *motion.Snapshot) error {
				return saveSnapshotState(path, snap)
			}
		}
		srv.EnableMotion(cfg)
		logger.Info("motion enabled", "policy", *motionPolicy, "strategy", *motionStrategy,
			"checkpointEvery", *motionCkptEvery, "verifyEvery", *motionVerEvery)
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			err := srv.RestoreFrom(f)
			f.Close()
			if err != nil {
				fatal("state restore failed", "path", *state, "err", err)
			}
			logger.Info("state restored", "path", *state)
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal("state open failed", "path", *state, "err", err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler(srv, *withPprof),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "engine", srv.DefaultEngine(),
			"auditRate", srv.Auditor().Rate())
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal("serve failed", "err", err)
	case <-ctx.Done():
	}
	// Graceful shutdown ordering: stop accepting requests, drain the
	// motion queue so every accepted update is applied, then write the
	// final checkpoint — no accepted batch is lost.
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown incomplete", "err", err)
	}
	if srv.MotionPipeline() != nil {
		drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.DrainMotion(drainCtx); err != nil {
			logger.Warn("motion drain incomplete", "err", err)
		} else {
			st := srv.MotionPipeline().Stats()
			logger.Info("motion drained", "epoch", st.Epoch, "moves", st.Moves, "batches", st.Batches)
		}
		dcancel()
	}
	if *state != "" {
		if err := writeCheckpoint(srv, *state); err != nil {
			logger.Warn("checkpoint failed", "path", *state, "err", err)
		} else {
			logger.Info("state checkpointed", "path", *state)
		}
	}
	// The ledger closes after the drain and checkpoint: every audit event
	// those steps emitted is sealed into a final anchored batch, so the
	// chain's head covers the process's whole life.
	if led != nil {
		closeCtx, lcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := led.Close(closeCtx); err != nil {
			logger.Warn("ledger close incomplete", "err", err)
		}
		lcancel()
		if cp, ok := led.Latest(); ok {
			logger.Info("ledger sealed", "batchSeq", cp.BatchSeq, "chainRoot", cp.ChainRoot)
		}
		if ledFile != nil {
			if err := ledFile.Close(); err != nil {
				logger.Warn("ledger anchor close failed", "err", err)
			}
		}
	}
	logAuditSummary(logger, srv)
}

// logAuditSummary emits the final privacy report on shutdown, so even a
// scrape-less deployment leaves an achieved-anonymity record in the log.
func logAuditSummary(logger *slog.Logger, srv *server.Server) {
	rep := srv.Auditor().Report()
	if rep.PolicyAudits == 0 && rep.RequestAudits == 0 {
		return
	}
	logger.Info("final privacy report",
		"policyAudits", rep.PolicyAudits,
		"requestAudits", rep.RequestAudits,
		"minKAware", rep.Aware.Min,
		"minKUnaware", rep.Unaware.Min,
		"breachesAware", rep.Aware.Breaches,
		"breachesUnaware", rep.Unaware.Breaches,
	)
}

// handler mounts the service tree, plus the Go profiling endpoints under
// /debug/pprof/ when withPprof is set. The pprof handlers are referenced
// explicitly instead of relying on the net/http/pprof side-effect
// registration, so nothing leaks onto http.DefaultServeMux.
func handler(srv *server.Server, withPprof bool) http.Handler {
	if !withPprof {
		return srv.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeCheckpoint saves atomically via a temp file rename.
func writeCheckpoint(srv *server.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.CheckpointTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// saveSnapshotState persists a published motion snapshot to the -state
// file, atomically via a temp file rename. Called from the pipeline's
// maintenance loop, so it must stay free of server locks.
func saveSnapshotState(path string, snap *motion.Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := checkpoint.Save(f, snap.K, snap.Bounds, snap.Policy); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
