package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

// The small-scale experiments are exercised through run() to keep the CLI
// wiring covered; heavy paths run at paper scale only when invoked
// explicitly.
func TestRunUnknownInputs(t *testing.T) {
	if err := run("fig3", "nope", 10, 1, "table", "", "", false, "", "1", time.Millisecond, "", 0.5, ""); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("figZZ", "small", 10, 1, "table", "", "", false, "", "1", time.Millisecond, "", 0.5, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("fig2", "small", 10, 1, "xml", "", "", false, "", "1", time.Millisecond, "", 0.5, ""); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("engines", "small", 10, 1, "table", "no-such-engine", "", false, "", "1", time.Millisecond, "", 0.5, ""); err == nil {
		t.Error("unknown engine name accepted")
	}
}

func TestSweepEngines(t *testing.T) {
	names := sweepEngines("")
	if len(names) == 0 {
		t.Fatal("default sweep is empty")
	}
	for _, n := range names {
		if n == "bulkdp-naive" {
			t.Error("default sweep includes the quadratic bulkdp-naive ablation")
		}
	}
	got := sweepEngines("casper, pub")
	if len(got) != 2 || got[0] != "casper" || got[1] != "pub" {
		t.Errorf("explicit list parsed as %v", got)
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	if err := run("fig3", "small", 50, 1, "table", "", "", false, "", "1", time.Millisecond, "", 0.5, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("fig2", "small", 50, 1, "csv", "", "", false, "", "1", time.Millisecond, "", 0.5, ""); err != nil {
		t.Fatal(err)
	}
	// Tracing path: fig3 builds anonymizers, so the trace must be non-empty.
	trace := t.TempDir() + "/trace.json"
	if err := run("fig3", "small", 50, 1, "csv", "", trace, false, "", "1", time.Millisecond, "", 0.5, ""); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	// The registry sweep over the two k-inside baselines stays cheap and
	// exercises the engines experiment end to end.
	if err := run("engines", "small", 50, 1, "csv", "casper,puq", "", false, "", "1", time.Millisecond, "", 0.5, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunWorkersSweep runs the workers experiment end to end on a tiny
// budget and validates the emitted BENCH_bulkdp.json through the same
// gate CI uses.
func TestRunWorkersSweep(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	out := t.TempDir() + "/BENCH_bulkdp.json"
	if err := run("workers", "small", 50, 1, "csv", "", "", false, out, "1,2", time.Millisecond, "", 0.5, ""); err != nil {
		t.Fatal(err)
	}
	if err := checkBenchFile(out); err != nil {
		t.Fatalf("emitted sweep fails validation: %v", err)
	}
	// Malformed worker lists are rejected before any measurement.
	if err := run("workers", "small", 50, 1, "csv", "", "", false, out, "1,zero", time.Millisecond, "", 0.5, ""); err == nil {
		t.Error("malformed -workers accepted")
	}
}

// TestRunAuditBench runs the privacy-observatory overhead benchmark end
// to end on a tiny budget and validates the emitted BENCH_audit.json
// through the same -check-bench gate CI uses (the overhead budget is not
// asserted here — a millisecond measurement is all noise — only the
// document's shape via the sniffing dispatcher).
func TestRunAuditBench(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	out := t.TempDir() + "/BENCH_audit.json"
	if err := run("audit", "small", 50, 1, "csv", "", "", false, "", "1", 5*time.Millisecond, out, 0.5, ""); err != nil {
		t.Fatal(err)
	}
	err = checkBenchFile(out)
	if err != nil && !strings.Contains(err.Error(), "budget") {
		t.Fatalf("emitted audit bench fails validation: %v", err)
	}
	// An out-of-range rate is rejected before any measurement.
	if err := run("audit", "small", 50, 1, "csv", "", "", false, "", "1", time.Millisecond, out, 1.5, ""); err == nil {
		t.Error("audit rate 1.5 accepted")
	}
}
