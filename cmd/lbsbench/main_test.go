package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

// The small-scale experiments are exercised through run() to keep the CLI
// wiring covered; heavy paths run at paper scale only when invoked
// explicitly.
func TestRunUnknownInputs(t *testing.T) {
	if err := run("fig3", "nope", 10, 1, "table", "", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("figZZ", "small", 10, 1, "table", "", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("fig2", "small", 10, 1, "xml", "", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("engines", "small", 10, 1, "table", "no-such-engine", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err == nil {
		t.Error("unknown engine name accepted")
	}
}

func TestSweepEngines(t *testing.T) {
	names := sweepEngines("")
	if len(names) == 0 {
		t.Fatal("default sweep is empty")
	}
	for _, n := range names {
		if n == "bulkdp-naive" {
			t.Error("default sweep includes the quadratic bulkdp-naive ablation")
		}
	}
	got := sweepEngines("casper, pub")
	if len(got) != 2 || got[0] != "casper" || got[1] != "pub" {
		t.Errorf("explicit list parsed as %v", got)
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	if err := run("fig3", "small", 50, 1, "table", "", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("fig2", "small", 50, 1, "csv", "", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err != nil {
		t.Fatal(err)
	}
	// Tracing path: fig3 builds anonymizers, so the trace must be non-empty.
	trace := t.TempDir() + "/trace.json"
	if err := run("fig3", "small", 50, 1, "csv", "", trace, false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	// The registry sweep over the two k-inside baselines stays cheap and
	// exercises the engines experiment end to end.
	if err := run("engines", "small", 50, 1, "csv", "casper,puq", "", false, "", "1", time.Millisecond, "", 0.5, "", "", 64, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunWorkersSweep runs the workers experiment end to end on a tiny
// budget and validates the emitted BENCH_bulkdp.json through the same
// gate CI uses.
func TestRunWorkersSweep(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	out := t.TempDir() + "/BENCH_bulkdp.json"
	if err := run("workers", "small", 50, 1, "csv", "", "", false, out, "1,2", time.Millisecond, "", 0.5, "", "", 64, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := checkBenchFile(out); err != nil {
		t.Fatalf("emitted sweep fails validation: %v", err)
	}
	// Malformed worker lists are rejected before any measurement.
	if err := run("workers", "small", 50, 1, "csv", "", "", false, out, "1,zero", time.Millisecond, "", 0.5, "", "", 64, ""); err == nil {
		t.Error("malformed -workers accepted")
	}
}

// TestRunAuditBench runs the privacy-observatory overhead benchmark end
// to end on a tiny budget and validates the emitted BENCH_audit.json
// through the same -check-bench gate CI uses (the overhead budget is not
// asserted here — a millisecond measurement is all noise — only the
// document's shape via the sniffing dispatcher).
func TestRunAuditBench(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	out := t.TempDir() + "/BENCH_audit.json"
	if err := run("audit", "small", 50, 1, "csv", "", "", false, "", "1", 5*time.Millisecond, out, 0.5, "", "", 64, ""); err != nil {
		t.Fatal(err)
	}
	_, err = checkBenchFile(out)
	if err != nil && !strings.Contains(err.Error(), "budget") {
		t.Fatalf("emitted audit bench fails validation: %v", err)
	}
	// An out-of-range rate is rejected before any measurement.
	if err := run("audit", "small", 50, 1, "csv", "", "", false, "", "1", time.Millisecond, out, 1.5, "", "", 64, ""); err == nil {
		t.Error("audit rate 1.5 accepted")
	}
}

// TestCheckBenchNegativeOverheadPassesWithNote exercises the noise
// handling: a tracked document whose audited run out-ran the baseline
// (negative overheadPct) validates, and the note flags it.
func TestCheckBenchNegativeOverheadPassesWithNote(t *testing.T) {
	doc := `{"bench":"audit","dataset":"small","users":500,"k":10,"engine":"bulkdp-binary",
		"gomaxprocs":4,"numCPU":4,"cpuModel":"x","goVersion":"go1.24",
		"off":{"mode":"off","rate":0,"requests":1000,"reqPerSec":5000,"nsPerReq":200000,"audited":0},
		"sampled":{"mode":"sampled","rate":0.015625,"requests":990,"reqPerSec":5025,"nsPerReq":199000,"audited":15},
		"overheadPct":-0.47,"minKAware":10,"minKUnaware":12,"breaches":0}`
	path := t.TempDir() + "/BENCH_audit.json"
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	note, err := checkBenchFile(path)
	if err != nil {
		t.Fatalf("negative overhead failed validation: %v", err)
	}
	if !strings.Contains(note, "-0.47") || !strings.Contains(note, "noise") {
		t.Fatalf("note = %q, want the raw noise value flagged", note)
	}
	// A positive in-budget overhead gets no note.
	pos := strings.Replace(doc, `"overheadPct":-0.47`, `"overheadPct":1.2`, 1)
	if err := os.WriteFile(path, []byte(pos), 0o600); err != nil {
		t.Fatal(err)
	}
	if note, err := checkBenchFile(path); err != nil || note != "" {
		t.Fatalf("positive overhead: note=%q err=%v", note, err)
	}
}

// TestCheckAllBenchFiles validates the one-pass CI mode: every
// BENCH_*.json in the working directory is checked, and one invalid
// document fails the pass while the rest still report.
func TestCheckAllBenchFiles(t *testing.T) {
	dir := t.TempDir()
	oldWD, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(oldWD)

	// No tracked documents at all is a failure, not a silent pass.
	var buf strings.Builder
	if err := checkAllBenchFiles(&buf); err == nil {
		t.Fatal("empty directory passed -check-bench-all")
	}

	good := `{"bench":"audit","dataset":"small","users":500,"k":10,"engine":"bulkdp-binary",
		"gomaxprocs":4,"numCPU":4,"cpuModel":"x","goVersion":"go1.24",
		"off":{"mode":"off","rate":0,"requests":1000,"reqPerSec":5000,"nsPerReq":200000,"audited":0},
		"sampled":{"mode":"sampled","rate":0.015625,"requests":990,"reqPerSec":4950,"nsPerReq":202000,"audited":15},
		"overheadPct":1.0,"minKAware":10,"minKUnaware":12,"breaches":0}`
	if err := os.WriteFile("BENCH_audit.json", []byte(good), 0o600); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := checkAllBenchFiles(&buf); err != nil {
		t.Fatalf("valid set failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "BENCH_audit.json: valid") {
		t.Fatalf("missing per-file report: %q", buf.String())
	}

	if err := os.WriteFile("BENCH_churn.json", []byte(`{"bench":"churn"`), 0o600); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = checkAllBenchFiles(&buf)
	if err == nil {
		t.Fatal("invalid document passed -check-bench-all")
	}
	if !strings.Contains(buf.String(), "BENCH_churn.json: INVALID") ||
		!strings.Contains(buf.String(), "BENCH_audit.json: valid") {
		t.Fatalf("per-file reporting incomplete: %q", buf.String())
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("failure tally wrong: %v", err)
	}
}

// TestRunServeBench runs the amortized-serving benchmark end to end on a
// tiny budget and validates the emitted BENCH_serve.json through the
// same -check-bench gate CI uses (the speedup floor is not asserted here
// — a millisecond measurement is all noise — only the document's shape
// via the sniffing dispatcher).
func TestRunServeBench(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	out := t.TempDir() + "/BENCH_serve.json"
	if err := run("serve", "small", 50, 1, "csv", "", "", false, "", "1", 5*time.Millisecond, "", 0.5, "", out, 16, ""); err != nil {
		t.Fatal(err)
	}
	_, err = checkBenchFile(out)
	if err != nil && !strings.Contains(err.Error(), "gate") {
		t.Fatalf("emitted serve bench fails validation: %v", err)
	}
	// A degenerate batch size is rejected before any measurement.
	if err := run("serve", "small", 50, 1, "csv", "", "", false, "", "1", time.Millisecond, "", 0.5, "", out, 1, ""); err == nil {
		t.Error("batch size 1 accepted")
	}
}
