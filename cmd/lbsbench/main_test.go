package main

import (
	"os"
	"testing"
)

// The small-scale experiments are exercised through run() to keep the CLI
// wiring covered; heavy paths run at paper scale only when invoked
// explicitly.
func TestRunUnknownInputs(t *testing.T) {
	if err := run("fig3", "nope", 10, 1, "table", "", "", false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("figZZ", "small", 10, 1, "table", "", "", false); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("fig2", "small", 10, 1, "xml", "", "", false); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("engines", "small", 10, 1, "table", "no-such-engine", "", false); err == nil {
		t.Error("unknown engine name accepted")
	}
}

func TestSweepEngines(t *testing.T) {
	names := sweepEngines("")
	if len(names) == 0 {
		t.Fatal("default sweep is empty")
	}
	for _, n := range names {
		if n == "bulkdp-naive" {
			t.Error("default sweep includes the quadratic bulkdp-naive ablation")
		}
	}
	got := sweepEngines("casper, pub")
	if len(got) != 2 || got[0] != "casper" || got[1] != "pub" {
		t.Errorf("explicit list parsed as %v", got)
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()
	if err := run("fig3", "small", 50, 1, "table", "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("fig2", "small", 50, 1, "csv", "", "", false); err != nil {
		t.Fatal(err)
	}
	// Tracing path: fig3 builds anonymizers, so the trace must be non-empty.
	trace := t.TempDir() + "/trace.json"
	if err := run("fig3", "small", 50, 1, "csv", "", trace, false); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	// The registry sweep over the two k-inside baselines stays cheap and
	// exercises the engines experiment end to end.
	if err := run("engines", "small", 50, 1, "csv", "casper,puq", "", false); err != nil {
		t.Fatal(err)
	}
}
