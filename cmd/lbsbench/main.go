// Command lbsbench regenerates the paper's evaluation tables and figures
// (Section VI) from the synthetic Bay-Area dataset, plus the repository's
// extension experiments.
//
// Usage:
//
//	lbsbench -exp all -scale small
//	lbsbench -exp fig4a -scale paper           # full 1.75M-location sweep
//	lbsbench -exp fig5a -k 50 -format csv      # machine-readable output
//
// Experiments: fig2 (population density), fig3 (tree shape), fig4a (bulk
// anonymization time vs |D| and servers), fig4b (time vs k), fig5a (cost
// overhead vs Casper/PUB/PUQ), fig5b (incremental maintenance), parallel
// (Section VI-D utility loss), hilbert (policy-aware-safe schemes),
// adaptive (semi-quadrant orientation), trajectory (anonymity erosion),
// utility (answer sizes), engines (cross-engine registry sweep; select
// engines with -engines), workers (intra-tree DP worker sweep; writes the
// tracked BENCH_bulkdp.json baseline — see -bench-out, -workers,
// -bench-time, and the validate-only -check-bench mode), audit (privacy
// observatory serving overhead: /v1/request throughput with audit
// sampling off vs at -audit-rate; writes the tracked BENCH_audit.json —
// see -audit-out), churn (live motion pipeline: streaming update
// throughput under forced incremental maintenance vs rebuild-per-batch;
// writes the tracked BENCH_churn.json — see -churn-out), serve (amortized
// serving hot path: POST /v1/request/batch throughput and p50/p99 vs
// sequential /v1/request, with CSP singleflight counters; writes the
// tracked BENCH_serve.json — see -serve-out, -batch-size), trace
// (always-on observability overhead: /v1/request throughput with
// tail-sampled request tracing off vs on, plus flight-recorder retention
// accounting; writes the tracked BENCH_trace.json — see -trace-out), all.
//
// -check-bench validates any tracked benchmark document: it sniffs the
// "bench" discriminator field and dispatches to the matching loader, so
// CI can gate BENCH_bulkdp.json, BENCH_audit.json, BENCH_churn.json,
// BENCH_serve.json, and BENCH_trace.json with one mode. A negative measured overhead (the audited run out-ran
// its baseline) passes with a note — it is measurement noise, not a
// speedup. -check-bench-all validates every BENCH_*.json in the working
// directory in a single pass, for the CI bench-smoke job.
//
// All comparative experiments resolve their policies from the engine
// registry (internal/engine), so output keys are stable registry names.
//
// Observability: -trace FILE writes a Chrome trace_event JSON file of
// every anonymization phase the selected experiments ran (open in
// chrome://tracing or ui.perfetto.dev); -phase-summary prints the
// aggregated per-phase timing table to stderr, the combine/pass-up/
// extract breakdown the Section VI evaluation is built around. See
// docs/OBSERVABILITY.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/engine"
	"policyanon/internal/experiments"
	"policyanon/internal/obs"
	_ "policyanon/internal/parallel" // register the "parallel" engine
	"policyanon/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig2|fig3|fig4a|fig4b|fig5a|fig5b|parallel|utility|hilbert|adaptive|trajectory|engines|workers|audit|churn|serve|trace|all")
		scale      = flag.String("scale", "small", "dataset scale: small (~50k users) or paper (1.75M users)")
		k          = flag.Int("k", 50, "anonymity parameter k")
		seed       = flag.Int64("seed", 42, "dataset seed")
		format     = flag.String("format", "table", "output format: table|csv|markdown")
		engines    = flag.String("engines", "", "comma-separated registry names for -exp engines (default: all but bulkdp-naive)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		phases     = flag.Bool("phase-summary", false, "print per-phase timing table to stderr")
		benchOut   = flag.String("bench-out", "BENCH_bulkdp.json", "output file for the -exp workers sweep")
		workerList = flag.String("workers", "1,2,4,8", "comma-separated worker counts for -exp workers")
		benchTime  = flag.Duration("bench-time", time.Second, "measurement budget per worker count for -exp workers and per mode for -exp audit")
		auditOut   = flag.String("audit-out", "BENCH_audit.json", "output file for the -exp audit overhead benchmark")
		churnOut   = flag.String("churn-out", "BENCH_churn.json", "output file for the -exp churn streaming benchmark")
		auditRate  = flag.Float64("audit-rate", audit.DefaultRate, "request sampling rate for -exp audit's sampled mode")
		serveOut   = flag.String("serve-out", "BENCH_serve.json", "output file for the -exp serve throughput benchmark")
		batchSize  = flag.Int("batch-size", 64, "requests per batch POST for -exp serve")
		// -trace is already the Chrome trace_event output; the tracked
		// tracing-overhead document gets its own flag.
		traceBenchOut = flag.String("trace-out", "BENCH_trace.json", "output file for the -exp trace overhead benchmark")
		checkBench    = flag.String("check-bench", "", "validate an existing BENCH file (bulkdp, audit, churn, serve, or trace) and exit (CI gate)")
		checkBenchAll = flag.Bool("check-bench-all", false, "validate every tracked BENCH_*.json in the working directory in one pass and exit (CI gate)")
	)
	flag.Parse()
	if *checkBench != "" {
		note, err := checkBenchFile(*checkBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid%s\n", *checkBench, note)
		return
	}
	if *checkBenchAll {
		if err := checkAllBenchFiles(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lbsbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *scale, *k, *seed, *format, *engines, *traceOut, *phases,
		*benchOut, *workerList, *benchTime, *auditOut, *auditRate, *churnOut,
		*serveOut, *batchSize, *traceBenchOut); err != nil {
		fmt.Fprintln(os.Stderr, "lbsbench:", err)
		os.Exit(1)
	}
}

// checkBenchFile is the -check-bench mode: decode and validate a tracked
// benchmark document, failing the process on malformed or out-of-budget
// output. The document kind is sniffed from the "bench" discriminator
// field; documents without one are the original bulkdp sweeps. The
// returned note annotates pass-with-note conditions — a negative measured
// overhead (the audited run out-ran the baseline) is measurement noise,
// not a failure.
func checkBenchFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Bench string `json:"bench"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	note := ""
	switch probe.Bench {
	case "audit":
		var b *experiments.AuditBench
		b, err = experiments.LoadAuditBench(bytes.NewReader(data))
		if err == nil {
			if b.OverheadPct < 0 {
				note += fmt.Sprintf(" (note: overheadPct %.2f%% < 0 is measurement noise, treated as 0)", b.OverheadPct)
			}
			if b.LedgerOverheadPct != nil && *b.LedgerOverheadPct < 0 {
				note += fmt.Sprintf(" (note: ledgerOverheadPct %.2f%% < 0 is measurement noise, treated as 0)", *b.LedgerOverheadPct)
			}
		}
	case "churn":
		_, err = experiments.LoadChurnBench(bytes.NewReader(data))
	case "serve":
		_, err = experiments.LoadServeBench(bytes.NewReader(data))
	case "trace":
		var b *experiments.TraceBench
		b, err = experiments.LoadTraceBench(bytes.NewReader(data))
		if err == nil && b.OverheadPct < 0 {
			note += fmt.Sprintf(" (note: overheadPct %.2f%% < 0 is measurement noise, treated as 0)", b.OverheadPct)
		}
	case "":
		var b *experiments.BulkDPBench
		b, err = experiments.LoadBulkDPBench(bytes.NewReader(data))
		if err == nil {
			note += b.SpeedupGateNote()
		}
	default:
		err = fmt.Errorf("unknown bench kind %q", probe.Bench)
	}
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return note, nil
}

// checkAllBenchFiles is the -check-bench-all mode: glob every tracked
// BENCH_*.json in the working directory and validate each, reporting all
// failures (not just the first) before failing the process.
func checkAllBenchFiles(w io.Writer) error {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("check-bench-all: no BENCH_*.json files in the working directory")
	}
	sort.Strings(paths)
	failed := 0
	for _, path := range paths {
		note, err := checkBenchFile(path)
		if err != nil {
			fmt.Fprintf(w, "%s: INVALID: %v\n", path, err)
			failed++
			continue
		}
		fmt.Fprintf(w, "%s: valid%s\n", path, note)
	}
	if failed > 0 {
		return fmt.Errorf("check-bench-all: %d of %d tracked documents failed", failed, len(paths))
	}
	return nil
}

// parseWorkerList parses the -workers flag ("1,2,4,8").
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers lists no counts")
	}
	return out, nil
}

// sweepEngines resolves the -engines flag: an explicit comma list, or
// every registered engine except the quadratic bulkdp-naive ablation,
// which is unusable at benchmark sizes.
func sweepEngines(flagVal string) []string {
	if flagVal != "" {
		var names []string
		for _, n := range strings.Split(flagVal, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	var names []string
	for _, n := range engine.Names() {
		if n != "bulkdp-naive" {
			names = append(names, n)
		}
	}
	return names
}

func run(exp, scale string, k int, seed int64, format, engineList, traceOut string, phases bool,
	benchOut, workerList string, benchTime time.Duration, auditOut string, auditRate float64,
	churnOut, serveOut string, batchSize int, traceBenchOut string) error {
	switch format {
	case "table", "csv", "markdown":
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	var cfg workload.Config
	var sizes []int
	var servers []int
	var fig4bN, fig5bN, parN int
	switch scale {
	case "small":
		cfg = workload.Config{MapSide: 1 << 14, Intersections: 10000, UsersPerIntersection: 5, SpreadSigma: 150}
		sizes = []int{10000, 20000, 30000, 40000, 50000}
		servers = []int{1, 2, 4, 8, 16}
		fig4bN, fig5bN, parN = 30000, 30000, 50000
	case "paper":
		cfg = workload.Config{} // defaults: 175k intersections x 10 = 1.75M
		sizes = []int{100000, 250000, 500000, 1000000, 1750000}
		servers = []int{1, 2, 4, 8, 16, 32}
		fig4bN, fig5bN, parN = 1000000, 1000000, 1000000
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	tableMode := format == "table"
	banner := func(s string) {
		if tableMode {
			fmt.Println(s)
		}
	}
	emit := func(tbl experiments.Table, print func()) error {
		switch format {
		case "csv":
			return tbl.WriteCSV(os.Stdout)
		case "markdown":
			return tbl.WriteMarkdown(os.Stdout)
		default:
			print()
			fmt.Println()
			return nil
		}
	}

	start := time.Now()
	if tableMode {
		fmt.Printf("generating %s-scale dataset (seed %d)...\n", scale, seed)
	}
	d := experiments.NewDataset(cfg, seed)
	var tracer *obs.Tracer
	if traceOut != "" || phases {
		tracer = obs.NewTracer()
		d.Ctx = obs.WithTracer(context.Background(), tracer)
	}
	if tableMode {
		fmt.Printf("master set: %d locations in %v\n\n", d.Master.Len(), time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("fig2") {
		ran = true
		banner("== Fig 2: synthetic population density (skew summary) ==")
		rows := experiments.Fig2(d, []int{8, 16, 32})
		if err := emit(experiments.Fig2Table(rows), func() { experiments.PrintFig2(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("fig3") {
		ran = true
		banner(fmt.Sprintf("== Fig 3: binary tree shape, k=%d ==", k))
		rows, err := experiments.Fig3(d, sizes, k)
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig3Table(rows), func() { experiments.PrintFig3(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("fig4a") {
		ran = true
		banner(fmt.Sprintf("== Fig 4(a): bulk anonymization time vs |D|, k=%d ==", k))
		rows, err := experiments.Fig4a(d, sizes, servers, k)
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig4aTable(rows), func() { experiments.PrintFig4a(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("fig4b") {
		ran = true
		banner(fmt.Sprintf("== Fig 4(b): anonymization time vs k, |D|=%d ==", fig4bN))
		rows, err := experiments.Fig4b(d, fig4bN, []int{10, 25, 50, 75, 100, 150})
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig4bTable(rows), func() { experiments.PrintFig4b(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("fig5a") {
		ran = true
		banner(fmt.Sprintf("== Fig 5(a): average cloak area by policy, k=%d ==", k))
		rows, err := experiments.Fig5a(d, sizes, k)
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig5aTable(rows), func() { experiments.PrintFig5a(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("fig5b") {
		ran = true
		banner(fmt.Sprintf("== Fig 5(b): incremental maintenance vs bulk, |D|=%d, k=%d ==", fig5bN, k))
		rows, err := experiments.Fig5b(d, fig5bN, k,
			[]float64{0.0001, 0.001, 0.01, 0.02, 0.05, 0.10}, 200)
		if err != nil {
			return err
		}
		if err := emit(experiments.Fig5bTable(rows), func() { experiments.PrintFig5b(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("hilbert") {
		ran = true
		banner(fmt.Sprintf("== Extension: policy-aware-safe schemes and FindMBC, k=%d ==", k))
		rows, err := experiments.Hilbert(d, sizes[:min(2, len(sizes))], k)
		if err != nil {
			return err
		}
		if err := emit(experiments.HilbertTable(rows), func() { experiments.PrintHilbert(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("adaptive") {
		ran = true
		banner(fmt.Sprintf("== Extension: adaptive semi-quadrant orientation, k=%d ==", k))
		rows, err := experiments.Adaptive(d, sizes[:min(3, len(sizes))], k)
		if err != nil {
			return err
		}
		if err := emit(experiments.AdaptiveTable(rows), func() { experiments.PrintAdaptive(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("trajectory") {
		ran = true
		banner(fmt.Sprintf("== Extension: trajectory-aware anonymity erosion, k=%d ==", k))
		rows, err := experiments.TrajectoryErosion(d, sizes[0], k, 8, -1)
		if err != nil {
			return err
		}
		if err := emit(experiments.TrajectoryTable(rows), func() { experiments.PrintTrajectory(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("utility") {
		ran = true
		banner(fmt.Sprintf("== Utility extension: NN answer sizes over a 10k-POI catalogue, |D|=%d, k=%d ==", fig5bN, k))
		rows, err := experiments.AnswerSize(d, fig5bN, k, 10000)
		if err != nil {
			return err
		}
		if err := emit(experiments.UtilityTable(rows), func() { experiments.PrintUtility(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("engines") {
		ran = true
		names := sweepEngines(engineList)
		banner(fmt.Sprintf("== Cross-engine sweep: %s, |D|=%d, k=%d ==", strings.Join(names, " "), sizes[0], k))
		rows, err := experiments.EngineSweep(d, sizes[0], k, names)
		if err != nil {
			return err
		}
		if err := emit(experiments.EnginesTable(rows), func() { experiments.PrintEngines(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if want("workers") {
		ran = true
		counts, err := parseWorkerList(workerList)
		if err != nil {
			return err
		}
		banner(fmt.Sprintf("== Bulk_dp intra-tree worker sweep, |D|=%d, k=%d ==", sizes[0], k))
		bench, err := experiments.WorkersSweep(d, sizes[0], k, counts, benchTime)
		if err != nil {
			return err
		}
		bench.Dataset = scale
		if err := writeBench(benchOut, bench); err != nil {
			return err
		}
		if err := emit(experiments.BulkDPBenchTable(bench), func() { experiments.PrintBulkDPBench(os.Stdout, bench) }); err != nil {
			return err
		}
		// The one-line summary goes to stderr in every format, so CSV and
		// markdown pipelines still show the speedup at a glance.
		fmt.Fprintln(os.Stderr, "lbsbench:", experiments.SpeedupSummary(bench))
		fmt.Fprintf(os.Stderr, "lbsbench: sweep written to %s\n", benchOut)
	}
	if want("audit") {
		ran = true
		banner(fmt.Sprintf("== Privacy observatory: /v1/request audit overhead, |D|=%d, k=%d, rate=%.4f ==",
			sizes[0], k, auditRate))
		bench, err := experiments.AuditSweep(d, sizes[0], k, auditRate, benchTime)
		if err != nil {
			return err
		}
		bench.Dataset = scale
		if err := writeBench(auditOut, bench); err != nil {
			return err
		}
		if err := emit(experiments.AuditBenchTable(bench), func() { experiments.PrintAuditBench(os.Stdout, bench) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "lbsbench:", experiments.AuditOverheadSummary(bench))
		fmt.Fprintf(os.Stderr, "lbsbench: audit benchmark written to %s\n", auditOut)
	}
	if want("churn") {
		ran = true
		// Churn runs at the scale's full master population (the largest
		// sweep size), not the smallest: delta publication's advantage
		// over rebuild grows with |D| because a fixed-size move batch
		// dirties a near-constant ancestor closure while the rebuild DP
		// is O(|D|). Measuring at the smallest size understates the
		// steady-state streaming regime the gate protects.
		churnN := sizes[len(sizes)-1]
		banner(fmt.Sprintf("== Live motion: streaming churn, incremental vs rebuild, |D|=%d, k=%d ==", churnN, k))
		bench, err := experiments.ChurnSweep(d, churnN, k, benchTime)
		if err != nil {
			return err
		}
		bench.Dataset = scale
		if err := writeBench(churnOut, bench); err != nil {
			return err
		}
		if err := emit(experiments.ChurnBenchTable(bench), func() { experiments.PrintChurnBench(os.Stdout, bench) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "lbsbench:", experiments.ChurnSpeedupSummary(bench))
		fmt.Fprintf(os.Stderr, "lbsbench: churn benchmark written to %s\n", churnOut)
	}
	if want("serve") {
		ran = true
		banner(fmt.Sprintf("== Amortized serving: /v1/request/batch vs /v1/request, |D|=%d, k=%d, batch=%d ==",
			sizes[0], k, batchSize))
		bench, err := experiments.ServeSweep(d, sizes[0], k, batchSize, benchTime)
		if err != nil {
			return err
		}
		bench.Dataset = scale
		if err := writeBench(serveOut, bench); err != nil {
			return err
		}
		if err := emit(experiments.ServeBenchTable(bench), func() { experiments.PrintServeBench(os.Stdout, bench) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "lbsbench:", experiments.ServeSpeedupSummary(bench))
		fmt.Fprintf(os.Stderr, "lbsbench: serve benchmark written to %s\n", serveOut)
	}
	if want("trace") {
		ran = true
		banner(fmt.Sprintf("== Always-on observability: /v1/request tracing overhead, |D|=%d, k=%d ==",
			sizes[0], k))
		bench, err := experiments.TraceSweep(d, sizes[0], k, benchTime)
		if err != nil {
			return err
		}
		bench.Dataset = scale
		if err := writeBench(traceBenchOut, bench); err != nil {
			return err
		}
		if err := emit(experiments.TraceBenchTable(bench), func() { experiments.PrintTraceBench(os.Stdout, bench) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "lbsbench:", experiments.TraceOverheadSummary(bench))
		fmt.Fprintf(os.Stderr, "lbsbench: trace benchmark written to %s\n", traceBenchOut)
	}
	if want("parallel") {
		ran = true
		banner(fmt.Sprintf("== Sec VI-D: parallel utility loss, |D|=%d, k=%d ==", parN, k))
		rows, err := experiments.ParallelUtility(d, parN, k, []int{1, 16, 64, 256, 1024, 2048, 4096})
		if err != nil {
			return err
		}
		if err := emit(experiments.ParallelTable(rows), func() { experiments.PrintParallel(os.Stdout, rows) }); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if phases {
		if err := tracer.WritePhaseTable(os.Stderr); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lbsbench: trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// writeBench writes a benchmark document as indented JSON.
func writeBench(path string, bench any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
