// Parallelism demonstrates the Section V scale-out: the map is greedily
// partitioned into jurisdictions, each anonymized by an independent
// server, and the resulting master policy is audited and compared against
// the single-server optimum (the Section VI-D utility-loss experiment in
// miniature).
package main

import (
	"fmt"
	"log"
	"time"

	"policyanon"
)

func main() {
	const k = 50
	cfg := policyanon.WorkloadConfig{
		MapSide:              1 << 15,
		Intersections:        30000,
		UsersPerIntersection: 5,
		SpreadSigma:          200,
	}
	db := policyanon.GenerateWorkload(cfg, 11)
	bounds := policyanon.Square(0, 0, cfg.MapSide)
	fmt.Printf("snapshot: %d users, k=%d\n\n", db.Len(), k)

	// Single-server optimum as the cost reference.
	start := time.Now()
	single, err := policyanon.NewEngine(db, bounds, policyanon.EngineOptions{K: k, Servers: 1})
	if err != nil {
		log.Fatal(err)
	}
	optCost, err := single.TotalCost()
	if err != nil {
		log.Fatal(err)
	}
	singleTime := time.Since(start)

	fmt.Printf("%8s %10s %10s %14s %12s %s\n", "servers", "wall time", "crit path", "cost", "divergence", "max/min load")
	fmt.Printf("%8d %10v %10v %14d %11.3f%% -\n",
		1, singleTime.Round(time.Millisecond), single.CriticalPath().Round(time.Millisecond), optCost, 0.0)
	for _, n := range []int{2, 4, 8, 16, 32} {
		start := time.Now()
		eng, err := policyanon.NewEngine(db, bounds, policyanon.EngineOptions{K: k, Servers: n})
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		cost, err := eng.TotalCost()
		if err != nil {
			log.Fatal(err)
		}
		maxL, minL := 0, db.Len()
		for _, l := range eng.ServerLoads() {
			if l > maxL {
				maxL = l
			}
			if l > 0 && l < minL {
				minL = l
			}
		}
		div := 100 * (float64(cost) - float64(optCost)) / float64(optCost)
		fmt.Printf("%8d %10v %10v %14d %11.3f%% %d/%d\n",
			eng.NumServers(), el.Round(time.Millisecond),
			eng.CriticalPath().Round(time.Millisecond), cost, div, maxL, minL)
	}

	// The master policy remains policy-aware k-anonymous.
	eng, err := policyanon.NewEngine(db, bounds, policyanon.EngineOptions{K: k, Servers: 16})
	if err != nil {
		log.Fatal(err)
	}
	master, err := eng.Policy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n16-server master policy policy-aware %d-anonymous: %v\n",
		k, policyanon.IsKAnonymous(master, k, policyanon.PolicyAware))
}
