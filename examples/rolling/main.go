// Rolling drives the serving-path layer: lock-free cloak lookups continue
// at full rate while user movement is ingested and the next snapshot's
// policy is verified and swapped in atomically — the deployment shape a
// real CSP needs for the paper's periodic-snapshot model.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"policyanon"
)

func main() {
	const (
		k         = 25
		side      = int32(1 << 13)
		users     = 20000
		snapshots = 6
	)
	rng := rand.New(rand.NewSource(7))
	db := policyanon.NewLocationDB()
	for i := 0; i < users; i++ {
		if err := db.Add(fmt.Sprintf("u%05d", i),
			policyanon.Pt(rng.Int31n(side), rng.Int31n(side))); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	r, err := policyanon.NewRollingAnonymizer(db, policyanon.Square(0, 0, side), k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial policy for %d users published in %v (epoch %d)\n\n",
		users, time.Since(start).Round(time.Millisecond), r.Epoch())

	// Lookup workers hammer the published policy while snapshots roll.
	var lookups atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lr := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("u%05d", lr.Intn(users))
				if _, err := r.CloakOf(id); err != nil {
					log.Fatal(err)
				}
				lookups.Add(1)
			}
		}(w)
	}

	fmt.Printf("%8s %8s %12s %14s %12s\n", "epoch", "moves", "commit", "policy cost", "lookups so far")
	for s := 0; s < snapshots; s++ {
		for j := 0; j < users/100; j++ { // 1% of users move
			id := fmt.Sprintf("u%05d", rng.Intn(users))
			if err := r.Move(id, policyanon.Pt(rng.Int31n(side), rng.Int31n(side))); err != nil {
				log.Fatal(err)
			}
		}
		st, err := r.Commit()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8d %12v %14d %12d\n",
			st.Epoch, st.PendingMoves, st.CommitTime.Round(time.Millisecond),
			st.PolicyCost, lookups.Load())
	}
	close(stop)
	wg.Wait()
	fmt.Printf("\nserved %d lock-free lookups across %d policy swaps; every published policy was verified %d-anonymous\n",
		lookups.Load(), r.Epoch()-1, k)
}
