// Bayarea anonymizes a synthetic Bay-Area-style snapshot at scale and
// compares the optimal policy-aware policy against the policy-unaware
// baselines, reproducing a row of Figure 5(a) end to end through the
// public API.
package main

import (
	"fmt"
	"log"
	"time"

	"policyanon"
)

func main() {
	const k = 50
	cfg := policyanon.WorkloadConfig{
		MapSide:              1 << 15, // ~33 km
		Intersections:        20000,
		UsersPerIntersection: 5,
		SpreadSigma:          200,
	}
	db := policyanon.GenerateWorkload(cfg, 42)
	bounds := policyanon.Square(0, 0, cfg.MapSide)
	fmt.Printf("snapshot: %d users on a %d m map, k=%d\n\n", db.Len(), cfg.MapSide, k)

	start := time.Now()
	anon, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := anon.Policy()
	if err != nil {
		log.Fatal(err)
	}
	optimalTime := time.Since(start)

	type result struct {
		name   string
		policy *policyanon.Assignment
	}
	results := []result{{"policy-aware optimum", optimal}}
	for _, b := range []struct {
		name string
		fn   func(*policyanon.LocationDB, policyanon.Rect, int) (*policyanon.Assignment, error)
	}{
		{"Casper", policyanon.Casper},
		{"PUB", policyanon.PUB},
		{"PUQ", policyanon.PUQ},
	} {
		pol, err := b.fn(db, bounds, k)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{b.name, pol})
	}

	fmt.Printf("%-22s %14s %12s %12s\n", "policy", "avg cloak m^2", "aware-safe", "unaware-safe")
	for _, r := range results {
		fmt.Printf("%-22s %14.0f %12v %12v\n", r.name, r.policy.AvgArea(),
			policyanon.IsKAnonymous(r.policy, k, policyanon.PolicyAware),
			policyanon.IsKAnonymous(r.policy, k, policyanon.PolicyUnaware))
	}

	casper := results[1].policy
	fmt.Printf("\npolicy-aware / Casper cost ratio: %.2f (paper reports at most 1.7)\n",
		optimal.AvgArea()/casper.AvgArea())
	fmt.Printf("bulk anonymization of %d users took %v\n", db.Len(), optimalTime.Round(time.Millisecond))
}
