// Multik demonstrates user-specified anonymity levels (the paper's
// future-work extension, realized conservatively by bucketed optimal
// anonymization): privacy-sensitive users request k=100 while the rest
// settle for k=20, and the audit verifies everyone got at least what they
// asked for.
package main

import (
	"fmt"
	"log"

	"policyanon"
)

func main() {
	cfg := policyanon.WorkloadConfig{
		MapSide: 1 << 14, Intersections: 5000, UsersPerIntersection: 5, SpreadSigma: 150,
	}
	db := policyanon.GenerateWorkload(cfg, 23)
	bounds := policyanon.Square(0, 0, cfg.MapSide)

	// 10% of users are privacy-sensitive.
	ks := make([]int, db.Len())
	sensitive := 0
	for i := range ks {
		if i%10 == 0 {
			ks[i] = 100
			sensitive++
		} else {
			ks[i] = 20
		}
	}
	fmt.Printf("population %d: %d users demand k=100, the rest k=20\n\n", db.Len(), sensitive)

	pol, err := policyanon.MultiKPolicy(db, bounds, ks, policyanon.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if violated := policyanon.MultiKAudit(pol, ks); len(violated) != 0 {
		log.Fatalf("audit failed for %d users", len(violated))
	}
	fmt.Println("audit: every user's requested anonymity level is met")

	// The alternative without per-user k is flattening everyone to the
	// maximum requested level. Compare per class: the low-k majority gets
	// far tighter cloaks under per-user k, while the sensitive minority
	// pays for its stronger guarantee with larger ones (its cloaking
	// groups draw from a 10x sparser subpopulation).
	flat, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: 100})
	if err != nil {
		log.Fatal(err)
	}
	flatPol, err := flat.Policy()
	if err != nil {
		log.Fatal(err)
	}
	var lowMulti, lowFlat, hiMulti, hiFlat float64
	var nLow, nHi int
	for i := range ks {
		if ks[i] == 20 {
			lowMulti += float64(pol.CloakAt(i).Area())
			lowFlat += float64(flatPol.CloakAt(i).Area())
			nLow++
		} else {
			hiMulti += float64(pol.CloakAt(i).Area())
			hiFlat += float64(flatPol.CloakAt(i).Area())
			nHi++
		}
	}
	fmt.Printf("\n%-28s %14s %14s\n", "avg cloak area (m^2)", "per-user k", "flat k=100")
	fmt.Printf("%-28s %14.0f %14.0f  (%.1fx tighter)\n", "k=20 majority",
		lowMulti/float64(nLow), lowFlat/float64(nLow), (lowFlat / lowMulti))
	fmt.Printf("%-28s %14.0f %14.0f  (the price of k=100 from a sparser bucket)\n",
		"k=100 sensitive minority", hiMulti/float64(nHi), hiFlat/float64(nHi))
}
