// Breaches reproduces the two Section VII attacks of Figure 6: the
// k-sharing constraint of Chow-Mokbel [11] (Fig. 6a) and the
// k-reciprocity constraint of Kalnis et al. [17] on circular base-station
// cloaks (Fig. 6b). Both refinements of k-inside cloaking fail against a
// policy-aware attacker.
package main

import (
	"fmt"
	"log"

	"policyanon"
	"policyanon/internal/baseline"
)

func main() {
	fig6a()
	fig6b()
}

// fig6a: users A --- B -- C on a line; C's nearest neighbour is B, but B's
// nearest is A. If C's request arrives first, the anonymizer groups {C,B};
// a policy-aware attacker who sees that cloak knows only C could have
// triggered it.
func fig6a() {
	fmt.Println("=== Fig 6(a): policy-aware breach of k-sharing ===")
	db := policyanon.NewLocationDB()
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"A", 0, 0}, {"B", 4, 0}, {"C", 9, 0}} {
		if err := db.Add(u.id, policyanon.Pt(u.x, u.y)); err != nil {
			log.Fatal(err)
		}
	}
	const k = 2
	for first := 0; first < db.Len(); first++ {
		cloaks, err := policyanon.KSharing(db, k, []int{first})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  if %s requests first, the emitted cloak is %v\n",
			db.At(first).UserID, cloaks[0])
	}
	cFirst, err := policyanon.KSharing(db, k, []int{2})
	if err != nil {
		log.Fatal(err)
	}
	cand, err := baseline.FirstRequestCandidates(db, k, cFirst[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  attacker observes %v as the first request's cloak\n", cFirst[0])
	fmt.Printf("  policy-aware candidate senders: %v  <- k-sharing breached (want >= %d)\n\n", cand, k)
}

// fig6b: Alice and Bob between base stations S1 and S2; each is cloaked by
// a circle at her nearest station covering both users. The cloaking is
// 2-reciprocal, yet each circle's cloaking group is a single user.
func fig6b() {
	fmt.Println("=== Fig 6(b): policy-aware breach of k-reciprocity ===")
	db := policyanon.NewLocationDB()
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"Alice", 4, 0}, {"Bob", 6, 0}} {
		if err := db.Add(u.id, policyanon.Pt(u.x, u.y)); err != nil {
			log.Fatal(err)
		}
	}
	stations := []policyanon.Point{policyanon.Pt(0, 0), policyanon.Pt(10, 0)}
	const k = 2
	ca, err := policyanon.NearestCenterCircles(db, stations, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  2-reciprocity holds: %v\n", ca.IsKReciprocal(k))
	for i := 0; i < db.Len(); i++ {
		c := ca.CircleAt(i)
		fmt.Printf("  %s is cloaked by %v covering %v\n",
			db.At(i).UserID, c, ca.PolicyUnawareCandidates(c))
	}
	aliceCloak := ca.CircleAt(0)
	fmt.Printf("  attacker observes %v: policy-aware candidates %v  <- breached (want >= %d)\n",
		aliceCloak, ca.PolicyAwareCandidates(aliceCloak), k)
}
