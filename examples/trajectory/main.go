// Trajectory demonstrates the attacker the paper explicitly scopes out
// and defers to future work: one who knows that a series of requests
// (against different snapshots) came from the same unknown user.
// Intersecting the per-snapshot candidate sets erodes anonymity even
// though every individual snapshot's policy is policy-aware k-anonymous —
// the empirical motivation for the trajectory-aware extension.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"policyanon"
	"policyanon/internal/workload"
)

func main() {
	const (
		k     = 20
		side  = int32(1 << 13)
		snaps = 8
	)
	cfg := policyanon.WorkloadConfig{
		MapSide: side, Intersections: 2500, UsersPerIntersection: 4, SpreadSigma: 80,
	}
	db := policyanon.GenerateWorkload(cfg, 17)
	bounds := policyanon.Square(0, 0, side)
	rng := rand.New(rand.NewSource(5))
	const target = 4242 // the pinned user

	fmt.Printf("population %d, k=%d; tracking one user across %d snapshots\n\n", db.Len(), k, snaps)
	fmt.Printf("%8s %22s %20s\n", "snapshot", "per-snapshot anonymity", "composed anonymity")

	var series []policyanon.TrajectoryObservation
	for s := 0; s < snaps; s++ {
		anon, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: k})
		if err != nil {
			log.Fatal(err)
		}
		pol, err := anon.Policy()
		if err != nil {
			log.Fatal(err)
		}
		cloak := pol.CloakAt(target)
		series = append(series, policyanon.TrajectoryObservation{
			Policy: pol, Cloak: cloak, Aware: policyanon.PolicyAware,
		})
		perSnap := len(policyanon.Candidates(pol, cloak, policyanon.PolicyAware))
		composed := len(policyanon.TrajectoryCandidates(series))
		fmt.Printf("%8d %22d %20d\n", s, perSnap, composed)
		// Everyone moves before the next snapshot.
		workload.Apply(db, workload.PlanMoves(rng, db, 1.0, 400, side))
	}
	composed := policyanon.TrajectoryCandidates(series)
	fmt.Printf("\nafter %d snapshots the trajectory-aware attacker is down to %d candidates", snaps, len(composed))
	if len(composed) < k {
		fmt.Printf(" — BELOW k=%d.\n", k)
		fmt.Println("Per-snapshot sender k-anonymity does not compose over time;")
		fmt.Println("defending against trajectory-aware attackers is the paper's stated future work.")
	} else {
		fmt.Println(".")
	}
}
