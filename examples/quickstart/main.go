// Quickstart walks through the paper's running example (Table I /
// Examples 1-8): it builds the five-user location database, shows that the
// classical 2-inside quad-tree cloaking is broken by a policy-aware
// attacker, and then computes the optimal policy-aware sender 2-anonymous
// policy with the policyanon public API.
package main

import (
	"fmt"
	"log"

	"policyanon"
)

func main() {
	// The location database D1 (Table I), scaled onto an 8x8-meter map so
	// quadrant splits are exact. Alice and Bob are adjacent, Carol is an
	// outlier in the northwest, Sam and Tom share the southeast.
	db := policyanon.NewLocationDB()
	for _, u := range []struct {
		id   string
		x, y int32
	}{
		{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2},
	} {
		if err := db.Add(u.id, policyanon.Pt(u.x, u.y)); err != nil {
			log.Fatal(err)
		}
	}
	bounds := policyanon.Square(0, 0, 8)
	const k = 2

	// --- Act 1: the state of the art, a 2-inside quad-tree policy. ---
	puq, err := policyanon.PUQ(db, bounds, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2-inside quad-tree policy (Gruteser-Grunwald):")
	printCloaks(puq, db)

	// Against an attacker who does NOT know the policy, it holds up:
	// every cloak covers at least 2 users.
	fmt.Printf("\n  2-anonymous vs policy-UNAWARE attacker: %v\n",
		policyanon.IsKAnonymous(puq, k, policyanon.PolicyUnaware))

	// But the attacker of Section III knows the policy. Reverse-
	// engineering Carol's cloak leaves a single possible sender.
	breaches, _ := policyanon.Audit(puq, k, policyanon.PolicyAware)
	fmt.Printf("  2-anonymous vs policy-AWARE attacker:   %v\n", len(breaches) == 0)
	for _, b := range breaches {
		fmt.Printf("    BREACH: %s\n", b)
	}

	// --- Act 2: the paper's contribution. ---
	anon, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := anon.Policy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOptimal policy-aware 2-anonymous policy (Bulk_dp):")
	printCloaks(optimal, db)
	fmt.Printf("\n  2-anonymous vs policy-aware attacker: %v\n",
		policyanon.IsKAnonymous(optimal, k, policyanon.PolicyAware))
	fmt.Printf("  total cost (sum of cloak areas): %d m^2 vs %d m^2 for the broken policy\n",
		optimal.Cost(), puq.Cost())
}

func printCloaks(a *policyanon.Assignment, db *policyanon.LocationDB) {
	for _, g := range a.Groups() {
		fmt.Printf("  cloak %v covers:", g.Cloak)
		for _, m := range g.Members {
			fmt.Printf(" %s", db.At(m).UserID)
		}
		fmt.Println()
	}
}
