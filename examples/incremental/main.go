// Incremental simulates the moving-user scenario of Section VI-C: the
// location database is refreshed every snapshot interval with bounded user
// movement, and the optimum configuration matrix is maintained
// incrementally instead of being recomputed from scratch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"policyanon"
	"policyanon/internal/workload"
)

func main() {
	const (
		k         = 50
		snapshots = 8
		moveFrac  = 0.01  // 1% of users move per snapshot
		maxMove   = 200.0 // meters per snapshot, the paper's bound
	)
	cfg := policyanon.WorkloadConfig{
		MapSide:              1 << 15,
		Intersections:        20000,
		UsersPerIntersection: 5,
		SpreadSigma:          200,
	}
	db := policyanon.GenerateWorkload(cfg, 3)
	bounds := policyanon.Square(0, 0, cfg.MapSide)

	start := time.Now()
	anon, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := anon.OptimalCost(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial bulk anonymization of %d users: %v\n\n", db.Len(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("%8s %12s %12s %8s %14s\n", "snapshot", "incremental", "bulk", "rows", "cost")

	rng := rand.New(rand.NewSource(99))
	for s := 1; s <= snapshots; s++ {
		moves := workload.PlanMoves(rng, db, moveFrac, maxMove, cfg.MapSide)

		t0 := time.Now()
		for _, mv := range moves {
			if err := anon.Move(mv.Index, mv.To); err != nil {
				log.Fatal(err)
			}
		}
		rows := anon.Refresh()
		incTime := time.Since(t0)
		cost, err := anon.OptimalCost()
		if err != nil {
			log.Fatal(err)
		}

		// Reference: full recomputation on the moved snapshot.
		t1 := time.Now()
		fresh, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: k})
		if err != nil {
			log.Fatal(err)
		}
		freshCost, err := fresh.OptimalCost()
		if err != nil {
			log.Fatal(err)
		}
		bulkTime := time.Since(t1)
		if cost != freshCost {
			log.Fatalf("incremental cost %d != bulk %d", cost, freshCost)
		}
		fmt.Printf("%8d %12v %12v %8d %14d\n",
			s, incTime.Round(time.Millisecond), bulkTime.Round(time.Millisecond), rows, cost)
	}
	fmt.Println("\nincremental maintenance tracked bulk recomputation exactly on every snapshot")
}
