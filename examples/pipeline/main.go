// Pipeline runs the full privacy-conscious LBS flow of Section II-B: user
// requests enter the trusted CSP, are anonymized under the optimal
// policy-aware policy, answered by an untrusted POI provider that only
// ever sees cloaks, cached per Section VII, and refined client-side.
// It then plays the attacker: with the provider's log, the location
// database, and full knowledge of the policy, every request still has at
// least k possible senders.
//
// The run is traced end to end: it finishes by printing the aggregated
// per-phase timing table and writing pipeline-trace.json, a Chrome
// trace_event file viewable in chrome://tracing or ui.perfetto.dev.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"policyanon"
)

func main() {
	const (
		k    = 10
		side = int32(4096)
	)
	rng := rand.New(rand.NewSource(7))

	// Every phase of the pipeline records spans into this tracer.
	tracer := policyanon.NewTracer()
	ctx := policyanon.WithTracer(context.Background(), tracer)

	// Snapshot: 400 users.
	db := policyanon.NewLocationDB()
	for i := 0; i < 400; i++ {
		id := fmt.Sprintf("user%03d", i)
		if err := db.Add(id, policyanon.Pt(rng.Int31n(side), rng.Int31n(side))); err != nil {
			log.Fatal(err)
		}
	}
	bounds := policyanon.Square(0, 0, side)

	// POI catalogue: 200 gas stations and restaurants.
	var pois []policyanon.POI
	for i := 0; i < 200; i++ {
		cat := "gas"
		if i%2 == 0 {
			cat = "rest"
		}
		pois = append(pois, policyanon.POI{
			ID:       fmt.Sprintf("poi%03d", i),
			Loc:      policyanon.Pt(rng.Int31n(side), rng.Int31n(side)),
			Category: cat,
		})
	}
	store, err := policyanon.NewPOIStore(pois, bounds, 0)
	if err != nil {
		log.Fatal(err)
	}
	provider := policyanon.NewPOIProvider(store)

	// The CSP computes the optimal policy-aware policy and serves.
	anon, err := policyanon.NewAnonymizerContext(ctx, db, bounds, policyanon.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := anon.Policy()
	if err != nil {
		log.Fatal(err)
	}
	csp := policyanon.NewCSP(policy, provider)

	// 150 users ask for the nearest gas station.
	correct := 0
	for i := 0; i < 150; i++ {
		rec := db.At(rng.Intn(db.Len()))
		sr := policyanon.ServiceRequest{
			UserID: rec.UserID, Loc: rec.Loc,
			Params: []policyanon.Param{{Name: "cat", Value: "gas"}},
		}
		_, answer, err := csp.ServeContext(ctx, sr)
		if err != nil {
			log.Fatal(err)
		}
		got, ok := policyanon.FilterNearest(answer, rec.Loc)
		want, ok2 := store.NearestCategory(rec.Loc, "gas")
		if ok && ok2 && rec.Loc.DistSq(got.Loc) == rec.Loc.DistSq(want.Loc) {
			correct++
		}
	}
	hits, misses := csp.CacheStats()
	fmt.Printf("served 150 nearest-gas-station requests; %d/150 exact answers after client filtering\n", correct)
	fmt.Printf("provider round-trips: %d (cache suppressed %d duplicates)\n", misses, hits)
	fmt.Printf("provider billing by category: %v\n\n", provider.Billing())

	// --- The attack. The provider's log leaks; the location database is
	// subpoenaed; the policy is known. How anonymous are the senders?
	minCand := db.Len()
	for _, ar := range provider.Log() {
		if n := len(policyanon.Candidates(policy, ar.Cloak, policyanon.PolicyAware)); n < minCand {
			minCand = n
		}
	}
	fmt.Printf("policy-aware attacker over %d logged requests: smallest candidate set = %d (k = %d)\n",
		len(provider.Log()), minCand, k)
	if minCand < k {
		log.Fatal("BREACH: this should be impossible")
	}
	fmt.Println("sender k-anonymity holds against the policy-aware attacker")

	// --- Where did the time go? The tracer aggregated every phase.
	fmt.Println("\nper-phase timing:")
	if err := tracer.WritePhaseTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("pipeline-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace written to pipeline-trace.json (open in chrome://tracing or ui.perfetto.dev)")
}
