package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
)

// StitchTrace reassembles one distributed trace: the coordinator-side
// spans captured in cap plus, fetched from every routed worker's
// GET /v1/debug/trace, the shard-side spans recorded under the same
// propagated trace ID. Shard span and lane IDs are remapped into
// per-worker ranges so they cannot collide with coordinator IDs, and
// each shard's root spans are re-parented onto the coordinator span
// whose ID was propagated as X-Parent-Span — the resulting span list is
// one tree, dumpable as JSON or via obs.WriteChromeSpans.
//
// Call it after the traced operation (e.g. ServeBatch) completes, while
// the workers still retain the trace: propagated traces are always
// retained on the worker side, but ring eviction is real — stitch
// promptly. A worker with no retained trace for the ID contributes
// nothing rather than failing the stitch (its leg may have been evicted),
// but a transport error does fail it.
func (c *Coordinator) StitchTrace(ctx context.Context, cap *obs.Capture) (*flight.Trace, error) {
	if cap == nil {
		return nil, fmt.Errorf("cluster: no capture to stitch")
	}
	c.routeMu.RLock()
	routes := append([]route(nil), c.routes...)
	c.routeMu.RUnlock()
	if len(routes) == 0 {
		return nil, fmt.Errorf("cluster: no deployment: call Anonymize first")
	}
	out := &flight.Trace{
		TraceID:      cap.TraceID(),
		Route:        "cluster.stitched",
		Start:        cap.Epoch(),
		Reasons:      []string{"stitched"},
		RemoteParent: cap.RemoteParent(),
		Spans:        cap.Spans(),
		SpansDropped: cap.Dropped(),
	}
	seen := make(map[string]bool, len(routes))
	shard := uint64(0)
	for _, rt := range routes {
		if seen[rt.worker] {
			continue
		}
		seen[rt.worker] = true
		shard++
		t, err := c.fetchTrace(ctx, rt.worker, cap.TraceID())
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s trace: %w", rt.worker, err)
		}
		if t == nil {
			continue
		}
		// Remap shard-local span/lane IDs into this worker's private
		// range; shard roots (parent 0 in the worker's process) hang
		// under the coordinator span the worker saw as X-Parent-Span.
		idBase := shard << 48
		laneBase := shard << 32
		for _, sp := range t.Spans {
			sp.ID += idBase
			if sp.Parent == 0 {
				sp.Parent = t.RemoteParent
			} else {
				sp.Parent += idBase
			}
			sp.Lane += laneBase
			sp.Attrs = append(sp.Attrs, obs.Attr{Key: "worker", Value: rt.worker})
			out.Spans = append(out.Spans, sp)
		}
		out.SpansDropped += t.SpansDropped
	}
	return out, nil
}

// fetchTrace pulls one worker's retained trace by ID; a 404 (never
// retained, or already evicted) returns nil without error.
func (c *Coordinator) fetchTrace(ctx context.Context, worker, tid string) (*flight.Trace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		worker+"/v1/debug/trace?tid="+url.QueryEscape(tid), nil)
	if err != nil {
		return nil, err
	}
	forwardRequestID(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("trace fetch rejected: %s: %s", resp.Status, msg)
	}
	var t flight.Trace
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}
