// Package cluster implements the paper's multi-server deployment over the
// wire: a coordinator partitions the map into jurisdictions with the
// greedy rule of Section V, shards the location snapshot across a pool of
// anonymization servers (the HTTP service of internal/server, one per
// jurisdiction), runs them concurrently, and assembles the master policy
// from the per-server checkpoints.
//
// This is the distributed counterpart of internal/parallel, which runs
// the same decomposition in-process.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/checkpoint"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
	"policyanon/internal/parallel"
	"policyanon/internal/verify"
)

// shardAttempts is how many times one shard RPC sequence is tried before
// the whole Anonymize call fails; only transport-level failures are
// retried (a rejected snapshot is deterministic and retried never).
const shardAttempts = 2

// Coordinator drives a pool of anonymization servers.
type Coordinator struct {
	workers   []string // base URLs, e.g. "http://10.0.0.7:8080"
	client    *http.Client
	reg       *metrics.Registry
	engine    string // engine name shipped with shard snapshots; "" = worker default
	dpWorkers int    // intra-tree DP worker budget per shard; 0 = worker default

	// routes is the serving-side routing table built by the last
	// successful Anonymize: which worker holds which jurisdiction's
	// shard, in jurisdiction order. ServeBatch and SeedPOIs consult it.
	routeMu sync.RWMutex
	routes  []route
}

// route maps one jurisdiction to the worker holding its shard.
type route struct {
	jur    geo.Rect
	worker string
}

// New returns a coordinator over the given worker base URLs. client may be
// nil for a default with a 60 s timeout.
func New(workers []string, client *http.Client) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &Coordinator{
		workers: append([]string(nil), workers...),
		client:  client,
		reg:     metrics.NewRegistry(),
	}, nil
}

// UseEngine selects the anonymization engine every worker runs, by
// registry name; the empty string restores each worker's own default. The
// name is validated by the workers (they may register engines this binary
// does not link), so no local check is performed.
func (c *Coordinator) UseEngine(name string) { c.engine = name }

// Engine returns the engine name shipped with shard snapshots ("" when
// workers use their own default).
func (c *Coordinator) Engine() string { return c.engine }

// UseWorkers sets the intra-tree DP worker budget shipped with every
// shard snapshot (the "workers" engine option, core.Options.Workers on
// the worker's machine). Each shard is a whole jurisdiction on its own
// server, so the budget is per shard, not divided; 0 restores the
// workers' own default (their automatic GOMAXPROCS policy).
func (c *Coordinator) UseWorkers(n int) { c.dpWorkers = n }

// Workers returns the per-shard DP worker budget (0 = worker default).
func (c *Coordinator) Workers() int { return c.dpWorkers }

// Metrics exposes the coordinator's registry: per-worker shard wall-time
// histograms ("cluster_shard:<worker>"), retry counters
// ("cluster_retries:<worker>") and failover counts ("cluster_failovers").
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// NumWorkers returns the pool size.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Healthy probes every worker's liveness (/healthz?probe=live) and
// returns the unreachable ones. Liveness, not readiness, is the right
// probe here: a fresh worker is "starting" (503 on bare /healthz) until
// the coordinator itself sends it a shard.
func (c *Coordinator) Healthy(ctx context.Context) (down []string) {
	for _, w := range c.workers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+"/healthz?probe=live", nil)
		if err != nil {
			down = append(down, w)
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			down = append(down, w)
		}
		if err == nil {
			resp.Body.Close()
		}
	}
	return down
}

// AuditReport fetches every worker's /v1/audit privacy report and merges
// them into one fleet-wide view (audit.Merge semantics: exact counts,
// breaches, and min/max; count-weighted percentile approximation).
// Unreachable workers fail the call — a fleet privacy report with silent
// holes would overstate the guarantee.
func (c *Coordinator) AuditReport(ctx context.Context) (audit.Report, error) {
	reports := make([]audit.Report, 0, len(c.workers))
	for _, w := range c.workers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+"/v1/audit", nil)
		if err != nil {
			return audit.Report{}, err
		}
		forwardRequestID(ctx, req)
		resp, err := c.client.Do(req)
		if err != nil {
			return audit.Report{}, fmt.Errorf("cluster: audit fetch %s: %w", w, err)
		}
		var rep audit.Report
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			return audit.Report{}, fmt.Errorf("cluster: audit decode %s: %w", w, err)
		}
		if resp.StatusCode != http.StatusOK {
			return audit.Report{}, fmt.Errorf("cluster: audit fetch %s: %s", w, resp.Status)
		}
		// A single-server report leaves Worker empty; the coordinator knows
		// which shard it fetched from, so stamp the URL before merging —
		// the merged report then pins every shard's ledger chain head.
		for i := range rep.LedgerRoots {
			if rep.LedgerRoots[i].Worker == "" {
				rep.LedgerRoots[i].Worker = w
			}
		}
		reports = append(reports, rep)
	}
	return audit.Merge(reports...), nil
}

// forwardRequestID propagates the coordinator's request ID — and, when
// the call tree runs inside a trace capture, its trace context — to a
// worker RPC. The worker adopts the X-Trace-ID as its own capture
// identity (and always retains the resulting trace, because propagated
// legs must be fetchable later), and records X-Parent-Span as the
// coordinator-side span its call tree hangs under, which is what lets
// StitchTrace reassemble one tree from many processes.
func forwardRequestID(ctx context.Context, req *http.Request) {
	if rid := audit.RequestID(ctx); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	if cap := obs.CaptureFrom(ctx); cap != nil {
		req.Header.Set(flight.TraceIDHeader, cap.TraceID())
		if sp := obs.Current(ctx); sp != nil {
			req.Header.Set(flight.ParentSpanHeader, strconv.FormatUint(sp.ID(), 10))
		}
	}
}

// userJSON mirrors the server's wire format.
type userJSON struct {
	ID string `json:"id"`
	X  int32  `json:"x"`
	Y  int32  `json:"y"`
}

// Anonymize shards the snapshot over the worker pool and returns the
// master policy. bounds must be the square map; jurisdictions are
// assigned to workers round-robin (at most one jurisdiction per worker:
// the partitioner is asked for exactly len(workers) jurisdictions).
func (c *Coordinator) Anonymize(ctx context.Context, db *location.DB, bounds geo.Rect, k int) (*lbs.Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	ctx, csp := obs.Start(ctx, "cluster.anonymize")
	if csp != nil {
		csp.SetInt("users", int64(db.Len()))
		csp.SetInt("k", int64(k))
		csp.SetInt("workers", int64(len(c.workers)))
		defer csp.End()
	}
	jur, err := parallel.PartitionContext(ctx, db, bounds, k, len(c.workers))
	if err != nil {
		return nil, err
	}
	// Shard the users by jurisdiction.
	shards := make([][]userJSON, len(jur))
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		placed := false
		for j, r := range jur {
			if r.Contains(rec.Loc) {
				shards[j] = append(shards[j], userJSON{ID: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y})
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("cluster: location %v outside every jurisdiction", rec.Loc)
		}
	}
	// Each jurisdiction runs on its own worker; empty ones are skipped.
	type result struct {
		worker string
		state  *checkpoint.State
		err    error
	}
	results := make([]result, len(jur))
	var wg sync.WaitGroup
	for j := range jur {
		if len(shards[j]) == 0 {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			worker := c.workers[j%len(c.workers)]
			sctx, ssp := obs.StartLane(ctx, "cluster.shard")
			if ssp != nil {
				ssp.SetAttr("worker", worker)
				ssp.SetInt("jurisdiction", int64(j))
				ssp.SetInt("users", int64(len(shards[j])))
			}
			start := time.Now()
			var st *checkpoint.State
			var err error
			retries := 0
			for attempt := 1; ; attempt++ {
				st, err = c.anonymizeShard(sctx, worker, jur[j], k, shards[j])
				if err == nil || attempt >= shardAttempts ||
					!errors.Is(err, errTransient) || sctx.Err() != nil {
					break
				}
				retries++
				c.reg.Counter("cluster_retries:" + worker).Inc()
			}
			c.reg.Histogram("cluster_shard:" + worker).Observe(time.Since(start))
			c.reg.Counter("cluster_shards:" + worker).Inc()
			if ssp != nil {
				ssp.SetInt("retries", int64(retries))
				if err != nil {
					ssp.SetAttr("error", err.Error())
				}
				ssp.End()
			}
			results[j] = result{worker: worker, state: st, err: err}
		}(j)
	}
	wg.Wait()
	cloaks := make([]geo.Rect, db.Len())
	assigned := make([]bool, db.Len())
	for j, res := range results {
		if len(shards[j]) == 0 {
			continue
		}
		if res.err != nil {
			return nil, fmt.Errorf("cluster: worker %s jurisdiction %d: %w", res.worker, j, res.err)
		}
		sub := res.state
		for i := 0; i < sub.DB.Len(); i++ {
			rec := sub.DB.At(i)
			gi := db.Index(rec.UserID)
			if gi < 0 {
				return nil, fmt.Errorf("cluster: worker returned unknown user %q", rec.UserID)
			}
			cloaks[gi] = sub.Policy.CloakAt(i)
			assigned[gi] = true
		}
	}
	for i, ok := range assigned {
		if !ok {
			return nil, fmt.Errorf("cluster: user %q received no cloak", db.At(i).UserID)
		}
	}
	policy, err := lbs.NewAssignment(db, cloaks)
	if err != nil {
		return nil, err
	}
	// Verify rather than trust: the master policy assembled from remote
	// workers must still pass Definition 6 verification before it is
	// handed to a CSP. Masking and policy-unaware anonymity are required
	// unconditionally; policy-aware anonymity only when the selected
	// engine claims it (k-inside engines breach it by construction).
	_, vsp := obs.Start(ctx, "cluster.verify")
	rep := verify.Policy(policy, k)
	vsp.End()
	wantAware := true
	if c.engine != "" {
		if info, ok := engine.InfoOf(c.engine); ok {
			wantAware = info.PolicyAware
		}
	}
	if !rep.Masking || !rep.PolicyUnaware || (wantAware && !rep.PolicyAware) {
		return nil, fmt.Errorf("cluster: assembled policy failed verification: %s", rep.Problems[0])
	}
	// The shards are installed and verified: record which worker owns
	// which jurisdiction so the serving path can route requests.
	routes := make([]route, 0, len(jur))
	for j := range jur {
		if len(shards[j]) == 0 {
			continue
		}
		routes = append(routes, route{jur: jur[j], worker: c.workers[j%len(c.workers)]})
	}
	c.routeMu.Lock()
	c.routes = routes
	c.routeMu.Unlock()
	return policy, nil
}

// errTransient marks transport-level shard failures that a retry against
// the same worker can plausibly fix (connection resets, timeouts), as
// opposed to deterministic rejections (bad snapshot, decode failures).
var errTransient = errors.New("cluster: transient transport error")

// transient wraps err as retryable.
func transient(err error) error {
	return fmt.Errorf("%w: %w", errTransient, err)
}

// anonymizeShard installs one jurisdiction's shard on a worker and fetches
// the resulting policy as a checkpoint.
func (c *Coordinator) anonymizeShard(ctx context.Context, worker string, jur geo.Rect, k int, users []userJSON) (*checkpoint.State, error) {
	// The worker anonymizes over the jurisdiction's bounding square
	// anchored at its origin (matching parallel.squareOver); since the
	// server's map is [0,side)^2 we translate coordinates into
	// jurisdiction-local space and translate the cloaks back.
	side := squareSide(jur)
	local := make([]userJSON, len(users))
	for i, u := range users {
		local[i] = userJSON{ID: u.ID, X: u.X - jur.MinX, Y: u.Y - jur.MinY}
	}
	snap := map[string]any{"k": k, "mapSide": side, "users": local}
	if c.engine != "" {
		snap["engine"] = c.engine
	}
	if c.dpWorkers != 0 {
		snap["opts"] = map[string]string{"workers": strconv.Itoa(c.dpWorkers)}
	}
	body, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/snapshot", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	forwardRequestID(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("snapshot rejected: %s: %s", resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body)

	ckReq, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	forwardRequestID(ctx, ckReq)
	ckResp, err := c.client.Do(ckReq)
	if err != nil {
		return nil, transient(err)
	}
	defer ckResp.Body.Close()
	if ckResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("checkpoint fetch failed: %s", ckResp.Status)
	}
	st, err := checkpoint.Load(ckResp.Body)
	if err != nil {
		return nil, err
	}
	// Translate cloaks back into global coordinates.
	global := location.New(st.DB.Len())
	cloaks := make([]geo.Rect, st.DB.Len())
	for i := 0; i < st.DB.Len(); i++ {
		rec := st.DB.At(i)
		if err := global.Add(rec.UserID, geo.Point{X: rec.Loc.X + jur.MinX, Y: rec.Loc.Y + jur.MinY}); err != nil {
			return nil, err
		}
		c := st.Policy.CloakAt(i)
		cloaks[i] = geo.Rect{
			MinX: c.MinX + jur.MinX, MinY: c.MinY + jur.MinY,
			MaxX: c.MaxX + jur.MinX, MaxY: c.MaxY + jur.MinY,
		}
	}
	policy, err := lbs.NewAssignment(global, cloaks)
	if err != nil {
		return nil, err
	}
	return &checkpoint.State{K: st.K, Bounds: st.Bounds, DB: global, Policy: policy}, nil
}

// ErrDegraded is returned by AnonymizeWithFailover when some workers were
// skipped; the policy is still valid (their jurisdictions were re-routed).
var ErrDegraded = errors.New("cluster: degraded: some workers unavailable")

// AnonymizeWithFailover is Anonymize with liveness pre-checks: jurisdictions
// of unreachable workers are re-routed round-robin to healthy ones. The
// returned error wraps ErrDegraded when failover occurred and names the
// workers that were skipped, so operators can act on the error alone.
func (c *Coordinator) AnonymizeWithFailover(ctx context.Context, db *location.DB, bounds geo.Rect, k int) (*lbs.Assignment, error) {
	down := c.Healthy(ctx)
	if len(down) == 0 {
		return c.Anonymize(ctx, db, bounds, k)
	}
	bad := make(map[string]bool, len(down))
	for _, w := range down {
		bad[w] = true
	}
	var healthy []string
	for _, w := range c.workers {
		if !bad[w] {
			healthy = append(healthy, w)
		}
	}
	if len(healthy) == 0 {
		return nil, fmt.Errorf("cluster: all %d workers down: %s",
			len(c.workers), strings.Join(down, ", "))
	}
	for _, w := range down {
		c.reg.Counter("cluster_down:" + w).Inc()
	}
	c.reg.Counter("cluster_failovers").Inc()
	sub := &Coordinator{workers: healthy, client: c.client, reg: c.reg, engine: c.engine}
	pol, err := sub.Anonymize(ctx, db, bounds, k)
	if err != nil {
		return nil, err
	}
	// Adopt the degraded deployment's routing table: requests must go to
	// the healthy workers that actually hold the shards.
	sub.routeMu.RLock()
	routes := sub.routes
	sub.routeMu.RUnlock()
	c.routeMu.Lock()
	c.routes = routes
	c.routeMu.Unlock()
	return pol, fmt.Errorf("%w: %d of %d workers down: %s",
		ErrDegraded, len(down), len(c.workers), strings.Join(down, ", "))
}

// squareSide is the side of a jurisdiction's bounding square, the map
// side its worker operates in (matching parallel.squareOver).
func squareSide(jur geo.Rect) int64 {
	side := jur.Width()
	if jur.Height() > side {
		side = jur.Height()
	}
	return side
}

// snapshotRoutes returns the routing table from the last successful
// Anonymize, or an error before any deployment exists.
func (c *Coordinator) snapshotRoutes() ([]route, error) {
	c.routeMu.RLock()
	routes := c.routes
	c.routeMu.RUnlock()
	if len(routes) == 0 {
		return nil, fmt.Errorf("cluster: no deployment: Anonymize must succeed before serving")
	}
	return routes, nil
}

// poiJSON mirrors the server's POI wire format.
type poiJSON struct {
	ID       string `json:"id"`
	X        int32  `json:"x"`
	Y        int32  `json:"y"`
	Category string `json:"category"`
}

// SeedPOIs distributes the global POI set across the worker pool: each
// worker receives the points of interest inside its jurisdiction,
// translated into jurisdiction-local coordinates, via POST /v1/pois.
// Every routed worker is seeded — an empty jurisdiction-local store is
// still installed so the worker's serving path comes up. POIs outside
// every jurisdiction are skipped; the count of installed POIs is
// returned.
func (c *Coordinator) SeedPOIs(ctx context.Context, pois []lbs.POI) (int, error) {
	routes, err := c.snapshotRoutes()
	if err != nil {
		return 0, err
	}
	groups := make([][]poiJSON, len(routes))
	installed := 0
	for _, p := range pois {
		for j, rt := range routes {
			if rt.jur.Contains(p.Loc) {
				groups[j] = append(groups[j], poiJSON{
					ID: p.ID, X: p.Loc.X - rt.jur.MinX, Y: p.Loc.Y - rt.jur.MinY,
					Category: p.Category,
				})
				installed++
				break
			}
		}
	}
	for j, rt := range routes {
		if groups[j] == nil {
			groups[j] = []poiJSON{}
		}
		body, err := json.Marshal(map[string]any{"mapSide": squareSide(rt.jur), "pois": groups[j]})
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.worker+"/v1/pois", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		forwardRequestID(ctx, req)
		resp, err := c.client.Do(req)
		if err != nil {
			return 0, fmt.Errorf("cluster: seed POIs on %s: %w", rt.worker, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("cluster: seed POIs on %s: %s", rt.worker, resp.Status)
		}
	}
	return installed, nil
}

// ServeResult is one routed request's outcome, at the submitting index.
// A per-request failure (unknown user, spoofed location, unroutable
// coordinates) sets Err and leaves its neighbours intact, mirroring the
// per-item semantics of the workers' batch endpoint.
type ServeResult struct {
	Worker     string
	Cloak      geo.Rect
	Candidates []lbs.POI
	Err        error
}

// serviceRequestJSON and batchItemJSON mirror the server's batch wire
// format (server.ServiceRequestJSON / server.BatchItemJSON).
type serviceRequestJSON struct {
	User   string      `json:"user"`
	X      int32       `json:"x"`
	Y      int32       `json:"y"`
	Params []lbs.Param `json:"params,omitempty"`
}

type batchItemJSON struct {
	RID   uint64 `json:"rid"`
	Cloak *struct {
		MinX int32 `json:"minX"`
		MinY int32 `json:"minY"`
		MaxX int32 `json:"maxX"`
		MaxY int32 `json:"maxY"`
	} `json:"cloak"`
	Candidates []poiJSON `json:"candidates"`
	Error      string    `json:"error"`
}

// ServeBatch fans a batch of user requests out over the deployment: each
// request is routed to the worker whose jurisdiction contains the user
// (coordinates translated into the jurisdiction's local frame), the
// per-worker groups run as concurrent POST /v1/request/batch calls — one
// round trip and one snapshot acquisition per worker, with coalescing
// inside each worker's CSP — and the replies merge back in submission
// order with cloaks and candidates translated to global coordinates.
//
// Workers must have been seeded with POIs (SeedPOIs) after the last
// Anonymize. A worker-level transport failure fails the whole call, like
// Anonymize; request-level failures surface per item in ServeResult.Err.
func (c *Coordinator) ServeBatch(ctx context.Context, reqs []lbs.ServiceRequest) ([]ServeResult, error) {
	routes, err := c.snapshotRoutes()
	if err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "cluster.serve_batch")
	if sp != nil {
		sp.SetInt("requests", int64(len(reqs)))
		defer sp.End()
	}
	results := make([]ServeResult, len(reqs))
	groups := make([][]int, len(routes))
	for i, sr := range reqs {
		placed := false
		for j, rt := range routes {
			if rt.jur.Contains(sr.Loc) {
				groups[j] = append(groups[j], i)
				placed = true
				break
			}
		}
		if !placed {
			results[i].Err = fmt.Errorf("cluster: location %v outside every jurisdiction", sr.Loc)
		}
	}
	errs := make([]error, len(routes))
	var wg sync.WaitGroup
	for j := range routes {
		if len(groups[j]) == 0 {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// A lane span per shard leg: it is the parent the worker's
			// remote call tree stitches under, and its lane keeps the
			// concurrent legs on separate rows in Chrome dumps.
			sctx, ssp := obs.StartLane(ctx, "cluster.serve_shard")
			ssp.SetAttr("worker", routes[j].worker)
			ssp.SetInt("requests", int64(len(groups[j])))
			start := time.Now()
			errs[j] = c.serveShard(sctx, routes[j], groups[j], reqs, results)
			ssp.End()
			c.reg.Histogram("cluster_serve:" + routes[j].worker).Observe(time.Since(start))
			c.reg.Counter("cluster_batches:" + routes[j].worker).Inc()
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s batch: %w", routes[j].worker, err)
		}
	}
	return results, nil
}

// serveShard posts one worker's share of a batch and writes each item's
// translated result back at its original index. idx holds the global
// indices of this worker's requests, in order.
func (c *Coordinator) serveShard(ctx context.Context, rt route, idx []int, reqs []lbs.ServiceRequest, results []ServeResult) error {
	wire := make([]serviceRequestJSON, len(idx))
	for n, i := range idx {
		sr := reqs[i]
		wire[n] = serviceRequestJSON{
			User: sr.UserID,
			X:    sr.Loc.X - rt.jur.MinX, Y: sr.Loc.Y - rt.jur.MinY,
			Params: sr.Params,
		}
	}
	body, err := json.Marshal(map[string]any{"requests": wire})
	if err != nil {
		return err
	}
	var items []batchItemJSON
	for attempt := 1; ; attempt++ {
		items, err = c.postBatch(ctx, rt.worker, body)
		if err == nil || attempt >= shardAttempts ||
			!errors.Is(err, errTransient) || ctx.Err() != nil {
			break
		}
		c.reg.Counter("cluster_retries:" + rt.worker).Inc()
	}
	if err != nil {
		return err
	}
	if len(items) != len(idx) {
		return fmt.Errorf("batch returned %d items for %d requests", len(items), len(idx))
	}
	for n, it := range items {
		i := idx[n]
		results[i].Worker = rt.worker
		if it.Error != "" {
			results[i].Err = errors.New(it.Error)
			continue
		}
		if it.Cloak == nil {
			results[i].Err = fmt.Errorf("worker returned neither cloak nor error")
			continue
		}
		results[i].Cloak = geo.Rect{
			MinX: it.Cloak.MinX + rt.jur.MinX, MinY: it.Cloak.MinY + rt.jur.MinY,
			MaxX: it.Cloak.MaxX + rt.jur.MinX, MaxY: it.Cloak.MaxY + rt.jur.MinY,
		}
		cands := make([]lbs.POI, len(it.Candidates))
		for m, p := range it.Candidates {
			cands[m] = lbs.POI{
				ID:       p.ID,
				Loc:      geo.Point{X: p.X + rt.jur.MinX, Y: p.Y + rt.jur.MinY},
				Category: p.Category,
			}
		}
		results[i].Candidates = cands
	}
	return nil
}

// postBatch runs one POST /v1/request/batch round trip.
func (c *Coordinator) postBatch(ctx context.Context, worker string, body []byte) ([]batchItemJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/request/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	forwardRequestID(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("batch rejected: %s: %s", resp.Status, msg)
	}
	var reply struct {
		Results []batchItemJSON `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, transient(err)
	}
	return reply.Results, nil
}
