package cluster

import (
	"context"
	"testing"
)

// TestClusterUseWorkers checks that a per-shard DP worker budget shipped
// with the snapshots does not change the distributed policy: each worker
// computes the same per-jurisdiction optimum on its pool as sequentially.
func TestClusterUseWorkers(t *testing.T) {
	db, bounds := testSnapshot(t, 2000)
	const k = 20
	urls := pool(t, 3)

	seq, err := New(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqPol, err := seq.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}

	par, err := New(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	par.UseWorkers(2)
	if par.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", par.Workers())
	}
	parPol, err := par.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}

	if seqPol.Cost() != parPol.Cost() {
		t.Fatalf("costs differ: %d sequential, %d with workers=2", seqPol.Cost(), parPol.Cost())
	}
	for i := 0; i < seqPol.Len(); i++ {
		if seqPol.CloakAt(i) != parPol.CloakAt(i) {
			t.Fatalf("cloak %d differs: %v sequential, %v with workers=2", i, seqPol.CloakAt(i), parPol.CloakAt(i))
		}
	}
}
