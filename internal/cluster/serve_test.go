package cluster

import (
	"context"
	"fmt"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// seedTestPOIs drops one POI at every 40th user's location, so every
// populated jurisdiction ends up with points of interest to serve.
func seedTestPOIs(t *testing.T, db *location.DB) []lbs.POI {
	t.Helper()
	var pois []lbs.POI
	for i := 0; i < db.Len(); i += 40 {
		rec := db.At(i)
		pois = append(pois, lbs.POI{
			ID: fmt.Sprintf("p%d", i), Loc: rec.Loc, Category: "gas",
		})
	}
	return pois
}

// TestClusterServeBatch is the distributed serving oracle: after
// Anonymize and SeedPOIs, one ServeBatch call must return, per request
// and in submission order, the master policy's cloak translated to
// global coordinates, with candidates drawn from the seeded global POI
// set. Run with -race: shard posts are concurrent.
func TestClusterServeBatch(t *testing.T) {
	db, bounds := testSnapshot(t, 2000)
	const k = 15
	coord, err := New(pool(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Serving before a deployment exists must fail cleanly.
	if _, err := coord.ServeBatch(context.Background(), []lbs.ServiceRequest{{UserID: "u"}}); err == nil {
		t.Fatal("ServeBatch without a deployment succeeded")
	}
	if _, err := coord.SeedPOIs(context.Background(), nil); err == nil {
		t.Fatal("SeedPOIs without a deployment succeeded")
	}

	pol, err := coord.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	pois := seedTestPOIs(t, db)
	installed, err := coord.SeedPOIs(context.Background(), pois)
	if err != nil {
		t.Fatal(err)
	}
	if installed != len(pois) {
		t.Fatalf("seeded %d of %d POIs", installed, len(pois))
	}
	poiByID := make(map[string]lbs.POI, len(pois))
	for _, p := range pois {
		poiByID[p.ID] = p
	}

	// Requests spread across the whole map, i.e. across jurisdictions.
	var reqs []lbs.ServiceRequest
	var idx []int
	for i := 0; i < db.Len(); i += 97 {
		rec := db.At(i)
		reqs = append(reqs, lbs.ServiceRequest{
			UserID: rec.UserID, Loc: rec.Loc,
			Params: []lbs.Param{{Name: "cat", Value: "gas"}},
		})
		idx = append(idx, i)
	}
	results, err := coord.ServeBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	workers := map[string]bool{}
	for n, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d (%s): %v", n, reqs[n].UserID, res.Err)
		}
		workers[res.Worker] = true
		// Order-preserving merge + correct global translation: result n
		// carries exactly the master policy's cloak for request n's user.
		if want := pol.CloakAt(idx[n]); res.Cloak != want {
			t.Fatalf("request %d (%s): cloak %v, master policy says %v", n, reqs[n].UserID, res.Cloak, want)
		}
		if !res.Cloak.Contains(reqs[n].Loc) {
			t.Fatalf("request %d: cloak %v excludes the user at %v", n, res.Cloak, reqs[n].Loc)
		}
		if len(res.Candidates) == 0 {
			t.Fatalf("request %d: no candidates", n)
		}
		for _, cand := range res.Candidates {
			seeded, ok := poiByID[cand.ID]
			if !ok {
				t.Fatalf("request %d: candidate %q was never seeded", n, cand.ID)
			}
			if cand.Loc != seeded.Loc {
				t.Fatalf("request %d: candidate %s at %v, seeded at %v (translation broken)", n, cand.ID, cand.Loc, seeded.Loc)
			}
		}
	}
	if len(workers) < 2 {
		t.Fatalf("batch fanned out to %d workers, want >= 2", len(workers))
	}
	// The fan-out left per-worker serving metrics behind.
	snap := coord.Metrics().Snapshot()
	var batches int64
	for w := range workers {
		batches += snap.Counters["cluster_batches:"+w]
		if h, ok := snap.Histograms["cluster_serve:"+w]; !ok || h.Count < 1 {
			t.Errorf("no cluster_serve histogram for %s", w)
		}
	}
	if batches < int64(len(workers)) {
		t.Errorf("cluster_batches total %d, want >= %d", batches, len(workers))
	}
}

// TestClusterServeBatchPerItemErrors: a request the workers reject
// (spoofed location) fails alone; an unroutable request fails without a
// worker round trip; valid neighbours still answer.
func TestClusterServeBatchPerItemErrors(t *testing.T) {
	db, bounds := testSnapshot(t, 800)
	coord, err := New(pool(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Anonymize(context.Background(), db, bounds, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.SeedPOIs(context.Background(), seedTestPOIs(t, db)); err != nil {
		t.Fatal(err)
	}
	good := db.At(0)
	spoof := db.At(1)
	reqs := []lbs.ServiceRequest{
		{UserID: good.UserID, Loc: good.Loc},
		{UserID: spoof.UserID, Loc: geo.Point{X: good.Loc.X, Y: good.Loc.Y}}, // wrong location
		{UserID: "nobody", Loc: geo.Point{X: -5, Y: -5}},                     // outside every jurisdiction
	}
	results, err := coord.ServeBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("valid request failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("spoofed location served")
	}
	if results[2].Err == nil || results[2].Worker != "" {
		t.Fatalf("unroutable request reached a worker: %+v", results[2])
	}
}
