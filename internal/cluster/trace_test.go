package cluster

import (
	"context"
	"testing"

	"policyanon/internal/lbs"
	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
)

// TestStitchTrace is the distributed-tracing oracle: a traced ServeBatch
// propagates the coordinator's trace context to every shard, each worker
// retains its leg (reason "propagated"), and StitchTrace reassembles the
// shard span trees under the coordinator's cluster.serve_shard spans —
// one tree, spans from at least two workers, every parent resolvable.
func TestStitchTrace(t *testing.T) {
	db, bounds := testSnapshot(t, 2000)
	coord, err := New(pool(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Stitching with no capture or no deployment must fail cleanly.
	if _, err := coord.StitchTrace(context.Background(), nil); err == nil {
		t.Fatal("StitchTrace with nil capture succeeded")
	}
	if _, err := coord.StitchTrace(context.Background(), obs.NewCapture("t-none", 0)); err == nil {
		t.Fatal("StitchTrace without a deployment succeeded")
	}

	if _, err := coord.Anonymize(context.Background(), db, bounds, 15); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.SeedPOIs(context.Background(), seedTestPOIs(t, db)); err != nil {
		t.Fatal(err)
	}

	// Open a coordinator-side capture and serve a batch spanning
	// jurisdictions under it, exactly as an instrumented caller would.
	cap := obs.NewCapture(flight.MintTraceID(), 0)
	ctx := obs.WithCapture(obs.WithTracer(context.Background(), obs.NewTracer()), cap)
	ctx, root := obs.Start(ctx, "test.serve_batch")
	var reqs []lbs.ServiceRequest
	for i := 0; i < db.Len(); i += 97 {
		rec := db.At(i)
		reqs = append(reqs, lbs.ServiceRequest{UserID: rec.UserID, Loc: rec.Loc})
	}
	results, err := coord.ServeBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	workers := map[string]bool{}
	for n, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", n, res.Err)
		}
		workers[res.Worker] = true
	}
	if len(workers) < 2 {
		t.Fatalf("batch fanned out to %d workers, want >= 2", len(workers))
	}
	root.End()

	stitched, err := coord.StitchTrace(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	if stitched.TraceID != cap.TraceID() {
		t.Fatalf("stitched trace ID %q, capture says %q", stitched.TraceID, cap.TraceID())
	}

	// Index the coordinator-side spans: the shard legs must hang under
	// cluster.serve_shard span IDs, which live in the capture itself.
	ids := make(map[uint64]string)
	shardSpans := map[uint64]bool{}
	for _, sp := range cap.Spans() {
		ids[sp.ID] = sp.Name
		if sp.Name == "cluster.serve_shard" {
			shardSpans[sp.ID] = true
		}
	}
	if len(shardSpans) < 2 {
		t.Fatalf("coordinator captured %d cluster.serve_shard spans, want >= 2", len(shardSpans))
	}

	// Walk the stitched tree: every span's parent must resolve to another
	// stitched span (or 0 for coordinator roots), worker-side spans carry
	// the worker attr, and shard roots land on serve_shard spans.
	all := make(map[uint64]bool, len(stitched.Spans))
	for _, sp := range stitched.Spans {
		all[sp.ID] = true
	}
	shardWorkers := map[string]bool{}
	rootsOnShards := 0
	for _, sp := range stitched.Spans {
		if sp.Parent != 0 && !all[sp.Parent] {
			t.Fatalf("span %d (%s) has dangling parent %d", sp.ID, sp.Name, sp.Parent)
		}
		var worker string
		for _, a := range sp.Attrs {
			if a.Key == "worker" {
				worker = a.Value
			}
		}
		if sp.ID>>48 != 0 { // remapped, i.e. fetched from a worker
			if worker == "" {
				t.Fatalf("worker span %d (%s) lost its worker attr", sp.ID, sp.Name)
			}
			shardWorkers[worker] = true
			if shardSpans[sp.Parent] {
				rootsOnShards++
			}
		}
	}
	if len(shardWorkers) < 2 {
		t.Fatalf("stitched spans from %d workers, want >= 2", len(shardWorkers))
	}
	if rootsOnShards < 2 {
		t.Fatalf("%d shard roots parented under cluster.serve_shard spans, want >= 2", rootsOnShards)
	}
}
