package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/audit"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/server"
	"policyanon/internal/workload"
)

// pool spins up n anonymization servers and returns their base URLs.
func pool(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(server.New().Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func testSnapshot(t *testing.T, n int) (*location.DB, geo.Rect) {
	t.Helper()
	cfg := workload.Config{MapSide: 1 << 12, Intersections: n / 5, UsersPerIntersection: 5, SpreadSigma: 60}
	return workload.Generate(cfg, 11), workload.MapBounds(cfg.MapSide)
}

func TestClusterAnonymizeMatchesLocal(t *testing.T) {
	db, bounds := testSnapshot(t, 3000)
	const k = 20
	coord, err := New(pool(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := coord.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed master policy is policy-aware k-anonymous and
	// costs exactly what the in-process parallel engine computes.
	if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
		t.Fatal("cluster master policy breached")
	}
	local, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := local.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Cost() < opt {
		t.Fatalf("cluster cost %d below single-server optimum %d", pol.Cost(), opt)
	}
	if float64(pol.Cost()) > 1.05*float64(opt) {
		t.Fatalf("cluster cost %d diverges over 5%% from optimum %d", pol.Cost(), opt)
	}
}

func TestClusterSingleWorker(t *testing.T) {
	db, bounds := testSnapshot(t, 800)
	const k = 10
	coord, err := New(pool(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := coord.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Cost() != want {
		t.Fatalf("single-worker cluster cost %d != local optimum %d", pol.Cost(), want)
	}
}

func TestClusterHealthAndFailover(t *testing.T) {
	db, bounds := testSnapshot(t, 1500)
	urls := pool(t, 3)
	// Kill one worker by pointing at a closed server.
	dead := httptest.NewServer(server.New().Handler())
	deadURL := dead.URL
	dead.Close()
	coord, err := New(append(urls, deadURL), nil)
	if err != nil {
		t.Fatal(err)
	}
	down := coord.Healthy(context.Background())
	if len(down) != 1 || down[0] != deadURL {
		t.Fatalf("Healthy reported %v", down)
	}
	pol, err := coord.AnonymizeWithFailover(context.Background(), db, bounds, 15)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("expected ErrDegraded, got %v", err)
	}
	// The degradation report names the worker that was dropped.
	if !strings.Contains(err.Error(), deadURL) {
		t.Fatalf("ErrDegraded does not name down worker %s: %v", deadURL, err)
	}
	if pol == nil || !attacker.IsKAnonymous(pol, 15, attacker.PolicyAware) {
		t.Fatal("failover policy missing or breached")
	}
	snap := coord.Metrics().Snapshot()
	if got := snap.Counters["cluster_down:"+deadURL]; got != 1 {
		t.Errorf("cluster_down for dead worker = %d, want 1", got)
	}
	if got := snap.Counters["cluster_failovers"]; got != 1 {
		t.Errorf("cluster_failovers = %d, want 1", got)
	}
	// Plain Anonymize against the dead worker fails.
	if _, err := coord.Anonymize(context.Background(), db, bounds, 15); err == nil {
		t.Fatal("dead worker not reported")
	}
}

// TestClusterShardMetricsRecorded: a successful Anonymize leaves one
// cluster_shard wall-time histogram and shard counter per worker in the
// coordinator's registry, with no retries recorded against healthy
// workers.
func TestClusterShardMetricsRecorded(t *testing.T) {
	db, bounds := testSnapshot(t, 1500)
	urls := pool(t, 3)
	coord, err := New(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Anonymize(context.Background(), db, bounds, 15); err != nil {
		t.Fatal(err)
	}
	snap := coord.Metrics().Snapshot()
	for _, u := range urls {
		h, ok := snap.Histograms["cluster_shard:"+u]
		if !ok || h.Count < 1 {
			t.Errorf("no shard wall-time histogram for %s: %+v", u, snap.Histograms)
		}
		if h.Mean <= 0 {
			t.Errorf("shard wall time for %s not positive: %+v", u, h)
		}
		if got := snap.Counters["cluster_shards:"+u]; got < 1 {
			t.Errorf("cluster_shards counter for %s = %d", u, got)
		}
		if got := snap.Counters["cluster_retries:"+u]; got != 0 {
			t.Errorf("healthy worker %s shows %d retries", u, got)
		}
	}
}

// TestClusterRetriesTransientError: a worker whose first snapshot POST
// dies at the transport level is retried once, the retry is counted, and
// the job still succeeds.
func TestClusterRetriesTransientError(t *testing.T) {
	real := server.New().Handler()
	var failed bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/snapshot" && !failed {
			failed = true
			panic(http.ErrAbortHandler) // drop the connection mid-response
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)
	coord, err := New([]string{flaky.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, bounds := testSnapshot(t, 500)
	pol, err := coord.Anonymize(context.Background(), db, bounds, 10)
	if err != nil {
		t.Fatalf("transient failure not retried: %v", err)
	}
	if !attacker.IsKAnonymous(pol, 10, attacker.PolicyAware) {
		t.Fatal("policy breached after retry")
	}
	if got := coord.Metrics().Snapshot().Counters["cluster_retries:"+flaky.URL]; got != 1 {
		t.Errorf("cluster_retries = %d, want 1", got)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	db, bounds := testSnapshot(t, 300)
	coord, err := New(pool(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Anonymize(context.Background(), db, bounds, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if coord.NumWorkers() != 2 {
		t.Fatal("NumWorkers wrong")
	}
}

func TestClusterAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(server.New().Handler())
	deadURL := dead.URL
	dead.Close()
	coord, err := New([]string{deadURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, bounds := testSnapshot(t, 300)
	if _, err := coord.AnonymizeWithFailover(context.Background(), db, bounds, 5); err == nil {
		t.Fatal("all-down pool succeeded")
	}
}

// A worker that returns a checkpoint for the wrong users (e.g. a stale or
// malicious state) must be rejected during master-policy assembly.
func TestClusterRejectsWrongWorkerState(t *testing.T) {
	// The lying worker accepts any snapshot but always serves a
	// checkpoint computed for an unrelated population.
	lying := server.New()
	bogusUsers := []server.UserJSON{}
	for i := 0; i < 10; i++ {
		bogusUsers = append(bogusUsers, server.UserJSON{ID: "bogus" + string(rune('a'+i)), X: int32(i), Y: int32(i)})
	}
	ts := httptest.NewServer(wrongStateHandler(t, lying, bogusUsers))
	t.Cleanup(ts.Close)
	coord, err := New([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, bounds := testSnapshot(t, 300)
	if _, err := coord.Anonymize(context.Background(), db, bounds, 5); err == nil {
		t.Fatal("wrong worker state accepted")
	}
}

// wrongStateHandler proxies to a real server but pre-installs a bogus
// snapshot and ignores the coordinator's snapshot payload.
func wrongStateHandler(t *testing.T, srv *server.Server, bogus []server.UserJSON) http.Handler {
	t.Helper()
	real := srv.Handler()
	installed := false
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/snapshot" {
			if !installed {
				body, _ := json.Marshal(server.SnapshotRequest{K: 2, MapSide: 64, Users: bogus})
				req := httptest.NewRequest(http.MethodPost, "/v1/snapshot", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				real.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("bogus install failed: %d", rec.Code)
				}
				installed = true
			}
			// Pretend the coordinator's snapshot was accepted.
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"users":0}`))
			return
		}
		real.ServeHTTP(w, r)
	})
}

// TestClusterAuditReport shards a snapshot, then merges the per-worker
// privacy reports: every shard's policy install is audited on its own
// server, and the fleet report must aggregate them all with the true
// fleet-wide minimum.
func TestClusterAuditReport(t *testing.T) {
	db, bounds := testSnapshot(t, 2000)
	const k = 15
	workers := pool(t, 3)
	coord, err := New(workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := coord.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.AuditReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != len(workers) {
		t.Fatalf("report merged %d shards, want %d", rep.Shards, len(workers))
	}
	if rep.PolicyAudits < int64(len(workers)) {
		t.Fatalf("policy audits = %d, want >= %d (one per shard install)", rep.PolicyAudits, len(workers))
	}
	// The fleet-wide minimum over per-shard policies can only improve on
	// (or match) the assembled master policy's: every shard group is a
	// master group.
	_, masterMin := attacker.Audit(pol, k, attacker.PolicyAware)
	if rep.Aware.Min < k {
		t.Fatalf("fleet min achieved-k %d breaches k=%d", rep.Aware.Min, k)
	}
	if rep.Aware.Min > masterMin {
		t.Fatalf("fleet min %d exceeds master policy min %d", rep.Aware.Min, masterMin)
	}
	if rep.Aware.Breaches != 0 {
		t.Fatalf("fleet report counts %d breaches on a verified policy", rep.Aware.Breaches)
	}
}

// TestClusterForwardsRequestID verifies the coordinator propagates its
// context's request ID to shard RPCs, so one ID correlates the whole
// distributed anonymization.
func TestClusterForwardsRequestID(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	backend := httptest.NewServer(server.New().Handler())
	t.Cleanup(backend.Close)
	recorder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Header.Get("X-Request-ID")]++
		mu.Unlock()
		r.URL.Scheme = "http"
		r.URL.Host = strings.TrimPrefix(backend.URL, "http://")
		proxyReq, err := http.NewRequest(r.Method, r.URL.String(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		proxyReq.Header = r.Header
		resp, err := http.DefaultClient.Do(proxyReq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(recorder.Close)

	db, bounds := testSnapshot(t, 400)
	coord, err := New([]string{recorder.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := audit.WithRequestID(context.Background(), "fleet-rid-3")
	if _, err := coord.Anonymize(ctx, db, bounds, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AuditReport(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen["fleet-rid-3"] < 3 {
		t.Fatalf("request ID forwarded on %d shard RPCs, want >= 3 (snapshot, checkpoint, audit); seen: %v",
			seen["fleet-rid-3"], seen)
	}
	if seen[""] > 0 {
		t.Fatalf("%d shard RPCs carried no request ID", seen[""])
	}
}
