package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/server"
	"policyanon/internal/workload"
)

// pool spins up n anonymization servers and returns their base URLs.
func pool(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(server.New().Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func testSnapshot(t *testing.T, n int) (*location.DB, geo.Rect) {
	t.Helper()
	cfg := workload.Config{MapSide: 1 << 12, Intersections: n / 5, UsersPerIntersection: 5, SpreadSigma: 60}
	return workload.Generate(cfg, 11), workload.MapBounds(cfg.MapSide)
}

func TestClusterAnonymizeMatchesLocal(t *testing.T) {
	db, bounds := testSnapshot(t, 3000)
	const k = 20
	coord, err := New(pool(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := coord.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed master policy is policy-aware k-anonymous and
	// costs exactly what the in-process parallel engine computes.
	if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
		t.Fatal("cluster master policy breached")
	}
	local, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := local.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Cost() < opt {
		t.Fatalf("cluster cost %d below single-server optimum %d", pol.Cost(), opt)
	}
	if float64(pol.Cost()) > 1.05*float64(opt) {
		t.Fatalf("cluster cost %d diverges over 5%% from optimum %d", pol.Cost(), opt)
	}
}

func TestClusterSingleWorker(t *testing.T) {
	db, bounds := testSnapshot(t, 800)
	const k = 10
	coord, err := New(pool(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := coord.Anonymize(context.Background(), db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Cost() != want {
		t.Fatalf("single-worker cluster cost %d != local optimum %d", pol.Cost(), want)
	}
}

func TestClusterHealthAndFailover(t *testing.T) {
	db, bounds := testSnapshot(t, 1500)
	urls := pool(t, 3)
	// Kill one worker by pointing at a closed server.
	dead := httptest.NewServer(server.New().Handler())
	deadURL := dead.URL
	dead.Close()
	coord, err := New(append(urls, deadURL), nil)
	if err != nil {
		t.Fatal(err)
	}
	down := coord.Healthy(context.Background())
	if len(down) != 1 || down[0] != deadURL {
		t.Fatalf("Healthy reported %v", down)
	}
	pol, err := coord.AnonymizeWithFailover(context.Background(), db, bounds, 15)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("expected ErrDegraded, got %v", err)
	}
	if pol == nil || !attacker.IsKAnonymous(pol, 15, attacker.PolicyAware) {
		t.Fatal("failover policy missing or breached")
	}
	// Plain Anonymize against the dead worker fails.
	if _, err := coord.Anonymize(context.Background(), db, bounds, 15); err == nil {
		t.Fatal("dead worker not reported")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	db, bounds := testSnapshot(t, 300)
	coord, err := New(pool(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Anonymize(context.Background(), db, bounds, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if coord.NumWorkers() != 2 {
		t.Fatal("NumWorkers wrong")
	}
}

func TestClusterAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(server.New().Handler())
	deadURL := dead.URL
	dead.Close()
	coord, err := New([]string{deadURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, bounds := testSnapshot(t, 300)
	if _, err := coord.AnonymizeWithFailover(context.Background(), db, bounds, 5); err == nil {
		t.Fatal("all-down pool succeeded")
	}
}

// A worker that returns a checkpoint for the wrong users (e.g. a stale or
// malicious state) must be rejected during master-policy assembly.
func TestClusterRejectsWrongWorkerState(t *testing.T) {
	// The lying worker accepts any snapshot but always serves a
	// checkpoint computed for an unrelated population.
	lying := server.New()
	bogusUsers := []server.UserJSON{}
	for i := 0; i < 10; i++ {
		bogusUsers = append(bogusUsers, server.UserJSON{ID: "bogus" + string(rune('a'+i)), X: int32(i), Y: int32(i)})
	}
	ts := httptest.NewServer(wrongStateHandler(t, lying, bogusUsers))
	t.Cleanup(ts.Close)
	coord, err := New([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, bounds := testSnapshot(t, 300)
	if _, err := coord.Anonymize(context.Background(), db, bounds, 5); err == nil {
		t.Fatal("wrong worker state accepted")
	}
}

// wrongStateHandler proxies to a real server but pre-installs a bogus
// snapshot and ignores the coordinator's snapshot payload.
func wrongStateHandler(t *testing.T, srv *server.Server, bogus []server.UserJSON) http.Handler {
	t.Helper()
	real := srv.Handler()
	installed := false
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/snapshot" {
			if !installed {
				body, _ := json.Marshal(server.SnapshotRequest{K: 2, MapSide: 64, Users: bogus})
				req := httptest.NewRequest(http.MethodPost, "/v1/snapshot", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				real.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("bogus install failed: %d", rec.Code)
				}
				installed = true
			}
			// Pretend the coordinator's snapshot was accepted.
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"users":0}`))
			return
		}
		real.ServeHTTP(w, r)
	})
}
