package geo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHilbertRoundTrip(t *testing.T) {
	const order = 6
	n := int32(1) << order
	seen := make(map[uint64]bool)
	for x := int32(0); x < n; x++ {
		for y := int32(0); y < n; y++ {
			d := HilbertIndex(order, x, y)
			if seen[d] {
				t.Fatalf("index %d repeated at (%d,%d)", d, x, y)
			}
			seen[d] = true
			if back := HilbertPoint(order, d); back != (Point{X: x, Y: y}) {
				t.Fatalf("round trip (%d,%d) -> %d -> %v", x, y, d, back)
			}
		}
	}
	if len(seen) != int(n)*int(n) {
		t.Fatalf("curve covered %d of %d cells", len(seen), int(n)*int(n))
	}
}

// Consecutive Hilbert indices are adjacent grid cells — the locality
// property the HilbertCloak baseline relies on.
func TestHilbertLocality(t *testing.T) {
	const order = 5
	total := uint64(1) << (2 * order)
	for d := uint64(0); d+1 < total; d++ {
		a := HilbertPoint(order, d)
		b := HilbertPoint(order, d+1)
		dx, dy := a.X-b.X, a.Y-b.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("curve jump between %d (%v) and %d (%v)", d, a, d+1, b)
		}
	}
}

func TestHilbertClamps(t *testing.T) {
	if HilbertIndex(4, -5, 99) != HilbertIndex(4, 0, 15) {
		t.Fatal("out-of-grid coordinates not clamped")
	}
}

func TestMinEnclosingCircleKnownCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Single point: zero radius.
	c := MinEnclosingCircle([]Point{{X: 3, Y: 4}}, rng)
	if c.R != 0 || c.CX != 3 || c.CY != 4 {
		t.Fatalf("single point MEC = %+v", c)
	}
	// Two points: diametral circle.
	c = MinEnclosingCircle([]Point{{X: 0, Y: 0}, {X: 6, Y: 8}}, rng)
	if c.R < 4.999 || c.R > 5.001 {
		t.Fatalf("two-point MEC radius = %v, want 5", c.R)
	}
	// Square corners: circumradius sqrt(2)/2 * side.
	c = MinEnclosingCircle([]Point{{X: 0, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 0}, {X: 10, Y: 10}}, rng)
	if c.R < 7.07 || c.R > 7.08 {
		t.Fatalf("square MEC radius = %v, want ~7.071", c.R)
	}
	// Collinear points.
	c = MinEnclosingCircle([]Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}}, rng)
	if c.R < 4.999 || c.R > 5.001 {
		t.Fatalf("collinear MEC radius = %v, want 5", c.R)
	}
	// Empty input.
	if MinEnclosingCircle(nil, rng).R != 0 {
		t.Fatal("empty MEC should be zero")
	}
}

// Property: the MEC covers every input point and is no larger than the
// trivial bounding circle.
func TestMinEnclosingCircleProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Int31n(1000), Y: rng.Int31n(1000)}
		}
		c := MinEnclosingCircle(pts, rng)
		for _, p := range pts {
			if !c.ContainsPoint(p) {
				return false
			}
		}
		// Compare against the circle centered at the centroid covering
		// all points: the MEC cannot be larger.
		var sx, sy float64
		for _, p := range pts {
			sx += float64(p.X)
			sy += float64(p.Y)
		}
		cx, cy := sx/float64(n), sy/float64(n)
		worst := 0.0
		for _, p := range pts {
			dx, dy := float64(p.X)-cx, float64(p.Y)-cy
			if d := dx*dx + dy*dy; d > worst {
				worst = d
			}
		}
		return c.R*c.R <= worst+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The MEC is independent of the shuffle order.
func TestMinEnclosingCircleDeterministicRadius(t *testing.T) {
	pts := make([]Point, 30)
	rng := rand.New(rand.NewSource(7))
	for i := range pts {
		pts[i] = Point{X: rng.Int31n(500), Y: rng.Int31n(500)}
	}
	r1 := MinEnclosingCircle(pts, rand.New(rand.NewSource(1))).R
	r2 := MinEnclosingCircle(pts, rand.New(rand.NewSource(99))).R
	if r1 < r2-1e-6 || r1 > r2+1e-6 {
		t.Fatalf("MEC radius depends on shuffle: %v vs %v", r1, r2)
	}
}
