package geo

// Hilbert-curve indexing, used by the HilbertCloak baseline of Kalnis et
// al. [17]: mapping 2-D locations to positions on a space-filling curve
// preserves locality, so consecutive curve ranks make compact cloaking
// groups.

// HilbertIndex returns the index of (x,y) along the Hilbert curve of the
// given order (the curve fills the 2^order x 2^order grid). Coordinates
// outside the grid are clamped.
func HilbertIndex(order uint, x, y int32) uint64 {
	n := int64(1) << order
	xx := clampTo(int64(x), n)
	yy := clampTo(int64(y), n)
	var rx, ry, d int64
	for s := n / 2; s > 0; s /= 2 {
		if xx&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if yy&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += s * s * ((3 * rx) ^ ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				xx = s - 1 - xx
				yy = s - 1 - yy
			}
			xx, yy = yy, xx
		}
	}
	return uint64(d)
}

// HilbertPoint is the inverse of HilbertIndex: the grid cell at curve
// position d for the given order.
func HilbertPoint(order uint, d uint64) Point {
	n := int64(1) << order
	t := int64(d)
	var x, y int64
	for s := int64(1); s < n; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return Point{X: int32(x), Y: int32(y)}
}

func clampTo(v, n int64) int64 {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
