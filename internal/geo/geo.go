// Package geo provides the integer planar geometry used throughout the
// anonymizer: points, axis-aligned rectangles (cloaks, quadrants and
// semi-quadrants) and circles (the circular-cloak variant of Theorem 1).
//
// Coordinates are int32 meters in a square map whose side is a power of
// two, which keeps quad-tree splits exact. Areas and distances are int64 /
// float64 so that the cost sums of Section IV never overflow for the map
// sizes used in the paper (up to ~131 km side, 1.75M users).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2-dimensional map space of Section II-A.
type Point struct {
	X, Y int32
}

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) int64 {
	dx := int64(p.X) - int64(q.X)
	dy := int64(p.Y) - int64(q.Y)
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(float64(p.DistSq(q))) }

// Rect is a half-open axis-aligned rectangle [MinX,MaxX) x [MinY,MaxY).
// Half-open semantics make quadrant splits a partition: every point of the
// parent belongs to exactly one child, so d(m) sums exactly (Definition 7).
type Rect struct {
	MinX, MinY, MaxX, MaxY int32
}

// NewRect returns the rectangle with the given corners. It panics if the
// rectangle is inverted; an empty rectangle (zero width or height) is legal.
func NewRect(minX, minY, maxX, maxY int32) Rect {
	if maxX < minX || maxY < minY {
		panic(fmt.Sprintf("geo: inverted rect (%d,%d,%d,%d)", minX, minY, maxX, maxY))
	}
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// String renders the rectangle as "[minX,minY,maxX,maxY)".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d,%d,%d)", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Width returns MaxX-MinX.
func (r Rect) Width() int64 { return int64(r.MaxX) - int64(r.MinX) }

// Height returns MaxY-MinY.
func (r Rect) Height() int64 { return int64(r.MaxY) - int64(r.MinY) }

// Area returns the area of r in square meters.
func (r Rect) Area() int64 { return r.Width() * r.Height() }

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.MinX >= r.MaxX || r.MinY >= r.MaxY }

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies inside r treating the boundary as
// included. Anonymized requests transmit closed regions (Definition 2), so
// masking checks use the closed test while tree bookkeeping uses Contains.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether r fully contains s.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: max32(r.MinX, s.MinX), MinY: max32(r.MinY, s.MinY),
		MaxX: min32(r.MaxX, s.MaxX), MaxY: min32(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX {
		out.MaxX = out.MinX
	}
	if out.MinY > out.MaxY {
		out.MaxY = out.MinY
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: min32(r.MinX, s.MinX), MinY: min32(r.MinY, s.MinY),
		MaxX: max32(r.MaxX, s.MaxX), MaxY: max32(r.MaxY, s.MaxY),
	}
}

// ExpandToPoint returns the smallest rectangle containing r and p. Used by
// the minimum-bounding-box baselines.
func (r Rect) ExpandToPoint(p Point) Rect {
	if r.Empty() {
		return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X + 1, MaxY: p.Y + 1}
	}
	out := r
	if p.X < out.MinX {
		out.MinX = p.X
	}
	if p.X >= out.MaxX {
		out.MaxX = p.X + 1
	}
	if p.Y < out.MinY {
		out.MinY = p.Y
	}
	if p.Y >= out.MaxY {
		out.MaxY = p.Y + 1
	}
	return out
}

// Center returns the centroid of r (rounded down).
func (r Rect) Center() Point {
	return Point{
		X: int32((int64(r.MinX) + int64(r.MaxX)) / 2),
		Y: int32((int64(r.MinY) + int64(r.MaxY)) / 2),
	}
}

// WestHalf and EastHalf split r vertically into two semi-quadrants, the
// s_W / s_E split of Section V's binary tree.
func (r Rect) WestHalf() Rect {
	return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.Center().X, MaxY: r.MaxY}
}

// EastHalf returns the eastern vertical semi-quadrant of r.
func (r Rect) EastHalf() Rect {
	return Rect{MinX: r.Center().X, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// SouthHalf returns the southern horizontal semi-quadrant of r.
func (r Rect) SouthHalf() Rect {
	return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.Center().Y}
}

// NorthHalf returns the northern horizontal semi-quadrant of r.
func (r Rect) NorthHalf() Rect {
	return Rect{MinX: r.MinX, MinY: r.Center().Y, MaxX: r.MaxX, MaxY: r.MaxY}
}

// Quadrants splits r into its four quad-tree children, indexed SW, SE, NW,
// NE. The quadrants partition r under half-open semantics.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{MinX: r.MinX, MinY: r.MinY, MaxX: c.X, MaxY: c.Y}, // SW
		{MinX: c.X, MinY: r.MinY, MaxX: r.MaxX, MaxY: c.Y}, // SE
		{MinX: r.MinX, MinY: c.Y, MaxX: c.X, MaxY: r.MaxY}, // NW
		{MinX: c.X, MinY: c.Y, MaxX: r.MaxX, MaxY: r.MaxY}, // NE
	}
}

// MinDistSqToPoint returns the squared distance from p to the closest point
// of the closed rectangle r (0 when p is inside).
func (r Rect) MinDistSqToPoint(p Point) int64 {
	var dx, dy int64
	switch {
	case p.X < r.MinX:
		dx = int64(r.MinX) - int64(p.X)
	case p.X > r.MaxX:
		dx = int64(p.X) - int64(r.MaxX)
	}
	switch {
	case p.Y < r.MinY:
		dy = int64(r.MinY) - int64(p.Y)
	case p.Y > r.MaxY:
		dy = int64(p.Y) - int64(r.MaxY)
	}
	return dx*dx + dy*dy
}

// MaxDistSqToPoint returns the squared distance from p to the farthest
// point of the closed rectangle r.
func (r Rect) MaxDistSqToPoint(p Point) int64 {
	dx := max64(abs64(int64(p.X)-int64(r.MinX)), abs64(int64(p.X)-int64(r.MaxX)))
	dy := max64(abs64(int64(p.Y)-int64(r.MinY)), abs64(int64(p.Y)-int64(r.MaxY)))
	return dx*dx + dy*dy
}

// Circle is a circular cloak with a center drawn from a fixed set of
// candidate centers (public landmarks, base stations) and free radius, the
// cloak family of Theorem 1 and of the k-reciprocity example in Fig. 6(b).
type Circle struct {
	Center Point
	Radius float64
}

// Contains reports whether p is inside the closed disc.
func (c Circle) Contains(p Point) bool {
	return float64(c.Center.DistSq(p)) <= c.Radius*c.Radius+1e-9
}

// Area returns the area of the disc.
func (c Circle) Area() float64 { return math.Pi * c.Radius * c.Radius }

// String renders the circle as "circle(center,r)".
func (c Circle) String() string {
	return fmt.Sprintf("circle(%s,r=%.1f)", c.Center, c.Radius)
}

// MinEnclosingRadius returns the smallest radius centered at c covering all
// pts, or 0 for an empty slice.
func MinEnclosingRadius(c Point, pts []Point) float64 {
	var worst int64
	for _, p := range pts {
		if d := c.DistSq(p); d > worst {
			worst = d
		}
	}
	return math.Sqrt(float64(worst))
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
