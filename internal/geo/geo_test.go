package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectContainsHalfOpen(t *testing.T) {
	r := NewRect(0, 0, 4, 4)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{3, 3}, true},
		{Point{4, 4}, false},
		{Point{4, 0}, false},
		{Point{0, 4}, false},
		{Point{-1, 2}, false},
		{Point{2, -1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsClosed(Point{4, 4}) {
		t.Errorf("ContainsClosed should include the boundary corner")
	}
}

func TestRectAreaWidthHeight(t *testing.T) {
	r := NewRect(-2, -3, 5, 7)
	if r.Width() != 7 || r.Height() != 10 || r.Area() != 70 {
		t.Fatalf("got w=%d h=%d a=%d", r.Width(), r.Height(), r.Area())
	}
	if NewRect(1, 1, 1, 5).Area() != 0 {
		t.Fatal("degenerate rect must have zero area")
	}
	if !NewRect(1, 1, 1, 5).Empty() {
		t.Fatal("zero-width rect must be Empty")
	}
}

func TestNewRectPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted rect")
		}
	}()
	NewRect(5, 0, 1, 4)
}

func TestQuadrantsPartition(t *testing.T) {
	r := NewRect(0, 0, 8, 8)
	qs := r.Quadrants()
	var total int64
	for _, q := range qs {
		total += q.Area()
		if !r.ContainsRect(q) {
			t.Errorf("quadrant %v escapes parent %v", q, r)
		}
	}
	if total != r.Area() {
		t.Errorf("quadrant areas sum to %d, want %d", total, r.Area())
	}
	// Every interior point belongs to exactly one quadrant.
	for x := int32(0); x < 8; x++ {
		for y := int32(0); y < 8; y++ {
			n := 0
			for _, q := range qs {
				if q.Contains(Point{x, y}) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("point (%d,%d) in %d quadrants", x, y, n)
			}
		}
	}
}

func TestSemiQuadrantSplits(t *testing.T) {
	r := NewRect(0, 0, 8, 4)
	w, e := r.WestHalf(), r.EastHalf()
	if w.Area()+e.Area() != r.Area() {
		t.Errorf("vertical halves don't partition: %d + %d != %d", w.Area(), e.Area(), r.Area())
	}
	if w.Intersects(e) {
		t.Errorf("vertical halves overlap: %v %v", w, e)
	}
	s, n := r.SouthHalf(), r.NorthHalf()
	if s.Area()+n.Area() != r.Area() {
		t.Errorf("horizontal halves don't partition")
	}
	if s.Intersects(n) {
		t.Errorf("horizontal halves overlap")
	}
	// A square's west half split horizontally yields its NW and SW quadrants.
	sq := NewRect(0, 0, 8, 8)
	if got := sq.WestHalf().SouthHalf(); got != sq.Quadrants()[0] {
		t.Errorf("west+south = %v, want SW quadrant %v", got, sq.Quadrants()[0])
	}
	if got := sq.EastHalf().NorthHalf(); got != sq.Quadrants()[3] {
		t.Errorf("east+north = %v, want NE quadrant %v", got, sq.Quadrants()[3])
	}
}

func TestIntersectUnion(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	if got := a.Intersect(b); got != NewRect(2, 2, 4, 4) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != NewRect(0, 0, 6, 6) {
		t.Errorf("Union = %v", got)
	}
	c := NewRect(10, 10, 12, 12)
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint intersect should be empty, got %v", a.Intersect(c))
	}
	if a.Intersects(c) {
		t.Errorf("disjoint rects must not Intersects")
	}
	var zero Rect
	if got := zero.Union(a); got != a {
		t.Errorf("empty union identity broken: %v", got)
	}
}

func TestExpandToPoint(t *testing.T) {
	var r Rect
	r = r.ExpandToPoint(Point{3, 3})
	if !r.Contains(Point{3, 3}) {
		t.Fatal("expanded rect must contain seed point")
	}
	r = r.ExpandToPoint(Point{7, 1})
	for _, p := range []Point{{3, 3}, {7, 1}} {
		if !r.Contains(p) {
			t.Errorf("rect %v lost point %v", r, p)
		}
	}
}

func TestDistances(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if p.DistSq(q) != 25 {
		t.Errorf("DistSq = %d", p.DistSq(q))
	}
	if p.Dist(q) != 5 {
		t.Errorf("Dist = %v", p.Dist(q))
	}
	r := NewRect(10, 10, 20, 20)
	if d := r.MinDistSqToPoint(Point{10, 25}); d != 25 {
		t.Errorf("MinDistSq above = %d, want 25", d)
	}
	if d := r.MinDistSqToPoint(Point{15, 15}); d != 0 {
		t.Errorf("MinDistSq inside = %d, want 0", d)
	}
	if d := r.MaxDistSqToPoint(Point{10, 10}); d != 200 {
		t.Errorf("MaxDistSq corner = %d, want 200", d)
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 5}
	if !c.Contains(Point{3, 4}) {
		t.Error("boundary point should be contained (closed disc)")
	}
	if c.Contains(Point{4, 4}) {
		t.Error("exterior point contained")
	}
	if math.Abs(c.Area()-math.Pi*25) > 1e-9 {
		t.Errorf("Area = %v", c.Area())
	}
	r := MinEnclosingRadius(Point{0, 0}, []Point{{1, 0}, {0, -7}, {2, 2}})
	if r != 7 {
		t.Errorf("MinEnclosingRadius = %v, want 7", r)
	}
	if MinEnclosingRadius(Point{5, 5}, nil) != 0 {
		t.Error("empty MinEnclosingRadius should be 0")
	}
}

// Property: quadrants always partition area, and every contained point falls
// in exactly one quadrant.
func TestQuadrantPartitionProperty(t *testing.T) {
	f := func(ox, oy int16, sizeExp uint8, px, py uint16) bool {
		side := int32(1) << (2 + sizeExp%10) // 4..2048
		r := NewRect(int32(ox), int32(oy), int32(ox)+side, int32(oy)+side)
		p := Point{int32(ox) + int32(px)%side, int32(oy) + int32(py)%side}
		qs := r.Quadrants()
		var area int64
		n := 0
		for _, q := range qs {
			area += q.Area()
			if q.Contains(p) {
				n++
			}
		}
		return area == r.Area() && n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Union contains both operands; Intersect is contained in both.
func TestUnionIntersectProperty(t *testing.T) {
	f := func(ax, ay, bx, by int16, aw, ah, bw, bh uint8) bool {
		a := NewRect(int32(ax), int32(ay), int32(ax)+int32(aw)+1, int32(ay)+int32(ah)+1)
		b := NewRect(int32(bx), int32(by), int32(bx)+int32(bw)+1, int32(by)+int32(bh)+1)
		u := a.Union(b)
		i := a.Intersect(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		if i.Empty() {
			return true
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MinDistSq <= MaxDistSq, and MinDistSq is 0 iff the point is in
// the closed rectangle.
func TestRectDistanceProperty(t *testing.T) {
	f := func(px, py, rx, ry int16, w, h uint8) bool {
		r := NewRect(int32(rx), int32(ry), int32(rx)+int32(w)+1, int32(ry)+int32(h)+1)
		p := Point{int32(px), int32(py)}
		lo, hi := r.MinDistSqToPoint(p), r.MaxDistSqToPoint(p)
		if lo > hi {
			return false
		}
		return (lo == 0) == r.ContainsClosed(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
