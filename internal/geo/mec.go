package geo

import (
	"math"
	"math/rand"
)

// Minimum enclosing circle via Welzl's randomized incremental algorithm,
// the geometric core of the FindMBC baseline of Xu–Cai [27]. Expected
// linear time; the permutation is drawn from the caller-supplied source so
// results stay deterministic under a fixed seed (the circle itself is
// unique regardless of the permutation, up to floating-point wobble).

// FCircle is a circle with float64 center, used where circle centers are
// free rather than drawn from a fixed set (the FindMBC cloaks).
type FCircle struct {
	CX, CY, R float64
}

// ContainsPoint reports whether p lies in the closed disc.
func (c FCircle) ContainsPoint(p Point) bool {
	dx := float64(p.X) - c.CX
	dy := float64(p.Y) - c.CY
	return dx*dx+dy*dy <= c.R*c.R+1e-7
}

// Area returns the disc area.
func (c FCircle) Area() float64 { return 3.141592653589793 * c.R * c.R }

// MinEnclosingCircle returns the smallest circle containing all points.
// It returns the zero circle for an empty input.
func MinEnclosingCircle(points []Point, rng *rand.Rand) FCircle {
	if len(points) == 0 {
		return FCircle{}
	}
	pts := append([]Point(nil), points...)
	if rng != nil {
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	}
	c := circleFrom1(pts[0])
	for i := 1; i < len(pts); i++ {
		if c.ContainsPoint(pts[i]) {
			continue
		}
		c = circleFrom1(pts[i])
		for j := 0; j < i; j++ {
			if c.ContainsPoint(pts[j]) {
				continue
			}
			c = circleFrom2(pts[i], pts[j])
			for k := 0; k < j; k++ {
				if !c.ContainsPoint(pts[k]) {
					c = circleFrom3(pts[i], pts[j], pts[k])
				}
			}
		}
	}
	return c
}

func circleFrom1(a Point) FCircle {
	return FCircle{CX: float64(a.X), CY: float64(a.Y), R: 0}
}

func circleFrom2(a, b Point) FCircle {
	cx := (float64(a.X) + float64(b.X)) / 2
	cy := (float64(a.Y) + float64(b.Y)) / 2
	dx := float64(a.X) - cx
	dy := float64(a.Y) - cy
	return FCircle{CX: cx, CY: cy, R: sqrt(dx*dx + dy*dy)}
}

// circleFrom3 returns the circumcircle of a,b,c, or the best two-point
// circle when the points are (near-)collinear.
func circleFrom3(a, b, c Point) FCircle {
	ax, ay := float64(a.X), float64(a.Y)
	bx, by := float64(b.X), float64(b.Y)
	cx, cy := float64(c.X), float64(c.Y)
	d := 2 * (ax*(by-cy) + bx*(cy-ay) + cx*(ay-by))
	if d > -1e-9 && d < 1e-9 {
		// Collinear: the diametral circle of the farthest pair covers all.
		best := circleFrom2(a, b)
		if alt := circleFrom2(a, c); alt.R > best.R {
			best = alt
		}
		if alt := circleFrom2(b, c); alt.R > best.R {
			best = alt
		}
		return best
	}
	ux := ((ax*ax+ay*ay)*(by-cy) + (bx*bx+by*by)*(cy-ay) + (cx*cx+cy*cy)*(ay-by)) / d
	uy := ((ax*ax+ay*ay)*(cx-bx) + (bx*bx+by*by)*(ax-cx) + (cx*cx+cy*cy)*(bx-ax)) / d
	dx := ax - ux
	dy := ay - uy
	return FCircle{CX: ux, CY: uy, R: sqrt(dx*dx + dy*dy)}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
