package attacker

import (
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

func freqFixture(t *testing.T) (*lbs.Assignment, *lbs.POIProvider, *lbs.CSP) {
	t.Helper()
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 5}},
		{UserID: "Sam", Loc: geo.Point{X: 5, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 6, Y: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(4, 0, 8, 8)
	pol, err := lbs.NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	store, err := lbs.NewPOIStore([]lbs.POI{
		{ID: "x", Loc: geo.Point{X: 3, Y: 3}, Category: "clinic"},
	}, geo.NewRect(0, 0, 8, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	provider := lbs.NewPOIProvider(store)
	return pol, provider, lbs.NewCSP(pol, provider)
}

var clinicParams = []lbs.Param{{Name: "cat", Value: "clinic"}}

// Without the cache, all three westerners asking the same sensitive query
// are exposed by counting: 3 requests from a 3-resident cloak.
func TestFrequencyAttackExposesWithoutCache(t *testing.T) {
	pol, _, _ := freqFixture(t)
	// Simulate a cache-less CSP: forward every anonymized request.
	var log []lbs.AnonymizedRequest
	for i, u := range []string{"Alice", "Bob", "Carol"} {
		cloak, err := pol.CloakOf(u)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, lbs.AnonymizedRequest{RID: uint64(i), Cloak: cloak, Params: clinicParams})
	}
	findings := FrequencyAttack(pol, log)
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if !f.Exposed || f.Requests != 3 || f.Residents != 3 {
		t.Fatalf("expected full exposure, got %+v", f)
	}
	if f.String() == "" {
		t.Fatal("finding should render")
	}
}

// With the CSP cache in the loop, the provider log holds one request per
// (cloak, params), so the counting attack finds nothing.
func TestCacheDefeatsFrequencyAttack(t *testing.T) {
	pol, provider, csp := freqFixture(t)
	db := pol.DB()
	for _, u := range []string{"Alice", "Bob", "Carol"} {
		loc, err := db.Lookup(u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := csp.Serve(lbs.ServiceRequest{UserID: u, Loc: loc, Params: clinicParams}); err != nil {
			t.Fatal(err)
		}
	}
	log := provider.Log()
	if len(log) != 1 {
		t.Fatalf("provider saw %d requests, cache should dedupe to 1", len(log))
	}
	findings := FrequencyAttack(pol, log)
	for _, f := range findings {
		if f.Exposed {
			t.Fatalf("cache failed to prevent exposure: %v", f)
		}
	}
}

// A single request from a 3-resident cloak discloses nothing by counting.
func TestFrequencyAttackQuietOnLowCounts(t *testing.T) {
	pol, _, _ := freqFixture(t)
	cloak, err := pol.CloakOf("Alice")
	if err != nil {
		t.Fatal(err)
	}
	findings := FrequencyAttack(pol, []lbs.AnonymizedRequest{
		{RID: 1, Cloak: cloak, Params: clinicParams},
	})
	if len(findings) != 0 {
		t.Fatalf("low-count log produced findings: %v", findings)
	}
}

// Different parameter vectors are counted separately.
func TestFrequencyAttackSeparatesParams(t *testing.T) {
	pol, _, _ := freqFixture(t)
	cloak, err := pol.CloakOf("Alice")
	if err != nil {
		t.Fatal(err)
	}
	other := []lbs.Param{{Name: "cat", Value: "gas"}}
	log := []lbs.AnonymizedRequest{
		{RID: 1, Cloak: cloak, Params: clinicParams},
		{RID: 2, Cloak: cloak, Params: other},
		{RID: 3, Cloak: cloak, Params: other},
	}
	findings := FrequencyAttack(pol, log)
	for _, f := range findings {
		if f.Exposed {
			t.Fatalf("mixed-parameter log should not fully expose: %v", f)
		}
	}
}
