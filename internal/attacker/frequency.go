package attacker

import (
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
)

// This file implements the frequency-counting attack discussed in
// Section VII ("Beyond k-anonymity: l-diversity and t-closeness"): an
// attacker who can count duplicate anonymized requests per (cloak,
// parameters) within one snapshot learns how many distinct senders issued
// the same query. In the extreme the paper calls out, observing as many
// identical requests from a cloak as there are users residing in it
// exposes every sender: all of them must have asked, so each user's
// interest is revealed even though no individual request is linkable.
//
// The defence is the CSP-side result cache (lbs.CSP): the provider sees
// each distinct (cloak, parameters) pair at most once per cache epoch, so
// the counts the attack needs never reach its log.

// FrequencyFinding reports one (cloak, parameters) group whose observed
// request count reveals information about the senders' interests.
type FrequencyFinding struct {
	Cloak geo.Rect
	// Params is the shared parameter vector of the counted requests.
	Params []lbs.Param
	// Requests is the number of duplicate requests observed.
	Requests int
	// Residents is the number of users the location database places in
	// the cloak.
	Residents int
	// Exposed reports the full breach: every resident of the cloak
	// provably issued this request (Requests == Residents, assuming one
	// request per user per snapshot).
	Exposed bool
}

// String renders the finding.
func (f FrequencyFinding) String() string {
	verdict := "partial disclosure"
	if f.Exposed {
		verdict = "ALL SENDERS EXPOSED"
	}
	return fmt.Sprintf("cloak %v params %v: %d/%d residents requested (%s)",
		f.Cloak, f.Params, f.Requests, f.Residents, verdict)
}

// FrequencyAttack runs the Section VII counting attack over a provider
// log for one snapshot: it groups the observed anonymized requests by
// (cloak, parameters) and compares each group's size against the cloak's
// resident count, assuming each user issues at most one request per
// snapshot (reasonable given the short snapshot duration, as the paper
// argues). Groups where more than half the residents provably share the
// same interest are reported; Exposed findings identify every sender.
func FrequencyAttack(a *lbs.Assignment, log []lbs.AnonymizedRequest) []FrequencyFinding {
	type key struct {
		cloak  geo.Rect
		params string
	}
	counts := make(map[key]int)
	paramsOf := make(map[key][]lbs.Param)
	for _, ar := range log {
		k := key{cloak: ar.Cloak, params: encodeParams(ar.Params)}
		counts[k]++
		paramsOf[k] = ar.Params
	}
	db := a.DB()
	var out []FrequencyFinding
	for k, n := range counts {
		residents := 0
		for i := 0; i < db.Len(); i++ {
			if k.cloak.ContainsClosed(db.At(i).Loc) {
				residents++
			}
		}
		if residents == 0 {
			continue
		}
		if 2*n > residents {
			out = append(out, FrequencyFinding{
				Cloak:     k.cloak,
				Params:    paramsOf[k],
				Requests:  n,
				Residents: residents,
				Exposed:   n >= residents,
			})
		}
	}
	return out
}

func encodeParams(ps []lbs.Param) string {
	s := ""
	for _, p := range ps {
		s += p.Name + "=" + p.Value + ";"
	}
	return s
}
