package attacker

import (
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
)

// This file implements the trajectory-aware attack the paper scopes OUT
// ([6], [27], [11] in its related work): an attacker who knows that a
// series of anonymized requests — issued against different snapshots —
// all came from the same (a priori unknown) user can intersect the
// per-snapshot candidate sets and often narrow the sender below k, even
// when every individual snapshot's policy is policy-aware k-anonymous.
//
// The paper explicitly leaves defending against this attacker to future
// work; the implementation here exists to demonstrate empirically that
// per-snapshot sender k-anonymity does not compose over time, which is
// the motivation for that future work. See TestTrajectoryAttackShrinks
// and examples in the repository.

// TrajectoryObservation pairs one snapshot's policy with the cloak the
// pinned request series used in that snapshot.
type TrajectoryObservation struct {
	Policy *lbs.Assignment
	Cloak  geo.Rect
	// Aware selects the attacker's per-snapshot knowledge; the composed
	// attack works for either class.
	Aware Awareness
}

// TrajectoryCandidates intersects the candidate sender sets of a request
// series known to originate from a single user. The result is the set of
// users that could have produced every observation; sender anonymity over
// the series is its size.
func TrajectoryCandidates(series []TrajectoryObservation) []string {
	if len(series) == 0 {
		return nil
	}
	alive := make(map[string]bool)
	for _, u := range Candidates(series[0].Policy, series[0].Cloak, series[0].Aware) {
		alive[u] = true
	}
	for _, obs := range series[1:] {
		next := make(map[string]bool)
		for _, u := range Candidates(obs.Policy, obs.Cloak, obs.Aware) {
			if alive[u] {
				next[u] = true
			}
		}
		alive = next
	}
	// Return in the first snapshot's record order for determinism.
	var out []string
	db := series[0].Policy.DB()
	for i := 0; i < db.Len(); i++ {
		if alive[db.At(i).UserID] {
			out = append(out, db.At(i).UserID)
		}
	}
	return out
}

// TrajectoryAnonymity returns the sender anonymity of a pinned request
// series: the size of the intersected candidate set.
func TrajectoryAnonymity(series []TrajectoryObservation) int {
	return len(TrajectoryCandidates(series))
}
