package attacker

import (
	"sync"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// exampleDB is a 5-user snapshot with the structure of Table I: two users
// close together in the southwest, a third alone in the northwest, two in
// the east.
func exampleDB(t *testing.T) *location.DB {
	t.Helper()
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 5}},
		{UserID: "Sam", Loc: geo.Point{X: 5, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 6, Y: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// kInsidePolicy mirrors Example 1: Alice and Bob get the tight southwest
// cloak, Carol (an outlier) is cloaked by the whole map (which contains
// everyone, so the policy is 2-inside), Sam and Tom share the east half.
func kInsidePolicy(t *testing.T, db *location.DB) *lbs.Assignment {
	t.Helper()
	sw := geo.NewRect(0, 0, 2, 4)
	all := geo.NewRect(0, 0, 8, 8)
	east := geo.NewRect(4, 0, 8, 8)
	a, err := lbs.NewAssignment(db, []geo.Rect{sw, sw, all, east, east})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestExample1PolicyAwareBreach(t *testing.T) {
	db := exampleDB(t)
	pol := kInsidePolicy(t, db)

	// Proposition 2: the 2-inside policy is 2-anonymous against
	// policy-unaware attackers — every used cloak covers >= 2 users.
	if !IsKAnonymous(pol, 2, PolicyUnaware) {
		t.Fatal("2-inside policy should resist policy-unaware attackers")
	}

	// Proposition 3 / Example 6: a policy-aware attacker who observes
	// Carol's cloak can reverse-engineer only Carol.
	breaches, minAnon := Audit(pol, 2, PolicyAware)
	if len(breaches) != 1 {
		t.Fatalf("expected exactly one breach, got %v", breaches)
	}
	if minAnon != 1 {
		t.Fatalf("min anonymity = %d, want 1", minAnon)
	}
	b := breaches[0]
	if len(b.Candidates) != 1 || b.Candidates[0] != "Carol" {
		t.Fatalf("breach candidates = %v, want [Carol]", b.Candidates)
	}
	if b.String() == "" {
		t.Fatal("breach should render")
	}
}

// Example 8's shape: merging Carol with Alice and Bob restores anonymity
// against policy-aware attackers at the price of a larger cloak.
func TestPolicyAwareSafePolicy(t *testing.T) {
	db := exampleDB(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(4, 0, 8, 8)
	pol, err := lbs.NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	if !IsKAnonymous(pol, 2, PolicyAware) {
		t.Fatal("grouped policy should resist policy-aware attackers")
	}
	// Proposition 1: policy-aware anonymity implies policy-unaware.
	if !IsKAnonymous(pol, 2, PolicyUnaware) {
		t.Fatal("Proposition 1 violated")
	}
	if IsKAnonymous(pol, 4, PolicyAware) {
		t.Fatal("2-member group passed as 4-anonymous")
	}
}

func TestCandidates(t *testing.T) {
	db := exampleDB(t)
	pol := kInsidePolicy(t, db)
	all := geo.NewRect(0, 0, 8, 8)

	unaware := Candidates(pol, all, PolicyUnaware)
	if len(unaware) != 5 {
		t.Fatalf("policy-unaware candidates for the full map = %v", unaware)
	}
	aware := Candidates(pol, all, PolicyAware)
	if len(aware) != 1 || aware[0] != "Carol" {
		t.Fatalf("policy-aware candidates = %v, want [Carol]", aware)
	}
	// The policy-aware candidate set is always a subset of the
	// policy-unaware one for masking policies.
	inUnaware := make(map[string]bool)
	for _, u := range unaware {
		inUnaware[u] = true
	}
	for _, u := range aware {
		if !inUnaware[u] {
			t.Fatalf("policy-aware candidate %q not covered by the cloak", u)
		}
	}
}

func TestAuditEmptyAssignment(t *testing.T) {
	db := location.New(0)
	pol, err := lbs.NewAssignment(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	breaches, minAnon := Audit(pol, 2, PolicyAware)
	if len(breaches) != 0 || minAnon != 0 {
		t.Fatalf("empty audit: %v %d", breaches, minAnon)
	}
}

func TestAwarenessString(t *testing.T) {
	if PolicyAware.String() != "policy-aware" || PolicyUnaware.String() != "policy-unaware" {
		t.Fatal("awareness names wrong")
	}
	if Awareness(9).String() == "" {
		t.Fatal("unknown awareness should still render")
	}
}

// Definition 6 witness construction: when Audit reports no breach, k PREs
// with pairwise distinct senders per request can be explicitly constructed;
// when it reports a breach, they cannot.
func TestDefinitionSixWitness(t *testing.T) {
	db := exampleDB(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(4, 0, 8, 8)
	pol, err := lbs.NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	// Build the k PRE functions: for each issued cloak, the i-th PRE maps
	// any request with that cloak to the i-th candidate sender.
	pres := make([]map[geo.Rect]string, k)
	for i := range pres {
		pres[i] = make(map[geo.Rect]string)
	}
	for _, g := range pol.Groups() {
		cand := Candidates(pol, g.Cloak, PolicyAware)
		if len(cand) < k {
			t.Fatalf("cannot construct %d PREs for cloak %v", k, g.Cloak)
		}
		for i := 0; i < k; i++ {
			pres[i][g.Cloak] = cand[i]
		}
	}
	// Verify: each PRE maps every request to a valid service request that
	// the policy maps back to the observed cloak, and senders differ
	// pairwise per request.
	for _, g := range pol.Groups() {
		for i := 0; i < k; i++ {
			u := pres[i][g.Cloak]
			loc, err := db.Lookup(u)
			if err != nil {
				t.Fatalf("PRE %d yields invalid service request for %v", i, g.Cloak)
			}
			back, err := pol.CloakOf(u)
			if err != nil || back != g.Cloak {
				t.Fatalf("PRE %d not reproduced by the policy: %v vs %v", i, back, g.Cloak)
			}
			_ = loc
			for j := 0; j < i; j++ {
				if pres[j][g.Cloak] == u {
					t.Fatalf("PREs %d and %d collide on %v", i, j, g.Cloak)
				}
			}
		}
	}
}

// GroupSizes must agree with Candidates on every issued cloak, under both
// attacker classes.
func TestGroupSizesMatchCandidates(t *testing.T) {
	db := exampleDB(t)
	pol := kInsidePolicy(t, db)
	for _, aw := range []Awareness{PolicyAware, PolicyUnaware} {
		sizes := GroupSizes(pol, aw)
		groups := pol.Groups()
		if len(sizes) != len(groups) {
			t.Fatalf("%v: %d sizes for %d groups", aw, len(sizes), len(groups))
		}
		minSize := pol.Len() + 1
		for i, g := range groups {
			want := len(Candidates(pol, g.Cloak, aw))
			if sizes[i] != want {
				t.Errorf("%v group %d size %d, want %d", aw, i, sizes[i], want)
			}
			if sizes[i] < minSize {
				minSize = sizes[i]
			}
		}
		if _, minAudit := Audit(pol, 2, aw); minAudit != minSize {
			t.Errorf("%v: Audit min %d != GroupSizes min %d", aw, minAudit, minSize)
		}
	}
}

// The audit layer runs attacker functions from concurrent request
// goroutines over one shared assignment; under -race this test proves
// read-only concurrent use is safe.
func TestConcurrentAuditAndCandidates(t *testing.T) {
	db := exampleDB(t)
	pol := kInsidePolicy(t, db)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			aw := Awareness(g % 2)
			for i := 0; i < 100; i++ {
				if _, min := Audit(pol, 2, aw); min < 1 {
					t.Errorf("concurrent Audit min = %d", min)
					return
				}
				cloak := pol.CloakAt(i % pol.Len())
				if len(Candidates(pol, cloak, aw)) < 1 {
					t.Error("concurrent Candidates empty")
					return
				}
				GroupSizes(pol, aw)
			}
		}(g)
	}
	wg.Wait()
}
