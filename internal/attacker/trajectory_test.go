package attacker

import (
	"math/rand"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/workload"
)

// Per-snapshot k-anonymity does not compose across snapshots: a
// trajectory-aware attacker intersecting candidate sets over moving
// snapshots shrinks the anonymity set, often below k. This is the
// limitation the paper defers to future work; the test demonstrates it
// and pins the composed anonymity to be no larger than any single
// snapshot's.
func TestTrajectoryAttackShrinksAnonymity(t *testing.T) {
	const (
		k     = 10
		side  = int32(1 << 13)
		snaps = 6
	)
	cfg := workload.Config{MapSide: side, Intersections: 1500, UsersPerIntersection: 4, SpreadSigma: 80}
	db := workload.Generate(cfg, 21)
	bounds := geo.NewRect(0, 0, side, side)
	rng := rand.New(rand.NewSource(77))
	target := 123 // the pinned user the attacker tracks

	var series []TrajectoryObservation
	perSnapshot := make([]int, 0, snaps)
	for s := 0; s < snaps; s++ {
		anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := anon.Policy()
		if err != nil {
			t.Fatal(err)
		}
		if !IsKAnonymous(pol, k, PolicyAware) {
			t.Fatal("per-snapshot policy must be k-anonymous")
		}
		cloak := pol.CloakAt(target)
		series = append(series, TrajectoryObservation{Policy: pol, Cloak: cloak, Aware: PolicyAware})
		perSnapshot = append(perSnapshot, len(Candidates(pol, cloak, PolicyAware)))
		// Everyone moves ~500 m between snapshots.
		workload.Apply(db, workload.PlanMoves(rng, db, 1.0, 500, side))
	}
	composed := TrajectoryAnonymity(series)
	if composed < 1 {
		t.Fatal("target must remain a candidate of its own trajectory")
	}
	cands := TrajectoryCandidates(series)
	foundTarget := false
	for _, u := range cands {
		if u == db.At(target).UserID {
			foundTarget = true
		}
	}
	if !foundTarget {
		t.Fatal("trajectory candidates lost the true sender")
	}
	for s, n := range perSnapshot {
		if n < k {
			t.Fatalf("snapshot %d violated per-snapshot anonymity: %d", s, n)
		}
		if composed > n {
			t.Fatalf("composed anonymity %d exceeds snapshot %d's %d", composed, s, n)
		}
	}
	if composed >= perSnapshot[0] {
		t.Fatalf("trajectory attack failed to shrink anonymity: %d vs %d", composed, perSnapshot[0])
	}
	t.Logf("per-snapshot anonymity %v -> composed %d (k=%d)", perSnapshot, composed, k)
}

func TestTrajectoryEmptySeries(t *testing.T) {
	if got := TrajectoryCandidates(nil); got != nil {
		t.Fatalf("empty series candidates = %v", got)
	}
	if TrajectoryAnonymity(nil) != 0 {
		t.Fatal("empty series anonymity should be 0")
	}
}

// A single-observation trajectory equals the plain candidate set.
func TestTrajectorySingleObservation(t *testing.T) {
	db, err := location.FromRecords([]location.Record{
		{UserID: "a", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "b", Loc: geo.Point{X: 2, Y: 2}},
		{UserID: "c", Loc: geo.Point{X: 6, Y: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := geo.NewRect(0, 0, 8, 8)
	pol, err := lbs.NewAssignment(db, []geo.Rect{all, all, all})
	if err != nil {
		t.Fatal(err)
	}
	series := []TrajectoryObservation{{Policy: pol, Cloak: all, Aware: PolicyAware}}
	if got := TrajectoryAnonymity(series); got != 3 {
		t.Fatalf("single-observation anonymity = %d", got)
	}
}
