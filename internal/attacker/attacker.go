// Package attacker implements the attack function of Section III: given
// the run-time inputs (the location database snapshot and the observed
// anonymized requests) and the design-time knowledge (the anonymity level k
// and the family of candidate policies), it reverse-engineers each
// anonymized request into its Possible Reverse Engineerings (Definition 5)
// and reports the set of possible senders.
//
// Two attacker classes are modelled, matching the paper's two extremes:
//
//   - PolicyUnaware: the attacker only knows the policy uses cloaks from
//     some family C of regions and observes a single request. Any user
//     inside the cloak admits a PRE (some masking policy in P_C maps it
//     there), so the candidate set is exactly the users covered by the
//     cloak. This is the guarantee k-inside policies provide
//     (Proposition 2).
//
//   - PolicyAware: the attacker knows the exact deterministic policy P in
//     use. A PRE must reproduce the observed cloak under P itself, so the
//     candidate set is the policy's cloaking group of that cloak — which
//     can be smaller than the users covered (Example 1 / Proposition 3).
package attacker

import (
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// Awareness selects the attacker class of Section III.
type Awareness int

const (
	// PolicyUnaware attackers know only the cloak family, not the policy.
	PolicyUnaware Awareness = iota
	// PolicyAware attackers know the exact policy in use.
	PolicyAware
)

// String names the attacker class.
func (a Awareness) String() string {
	switch a {
	case PolicyUnaware:
		return "policy-unaware"
	case PolicyAware:
		return "policy-aware"
	default:
		return fmt.Sprintf("Awareness(%d)", int(a))
	}
}

// Candidates returns the user ids a k-anonymity attacker of the given
// class cannot distinguish among after observing an anonymized request
// with the given cloak, assuming policy a (as an Assignment) and full
// knowledge of the snapshot.
func Candidates(a *lbs.Assignment, cloak geo.Rect, aw Awareness) []string {
	db := a.DB()
	var out []string
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		switch aw {
		case PolicyUnaware:
			if cloak.ContainsClosed(rec.Loc) {
				out = append(out, rec.UserID)
			}
		case PolicyAware:
			if a.CloakAt(i) == cloak {
				out = append(out, rec.UserID)
			}
		}
	}
	return out
}

// Breach records a violation of sender k-anonymity: a cloak whose possible
// sender set has fewer than k members.
type Breach struct {
	Cloak      geo.Rect
	Candidates []string
}

// String renders the breach for reports.
func (b Breach) String() string {
	return fmt.Sprintf("cloak %v narrows senders to %v", b.Cloak, b.Candidates)
}

// Audit checks sender k-anonymity of the policy against the given attacker
// class, per Definition 6 applied to the case where every user issues one
// request: it returns all breaches (empty means the policy provides sender
// k-anonymity on this snapshot) and the minimum candidate-set size over
// all issued cloaks.
//
// Candidate-set sizes are computed from the policy's group structure (for
// policy-aware attackers the candidate set IS the cloaking group) and a
// spatial grid index (for the policy-unaware containment counts), so the
// audit runs in near-linear time in |D| rather than |D| x groups.
func Audit(a *lbs.Assignment, k int, aw Awareness) (breaches []Breach, minAnonymity int) {
	if a.Len() == 0 {
		return nil, 0
	}
	minAnonymity = a.Len() + 1
	var grid *location.Grid
	if aw == PolicyUnaware {
		// Tight bounds over the snapshot suffice: users outside a cloak's
		// overlap with the population bounds cannot be candidates anyway.
		g, err := location.NewGrid(a.DB(), a.DB().Bounds(), 0)
		if err == nil {
			grid = g
		}
	}
	for _, g := range a.Groups() {
		var n int
		switch {
		case aw == PolicyAware:
			n = len(g.Members)
		case grid != nil:
			n = grid.CountInClosed(g.Cloak)
		default:
			n = len(Candidates(a, g.Cloak, aw))
		}
		if n < minAnonymity {
			minAnonymity = n
		}
		if n < k {
			breaches = append(breaches, Breach{Cloak: g.Cloak, Candidates: Candidates(a, g.Cloak, aw)})
		}
	}
	return breaches, minAnonymity
}

// GroupSizes returns the candidate-set size of every issued cloak (one
// entry per cloaking group, in Groups order) under the given attacker
// class — the full achieved-anonymity distribution the audit layer
// summarizes as min/p50/p95. Like Audit it only reads the assignment, so
// concurrent calls over one assignment are safe.
func GroupSizes(a *lbs.Assignment, aw Awareness) []int {
	groups := a.Groups()
	sizes := make([]int, len(groups))
	var grid *location.Grid
	if aw == PolicyUnaware {
		if g, err := location.NewGrid(a.DB(), a.DB().Bounds(), 0); err == nil {
			grid = g
		}
	}
	for i, g := range groups {
		switch {
		case aw == PolicyAware:
			sizes[i] = len(g.Members)
		case grid != nil:
			sizes[i] = grid.CountInClosed(g.Cloak)
		default:
			sizes[i] = len(Candidates(a, g.Cloak, aw))
		}
	}
	return sizes
}

// IsKAnonymous reports whether the policy provides sender k-anonymity on
// its snapshot against the given attacker class.
func IsKAnonymous(a *lbs.Assignment, k int, aw Awareness) bool {
	b, _ := Audit(a, k, aw)
	return len(b) == 0
}
