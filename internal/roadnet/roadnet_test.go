package roadnet

import (
	"math/rand"
	"testing"

	"policyanon/internal/geo"
)

func testNetwork(t *testing.T, n int, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Int31n(4096), Y: rng.Int31n(4096)}
	}
	net, err := BuildNetwork(pts, geo.NewRect(0, 0, 4096, 4096), 3)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildNetworkBasics(t *testing.T) {
	net := testNetwork(t, 500, 1)
	if net.NumNodes() != 500 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	if net.NumEdges() < 500 {
		t.Fatalf("suspiciously few edges: %d", net.NumEdges())
	}
	// Adjacency is symmetric and self-loop free.
	for i := int32(0); i < int32(net.NumNodes()); i++ {
		for _, j := range net.Neighbors(i) {
			if j == i {
				t.Fatalf("self loop at %d", i)
			}
			found := false
			for _, back := range net.Neighbors(j) {
				if back == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", i, j)
			}
		}
	}
}

func TestBuildNetworkValidation(t *testing.T) {
	b := geo.NewRect(0, 0, 64, 64)
	if _, err := BuildNetwork(nil, b, 3); err == nil {
		t.Error("empty intersections accepted")
	}
	if _, err := BuildNetwork([]geo.Point{{X: 1, Y: 1}}, b, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := BuildNetwork([]geo.Point{{X: 99, Y: 1}}, b, 2); err == nil {
		t.Error("out-of-bounds intersection accepted")
	}
}

func TestAgentsStayOnMapAndMove(t *testing.T) {
	net := testNetwork(t, 400, 2)
	agents, err := NewAgents(net, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if agents.Len() != 200 {
		t.Fatalf("agents = %d", agents.Len())
	}
	before := agents.Positions()
	bounds := net.Bounds()
	moved := 0
	for step := 0; step < 20; step++ {
		agents.Step(10) // 10-second snapshot interval
		for i := 0; i < agents.Len(); i++ {
			p := agents.Position(i)
			if !bounds.Contains(p) {
				t.Fatalf("agent %d left the map: %v", i, p)
			}
		}
	}
	after := agents.Positions()
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	if moved < agents.Len()/2 {
		t.Fatalf("only %d of %d agents moved over 200 s", moved, agents.Len())
	}
}

// Movement per step is bounded by speed*dt (along the network, hence also
// in Euclidean distance).
func TestStepDistanceBounded(t *testing.T) {
	net := testNetwork(t, 300, 3)
	agents, err := NewAgents(net, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 10.0
	maxSpeed := float64(Highway) * 1.2 // class jitter upper bound
	for step := 0; step < 10; step++ {
		before := agents.Positions()
		agents.Step(dt)
		for i := range before {
			if d := before[i].Dist(agents.Position(i)); d > maxSpeed*dt+2 {
				t.Fatalf("agent %d moved %.1f m in %v s (max %.1f)", i, d, dt, maxSpeed*dt)
			}
		}
	}
}

func TestAgentsDeterministic(t *testing.T) {
	net := testNetwork(t, 200, 4)
	a1, err := NewAgents(net, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAgents(net, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		a1.Step(10)
		a2.Step(10)
	}
	for i := 0; i < a1.Len(); i++ {
		if a1.Position(i) != a2.Position(i) {
			t.Fatalf("agent %d diverged between identical seeds", i)
		}
	}
	if _, err := NewAgents(net, -1, 0); err == nil {
		t.Error("negative agent count accepted")
	}
}

// Consecutive snapshots must be strongly correlated: most 10-second steps
// keep agents within a few hundred meters, which is what makes
// incremental maintenance effective on road-network workloads.
func TestSnapshotsAreCorrelated(t *testing.T) {
	net := testNetwork(t, 400, 5)
	agents, err := NewAgents(net, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	before := agents.Positions()
	agents.Step(10)
	within := 0
	for i := range before {
		if before[i].Dist(agents.Position(i)) <= 400 {
			within++
		}
	}
	if within < 9*agents.Len()/10 {
		t.Fatalf("only %d of %d agents stayed within 400 m over one snapshot", within, agents.Len())
	}
}
