// Package roadnet implements a network-based moving-objects generator in
// the style of Brinkhoff's framework, which the paper cites as the source
// of its street-intersection data [8]: a synthetic road network is built
// over a set of intersections, and agents (users) travel along its edges
// at class-dependent speeds, turning randomly at intersections.
//
// It provides a more realistic movement model than the random-jitter
// model of Section VI-C (package workload): users follow roads, so
// consecutive snapshots are strongly spatially correlated — the setting
// in which incremental maintenance of the optimum configuration matrix
// shines.
package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"policyanon/internal/geo"
)

// Network is an undirected road graph over intersection points.
type Network struct {
	nodes  []geo.Point
	adj    [][]int32
	bounds geo.Rect
}

// BuildNetwork connects each intersection to its `degree` nearest
// neighbours (deduplicated, undirected), using a uniform grid for
// neighbour search. Nodes must lie inside bounds.
func BuildNetwork(intersections []geo.Point, bounds geo.Rect, degree int) (*Network, error) {
	if len(intersections) == 0 {
		return nil, fmt.Errorf("roadnet: no intersections")
	}
	if degree < 1 {
		return nil, fmt.Errorf("roadnet: degree must be >= 1, got %d", degree)
	}
	for i, p := range intersections {
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("roadnet: intersection %d at %v outside bounds %v", i, p, bounds)
		}
	}
	n := &Network{
		nodes:  append([]geo.Point(nil), intersections...),
		adj:    make([][]int32, len(intersections)),
		bounds: bounds,
	}
	// Grid index over nodes.
	cells := int32(math.Sqrt(float64(len(intersections))/2)) + 1
	cw := float64(bounds.Width()) / float64(cells)
	if cw < 1 {
		cw = 1
	}
	grid := make(map[[2]int32][]int32)
	cellOf := func(p geo.Point) [2]int32 {
		return [2]int32{
			int32(float64(p.X-bounds.MinX) / cw),
			int32(float64(p.Y-bounds.MinY) / cw),
		}
	}
	for i, p := range n.nodes {
		c := cellOf(p)
		grid[c] = append(grid[c], int32(i))
	}
	type cand struct {
		idx  int32
		dist int64
	}
	for i, p := range n.nodes {
		c := cellOf(p)
		var cands []cand
		for ring := int32(0); ring <= cells; ring++ {
			for dy := -ring; dy <= ring; dy++ {
				for dx := -ring; dx <= ring; dx++ {
					if maxAbs32(dx, dy) != ring {
						continue
					}
					for _, j := range grid[[2]int32{c[0] + dx, c[1] + dy}] {
						if int(j) == i {
							continue
						}
						cands = append(cands, cand{j, p.DistSq(n.nodes[j])})
					}
				}
			}
			// Enough candidates collected and the next ring cannot beat
			// the current k-th best: stop.
			if len(cands) >= degree*3 && ring >= 2 {
				break
			}
		}
		// Partial selection of the `degree` nearest.
		for s := 0; s < degree && s < len(cands); s++ {
			best := s
			for t := s + 1; t < len(cands); t++ {
				if cands[t].dist < cands[best].dist {
					best = t
				}
			}
			cands[s], cands[best] = cands[best], cands[s]
			n.link(int32(i), cands[s].idx)
		}
	}
	return n, nil
}

func (n *Network) link(a, b int32) {
	for _, x := range n.adj[a] {
		if x == b {
			return
		}
	}
	n.adj[a] = append(n.adj[a], b)
	n.adj[b] = append(n.adj[b], a)
}

// NumNodes returns the number of intersections.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the number of undirected road segments.
func (n *Network) NumEdges() int {
	total := 0
	for _, a := range n.adj {
		total += len(a)
	}
	return total / 2
}

// Node returns the coordinates of intersection i.
func (n *Network) Node(i int32) geo.Point { return n.nodes[i] }

// Neighbors returns the intersections adjacent to i. Callers must not
// mutate the returned slice.
func (n *Network) Neighbors(i int32) []int32 { return n.adj[i] }

// Bounds returns the map rectangle.
func (n *Network) Bounds() geo.Rect { return n.bounds }

// SpeedClass is an agent movement profile in meters per second.
type SpeedClass float64

// Standard speed classes.
const (
	Pedestrian SpeedClass = 1.4
	Cyclist    SpeedClass = 5.5
	CityCar    SpeedClass = 13.0
	Highway    SpeedClass = 30.0
)

// agent is one moving user on the network.
type agent struct {
	from, to int32   // travelling from node `from` towards node `to`
	progress float64 // meters travelled along the current segment
	speed    float64
}

// Agents is a population of users moving on a road network.
type Agents struct {
	net *Network
	rng *rand.Rand
	ag  []agent
}

// NewAgents places n agents at random intersections with random speed
// classes, deterministically from the seed.
func NewAgents(net *Network, n int, seed int64) (*Agents, error) {
	if n < 0 {
		return nil, fmt.Errorf("roadnet: negative agent count %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	classes := []SpeedClass{Pedestrian, Cyclist, CityCar, Highway}
	a := &Agents{net: net, rng: rng, ag: make([]agent, n)}
	for i := range a.ag {
		from := int32(rng.Intn(net.NumNodes()))
		to := from
		if nb := net.Neighbors(from); len(nb) > 0 {
			to = nb[rng.Intn(len(nb))]
		}
		a.ag[i] = agent{
			from: from, to: to,
			speed: float64(classes[rng.Intn(len(classes))]) * (0.8 + 0.4*rng.Float64()),
		}
	}
	return a, nil
}

// Len returns the number of agents.
func (a *Agents) Len() int { return len(a.ag) }

// Position returns agent i's current map coordinates, interpolated along
// its road segment.
func (a *Agents) Position(i int) geo.Point {
	ag := &a.ag[i]
	p, q := a.net.Node(ag.from), a.net.Node(ag.to)
	segLen := p.Dist(q)
	if segLen == 0 {
		return p
	}
	t := ag.progress / segLen
	if t > 1 {
		t = 1
	}
	return geo.Point{
		X: clamp32(float64(p.X)+t*float64(q.X-p.X), a.net.bounds),
		Y: clampY32(float64(p.Y)+t*float64(q.Y-p.Y), a.net.bounds),
	}
}

// Positions returns all agent coordinates.
func (a *Agents) Positions() []geo.Point {
	out := make([]geo.Point, len(a.ag))
	for i := range a.ag {
		out[i] = a.Position(i)
	}
	return out
}

// Step advances every agent by dt seconds along the network: agents run
// down their segment and pick a random next road at each intersection,
// avoiding immediate U-turns where possible.
func (a *Agents) Step(dt float64) {
	for i := range a.ag {
		ag := &a.ag[i]
		remaining := ag.speed * dt
		for remaining > 0 {
			p, q := a.net.Node(ag.from), a.net.Node(ag.to)
			segLen := p.Dist(q)
			if segLen == 0 {
				// Isolated node: stay put.
				break
			}
			left := segLen - ag.progress
			if remaining < left {
				ag.progress += remaining
				break
			}
			remaining -= left
			// Arrived at ag.to: choose the next road.
			prev := ag.from
			ag.from = ag.to
			ag.progress = 0
			nb := a.net.Neighbors(ag.from)
			if len(nb) == 0 {
				ag.to = ag.from
				break
			}
			next := nb[a.rng.Intn(len(nb))]
			if next == prev && len(nb) > 1 {
				// avoid a U-turn when an alternative exists
				for _, cand := range nb {
					if cand != prev {
						next = cand
						break
					}
				}
			}
			ag.to = next
		}
	}
}

func clamp32(v float64, b geo.Rect) int32 {
	if v < float64(b.MinX) {
		return b.MinX
	}
	if v >= float64(b.MaxX) {
		return b.MaxX - 1
	}
	return int32(v)
}

func clampY32(v float64, b geo.Rect) int32 {
	if v < float64(b.MinY) {
		return b.MinY
	}
	if v >= float64(b.MaxY) {
		return b.MaxY - 1
	}
	return int32(v)
}

func maxAbs32(a, b int32) int32 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
