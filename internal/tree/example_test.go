package tree_test

import (
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/tree"
)

// ExampleBuild shows the lazy materialization rule: with k=2, only regions
// holding at least 2 users split.
func ExampleBuild() {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 60, Y: 60}}
	t, err := tree.Build(pts, geo.NewRect(0, 0, 64, 64), tree.Options{
		Kind: tree.Binary, MinCountToSplit: 2,
	})
	if err != nil {
		panic(err)
	}
	s := t.Stats()
	fmt.Println("nodes:", s.Nodes, "max leaf count:", s.MaxLeafCount)
	// Moving the lone user next to the others deepens the tree.
	if err := t.Move(2, geo.Point{X: 3, Y: 3}); err != nil {
		panic(err)
	}
	fmt.Println("nodes after move:", t.Stats().Nodes)
	// Output:
	// nodes: 19 max leaf count: 1
	// nodes after move: 23
}
