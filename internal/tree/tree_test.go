package tree

import (
	"errors"
	"math/rand"
	"testing"

	"policyanon/internal/geo"
)

func mustBuild(t *testing.T, pts []geo.Point, side int32, opt Options) *Tree {
	t.Helper()
	tr, err := Build(pts, geo.NewRect(0, 0, side, side), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after build: %v", err)
	}
	return tr
}

func randPoints(rng *rand.Rand, n int, side int32) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
	}
	return pts
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, geo.NewRect(0, 0, 4, 8), Options{}); err == nil {
		t.Error("non-square bounds accepted")
	}
	if _, err := Build(nil, geo.NewRect(2, 2, 2, 2), Options{}); err == nil {
		t.Error("empty bounds accepted")
	}
	_, err := Build([]geo.Point{{X: 9, Y: 9}}, geo.NewRect(0, 0, 8, 8), Options{})
	if !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out-of-bounds point: got %v", err)
	}
}

func TestSingleLeafTree(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	tr := mustBuild(t, pts, 8, Options{MinCountToSplit: 5})
	if !tr.IsLeaf(tr.Root()) {
		t.Fatal("root should be a leaf below the split threshold")
	}
	if tr.Count(tr.Root()) != 2 || tr.NumNodes() != 1 {
		t.Fatalf("count=%d nodes=%d", tr.Count(tr.Root()), tr.NumNodes())
	}
}

func TestBinarySplitAlternates(t *testing.T) {
	// Enough points to force splitting everywhere.
	rng := rand.New(rand.NewSource(1))
	tr := mustBuild(t, randPoints(rng, 500, 64), 64, Options{MinCountToSplit: 2})
	// Root (square) must split vertically into two portrait semi-quadrants.
	root := tr.Root()
	if tr.IsLeaf(root) {
		t.Fatal("root unexpectedly a leaf")
	}
	kids := tr.Children(root)
	if len(kids) != 2 {
		t.Fatalf("binary root has %d children", len(kids))
	}
	for _, c := range kids {
		r := tr.Rect(c)
		if r.Height() != 2*r.Width() {
			t.Errorf("semi-quadrant %v is not a vertical half", r)
		}
		if !tr.IsLeaf(c) {
			for _, g := range tr.Children(c) {
				gr := tr.Rect(g)
				if gr.Width() != gr.Height() {
					t.Errorf("grandchild %v is not square", gr)
				}
			}
		}
	}
}

func TestQuadSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := mustBuild(t, randPoints(rng, 500, 64), 64, Options{Kind: Quad, MinCountToSplit: 2})
	if got := len(tr.Children(tr.Root())); got != 4 {
		t.Fatalf("quad root has %d children", got)
	}
	for _, c := range tr.Children(tr.Root()) {
		r := tr.Rect(c)
		if r.Width() != 32 || r.Height() != 32 {
			t.Errorf("quadrant %v has wrong size", r)
		}
	}
}

func TestLazyMaterializationRule(t *testing.T) {
	// All leaves must have fewer than MinCountToSplit points (or be at
	// max depth / minimum size), and all internal nodes at least that.
	rng := rand.New(rand.NewSource(3))
	const k = 10
	tr := mustBuild(t, randPoints(rng, 2000, 1024), 1024, Options{MinCountToSplit: k})
	tr.PostOrder(func(id NodeID) {
		if tr.IsLeaf(id) {
			if tr.Count(id) >= k && tr.Height(id) < defaultMaxDepth && tr.Rect(id).Width() >= 2 {
				t.Errorf("leaf %d with %d >= k points should have split", id, tr.Count(id))
			}
		} else if tr.Count(id) < k {
			t.Errorf("internal node %d with %d < k points", id, tr.Count(id))
		}
	})
}

func TestMaxDepthStopsCoLocatedPoints(t *testing.T) {
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = geo.Point{X: 3, Y: 3} // all identical
	}
	tr := mustBuild(t, pts, 1024, Options{MinCountToSplit: 2, MaxDepth: 6})
	s := tr.Stats()
	if s.MaxHeight > 6 {
		t.Fatalf("max height %d exceeds MaxDepth", s.MaxHeight)
	}
	if s.TotalPoints != 50 {
		t.Fatalf("lost points: %d", s.TotalPoints)
	}
}

func TestLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 300, 256)
	tr := mustBuild(t, pts, 256, Options{MinCountToSplit: 5})
	for i, p := range pts {
		leaf, err := tr.Locate(p)
		if err != nil {
			t.Fatal(err)
		}
		if leaf != tr.LeafOf(int32(i)) {
			t.Fatalf("Locate(%v) = %d, LeafOf = %d", p, leaf, tr.LeafOf(int32(i)))
		}
	}
	if _, err := tr.Locate(geo.Point{X: 999, Y: 0}); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("Locate outside bounds: %v", err)
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := mustBuild(t, randPoints(rng, 200, 128), 128, Options{MinCountToSplit: 4})
	visited := make(map[NodeID]bool)
	n := 0
	tr.PostOrder(func(id NodeID) {
		for _, c := range tr.Children(id) {
			if !visited[c] {
				t.Fatalf("node %d visited before child %d", id, c)
			}
		}
		visited[id] = true
		n++
	})
	if n != tr.NumNodes() {
		t.Fatalf("visited %d of %d nodes", n, tr.NumNodes())
	}
}

func TestCountsSumExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := mustBuild(t, randPoints(rng, 1000, 512), 512, Options{MinCountToSplit: 8})
	tr.PostOrder(func(id NodeID) {
		if tr.IsLeaf(id) {
			return
		}
		sum := 0
		for _, c := range tr.Children(id) {
			sum += tr.Count(c)
		}
		if sum != tr.Count(id) {
			t.Fatalf("node %d: children sum %d != %d", id, sum, tr.Count(id))
		}
	})
}

func TestMoveWithinLeafIsFree(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 100, Y: 100}, {X: 101, Y: 101}}
	tr := mustBuild(t, pts, 256, Options{MinCountToSplit: 2})
	leaf := tr.LeafOf(0)
	r := tr.Rect(leaf)
	inside := geo.Point{X: r.MinX, Y: r.MinY}
	if err := tr.Move(0, inside); err != nil {
		t.Fatal(err)
	}
	if d := tr.TakeDirty(); len(d) != 0 {
		t.Fatalf("move within leaf marked %d nodes dirty", len(d))
	}
	if tr.Point(0) != inside {
		t.Fatal("location not updated")
	}
}

func TestMoveAcrossTreeKeepsCanonicalShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const side = 512
	pts := randPoints(rng, 400, side)
	tr := mustBuild(t, pts, side, Options{MinCountToSplit: 10})
	// Perform many random moves and compare against fresh builds.
	for step := 0; step < 30; step++ {
		i := int32(rng.Intn(len(pts)))
		to := geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
		if err := tr.Move(i, to); err != nil {
			t.Fatal(err)
		}
		pts[i] = to
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after moves: %v", err)
	}
	fresh := mustBuild(t, pts, side, Options{MinCountToSplit: 10})
	if !sameShape(tr, fresh, tr.Root(), fresh.Root()) {
		t.Fatal("mutated tree shape differs from fresh build")
	}
}

// sameShape compares two trees node by node: same rects, counts, structure.
func sameShape(a, b *Tree, ai, bi NodeID) bool {
	if a.Rect(ai) != b.Rect(bi) || a.Count(ai) != b.Count(bi) || a.IsLeaf(ai) != b.IsLeaf(bi) {
		return false
	}
	ac, bc := a.Children(ai), b.Children(bi)
	if len(ac) != len(bc) {
		return false
	}
	for j := range ac {
		if !sameShape(a, b, ac[j], bc[j]) {
			return false
		}
	}
	return true
}

func TestMoveDirtySetCoversChangedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const side = 512
	pts := randPoints(rng, 300, side)
	tr := mustBuild(t, pts, side, Options{MinCountToSplit: 8})
	tr.TakeDirty()

	// Snapshot counts per rect before the move.
	before := make(map[geo.Rect]int)
	tr.PostOrder(func(id NodeID) { before[tr.Rect(id)] = tr.Count(id) })

	i := int32(rng.Intn(len(pts)))
	to := geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
	if err := tr.Move(i, to); err != nil {
		t.Fatal(err)
	}
	dirty := make(map[geo.Rect]bool)
	for _, id := range tr.TakeDirty() {
		dirty[tr.Rect(id)] = true
	}
	tr.PostOrder(func(id NodeID) {
		r := tr.Rect(id)
		if prev, ok := before[r]; ok && prev != tr.Count(id) && !dirty[r] {
			t.Errorf("node %v count changed %d->%d but not dirty", r, prev, tr.Count(id))
		}
	})
}

func TestMoveSplitAndCollapse(t *testing.T) {
	// Start with 3 points in the west, threshold 4; moving a 4th point in
	// must split, moving it back must collapse.
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 9}, {X: 3, Y: 20}, {X: 60, Y: 60}}
	tr := mustBuild(t, pts, 64, Options{MinCountToSplit: 4})
	if !tr.IsLeaf(tr.Root()) {
		// Root has 4 points: it must be split already.
		t.Log("root split at build as expected")
	}
	if err := tr.Move(3, geo.Point{X: 4, Y: 30}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(3, geo.Point{X: 60, Y: 60}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	fresh := mustBuild(t, pts, 64, Options{MinCountToSplit: 4})
	if !sameShape(tr, fresh, tr.Root(), fresh.Root()) {
		t.Fatal("shape after round-trip move differs from fresh build")
	}
}

func TestMoveOutOfBoundsRejected(t *testing.T) {
	tr := mustBuild(t, []geo.Point{{X: 1, Y: 1}}, 8, Options{})
	if err := tr.Move(0, geo.Point{X: 8, Y: 8}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := mustBuild(t, randPoints(rng, 1000, 1024), 1024, Options{MinCountToSplit: 50})
	s := tr.Stats()
	if s.TotalPoints != 1000 {
		t.Errorf("TotalPoints = %d", s.TotalPoints)
	}
	if s.Leaves == 0 || s.Nodes < s.Leaves {
		t.Errorf("bad stats %+v", s)
	}
	if s.MaxLeafCount >= 50 {
		t.Errorf("leaf with %d >= k points survived", s.MaxLeafCount)
	}
	if s.Nodes != tr.NumNodes() {
		t.Errorf("Stats.Nodes %d != NumNodes %d", s.Nodes, tr.NumNodes())
	}
}

// Randomized stress: long random move sequences keep the tree valid and
// canonical for both kinds.
func TestMoveStress(t *testing.T) {
	for _, kind := range []Kind{Binary, Quad} {
		rng := rand.New(rand.NewSource(int64(10 + kind)))
		const side = 256
		pts := randPoints(rng, 150, side)
		opt := Options{Kind: kind, MinCountToSplit: 5}
		tr := mustBuild(t, pts, side, opt)
		for step := 0; step < 200; step++ {
			i := int32(rng.Intn(len(pts)))
			to := geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
			if err := tr.Move(i, to); err != nil {
				t.Fatal(err)
			}
			pts[i] = to
			if step%50 == 49 {
				if err := tr.Validate(); err != nil {
					t.Fatalf("%v after %d moves: %v", kind, step+1, err)
				}
			}
		}
		fresh := mustBuild(t, pts, side, opt)
		if !sameShape(tr, fresh, tr.Root(), fresh.Root()) {
			t.Fatalf("%v: stress-mutated tree diverged from fresh build", kind)
		}
	}
}
