// Package tree implements the cloaking trees of the paper: the quad tree of
// Gruteser–Grunwald [16] and the binary (semi-quadrant) tree of Section V.
//
// A square map is split recursively: the quad tree splits each square into
// its four quadrants; the binary tree splits a square vertically into two
// semi-quadrants and each semi-quadrant horizontally into two squares, so
// each quad level becomes two binary levels.
//
// Trees are materialized lazily, as in the paper: a node is split only if
// the locations it contains could possibly be cloaked strictly below it.
// Since cloaking at a node n requires at least k locations inside n
// (k-summation, Definition 9), a node with d(m) < k can never host any
// cloaking in its subtree, so "split iff d(m) >= k (and depth allows)" is a
// lossless materialization rule: the optimum over the lazy tree equals the
// optimum over the fully materialized tree of the same depth.
//
// The tree supports point movement (Move) with canonical re-splitting and
// collapsing, so that a mutated tree is identical to a tree freshly built
// from the new snapshot — structurally AND in leaf point order (ascending
// point index). The ordering half of that guarantee is what makes policy
// extraction deterministic: Extract picks "which points cloak here" by
// leaf order (the choice is immaterial by Lemma 1), so canonical order is
// what lets incremental maintenance reproduce a from-scratch rebuild
// byte-for-byte. Mutations record the set of nodes whose occupancy
// changed; the incremental maintenance of the optimum configuration
// matrix (Section IV) recomputes only those rows.
package tree

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"policyanon/internal/geo"
	"policyanon/internal/obs"
)

// Kind selects the splitting discipline.
type Kind int

const (
	// Binary is the semi-quadrant tree of Section V (two children).
	Binary Kind = iota
	// Quad is the classical quad tree (four children).
	Quad
)

// MaxChildren is the largest branching factor any Kind produces (Quad).
const MaxChildren = 4

// String names the tree kind.
func (k Kind) String() string {
	switch k {
	case Binary:
		return "binary"
	case Quad:
		return "quad"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeID identifies a node within a Tree. The root is always node 0.
type NodeID = int32

// None is the absent-node sentinel.
const None NodeID = -1

// Options configures tree construction.
type Options struct {
	// Kind selects quad or binary splitting. Default Binary.
	Kind Kind
	// MinCountToSplit is the occupancy threshold for materializing
	// children; with the core algorithm this should be the anonymity
	// parameter k. It must be at least 1. Default 1 means a fully eager
	// tree (used by the ablation benchmarks).
	MinCountToSplit int
	// MaxDepth bounds the node height (root has height 0). A value of 0
	// selects the default of 40, deep enough that splitting always stops
	// via MinCountToSplit or via the 1-meter minimum cell side first.
	MaxDepth int
}

const defaultMaxDepth = 40

type node struct {
	rect     geo.Rect
	parent   NodeID
	children [4]NodeID
	nchild   int8
	height   int32
	count    int32
	pts      []int32 // point indices; leaves only
}

// Tree is a lazily materialized cloaking tree over one location snapshot.
type Tree struct {
	kind     Kind
	minSplit int
	maxDepth int
	bounds   geo.Rect
	nodes    []node
	free     []NodeID
	loc      []geo.Point // current location of each point index
	leafOf   []NodeID    // point index -> containing leaf
	dirty    map[NodeID]struct{}
}

// ErrOutOfBounds is returned when a point does not lie inside the map.
var ErrOutOfBounds = errors.New("tree: point outside map bounds")

// BuildContext is Build with tracing: when ctx carries an obs.Tracer the
// materialization is recorded as a "tree.build" span annotated with the
// point count, tree kind, and the number of nodes materialized.
func BuildContext(ctx context.Context, points []geo.Point, bounds geo.Rect, opt Options) (*Tree, error) {
	_, sp := obs.Start(ctx, "tree.build")
	t, err := Build(points, bounds, opt)
	if sp != nil {
		sp.SetInt("points", int64(len(points)))
		sp.SetAttr("kind", opt.Kind.String())
		if err == nil {
			sp.SetInt("nodes", int64(t.NumNodes()))
		}
		sp.End()
	}
	return t, err
}

// Build constructs the tree over the given points. bounds must be a square
// containing every point (half-open).
func Build(points []geo.Point, bounds geo.Rect, opt Options) (*Tree, error) {
	if bounds.Width() != bounds.Height() {
		return nil, fmt.Errorf("tree: map bounds %v are not square", bounds)
	}
	if bounds.Empty() {
		return nil, fmt.Errorf("tree: empty map bounds %v", bounds)
	}
	if opt.MinCountToSplit < 1 {
		opt.MinCountToSplit = 1
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = defaultMaxDepth
	}
	for i, p := range points {
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("%w: point %d at %v, bounds %v", ErrOutOfBounds, i, p, bounds)
		}
	}
	t := &Tree{
		kind:     opt.Kind,
		minSplit: opt.MinCountToSplit,
		maxDepth: opt.MaxDepth,
		bounds:   bounds,
		loc:      append([]geo.Point(nil), points...),
		leafOf:   make([]NodeID, len(points)),
		dirty:    make(map[NodeID]struct{}),
	}
	idx := make([]int32, len(points))
	for i := range idx {
		idx[i] = int32(i)
	}
	root := t.alloc(bounds, None, 0)
	t.bulk(root, idx)
	return t, nil
}

func (t *Tree) alloc(r geo.Rect, parent NodeID, height int32) NodeID {
	n := node{rect: r, parent: parent, height: height}
	for i := range n.children {
		n.children[i] = None
	}
	if len(t.free) > 0 {
		id := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.nodes[id] = n
		return id
	}
	t.nodes = append(t.nodes, n)
	return NodeID(len(t.nodes) - 1)
}

// childRects returns the child rectangles of r under the tree's kind, and
// whether r is splittable at all.
func (t *Tree) childRects(r geo.Rect) ([]geo.Rect, bool) {
	if t.kind == Quad {
		if r.Width() < 2 || r.Height() < 2 {
			return nil, false
		}
		q := r.Quadrants()
		return q[:], true
	}
	// Binary: split the longer dimension; a square splits vertically into
	// semi-quadrants, a semi-quadrant splits horizontally into squares.
	if r.Height() > r.Width() {
		if r.Height() < 2 {
			return nil, false
		}
		return []geo.Rect{r.SouthHalf(), r.NorthHalf()}, true
	}
	if r.Width() < 2 {
		return nil, false
	}
	return []geo.Rect{r.WestHalf(), r.EastHalf()}, true
}

// bulk recursively builds the subtree at id over the given point indices.
func (t *Tree) bulk(id NodeID, idx []int32) {
	t.nodes[id].count = int32(len(idx))
	if !t.shouldSplit(id) {
		t.nodes[id].pts = append(t.nodes[id].pts[:0], idx...)
		for _, p := range idx {
			t.leafOf[p] = id
		}
		return
	}
	rects, _ := t.childRects(t.nodes[id].rect)
	groups := make([][]int32, len(rects))
	for _, p := range idx {
		placed := false
		for ci, cr := range rects {
			if cr.Contains(t.loc[p]) {
				groups[ci] = append(groups[ci], p)
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen: children partition the parent.
			panic(fmt.Sprintf("tree: point %v not in any child of %v", t.loc[p], t.nodes[id].rect))
		}
	}
	t.nodes[id].nchild = int8(len(rects))
	for ci, cr := range rects {
		cid := t.alloc(cr, id, t.nodes[id].height+1)
		t.nodes[id].children[ci] = cid
		t.bulk(cid, groups[ci])
	}
}

// shouldSplit implements the canonical materialization rule.
func (t *Tree) shouldSplit(id NodeID) bool {
	n := &t.nodes[id]
	if int(n.count) < t.minSplit || int(n.height) >= t.maxDepth {
		return false
	}
	_, ok := t.childRects(n.rect)
	return ok
}

// Kind returns the splitting discipline of the tree.
func (t *Tree) Kind() Kind { return t.kind }

// Bounds returns the map rectangle covered by the root.
func (t *Tree) Bounds() geo.Rect { return t.bounds }

// Root returns the root node id (always 0).
func (t *Tree) Root() NodeID { return 0 }

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return len(t.loc) }

// NumNodes returns the number of live nodes (|B| resp. |T| in the paper).
func (t *Tree) NumNodes() int { return len(t.nodes) - len(t.free) }

// NodeCap returns an exclusive upper bound on live NodeIDs: every live id
// is in [0, NodeCap). Freed slots count toward the bound, so dense arrays
// indexed by NodeID must be sized with NodeCap, not NumNodes.
func (t *Tree) NodeCap() int { return len(t.nodes) }

// Rect returns the (semi-)quadrant of node id.
func (t *Tree) Rect(id NodeID) geo.Rect { return t.nodes[id].rect }

// Area returns the area of node id's region.
func (t *Tree) Area(id NodeID) int64 { return t.nodes[id].rect.Area() }

// Count returns d(m): the number of locations inside node id.
func (t *Tree) Count(id NodeID) int { return int(t.nodes[id].count) }

// Height returns the height of node id, with the root at 0 as in Lemma 5.
func (t *Tree) Height(id NodeID) int { return int(t.nodes[id].height) }

// Parent returns the parent of id, or None for the root.
func (t *Tree) Parent(id NodeID) NodeID { return t.nodes[id].parent }

// IsLeaf reports whether id has no materialized children.
func (t *Tree) IsLeaf(id NodeID) bool { return t.nodes[id].nchild == 0 }

// Children returns the materialized children of id (empty for leaves).
func (t *Tree) Children(id NodeID) []NodeID {
	n := &t.nodes[id]
	return n.children[:n.nchild]
}

// LeafPoints returns the point indices stored at a leaf. Callers must not
// mutate the returned slice. It panics if id is not a leaf.
func (t *Tree) LeafPoints(id NodeID) []int32 {
	if !t.IsLeaf(id) {
		panic(fmt.Sprintf("tree: LeafPoints on internal node %d", id))
	}
	return t.nodes[id].pts
}

// Point returns the current location of point index i.
func (t *Tree) Point(i int32) geo.Point { return t.loc[i] }

// LeafOf returns the leaf currently containing point index i.
func (t *Tree) LeafOf(i int32) NodeID { return t.leafOf[i] }

// Locate descends from the root to the leaf whose region contains p.
func (t *Tree) Locate(p geo.Point) (NodeID, error) {
	if !t.bounds.Contains(p) {
		return None, fmt.Errorf("%w: %v", ErrOutOfBounds, p)
	}
	id := t.Root()
	for !t.IsLeaf(id) {
		next := None
		for _, c := range t.Children(id) {
			if t.nodes[c].rect.Contains(p) {
				next = c
				break
			}
		}
		if next == None {
			panic(fmt.Sprintf("tree: %v not in any child of %v", p, t.nodes[id].rect))
		}
		id = next
	}
	return id, nil
}

// PostOrder visits all live nodes children-before-parents. This is the
// traversal order of Algorithm 1's bottom-up pass.
func (t *Tree) PostOrder(visit func(NodeID)) {
	var rec func(NodeID)
	rec = func(id NodeID) {
		for _, c := range t.Children(id) {
			rec(c)
		}
		visit(id)
	}
	rec(t.Root())
}

// Move relocates point index i to a new position, restructuring the tree so
// that it stays canonical (identical to a fresh Build over the updated
// snapshot). Nodes whose occupancy or structure changed are recorded and
// can be collected with TakeDirty.
func (t *Tree) Move(i int32, to geo.Point) error {
	if !t.bounds.Contains(to) {
		return fmt.Errorf("%w: %v", ErrOutOfBounds, to)
	}
	from := t.loc[i]
	if from == to {
		return nil
	}
	leaf := t.leafOf[i]
	t.loc[i] = to
	if t.nodes[leaf].rect.Contains(to) {
		// Same leaf: no occupancy change anywhere; the configuration
		// matrix is unaffected (it depends only on counts, Lemma 1).
		return nil
	}
	// Remove from the old leaf, then walk up decrementing counts of the
	// proper ancestors that lost the point, stopping at the lowest
	// ancestor that still contains the new location (whose count is
	// unchanged: the point stays inside it).
	t.removeFromLeaf(leaf, i)
	anc := t.nodes[leaf].parent
	for !t.nodes[anc].rect.Contains(to) {
		t.nodes[anc].count--
		t.markDirty(anc)
		anc = t.nodes[anc].parent
	}
	// Descend from anc incrementing counts strictly below it, and insert
	// the point at the destination leaf.
	id := anc
	for !t.IsLeaf(id) {
		next := None
		for _, c := range t.Children(id) {
			if t.nodes[c].rect.Contains(to) {
				next = c
				break
			}
		}
		t.nodes[next].count++
		t.markDirty(next)
		id = next
	}
	t.insertSorted(id, i)
	t.leafOf[i] = id
	// Restore canonical structure on both paths.
	t.resplit(t.leafOf[i])
	t.collapseUp(leaf)
	return nil
}

// removeFromLeaf deletes point i from leaf's point list (preserving the
// canonical ascending order) and decrements its count.
func (t *Tree) removeFromLeaf(leaf NodeID, i int32) {
	n := &t.nodes[leaf]
	j := sort.Search(len(n.pts), func(j int) bool { return n.pts[j] >= i })
	if j == len(n.pts) || n.pts[j] != i {
		panic(fmt.Sprintf("tree: point %d not found in leaf %d", i, leaf))
	}
	n.pts = append(n.pts[:j], n.pts[j+1:]...)
	n.count--
	t.markDirty(leaf)
}

// insertSorted adds point i to leaf id keeping pts in ascending order.
func (t *Tree) insertSorted(id NodeID, i int32) {
	n := &t.nodes[id]
	j := sort.Search(len(n.pts), func(j int) bool { return n.pts[j] >= i })
	n.pts = append(n.pts, 0)
	copy(n.pts[j+1:], n.pts[j:])
	n.pts[j] = i
}

// resplit splits a leaf (recursively) if it now satisfies the
// materialization rule.
func (t *Tree) resplit(id NodeID) {
	if !t.IsLeaf(id) || !t.shouldSplit(id) {
		return
	}
	pts := t.nodes[id].pts
	t.nodes[id].pts = nil
	t.bulk(id, pts)
	t.markSubtreeDirty(id)
}

// collapseUp walks from id towards the root collapsing internal nodes that
// no longer satisfy the materialization rule.
func (t *Tree) collapseUp(id NodeID) {
	for id != None {
		if !t.IsLeaf(id) && !t.shouldSplit(id) {
			var pts []int32
			t.gather(id, &pts)
			// Restore the canonical ascending order: children are sorted
			// internally but not relative to each other. Collapsed nodes
			// hold fewer than minSplit points, so this stays cheap.
			sort.Slice(pts, func(a, b int) bool { return pts[a] < pts[b] })
			t.freeChildren(id)
			n := &t.nodes[id]
			n.nchild = 0
			n.pts = pts
			for _, p := range pts {
				t.leafOf[p] = id
			}
			t.markDirty(id)
		}
		id = t.nodes[id].parent
	}
}

func (t *Tree) gather(id NodeID, out *[]int32) {
	if t.IsLeaf(id) {
		*out = append(*out, t.nodes[id].pts...)
		return
	}
	for _, c := range t.Children(id) {
		t.gather(c, out)
	}
}

func (t *Tree) freeChildren(id NodeID) {
	for _, c := range t.Children(id) {
		t.freeChildren(c)
		t.nodes[c] = node{parent: None}
		t.free = append(t.free, c)
		delete(t.dirty, c)
	}
}

func (t *Tree) markDirty(id NodeID) { t.dirty[id] = struct{}{} }

func (t *Tree) markSubtreeDirty(id NodeID) {
	t.markDirty(id)
	for _, c := range t.Children(id) {
		t.markSubtreeDirty(c)
	}
}

// TakeDirty returns the set of live nodes affected by Moves since the last
// call and resets the set. Callers recomputing a bottom-up dynamic program
// must also refresh the ancestors of the returned nodes.
func (t *Tree) TakeDirty() []NodeID {
	out := make([]NodeID, 0, len(t.dirty))
	for id := range t.dirty {
		out = append(out, id)
	}
	t.dirty = make(map[NodeID]struct{})
	return out
}

// Stats summarizes tree shape for the Figure 3 experiment.
type Stats struct {
	Nodes        int
	Leaves       int
	MaxHeight    int
	MaxLeafCount int
	TotalPoints  int
}

// Stats computes shape statistics over the live nodes.
func (t *Tree) Stats() Stats {
	var s Stats
	t.PostOrder(func(id NodeID) {
		s.Nodes++
		if h := t.Height(id); h > s.MaxHeight {
			s.MaxHeight = h
		}
		if t.IsLeaf(id) {
			s.Leaves++
			if c := t.Count(id); c > s.MaxLeafCount {
				s.MaxLeafCount = c
			}
		}
	})
	s.TotalPoints = t.Len()
	return s
}

// Validate checks the structural invariants of the tree; it is used by
// tests and returns a descriptive error on the first violation.
func (t *Tree) Validate() error {
	seen := make(map[int32]NodeID)
	var err error
	var rec func(id NodeID) int32
	rec = func(id NodeID) int32 {
		n := &t.nodes[id]
		if t.IsLeaf(id) {
			if int32(len(n.pts)) != n.count {
				err = fmt.Errorf("leaf %d count %d != len(pts) %d", id, n.count, len(n.pts))
			}
			if !sort.SliceIsSorted(n.pts, func(a, b int) bool { return n.pts[a] < n.pts[b] }) {
				err = fmt.Errorf("leaf %d points not in canonical ascending order", id)
			}
			for _, p := range n.pts {
				if !n.rect.Contains(t.loc[p]) {
					err = fmt.Errorf("leaf %d does not contain its point %d at %v", id, p, t.loc[p])
				}
				if t.leafOf[p] != id {
					err = fmt.Errorf("leafOf[%d] = %d, want %d", p, t.leafOf[p], id)
				}
				if prev, dup := seen[p]; dup {
					err = fmt.Errorf("point %d in leaves %d and %d", p, prev, id)
				}
				seen[p] = id
			}
			if t.shouldSplit(id) {
				err = fmt.Errorf("leaf %d should be split (count %d)", id, n.count)
			}
			return n.count
		}
		if int(n.count) < t.minSplit {
			err = fmt.Errorf("internal node %d below split threshold (count %d)", id, n.count)
		}
		var sum int32
		var childArea int64
		for _, c := range t.Children(id) {
			if t.nodes[c].parent != id {
				err = fmt.Errorf("child %d of %d has parent %d", c, id, t.nodes[c].parent)
			}
			if t.nodes[c].height != n.height+1 {
				err = fmt.Errorf("child %d height %d, parent height %d", c, t.nodes[c].height, n.height)
			}
			if !n.rect.ContainsRect(t.nodes[c].rect) {
				err = fmt.Errorf("child %d rect %v escapes parent %v", c, t.nodes[c].rect, n.rect)
			}
			childArea += t.nodes[c].rect.Area()
			sum += rec(c)
		}
		if childArea != n.rect.Area() {
			err = fmt.Errorf("node %d children areas %d != %d", id, childArea, n.rect.Area())
		}
		if sum != n.count {
			err = fmt.Errorf("node %d count %d != children sum %d", id, n.count, sum)
		}
		return n.count
	}
	total := rec(t.Root())
	if err != nil {
		return err
	}
	if int(total) != len(t.loc) {
		return fmt.Errorf("root count %d != %d points", total, len(t.loc))
	}
	return nil
}
