package engine_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
	"policyanon/internal/obs"
	"policyanon/internal/workload"
)

// smallDB is a deterministic ~300-user snapshot for middleware tests.
func smallDB(t *testing.T) (*location.DB, geo.Rect) {
	t.Helper()
	const side = 1 << 10
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 60, UsersPerIntersection: 5, SpreadSigma: 30,
	}, 7)
	return db, geo.NewRect(0, 0, side, side)
}

func TestWrapOrderAndName(t *testing.T) {
	var order []string
	mark := func(label string) engine.Middleware {
		return func(next engine.Engine) engine.Engine {
			return engine.New(next.Name(), func(ctx context.Context, db *location.DB, bounds geo.Rect, p engine.Params) (*lbs.Assignment, error) {
				order = append(order, label)
				return next.Anonymize(ctx, db, bounds, p)
			})
		}
	}
	base := engine.New("base", func(ctx context.Context, db *location.DB, bounds geo.Rect, p engine.Params) (*lbs.Assignment, error) {
		order = append(order, "engine")
		return nil, errors.New("stop")
	})
	wrapped := engine.Wrap(base, mark("outer"), mark("inner"))
	if wrapped.Name() != "base" {
		t.Errorf("wrapping changed the name to %q", wrapped.Name())
	}
	wrapped.Anonymize(context.Background(), location.New(0), geo.Rect{}, engine.Params{K: 1})
	want := []string{"outer", "inner", "engine"}
	if len(order) != len(want) {
		t.Fatalf("call order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("call order %v, want %v", order, want)
		}
	}
}

func TestWithTracingEmitsEngineSpan(t *testing.T) {
	db, bounds := smallDB(t)
	e, err := engine.Get("casper")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := engine.Wrap(e, engine.WithTracing()).Anonymize(ctx, db, bounds, engine.Params{K: 10}); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, sp := range tr.Spans() {
		if sp.Name != "engine.casper" {
			continue
		}
		found = true
		attrs := make(map[string]string)
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["users"] == "" || attrs["k"] == "" || attrs["cost"] == "" {
			t.Errorf("engine.casper span attrs %v missing users/k/cost", attrs)
		}
	}
	if !found {
		t.Fatalf("no engine.casper span recorded (spans: %v)", tr.PhaseSummary())
	}
}

func TestWithMetricsRecordsCallsAndErrors(t *testing.T) {
	db, bounds := smallDB(t)
	reg := metrics.NewRegistry()
	e, err := engine.Get("puq")
	if err != nil {
		t.Fatal(err)
	}
	w := engine.Wrap(e, engine.WithMetrics(reg))
	if _, err := w.Anonymize(context.Background(), db, bounds, engine.Params{K: 10}); err != nil {
		t.Fatal(err)
	}
	// k > |D| fails inside the engine and must count as an error.
	if _, err := w.Anonymize(context.Background(), db, bounds, engine.Params{K: db.Len() + 1}); err == nil {
		t.Fatal("oversized k accepted")
	}
	if got := reg.Counter("engine_calls:puq").Value(); got != 2 {
		t.Errorf("engine_calls:puq = %d, want 2", got)
	}
	if got := reg.Counter("engine_errors:puq").Value(); got != 1 {
		t.Errorf("engine_errors:puq = %d, want 1", got)
	}
	if got := reg.ValueHistogram("engine_cost:puq").Summary().Count; got != 1 {
		t.Errorf("engine_cost:puq observations = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Values["engine_cost:puq"]; !ok {
		t.Error("snapshot omits the engine_cost value histogram")
	}
}

// WithVerify must pass k-inside engines the registry flags PolicyAware=false
// (they breach policy-aware attackers by construction — Example 1), but hold
// the same algorithm to the full policy-aware standard when it is not
// registered.
func TestWithVerifyHonoursCapabilityFlags(t *testing.T) {
	db := location.New(0)
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}} {
		if err := db.Add(u.id, geo.Point{X: u.x, Y: u.y}); err != nil {
			t.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, 8, 8)
	casper, err := engine.Get("casper")
	if err != nil {
		t.Fatal(err)
	}
	// Registered k-inside engine: verification skips the policy-aware check.
	if _, err := engine.Wrap(casper, engine.WithVerify(engine.Default)).Anonymize(context.Background(), db, bounds, engine.Params{K: 2}); err != nil {
		t.Errorf("casper rejected despite PolicyAware=false flag: %v", err)
	}
	// The same algorithm under an unregistered name is held to the full
	// standard and must surface the Example 1 breach as a BreachError.
	anon := engine.New("anon-kinside", casper.Anonymize)
	_, err = engine.Wrap(anon, engine.WithVerify(engine.Default)).Anonymize(context.Background(), db, bounds, engine.Params{K: 2})
	var be *engine.BreachError
	if !errors.As(err, &be) {
		t.Fatalf("unregistered k-inside engine passed verification (err = %v)", err)
	}
	if be.Engine != "anon-kinside" || be.Report == nil || be.Report.PolicyAware {
		t.Errorf("breach error %+v does not pin the policy-aware failure", be)
	}
	// A policy-aware engine passes the full standard.
	def, err := engine.Get(engine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Wrap(def, engine.WithVerify(engine.Default)).Anonymize(context.Background(), db, bounds, engine.Params{K: 2}); err != nil {
		t.Errorf("%s failed verification: %v", engine.DefaultName, err)
	}
}

// example1Fixture is the Example 1 snapshot: a k-inside policy over it
// breaches policy-aware k=2 anonymity by construction.
func example1Fixture(t *testing.T) (*location.DB, geo.Rect) {
	t.Helper()
	db := location.New(0)
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}} {
		if err := db.Add(u.id, geo.Point{X: u.x, Y: u.y}); err != nil {
			t.Fatal(err)
		}
	}
	return db, geo.NewRect(0, 0, 8, 8)
}

// WithVerifySampled must verify exactly the sampled calls: at rate 1/2
// over a breaching engine, every other call fails.
func TestWithVerifySampledSkipsUnsampledCalls(t *testing.T) {
	db, bounds := example1Fixture(t)
	casper, err := engine.Get("casper")
	if err != nil {
		t.Fatal(err)
	}
	// Unregistered name: held to the full policy-aware standard, so every
	// VERIFIED call must fail on this snapshot.
	anon := engine.New("anon-kinside", casper.Anonymize)
	w := engine.Wrap(anon, engine.WithVerifySampled(engine.Default, 0.5))
	var failures int
	for i := 0; i < 6; i++ {
		if _, err := w.Anonymize(context.Background(), db, bounds, engine.Params{K: 2}); err != nil {
			var be *engine.BreachError
			if !errors.As(err, &be) {
				t.Fatalf("call %d: unexpected error %v", i, err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("rate-0.5 verification failed %d/6 calls, want 3", failures)
	}
	// Rate 0 disables verification entirely.
	w = engine.Wrap(anon, engine.WithVerifySampled(engine.Default, 0))
	if _, err := w.Anonymize(context.Background(), db, bounds, engine.Params{K: 2}); err != nil {
		t.Fatalf("rate-0 verification still ran: %v", err)
	}
}

// WithAudit must observe the Example 1 breach — counter, rolling report,
// span attribute — without withholding the policy.
func TestWithAuditObservesWithoutEnforcing(t *testing.T) {
	db, bounds := example1Fixture(t)
	casper, err := engine.Get("casper")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	aud := audit.New(reg, audit.Options{})
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	w := engine.Wrap(casper, engine.WithTracing(), engine.WithAudit(aud, 1))
	pol, err := w.Anonymize(ctx, db, bounds, engine.Params{K: 2})
	if err != nil {
		t.Fatalf("WithAudit withheld the policy: %v", err)
	}
	if pol == nil || pol.Len() != db.Len() {
		t.Fatal("policy lost in the audit middleware")
	}
	if got := reg.Counter("anon_breach:casper/policy-aware").Value(); got < 1 {
		t.Fatalf("policy-aware breach not counted (counter = %d)", got)
	}
	rep := aud.Report()
	if rep.PolicyAudits != 1 || rep.Aware.Min >= 2 {
		t.Fatalf("audit report %+v does not show the Example 1 breach", rep)
	}
	// The breach attributes land on the enclosing engine span; the audit
	// cost is timed as its own engine.audit span.
	var engineAttrs map[string]string
	var auditSpan bool
	for _, sp := range tr.Spans() {
		if sp.Name == "engine.audit" {
			auditSpan = true
		}
		if sp.Name == "engine.casper" {
			engineAttrs = make(map[string]string)
			for _, a := range sp.Attrs {
				engineAttrs[a.Key] = a.Value
			}
		}
	}
	if !auditSpan {
		t.Error("no engine.audit span recorded")
	}
	if engineAttrs["audit.breach"] != "policy-aware" || engineAttrs["audit.achievedK"] != "1" {
		t.Errorf("engine span attrs %v missing breach annotation", engineAttrs)
	}
}

func TestWithCacheMemoizesBySnapshotVersion(t *testing.T) {
	db, bounds := smallDB(t)
	inner, err := engine.Get(engine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	counted := engine.New(inner.Name(), func(ctx context.Context, d *location.DB, b geo.Rect, p engine.Params) (*lbs.Assignment, error) {
		calls++
		return inner.Anonymize(ctx, d, b, p)
	})
	cached := engine.Wrap(counted, engine.WithCache())
	ctx := context.Background()
	p := engine.Params{K: 10}
	a1, err := cached.Anonymize(ctx, db, bounds, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cached.Anonymize(ctx, db, bounds, p)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("second identical call ran the engine (calls = %d)", calls)
	}
	if a1 != a2 {
		t.Error("cache hit returned a different assignment")
	}
	// Different parameters miss.
	if _, err := cached.Anonymize(ctx, db, bounds, engine.Params{K: 12}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("k=12 call did not run the engine (calls = %d)", calls)
	}
	// A mutation bumps the snapshot version and invalidates the memo.
	db.MoveAt(0, geo.Point{X: bounds.MaxX - 1, Y: bounds.MaxY - 1})
	if _, err := cached.Anonymize(ctx, db, bounds, p); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("post-mutation call served stale cache (calls = %d)", calls)
	}
}

// TestWithCacheCoalescesConcurrentMisses: N concurrent identical
// Anonymize calls on a cold cache run the engine once; everyone shares
// the leader's assignment. Run with -race.
func TestWithCacheCoalescesConcurrentMisses(t *testing.T) {
	db, bounds := smallDB(t)
	inner, err := engine.Get(engine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var mu sync.Mutex
	var calls int
	blocked := engine.New(inner.Name(), func(ctx context.Context, d *location.DB, b geo.Rect, p engine.Params) (*lbs.Assignment, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-gate
		return inner.Anonymize(ctx, d, b, p)
	})
	cached := engine.Wrap(blocked, engine.WithCache())
	const n = 8
	var wg sync.WaitGroup
	results := make([]*lbs.Assignment, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cached.Anonymize(context.Background(), db, bounds, engine.Params{K: 10})
		}(i)
	}
	// Wait until the leader is inside the engine, give the others a
	// moment to pile onto its flight, then release.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := calls
		mu.Unlock()
		if c == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never entered the engine")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("%d concurrent identical calls ran the engine %d times, want 1", n, calls)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different assignment than the leader", i)
		}
	}
}

// TestWithCacheErrorsNotCached: a failed engine run propagates its error
// to coalesced waiters and leaves no memo entry — the next call retries.
func TestWithCacheErrorsNotCached(t *testing.T) {
	db, bounds := smallDB(t)
	wantErr := errors.New("engine exploded")
	var calls int
	failing := engine.New("failing", func(ctx context.Context, d *location.DB, b geo.Rect, p engine.Params) (*lbs.Assignment, error) {
		calls++
		if calls == 1 {
			return nil, wantErr
		}
		inner, err := engine.Get(engine.DefaultName)
		if err != nil {
			return nil, err
		}
		return inner.Anonymize(ctx, d, b, p)
	})
	cached := engine.Wrap(failing, engine.WithCache())
	if _, err := cached.Anonymize(context.Background(), db, bounds, engine.Params{K: 10}); !errors.Is(err, wantErr) {
		t.Fatalf("first call error = %v, want %v", err, wantErr)
	}
	if _, err := cached.Anonymize(context.Background(), db, bounds, engine.Params{K: 10}); err != nil {
		t.Fatalf("retry after error: %v", err)
	}
	if calls != 2 {
		t.Fatalf("engine ran %d times, want 2 (error not cached)", calls)
	}
}
