package engine_test

import (
	"context"
	"testing"

	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	_ "policyanon/internal/parallel" // register the "parallel" engine
	"policyanon/internal/workload"
)

// TestWorkersParity is the registry-level golden parity gate for the
// intra-tree worker pool: every engine advertising Info.Parallel must
// return byte-identical policies whether the DP runs sequentially
// (workers=1) or on the pool (workers=4). Run under -race in CI.
func TestWorkersParity(t *testing.T) {
	const side = 1 << 11
	const k = 12
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 80, UsersPerIntersection: 5, SpreadSigma: 40,
	}, 19)
	bounds := geo.NewRect(0, 0, side, side)
	ctx := context.Background()

	for _, info := range engine.Infos() {
		if !info.Parallel {
			continue
		}
		if info.Name == "bulkdp-naive" {
			continue // quadratic combine; covered at small scale below
		}
		t.Run(info.Name, func(t *testing.T) {
			e, err := engine.Get(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers string) *lbs.Assignment {
				a, err := e.Anonymize(ctx, db, bounds, engine.Params{
					K: k, Opts: map[string]string{"workers": workers},
				})
				if err != nil {
					t.Fatalf("workers=%s: %v", workers, err)
				}
				return a
			}
			seq, par := run("1"), run("4")
			if seq.Len() != par.Len() || seq.Cost() != par.Cost() {
				t.Fatalf("sequential (n=%d cost=%d) and parallel (n=%d cost=%d) disagree",
					seq.Len(), seq.Cost(), par.Len(), par.Cost())
			}
			for i := 0; i < seq.Len(); i++ {
				if seq.CloakAt(i) != par.CloakAt(i) {
					t.Fatalf("cloak %d differs: %v sequential, %v parallel", i, seq.CloakAt(i), par.CloakAt(i))
				}
			}
		})
	}
}

// TestWorkersParityNaive covers the ablation engine at a size its
// quadratic combine can afford.
func TestWorkersParityNaive(t *testing.T) {
	const side = 1 << 8
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 15, UsersPerIntersection: 4, SpreadSigma: 10,
	}, 23)
	bounds := geo.NewRect(0, 0, side, side)
	e, err := engine.Get("bulkdp-naive")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seq, err := e.Anonymize(ctx, db, bounds, engine.Params{K: 3, Opts: map[string]string{"workers": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Anonymize(ctx, db, bounds, engine.Params{K: 3, Opts: map[string]string{"workers": "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cost() != par.Cost() {
		t.Fatalf("costs differ: %d sequential, %d parallel", seq.Cost(), par.Cost())
	}
	for i := 0; i < seq.Len(); i++ {
		if seq.CloakAt(i) != par.CloakAt(i) {
			t.Fatalf("cloak %d differs: %v sequential, %v parallel", i, seq.CloakAt(i), par.CloakAt(i))
		}
	}
}

// TestWorkersOptRejected pins the parse error for malformed budgets.
func TestWorkersOptRejected(t *testing.T) {
	db := workload.Generate(workload.Config{
		MapSide: 1 << 8, Intersections: 10, UsersPerIntersection: 4, SpreadSigma: 10,
	}, 3)
	e, err := engine.Get(engine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Anonymize(context.Background(), db, geo.NewRect(0, 0, 1<<8, 1<<8),
		engine.Params{K: 3, Opts: map[string]string{"workers": "plenty"}})
	if err == nil {
		t.Fatal("expected error for workers=plenty")
	}
}

// TestParallelFlags pins which registrations honour the workers option.
func TestParallelFlags(t *testing.T) {
	want := map[string]bool{
		"bulkdp-binary": true, "bulkdp-quad": true, "bulkdp-naive": true,
		"multik": true, "parallel": true,
		"adaptive": false, "casper": false, "pub": false, "puq": false,
		"hilbert": false, "mbc": false,
	}
	for name, flag := range want {
		info, ok := engine.InfoOf(name)
		if !ok {
			t.Fatalf("engine %q not registered", name)
		}
		if info.Parallel != flag {
			t.Errorf("%s: Parallel=%v, want %v", name, info.Parallel, flag)
		}
	}
}
