package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
	"policyanon/internal/obs"
	"policyanon/internal/verify"
)

// Middleware decorates an Engine with a cross-cutting concern. The
// wrapped engine keeps the inner engine's name, so registry identity and
// span/metric keys survive arbitrary stacking.
type Middleware func(Engine) Engine

// Wrap applies middlewares around e with mws[0] outermost: the call order
// of Wrap(e, A, B) is A -> B -> e. The conventional serving stack is
// Wrap(e, WithTracing(), WithMetrics(reg), WithVerify(reg), WithCache()),
// so that cache hits are traced and metered but skip verification and the
// engine itself.
func Wrap(e Engine, mws ...Middleware) Engine {
	for i := len(mws) - 1; i >= 0; i-- {
		e = mws[i](e)
	}
	return e
}

// WithTracing records every Anonymize call as an "engine.<name>" span
// (the engine-layer extension of the span taxonomy in
// docs/OBSERVABILITY.md) carrying users, k, and — on success — the policy
// cost. Contexts without a tracer pay nothing, as everywhere in obs.
func WithTracing() Middleware {
	return func(next Engine) Engine {
		return New(next.Name(), func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
			ctx, sp := obs.Start(ctx, "engine."+next.Name())
			if sp != nil {
				sp.SetInt("users", int64(db.Len()))
				sp.SetInt("k", int64(p.EffectiveK()))
			}
			a, err := next.Anonymize(ctx, db, bounds, p)
			if sp != nil {
				if err != nil {
					sp.SetAttr("error", err.Error())
				} else {
					sp.SetInt("cost", a.Cost())
				}
				sp.End()
			}
			return a, err
		})
	}
}

// WithMetrics records per-engine serving metrics into reg:
//
//	engine_calls:<name>    counter of Anonymize invocations
//	engine_errors:<name>   counter of failed invocations
//	engine_latency:<name>  wall-time histogram
//	engine_cost:<name>     policy-cost histogram (summed cloak area, m^2)
func WithMetrics(reg *metrics.Registry) Middleware {
	return func(next Engine) Engine {
		name := next.Name()
		return New(name, func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
			reg.Counter("engine_calls:" + name).Inc()
			start := time.Now()
			a, err := next.Anonymize(ctx, db, bounds, p)
			reg.Histogram("engine_latency:" + name).Observe(time.Since(start))
			if err != nil {
				reg.Counter("engine_errors:" + name).Inc()
				return nil, err
			}
			reg.ValueHistogram("engine_cost:" + name).Observe(a.Cost())
			return a, nil
		})
	}
}

// BreachError reports a policy that failed post-hoc verification.
type BreachError struct {
	// Engine is the producing engine's name.
	Engine string
	// Report is the full first-principles verification outcome.
	Report *verify.Report
}

// Error summarizes the first problems.
func (e *BreachError) Error() string {
	probs := e.Report.Problems
	shown := probs
	if len(shown) > 3 {
		shown = shown[:3]
	}
	return fmt.Sprintf("engine %s: policy failed verification (%d problems): %s",
		e.Engine, len(probs), strings.Join(shown, "; "))
}

// WithVerify runs the full internal/verify.Policy audit on every
// assignment the engine produces and surfaces breaches as a *BreachError.
// The masking property and policy-unaware k-anonymity are enforced for
// every engine; policy-aware k-anonymity is enforced only for engines the
// registry flags PolicyAware (k-inside baselines breach it by
// construction — Example 1 — and registering that capability honestly is
// the point of the flag). Engines unknown to reg are held to the full
// policy-aware standard.
//
// WithVerify is enforcement: a failing policy is withheld from the
// caller, at the cost of a full Definition-6 verification (witness
// construction included) on every call. For observation without
// enforcement — rolling achieved-k metrics on a serving hot path — use
// WithAudit; to keep enforcement but pay for it on a fraction of calls,
// use WithVerifySampled.
func WithVerify(reg *Registry) Middleware {
	return WithVerifySampled(reg, 1)
}

// WithVerifySampled is WithVerify at a sampling rate: only ~rate of the
// calls are verified (deterministic 1-in-N selection, first call always
// verified), the rest pass through unexamined. Engines are deterministic
// in the snapshot, so sampled verification of a stream of snapshots
// trades detection latency for throughput; rate <= 0 disables
// verification entirely and rate >= 1 restores WithVerify semantics.
func WithVerifySampled(reg *Registry, rate float64) Middleware {
	return func(next Engine) Engine {
		name := next.Name()
		sampler := audit.NewSampler(rate)
		return New(name, func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
			a, err := next.Anonymize(ctx, db, bounds, p)
			if err != nil {
				return nil, err
			}
			if !sampler.Sample() {
				return a, nil
			}
			_, sp := obs.Start(ctx, "engine.verify")
			rep := verify.Policy(a, p.EffectiveK())
			sp.End()
			wantAware := true
			if reg != nil {
				if info, ok := reg.Info(name); ok {
					wantAware = info.PolicyAware
				}
			}
			if !rep.Masking || !rep.PolicyUnaware || (wantAware && !rep.PolicyAware) {
				return nil, &BreachError{Engine: name, Report: rep}
			}
			return a, nil
		})
	}
}

// WithAudit samples successful Anonymize results into the privacy
// observatory: ~rate of the calls (deterministic 1-in-N, first call
// always sampled) are audited in full via audit.Auditor.ObservePolicy —
// achieved anonymity under both attacker classes, breach counters, and
// utility measures, recorded as an "engine.audit" span with breach
// attributes attached to the enclosing "engine.<name>" span.
//
// Unlike WithVerify it never withholds a policy: breaches are observed,
// counted, and logged, not enforced. It is the serving-stack replacement
// for WithVerify's every-call cost — attacker.Audit is near-linear in |D|
// where full verification also constructs the Definition-6 witness.
func WithAudit(aud *audit.Auditor, rate float64) Middleware {
	return func(next Engine) Engine {
		name := next.Name()
		sampler := audit.NewSampler(rate)
		return New(name, func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
			a, err := next.Anonymize(ctx, db, bounds, p)
			if err != nil || !sampler.Sample() {
				return a, err
			}
			_, sp := obs.Start(ctx, "engine.audit")
			// The audit observes on the pre-span context so breach
			// attributes land on the enclosing engine span, not on the
			// audit timing span.
			aud.ObservePolicy(ctx, name, a, p.EffectiveK())
			sp.End()
			return a, nil
		})
	}
}

// cacheKey identifies one memoizable Anonymize call: the snapshot (by
// identity and version — see location.DB.Version), the map region, and
// the canonical parameter encoding.
type cacheKey struct {
	db      *location.DB
	version uint64
	bounds  geo.Rect
	params  string
}

// cacheLimit bounds each shard's memo table; on overflow the shard is
// dropped wholesale (snapshot churn makes LRU bookkeeping not worth it).
const cacheLimit = 128

// cacheShards is the shard count of the WithCache memo table; a power of
// two so the key hash folds with a mask. Different map regions (the
// per-jurisdiction bounds of a parallel deployment) hash to different
// shards, so concurrent engine runs for different jurisdictions never
// contend on one lock.
const cacheShards = 8

// cacheShard is one slice of the memo table plus its in-flight
// computations: concurrent misses for the same key coalesce onto one
// engine run instead of computing the same policy cacheShards times.
type cacheShard struct {
	mu     sync.Mutex
	memo   map[cacheKey]*lbs.Assignment
	flight map[cacheKey]*engineFlight
}

// engineFlight is one in-progress Anonymize run. The leader fills a/err
// before closing done; waiters read after <-done.
type engineFlight struct {
	done chan struct{}
	a    *lbs.Assignment
	err  error
}

// shardOf hashes a cache key to its shard: FNV-1a over the snapshot
// version, the bounds (jurisdiction), and the parameter encoding.
func shardOf(key cacheKey) int {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mix(key.version)
	mix(uint64(uint32(key.bounds.MinX)) | uint64(uint32(key.bounds.MinY))<<32)
	mix(uint64(uint32(key.bounds.MaxX)) | uint64(uint32(key.bounds.MaxY))<<32)
	for i := 0; i < len(key.params); i++ {
		h = (h ^ uint64(key.params[i])) * prime64
	}
	return int(h & (cacheShards - 1))
}

// WithCache memoizes Anonymize by snapshot version: repeated calls with
// the same *location.DB at the same Version, bounds, and Params return
// the previously computed *lbs.Assignment without re-running the engine.
// This is sound because engines are deterministic functions of the
// snapshot (the Definition 4 policy model) and location.DB bumps its
// version on every mutation. The cache is per wrapped instance; callers
// share one wrapped engine to share its memo table.
//
// The table is sharded by (version, bounds, params) hash — concurrent
// lookups for different jurisdictions take different locks — and misses
// for the SAME key coalesce: one caller runs the engine, the others wait
// for its result, so a thundering herd on a fresh snapshot computes the
// policy once. Engine errors propagate to every coalesced waiter and are
// never cached.
func WithCache() Middleware {
	return func(next Engine) Engine {
		var shards [cacheShards]cacheShard
		for i := range shards {
			shards[i].memo = make(map[cacheKey]*lbs.Assignment)
			shards[i].flight = make(map[cacheKey]*engineFlight)
		}
		return New(next.Name(), func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
			key := cacheKey{db: db, version: db.Version(), bounds: bounds, params: p.Key()}
			sh := &shards[shardOf(key)]
			sh.mu.Lock()
			if a, ok := sh.memo[key]; ok {
				sh.mu.Unlock()
				return a, nil
			}
			if f, ok := sh.flight[key]; ok {
				sh.mu.Unlock()
				<-f.done
				return f.a, f.err
			}
			f := &engineFlight{done: make(chan struct{})}
			sh.flight[key] = f
			sh.mu.Unlock()

			a, err := next.Anonymize(ctx, db, bounds, p)
			f.a, f.err = a, err
			sh.mu.Lock()
			delete(sh.flight, key)
			if err == nil {
				if len(sh.memo) >= cacheLimit {
					sh.memo = make(map[cacheKey]*lbs.Assignment)
				}
				sh.memo[key] = a
			}
			sh.mu.Unlock()
			close(f.done)
			return a, err
		})
	}
}
