package engine

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"policyanon/internal/baseline"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/tree"
)

// This file adapts every algorithm the repository implements behind the
// Engine interface and registers them into the Default registry. The
// bulkdp family honours the ablation options of core.Options via
// Params.Opts ("noprune", "naive", "workers", "maxdepth"); bulkdp-naive
// pins the first-cut Algorithm 1 regardless of Opts, as the named
// ablation (worker count is still honoured).

// DPOptions derives the core dynamic-program switches from engine
// options: the "noprune"/"naive" ablations and the "workers" parallelism
// budget (see core.Options.Workers; engines with Info.Parallel honour
// it). Serving surfaces use it to translate transport-level option maps
// into core options without duplicating the parsing.
func DPOptions(p Params) (core.Options, error) {
	workers, err := intOpt(p, "workers", 0)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		NoPrune:      p.Opt("noprune", "") == "true",
		NaiveCombine: p.Opt("naive", "") == "true",
		Workers:      workers,
	}, nil
}

// intOpt parses an integer engine option, with a default for absent keys.
func intOpt(p Params, name string, def int) (int, error) {
	v := p.Opt(name, "")
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("engine: option %s=%q: %w", name, v, err)
	}
	return n, nil
}

// bulkDP builds the Bulk_dp adapter over the given tree kind.
func bulkDP(name string, kind tree.Kind, forceNaive bool) Func {
	return func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		depth, err := intOpt(p, "maxdepth", 0)
		if err != nil {
			return nil, err
		}
		dp, err := DPOptions(p)
		if err != nil {
			return nil, err
		}
		opt := core.AnonymizerOptions{K: p.K, Kind: kind, MaxDepth: depth, DP: dp}
		if forceNaive {
			// Pin the ablation combine but keep the worker budget: the
			// schedule is orthogonal to the combine body.
			opt.DP.NaiveCombine, opt.DP.NoPrune = true, true
		}
		anon, err := core.NewAnonymizerContext(ctx, db, bounds, opt)
		if err != nil {
			return nil, err
		}
		return anon.Policy()
	}
}

// mbcRect is the axis-aligned bounding box of a minimum bounding circle,
// the rectangular transport form of the FindMBC cloak (anonymized
// requests carry closed rectangles — Definition 2 — so the box masks
// every sender the circle does).
func mbcRect(c geo.FCircle) geo.Rect {
	return geo.Rect{
		MinX: int32(math.Floor(c.CX - c.R)), MinY: int32(math.Floor(c.CY - c.R)),
		MaxX: int32(math.Ceil(c.CX + c.R)), MaxY: int32(math.Ceil(c.CY + c.R)),
	}
}

func init() {
	MustRegister(Info{
		Name:             DefaultName,
		Description:      "optimal policy-aware Bulk_dp over the binary semi-quadrant tree (Section V)",
		PolicyAware:      true,
		Incremental:      true,
		DeltaIncremental: true,
		Parallel:         true,
	}, New(DefaultName, bulkDP(DefaultName, tree.Binary, false)))

	MustRegister(Info{
		Name:        "bulkdp-quad",
		Description: "optimal policy-aware Bulk_dp over the quad tree (Algorithm 1)",
		PolicyAware: true,
		Parallel:    true,
	}, New("bulkdp-quad", bulkDP("bulkdp-quad", tree.Quad, false)))

	MustRegister(Info{
		Name:        "bulkdp-naive",
		Description: "first-cut Algorithm 1 ablation: naive child enumeration, no Lemma 5 pruning",
		PolicyAware: true,
		Parallel:    true,
	}, New("bulkdp-naive", bulkDP("bulkdp-naive", tree.Binary, true)))

	MustRegister(Info{
		Name:        "adaptive",
		Description: "adaptive semi-quadrant orientation DP (Section V sketch); never worse than bulkdp-binary",
		PolicyAware: true,
	}, New("adaptive", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		dp, err := DPOptions(p)
		if err != nil {
			return nil, err
		}
		dp.Workers = 0 // the adaptive DAG traversal is sequential
		return core.AdaptivePolicy(db, bounds, p.K, dp)
	}))

	MustRegister(Info{
		Name:        "multik",
		Description: "user-specified per-user anonymity levels via k-bucketed Bulk_dp (future-work extension)",
		PolicyAware: true,
		Parallel:    true,
	}, New("multik", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		ks := p.Ks
		if len(ks) == 0 {
			ks = make([]int, db.Len())
			for i := range ks {
				ks[i] = p.K
			}
		}
		dp, err := DPOptions(p)
		if err != nil {
			return nil, err
		}
		return core.MultiKPolicy(db, bounds, ks, core.AnonymizerOptions{K: p.EffectiveK(), DP: dp})
	}))

	MustRegister(Info{
		Name:        "casper",
		Description: "Casper k-inside baseline [23]: quadrant or adjacent-sibling semi-quadrant cloaks",
	}, New("casper", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		return baseline.Casper(db, bounds, p.K)
	}))

	MustRegister(Info{
		Name:        "pub",
		Description: "policy-unaware binary-tree k-inside baseline (tightest enclosing semi-quadrant)",
	}, New("pub", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		return baseline.PUB(db, bounds, p.K)
	}))

	MustRegister(Info{
		Name:        "puq",
		Description: "policy-unaware quad-tree k-inside baseline of Gruteser–Grunwald [16]",
	}, New("puq", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		return baseline.PUQ(db, bounds, p.K)
	}))

	MustRegister(Info{
		Name:        "hilbert",
		Description: "HilbertCloak static bucketing of Kalnis et al. [17]; policy-aware safe, not tree-optimal",
		PolicyAware: true,
	}, New("hilbert", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		return baseline.HilbertCloak(db, bounds, p.K)
	}))

	MustRegister(Info{
		Name:        "mbc",
		Description: "FindMBC minimum-bounding-circle cloaks of Xu–Cai [27] (bounding-box transport form)",
	}, New("mbc", func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
		m, err := baseline.FindMBC(db, bounds, p.K)
		if err != nil {
			return nil, err
		}
		cloaks := make([]geo.Rect, db.Len())
		for i := range cloaks {
			cloaks[i] = mbcRect(m.CircleAt(i))
		}
		return lbs.NewAssignment(db, cloaks)
	}))
}
