package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// noop is a trivially valid engine body for registry plumbing tests.
func noop(ctx context.Context, db *location.DB, bounds geo.Rect, p engine.Params) (*lbs.Assignment, error) {
	return nil, errors.New("noop")
}

func TestParamsEffectiveK(t *testing.T) {
	if got := (engine.Params{K: 7}).EffectiveK(); got != 7 {
		t.Errorf("EffectiveK = %d, want 7", got)
	}
	if got := (engine.Params{K: 7, Ks: []int{9, 3, 5}}).EffectiveK(); got != 3 {
		t.Errorf("EffectiveK with Ks = %d, want min 3", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (engine.Params{K: 0}).Validate(); err == nil {
		t.Error("k=0 validated")
	}
	if err := (engine.Params{K: 1}).Validate(); err != nil {
		t.Errorf("k=1 rejected: %v", err)
	}
	if err := (engine.Params{Ks: []int{2, 0}}).Validate(); err == nil {
		t.Error("ks containing 0 validated")
	}
	if err := (engine.Params{Ks: []int{2, 3}}).Validate(); err != nil {
		t.Errorf("valid ks rejected: %v", err)
	}
}

// Key must be canonical: independent of map iteration order, and distinct
// across distinct parameters (the cache middleware keys memo entries on it).
func TestParamsKeyCanonical(t *testing.T) {
	a := engine.Params{K: 5, Opts: map[string]string{"b": "2", "a": "1"}}
	b := engine.Params{K: 5, Opts: map[string]string{"a": "1", "b": "2"}}
	if a.Key() != b.Key() {
		t.Errorf("equal params, different keys: %q vs %q", a.Key(), b.Key())
	}
	if !strings.Contains(a.Key(), "a=1") || !strings.Contains(a.Key(), "b=2") {
		t.Errorf("key %q drops options", a.Key())
	}
	distinct := map[string]engine.Params{
		"k":   {K: 6, Opts: map[string]string{"a": "1", "b": "2"}},
		"opt": {K: 5, Opts: map[string]string{"a": "1", "b": "3"}},
		"ks":  {K: 5, Ks: []int{5, 5}, Opts: map[string]string{"a": "1", "b": "2"}},
	}
	for what, p := range distinct {
		if p.Key() == a.Key() {
			t.Errorf("params differing in %s share key %q", what, a.Key())
		}
	}
}

func TestRegistryRegisterErrors(t *testing.T) {
	r := engine.NewRegistry()
	e := engine.New("good", noop)
	if err := r.Register(engine.Info{Name: ""}, e); err == nil {
		t.Error("empty name registered")
	}
	if err := r.Register(engine.Info{Name: "good"}, nil); err == nil {
		t.Error("nil engine registered")
	}
	if err := r.Register(engine.Info{Name: "other"}, e); err == nil {
		t.Error("info/engine name mismatch registered")
	}
	if err := r.Register(engine.Info{Name: "good"}, e); err != nil {
		t.Fatalf("valid registration failed: %v", err)
	}
	if err := r.Register(engine.Info{Name: "good"}, e); err == nil {
		t.Error("duplicate registration accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister(engine.Info{Name: "good"}, e)
}

func TestRegistryGetUnknown(t *testing.T) {
	r := engine.NewRegistry()
	r.MustRegister(engine.Info{Name: "only"}, engine.New("only", noop))
	_, err := r.Get("nope")
	if !errors.Is(err, engine.ErrUnknownEngine) {
		t.Fatalf("error %v does not wrap ErrUnknownEngine", err)
	}
	if !strings.Contains(err.Error(), "only") {
		t.Errorf("error %q does not list registered names", err)
	}
}

func TestRegistryNamesAndInfosSorted(t *testing.T) {
	r := engine.NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(engine.Info{Name: n}, engine.New(n, noop))
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	infos := r.Infos()
	for i, n := range want {
		if infos[i].Name != n {
			t.Fatalf("Infos() order %v broken at %d", infos, i)
		}
	}
}

// The default registry must hold the full built-in taxonomy with honest
// capability flags: the paper's safe engines are PolicyAware, the k-inside
// prior art is not, and only bulkdp-binary supports incremental serving.
func TestDefaultRegistryTaxonomy(t *testing.T) {
	wantAware := map[string]bool{
		"bulkdp-binary": true,
		"bulkdp-quad":   true,
		"bulkdp-naive":  true,
		"adaptive":      true,
		"multik":        true,
		"hilbert":       true,
		"casper":        false,
		"pub":           false,
		"puq":           false,
		"mbc":           false,
	}
	for name, aware := range wantAware {
		info, ok := engine.InfoOf(name)
		if !ok {
			t.Errorf("built-in engine %q not registered", name)
			continue
		}
		if info.PolicyAware != aware {
			t.Errorf("%s: PolicyAware = %t, want %t", name, info.PolicyAware, aware)
		}
		if info.Incremental != (name == engine.DefaultName) {
			t.Errorf("%s: Incremental = %t", name, info.Incremental)
		}
		if info.DeltaIncremental != (name == engine.DefaultName) {
			t.Errorf("%s: DeltaIncremental = %t", name, info.DeltaIncremental)
		}
		if info.DeltaIncremental && !info.Incremental {
			t.Errorf("%s: DeltaIncremental without Incremental", name)
		}
		e, err := engine.Get(name)
		if err != nil {
			t.Errorf("Get(%q): %v", name, err)
		} else if e.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, e.Name())
		}
	}
	if _, ok := engine.InfoOf(engine.DefaultName); !ok {
		t.Fatalf("DefaultName %q is not registered", engine.DefaultName)
	}
}
