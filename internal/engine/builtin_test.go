package engine_test

import (
	"context"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/baseline"
	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/parallel"
	"policyanon/internal/verify"
	"policyanon/internal/workload"
)

// example1DB reproduces the Table I / Figure 1 layout on the 8x8 map:
// the canonical instance on which every k-inside policy breaches against
// a policy-aware attacker at k=2 (Example 1 / Proposition 3).
func example1DB(t *testing.T) (*location.DB, geo.Rect) {
	t.Helper()
	db := location.New(0)
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}} {
		if err := db.Add(u.id, geo.Point{X: u.x, Y: u.y}); err != nil {
			t.Fatal(err)
		}
	}
	return db, geo.NewRect(0, 0, 8, 8)
}

// TestEngineProperties is the cross-engine property suite: every
// registered engine, on the same random snapshot, must cover every user
// with a cloak that masks her location, and must deliver the anonymity
// class its registration claims — policy-unaware k-anonymity always
// (Proposition 2), policy-aware k-anonymity exactly when flagged.
func TestEngineProperties(t *testing.T) {
	const side = 1 << 10
	const k = 10
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 60, UsersPerIntersection: 5, SpreadSigma: 30,
	}, 11)
	bounds := geo.NewRect(0, 0, side, side)
	ctx := context.Background()
	for _, name := range engine.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := engine.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			info, _ := engine.InfoOf(name)
			a, err := e.Anonymize(ctx, db, bounds, engine.Params{K: k})
			if err != nil {
				t.Fatalf("Anonymize: %v", err)
			}
			if a.Len() != db.Len() {
				t.Fatalf("assignment covers %d of %d users", a.Len(), db.Len())
			}
			for i := 0; i < db.Len(); i++ {
				if !a.CloakAt(i).ContainsClosed(db.At(i).Loc) {
					t.Fatalf("cloak %v does not mask user %d at %v", a.CloakAt(i), i, db.At(i).Loc)
				}
			}
			rep := verify.Policy(a, k)
			if !rep.Masking {
				t.Errorf("masking verification failed: %v", rep.Problems)
			}
			if !rep.PolicyUnaware {
				t.Errorf("not %d-anonymous against policy-unaware attackers: %v", k, rep.Problems)
			}
			if info.PolicyAware && !rep.PolicyAware {
				t.Errorf("registered PolicyAware but breached (min candidate set %d): %v",
					rep.MinAware, rep.Problems)
			}
		})
	}
}

// TestKInsideEnginesBreachExample1 pins the paper's central claim through
// the registry: every engine registered with PolicyAware=false is
// breachable by a policy-aware attacker on the Example 1 layout, while
// every PolicyAware engine withstands it. The capability flag is
// therefore an honest, machine-checked statement of Propositions 2 and 3.
func TestKInsideEnginesBreachExample1(t *testing.T) {
	db, bounds := example1DB(t)
	const k = 2
	ctx := context.Background()
	for _, info := range engine.Infos() {
		if info.Name == "parallel" {
			// 5 users cannot be split into k-feasible jurisdictions.
			continue
		}
		e, err := engine.Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Anonymize(ctx, db, bounds, engine.Params{K: k})
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if !attacker.IsKAnonymous(a, k, attacker.PolicyUnaware) {
			t.Errorf("%s: breached by a policy-unaware attacker (Prop. 2 violated)", info.Name)
		}
		aware := attacker.IsKAnonymous(a, k, attacker.PolicyAware)
		if info.PolicyAware && !aware {
			t.Errorf("%s: registered PolicyAware but breached on Example 1", info.Name)
		}
		if !info.PolicyAware && aware {
			t.Errorf("%s: registered k-inside yet withstood the Example 1 attack; flag is wrong", info.Name)
		}
	}
}

// TestParity is the golden-parity gate (run in CI): routing through the
// registry must be byte-identical to calling the underlying algorithm
// directly, for both the flagship engine and a baseline.
func TestParity(t *testing.T) {
	const side = 1 << 11
	const k = 15
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 100, UsersPerIntersection: 5, SpreadSigma: 40,
	}, 42)
	bounds := geo.NewRect(0, 0, side, side)
	ctx := context.Background()

	sameCloaks := func(t *testing.T, got, want *lbs.Assignment) {
		t.Helper()
		if got.Len() != want.Len() {
			t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if got.CloakAt(i) != want.CloakAt(i) {
				t.Fatalf("cloak %d differs: registry %v, direct %v", i, got.CloakAt(i), want.CloakAt(i))
			}
		}
		if got.Cost() != want.Cost() {
			t.Fatalf("costs differ: %d vs %d", got.Cost(), want.Cost())
		}
	}

	t.Run("bulkdp-binary", func(t *testing.T) {
		e, err := engine.Get("bulkdp-binary")
		if err != nil {
			t.Fatal(err)
		}
		viaRegistry, err := e.Anonymize(ctx, db, bounds, engine.Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := anon.Policy()
		if err != nil {
			t.Fatal(err)
		}
		sameCloaks(t, viaRegistry, direct)
	})

	t.Run("casper", func(t *testing.T) {
		e, err := engine.Get("casper")
		if err != nil {
			t.Fatal(err)
		}
		viaRegistry, err := e.Anonymize(ctx, db, bounds, engine.Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := baseline.Casper(db, bounds, k)
		if err != nil {
			t.Fatal(err)
		}
		sameCloaks(t, viaRegistry, direct)
	})
}

// TestParallelEngine covers the self-registered Section V deployment: the
// "parallel" name resolves once internal/parallel is linked, honours the
// "servers" option, and produces a verified policy-aware assignment.
func TestParallelEngine(t *testing.T) {
	const side = 1 << 11
	const k = 10
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 120, UsersPerIntersection: 5, SpreadSigma: 40,
	}, 13)
	bounds := geo.NewRect(0, 0, side, side)
	e, err := engine.Get("parallel")
	if err != nil {
		t.Fatal(err)
	}
	info, ok := engine.InfoOf("parallel")
	if !ok || !info.PolicyAware {
		t.Fatalf("parallel registration %+v lacks the PolicyAware flag", info)
	}
	a, err := e.Anonymize(context.Background(), db, bounds, engine.Params{
		K: k, Opts: map[string]string{"servers": "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Policy(a, k)
	if !rep.Masking || !rep.PolicyUnaware || !rep.PolicyAware {
		t.Fatalf("parallel policy failed verification: %v", rep.Problems)
	}
	if _, err := e.Anonymize(context.Background(), db, bounds, engine.Params{
		K: k, Opts: map[string]string{"servers": "zero"},
	}); err == nil {
		t.Error("malformed servers option accepted")
	}
}

// Aliasing audit (satellite): accessors that hand out internal state must
// return copies, so caller mutation cannot corrupt policies or matrices.

func TestMatrixRowReturnsCopies(t *testing.T) {
	db, bounds := example1DB(t)
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := anon.Matrix()
	root := anon.Tree().Root()
	us, cs := m.Row(root)
	if len(us) == 0 {
		t.Fatal("root row is empty")
	}
	for i := range us {
		us[i] = -999
		cs[i] = -999
	}
	us2, cs2 := m.Row(root)
	for i := range us2 {
		if us2[i] == -999 || cs2[i] == -999 {
			t.Fatal("mutating Row results corrupted the matrix")
		}
	}
}

func TestNewAssignmentCopiesCloaks(t *testing.T) {
	db, _ := example1DB(t)
	cloaks := make([]geo.Rect, db.Len())
	for i := range cloaks {
		cloaks[i] = geo.NewRect(0, 0, 8, 8)
	}
	a, err := lbs.NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's slice must not reach into the assignment.
	cloaks[0] = geo.NewRect(7, 7, 8, 8)
	if got := a.CloakAt(0); got != geo.NewRect(0, 0, 8, 8) {
		t.Fatalf("assignment aliased the caller's cloak slice: %v", got)
	}
	// Mutating the Cloaks() copy must not either.
	out := a.Cloaks()
	out[1] = geo.NewRect(7, 7, 8, 8)
	if got := a.CloakAt(1); got != geo.NewRect(0, 0, 8, 8) {
		t.Fatalf("Cloaks() aliases assignment state: %v", got)
	}
}

func TestParallelJurisdictionsReturnsCopy(t *testing.T) {
	const side = 1 << 11
	db := workload.Generate(workload.Config{
		MapSide: side, Intersections: 120, UsersPerIntersection: 5, SpreadSigma: 40,
	}, 13)
	e, err := parallel.NewEngine(db, geo.NewRect(0, 0, side, side), parallel.Options{K: 10, Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	jur := e.Jurisdictions()
	if len(jur) == 0 {
		t.Fatal("no jurisdictions")
	}
	orig := jur[0]
	jur[0] = geo.NewRect(1, 2, 3, 4)
	if got := e.Jurisdictions()[0]; got != orig {
		t.Fatalf("Jurisdictions() aliases engine state: %v", got)
	}
}
