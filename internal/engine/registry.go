package engine

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultName is the registry name of the repository's flagship engine:
// the optimal policy-aware Bulk_dp over the binary semi-quadrant tree of
// Section V.
const DefaultName = "bulkdp-binary"

// Info describes a registered engine: its capability flags drive the
// verification middleware and let harnesses assert the paper's
// Propositions (k-inside engines are expected to breach against
// policy-aware attackers; policy-aware engines must not).
type Info struct {
	// Name is the stable registry key.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description"`
	// PolicyAware reports whether the engine guarantees sender
	// k-anonymity against policy-aware attackers (Definition 6). Engines
	// with PolicyAware=false are k-inside: safe against policy-unaware
	// attackers only (Proposition 2), breachable by construction on the
	// paper's Example 1 layout.
	PolicyAware bool `json:"policyAware"`
	// Incremental reports whether serving surfaces can maintain this
	// engine's policy incrementally across movement (the core matrix
	// maintenance of Section V). Non-incremental engines are recomputed
	// from scratch on each snapshot.
	Incremental bool `json:"incremental"`
	// DeltaIncremental reports whether the engine additionally supports
	// delta publication: extracting only changed cloaks (ExtractDelta) and
	// deriving published assignments copy-on-write (ApplyDelta), so a
	// publish costs O(changes) instead of O(|D|). Implies Incremental.
	DeltaIncremental bool `json:"deltaIncremental"`
	// Parallel reports whether the engine honours the "workers" option:
	// intra-tree parallel computation of the configuration matrix on a
	// work-stealing pool (core.Options.Workers). Serving surfaces use the
	// flag to decide whether a worker budget is worth forwarding.
	Parallel bool `json:"parallel"`
}

// Registry is a name-keyed set of engines. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]regEntry
}

type regEntry struct {
	eng  Engine
	info Info
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]regEntry)}
}

// Register adds an engine under info.Name. It fails on an empty name, a
// name/engine mismatch, or a duplicate registration.
func (r *Registry) Register(info Info, e Engine) error {
	if info.Name == "" {
		return fmt.Errorf("engine: registration with empty name")
	}
	if e == nil {
		return fmt.Errorf("engine: nil engine for %q", info.Name)
	}
	if e.Name() != info.Name {
		return fmt.Errorf("engine: info name %q does not match engine name %q", info.Name, e.Name())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[info.Name]; dup {
		return fmt.Errorf("engine: %q already registered", info.Name)
	}
	r.entries[info.Name] = regEntry{eng: e, info: info}
	return nil
}

// MustRegister is Register that panics on error, for init-time
// self-registration.
func (r *Registry) MustRegister(info Info, e Engine) {
	if err := r.Register(info, e); err != nil {
		panic(err)
	}
}

// Get returns the engine registered under name.
func (r *Registry) Get(name string) (Engine, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ent, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownEngine, name, r.namesLocked())
	}
	return ent.eng, nil
}

// Info returns the registration metadata for name.
func (r *Registry) Info(name string) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ent, ok := r.entries[name]
	return ent.info, ok
}

// Names returns the registered engine names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos returns the metadata of every registered engine, sorted by name.
func (r *Registry) Infos() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos := make([]Info, 0, len(r.entries))
	for _, n := range r.namesLocked() {
		infos = append(infos, r.entries[n].info)
	}
	return infos
}

// Default is the process-wide registry. The built-in engines register
// into it at package-init time; other packages (e.g. internal/parallel)
// self-register when linked in.
var Default = NewRegistry()

// Register adds an engine to the Default registry.
func Register(info Info, e Engine) error { return Default.Register(info, e) }

// MustRegister panics if Register fails.
func MustRegister(info Info, e Engine) { Default.MustRegister(info, e) }

// Get resolves a name against the Default registry.
func Get(name string) (Engine, error) { return Default.Get(name) }

// InfoOf returns Default-registry metadata for name.
func InfoOf(name string) (Info, bool) { return Default.Info(name) }

// Names lists the Default registry in sorted order.
func Names() []string { return Default.Names() }

// Infos lists Default-registry metadata in sorted order.
func Infos() []Info { return Default.Infos() }
