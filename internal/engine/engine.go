// Package engine is the unified policy-engine layer: one interface that
// every anonymization algorithm in the repository — the paper's optimal
// policy-aware Bulk_dp family, the adaptive-orientation variant, the
// multi-k extension, and the prior-art k-inside baselines (Casper, PUB,
// PUQ, HilbertCloak, FindMBC) — plugs into, a name-keyed registry that
// serving and benchmarking surfaces resolve engines from, and a
// middleware stack (tracing, metrics, post-hoc verification, snapshot
// caching) that composes orthogonally over any engine.
//
// The layer exists so that the paper's central comparison (Section VI:
// Bulk_dp's policy-aware optimum vs. the k-inside family) is a loop over
// registry names instead of a hand-wired call per algorithm, and so that
// the HTTP server, the cluster coordinator, the in-process parallel
// deployment, and the benchmark harness are all engine-agnostic.
//
// Engine names are stable identifiers (see docs/ENGINES.md for the
// taxonomy): bulkdp-binary, bulkdp-quad, bulkdp-naive, adaptive, multik,
// casper, pub, puq, hilbert, mbc, and — registered by the parallel
// package when it is linked in — parallel.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// Params carries the anonymity requirements of one Anonymize call.
type Params struct {
	// K is the uniform anonymity parameter (required by every engine
	// except multik when Ks is set).
	K int
	// Ks, when non-empty, requests per-user anonymity levels (one entry
	// per record of the snapshot). Engines without multi-k support ignore
	// it and use K.
	Ks []int
	// Opts carries engine-specific string options (e.g. "maxdepth",
	// "servers", the DP ablation switches). Unknown keys are ignored.
	Opts map[string]string
}

// EffectiveK returns the anonymity floor the parameters guarantee: the
// minimum of Ks when set, K otherwise. Verification middleware audits
// assignments at this level.
func (p Params) EffectiveK() int {
	if len(p.Ks) == 0 {
		return p.K
	}
	min := p.Ks[0]
	for _, k := range p.Ks[1:] {
		if k < min {
			min = k
		}
	}
	return min
}

// Validate checks the parameters independently of any engine.
func (p Params) Validate() error {
	if len(p.Ks) == 0 && p.K < 1 {
		return fmt.Errorf("engine: k must be >= 1, got %d", p.K)
	}
	for i, k := range p.Ks {
		if k < 1 {
			return fmt.Errorf("engine: ks[%d] = %d (must be >= 1)", i, k)
		}
	}
	return nil
}

// Key returns a canonical string encoding of the parameters, used by the
// caching middleware (and usable as a stable report key).
func (p Params) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d", p.K)
	if len(p.Ks) > 0 {
		fmt.Fprintf(&b, ";ks=%v", p.Ks)
	}
	if len(p.Opts) > 0 {
		keys := make([]string, 0, len(p.Opts))
		for k := range p.Opts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, ";%s=%s", k, p.Opts[k])
		}
	}
	return b.String()
}

// Opt returns the named engine option, or def when absent.
func (p Params) Opt(name, def string) string {
	if v, ok := p.Opts[name]; ok {
		return v
	}
	return def
}

// Engine computes a cloaking policy for one location snapshot. An engine
// must be deterministic in (db, bounds, p): the paper's attacker model
// assumes the policy is a function of the snapshot alone ("the design is
// not secret"), and the caching and cluster layers rely on it.
type Engine interface {
	// Name returns the engine's stable registry name.
	Name() string
	// Anonymize computes the per-user cloak assignment for the snapshot
	// over the square map region bounds.
	Anonymize(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error)
}

// Func is an Engine built from a function; New gives it a name.
type Func func(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error)

// funcEngine is the canonical Engine implementation; middleware wraps
// engines by constructing new funcEngines around them.
type funcEngine struct {
	name string
	fn   Func
}

// New returns an Engine with the given name backed by fn.
func New(name string, fn Func) Engine {
	return &funcEngine{name: name, fn: fn}
}

func (e *funcEngine) Name() string { return e.name }

func (e *funcEngine) Anonymize(ctx context.Context, db *location.DB, bounds geo.Rect, p Params) (*lbs.Assignment, error) {
	return e.fn(ctx, db, bounds, p)
}

// ErrUnknownEngine is returned by registry lookups for unregistered names.
var ErrUnknownEngine = errors.New("engine: unknown engine")
