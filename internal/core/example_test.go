package core_test

import (
	"fmt"

	"policyanon/internal/attacker"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// ExampleNewAnonymizer computes the optimal policy-aware 2-anonymous
// cloaking for the Table I database and inspects Carol's cloaking group.
func ExampleNewAnonymizer() {
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 5}},
		{UserID: "Sam", Loc: geo.Point{X: 5, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 6, Y: 2}},
	})
	if err != nil {
		panic(err)
	}
	anon, err := core.NewAnonymizer(db, geo.NewRect(0, 0, 8, 8), core.AnonymizerOptions{K: 2})
	if err != nil {
		panic(err)
	}
	policy, err := anon.Policy()
	if err != nil {
		panic(err)
	}
	cloak, _ := policy.CloakOf("Carol")
	fmt.Println("Carol's candidates:", len(attacker.Candidates(policy, cloak, attacker.PolicyAware)))
	// Output: Carol's candidates: 3
}

// ExampleMatrix_Update maintains the optimum incrementally as a user moves.
func ExampleMatrix_Update() {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 60, Y: 60}, {X: 61, Y: 61}}
	db := location.New(4)
	for i, p := range pts {
		if err := db.Add(fmt.Sprintf("u%d", i), p); err != nil {
			panic(err)
		}
	}
	anon, err := core.NewAnonymizer(db, geo.NewRect(0, 0, 64, 64), core.AnonymizerOptions{K: 2})
	if err != nil {
		panic(err)
	}
	before, _ := anon.OptimalCost()
	if err := anon.Move(0, geo.Point{X: 60, Y: 1}); err != nil {
		panic(err)
	}
	anon.Refresh()
	after, _ := anon.OptimalCost()
	fmt.Println("cost changed:", before != after)
	// Output: cost changed: true
}

// ExampleConfig_KSummation checks Definition 9 on a hand-built
// configuration: cloaking all four users at the root satisfies
// 2-summation.
func ExampleConfig_KSummation() {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 60, Y: 60}, {X: 61, Y: 61}}
	db := location.New(4)
	for i, p := range pts {
		if err := db.Add(fmt.Sprintf("u%d", i), p); err != nil {
			panic(err)
		}
	}
	anon, err := core.NewAnonymizer(db, geo.NewRect(0, 0, 64, 64), core.AnonymizerOptions{K: 2})
	if err != nil {
		panic(err)
	}
	t := anon.Tree()
	cfg := core.Config{t.Root(): 0} // everything cloaked at the root
	fmt.Println("complete:", cfg.Complete(t), "2-summation:", cfg.KSummation(t, 2))
	// Output: complete: true 2-summation: true
}
