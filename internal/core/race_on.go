//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this
// build. Allocation-count assertions are skipped under -race: the
// detector's shadow-state bookkeeping allocates on its own.
const raceEnabled = true
