package core

import (
	"errors"
	"math/rand"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/tree"
)

func buildTree(t *testing.T, pts []geo.Point, side int32, kind tree.Kind, k int) *tree.Tree {
	t.Helper()
	tr, err := tree.Build(pts, geo.NewRect(0, 0, side, side), tree.Options{
		Kind: kind, MinCountToSplit: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randPts(rng *rand.Rand, n int, side int32) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
	}
	return pts
}

func dbFor(t *testing.T, pts []geo.Point) *location.DB {
	t.Helper()
	db := location.New(len(pts))
	for i, p := range pts {
		if err := db.Add("u"+string(rune('A'+i%26))+itoa(i), p); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// bruteForceOptimal enumerates every tree-node cloak assignment of every
// point and returns the minimum cost over assignments in which each node
// cloaks either zero or at least k points. This is optimal policy-aware
// anonymization by definition (Lemma 3) and serves as the ground truth for
// the dynamic program on tiny instances.
func bruteForceOptimal(tr *tree.Tree, k int) int64 {
	n := tr.Len()
	anc := make([][]tree.NodeID, n)
	for i := 0; i < n; i++ {
		for id := tr.LeafOf(int32(i)); id != tree.None; id = tr.Parent(id) {
			anc[i] = append(anc[i], id)
		}
	}
	best := inf
	assign := make([]tree.NodeID, n)
	counts := make(map[tree.NodeID]int)
	var cost int64
	var rec func(i int)
	rec = func(i int) {
		if cost >= best {
			return
		}
		if i == n {
			for _, c := range counts {
				if c > 0 && c < k {
					return
				}
			}
			best = cost
			return
		}
		for _, id := range anc[i] {
			assign[i] = id
			counts[id]++
			cost += tr.Area(id)
			rec(i + 1)
			cost -= tr.Area(id)
			counts[id]--
		}
	}
	rec(0)
	return best
}

func TestOptimalCostMatchesBruteForceTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6) // 2..7 points
		k := 2 + rng.Intn(2) // k in {2,3}
		if n < k {
			n = k
		}
		pts := randPts(rng, n, 16)
		for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
			tr := buildTree(t, pts, 16, kind, k)
			m, err := NewMatrix(tr, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.OptimalCost()
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceOptimal(tr, k)
			if got != want {
				t.Fatalf("trial %d kind %v n=%d k=%d: DP cost %d, brute force %d (pts %v)",
					trial, kind, n, k, got, want, pts)
			}
		}
	}
}

func TestOptimizedMatchesFirstCut(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		k := 2 + rng.Intn(5)
		pts := randPts(rng, n, 64)
		for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
			tr := buildTree(t, pts, 64, kind, k)
			opt, err := NewMatrix(tr, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			naive, err := NewMatrix(tr, k, Options{NoPrune: true, NaiveCombine: true})
			if err != nil {
				t.Fatal(err)
			}
			co, err1 := opt.OptimalCost()
			cn, err2 := naive.OptimalCost()
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v", err1, err2)
			}
			if err1 != nil {
				continue
			}
			if co != cn {
				t.Fatalf("trial %d kind %v n=%d k=%d: optimized %d != first-cut %d",
					trial, kind, n, k, co, cn)
			}
		}
	}
}

func TestPruningAloneAndCombineAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(80)
		k := 2 + rng.Intn(6)
		pts := randPts(rng, n, 128)
		tr := buildTree(t, pts, 128, tree.Binary, k)
		var costs []int64
		for _, o := range []Options{{}, {NoPrune: true}, {NaiveCombine: true}, {NoPrune: true, NaiveCombine: true}} {
			m, err := NewMatrix(tr, k, o)
			if err != nil {
				t.Fatal(err)
			}
			c, err := m.OptimalCost()
			if err != nil {
				t.Fatal(err)
			}
			costs = append(costs, c)
		}
		for i := 1; i < len(costs); i++ {
			if costs[i] != costs[0] {
				t.Fatalf("trial %d: option variant %d cost %d != %d", trial, i, costs[i], costs[0])
			}
		}
	}
}

func TestInsufficientUsers(t *testing.T) {
	pts := randPts(rand.New(rand.NewSource(1)), 3, 32)
	tr := buildTree(t, pts, 32, tree.Binary, 5)
	m, err := NewMatrix(tr, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OptimalCost(); !errors.Is(err, ErrInsufficientUsers) {
		t.Fatalf("got %v", err)
	}
	if _, err := m.Extract(); !errors.Is(err, ErrInsufficientUsers) {
		t.Fatalf("Extract: got %v", err)
	}
}

func TestEmptySnapshot(t *testing.T) {
	tr := buildTree(t, nil, 32, tree.Binary, 2)
	m, err := NewMatrix(tr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.OptimalCost()
	if err != nil || c != 0 {
		t.Fatalf("cost=%d err=%v", c, err)
	}
	cloaks, err := m.Extract()
	if err != nil || len(cloaks) != 0 {
		t.Fatalf("extract=%v err=%v", cloaks, err)
	}
}

func TestInvalidK(t *testing.T) {
	tr := buildTree(t, randPts(rand.New(rand.NewSource(2)), 4, 16), 16, tree.Binary, 2)
	if _, err := NewMatrix(tr, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKOneCloaksEachPointAtItsLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 30, 64)
	tr := buildTree(t, pts, 64, tree.Binary, 1)
	m, err := NewMatrix(tr, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := range pts {
		want += tr.Area(tr.LeafOf(int32(i)))
	}
	if got != want {
		t.Fatalf("k=1 cost %d, want sum of leaf areas %d", got, want)
	}
}

func TestExtractRealizesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(100)
		k := 2 + rng.Intn(6)
		if n < k {
			continue
		}
		pts := randPts(rng, n, 256)
		db := dbFor(t, pts)
		anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 256, 256), AnonymizerOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		want, err := anon.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		pol, err := anon.Policy()
		if err != nil {
			t.Fatal(err)
		}
		if pol.Cost() != want {
			t.Fatalf("trial %d: extracted cost %d != optimal %d", trial, pol.Cost(), want)
		}
		// Lemma 3 / Definition 6: the policy is k-anonymous against
		// policy-aware attackers, hence also against policy-unaware ones
		// (Proposition 1).
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("trial %d: extracted policy not policy-aware %d-anonymous", trial, k)
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyUnaware) {
			t.Fatalf("trial %d: Proposition 1 violated", trial)
		}
		// Lemma 2: the configuration of the extracted policy has the same
		// cost and satisfies k-summation; it is complete.
		cloaks := make([]geo.Rect, n)
		for i := 0; i < n; i++ {
			cloaks[i] = pol.CloakAt(i)
		}
		cfg, err := ConfigOf(anon.Tree(), cloaks)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Complete(anon.Tree()) {
			t.Fatalf("trial %d: extracted configuration incomplete", trial)
		}
		if !cfg.KSummation(anon.Tree(), k) {
			t.Fatalf("trial %d: extracted configuration violates k-summation", trial)
		}
		if cc := cfg.Cost(anon.Tree()); cc != want {
			t.Fatalf("trial %d: Cost_c %d != policy cost %d (Lemma 2)", trial, cc, want)
		}
	}
}

func TestEveryGroupHasAtLeastK(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	pts := randPts(rng, 200, 512)
	db := dbFor(t, pts)
	const k = 7
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 512, 512), AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range pol.Groups() {
		if len(g.Members) < k {
			t.Fatalf("cloaking group %v has %d < k members", g.Cloak, len(g.Members))
		}
	}
}

func TestIncrementalMatchesFreshAfterMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	const side = 256
	const k = 4
	pts := randPts(rng, 120, side)
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, side, side), AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		nMoves := 1 + rng.Intn(10)
		for j := 0; j < nMoves; j++ {
			i := rng.Intn(len(pts))
			to := geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
			if err := anon.Move(i, to); err != nil {
				t.Fatal(err)
			}
			pts[i] = to
		}
		anon.Refresh()
		got, err := anon.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		freshTree := buildTree(t, pts, side, tree.Binary, k)
		fresh, err := NewMatrix(freshTree, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: incremental cost %d != fresh %d", round, got, want)
		}
		// Extraction must still work and realize the optimum.
		pol, err := anon.Policy()
		if err != nil {
			t.Fatal(err)
		}
		if pol.Cost() != want {
			t.Fatalf("round %d: extracted %d != %d after incremental update", round, pol.Cost(), want)
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("round %d: policy not k-anonymous after update", round)
		}
	}
}

func TestUpdateNoMovesIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	pts := randPts(rng, 50, 128)
	tr := buildTree(t, pts, 128, tree.Binary, 3)
	m, err := NewMatrix(tr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Update(); n != 0 {
		t.Fatalf("Update recomputed %d rows with no moves", n)
	}
}

func TestRowSpecialEntryIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	pts := randPts(rng, 40, 64)
	tr := buildTree(t, pts, 64, tree.Binary, 3)
	m, err := NewMatrix(tr, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr.PostOrder(func(id tree.NodeID) {
		us, cs := m.Row(id)
		found := false
		for i, u := range us {
			if int(u) == tr.Count(id) {
				found = true
				if cs[i] != 0 {
					t.Fatalf("node %d: M[m][d(m)] = %d, want 0", id, cs[i])
				}
			}
			if int(u) > tr.Count(id)-3 && int(u) != tr.Count(id) {
				t.Fatalf("node %d: feasible pass-up %d in forbidden band (d=%d,k=3)", id, u, tr.Count(id))
			}
		}
		if !found {
			t.Fatalf("node %d: missing full-pass-up entry", id)
		}
	})
}

// The cost of the optimal binary-tree policy is never worse than the
// optimal quad-tree policy at equal k (Section V).
func TestBinaryNeverWorseThanQuad(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(150)
		k := 2 + rng.Intn(8)
		pts := randPts(rng, n, 512)
		tq := buildTree(t, pts, 512, tree.Quad, k)
		tb := buildTree(t, pts, 512, tree.Binary, k)
		mq, err := NewMatrix(tq, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mb, err := NewMatrix(tb, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cq, err1 := mq.OptimalCost()
		cb, err2 := mb.OptimalCost()
		if err1 != nil || err2 != nil {
			if errors.Is(err1, ErrInsufficientUsers) {
				continue
			}
			t.Fatal(err1, err2)
		}
		if cb > cq {
			t.Fatalf("trial %d: binary cost %d > quad cost %d", trial, cb, cq)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 30, Y: 30}, {X: 31, Y: 29}}
	tr := buildTree(t, pts, 32, tree.Binary, 2)
	// Cloak everything at the root: C(root)=0, all other nodes pass up.
	cfg := Config{tr.Root(): 0}
	if err := cfg.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if !cfg.Complete(tr) {
		t.Fatal("root-cloaking config should be complete")
	}
	if !cfg.KSummation(tr, 2) {
		t.Fatal("cloaking 4 >= 2 at root should satisfy 2-summation")
	}
	if got := cfg.Cost(tr); got != 4*tr.Area(tr.Root()) {
		t.Fatalf("cost %d, want %d", got, 4*tr.Area(tr.Root()))
	}
	// Cloaking only 1 point at the root violates 2-summation.
	bad := Config{tr.Root(): 3}
	if bad.KSummation(tr, 2) {
		t.Fatal("cloaking 1 < k at root accepted")
	}
	// Passing up more than available violates Definition 7.
	if err := (Config{tr.Root(): 5}).Validate(tr); err == nil {
		t.Fatal("overfull config validated")
	}
}

func TestConfigOfRejectsForeignCloak(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 1}, {X: 30, Y: 30}}
	tr := buildTree(t, pts, 32, tree.Binary, 1)
	_, err := ConfigOf(tr, []geo.Rect{geo.NewRect(0, 0, 3, 3), tr.Rect(tr.Root())})
	if err == nil {
		t.Fatal("cloak that is not a tree node accepted")
	}
	if _, err := ConfigOf(tr, []geo.Rect{tr.Rect(tr.Root())}); err == nil {
		t.Fatal("wrong cloak count accepted")
	}
}

func TestAnonymizerRejectsBadK(t *testing.T) {
	db := dbFor(t, randPts(rand.New(rand.NewSource(4)), 5, 32))
	if _, err := NewAnonymizer(db, geo.NewRect(0, 0, 32, 32), AnonymizerOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// Assignments must always be masking policies (Definition 4): NewAssignment
// re-validates what Extract produced.
func TestExtractedCloaksMaskTheirUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(1000))
	pts := randPts(rng, 80, 128)
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 128, 128), AnonymizerOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		if !pol.CloakAt(i).Contains(db.At(i).Loc) {
			t.Fatalf("cloak %v does not contain user %d at %v", pol.CloakAt(i), i, db.At(i).Loc)
		}
	}
}
