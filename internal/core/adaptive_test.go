package core

import (
	"errors"
	"math/rand"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/tree"
)

func adaptiveFor(t *testing.T, pts []geo.Point, side int32, k int, opt Options) *AdaptiveMatrix {
	t.Helper()
	tr := buildTree(t, pts, side, tree.Quad, k)
	m, err := NewAdaptiveMatrix(tr, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// bruteForceAdaptive enumerates every per-square orientation choice and
// every cloak assignment within the induced family, returning the minimum
// cost over policy-aware-safe policies. Ground truth for tiny instances.
func bruteForceAdaptive(tr *tree.Tree, k int) int64 {
	var internals []tree.NodeID
	tr.PostOrder(func(id tree.NodeID) {
		if !tr.IsLeaf(id) {
			internals = append(internals, id)
		}
	})
	n := tr.Len()
	best := inf
	for mask := 0; mask < 1<<len(internals); mask++ {
		vertical := make(map[tree.NodeID]bool)
		for i, id := range internals {
			vertical[id] = mask&(1<<i) == 0
		}
		// Options per point: ancestor squares plus the oriented semi of
		// each internal ancestor containing the point.
		options := make([][]geo.Rect, n)
		for p := 0; p < n; p++ {
			loc := tr.Point(int32(p))
			for id := tr.LeafOf(int32(p)); id != tree.None; id = tr.Parent(id) {
				options[p] = append(options[p], tr.Rect(id))
				if !tr.IsLeaf(id) {
					r := tr.Rect(id)
					var semis [2]geo.Rect
					if vertical[id] {
						semis = [2]geo.Rect{r.WestHalf(), r.EastHalf()}
					} else {
						semis = [2]geo.Rect{r.SouthHalf(), r.NorthHalf()}
					}
					for _, s := range semis {
						if s.Contains(loc) {
							options[p] = append(options[p], s)
						}
					}
				}
			}
		}
		assign := make([]geo.Rect, n)
		counts := make(map[geo.Rect]int)
		var cost int64
		var rec func(p int)
		rec = func(p int) {
			if cost >= best {
				return
			}
			if p == n {
				for _, c := range counts {
					if c > 0 && c < k {
						return
					}
				}
				best = cost
				return
			}
			for _, r := range options[p] {
				assign[p] = r
				counts[r]++
				cost += r.Area()
				rec(p + 1)
				cost -= r.Area()
				counts[r]--
			}
		}
		rec(0)
	}
	return best
}

func TestAdaptiveMatchesBruteForceTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5) // 2..6 points
		k := 2
		pts := randPts(rng, n, 16)
		tr := buildTree(t, pts, 16, tree.Quad, k)
		m, err := NewAdaptiveMatrix(tr, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceAdaptive(tr, k)
		if got != want {
			t.Fatalf("trial %d n=%d: adaptive DP %d, brute force %d (pts %v)", trial, n, got, want, pts)
		}
	}
}

// The adaptive optimum can never cost more than the static vertical binary
// tree's optimum (vertical-everywhere is in its search space).
func TestAdaptiveNeverWorseThanStaticBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(150)
		k := 2 + rng.Intn(8)
		if n < k {
			n = k
		}
		pts := randPts(rng, n, 256)
		adaptive := adaptiveFor(t, pts, 256, k, Options{})
		ca, err := adaptive.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		static, err := NewMatrix(buildTree(t, pts, 256, tree.Binary, k), k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cs, err := static.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		if ca > cs {
			t.Fatalf("trial %d n=%d k=%d: adaptive %d > static binary %d", trial, n, k, ca, cs)
		}
	}
}

func TestAdaptivePruningConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(80)
		k := 2 + rng.Intn(5)
		if n < k {
			n = k
		}
		pts := randPts(rng, n, 128)
		pruned := adaptiveFor(t, pts, 128, k, Options{})
		unpruned := adaptiveFor(t, pts, 128, k, Options{NoPrune: true})
		cp, err1 := pruned.OptimalCost()
		cu, err2 := unpruned.OptimalCost()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cp != cu {
			t.Fatalf("trial %d: pruned %d != unpruned %d", trial, cp, cu)
		}
	}
}

func TestAdaptiveExtractRealizesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(120)
		k := 2 + rng.Intn(6)
		if n < k {
			n = k
		}
		pts := randPts(rng, n, 256)
		db := dbFor(t, pts)
		m := adaptiveFor(t, pts, 256, k, Options{})
		want, err := m.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		cloaks, err := m.Extract()
		if err != nil {
			t.Fatal(err)
		}
		pol, err := lbs.NewAssignment(db, cloaks)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Cost() != want {
			t.Fatalf("trial %d: extracted %d != optimal %d", trial, pol.Cost(), want)
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("trial %d: adaptive policy breached", trial)
		}
	}
}

func TestAdaptiveRejectsBinaryTree(t *testing.T) {
	tr := buildTree(t, randPts(rand.New(rand.NewSource(1)), 10, 64), 64, tree.Binary, 2)
	if _, err := NewAdaptiveMatrix(tr, 2, Options{}); err == nil {
		t.Fatal("binary tree accepted")
	}
	trq := buildTree(t, randPts(rand.New(rand.NewSource(2)), 10, 64), 64, tree.Quad, 2)
	if _, err := NewAdaptiveMatrix(trq, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestAdaptiveEdgeCases(t *testing.T) {
	// Empty snapshot.
	tr := buildTree(t, nil, 64, tree.Quad, 2)
	m, err := NewAdaptiveMatrix(tr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c, err := m.OptimalCost(); err != nil || c != 0 {
		t.Fatalf("empty: %d %v", c, err)
	}
	if cloaks, err := m.Extract(); err != nil || len(cloaks) != 0 {
		t.Fatalf("empty extract: %v %v", cloaks, err)
	}
	// Insufficient users.
	tr2 := buildTree(t, randPts(rand.New(rand.NewSource(3)), 2, 64), 64, tree.Quad, 5)
	m2, err := NewAdaptiveMatrix(tr2, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.OptimalCost(); !errors.Is(err, ErrInsufficientUsers) {
		t.Fatalf("got %v", err)
	}
}

func TestAdaptiveIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	const side = 256
	const k = 4
	pts := randPts(rng, 100, side)
	tr := buildTree(t, pts, side, tree.Quad, k)
	m, err := NewAdaptiveMatrix(tr, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		for j := 0; j < 5; j++ {
			i := int32(rng.Intn(len(pts)))
			to := geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
			if err := tr.Move(i, to); err != nil {
				t.Fatal(err)
			}
			pts[i] = to
		}
		m.Update()
		got, err := m.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewAdaptiveMatrix(buildTree(t, pts, side, tree.Quad, k), k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: adaptive incremental %d != fresh %d", round, got, want)
		}
		if _, err := m.Extract(); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Update(); n != 0 {
		t.Fatalf("no-op update recomputed %d rows", n)
	}
}
