package core

import (
	"sync"

	"policyanon/internal/tree"
)

// combineScratch bundles every reusable buffer one combine pass needs, so
// that steady-state computeRow performs no allocations: the inf-filled
// fold accumulator, the touched-index list, the child-row pointer list,
// a double-buffered pair of profile arenas, and the suffix-minimum buffer
// of rowFromProfile. Each DP worker owns one scratch for the duration of
// a bottom-up pass; the sequential and incremental paths use the one the
// Matrix retains. Instances recycle through scratchPool.
type combineScratch struct {
	// fold is the indexed-by-j accumulator of the Section V two-stage
	// combine. Invariant: every entry is inf between combines (foldRows
	// restores the entries it wrote before returning).
	fold []int64
	// touched records which fold indices the current child wrote.
	touched []int32
	// rows is Matrix.fold's child-row pointer list.
	rows []*row
	// jsA/costsA and jsB/costsB are the profile arenas: the running
	// profile lives in one pair while the next child's merge builds into
	// the other, then the pairs swap. The arenas are only safe for
	// profiles that die with the combine; retained profiles (extraction
	// prefixes) are allocated fresh.
	jsA, jsB       []int32
	costsA, costsB []int64
	// sfx and sfxJ are the suffix-minimum buffers of rowFromProfile: the
	// running minimum of temp[j] + j*area and the j witnessing it.
	sfx  []int64
	sfxJ []int32
	// affected and order are Matrix.Update's dirty-closure buffers: the
	// ancestor-closed set of rows to recompute and its height-sorted walk
	// list. Update clears affected before returning, so a pooled scratch
	// always hands the next batch an empty map.
	affected map[tree.NodeID]struct{}
	order    []tree.NodeID
	// pass is the extraction pass-up arena: assign appends the points its
	// children hand up into stack-discipline frames (each visit truncates
	// back to its mark before returning), so visiting a node allocates
	// nothing once the arena is warm.
	pass []int32
}

// ensureFold grows the fold accumulator to at least n inf-filled entries.
func (cs *combineScratch) ensureFold(n int) {
	if len(cs.fold) >= n {
		return
	}
	old := len(cs.fold)
	if cap(cs.fold) >= n {
		cs.fold = cs.fold[:n]
	} else {
		grown := make([]int64, n)
		copy(grown, cs.fold)
		cs.fold = grown
	}
	for i := old; i < n; i++ {
		cs.fold[i] = inf
	}
}

// ensurePass pre-sizes every buffer computeRow can touch, for scratches
// owned by DP pool workers. Work stealing hands a worker different nodes
// on every pass, so lazy growth inside computeRow would otherwise ratchet
// capacity (and allocate) indefinitely across warm passes. Every buffer's
// per-combine high-water mark is bounded by the fold length |D|+1: rows
// hold at most bound(m)+1 ≤ foldLen entries, profiles and the suffix
// buffers at most one more.
func (cs *combineScratch) ensurePass(foldLen int) {
	cs.ensureFold(foldLen)
	n := foldLen + 2
	if cap(cs.touched) < n {
		cs.touched = make([]int32, 0, n)
	}
	if cap(cs.jsA) < n {
		cs.jsA = make([]int32, 0, n)
	}
	if cap(cs.jsB) < n {
		cs.jsB = make([]int32, 0, n)
	}
	if cap(cs.costsA) < n {
		cs.costsA = make([]int64, 0, n)
	}
	if cap(cs.costsB) < n {
		cs.costsB = make([]int64, 0, n)
	}
	if cap(cs.sfx) < n {
		cs.sfx = make([]int64, n)
	}
	if cap(cs.sfxJ) < n {
		cs.sfxJ = make([]int32, n)
	}
	if cap(cs.rows) < tree.MaxChildren {
		cs.rows = make([]*row, 0, tree.MaxChildren)
	}
}

// scratchPool recycles combine scratch across matrices and DP workers.
var scratchPool = sync.Pool{New: func() any { return new(combineScratch) }}

// getScratch returns a pooled scratch whose fold buffer covers indices
// [0, foldLen).
func getScratch(foldLen int) *combineScratch {
	cs := scratchPool.Get().(*combineScratch)
	cs.ensureFold(foldLen)
	return cs
}

// putScratch returns a scratch to the pool. The caller must not retain it.
func putScratch(cs *combineScratch) { scratchPool.Put(cs) }
