package core

import "runtime"

// RowAllocsPerRun measures the steady-state allocation count of a single
// interior-node combine (one computeRow call on the warm root row), the
// quantity the BENCH_bulkdp.json baseline tracks and the zero-alloc
// regression gate asserts is 0. It mirrors testing.AllocsPerRun — pin to
// one P, warm once, average mallocs over repeated runs — without pulling
// the testing package into non-test binaries.
func (m *Matrix) RowAllocsPerRun() float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	id := m.t.Root()
	m.computeRow(m.cs, id) // warm scratch and row storage
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 100
	for i := 0; i < runs; i++ {
		m.computeRow(m.cs, id)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}
