// Package core implements the paper's primary contribution: optimal
// policy-aware sender k-anonymization over (semi-)quadrant cloaking trees.
//
// It provides
//   - configurations of a cloaking tree, their validity, cost and the
//     k-summation property (Definitions 7–9, Lemmas 1–3);
//   - the dynamic program Bulk_dp of Algorithm 1 in both its first-cut
//     form (naive child enumeration, no pruning — the O(|T||D|^5) /
//     O(|B||D|^3) variants) and the optimized form of Section V
//     (Lemma 5 pass-up pruning plus the two-stage temp-profile combine,
//     O(|B|(kh)^2));
//   - extraction of a concrete minimum-cost policy from the optimum
//     configuration matrix, as a per-user cloak assignment; and
//   - incremental maintenance of the matrix across location snapshots.
package core

import (
	"errors"
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/tree"
)

// Config is a configuration of a cloaking tree (Definition 7): for each
// node m, C(m) is the number of locations inside m's quadrant that are NOT
// cloaked by m or any of its descendants (the count "passed up" to m's
// ancestors). Nodes absent from the map implicitly pass up everything
// (C(m) = d(m)), which matches the lazy materialization of the tree.
type Config map[tree.NodeID]int

// At returns C(m), defaulting to d(m) for unset nodes.
func (c Config) At(t *tree.Tree, id tree.NodeID) int {
	if v, ok := c[id]; ok {
		return v
	}
	return t.Count(id)
}

// CloakedAt returns the number of locations the configuration cloaks at
// node id: d(m)-C(m) for leaves, sum(C(children))-C(m) for internal nodes.
func (c Config) CloakedAt(t *tree.Tree, id tree.NodeID) int {
	if t.IsLeaf(id) {
		return t.Count(id) - c.At(t, id)
	}
	sum := 0
	for _, ch := range t.Children(id) {
		sum += c.At(t, ch)
	}
	return sum - c.At(t, id)
}

// Complete reports whether the configuration cloaks every location
// (C(root) = 0, Definition 7).
func (c Config) Complete(t *tree.Tree) bool { return c.At(t, t.Root()) == 0 }

// Validate checks the two structural conditions of Definition 7.
func (c Config) Validate(t *tree.Tree) error {
	var err error
	t.PostOrder(func(id tree.NodeID) {
		if err != nil {
			return
		}
		v := c.At(t, id)
		if v < 0 {
			err = fmt.Errorf("core: C(%d) = %d is negative", id, v)
			return
		}
		if t.IsLeaf(id) {
			if v > t.Count(id) {
				err = fmt.Errorf("core: leaf %d passes up %d > d(m)=%d", id, v, t.Count(id))
			}
			return
		}
		sum := 0
		for _, ch := range t.Children(id) {
			sum += c.At(t, ch)
		}
		if v > sum {
			err = fmt.Errorf("core: node %d passes up %d > children sum %d", id, v, sum)
		}
	})
	return err
}

// KSummation reports whether the configuration satisfies the k-summation
// property of Definition 9: every node cloaks either zero or at least k
// locations.
func (c Config) KSummation(t *tree.Tree, k int) bool {
	ok := true
	t.PostOrder(func(id tree.NodeID) {
		if !ok {
			return
		}
		avail := t.Count(id) // Delta for internal nodes equals children sum
		if !t.IsLeaf(id) {
			avail = 0
			for _, ch := range t.Children(id) {
				avail += c.At(t, ch)
			}
		}
		v := c.At(t, id)
		if v != avail && v > avail-k {
			ok = false
		}
		if v > avail {
			ok = false
		}
	})
	return ok
}

// Cost computes Cost_c(C, D) of Definition 8: the summed area of the cloaks
// the represented policies would emit.
func (c Config) Cost(t *tree.Tree) int64 {
	var total int64
	t.PostOrder(func(id tree.NodeID) {
		total += int64(c.CloakedAt(t, id)) * t.Area(id)
	})
	return total
}

// ConfigOf derives the configuration represented by a per-point cloak
// assignment over the tree (the equivalence-class projection of Lemma 1).
// cloaks[i] must be the rectangle of a tree node containing point i.
func ConfigOf(t *tree.Tree, cloaks []geo.Rect) (Config, error) {
	if len(cloaks) != t.Len() {
		return nil, fmt.Errorf("core: %d cloaks for %d points", len(cloaks), t.Len())
	}
	// Count how many points are cloaked at each node.
	cloakedAt := make(map[tree.NodeID]int)
	for i, r := range cloaks {
		id, err := t.Locate(t.Point(int32(i)))
		if err != nil {
			return nil, err
		}
		for id != tree.None && t.Rect(id) != r {
			id = t.Parent(id)
		}
		if id == tree.None {
			return nil, fmt.Errorf("core: cloak %v of point %d is not an ancestor node", r, i)
		}
		cloakedAt[id]++
	}
	// C(m) = d(m) - total cloaked within m's subtree, computed bottom-up.
	cfg := make(Config)
	sub := make(map[tree.NodeID]int)
	t.PostOrder(func(id tree.NodeID) {
		s := cloakedAt[id]
		for _, ch := range t.Children(id) {
			s += sub[ch]
		}
		sub[id] = s
		cfg[id] = t.Count(id) - s
	})
	if err := cfg.Validate(t); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ErrInsufficientUsers is returned when the snapshot holds fewer than k
// users, in which case no policy can provide sender k-anonymity.
var ErrInsufficientUsers = errors.New("core: fewer than k users in the snapshot")
