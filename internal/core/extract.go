package core

import (
	"context"
	"errors"
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/obs"
	"policyanon/internal/tree"
)

// ErrNoDeltaBaseline reports that the matrix has no realized assignment to
// diff against: no Extract succeeded since construction or since the last
// full Recompute. Callers fall back to Extract, which (re-)establishes the
// baseline.
var ErrNoDeltaBaseline = errors.New("core: no delta baseline (run Extract first)")

// Extract materializes one minimum-cost policy from the optimum
// configuration matrix: a per-point cloak, point i receiving the rectangle
// of the tree node that cloaks it. This is the linear-time policy
// exhibition step described after Definition 7 (within each node, which
// particular locations it cloaks is immaterial by Lemma 1 and is chosen
// arbitrarily). The pass also records the realized configuration — the
// target chosen and the points passed up per node — as the baseline
// ExtractDelta diffs against.
func (m *Matrix) Extract() ([]geo.Rect, error) {
	_, sp := obs.Start(m.octx(), "bulkdp.extract")
	if sp != nil {
		sp.SetInt("users", int64(m.t.Len()))
		defer sp.End()
	}
	if err := m.extract(&assignPass{}); err != nil {
		return nil, err
	}
	return append([]geo.Rect(nil), m.cloaks...), nil
}

// ExtractDelta re-runs the policy exhibition only over subtrees that can
// realize a different configuration than the last extraction: a node is
// descended when any row in its subtree was recomputed since (the stale
// set, ancestor-closed because Update recomputes every ancestor of a dirty
// node) or when its parent chose a different pass-up target for it;
// everything else reuses the memoized pass-up list. It returns the cloak
// changes against the previously extracted assignment — the maintained
// assignment stays byte-identical to a from-scratch Extract (the parity
// oracle) — plus the number of nodes re-assigned. The work is
// O(re-assigned subtrees), not O(|D|).
func (m *Matrix) ExtractDelta() (changes []lbs.CloakChange, visited int, err error) {
	if !m.haveBase || len(m.cloaks) != m.t.Len() {
		return nil, 0, ErrNoDeltaBaseline
	}
	_, sp := obs.Start(m.octx(), "bulkdp.extract_delta")
	st := assignPass{delta: true}
	if err := m.extract(&st); err != nil {
		if sp != nil {
			sp.End()
		}
		return nil, 0, err
	}
	if sp != nil {
		sp.SetInt("visited", int64(st.visited))
		sp.SetInt("changes", int64(len(st.changes)))
		sp.End()
	}
	return st.changes, st.visited, nil
}

// extract runs one exhibition pass (full or delta) into the matrix's
// baseline state.
func (m *Matrix) extract(st *assignPass) error {
	if _, err := m.OptimalCost(); err != nil {
		return err
	}
	m.ensureAssignState()
	m.cs.pass = m.cs.pass[:0]
	// A failed pass leaves the baseline partially overwritten; drop it
	// until a pass completes.
	m.haveBase = false
	if m.t.Len() > 0 {
		leftover, err := m.assign(m.t.Root(), 0, st)
		if err != nil {
			return err
		}
		if len(leftover) != 0 {
			return fmt.Errorf("core: %d locations left uncloaked at the root (internal error)", len(leftover))
		}
	}
	m.clearStale()
	m.haveBase = true
	return nil
}

// assignPass carries one exhibition pass's mode and accumulators.
type assignPass struct {
	// delta reuses per-node memos where the configuration cannot have
	// changed and records cloak rewrites into changes.
	delta   bool
	changes []lbs.CloakChange
	visited int
}

// assign recursively realizes the configuration chosen by the matrix for
// the subtree at id with pass-up target u, writing cloaks into the
// baseline and returning the point indices passed up (the returned slice
// is the node's memo: callers must not mutate or retain it across passes).
func (m *Matrix) assign(id tree.NodeID, u int32, st *assignPass) ([]int32, error) {
	if st.delta && !m.stale[id] && m.chosen[id] == u {
		// No row in this subtree changed (ancestor-closure of the stale
		// set) and the parent chose the same target, so the realized
		// configuration — hence every cloak inside — is unchanged.
		return m.passUp[id], nil
	}
	st.visited++
	r := &m.rows[id]
	want := r.at(u)
	if want >= inf {
		return nil, fmt.Errorf("core: infeasible target u=%d at node %d (internal error)", u, id)
	}
	rect := m.t.Rect(id)
	if m.t.IsLeaf(id) {
		pts := m.t.LeafPoints(id)
		cloakN := int(r.d - u)
		for _, p := range pts[:cloakN] {
			m.setCloak(p, rect, st)
		}
		m.chosen[id] = u
		m.passUp[id] = append(m.passUp[id][:0], pts[cloakN:]...)
		return m.passUp[id], nil
	}
	children := m.t.Children(id)
	var pickBuf [4]int32
	j, pick, err := m.chooseCombine(id, u, want, pickBuf[:0])
	if err != nil {
		return nil, err
	}
	// The children's pass-ups accumulate in a stack-discipline arena frame
	// (each recursive visit pops its own frame before returning, so this
	// frame stays contiguous across the recursion).
	mark := len(m.cs.pass)
	for ci, ch := range children {
		sub, err := m.assign(ch, pick[ci], st)
		if err != nil {
			return nil, err
		}
		m.cs.pass = append(m.cs.pass, sub...)
	}
	passed := m.cs.pass[mark:]
	if int32(len(passed)) != j {
		return nil, fmt.Errorf("core: node %d received %d points, expected j=%d (internal error)", id, len(passed), j)
	}
	cloakN := int(j - u)
	for _, p := range passed[:cloakN] {
		m.setCloak(p, rect, st)
	}
	m.chosen[id] = u
	m.passUp[id] = append(m.passUp[id][:0], passed[cloakN:]...)
	m.cs.pass = m.cs.pass[:mark]
	return m.passUp[id], nil
}

// setCloak writes one baseline cloak, recording the rewrite when a delta
// pass actually changes it.
func (m *Matrix) setCloak(p int32, rect geo.Rect, st *assignPass) {
	if st.delta {
		if old := m.cloaks[p]; old != rect {
			st.changes = append(st.changes, lbs.CloakChange{Index: int(p), Old: old, New: rect})
			m.cloaks[p] = rect
		}
		return
	}
	m.cloaks[p] = rect
}

// chooseCombine derives, for internal node id and target pass-up u, a
// children pass-up vector and total j achieving the stored optimum
// M[id][u]. Binary nodes take the fast path: the combine recorded its
// argmin total in the row's jpick, so only the split of j across the two
// children remains — a scan linear in the first child's row. Nodes
// without a recorded pick (quad combines, NaiveCombine rows) re-derive
// the total with the from-scratch resolver.
func (m *Matrix) chooseCombine(id tree.NodeID, u int32, want int64, buf []int32) (int32, []int32, error) {
	children := m.t.Children(id)
	r := &m.rows[id]
	if len(children) == 2 && u >= 0 && u <= r.bound && int(u) < len(r.jpick) {
		j := r.jpick[u]
		base := want
		if j != u {
			// The node cloaked j-u of the passed-up points; the remainder
			// is what the children's rows had to sum to.
			base -= int64(j-u) * m.t.Area(id)
		}
		if u0, u1, ok := splitPair(&m.rows[children[0]], &m.rows[children[1]], j, base); ok {
			return j, append(buf, u0, u1), nil
		}
		// No split reproduces the recorded pick — fall through to the
		// from-scratch resolver rather than fail the extraction.
	}
	rows := m.cs.rows[:0]
	for _, ch := range children {
		rows = append(rows, &m.rows[ch])
	}
	m.cs.rows = rows
	j, picks, err := resolveCombine(m.cs, rows, u, want, m.t.Area(id), m.k, r.d)
	if err != nil {
		return 0, nil, fmt.Errorf("core: node %d: %w", id, err)
	}
	return j, append(buf, picks...), nil
}

// splitPair finds child pass-up counts (u0, u1) with u0 + u1 = j whose
// row costs sum to base — the decomposition the fold realized when it
// scored total j at cost base. The scan order (spike first, then the
// dense range in increasing u0) is fixed so repeated extractions of an
// unchanged subtree realize the identical configuration.
func splitPair(r0, r1 *row, j int32, base int64) (int32, int32, bool) {
	if u1 := j - r0.d; u1 == r1.d || (u1 >= 0 && u1 <= r1.bound) {
		if r1.at(u1) == base {
			return r0.d, u1, true
		}
	}
	hi := j
	if hi > r0.bound {
		hi = r0.bound
	}
	for u0 := int32(0); u0 <= hi; u0++ {
		c0 := r0.costs[u0]
		if c0 > base {
			continue
		}
		u1 := j - u0
		if u1 == r1.d {
			if c0 == base {
				return u0, u1, true
			}
			continue
		}
		if u1 >= 0 && u1 <= r1.bound && c0+r1.costs[u1] == base {
			return u0, u1, true
		}
	}
	return 0, 0, false
}

// Anonymizer bundles a cloaking tree and its optimum configuration matrix
// for one snapshot, exposing the operations the CSP needs: bulk
// anonymization, incremental maintenance under movement, and policy
// extraction.
type Anonymizer struct {
	db     *location.DB
	matrix *Matrix
}

// AnonymizerOptions configures NewAnonymizer.
type AnonymizerOptions struct {
	// K is the anonymity parameter (required, >= 1).
	K int
	// Kind selects the cloaking tree; the default is the binary
	// semi-quadrant tree of Section V.
	Kind tree.Kind
	// MaxDepth bounds tree height (0 = library default).
	MaxDepth int
	// DP carries the dynamic-program ablation switches.
	DP Options
}

// NewAnonymizer builds the cloaking tree over db and runs the bulk dynamic
// program. bounds must be the square map region.
func NewAnonymizer(db *location.DB, bounds geo.Rect, opt AnonymizerOptions) (*Anonymizer, error) {
	return NewAnonymizerContext(context.Background(), db, bounds, opt)
}

// NewAnonymizerContext is NewAnonymizer with tracing: when ctx carries an
// obs.Tracer the bulk anonymization is recorded as a "bulkdp.build" span
// enclosing "tree.build" (materialization) and "bulkdp.combine" (the
// Algorithm 1 main loop); later Extract and Update calls report
// "bulkdp.extract" and "bulkdp.update" under the same trace.
func NewAnonymizerContext(ctx context.Context, db *location.DB, bounds geo.Rect, opt AnonymizerOptions) (*Anonymizer, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", opt.K)
	}
	ctx, sp := obs.Start(ctx, "bulkdp.build")
	if sp != nil {
		sp.SetInt("users", int64(db.Len()))
		sp.SetInt("k", int64(opt.K))
		defer sp.End()
	}
	t, err := tree.BuildContext(ctx, db.Points(), bounds, tree.Options{
		Kind:            opt.Kind,
		MinCountToSplit: opt.K,
		MaxDepth:        opt.MaxDepth,
	})
	if err != nil {
		return nil, err
	}
	mx, err := NewMatrixContext(ctx, t, opt.K, opt.DP)
	if err != nil {
		return nil, err
	}
	return &Anonymizer{db: db, matrix: mx}, nil
}

// Matrix exposes the optimum configuration matrix.
func (a *Anonymizer) Matrix() *Matrix { return a.matrix }

// Tree exposes the cloaking tree.
func (a *Anonymizer) Tree() *tree.Tree { return a.matrix.Tree() }

// OptimalCost returns the optimum policy cost for the current snapshot.
func (a *Anonymizer) OptimalCost() (int64, error) { return a.matrix.OptimalCost() }

// Policy extracts an optimal policy-aware sender k-anonymous cloak
// assignment for the current snapshot.
func (a *Anonymizer) Policy() (*lbs.Assignment, error) {
	cloaks, err := a.matrix.Extract()
	if err != nil {
		return nil, err
	}
	return lbs.NewAssignment(a.db, cloaks)
}

// Move relocates one user (by record index) and incrementally maintains
// the matrix. Call Refresh after a batch of moves instead to amortize the
// recomputation.
func (a *Anonymizer) Move(i int, to geo.Point) error {
	a.db.MoveAt(i, to)
	return a.matrix.Tree().Move(int32(i), to)
}

// Refresh recomputes the matrix rows invalidated by Moves since the last
// Refresh; it returns the number of rows recomputed.
func (a *Anonymizer) Refresh() int { return a.matrix.Update() }
