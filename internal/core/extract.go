package core

import (
	"context"
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/obs"
	"policyanon/internal/tree"
)

// Extract materializes one minimum-cost policy from the optimum
// configuration matrix: a per-point cloak, point i receiving the rectangle
// of the tree node that cloaks it. This is the linear-time policy
// exhibition step described after Definition 7 (within each node, which
// particular locations it cloaks is immaterial by Lemma 1 and is chosen
// arbitrarily).
func (m *Matrix) Extract() ([]geo.Rect, error) {
	if _, err := m.OptimalCost(); err != nil {
		return nil, err
	}
	_, sp := obs.Start(m.octx(), "bulkdp.extract")
	if sp != nil {
		sp.SetInt("users", int64(m.t.Len()))
		defer sp.End()
	}
	cloaks := make([]geo.Rect, m.t.Len())
	if m.t.Len() == 0 {
		return cloaks, nil
	}
	leftover, err := m.assign(m.t.Root(), 0, cloaks)
	if err != nil {
		return nil, err
	}
	if len(leftover) != 0 {
		return nil, fmt.Errorf("core: %d locations left uncloaked at the root (internal error)", len(leftover))
	}
	return cloaks, nil
}

// assign recursively realizes the configuration chosen by the matrix for
// the subtree at id with pass-up target u. It writes cloaks for the points
// cloaked inside the subtree and returns the point indices passed up.
func (m *Matrix) assign(id tree.NodeID, u int32, cloaks []geo.Rect) ([]int32, error) {
	r := &m.rows[id]
	want := r.at(u)
	if want >= inf {
		return nil, fmt.Errorf("core: infeasible target u=%d at node %d (internal error)", u, id)
	}
	rect := m.t.Rect(id)
	if m.t.IsLeaf(id) {
		pts := m.t.LeafPoints(id)
		cloakN := int(r.d - u)
		for _, p := range pts[:cloakN] {
			cloaks[p] = rect
		}
		return pts[cloakN:], nil
	}
	children := m.t.Children(id)
	j, pick, err := m.chooseCombine(id, u, want)
	if err != nil {
		return nil, err
	}
	var passed []int32
	for ci, ch := range children {
		sub, err := m.assign(ch, pick[ci], cloaks)
		if err != nil {
			return nil, err
		}
		passed = append(passed, sub...)
	}
	if int32(len(passed)) != j {
		return nil, fmt.Errorf("core: node %d received %d points, expected j=%d (internal error)", id, len(passed), j)
	}
	cloakN := int(j - u)
	for _, p := range passed[:cloakN] {
		cloaks[p] = rect
	}
	return passed[cloakN:], nil
}

// chooseCombine re-derives, for internal node id and target pass-up u, a
// children pass-up vector and total j achieving the stored optimum
// M[id][u]. Recomputing instead of storing back-pointers keeps the matrix
// rows cost-only, halving its memory; extraction visits each node once so
// the total work matches one forward pass.
func (m *Matrix) chooseCombine(id tree.NodeID, u int32, want int64) (int32, []int32, error) {
	children := m.t.Children(id)
	rows := m.cs.rows[:0]
	for _, ch := range children {
		rows = append(rows, &m.rows[ch])
	}
	m.cs.rows = rows
	j, picks, err := resolveCombine(m.cs, rows, u, want, m.t.Area(id), m.k, m.rows[id].d)
	if err != nil {
		return 0, nil, fmt.Errorf("core: node %d: %w", id, err)
	}
	return j, picks, nil
}

// Anonymizer bundles a cloaking tree and its optimum configuration matrix
// for one snapshot, exposing the operations the CSP needs: bulk
// anonymization, incremental maintenance under movement, and policy
// extraction.
type Anonymizer struct {
	db     *location.DB
	matrix *Matrix
}

// AnonymizerOptions configures NewAnonymizer.
type AnonymizerOptions struct {
	// K is the anonymity parameter (required, >= 1).
	K int
	// Kind selects the cloaking tree; the default is the binary
	// semi-quadrant tree of Section V.
	Kind tree.Kind
	// MaxDepth bounds tree height (0 = library default).
	MaxDepth int
	// DP carries the dynamic-program ablation switches.
	DP Options
}

// NewAnonymizer builds the cloaking tree over db and runs the bulk dynamic
// program. bounds must be the square map region.
func NewAnonymizer(db *location.DB, bounds geo.Rect, opt AnonymizerOptions) (*Anonymizer, error) {
	return NewAnonymizerContext(context.Background(), db, bounds, opt)
}

// NewAnonymizerContext is NewAnonymizer with tracing: when ctx carries an
// obs.Tracer the bulk anonymization is recorded as a "bulkdp.build" span
// enclosing "tree.build" (materialization) and "bulkdp.combine" (the
// Algorithm 1 main loop); later Extract and Update calls report
// "bulkdp.extract" and "bulkdp.update" under the same trace.
func NewAnonymizerContext(ctx context.Context, db *location.DB, bounds geo.Rect, opt AnonymizerOptions) (*Anonymizer, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", opt.K)
	}
	ctx, sp := obs.Start(ctx, "bulkdp.build")
	if sp != nil {
		sp.SetInt("users", int64(db.Len()))
		sp.SetInt("k", int64(opt.K))
		defer sp.End()
	}
	t, err := tree.BuildContext(ctx, db.Points(), bounds, tree.Options{
		Kind:            opt.Kind,
		MinCountToSplit: opt.K,
		MaxDepth:        opt.MaxDepth,
	})
	if err != nil {
		return nil, err
	}
	mx, err := NewMatrixContext(ctx, t, opt.K, opt.DP)
	if err != nil {
		return nil, err
	}
	return &Anonymizer{db: db, matrix: mx}, nil
}

// Matrix exposes the optimum configuration matrix.
func (a *Anonymizer) Matrix() *Matrix { return a.matrix }

// Tree exposes the cloaking tree.
func (a *Anonymizer) Tree() *tree.Tree { return a.matrix.Tree() }

// OptimalCost returns the optimum policy cost for the current snapshot.
func (a *Anonymizer) OptimalCost() (int64, error) { return a.matrix.OptimalCost() }

// Policy extracts an optimal policy-aware sender k-anonymous cloak
// assignment for the current snapshot.
func (a *Anonymizer) Policy() (*lbs.Assignment, error) {
	cloaks, err := a.matrix.Extract()
	if err != nil {
		return nil, err
	}
	return lbs.NewAssignment(a.db, cloaks)
}

// Move relocates one user (by record index) and incrementally maintains
// the matrix. Call Refresh after a batch of moves instead to amortize the
// recomputation.
func (a *Anonymizer) Move(i int, to geo.Point) error {
	a.db.MoveAt(i, to)
	return a.matrix.Tree().Move(int32(i), to)
}

// Refresh recomputes the matrix rows invalidated by Moves since the last
// Refresh; it returns the number of rows recomputed.
func (a *Anonymizer) Refresh() int { return a.matrix.Update() }
