package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/tree"
)

// k == |D| forces a single cloaking group.
func TestKEqualsPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPts(rng, 7, 64)
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 64, 64), AnonymizerOptions{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	groups := pol.Groups()
	if len(groups) != 1 || len(groups[0].Members) != 7 {
		t.Fatalf("expected one full group, got %v", groups)
	}
	if !attacker.IsKAnonymous(pol, 7, attacker.PolicyAware) {
		t.Fatal("full-group policy breached")
	}
}

// All users co-located: the tree cannot separate them, the DP must still
// find the minimal cloak at max depth.
func TestAllUsersCoLocated(t *testing.T) {
	pts := make([]geo.Point, 20)
	for i := range pts {
		pts[i] = geo.Point{X: 37, Y: 11}
	}
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 64, 64), AnonymizerOptions{K: 5, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if !attacker.IsKAnonymous(pol, 5, attacker.PolicyAware) {
		t.Fatal("co-located policy breached")
	}
	// All cloaks must be the deepest cell containing the point.
	for i := 0; i < db.Len(); i++ {
		if !pol.CloakAt(i).Contains(geo.Point{X: 37, Y: 11}) {
			t.Fatal("cloak does not contain the shared location")
		}
	}
}

// Users on map boundary coordinates (side-1) must be handled.
func TestBoundaryUsers(t *testing.T) {
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 63, Y: 63}, {X: 0, Y: 63}, {X: 63, Y: 0}, {X: 31, Y: 31}, {X: 32, Y: 32},
	}
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 64, 64), AnonymizerOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if !attacker.IsKAnonymous(pol, 3, attacker.PolicyAware) {
		t.Fatal("boundary policy breached")
	}
}

// Duplicate coordinates among distinct users must count separately.
func TestDuplicateCoordinatesCountSeparately(t *testing.T) {
	pts := []geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 50, Y: 50}, {X: 51, Y: 51}}
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 64, 64), AnonymizerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range pol.Groups() {
		if len(g.Members) < 2 {
			t.Fatalf("group %v undersized", g)
		}
	}
}

// Property: on random instances the extracted optimal policy (a) masks,
// (b) audits clean against the policy-aware attacker, and (c) has every
// per-user cloak at least as large as the user's tightest k-covering
// binary ancestor (the per-user lower bound).
func TestOptimalPolicyProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%80
		k := 2 + int(kRaw)%6
		if n < k {
			n = k
		}
		pts := randPts(rng, n, 128)
		db := dbForQuick(pts)
		anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 128, 128), AnonymizerOptions{K: k})
		if err != nil {
			return false
		}
		pol, err := anon.Policy()
		if err != nil {
			return false
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			return false
		}
		tr := anon.Tree()
		for i := 0; i < n; i++ {
			if !pol.CloakAt(i).Contains(pts[i]) {
				return false
			}
			// tightest k-covering ancestor
			id := tr.LeafOf(int32(i))
			for tr.Count(id) < k {
				id = tr.Parent(id)
			}
			if pol.CloakAt(i).Area() < tr.Area(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func dbForQuick(pts []geo.Point) *location.DB {
	db := location.New(len(pts))
	for i, p := range pts {
		_ = db.Add("q"+itoa(i), p)
	}
	return db
}

// Incremental maintenance with co-located pile-ups: many users moving to
// the same point must not break canonical splitting.
func TestIncrementalPileUp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const side = 128
	pts := randPts(rng, 60, side)
	db := dbFor(t, pts)
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, side, side), AnonymizerOptions{K: 4, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	target := geo.Point{X: 64, Y: 64}
	for i := 0; i < 30; i++ {
		if err := anon.Move(i, target); err != nil {
			t.Fatal(err)
		}
		pts[i] = target
	}
	anon.Refresh()
	got, err := anon.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	freshTree, err := tree.Build(pts, geo.NewRect(0, 0, side, side),
		tree.Options{Kind: tree.Binary, MinCountToSplit: 4, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewMatrix(freshTree, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pile-up incremental %d != fresh %d", got, want)
	}
	if _, err := anon.Policy(); err != nil {
		t.Fatal(err)
	}
}

// Lemma 1 corollary: equivalent policies share cost, so the optimal cost
// must not depend on the insertion order of the location database.
func TestLemma1OrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	pts := randPts(rng, 70, 256)
	const k = 5
	costOf := func(order []int) int64 {
		db := location.New(len(pts))
		for _, i := range order {
			if err := db.Add("u"+itoa(i), pts[i]); err != nil {
				t.Fatal(err)
			}
		}
		anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 256, 256), AnonymizerOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		c, err := anon.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := make([]int, len(pts))
	for i := range base {
		base[i] = i
	}
	want := costOf(base)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(pts))
		if got := costOf(perm); got != want {
			t.Fatalf("trial %d: cost %d differs from %d under permutation", trial, got, want)
		}
	}
}
