package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"policyanon/internal/tree"
)

// This file implements the parallel bottom-up pass of the dynamic program
// (Options.Workers): independent sibling subtrees are computed
// concurrently on a bounded work-stealing pool. Scheduling is by
// dependency countdown — every node starts with its child count pending,
// leaves are immediately ready, and the worker that finishes a node's last
// child enqueues the parent onto its own deque. Idle workers steal from
// the head of a victim's deque (FIFO), keeping stolen work coarse: the
// oldest entries are the roots of the largest untouched subtrees.
//
// Correctness does not depend on the schedule. computeRow(id) reads only
// the finished rows of id's children; the atomic pending countdown gives
// the release/acquire edge (Go memory model, sync/atomic) between the
// child's row being written and the parent observing the count hit zero.
// Every schedule therefore computes exactly the rows the sequential
// PostOrder does, in some children-first order — the golden parity tests
// assert bit-identical output.

// workerStats counts one DP worker's contribution, reported on the
// bulkdp.combine span.
type workerStats struct {
	nodes  int64 // rows this worker computed
	steals int64 // tasks taken from another worker's deque
}

// dpWorker is one worker's deque. Push and pop operate on the tail
// (LIFO, cache-warm, parent-after-children); steal takes from the head.
// A mutex keeps the implementation obviously correct; the DP's unit of
// work (a full combine) is large enough that lock traffic is noise.
type dpWorker struct {
	mu sync.Mutex
	q  []tree.NodeID
}

func (w *dpWorker) push(id tree.NodeID) {
	w.mu.Lock()
	w.q = append(w.q, id)
	w.mu.Unlock()
}

func (w *dpWorker) pop() (tree.NodeID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.q); n > 0 {
		id := w.q[n-1]
		w.q = w.q[:n-1]
		return id, true
	}
	return tree.None, false
}

func (w *dpWorker) steal() (tree.NodeID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) > 0 {
		id := w.q[0]
		w.q = w.q[1:]
		return id, true
	}
	return tree.None, false
}

// computeAllParallel runs the bottom-up pass on nw workers and returns
// their per-worker statistics. The caller has already decided nw > 1.
func (m *Matrix) computeAllParallel(nw int) []workerStats {
	// Pre-size shared storage: workers index m.rows and pending by NodeID
	// and must never grow a shared slice concurrently.
	cap := m.t.NodeCap()
	m.ensureRows(cap)
	pending := make([]int32, cap)

	// Seed: one PostOrder pass records each live node's child count and
	// deals the ready nodes (leaves) round-robin across the deques.
	workers := make([]*dpWorker, nw)
	for i := range workers {
		workers[i] = new(dpWorker)
	}
	total := int64(0)
	next := 0
	m.t.PostOrder(func(id tree.NodeID) {
		total++
		if n := int32(len(m.t.Children(id))); n > 0 {
			pending[id] = n
		} else {
			workers[next%nw].push(id)
			next++
		}
	})
	if total == 0 {
		return nil
	}

	stats := make([]workerStats, nw)
	var remaining atomic.Int64
	remaining.Store(total)
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(nw)
	for i := 0; i < nw; i++ {
		go func(self int) {
			defer wg.Done()
			cs := getScratch(m.t.Len() + 1)
			defer putScratch(cs)
			st := &stats[self]
			for {
				id, ok := workers[self].pop()
				if !ok {
					// Deque empty: scan the other workers for work.
					for off := 1; off < nw && !ok; off++ {
						if id, ok = workers[(self+off)%nw].steal(); ok {
							st.steals++
						}
					}
				}
				if !ok {
					select {
					case <-done:
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				m.computeRow(cs, id)
				st.nodes++
				if p := m.t.Parent(id); p != tree.None {
					if atomic.AddInt32(&pending[p], -1) == 0 {
						workers[self].push(p)
					}
				}
				if remaining.Add(-1) == 0 {
					close(done)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	return stats
}
