package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"policyanon/internal/tree"
)

// This file implements the parallel bottom-up pass of the dynamic program
// (Options.Workers) with granularity-adaptive scheduling: instead of one
// task per tree node (whose combine is often a handful of microseconds —
// too fine to amortize deque traffic and cross-worker cache misses), the
// tree is partitioned into subtree-sized tasks by a sequential cutoff,
// the classic fork/join threshold. A node whose estimated subtree work is
// at or below the cutoff becomes ONE task computed sequentially by a
// single worker (cache-warm, zero scheduling overhead inside); only nodes
// above the cutoff are split, their row combined as a dedicated task once
// the child subtrees finish.
//
// Work is estimated per node as |row| × max(1, children) — the dense row
// length bound(m)+1 of the Section V combine times the child count it
// folds — and summed bottom-up into subtree weights. The cutoff
// auto-tunes to totalWeight / (workers × tasksPerWorker), floored at
// minTaskWeight, so a pass yields on the order of tasksPerWorker stealable
// tasks per worker regardless of tree shape (Options.TaskCutoff overrides
// the auto-tuned value; see docs/PERFORMANCE.md).
//
// Scheduling is by dependency countdown over SPLIT nodes only: every
// split node starts with its child count pending; the worker that
// finishes a split node's last child task enqueues the split node onto
// its own deque. Idle workers steal from the head of a victim's deque
// (FIFO), keeping stolen work coarse. Workers, deques, per-worker combine
// scratch arenas, and all index buffers live in a dpPool retained by the
// Matrix across passes, so a warm parallel Recompute allocates nothing —
// the pool's goroutines park between passes and are torn down by a
// runtime.AddCleanup when the Matrix is collected.
//
// Correctness does not depend on the schedule. computeRow(id) reads only
// the finished rows of id's children; the atomic pending countdown gives
// the release/acquire edge (Go memory model, sync/atomic) between a child
// subtree's rows being written and the split parent observing the count
// hit zero. Every schedule therefore computes exactly the rows the
// sequential PostOrder does, in some children-first order — the golden
// parity tests assert bit-identical output.

const (
	// tasksPerWorker targets how many stealable tasks the cutoff should
	// yield per worker: enough slack for work stealing to balance skewed
	// trees, few enough that per-task overhead stays noise.
	tasksPerWorker = 8
	// minTaskWeight floors the auto-tuned cutoff: below this much
	// estimated combine work, a task is too small to pay for its own
	// scheduling (deque push/pop plus a possible steal).
	minTaskWeight = 256
)

// workerStats counts one DP worker's contribution, reported on the
// bulkdp.combine span.
type workerStats struct {
	nodes  int64 // rows this worker computed
	tasks  int64 // tasks (subtrees or split-node combines) this worker ran
	steals int64 // tasks taken from another worker's deque
}

// dpWorker is one worker's deque. Push and pop operate on the tail
// (LIFO, cache-warm, parent-after-children); steal takes from the head.
// A mutex keeps the implementation obviously correct; the unit of work (a
// whole subtree, or a split node's combine) is large enough that lock
// traffic is noise.
type dpWorker struct {
	mu   sync.Mutex
	q    []tree.NodeID
	head int // first live entry; stealing advances it instead of reslicing,
	// so the deque keeps its full backing array across passes (reslicing
	// q[1:] would leak front capacity and force reallocation every pass).
}

func (w *dpWorker) push(id tree.NodeID) {
	w.mu.Lock()
	w.q = append(w.q, id)
	w.mu.Unlock()
}

func (w *dpWorker) pop() (tree.NodeID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.q); n > w.head {
		id := w.q[n-1]
		w.q = w.q[:n-1]
		if len(w.q) == w.head {
			w.q, w.head = w.q[:0], 0
		}
		return id, true
	}
	return tree.None, false
}

func (w *dpWorker) steal() (tree.NodeID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q) > w.head {
		id := w.q[w.head]
		w.head++
		if len(w.q) == w.head {
			w.q, w.head = w.q[:0], 0
		}
		return id, true
	}
	return tree.None, false
}

// dpPool is a Matrix's persistent worker pool: nw parked goroutines plus
// every buffer a pass needs, reused across Recompute calls so the warm
// steady state allocates nothing. The pool must not reference the Matrix
// between passes (cur is cleared after each pass): the Matrix's cleanup —
// registered via runtime.AddCleanup — stops the goroutines once the
// Matrix is unreachable, and a cleanup never runs while its argument can
// reach the object it watches.
type dpPool struct {
	nw       int
	workers  []*dpWorker
	scratch  []*combineScratch
	stats    []workerStats
	stopOnce sync.Once

	// Per-pass state, written by the coordinator before waking the
	// workers (the channel sends give the happens-before edge).
	cur       *Matrix
	cutoff    int64
	pending   []int32 // per split node: children tasks outstanding
	wsub      []int64 // per node: estimated subtree work
	remaining atomic.Int64
	passDone  atomic.Bool

	// Coordinator-owned traversal buffers (weights + seeding).
	order []tree.NodeID // DFS preorder of the whole tree
	size  []int32       // per node: subtree node count (skip width in order)

	// Per-worker subtree traversal buffers.
	stk [][]tree.NodeID
	ord [][]tree.NodeID

	wake  []chan struct{}
	donec chan struct{}
	done  atomic.Int32 // workers still to park after the current pass
	quit  chan struct{}
}

// newDPPool starts nw parked worker goroutines.
func newDPPool(nw int) *dpPool {
	p := &dpPool{
		nw:      nw,
		workers: make([]*dpWorker, nw),
		scratch: make([]*combineScratch, nw),
		stats:   make([]workerStats, nw),
		stk:     make([][]tree.NodeID, nw),
		ord:     make([][]tree.NodeID, nw),
		wake:    make([]chan struct{}, nw),
		donec:   make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	for i := 0; i < nw; i++ {
		p.workers[i] = new(dpWorker)
		p.scratch[i] = new(combineScratch)
		p.wake[i] = make(chan struct{}, 1)
	}
	for i := 0; i < nw; i++ {
		go p.work(i)
	}
	return p
}

// stop tears the pool's goroutines down. Idempotent: a pool replaced by
// a width change is stopped eagerly AND by the Matrix cleanup.
func (p *dpPool) stop() { p.stopOnce.Do(func() { close(p.quit) }) }

// work is one persistent worker: park, run a pass, signal, park again.
func (p *dpPool) work(self int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake[self]:
		}
		p.runPass(self)
		if p.done.Add(-1) == 0 {
			p.donec <- struct{}{}
		}
	}
}

// pool returns the Matrix's persistent pool for nw workers, (re)building
// it when the width changes. The cleanup is re-registered per pool; stale
// pools are stopped eagerly so their goroutines never outlive a resize.
func (m *Matrix) pool(nw int) *dpPool {
	if m.dp != nil && m.dp.nw == nw {
		return m.dp
	}
	if m.dp != nil {
		m.dp.stop()
	}
	m.dp = newDPPool(nw)
	runtime.AddCleanup(m, func(p *dpPool) { p.stop() }, m.dp)
	return m.dp
}

// computeAllParallel runs the bottom-up pass on nw workers and returns
// their per-worker statistics. The caller has already decided nw > 1.
func (m *Matrix) computeAllParallel(nw int) []workerStats {
	p := m.pool(nw)

	// Pre-size shared storage: workers index m.rows, pending, and wsub by
	// NodeID and must never grow a shared slice concurrently.
	nodeCap := m.t.NodeCap()
	m.ensureRows(nodeCap)
	p.pending = growInt32(p.pending, nodeCap)
	p.wsub = growInt64(p.wsub, nodeCap)
	p.size = growInt32(p.size, nodeCap)
	foldLen := m.t.Len() + 1
	for _, cs := range p.scratch {
		cs.ensurePass(foldLen)
	}

	// One DFS records the preorder and, walking it backwards (children
	// before parents), the per-node subtree weights and sizes the cutoff
	// partition needs. No closures: the buffers persist on the pool.
	order := p.order[:0]
	stack := p.stk[0][:0]
	stack = append(stack, m.t.Root())
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, id)
		for _, c := range m.t.Children(id) {
			stack = append(stack, c)
		}
	}
	p.order, p.stk[0] = order, stack[:0]
	total := int64(len(order))
	if total == 0 {
		return nil
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		children := m.t.Children(id)
		w := m.nodeWeight(id, len(children))
		sz := int32(1)
		for _, c := range children {
			w += p.wsub[c]
			sz += p.size[c]
		}
		p.wsub[id] = w
		p.size[id] = sz
	}

	// Auto-tune the sequential cutoff (unless pinned by Options) and
	// partition: walking the preorder, a node at or below the cutoff (or
	// a leaf) seals its whole subtree into one task — skip its descendants
	// via the size table — while a node above it splits, arming the
	// dependency countdown with its child count.
	cutoff := m.opt.TaskCutoff
	if cutoff <= 0 {
		cutoff = p.wsub[m.t.Root()] / int64(nw*tasksPerWorker)
		if cutoff < minTaskWeight {
			cutoff = minTaskWeight
		}
	}
	p.cutoff = cutoff
	tasks := int64(0)
	next := 0
	for i := 0; i < len(order); {
		id := order[i]
		if p.wsub[id] <= cutoff || m.t.IsLeaf(id) {
			p.workers[next%nw].push(id)
			next++
			tasks++
			i += int(p.size[id])
		} else {
			p.pending[id] = int32(len(m.t.Children(id)))
			tasks++ // the split node's own combine is a task too
			i++
		}
	}

	for i := range p.stats {
		p.stats[i] = workerStats{}
	}
	p.cur = m
	p.remaining.Store(tasks)
	p.passDone.Store(false)
	p.done.Store(int32(nw))
	for i := 0; i < nw; i++ {
		p.wake[i] <- struct{}{}
	}
	<-p.donec
	p.cur = nil
	return p.stats
}

// nodeWeight estimates one node's combine cost: the dense row length it
// must fill times the child rows folded into it (1 for leaves, whose row
// is a single linear fill).
func (m *Matrix) nodeWeight(id tree.NodeID, nchildren int) int64 {
	w := int64(m.bound(id)) + 2 // +2: the implicit d(m) entry, and ≥1 for empty rows
	if nchildren > 1 {
		w *= int64(nchildren)
	}
	return w
}

// runPass is one worker's participation in one pass: drain tasks —
// popping locally, stealing when dry — until every task has run.
func (p *dpPool) runPass(self int) {
	m := p.cur
	nw := p.nw
	cs := p.scratch[self]
	st := &p.stats[self]
	for {
		id, ok := p.workers[self].pop()
		if !ok {
			// Deque empty: scan the other workers for work.
			for off := 1; off < nw && !ok; off++ {
				if id, ok = p.workers[(self+off)%nw].steal(); ok {
					st.steals++
				}
			}
		}
		if !ok {
			if p.passDone.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		if p.wsub[id] > p.cutoff && !m.t.IsLeaf(id) {
			// A split node whose children all finished: one combine.
			m.computeRow(cs, id)
			st.nodes++
		} else {
			st.nodes += p.runSubtree(m, cs, self, id)
		}
		st.tasks++
		if par := m.t.Parent(id); par != tree.None {
			if atomic.AddInt32(&p.pending[par], -1) == 0 {
				p.workers[self].push(par)
			}
		}
		if p.remaining.Add(-1) == 0 {
			p.passDone.Store(true)
			return
		}
	}
}

// runSubtree computes every row of one sealed subtree sequentially,
// children first, and returns the node count. The traversal is iterative
// over per-worker buffers (a DFS preorder replayed backwards is a valid
// children-first order), so a warm pass allocates nothing.
func (p *dpPool) runSubtree(m *Matrix, cs *combineScratch, self int, root tree.NodeID) int64 {
	stk := p.stk[self][:0]
	ord := p.ord[self][:0]
	stk = append(stk, root)
	for len(stk) > 0 {
		id := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		ord = append(ord, id)
		for _, c := range m.t.Children(id) {
			stk = append(stk, c)
		}
	}
	for i := len(ord) - 1; i >= 0; i-- {
		m.computeRow(cs, ord[i])
	}
	p.stk[self], p.ord[self] = stk[:0], ord
	return int64(len(ord))
}

// growInt32 extends s to at least n entries, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	grown := make([]int32, n)
	copy(grown, s)
	return grown
}

// growInt64 extends s to at least n entries, reusing capacity.
func growInt64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	grown := make([]int64, n)
	copy(grown, s)
	return grown
}
