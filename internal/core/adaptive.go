package core

import (
	"fmt"
	"sort"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/tree"
)

// This file implements the run-time orientation variant the paper sketches
// in Section V: "one could choose dynamically between horizontal or
// vertical semi-quadrants at run-time, while for simplicity we statically
// partition quadrants into vertical semi-quadrants only."
//
// The adaptive dynamic program works over the quad tree but lets every
// square choose, independently, whether its semi-quadrant layer splits
// vertically (west/east) or horizontally (south/north). Because the four
// grandchild quadrants are the same under both orientations, the search
// space is a DAG over the quad nodes and the per-square choice is just an
// element-wise minimum of two candidate rows. The result is never worse
// than the static vertical binary tree, at roughly twice the combine work.

// AdaptiveMatrix is the optimum configuration matrix of the adaptive-
// orientation policy family.
type AdaptiveMatrix struct {
	t    *tree.Tree // quad tree
	k    int
	opt  Options
	rows []row // square rows after the orientation minimum
	cs   *combineScratch
}

// NewAdaptiveMatrix runs the adaptive DP over a quad tree (tree.Quad with
// MinCountToSplit == k).
func NewAdaptiveMatrix(t *tree.Tree, k int, opt Options) (*AdaptiveMatrix, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if t.Kind() != tree.Quad {
		return nil, fmt.Errorf("core: adaptive matrix requires a quad tree, got %v", t.Kind())
	}
	m := &AdaptiveMatrix{t: t, k: k, opt: opt, cs: getScratch(t.Len() + 1)}
	t.PostOrder(func(id tree.NodeID) { m.computeRow(id) })
	return m, nil
}

// Tree returns the underlying quad tree.
func (m *AdaptiveMatrix) Tree() *tree.Tree { return m.t }

// bound mirrors Matrix.bound using binary-equivalent heights: a square at
// quad height q sits at binary height 2q, its semi-quadrants at 2q+1.
func (m *AdaptiveMatrix) boundFor(d int, binHeight int) int32 {
	if d < m.k {
		return -1
	}
	b := d - m.k
	if !m.opt.NoPrune {
		if lim := (m.k + 1) * binHeight; lim < b {
			b = lim
		}
	}
	return int32(b)
}

// combineRows folds child rows and derives a node row with the given
// geometry.
func (m *AdaptiveMatrix) combineRows(children []*row, d int, bound int32, area int64) row {
	r := row{d: int32(d), bound: bound}
	if bound < 0 {
		return r
	}
	r.costs = make([]int64, bound+1)
	p := foldRows(m.cs, children, nil)
	rowFromProfile(m.cs, &r, p.js, p.costs, area, m.k)
	return r
}

// semiPair describes one orientation's semi-quadrant layer.
type semiPair struct {
	rects [2]geo.Rect
	// kids[i] lists the two quadrant-child positions under rects[i],
	// indexed into the SW,SE,NW,NE child order of geo.Rect.Quadrants.
	kids [2][2]int
}

// orientations returns the vertical and horizontal semi layers of a square.
func orientations(rect geo.Rect) [2]semiPair {
	return [2]semiPair{
		{ // vertical: west = SW+NW, east = SE+NE
			rects: [2]geo.Rect{rect.WestHalf(), rect.EastHalf()},
			kids:  [2][2]int{{0, 2}, {1, 3}},
		},
		{ // horizontal: south = SW+SE, north = NW+NE
			rects: [2]geo.Rect{rect.SouthHalf(), rect.NorthHalf()},
			kids:  [2][2]int{{0, 1}, {2, 3}},
		},
	}
}

// squareRowFor computes the square's row under one orientation, returning
// also the two semi rows (used by extraction).
func (m *AdaptiveMatrix) squareRowFor(id tree.NodeID, o semiPair) (square row, semis [2]row) {
	children := m.t.Children(id)
	qh := m.t.Height(id)
	for s := 0; s < 2; s++ {
		a, b := children[o.kids[s][0]], children[o.kids[s][1]]
		d := m.t.Count(a) + m.t.Count(b)
		semis[s] = m.combineRows(
			[]*row{&m.rows[a], &m.rows[b]},
			d, m.boundFor(d, 2*qh+1), o.rects[s].Area(),
		)
	}
	d := m.t.Count(id)
	square = m.combineRows(
		[]*row{&semis[0], &semis[1]},
		d, m.boundFor(d, 2*qh), m.t.Area(id),
	)
	return square, semis
}

func (m *AdaptiveMatrix) ensureRow(id tree.NodeID) *row {
	for int(id) >= len(m.rows) {
		m.rows = append(m.rows, row{})
	}
	return &m.rows[id]
}

func (m *AdaptiveMatrix) computeRow(id tree.NodeID) {
	r := m.ensureRow(id)
	d := m.t.Count(id)
	r.d = int32(d)
	r.bound = m.boundFor(d, 2*m.t.Height(id))
	if r.bound < 0 {
		r.costs = r.costs[:0]
		return
	}
	area := m.t.Area(id)
	if m.t.IsLeaf(id) {
		r.costs = make([]int64, r.bound+1)
		for u := int32(0); u <= r.bound; u++ {
			r.costs[u] = int64(r.d-u) * area
		}
		return
	}
	os := orientations(m.t.Rect(id))
	v, _ := m.squareRowFor(id, os[0])
	h, _ := m.squareRowFor(id, os[1])
	// Element-wise orientation minimum; both candidates share d and bound.
	r.costs = make([]int64, r.bound+1)
	for u := int32(0); u <= r.bound; u++ {
		r.costs[u] = v.at(u)
		if c := h.at(u); c < r.costs[u] {
			r.costs[u] = c
		}
	}
}

// OptimalCost returns the adaptive-orientation optimum.
func (m *AdaptiveMatrix) OptimalCost() (int64, error) {
	root := m.t.Root()
	if m.t.Count(root) == 0 {
		return 0, nil
	}
	if m.t.Count(root) < m.k {
		return 0, fmt.Errorf("%w: |D|=%d, k=%d", ErrInsufficientUsers, m.t.Count(root), m.k)
	}
	c := m.rows[root].at(0)
	if c >= inf {
		return 0, fmt.Errorf("core: no complete adaptive configuration (internal error)")
	}
	return c, nil
}

// Extract materializes a minimum-cost adaptive policy: per-point cloaks
// drawn from squares and per-square-chosen semi-quadrants.
func (m *AdaptiveMatrix) Extract() ([]geo.Rect, error) {
	if _, err := m.OptimalCost(); err != nil {
		return nil, err
	}
	cloaks := make([]geo.Rect, m.t.Len())
	if m.t.Len() == 0 {
		return cloaks, nil
	}
	leftover, err := m.assign(m.t.Root(), 0, cloaks)
	if err != nil {
		return nil, err
	}
	if len(leftover) != 0 {
		return nil, fmt.Errorf("core: %d locations uncloaked at the adaptive root (internal error)", len(leftover))
	}
	return cloaks, nil
}

func (m *AdaptiveMatrix) assign(id tree.NodeID, u int32, cloaks []geo.Rect) ([]int32, error) {
	r := &m.rows[id]
	want := r.at(u)
	if want >= inf {
		return nil, fmt.Errorf("core: infeasible adaptive target u=%d at node %d (internal error)", u, id)
	}
	rect := m.t.Rect(id)
	if m.t.IsLeaf(id) {
		pts := m.t.LeafPoints(id)
		cloakN := int(r.d - u)
		for _, p := range pts[:cloakN] {
			cloaks[p] = rect
		}
		return pts[cloakN:], nil
	}
	// Re-derive the orientation achieving the optimum at this target.
	children := m.t.Children(id)
	var chosen semiPair
	var square row
	var semis [2]row
	found := false
	for _, o := range orientations(rect) {
		sq, sm := m.squareRowFor(id, o)
		if sq.at(u) == want {
			chosen, square, semis, found = o, sq, sm, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: no orientation reproduces adaptive M[%d][%d] (internal error)", id, u)
	}
	_ = square
	// Square level: split u across the two semis.
	jSq, semiPicks, err := resolveCombine(m.cs, []*row{&semis[0], &semis[1]}, u, want, m.t.Area(id), m.k, r.d)
	if err != nil {
		return nil, err
	}
	var passed []int32
	for s := 0; s < 2; s++ {
		// Semi level: split the semi's target across its two quadrants.
		a, b := children[chosen.kids[s][0]], children[chosen.kids[s][1]]
		semiWant := semis[s].at(semiPicks[s])
		jSemi, kidPicks, err := resolveCombine(m.cs,
			[]*row{&m.rows[a], &m.rows[b]},
			semiPicks[s], semiWant, chosen.rects[s].Area(), m.k, semis[s].d)
		if err != nil {
			return nil, err
		}
		subA, err := m.assign(a, kidPicks[0], cloaks)
		if err != nil {
			return nil, err
		}
		subB, err := m.assign(b, kidPicks[1], cloaks)
		if err != nil {
			return nil, err
		}
		semiPassed := append(subA, subB...)
		if int32(len(semiPassed)) != jSemi {
			return nil, fmt.Errorf("core: semi received %d points, expected %d (internal error)", len(semiPassed), jSemi)
		}
		cloakN := int(jSemi - semiPicks[s])
		for _, p := range semiPassed[:cloakN] {
			cloaks[p] = chosen.rects[s]
		}
		passed = append(passed, semiPassed[cloakN:]...)
	}
	if int32(len(passed)) != jSq {
		return nil, fmt.Errorf("core: square received %d points, expected %d (internal error)", len(passed), jSq)
	}
	cloakN := int(jSq - u)
	for _, p := range passed[:cloakN] {
		cloaks[p] = rect
	}
	return passed[cloakN:], nil
}

// Update incrementally refreshes the adaptive matrix after tree mutations,
// mirroring Matrix.Update: dirty rows and their ancestors are recomputed
// children-first.
func (m *AdaptiveMatrix) Update() int {
	dirty := m.t.TakeDirty()
	if len(dirty) == 0 {
		return 0
	}
	affected := make(map[tree.NodeID]struct{})
	for _, id := range dirty {
		for n := id; n != tree.None; n = m.t.Parent(n) {
			if _, ok := affected[n]; ok {
				break
			}
			affected[n] = struct{}{}
		}
	}
	order := make([]tree.NodeID, 0, len(affected))
	for id := range affected {
		order = append(order, id)
	}
	sort.Slice(order, func(a, b int) bool {
		return m.t.Height(order[a]) > m.t.Height(order[b])
	})
	for _, id := range order {
		m.computeRow(id)
	}
	return len(order)
}

// AdaptivePolicy is the convenience wrapper: build the quad tree, run the
// adaptive-orientation DP, and extract the policy as an assignment.
func AdaptivePolicy(db *location.DB, bounds geo.Rect, k int, opt Options) (*lbs.Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	t, err := tree.Build(db.Points(), bounds, tree.Options{Kind: tree.Quad, MinCountToSplit: k})
	if err != nil {
		return nil, err
	}
	m, err := NewAdaptiveMatrix(t, k, opt)
	if err != nil {
		return nil, err
	}
	cloaks, err := m.Extract()
	if err != nil {
		return nil, err
	}
	return lbs.NewAssignment(db, cloaks)
}

// resolveCombine re-derives, for a node with the given child rows, a child
// pass-up vector and total j achieving value want at target u. Shared by
// the static and adaptive extractions.
func resolveCombine(cs *combineScratch, rows []*row, u int32, want int64, area int64, k int, dTotal int32) (int32, []int32, error) {
	if u == dTotal && want == 0 {
		picks := make([]int32, len(rows))
		for i, rc := range rows {
			picks[i] = rc.d
		}
		return u, picks, nil
	}
	var prefixes []profile
	final := foldRows(cs, rows, &prefixes)
	targetJ, targetCost := int32(-1), inf
	for i, j := range final.js {
		var total int64
		switch {
		case j == u:
			total = final.costs[i]
		case j >= u+int32(k):
			total = final.costs[i] + int64(j-u)*area
		default:
			continue
		}
		if total == want {
			targetJ, targetCost = j, final.costs[i]
			break
		}
	}
	if targetJ < 0 {
		return 0, nil, fmt.Errorf("core: no combine reproduces target u=%d want=%d (internal error)", u, want)
	}
	picks := make([]int32, len(rows))
	j, cost := targetJ, targetCost
	for ci := len(rows) - 1; ci >= 1; ci-- {
		prev := &prefixes[ci-1]
		found := false
		rows[ci].each(func(cu int32, cc int64) {
			if found || cu > j {
				return
			}
			if prev.at(j-cu)+cc == cost {
				picks[ci] = cu
				j -= cu
				cost -= cc
				found = true
			}
		})
		if !found {
			return 0, nil, fmt.Errorf("core: backtrack failed at child %d (internal error)", ci)
		}
	}
	if rows[0].at(j) != cost {
		return 0, nil, fmt.Errorf("core: backtrack residue mismatch (internal error)")
	}
	picks[0] = j
	return targetJ, picks, nil
}
