package core

import (
	"context"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/obs"
	"policyanon/internal/workload"
)

// TestSpanTaxonomyStable locks the phase names and nesting the docs and
// dashboards depend on: a traced build emits bulkdp.build containing
// tree.build and bulkdp.combine; Policy emits bulkdp.extract and Update
// emits bulkdp.update, both nested under the build span.
func TestSpanTaxonomyStable(t *testing.T) {
	db := workload.Generate(workload.Config{
		MapSide: 1 << 10, Intersections: 50, UsersPerIntersection: 4, SpreadSigma: 20,
	}, 3)
	bounds := geo.NewRect(0, 0, 1<<10, 1<<10)

	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	anon, err := NewAnonymizerContext(ctx, db, bounds, AnonymizerOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Policy(); err != nil {
		t.Fatal(err)
	}
	// Move user 0 to the opposite corner so leaves really change and the
	// incremental maintenance has rows to recompute.
	rec := db.At(0)
	if err := anon.Move(0, geo.Point{X: (1<<10 - 1) - rec.Loc.X, Y: (1<<10 - 1) - rec.Loc.Y}); err != nil {
		t.Fatal(err)
	}
	if n := anon.Refresh(); n == 0 {
		t.Fatal("Refresh recomputed no rows after a cross-map move")
	}
	if _, err := anon.Policy(); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Spans()
	byName := make(map[string][]obs.SpanRecord)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{
		"bulkdp.build", "tree.build", "bulkdp.combine", "bulkdp.extract", "bulkdp.update",
	} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %q span recorded (got %v)", name, names(spans))
		}
	}
	build := byName["bulkdp.build"][0]
	// tree.build and bulkdp.combine are direct children of bulkdp.build and
	// temporally contained in it.
	for _, name := range []string{"tree.build", "bulkdp.combine"} {
		child := byName[name][0]
		if child.Parent != build.ID {
			t.Errorf("%s parent = %d, want bulkdp.build (%d)", name, child.Parent, build.ID)
		}
		if child.Start < build.Start || child.Start+child.Dur > build.Start+build.Dur {
			t.Errorf("%s [%v,%v) not contained in bulkdp.build [%v,%v)",
				name, child.Start, child.Start+child.Dur, build.Start, build.Start+build.Dur)
		}
	}
	// extract and update nest under the build span even though they run
	// after it ended (the anonymizer remembers its build context).
	for _, name := range []string{"bulkdp.extract", "bulkdp.update"} {
		for _, s := range byName[name] {
			if s.Parent != build.ID {
				t.Errorf("%s parent = %d, want bulkdp.build (%d)", name, s.Parent, build.ID)
			}
		}
	}
	// Aggregates track the same taxonomy, with extract counted twice (one
	// per Policy call: first fresh, then after the incremental update).
	stats := tracer.PhaseSummary()
	counts := make(map[string]int64)
	for _, st := range stats {
		counts[st.Name] = st.Count
	}
	if counts["bulkdp.build"] != 1 || counts["bulkdp.update"] != 1 {
		t.Errorf("aggregate counts %v", counts)
	}
	if counts["bulkdp.extract"] != 2 {
		t.Errorf("bulkdp.extract count = %d, want 2", counts["bulkdp.extract"])
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
