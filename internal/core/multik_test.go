package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"policyanon/internal/geo"
)

func TestMultiKBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	pts := randPts(rng, 60, 256)
	db := dbFor(t, pts)
	ks := make([]int, db.Len())
	for i := range ks {
		ks[i] = []int{2, 5, 10}[i%3]
	}
	pol, err := MultiKPolicy(db, geo.NewRect(0, 0, 256, 256), ks, AnonymizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := MultiKAudit(pol, ks); len(v) != 0 {
		t.Fatalf("violated users: %v", v)
	}
	// Every cloak masks its user.
	for i := 0; i < db.Len(); i++ {
		if !pol.CloakAt(i).Contains(db.At(i).Loc) {
			t.Fatalf("cloak of %d does not mask", i)
		}
	}
}

func TestMultiKUniformMatchesSingleK(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randPts(rng, 80, 256)
	db := dbFor(t, pts)
	const k = 7
	ks := make([]int, db.Len())
	for i := range ks {
		ks[i] = k
	}
	multi, err := MultiKPolicy(db, geo.NewRect(0, 0, 256, 256), ks, AnonymizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, 256, 256), AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	single, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost() != single.Cost() {
		t.Fatalf("uniform multi-k cost %d != single-k cost %d", multi.Cost(), single.Cost())
	}
}

func TestMultiKUnderfullBucketPromotes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randPts(rng, 20, 128)
	db := dbFor(t, pts)
	// One user asks k=3 (bucket underfull: only 1 member) and must be
	// promoted into the k=5 bucket.
	ks := make([]int, db.Len())
	for i := range ks {
		ks[i] = 5
	}
	ks[7] = 3
	pol, err := MultiKPolicy(db, geo.NewRect(0, 0, 128, 128), ks, AnonymizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := MultiKAudit(pol, ks); len(v) != 0 {
		t.Fatalf("violated users: %v", v)
	}
	// The promoted user actually enjoys the stronger guarantee.
	size := 0
	for i := 0; i < db.Len(); i++ {
		if pol.CloakAt(i) == pol.CloakAt(7) {
			size++
		}
	}
	if size < 5 {
		t.Fatalf("promoted user's group has %d < 5 members", size)
	}
}

func TestMultiKTopBucketAbsorbsDownward(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randPts(rng, 12, 128)
	db := dbFor(t, pts)
	// Two users ask k=10 — too few for their own bucket — so the top
	// bucket absorbs the k=2 users and anonymizes everyone at k=10.
	ks := make([]int, db.Len())
	for i := range ks {
		ks[i] = 2
	}
	ks[0], ks[1] = 10, 10
	pol, err := MultiKPolicy(db, geo.NewRect(0, 0, 128, 128), ks, AnonymizerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := MultiKAudit(pol, ks); len(v) != 0 {
		t.Fatalf("violated users: %v", v)
	}
	for _, g := range pol.Groups() {
		if len(g.Members) < 10 {
			t.Fatalf("absorbed bucket produced group of %d < 10", len(g.Members))
		}
	}
}

func TestMultiKErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randPts(rng, 5, 64)
	db := dbFor(t, pts)
	bounds := geo.NewRect(0, 0, 64, 64)
	if _, err := MultiKPolicy(db, bounds, []int{2, 2}, AnonymizerOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MultiKPolicy(db, bounds, []int{2, 2, 0, 2, 2}, AnonymizerOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := MultiKPolicy(db, bounds, []int{2, 2, 2, 2, 9}, AnonymizerOptions{}); !errors.Is(err, ErrInsufficientUsers) {
		t.Errorf("max k > |D|: got %v", err)
	}
}

func TestMultiKEmpty(t *testing.T) {
	db := dbFor(t, nil)
	pol, err := MultiKPolicy(db, geo.NewRect(0, 0, 64, 64), nil, AnonymizerOptions{})
	if err != nil || pol.Len() != 0 {
		t.Fatalf("empty multi-k: %v %v", pol, err)
	}
}

// Property: random k assignments always audit clean.
func TestMultiKProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(nRaw)%60
		pts := randPts(rng, n, 256)
		db := dbForQuick(pts)
		ks := make([]int, n)
		for i := range ks {
			ks[i] = 2 + rng.Intn(5)
		}
		pol, err := MultiKPolicy(db, geo.NewRect(0, 0, 256, 256), ks, AnonymizerOptions{})
		if err != nil {
			return false
		}
		return len(MultiKAudit(pol, ks)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
