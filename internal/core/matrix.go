package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"

	"policyanon/internal/geo"
	"policyanon/internal/obs"
	"policyanon/internal/tree"
)

// inf is the unreachable-cost sentinel; kept well below MaxInt64 so that
// guarded additions cannot overflow.
const inf int64 = math.MaxInt64 / 4

// Options tunes the dynamic program. The zero value selects the fully
// optimized algorithm of Section V; the flags disable individual
// optimizations to recover the first-cut Bulk_dp of Algorithm 1 for
// correctness cross-checks and ablation benchmarks.
type Options struct {
	// NoPrune disables the Lemma 5 pass-up bound F'(m) =
	// [0..(k+1)h(m)] ∪ {d(m)}, reverting to F(m) = [0..d(m)-k] ∪ {d(m)}.
	NoPrune bool
	// NaiveCombine disables the two-stage temp-profile combine of
	// Section V and enumerates child pass-up tuples directly, as the
	// first-cut Algorithm 1 does (O(|D|^2) per binary node, O(|D|^4) per
	// quad node instead of O((kh)^2)).
	NaiveCombine bool
	// Workers selects intra-tree parallelism for the bottom-up pass: the
	// configuration matrix of independent sibling subtrees is computed on
	// a bounded work-stealing pool, leaf to root. The parallel schedule
	// computes exactly the same rows as the sequential one (each row
	// depends only on its children's finished rows), so results are
	// bit-identical regardless of the value.
	//
	// 0 selects automatic mode: GOMAXPROCS workers when the tree is large
	// enough to amortize pool startup, sequential otherwise. 1 forces the
	// sequential path. Values above 1 request exactly that many workers
	// even on small trees (capped at the node count).
	Workers int
	// TaskCutoff pins the fork/join sequential cutoff of the parallel
	// pass: a subtree whose estimated combine work (node weight =
	// |row| × children, summed over the subtree) is at or below the
	// cutoff runs as one sequential task on a single worker. 0 auto-tunes
	// from the tree's total weight and the worker count; see
	// docs/PERFORMANCE.md for when to override.
	TaskCutoff int64
}

// parallelMinNodes is the tree size below which automatic worker selection
// stays sequential: spawning and draining the pool costs on the order of
// tens of microseconds, which the whole DP of a small tree undercuts.
const parallelMinNodes = 4096

// workerCount resolves Options.Workers against the tree size.
func (o Options) workerCount(nodes int) int {
	w := o.Workers
	switch {
	case w < 0 || w == 1:
		return 1
	case w == 0:
		if nodes < parallelMinNodes {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > nodes {
		w = nodes
	}
	if w < 1 {
		w = 1
	}
	return w
}

// row is one row of the optimum configuration matrix M: the minimum
// subtree cost for each feasible pass-up count u of a node.
//
// The dense part covers u in [0..bound]; the entry u = d(m) is implicit
// with cost 0, because passing everything up forces zero cloaking in the
// whole subtree (lines 6 and 8 of Algorithm 1).
type row struct {
	d     int32
	bound int32 // -1 when the dense part is empty (d(m) < k)
	costs []int64
	// jpick[u] is the children pass-up total j whose combine realized
	// costs[u] (the argmin of the Section V merge). Storing it lets
	// extraction backtracking split j across two children in O(|row|)
	// instead of re-running the O(|row|²) fold at every visited node.
	// Leaves and the NaiveCombine path leave it empty; chooseCombine then
	// falls back to the from-scratch resolver.
	jpick []int32
}

// each iterates the finite entries of the row's feasible set F(m).
func (r *row) each(fn func(u int32, cost int64)) {
	for u := int32(0); u <= r.bound; u++ {
		if r.costs[u] < inf {
			fn(u, r.costs[u])
		}
	}
	fn(r.d, 0)
}

// at returns M[m][u], or inf when u is infeasible.
func (r *row) at(u int32) int64 {
	if u == r.d {
		return 0
	}
	if u >= 0 && u <= r.bound {
		return r.costs[u]
	}
	return inf
}

// Matrix is the optimum configuration matrix of Algorithm 1, maintained
// bottom-up over a cloaking tree. It supports full (bulk) computation —
// sequentially or on a work-stealing worker pool (Options.Workers) — and
// incremental recomputation of rows whose subtree occupancy changed.
// Methods are not safe for concurrent use; the worker pool is internal to
// one Recompute pass.
type Matrix struct {
	t    *tree.Tree
	k    int
	opt  Options
	rows []row

	// obsCtx carries the tracer (and enclosing span) installed at
	// construction so that later phases — extraction, incremental
	// updates — nest under the same trace without threading a context
	// through every method. Nil means tracing disabled.
	obsCtx context.Context

	// cs is the matrix's own combine scratch, used by the sequential
	// bottom-up pass, incremental updates, and extraction backtracking.
	cs *combineScratch

	// dp is the persistent parallel worker pool (nil until the first
	// parallel pass): parked goroutines plus per-worker scratch arenas
	// and scheduling buffers, reused so warm passes allocate nothing. A
	// runtime.AddCleanup stops the goroutines when the Matrix dies.
	dp *dpPool

	// Delta-extraction state (see ExtractDelta): the last realized
	// assignment and, per node, the pass-up target chosen and the point
	// list passed up when it was extracted. A subtree whose rows were all
	// untouched since the last extraction realizes the same configuration
	// for the same target, so ExtractDelta reuses the memo instead of
	// descending. stale marks rows recomputed since the last extraction
	// (Update keeps the set ancestor-closed by construction: it recomputes
	// every ancestor of a dirty node); haveBase gates the whole mechanism
	// and is dropped by Recompute, which rewrites rows without marking.
	cloaks    []geo.Rect
	chosen    []int32
	passUp    [][]int32
	stale     []bool
	staleList []tree.NodeID
	haveBase  bool
}

// NewMatrix runs the bottom-up dynamic program over the whole tree.
func NewMatrix(t *tree.Tree, k int, opt Options) (*Matrix, error) {
	return NewMatrixContext(context.Background(), t, k, opt)
}

// NewMatrixContext is NewMatrix with tracing: the dynamic-program main
// loop (combine + pass-up over every node) is recorded as a
// "bulkdp.combine" span carrying worker/steal counters, and the context is
// retained so Extract and Update report under the same trace.
func NewMatrixContext(ctx context.Context, t *tree.Tree, k int, opt Options) (*Matrix, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	m := &Matrix{t: t, k: k, opt: opt, obsCtx: ctx, cs: getScratch(t.Len() + 1)}
	m.Recompute()
	return m, nil
}

// Recompute re-runs the full bottom-up dynamic program over the current
// tree, reusing all row and scratch storage. Steady-state recomputation
// performs no allocations on the sequential path; with Options.Workers > 1
// the pass runs on the work-stealing pool and produces bit-identical rows.
func (m *Matrix) Recompute() {
	// A full pass rewrites every row without per-row stale marking, so any
	// previously extracted assignment stops being a usable delta baseline.
	m.haveBase = false
	_, sp := obs.Start(m.octx(), "bulkdp.combine")
	var stats []workerStats
	if nw := m.opt.workerCount(m.t.NumNodes()); nw > 1 {
		stats = m.computeAllParallel(nw)
	} else {
		m.t.PostOrder(func(id tree.NodeID) { m.computeRow(m.cs, id) })
	}
	if sp != nil {
		sp.SetInt("nodes", int64(m.t.NumNodes()))
		sp.SetInt("k", int64(m.k))
		if stats != nil && m.dp != nil {
			sp.SetInt("cutoff", m.dp.cutoff)
		}
		annotateWorkers(sp, stats)
		sp.End()
	}
}

// annotateWorkers records per-worker node and steal counters on a
// bulkdp.combine span (no-op for sequential passes).
func annotateWorkers(sp *obs.Span, stats []workerStats) {
	if len(stats) == 0 {
		return
	}
	sp.SetInt("workers", int64(len(stats)))
	var steals, tasks int64
	for i, ws := range stats {
		sp.SetInt(fmt.Sprintf("w%d.nodes", i), ws.nodes)
		sp.SetInt(fmt.Sprintf("w%d.tasks", i), ws.tasks)
		sp.SetInt(fmt.Sprintf("w%d.steals", i), ws.steals)
		steals += ws.steals
		tasks += ws.tasks
	}
	sp.SetInt("steals", steals)
	sp.SetInt("tasks", tasks)
}

// octx returns the construction-time observability context (Background
// for matrices built without one, e.g. zero values in tests).
func (m *Matrix) octx() context.Context {
	if m.obsCtx != nil {
		return m.obsCtx
	}
	return context.Background()
}

// Tree returns the underlying cloaking tree.
func (m *Matrix) Tree() *tree.Tree { return m.t }

// K returns the anonymity parameter.
func (m *Matrix) K() int { return m.k }

// OptimalCost returns the cost of an optimal policy-aware sender
// k-anonymous policy on the snapshot: the minimum cost of a complete
// configuration with k-summation (Lemmas 2–4). It fails with
// ErrInsufficientUsers when |D| < k.
func (m *Matrix) OptimalCost() (int64, error) {
	root := m.t.Root()
	if m.t.Count(root) == 0 {
		return 0, nil
	}
	if m.t.Count(root) < m.k {
		return 0, fmt.Errorf("%w: |D|=%d, k=%d", ErrInsufficientUsers, m.t.Count(root), m.k)
	}
	c := m.rows[root].at(0)
	if c >= inf {
		return 0, fmt.Errorf("core: no complete configuration found (internal error)")
	}
	return c, nil
}

// Row returns the feasible entries of node id's row, for tests and
// diagnostics, as parallel (u, cost) slices. Both slices are freshly
// allocated on every call: mutating them never corrupts the matrix (the
// aliasing regression test in the engine package relies on this).
func (m *Matrix) Row(id tree.NodeID) ([]int32, []int64) {
	var us []int32
	var cs []int64
	m.rows[id].each(func(u int32, c int64) {
		us = append(us, u)
		cs = append(cs, c)
	})
	return us, cs
}

// bound returns the top of the dense pass-up range for node id.
func (m *Matrix) bound(id tree.NodeID) int32 {
	d := m.t.Count(id)
	if d < m.k {
		return -1
	}
	b := d - m.k
	if !m.opt.NoPrune {
		if lim := (m.k + 1) * m.t.Height(id); lim < b {
			b = lim
		}
	}
	return int32(b)
}

// ensureRows grows the row table to cover NodeIDs below n. It must not run
// concurrently with row computation; parallel passes pre-size before
// spawning workers.
func (m *Matrix) ensureRows(n int) {
	for len(m.rows) < n {
		m.rows = append(m.rows, row{})
	}
}

// computeRow fills node id's row from its children's rows (which must be
// current) using the given scratch. This is the body of Algorithm 1's
// main loop; with warm scratch and row storage it allocates nothing.
func (m *Matrix) computeRow(cs *combineScratch, id tree.NodeID) {
	m.ensureRows(int(id) + 1)
	r := &m.rows[id]
	r.d = int32(m.t.Count(id))
	r.bound = m.bound(id)
	if r.bound < 0 {
		r.costs = r.costs[:0]
		r.jpick = r.jpick[:0]
		return
	}
	if cap(r.costs) < int(r.bound)+1 {
		r.costs = make([]int64, r.bound+1)
	} else {
		r.costs = r.costs[:r.bound+1]
	}
	area := m.t.Area(id)
	if m.t.IsLeaf(id) {
		// Lines 7-10 of Algorithm 1: cloak d(m)-u locations at the leaf.
		r.jpick = r.jpick[:0]
		for u := int32(0); u <= r.bound; u++ {
			r.costs[u] = int64(r.d-u) * area
		}
		return
	}
	if m.opt.NaiveCombine {
		r.jpick = r.jpick[:0]
		m.combineNaive(id, r, area)
		return
	}
	p := m.fold(cs, m.t.Children(id), nil)
	rowFromProfile(cs, r, p.js, p.costs, area, m.k)
}

// profile is the temp structure of Section V: achievable total pass-up
// counts j with their minimum summed child costs, sorted by j.
type profile struct {
	js    []int32
	costs []int64
}

// at returns the profile cost at exactly j, or inf.
func (p *profile) at(j int32) int64 {
	i := sort.Search(len(p.js), func(i int) bool { return p.js[i] >= j })
	if i < len(p.js) && p.js[i] == j {
		return p.costs[i]
	}
	return inf
}

// fold computes the temp profile over the given children: for every
// achievable j = sum of the children's pass-up counts, the minimum summed
// cost of the children's rows. When prefixes is non-nil it receives the
// intermediate profile after each child (used by extraction backtracking).
func (m *Matrix) fold(cs *combineScratch, children []tree.NodeID, prefixes *[]profile) profile {
	rows := cs.rows[:0]
	for _, ch := range children {
		rows = append(rows, &m.rows[ch])
	}
	cs.rows = rows
	return foldRows(cs, rows, prefixes)
}

// foldRows is the combine over explicit rows, shared by the static and
// adaptive dynamic programs. cs.fold must cover the maximum achievable
// j + 1 entries; it is restored to inf before return.
//
// With prefixes == nil the returned profile lives in cs's double-buffered
// arenas and is valid only until the next combine on the same scratch —
// the steady-state path allocates nothing. With prefixes != nil every
// intermediate (and the final) profile is freshly allocated, because
// extraction retains them across the backtrack.
func foldRows(cs *combineScratch, rows []*row, prefixes *[]profile) profile {
	if prefixes == nil && len(rows) == 2 {
		return foldPair(cs, rows[0], rows[1])
	}
	fresh := prefixes != nil
	js, costs := cs.jsA[:0], cs.costsA[:0]
	if fresh {
		js, costs = nil, nil
	}
	rows[0].each(func(u int32, c int64) {
		js = append(js, u)
		costs = append(costs, c)
	})
	if fresh {
		*prefixes = append(*prefixes, profile{js: js, costs: costs})
	} else {
		cs.jsA, cs.costsA = js, costs // persist arena growth
	}
	for _, rc := range rows[1:] {
		touched := cs.touched[:0]
		for i, j := range js {
			base := costs[i]
			rc.each(func(u int32, c int64) {
				nj := j + u
				if nc := base + c; nc < cs.fold[nj] {
					if cs.fold[nj] == inf {
						touched = append(touched, nj)
					}
					cs.fold[nj] = nc
				}
			})
		}
		cs.touched = touched
		slices.Sort(touched)
		var njs []int32
		var ncosts []int64
		if fresh {
			njs = make([]int32, 0, len(touched))
			ncosts = make([]int64, 0, len(touched))
		} else {
			njs, ncosts = cs.jsB[:0], cs.costsB[:0]
		}
		for _, j := range touched {
			njs = append(njs, j)
			ncosts = append(ncosts, cs.fold[j])
			cs.fold[j] = inf
		}
		if fresh {
			*prefixes = append(*prefixes, profile{js: njs, costs: ncosts})
		} else {
			// Swap arenas: the pair js/costs occupied is free for the
			// next child's merge.
			cs.jsB, cs.costsB = cs.jsA, cs.costsA
			cs.jsA, cs.costsA = njs, ncosts
		}
		js, costs = njs, ncosts
	}
	return profile{js: js, costs: costs}
}

// foldPair is the two-child combine specialized to the rows' dense+spike
// shape: each row is a dense cost range [0..bound] plus the implicit
// zero-cost entry at u = d. Their merge therefore decomposes into a dense
// min-plus convolution over [0..b0+b1], two shifted copies of the dense
// parts (the other child passing everything up for free), and the
// all-pass-up point at d0+d1 — contiguous array loops with no sparse
// accumulator bookkeeping, no touched-index sort, and no per-entry
// closure calls. The result is identical to the generic foldRows merge
// and lives in the scratch's profile arena until the next combine.
func foldPair(cs *combineScratch, r0, r1 *row) profile {
	maxJ := int(r0.d) + int(r1.d)
	cs.ensureFold(maxJ + 1)
	fold := cs.fold
	c0s, c1s := r0.costs, r1.costs
	for u0 := 0; u0 < len(c0s); u0++ {
		c0 := c0s[u0]
		if c0 >= inf {
			continue
		}
		out := fold[u0 : u0+len(c1s)]
		// No inf guard on c1: inf is MaxInt64/4, so c0+inf cannot
		// overflow and never undercuts an entry that is at most inf.
		for u1, c1 := range c1s {
			if s := c0 + c1; s < out[u1] {
				out[u1] = s
			}
		}
	}
	for u0, c0 := range c0s {
		if j := int(r1.d) + u0; c0 < fold[j] {
			fold[j] = c0
		}
	}
	for u1, c1 := range c1s {
		if j := int(r0.d) + u1; c1 < fold[j] {
			fold[j] = c1
		}
	}
	if fold[maxJ] > 0 {
		fold[maxJ] = 0
	}
	js, costs := cs.jsA[:0], cs.costsA[:0]
	for j := 0; j <= maxJ; j++ {
		if c := fold[j]; c < inf {
			js = append(js, int32(j))
			costs = append(costs, c)
			fold[j] = inf
		}
	}
	cs.jsA, cs.costsA = js, costs
	return profile{js: js, costs: costs}
}

// rowFromProfile is the second stage of the Section V combine: from the
// temp profile it derives M[m][u] = min( temp[u],
// min_{j >= u+k} temp[j] + (j-u)*area ) for each u in the dense range,
// using suffix minima of temp[j] + j*area for O(1) work per u. Alongside
// each cost it records the argmin j into r.jpick (ties resolve to the
// exact entry, then the leftmost suffix witness, so repeated computations
// of the same row pick the same configuration).
func rowFromProfile(cs *combineScratch, r *row, js []int32, costs []int64, area int64, k int) {
	n := len(js)
	if cap(cs.sfx) < n+1 {
		cs.sfx = make([]int64, n+1)
	}
	if cap(cs.sfxJ) < n+1 {
		cs.sfxJ = make([]int32, n+1)
	}
	sfx := cs.sfx[:n+1]
	sfxJ := cs.sfxJ[:n+1]
	sfx[n], sfxJ[n] = inf, -1
	for i := n - 1; i >= 0; i-- {
		if v := costs[i] + int64(js[i])*area; v <= sfx[i+1] {
			sfx[i], sfxJ[i] = v, js[i]
		} else {
			sfx[i], sfxJ[i] = sfx[i+1], sfxJ[i+1]
		}
	}
	if cap(r.jpick) < int(r.bound)+1 {
		r.jpick = make([]int32, r.bound+1)
	} else {
		r.jpick = r.jpick[:r.bound+1]
	}
	exact := 0 // first index with js[exact] >= u
	thresh := 0
	for u := int32(0); u <= r.bound; u++ {
		for exact < n && js[exact] < u {
			exact++
		}
		best, bestJ := inf, u
		if exact < n && js[exact] == u {
			best = costs[exact]
		}
		for thresh < n && js[thresh] < u+int32(k) {
			thresh++
		}
		if sfx[thresh] < inf {
			if v := sfx[thresh] - int64(u)*area; v < best {
				best, bestJ = v, sfxJ[thresh]
			}
		}
		r.costs[u] = best
		r.jpick[u] = bestJ
	}
}

// combineNaive is the first-cut combine of Algorithm 1 lines 13-19: for
// each target u it enumerates all tuples of child pass-ups directly.
func (m *Matrix) combineNaive(id tree.NodeID, r *row, area int64) {
	for u := int32(0); u <= r.bound; u++ {
		r.costs[u] = inf
	}
	children := m.t.Children(id)
	var rec func(ci int, j int32, cost int64)
	rec = func(ci int, j int32, cost int64) {
		if ci == len(children) {
			// j locations are passed up by the children in total; node id
			// may pass all of them up (u=j) or cloak at least k (u<=j-k).
			if j <= r.bound && cost < r.costs[j] {
				r.costs[j] = cost
			}
			hi := j - int32(m.k)
			if hi > r.bound {
				hi = r.bound
			}
			for u := int32(0); u <= hi; u++ {
				if v := cost + int64(j-u)*area; v < r.costs[u] {
					r.costs[u] = v
				}
			}
			return
		}
		m.rows[children[ci]].each(func(cu int32, cc int64) {
			rec(ci+1, j+cu, cost+cc)
		})
	}
	rec(0, 0, 0)
}

// Update incrementally refreshes the matrix after tree mutations: it drains
// the tree's dirty set, adds all ancestors, and recomputes the affected
// rows children-first. This is the incremental maintenance of Section IV.
// It returns the number of rows recomputed.
func (m *Matrix) Update() int {
	dirty := m.t.TakeDirty()
	if len(dirty) == 0 {
		return 0
	}
	_, sp := obs.Start(m.octx(), "bulkdp.update")
	m.cs.ensureFold(m.t.Len() + 1)
	if m.cs.affected == nil {
		m.cs.affected = make(map[tree.NodeID]struct{})
	}
	affected := m.cs.affected
	for _, id := range dirty {
		for n := id; n != tree.None; n = m.t.Parent(n) {
			if _, ok := affected[n]; ok {
				break
			}
			affected[n] = struct{}{}
		}
	}
	order := m.cs.order[:0]
	for id := range affected {
		order = append(order, id)
	}
	sort.Slice(order, func(a, b int) bool {
		return m.t.Height(order[a]) > m.t.Height(order[b])
	})
	for _, id := range order {
		m.computeRow(m.cs, id)
		m.markStale(id)
	}
	clear(affected)
	m.cs.order = order
	if sp != nil {
		sp.SetInt("dirty", int64(len(dirty)))
		sp.SetInt("rows", int64(len(order)))
		sp.End()
	}
	return len(order)
}

// markStale records that node id's row was recomputed since the last
// extraction. Entries are cleared wholesale by the next successful
// extraction (clearStale), so ids that die in a later collapse merely
// force a visit if the id is ever reused — never a wrong skip.
func (m *Matrix) markStale(id tree.NodeID) {
	for len(m.stale) <= int(id) {
		m.stale = append(m.stale, false)
	}
	if !m.stale[id] {
		m.stale[id] = true
		m.staleList = append(m.staleList, id)
	}
}

// clearStale resets the recomputed-row set after an extraction pass has
// consumed it.
func (m *Matrix) clearStale() {
	for _, id := range m.staleList {
		if int(id) < len(m.stale) {
			m.stale[id] = false
		}
	}
	m.staleList = m.staleList[:0]
}

// ensureAssignState sizes the delta-extraction memo for the current tree.
func (m *Matrix) ensureAssignState() {
	n := m.t.Len()
	if cap(m.cloaks) < n {
		m.cloaks = make([]geo.Rect, n)
	} else {
		m.cloaks = m.cloaks[:n]
	}
	nc := m.t.NodeCap()
	for len(m.chosen) < nc {
		m.chosen = append(m.chosen, -1)
	}
	for len(m.passUp) < nc {
		m.passUp = append(m.passUp, nil)
	}
	for len(m.stale) < nc {
		m.stale = append(m.stale, false)
	}
}
