package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"policyanon/internal/obs"
	"policyanon/internal/tree"
)

// inf is the unreachable-cost sentinel; kept well below MaxInt64 so that
// guarded additions cannot overflow.
const inf int64 = math.MaxInt64 / 4

// Options tunes the dynamic program. The zero value selects the fully
// optimized algorithm of Section V; the flags disable individual
// optimizations to recover the first-cut Bulk_dp of Algorithm 1 for
// correctness cross-checks and ablation benchmarks.
type Options struct {
	// NoPrune disables the Lemma 5 pass-up bound F'(m) =
	// [0..(k+1)h(m)] ∪ {d(m)}, reverting to F(m) = [0..d(m)-k] ∪ {d(m)}.
	NoPrune bool
	// NaiveCombine disables the two-stage temp-profile combine of
	// Section V and enumerates child pass-up tuples directly, as the
	// first-cut Algorithm 1 does (O(|D|^2) per binary node, O(|D|^4) per
	// quad node instead of O((kh)^2)).
	NaiveCombine bool
}

// row is one row of the optimum configuration matrix M: the minimum
// subtree cost for each feasible pass-up count u of a node.
//
// The dense part covers u in [0..bound]; the entry u = d(m) is implicit
// with cost 0, because passing everything up forces zero cloaking in the
// whole subtree (lines 6 and 8 of Algorithm 1).
type row struct {
	d     int32
	bound int32 // -1 when the dense part is empty (d(m) < k)
	costs []int64
}

// each iterates the finite entries of the row's feasible set F(m).
func (r *row) each(fn func(u int32, cost int64)) {
	for u := int32(0); u <= r.bound; u++ {
		if r.costs[u] < inf {
			fn(u, r.costs[u])
		}
	}
	fn(r.d, 0)
}

// at returns M[m][u], or inf when u is infeasible.
func (r *row) at(u int32) int64 {
	if u == r.d {
		return 0
	}
	if u >= 0 && u <= r.bound {
		return r.costs[u]
	}
	return inf
}

// Matrix is the optimum configuration matrix of Algorithm 1, maintained
// bottom-up over a cloaking tree. It supports full (bulk) computation and
// incremental recomputation of rows whose subtree occupancy changed.
type Matrix struct {
	t    *tree.Tree
	k    int
	opt  Options
	rows []row

	// obsCtx carries the tracer (and enclosing span) installed at
	// construction so that later phases — extraction, incremental
	// updates — nest under the same trace without threading a context
	// through every method. Nil means tracing disabled.
	obsCtx context.Context

	// scratch buffers for the profile fold, sized to |D|+1.
	scratch        []int64
	scratchTouched []int32
}

// NewMatrix runs the bottom-up dynamic program over the whole tree.
func NewMatrix(t *tree.Tree, k int, opt Options) (*Matrix, error) {
	return NewMatrixContext(context.Background(), t, k, opt)
}

// NewMatrixContext is NewMatrix with tracing: the dynamic-program main
// loop (combine + pass-up over every node) is recorded as a
// "bulkdp.combine" span, and the context is retained so Extract and
// Update report under the same trace.
func NewMatrixContext(ctx context.Context, t *tree.Tree, k int, opt Options) (*Matrix, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	m := &Matrix{t: t, k: k, opt: opt, obsCtx: ctx, scratch: make([]int64, t.Len()+1)}
	for i := range m.scratch {
		m.scratch[i] = inf
	}
	_, sp := obs.Start(ctx, "bulkdp.combine")
	t.PostOrder(func(id tree.NodeID) { m.computeRow(id) })
	if sp != nil {
		sp.SetInt("nodes", int64(t.NumNodes()))
		sp.SetInt("k", int64(k))
		sp.End()
	}
	return m, nil
}

// octx returns the construction-time observability context (Background
// for matrices built without one, e.g. zero values in tests).
func (m *Matrix) octx() context.Context {
	if m.obsCtx != nil {
		return m.obsCtx
	}
	return context.Background()
}

// Tree returns the underlying cloaking tree.
func (m *Matrix) Tree() *tree.Tree { return m.t }

// K returns the anonymity parameter.
func (m *Matrix) K() int { return m.k }

// OptimalCost returns the cost of an optimal policy-aware sender
// k-anonymous policy on the snapshot: the minimum cost of a complete
// configuration with k-summation (Lemmas 2–4). It fails with
// ErrInsufficientUsers when |D| < k.
func (m *Matrix) OptimalCost() (int64, error) {
	root := m.t.Root()
	if m.t.Count(root) == 0 {
		return 0, nil
	}
	if m.t.Count(root) < m.k {
		return 0, fmt.Errorf("%w: |D|=%d, k=%d", ErrInsufficientUsers, m.t.Count(root), m.k)
	}
	c := m.rows[root].at(0)
	if c >= inf {
		return 0, fmt.Errorf("core: no complete configuration found (internal error)")
	}
	return c, nil
}

// Row returns the feasible entries of node id's row, for tests and
// diagnostics, as parallel (u, cost) slices. Both slices are freshly
// allocated on every call: mutating them never corrupts the matrix (the
// aliasing regression test in the engine package relies on this).
func (m *Matrix) Row(id tree.NodeID) ([]int32, []int64) {
	var us []int32
	var cs []int64
	m.rows[id].each(func(u int32, c int64) {
		us = append(us, u)
		cs = append(cs, c)
	})
	return us, cs
}

// bound returns the top of the dense pass-up range for node id.
func (m *Matrix) bound(id tree.NodeID) int32 {
	d := m.t.Count(id)
	if d < m.k {
		return -1
	}
	b := d - m.k
	if !m.opt.NoPrune {
		if lim := (m.k + 1) * m.t.Height(id); lim < b {
			b = lim
		}
	}
	return int32(b)
}

func (m *Matrix) ensureRow(id tree.NodeID) *row {
	for int(id) >= len(m.rows) {
		m.rows = append(m.rows, row{})
	}
	return &m.rows[id]
}

// computeRow fills node id's row from its children's rows (which must be
// current). This is the body of Algorithm 1's main loop.
func (m *Matrix) computeRow(id tree.NodeID) {
	r := m.ensureRow(id)
	r.d = int32(m.t.Count(id))
	r.bound = m.bound(id)
	if r.bound < 0 {
		r.costs = r.costs[:0]
		return
	}
	if cap(r.costs) < int(r.bound)+1 {
		r.costs = make([]int64, r.bound+1)
	} else {
		r.costs = r.costs[:r.bound+1]
	}
	area := m.t.Area(id)
	if m.t.IsLeaf(id) {
		// Lines 7-10 of Algorithm 1: cloak d(m)-u locations at the leaf.
		for u := int32(0); u <= r.bound; u++ {
			r.costs[u] = int64(r.d-u) * area
		}
		return
	}
	if m.opt.NaiveCombine {
		m.combineNaive(id, r, area)
		return
	}
	p := m.fold(m.t.Children(id), nil)
	rowFromProfile(r, p.js, p.costs, area, m.k)
}

// profile is the temp structure of Section V: achievable total pass-up
// counts j with their minimum summed child costs, sorted by j.
type profile struct {
	js    []int32
	costs []int64
}

// at returns the profile cost at exactly j, or inf.
func (p *profile) at(j int32) int64 {
	i := sort.Search(len(p.js), func(i int) bool { return p.js[i] >= j })
	if i < len(p.js) && p.js[i] == j {
		return p.costs[i]
	}
	return inf
}

// fold computes the temp profile over the given children: for every
// achievable j = sum of the children's pass-up counts, the minimum summed
// cost of the children's rows. When prefixes is non-nil it receives the
// intermediate profile after each child (used by extraction backtracking).
func (m *Matrix) fold(children []tree.NodeID, prefixes *[]profile) profile {
	rows := make([]*row, len(children))
	for i, ch := range children {
		rows[i] = &m.rows[ch]
	}
	return foldRows(m.scratch, rows, prefixes)
}

// foldRows is the combine over explicit rows, shared by the static and
// adaptive dynamic programs. scratch must be an inf-filled buffer of at
// least max achievable j + 1 entries; it is restored to inf before return.
func foldRows(scratch []int64, rows []*row, prefixes *[]profile) profile {
	var cur profile
	rows[0].each(func(u int32, c int64) {
		cur.js = append(cur.js, u)
		cur.costs = append(cur.costs, c)
	})
	if prefixes != nil {
		*prefixes = append(*prefixes, cur)
	}
	for _, rc := range rows[1:] {
		var touched []int32
		for i, j := range cur.js {
			base := cur.costs[i]
			rc.each(func(u int32, c int64) {
				nj := j + u
				if nc := base + c; nc < scratch[nj] {
					if scratch[nj] == inf {
						touched = append(touched, nj)
					}
					scratch[nj] = nc
				}
			})
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		next := profile{js: make([]int32, 0, len(touched)), costs: make([]int64, 0, len(touched))}
		for _, j := range touched {
			next.js = append(next.js, j)
			next.costs = append(next.costs, scratch[j])
			scratch[j] = inf
		}
		cur = next
		if prefixes != nil {
			*prefixes = append(*prefixes, cur)
		}
	}
	return cur
}

// rowFromProfile is the second stage of the Section V combine: from the
// temp profile it derives M[m][u] = min( temp[u],
// min_{j >= u+k} temp[j] + (j-u)*area ) for each u in the dense range,
// using suffix minima of temp[j] + j*area for O(1) work per u.
func rowFromProfile(r *row, js []int32, costs []int64, area int64, k int) {
	n := len(js)
	sfx := make([]int64, n+1)
	sfx[n] = inf
	for i := n - 1; i >= 0; i-- {
		v := costs[i] + int64(js[i])*area
		if v > sfx[i+1] {
			v = sfx[i+1]
		}
		sfx[i] = v
	}
	exact := 0 // first index with js[exact] >= u
	thresh := 0
	for u := int32(0); u <= r.bound; u++ {
		for exact < n && js[exact] < u {
			exact++
		}
		best := inf
		if exact < n && js[exact] == u {
			best = costs[exact]
		}
		for thresh < n && js[thresh] < u+int32(k) {
			thresh++
		}
		if sfx[thresh] < inf {
			if v := sfx[thresh] - int64(u)*area; v < best {
				best = v
			}
		}
		r.costs[u] = best
	}
}

// combineNaive is the first-cut combine of Algorithm 1 lines 13-19: for
// each target u it enumerates all tuples of child pass-ups directly.
func (m *Matrix) combineNaive(id tree.NodeID, r *row, area int64) {
	for u := int32(0); u <= r.bound; u++ {
		r.costs[u] = inf
	}
	children := m.t.Children(id)
	var rec func(ci int, j int32, cost int64)
	rec = func(ci int, j int32, cost int64) {
		if ci == len(children) {
			// j locations are passed up by the children in total; node id
			// may pass all of them up (u=j) or cloak at least k (u<=j-k).
			if j <= r.bound && cost < r.costs[j] {
				r.costs[j] = cost
			}
			hi := j - int32(m.k)
			if hi > r.bound {
				hi = r.bound
			}
			for u := int32(0); u <= hi; u++ {
				if v := cost + int64(j-u)*area; v < r.costs[u] {
					r.costs[u] = v
				}
			}
			return
		}
		m.rows[children[ci]].each(func(cu int32, cc int64) {
			rec(ci+1, j+cu, cost+cc)
		})
	}
	rec(0, 0, 0)
}

// Update incrementally refreshes the matrix after tree mutations: it drains
// the tree's dirty set, adds all ancestors, and recomputes the affected
// rows children-first. This is the incremental maintenance of Section IV.
// It returns the number of rows recomputed.
func (m *Matrix) Update() int {
	dirty := m.t.TakeDirty()
	if len(dirty) == 0 {
		return 0
	}
	_, sp := obs.Start(m.octx(), "bulkdp.update")
	if need := m.t.Len() + 1; len(m.scratch) < need {
		old := len(m.scratch)
		m.scratch = append(m.scratch, make([]int64, need-old)...)
		for i := old; i < need; i++ {
			m.scratch[i] = inf
		}
	}
	affected := make(map[tree.NodeID]struct{})
	for _, id := range dirty {
		for n := id; n != tree.None; n = m.t.Parent(n) {
			if _, ok := affected[n]; ok {
				break
			}
			affected[n] = struct{}{}
		}
	}
	order := make([]tree.NodeID, 0, len(affected))
	for id := range affected {
		order = append(order, id)
	}
	sort.Slice(order, func(a, b int) bool {
		return m.t.Height(order[a]) > m.t.Height(order[b])
	})
	for _, id := range order {
		m.computeRow(id)
	}
	if sp != nil {
		sp.SetInt("dirty", int64(len(dirty)))
		sp.SetInt("rows", int64(len(order)))
		sp.End()
	}
	return len(order)
}
