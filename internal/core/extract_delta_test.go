package core

import (
	"errors"
	"math/rand"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/tree"
)

// TestExtractDeltaParityRandomized is the delta-publication parity oracle:
// across random move sequences, tree kinds, and rebuild/incremental
// interleavings, an assignment maintained purely through ExtractDelta's
// cloak changes must stay byte-identical to a from-scratch Extract over
// the same snapshot (the canonical-tree guarantee makes the from-scratch
// result unique, so equality is exact, not just cost-equal).
func TestExtractDeltaParityRandomized(t *testing.T) {
	const side = int32(1 << 10)
	bounds := geo.NewRect(0, 0, side, side)
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(9100 + seed))
			n := 60 + rng.Intn(120)
			k := 2 + rng.Intn(4)
			db := dbFor(t, randPts(rng, n, side))
			anon, err := NewAnonymizer(db, bounds, AnonymizerOptions{K: k, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			cur, err := anon.Matrix().Extract()
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 12; round++ {
				for j := 1 + rng.Intn(8); j > 0; j-- {
					i := rng.Intn(n)
					to := geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}
					if err := anon.Move(i, to); err != nil {
						t.Fatal(err)
					}
				}
				anon.Refresh()
				switch rng.Intn(6) {
				case 0:
					// Interleave a from-scratch extraction: it must agree
					// with the maintained copy's future and re-anchor the
					// baseline.
					full, err := anon.Matrix().Extract()
					if err != nil {
						t.Fatal(err)
					}
					cur = full
				case 1:
					// Interleave a full matrix rebuild: the baseline is
					// dropped, ExtractDelta must refuse, Extract recovers.
					anon.Matrix().Recompute()
					if _, _, err := anon.Matrix().ExtractDelta(); !errors.Is(err, ErrNoDeltaBaseline) {
						t.Fatalf("kind %v seed %d round %d: ExtractDelta after Recompute: %v, want ErrNoDeltaBaseline",
							kind, seed, round, err)
					}
					full, err := anon.Matrix().Extract()
					if err != nil {
						t.Fatal(err)
					}
					cur = full
				default:
					changes, visited, err := anon.Matrix().ExtractDelta()
					if err != nil {
						t.Fatal(err)
					}
					if len(changes) > 0 && visited < 1 {
						t.Fatalf("kind %v seed %d round %d: %d changes from %d visited nodes",
							kind, seed, round, len(changes), visited)
					}
					for _, c := range changes {
						if cur[c.Index] != c.Old {
							t.Fatalf("kind %v seed %d round %d: change at %d claims old %v, maintained copy has %v",
								kind, seed, round, c.Index, c.Old, cur[c.Index])
						}
						if c.Old == c.New {
							t.Fatalf("kind %v seed %d round %d: no-op change at %d (%v)",
								kind, seed, round, c.Index, c.Old)
						}
						cur[c.Index] = c.New
					}
				}
				// Oracle: a brand-new anonymizer over the current snapshot.
				fresh, err := NewAnonymizer(db.Clone(), bounds, AnonymizerOptions{K: k, Kind: kind})
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Matrix().Extract()
				if err != nil {
					t.Fatal(err)
				}
				if len(cur) != len(want) {
					t.Fatalf("kind %v seed %d round %d: %d cloaks, want %d", kind, seed, round, len(cur), len(want))
				}
				for i := range want {
					if cur[i] != want[i] {
						t.Fatalf("kind %v seed %d round %d: cloak %d = %v, from-scratch %v",
							kind, seed, round, i, cur[i], want[i])
					}
				}
			}
		}
	}
}

// TestExtractDeltaNoMoves pins the trivial delta: with no matrix changes
// since the last extraction, ExtractDelta touches nothing.
func TestExtractDeltaNoMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(9200))
	side := int32(256)
	db := dbFor(t, randPts(rng, 80, side))
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, side, side), AnonymizerOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Matrix().Extract(); err != nil {
		t.Fatal(err)
	}
	changes, visited, err := anon.Matrix().ExtractDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 || visited != 0 {
		t.Fatalf("idle delta: %d changes, %d visited, want 0/0", len(changes), visited)
	}
}

// TestExtractDeltaRequiresBaseline pins the no-baseline error before any
// extraction.
func TestExtractDeltaRequiresBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(9300))
	side := int32(256)
	db := dbFor(t, randPts(rng, 40, side))
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, side, side), AnonymizerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := anon.Matrix().ExtractDelta(); !errors.Is(err, ErrNoDeltaBaseline) {
		t.Fatalf("ExtractDelta before Extract: %v, want ErrNoDeltaBaseline", err)
	}
}

func benchAnonymizer(b *testing.B, n int) (*Anonymizer, *location.DB, int32) {
	b.Helper()
	side := int32(1 << 13)
	rng := rand.New(rand.NewSource(77))
	db := location.New(n)
	for i := 0; i < n; i++ {
		if err := db.Add("u"+itoa(i), geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
			b.Fatal(err)
		}
	}
	anon, err := NewAnonymizer(db, geo.NewRect(0, 0, side, side), AnonymizerOptions{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := anon.Matrix().Extract(); err != nil {
		b.Fatal(err)
	}
	return anon, db, side
}

// BenchmarkExtractFullAfterMoves is the old publish path: a small move
// batch still pays a full O(|D|) policy exhibition.
func BenchmarkExtractFullAfterMoves(b *testing.B) {
	anon, _, side := benchAnonymizer(b, 20000)
	rng := rand.New(rand.NewSource(78))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 8; j++ {
			if err := anon.Move(rng.Intn(20000), geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
				b.Fatal(err)
			}
		}
		anon.Refresh()
		b.StartTimer()
		if _, err := anon.Matrix().Extract(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractDeltaAfterMoves is the delta publish path over the same
// workload: only dirty subtrees are re-assigned.
func BenchmarkExtractDeltaAfterMoves(b *testing.B) {
	anon, _, side := benchAnonymizer(b, 20000)
	rng := rand.New(rand.NewSource(78))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 8; j++ {
			if err := anon.Move(rng.Intn(20000), geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
				b.Fatal(err)
			}
		}
		anon.Refresh()
		b.StartTimer()
		if _, _, err := anon.Matrix().ExtractDelta(); err != nil {
			b.Fatal(err)
		}
	}
}
