package core

import (
	"fmt"
	"sort"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// This file implements user-specified k, one of the two extensions the
// paper explicitly defers to future work (Section I, "Scope of the
// paper"; the feature appears in [14] and [11] for k-inside policies).
//
// The construction is conservative but sound: users are partitioned into
// buckets by requested k, underfull buckets are merged upward (users only
// ever receive MORE anonymity than they asked for), and each final bucket
// is anonymized independently by the optimal policy-aware algorithm at
// the bucket's maximum requested k. Because the buckets partition the
// population and the bucketing rule is deterministic (part of the public
// "design"), a policy-aware attacker reverse-engineering a cloak knows
// which bucket produced it — and still faces at least that bucket's k
// candidates. Optimality across buckets is NOT claimed (that remains
// open, as in the paper); within each bucket the policy is optimal for
// the bucket's subpopulation.

// MultiKPolicy computes a policy-aware sender anonymous policy where user
// i demands anonymity ks[i] (one entry per record of db, each >= 1). The
// returned assignment guarantees every user a policy-aware candidate set
// of at least her requested size.
func MultiKPolicy(db *location.DB, bounds geo.Rect, ks []int, opt AnonymizerOptions) (*lbs.Assignment, error) {
	if len(ks) != db.Len() {
		return nil, fmt.Errorf("core: %d k-values for %d users", len(ks), db.Len())
	}
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("core: user %d requested k=%d (must be >= 1)", i, k)
		}
	}
	if db.Len() == 0 {
		return lbs.NewAssignment(db, nil)
	}
	buckets, err := bucketByK(ks)
	if err != nil {
		return nil, err
	}
	cloaks := make([]geo.Rect, db.Len())
	for _, b := range buckets {
		sub := location.New(len(b.users))
		for _, i := range b.users {
			rec := db.At(i)
			if err := sub.Add(rec.UserID, rec.Loc); err != nil {
				return nil, err
			}
		}
		bopt := opt
		bopt.K = b.k
		anon, err := NewAnonymizer(sub, bounds, bopt)
		if err != nil {
			return nil, err
		}
		subCloaks, err := anon.Matrix().Extract()
		if err != nil {
			return nil, fmt.Errorf("core: bucket k=%d (%d users): %w", b.k, len(b.users), err)
		}
		for li, gi := range b.users {
			cloaks[gi] = subCloaks[li]
		}
	}
	return lbs.NewAssignment(db, cloaks)
}

// kBucket is one final anonymization bucket.
type kBucket struct {
	k     int // effective k: the maximum requested within the bucket
	users []int
}

// bucketByK partitions record indices by requested k and repairs underfull
// buckets: an underfull bucket is merged into the next-higher-k bucket
// (strictly more anonymity for its members); if the top bucket ends up
// underfull it absorbs lower buckets, raising their effective k, until it
// is feasible. The only unsatisfiable case is |D| < max(ks).
func bucketByK(ks []int) ([]kBucket, error) {
	byK := make(map[int][]int)
	for i, k := range ks {
		byK[k] = append(byK[k], i)
	}
	levels := make([]int, 0, len(byK))
	for k := range byK {
		levels = append(levels, k)
	}
	sort.Ints(levels)
	var buckets []kBucket
	for _, k := range levels {
		buckets = append(buckets, kBucket{k: k, users: byK[k]})
	}
	// Upward pass: merge underfull buckets into the next level.
	for i := 0; i < len(buckets)-1; i++ {
		if len(buckets[i].users) < buckets[i].k {
			buckets[i+1].users = append(buckets[i+1].users, buckets[i].users...)
			buckets[i].users = nil
		}
	}
	// Top repair: absorb lower buckets (raising their k) until feasible.
	top := len(buckets) - 1
	for j := top - 1; len(buckets[top].users) < buckets[top].k && j >= 0; j-- {
		buckets[top].users = append(buckets[top].users, buckets[j].users...)
		buckets[j].users = nil
	}
	if len(buckets[top].users) < buckets[top].k {
		return nil, fmt.Errorf("%w: |D|=%d, max requested k=%d",
			ErrInsufficientUsers, len(ks), buckets[top].k)
	}
	out := buckets[:0]
	for _, b := range buckets {
		if len(b.users) > 0 {
			sort.Ints(b.users)
			out = append(out, b)
		}
	}
	return out, nil
}

// MultiKAudit verifies that every user's policy-aware candidate set under
// the assignment is at least her requested k, returning the indices of
// violated users (empty means the guarantee holds).
func MultiKAudit(a *lbs.Assignment, ks []int) []int {
	groupSize := make(map[geo.Rect]int)
	for i := 0; i < a.Len(); i++ {
		groupSize[a.CloakAt(i)]++
	}
	var violated []int
	for i := 0; i < a.Len(); i++ {
		if groupSize[a.CloakAt(i)] < ks[i] {
			violated = append(violated, i)
		}
	}
	return violated
}
