package core

import (
	"math/rand"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/tree"
)

// rowsEqual compares two matrices row by row over the live nodes of their
// (shared-shape) trees. The parallel pass must be bit-identical to the
// sequential one, so any difference — d, bound, or a single cost — fails.
func rowsEqual(t *testing.T, want, got *Matrix) {
	t.Helper()
	want.t.PostOrder(func(id tree.NodeID) {
		a, b := &want.rows[id], &got.rows[id]
		if a.d != b.d || a.bound != b.bound {
			t.Fatalf("node %d: header mismatch: seq (d=%d bound=%d), par (d=%d bound=%d)",
				id, a.d, a.bound, b.d, b.bound)
		}
		for u := int32(0); u <= a.bound; u++ {
			if a.costs[u] != b.costs[u] {
				t.Fatalf("node %d: M[%d][%d] = %d sequential, %d parallel", id, id, u, a.costs[u], b.costs[u])
			}
		}
	})
}

// TestParallelParity is the golden parity oracle of the worker pool: for
// every tree kind, several k values, and several worker counts, the
// parallel bottom-up pass must produce exactly the sequential matrix.
// Run with -race to exercise the pool's synchronization.
func TestParallelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		for _, n := range []int{0, 1, 37, 400} {
			pts := randPts(rng, n, 1<<10)
			for _, k := range []int{1, 2, 5, 17} {
				tr := buildTree(t, pts, 1<<10, kind, k)
				seq, err := NewMatrix(tr, k, Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, nw := range []int{2, 3, 8} {
					par, err := NewMatrix(tr, k, Options{Workers: nw})
					if err != nil {
						t.Fatal(err)
					}
					rowsEqual(t, seq, par)
					wantCost, wantErr := seq.OptimalCost()
					gotCost, gotErr := par.OptimalCost()
					if wantCost != gotCost || (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("kind=%v n=%d k=%d nw=%d: cost %d (%v) sequential, %d (%v) parallel",
							kind, n, k, nw, wantCost, wantErr, gotCost, gotErr)
					}
				}
			}
		}
	}
}

// TestParallelParityNaive checks the pool under the ablation combine too:
// the schedule must not depend on which combine body runs.
func TestParallelParityNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPts(rng, 60, 1<<8)
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		tr := buildTree(t, pts, 1<<8, kind, 3)
		seq, err := NewMatrix(tr, 3, Options{NaiveCombine: true, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewMatrix(tr, 3, Options{NaiveCombine: true, NoPrune: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, seq, par)
	}
}

// TestParallelDegenerate exercises the pool on the adversarial tree shapes
// the scheduler sees no parallelism in: a maximum-depth single chain (all
// points coincident), a heavily empty tree (all points in one corner), a
// tree whose root population is below k, and the empty tree.
func TestParallelDegenerate(t *testing.T) {
	t.Run("single-chain", func(t *testing.T) {
		// Coincident points split down one path until MaxDepth: every
		// interior node has one populated and one (or three) empty child.
		pts := make([]geo.Point, 40)
		for i := range pts {
			pts[i] = geo.Point{X: 3, Y: 5}
		}
		for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
			tr := buildTree(t, pts, 1<<12, kind, 2)
			seq, err := NewMatrix(tr, 2, Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewMatrix(tr, 2, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, seq, par)
		}
	})
	t.Run("empty-quadrants", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		pts := randPts(rng, 120, 1<<4) // corner of a 2^12 map
		for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
			tr := buildTree(t, pts, 1<<12, kind, 4)
			seq, err := NewMatrix(tr, 4, Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewMatrix(tr, 4, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, seq, par)
		}
	})
	t.Run("k-exceeds-population", func(t *testing.T) {
		rng := rand.New(rand.NewSource(4))
		pts := randPts(rng, 5, 1<<8)
		tr := buildTree(t, pts, 1<<8, tree.Binary, 10)
		par, err := NewMatrix(tr, 10, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := par.OptimalCost(); err == nil {
			t.Fatal("expected ErrInsufficientUsers with |D| < k")
		}
	})
	t.Run("empty-tree", func(t *testing.T) {
		tr := buildTree(t, nil, 1<<8, tree.Binary, 2)
		par, err := NewMatrix(tr, 2, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if c, err := par.OptimalCost(); err != nil || c != 0 {
			t.Fatalf("empty tree: cost %d, err %v", c, err)
		}
	})
}

// TestParallelExtract checks that a matrix computed by the pool extracts a
// valid optimal policy (the backtrack consumes the same rows).
func TestParallelExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPts(rng, 200, 1<<9)
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		tr := buildTree(t, pts, 1<<9, kind, 5)
		m, err := NewMatrix(tr, 5, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.OptimalCost()
		if err != nil {
			t.Fatal(err)
		}
		cloaks, err := m.Extract()
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		for _, c := range cloaks {
			got += c.Area()
		}
		if got != want {
			t.Fatalf("extracted cost %d != optimal %d", got, want)
		}
	}
}

// TestRecomputeAfterMoves checks the public Recompute: after tree
// mutations it must agree with a freshly built matrix, sequentially and
// in parallel.
func TestRecomputeAfterMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randPts(rng, 150, 1<<9)
	tr := buildTree(t, pts, 1<<9, tree.Binary, 4)
	m, err := NewMatrix(tr, 4, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		idx := int32(rng.Intn(len(pts)))
		if err := tr.Move(idx, geo.Point{X: rng.Int31n(1 << 9), Y: rng.Int31n(1 << 9)}); err != nil {
			t.Fatal(err)
		}
	}
	tr.TakeDirty() // Recompute does not need the dirty set
	m.Recompute()
	fresh, err := NewMatrix(tr, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, fresh, m)
}

// TestParallelZeroAllocs is the regression test for the persistent worker
// pool: once the pool, its per-worker scratch arenas, and row storage are
// warm, a full parallel Recompute must not allocate at any worker count —
// the BENCH_bulkdp.json gate asserts the same property end to end.
func TestParallelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(13))
	pts := randPts(rng, 2000, 1<<11)
	tr := buildTree(t, pts, 1<<11, tree.Binary, 5)
	for _, nw := range []int{1, 2, 4, 8} {
		m, err := NewMatrix(tr, 5, Options{Workers: nw})
		if err != nil {
			t.Fatal(err)
		}
		m.Recompute() // warm pool, deques, arenas
		allocs := testing.AllocsPerRun(5, m.Recompute)
		if allocs != 0 {
			t.Errorf("workers=%d: steady-state Recompute allocates %.1f/op, want 0", nw, allocs)
		}
	}
}

// TestTaskCutoffParity pins the granularity knob: extreme cutoffs (every
// node its own task; the whole tree one task) must still be bit-identical
// to the sequential pass.
func TestTaskCutoffParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randPts(rng, 300, 1<<9)
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		tr := buildTree(t, pts, 1<<9, kind, 4)
		seq, err := NewMatrix(tr, 4, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, cutoff := range []int64{1, 64, 1 << 40} {
			par, err := NewMatrix(tr, 4, Options{Workers: 4, TaskCutoff: cutoff})
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, seq, par)
		}
	}
}

// TestComputeRowZeroAllocs is the regression test for the combine scratch:
// once row storage and scratch are warm, recomputing an interior node's
// row must not allocate (the old code allocated rows/touched/profile/sfx
// slices on every call — the dead scratchTouched field).
func TestComputeRowZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 500, 1<<10)
	for _, kind := range []tree.Kind{tree.Binary, tree.Quad} {
		tr := buildTree(t, pts, 1<<10, kind, 5)
		m, err := NewMatrix(tr, 5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		root := tr.Root()
		if tr.IsLeaf(root) {
			t.Fatal("test needs an interior root")
		}
		allocs := testing.AllocsPerRun(100, func() {
			m.computeRow(m.cs, root)
		})
		if allocs != 0 {
			t.Errorf("kind=%v: steady-state computeRow allocates %.1f/op, want 0", kind, allocs)
		}
	}
}
