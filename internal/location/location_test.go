package location

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"policyanon/internal/geo"
)

// tableI is the location database D1 from Table I of the paper.
func tableI(t *testing.T) *DB {
	t.Helper()
	db, err := FromRecords([]Record{
		{"Alice", geo.Point{X: 1, Y: 1}},
		{"Bob", geo.Point{X: 1, Y: 2}},
		{"Carol", geo.Point{X: 1, Y: 4}},
		{"Sam", geo.Point{X: 3, Y: 1}},
		{"Tom", geo.Point{X: 4, Y: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAddLookup(t *testing.T) {
	db := tableI(t)
	if db.Len() != 5 {
		t.Fatalf("Len = %d", db.Len())
	}
	p, err := db.Lookup("Carol")
	if err != nil {
		t.Fatal(err)
	}
	if p != (geo.Point{X: 1, Y: 4}) {
		t.Errorf("Carol at %v", p)
	}
	if _, err := db.Lookup("Mallory"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("expected ErrUnknownUser, got %v", err)
	}
	if err := db.Add("Alice", geo.Point{}); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("expected ErrDuplicateUser, got %v", err)
	}
	if db.Index("Sam") != 3 || db.Index("Nobody") != -1 {
		t.Errorf("Index wrong: Sam=%d Nobody=%d", db.Index("Sam"), db.Index("Nobody"))
	}
}

func TestZeroValueUsable(t *testing.T) {
	var db DB
	if err := db.Add("u", geo.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatal("zero-value DB should accept Add")
	}
}

func TestMove(t *testing.T) {
	db := tableI(t)
	prev, err := db.Move("Tom", geo.Point{X: 9, Y: 9})
	if err != nil {
		t.Fatal(err)
	}
	if prev != (geo.Point{X: 4, Y: 4}) {
		t.Errorf("prev = %v", prev)
	}
	p, _ := db.Lookup("Tom")
	if p != (geo.Point{X: 9, Y: 9}) {
		t.Errorf("Tom at %v after move", p)
	}
	if _, err := db.Move("Mallory", geo.Point{}); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("expected ErrUnknownUser, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := tableI(t)
	cp := db.Clone()
	if _, err := cp.Move("Alice", geo.Point{X: 100, Y: 100}); err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Lookup("Alice")
	if orig != (geo.Point{X: 1, Y: 1}) {
		t.Error("Clone shares storage with original")
	}
	if cp.Index("Bob") != db.Index("Bob") {
		t.Error("Clone changed indexing")
	}
}

func TestCountInUsersIn(t *testing.T) {
	db := tableI(t)
	// R1 from Figure 1: [0,0,2,3) contains Alice and Bob under half-open
	// semantics covering their integer coordinates.
	r1 := geo.NewRect(0, 0, 2, 3)
	if got := db.CountIn(r1); got != 2 {
		t.Errorf("CountIn(R1) = %d, want 2", got)
	}
	users := db.UsersIn(r1)
	if len(users) != 2 || users[0] != "Alice" || users[1] != "Bob" {
		t.Errorf("UsersIn(R1) = %v", users)
	}
	if got := db.CountIn(geo.NewRect(50, 50, 60, 60)); got != 0 {
		t.Errorf("empty region count = %d", got)
	}
}

func TestBounds(t *testing.T) {
	db := tableI(t)
	b := db.Bounds()
	for _, r := range db.Records() {
		if !b.Contains(r.Loc) {
			t.Errorf("bounds %v excludes %v", b, r.Loc)
		}
	}
	var empty DB
	if !empty.Bounds().Empty() {
		t.Error("empty DB should have empty bounds")
	}
}

func TestSample(t *testing.T) {
	db := tableI(t)
	rng := rand.New(rand.NewSource(7))
	s, err := db.Sample(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("sample len %d", s.Len())
	}
	for _, r := range s.Records() {
		orig, err := db.Lookup(r.UserID)
		if err != nil || orig != r.Loc {
			t.Errorf("sampled record %v not in master", r)
		}
	}
	if _, err := db.Sample(rng, 10); err == nil {
		t.Error("oversized sample should fail")
	}
}

func TestDiff(t *testing.T) {
	db := tableI(t)
	next := db.Clone()
	if _, err := next.Move("Bob", geo.Point{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := next.Move("Tom", geo.Point{X: 4, Y: 3}); err != nil {
		t.Fatal(err)
	}
	moved, err := db.Diff(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 2 || moved[0] != db.Index("Bob") || moved[1] != db.Index("Tom") {
		t.Errorf("moved = %v", moved)
	}
	short := New(1)
	if _, err := db.Diff(short); err == nil {
		t.Error("size-mismatched diff should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := tableI(t)
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip len %d", back.Len())
	}
	for _, r := range db.Records() {
		p, err := back.Lookup(r.UserID)
		if err != nil || p != r.Loc {
			t.Errorf("round trip lost %v", r)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"u1,notanumber,3\n",
		"u1,1,notanumber\n",
		"u1,1,2\nu1,3,4\n", // duplicate user
		"u1,1\n",           // wrong field count
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", in)
		}
	}
}

func TestSortedUserIDs(t *testing.T) {
	db := tableI(t)
	ids := db.SortedUserIDs()
	want := []string{"Alice", "Bob", "Carol", "Sam", "Tom"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortedUserIDs = %v", ids)
		}
	}
}

// Property: CSV round-trips arbitrary snapshots.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(coords []int32) bool {
		db := New(len(coords))
		for i, c := range coords {
			id := "u" + itoa(i)
			if err := db.Add(id, geo.Point{X: c, Y: -c}); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := db.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || back.Len() != db.Len() {
			return false
		}
		for _, r := range db.Records() {
			p, err := back.Lookup(r.UserID)
			if err != nil || p != r.Loc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
