package location

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary byte streams never panic the CSV
// loader and that whatever parses round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("u1,1,2\nu2,3,4\n")
	f.Add("")
	f.Add("u1,notanumber,3\n")
	f.Add("a,,\n")
	f.Add("x,2147483647,-2147483648\n")
	f.Add("u1,1,2\nu1,1,2\n")
	f.Add(strings.Repeat("u,0,0\n", 3))
	f.Fuzz(func(t *testing.T, in string) {
		db, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := db.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed for parsed input: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed size: %d -> %d", db.Len(), back.Len())
		}
		for _, r := range db.Records() {
			p, err := back.Lookup(r.UserID)
			if err != nil || p != r.Loc {
				t.Fatalf("round trip lost %v", r)
			}
		}
	})
}
