package location

import (
	"math/rand"
	"testing"
	"testing/quick"

	"policyanon/internal/geo"
)

func randIndexDB(t *testing.T, rng *rand.Rand, n int, side int32) *DB {
	t.Helper()
	db := New(n)
	for i := 0; i < n; i++ {
		if err := db.Add("g"+itoa(i), geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// bruteCountClosed is the linear-scan oracle.
func bruteCountClosed(db *DB, r geo.Rect) int {
	n := 0
	for _, rec := range db.Records() {
		if r.ContainsClosed(rec.Loc) {
			n++
		}
	}
	return n
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const side = 1024
	db := randIndexDB(t, rng, 2000, side)
	g, err := NewGrid(db, geo.NewRect(0, 0, side, side), 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Int31n(side), rng.Int31n(side)
		w, h := rng.Int31n(side/2), rng.Int31n(side/2)
		r := geo.NewRect(x, y, min32(x+w, side), min32(y+h, side))
		want := bruteCountClosed(db, r)
		if got := g.CountInClosed(r); got != want {
			t.Fatalf("CountInClosed(%v) = %d, want %d", r, got, want)
		}
		users := g.UsersInClosed(r)
		if len(users) != want {
			t.Fatalf("UsersInClosed(%v) returned %d, want %d", r, len(users), want)
		}
		for _, i := range users {
			if !r.ContainsClosed(db.At(int(i)).Loc) {
				t.Fatalf("user %d outside %v", i, r)
			}
		}
	}
}

func TestGridBoundaryRects(t *testing.T) {
	db := New(3)
	for i, p := range []geo.Point{{X: 0, Y: 0}, {X: 63, Y: 63}, {X: 31, Y: 31}} {
		if err := db.Add("b"+itoa(i), p); err != nil {
			t.Fatal(err)
		}
	}
	g, err := NewGrid(db, geo.NewRect(0, 0, 64, 64), 16)
	if err != nil {
		t.Fatal(err)
	}
	// The full map (closed) covers everyone.
	if got := g.CountInClosed(geo.NewRect(0, 0, 64, 64)); got != 3 {
		t.Fatalf("full map count = %d", got)
	}
	// A rect whose closed boundary touches a corner point.
	if got := g.CountInClosed(geo.NewRect(63, 63, 64, 64)); got != 1 {
		t.Fatalf("corner count = %d", got)
	}
	// A rect entirely outside counts nothing (and must not panic).
	if got := g.CountInClosed(geo.NewRect(100, 100, 120, 120)); got != 0 {
		t.Fatalf("outside count = %d", got)
	}
}

func TestGridValidation(t *testing.T) {
	db := New(1)
	if err := db.Add("x", geo.Point{X: 99, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(db, geo.NewRect(0, 0, 64, 64), 8); err == nil {
		t.Fatal("out-of-bounds record accepted")
	}
	if _, err := NewGrid(db, geo.Rect{}, 8); err == nil {
		t.Fatal("empty bounds accepted")
	}
}

// Property: grid counts equal brute force on random rects and cell sizes.
func TestGridProperty(t *testing.T) {
	f := func(seed int64, cell uint8, rx, ry, rw, rh uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New(50)
		for i := 0; i < 50; i++ {
			if err := db.Add("p"+itoa(i), geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}); err != nil {
				return false
			}
		}
		g, err := NewGrid(db, geo.NewRect(0, 0, 256, 256), int32(cell%32)+1)
		if err != nil {
			return false
		}
		r := geo.NewRect(int32(rx), int32(ry), int32(rx)+int32(rw)+1, int32(ry)+int32(rh)+1)
		return g.CountInClosed(r) == bruteCountClosed(db, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
