// Package location implements the location database of Section II-A: the
// (possibly virtual) relation D = {userid, locx, locy} that the Mobile
// Positioning Center exposes to the CSP, refreshed periodically as users
// move. A DB value is one snapshot; a sequence of snapshots models the
// database over time.
package location

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"

	"policyanon/internal/geo"
)

// Record is one tuple of the location database.
type Record struct {
	UserID string
	Loc    geo.Point
}

// DB is a snapshot of the location database. The zero value is an empty
// snapshot ready for use.
type DB struct {
	records []Record
	byUser  map[string]int // user id -> index in records
	version uint64         // bumped on every mutation; see Version
}

// ErrDuplicateUser is returned when inserting a user id already present in
// the snapshot.
var ErrDuplicateUser = errors.New("location: duplicate user id")

// ErrUnknownUser is returned by lookups and updates for absent user ids.
var ErrUnknownUser = errors.New("location: unknown user id")

// New returns an empty snapshot with capacity for n records.
func New(n int) *DB {
	return &DB{records: make([]Record, 0, n), byUser: make(map[string]int, n)}
}

// FromRecords builds a snapshot from recs. It fails on duplicate user ids.
func FromRecords(recs []Record) (*DB, error) {
	db := New(len(recs))
	for _, r := range recs {
		if err := db.Add(r.UserID, r.Loc); err != nil {
			return nil, fmt.Errorf("record %q: %w", r.UserID, err)
		}
	}
	return db, nil
}

// Add inserts a user at the given location.
func (db *DB) Add(userID string, loc geo.Point) error {
	if db.byUser == nil {
		db.byUser = make(map[string]int)
	}
	if _, ok := db.byUser[userID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, userID)
	}
	db.byUser[userID] = len(db.records)
	db.records = append(db.records, Record{UserID: userID, Loc: loc})
	db.version++
	return nil
}

// Version returns a counter incremented on every mutation (Add, Move,
// MoveAt). Two calls observing the same version are guaranteed to see the
// same snapshot contents, which lets callers memoize per-snapshot results
// (e.g. the engine caching middleware). Clone preserves the version.
func (db *DB) Version() uint64 { return db.version }

// Len returns the number of users in the snapshot (|D| in the paper).
func (db *DB) Len() int { return len(db.records) }

// At returns the i-th record in insertion order.
func (db *DB) At(i int) Record { return db.records[i] }

// Records returns the backing record slice. Callers must not mutate it.
func (db *DB) Records() []Record { return db.records }

// Points returns a freshly allocated slice of all user locations in
// insertion order.
func (db *DB) Points() []geo.Point {
	pts := make([]geo.Point, len(db.records))
	for i, r := range db.records {
		pts[i] = r.Loc
	}
	return pts
}

// Lookup returns the location of a user.
func (db *DB) Lookup(userID string) (geo.Point, error) {
	i, ok := db.byUser[userID]
	if !ok {
		return geo.Point{}, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	return db.records[i].Loc, nil
}

// Index returns the record index of a user, or -1 if absent.
func (db *DB) Index(userID string) int {
	i, ok := db.byUser[userID]
	if !ok {
		return -1
	}
	return i
}

// Move updates a user's location in place, modelling one row of the next
// snapshot. It returns the previous location.
func (db *DB) Move(userID string, to geo.Point) (geo.Point, error) {
	i, ok := db.byUser[userID]
	if !ok {
		return geo.Point{}, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	prev := db.records[i].Loc
	db.records[i].Loc = to
	db.version++
	return prev, nil
}

// MoveAt updates the i-th record's location and returns the previous one.
func (db *DB) MoveAt(i int, to geo.Point) geo.Point {
	prev := db.records[i].Loc
	db.records[i].Loc = to
	db.version++
	return prev
}

// Clone returns a deep copy of the snapshot.
func (db *DB) Clone() *DB {
	out := &DB{
		records: append([]Record(nil), db.records...),
		byUser:  make(map[string]int, len(db.byUser)),
		version: db.version,
	}
	for k, v := range db.byUser {
		out.byUser[k] = v
	}
	return out
}

// Sample draws a uniform random sample of n distinct users using rng,
// mirroring the paper's sampling of the 1.75M Master set into smaller
// location databases. It fails if n exceeds the snapshot size.
func (db *DB) Sample(rng *rand.Rand, n int) (*DB, error) {
	if n > len(db.records) {
		return nil, fmt.Errorf("location: sample size %d exceeds population %d", n, len(db.records))
	}
	perm := rng.Perm(len(db.records))
	out := New(n)
	for _, idx := range perm[:n] {
		r := db.records[idx]
		if err := out.Add(r.UserID, r.Loc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Bounds returns the tight bounding rectangle of all locations (half-open),
// or an empty rectangle for an empty snapshot.
func (db *DB) Bounds() geo.Rect {
	var b geo.Rect
	for _, r := range db.records {
		b = b.ExpandToPoint(r.Loc)
	}
	return b
}

// CountIn returns the number of users inside the half-open rectangle r,
// i.e. d(m) of Definition 7 for the quadrant r.
func (db *DB) CountIn(r geo.Rect) int {
	n := 0
	for _, rec := range db.records {
		if r.Contains(rec.Loc) {
			n++
		}
	}
	return n
}

// UsersIn returns the ids of users inside the half-open rectangle r, in
// insertion order.
func (db *DB) UsersIn(r geo.Rect) []string {
	var out []string
	for _, rec := range db.records {
		if r.Contains(rec.Loc) {
			out = append(out, rec.UserID)
		}
	}
	return out
}

// Diff returns the indices of records whose location differs between db and
// next. The two snapshots must contain the same users in the same insertion
// order (users only move between snapshots; arrivals and departures are
// modelled as separate snapshots in this reproduction).
func (db *DB) Diff(next *DB) ([]int, error) {
	if len(db.records) != len(next.records) {
		return nil, fmt.Errorf("location: diff size mismatch %d vs %d", len(db.records), len(next.records))
	}
	var moved []int
	for i := range db.records {
		if db.records[i].UserID != next.records[i].UserID {
			return nil, fmt.Errorf("location: diff user mismatch at %d: %q vs %q",
				i, db.records[i].UserID, next.records[i].UserID)
		}
		if db.records[i].Loc != next.records[i].Loc {
			moved = append(moved, i)
		}
	}
	return moved, nil
}

// WriteCSV writes the snapshot as "userid,locx,locy" rows.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, r := range db.records {
		rec := []string{r.UserID, strconv.FormatInt(int64(r.Loc.X), 10), strconv.FormatInt(int64(r.Loc.Y), 10)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("location: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses "userid,locx,locy" rows into a snapshot.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	db := New(0)
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return db, nil
		}
		if err != nil {
			return nil, fmt.Errorf("location: read csv: %w", err)
		}
		x, err := strconv.ParseInt(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("location: line %d: bad locx %q: %w", line, rec[1], err)
		}
		y, err := strconv.ParseInt(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("location: line %d: bad locy %q: %w", line, rec[2], err)
		}
		if err := db.Add(rec[0], geo.Point{X: int32(x), Y: int32(y)}); err != nil {
			return nil, fmt.Errorf("location: line %d: %w", line, err)
		}
	}
}

// SortedUserIDs returns all user ids in lexicographic order; useful for
// deterministic iteration in tests and reports.
func (db *DB) SortedUserIDs() []string {
	ids := make([]string, 0, len(db.records))
	for _, r := range db.records {
		ids = append(ids, r.UserID)
	}
	sort.Strings(ids)
	return ids
}
