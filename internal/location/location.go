// Package location implements the location database of Section II-A: the
// (possibly virtual) relation D = {userid, locx, locy} that the Mobile
// Positioning Center exposes to the CSP, refreshed periodically as users
// move. A DB value is one snapshot; a sequence of snapshots models the
// database over time.
package location

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"

	"policyanon/internal/geo"
)

// Record is one tuple of the location database.
type Record struct {
	UserID string
	Loc    geo.Point
}

// DB is a snapshot of the location database. The zero value is an empty
// snapshot ready for use.
//
// A snapshot has one of two storage forms. Directly built snapshots are
// flat (one record slice). CloneWithMoves produces paged copy-on-write
// snapshots that share every unchanged record page — and the user index —
// with their parent, so deriving the next published snapshot from a small
// move batch costs O(moves), not O(|D|). Both forms serve reads
// identically; in-place mutation of a paged snapshot transparently
// flattens it first (see ensureMutable).
type DB struct {
	records []Record       // flat storage; nil iff paged
	pages   [][]Record     // copy-on-write storage; nil iff flat
	n       int            // record count when paged
	byUser  map[string]int // user id -> index in records
	// sharedIndex marks byUser as shared with a COW relative; Add copies
	// it before inserting (Move/MoveAt never mutate the index, so location
	// updates keep sharing it).
	sharedIndex bool
	version     uint64 // bumped on every mutation; see Version
}

// Record pages hold 128 entries, matching the published-assignment cloak
// pages: batched random moves touch roughly one page per move, so page
// size sets the COW copy traffic per batch almost linearly (~3 KiB per
// rewritten record), while the page table of the paper's 1.75M Master
// set stays around fourteen thousand entries.
const (
	recPageShift = 7
	recPageSize  = 1 << recPageShift
	recPageMask  = recPageSize - 1
)

// ErrDuplicateUser is returned when inserting a user id already present in
// the snapshot.
var ErrDuplicateUser = errors.New("location: duplicate user id")

// ErrUnknownUser is returned by lookups and updates for absent user ids.
var ErrUnknownUser = errors.New("location: unknown user id")

// New returns an empty snapshot with capacity for n records.
func New(n int) *DB {
	return &DB{records: make([]Record, 0, n), byUser: make(map[string]int, n)}
}

// FromRecords builds a snapshot from recs. It fails on duplicate user ids.
func FromRecords(recs []Record) (*DB, error) {
	db := New(len(recs))
	for _, r := range recs {
		if err := db.Add(r.UserID, r.Loc); err != nil {
			return nil, fmt.Errorf("record %q: %w", r.UserID, err)
		}
	}
	return db, nil
}

// Add inserts a user at the given location.
func (db *DB) Add(userID string, loc geo.Point) error {
	db.ensureMutable()
	if db.byUser == nil {
		db.byUser = make(map[string]int)
	}
	if _, ok := db.byUser[userID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, userID)
	}
	if db.sharedIndex {
		idx := make(map[string]int, len(db.byUser)+1)
		for k, v := range db.byUser {
			idx[k] = v
		}
		db.byUser = idx
		db.sharedIndex = false
	}
	db.byUser[userID] = len(db.records)
	db.records = append(db.records, Record{UserID: userID, Loc: loc})
	db.version++
	return nil
}

// ensureMutable flattens a paged snapshot into flat storage before an
// in-place write, so mutation never writes through pages shared with a
// copy-on-write relative.
func (db *DB) ensureMutable() {
	if db.pages == nil {
		return
	}
	flat := make([]Record, 0, db.n)
	for _, pg := range db.pages {
		flat = append(flat, pg...)
	}
	db.records = flat
	db.pages = nil
	db.n = 0
}

// Version returns a counter incremented on every mutation (Add, Move,
// MoveAt). Two calls observing the same version are guaranteed to see the
// same snapshot contents, which lets callers memoize per-snapshot results
// (e.g. the engine caching middleware). Clone preserves the version.
func (db *DB) Version() uint64 { return db.version }

// Len returns the number of users in the snapshot (|D| in the paper).
func (db *DB) Len() int {
	if db.pages != nil {
		return db.n
	}
	return len(db.records)
}

// At returns the i-th record in insertion order.
func (db *DB) At(i int) Record {
	if db.records != nil {
		return db.records[i]
	}
	return db.pages[i>>recPageShift][i&recPageMask]
}

// forEach visits every record in insertion order.
func (db *DB) forEach(f func(i int, r Record)) {
	if db.records != nil {
		for i := range db.records {
			f(i, db.records[i])
		}
		return
	}
	i := 0
	for _, pg := range db.pages {
		for j := range pg {
			f(i, pg[j])
			i++
		}
	}
}

// Records returns the records in insertion order. For flat snapshots this
// is the backing slice — callers must not mutate it; for paged
// (CloneWithMoves-derived) snapshots each call materializes a fresh copy,
// so concurrent readers never share a lazily built buffer.
func (db *DB) Records() []Record {
	if db.records != nil {
		return db.records
	}
	out := make([]Record, 0, db.n)
	for _, pg := range db.pages {
		out = append(out, pg...)
	}
	return out
}

// Points returns a freshly allocated slice of all user locations in
// insertion order.
func (db *DB) Points() []geo.Point {
	pts := make([]geo.Point, db.Len())
	db.forEach(func(i int, r Record) { pts[i] = r.Loc })
	return pts
}

// Lookup returns the location of a user.
func (db *DB) Lookup(userID string) (geo.Point, error) {
	i, ok := db.byUser[userID]
	if !ok {
		return geo.Point{}, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	return db.At(i).Loc, nil
}

// Index returns the record index of a user, or -1 if absent.
func (db *DB) Index(userID string) int {
	i, ok := db.byUser[userID]
	if !ok {
		return -1
	}
	return i
}

// Move updates a user's location in place, modelling one row of the next
// snapshot. It returns the previous location.
func (db *DB) Move(userID string, to geo.Point) (geo.Point, error) {
	i, ok := db.byUser[userID]
	if !ok {
		return geo.Point{}, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	db.ensureMutable()
	prev := db.records[i].Loc
	db.records[i].Loc = to
	db.version++
	return prev, nil
}

// MoveAt updates the i-th record's location and returns the previous one.
func (db *DB) MoveAt(i int, to geo.Point) geo.Point {
	db.ensureMutable()
	prev := db.records[i].Loc
	db.records[i].Loc = to
	db.version++
	return prev
}

// Clone returns a deep copy of the snapshot.
func (db *DB) Clone() *DB {
	recs := make([]Record, 0, db.Len())
	db.forEach(func(_ int, r Record) { recs = append(recs, r) })
	out := &DB{
		records: recs,
		byUser:  make(map[string]int, len(db.byUser)),
		version: db.version,
	}
	for k, v := range db.byUser {
		out.byUser[k] = v
	}
	return out
}

// CloneWithMoves derives the snapshot that results from applying moves
// (record index -> new location) without copying the database: the derived
// snapshot shares every untouched record page and the user index with db,
// copying only the pages a move lands on, so it costs O(moves) instead of
// the O(|D|) of Clone. Both snapshots remain fully usable; a later
// in-place mutation of either transparently un-shares the touched state.
//
// The version advances by len(moves) — the same count of bumps MoveAt
// would have produced — so a chain of CloneWithMoves snapshots tracks the
// version of a live DB receiving the same moves.
func (db *DB) CloneWithMoves(moves map[int]geo.Point) *DB {
	n := db.Len()
	out := &DB{
		n:           n,
		byUser:      db.byUser,
		sharedIndex: true,
		version:     db.version + uint64(len(moves)),
	}
	db.sharedIndex = true
	if db.pages != nil {
		out.pages = append(make([][]Record, 0, len(db.pages)), db.pages...)
	} else {
		// Pageify the flat parent by subslicing: no record is copied, and
		// the full-capacity cap keeps an append from ever growing into a
		// neighbouring page. Writes below replace whole pages, so the
		// parent's storage is never written through.
		out.pages = make([][]Record, (n+recPageSize-1)/recPageSize)
		for p := range out.pages {
			lo := p << recPageShift
			hi := lo + recPageSize
			if hi > n {
				hi = n
			}
			out.pages[p] = db.records[lo:hi:hi]
		}
	}
	copied := make(map[int]struct{}, len(moves)>>4+1)
	for i, to := range moves {
		p := i >> recPageShift
		if _, ok := copied[p]; !ok {
			out.pages[p] = append([]Record(nil), out.pages[p]...)
			copied[p] = struct{}{}
		}
		out.pages[p][i&recPageMask].Loc = to
	}
	return out
}

// Sample draws a uniform random sample of n distinct users using rng,
// mirroring the paper's sampling of the 1.75M Master set into smaller
// location databases. It fails if n exceeds the snapshot size.
func (db *DB) Sample(rng *rand.Rand, n int) (*DB, error) {
	if n > db.Len() {
		return nil, fmt.Errorf("location: sample size %d exceeds population %d", n, db.Len())
	}
	perm := rng.Perm(db.Len())
	out := New(n)
	for _, idx := range perm[:n] {
		r := db.At(idx)
		if err := out.Add(r.UserID, r.Loc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Bounds returns the tight bounding rectangle of all locations (half-open),
// or an empty rectangle for an empty snapshot.
func (db *DB) Bounds() geo.Rect {
	var b geo.Rect
	db.forEach(func(_ int, r Record) { b = b.ExpandToPoint(r.Loc) })
	return b
}

// CountIn returns the number of users inside the half-open rectangle r,
// i.e. d(m) of Definition 7 for the quadrant r.
func (db *DB) CountIn(r geo.Rect) int {
	n := 0
	db.forEach(func(_ int, rec Record) {
		if r.Contains(rec.Loc) {
			n++
		}
	})
	return n
}

// UsersIn returns the ids of users inside the half-open rectangle r, in
// insertion order.
func (db *DB) UsersIn(r geo.Rect) []string {
	var out []string
	db.forEach(func(_ int, rec Record) {
		if r.Contains(rec.Loc) {
			out = append(out, rec.UserID)
		}
	})
	return out
}

// Diff returns the indices of records whose location differs between db and
// next. The two snapshots must contain the same users in the same insertion
// order (users only move between snapshots; arrivals and departures are
// modelled as separate snapshots in this reproduction).
func (db *DB) Diff(next *DB) ([]int, error) {
	if db.Len() != next.Len() {
		return nil, fmt.Errorf("location: diff size mismatch %d vs %d", db.Len(), next.Len())
	}
	var moved []int
	for i := 0; i < db.Len(); i++ {
		a, b := db.At(i), next.At(i)
		if a.UserID != b.UserID {
			return nil, fmt.Errorf("location: diff user mismatch at %d: %q vs %q",
				i, a.UserID, b.UserID)
		}
		if a.Loc != b.Loc {
			moved = append(moved, i)
		}
	}
	return moved, nil
}

// WriteCSV writes the snapshot as "userid,locx,locy" rows.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var werr error
	db.forEach(func(_ int, r Record) {
		if werr != nil {
			return
		}
		rec := []string{r.UserID, strconv.FormatInt(int64(r.Loc.X), 10), strconv.FormatInt(int64(r.Loc.Y), 10)}
		if err := cw.Write(rec); err != nil {
			werr = fmt.Errorf("location: write csv: %w", err)
		}
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses "userid,locx,locy" rows into a snapshot.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	db := New(0)
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return db, nil
		}
		if err != nil {
			return nil, fmt.Errorf("location: read csv: %w", err)
		}
		x, err := strconv.ParseInt(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("location: line %d: bad locx %q: %w", line, rec[1], err)
		}
		y, err := strconv.ParseInt(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("location: line %d: bad locy %q: %w", line, rec[2], err)
		}
		if err := db.Add(rec[0], geo.Point{X: int32(x), Y: int32(y)}); err != nil {
			return nil, fmt.Errorf("location: line %d: %w", line, err)
		}
	}
}

// SortedUserIDs returns all user ids in lexicographic order; useful for
// deterministic iteration in tests and reports.
func (db *DB) SortedUserIDs() []string {
	ids := make([]string, 0, db.Len())
	db.forEach(func(_ int, r Record) { ids = append(ids, r.UserID) })
	sort.Strings(ids)
	return ids
}
