package location

import (
	"math/rand"
	"strconv"
	"testing"

	"policyanon/internal/geo"
)

func cowDB(t testing.TB, n int) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	db := New(n)
	for i := 0; i < n; i++ {
		if err := db.Add("u"+strconv.Itoa(i), geo.Point{X: rng.Int31n(1 << 12), Y: rng.Int31n(1 << 12)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestCloneWithMovesParity: the O(moves) clone must be indistinguishable
// (contents and version) from a deep Clone followed by the same MoveAt
// sequence.
func TestCloneWithMovesParity(t *testing.T) {
	// 1100 records: three pages, so boundary indices cross pages.
	db := cowDB(t, 1100)
	moves := map[int]geo.Point{
		0:    {X: 1, Y: 1},
		511:  {X: 2, Y: 2},
		512:  {X: 3, Y: 3},
		1023: {X: 4, Y: 4},
		1024: {X: 5, Y: 5},
		1099: {X: 6, Y: 6},
	}
	want := db.Clone()
	for i, to := range moves {
		want.MoveAt(i, to)
	}
	got := db.CloneWithMoves(moves)
	if got.Len() != want.Len() {
		t.Fatalf("len %d, want %d", got.Len(), want.Len())
	}
	if got.Version() != want.Version() {
		t.Fatalf("version %d, want %d (parent %d + %d moves)", got.Version(), want.Version(), db.Version(), len(moves))
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("record %d = %+v, want %+v", i, got.At(i), want.At(i))
		}
	}
	// The shared index still resolves users on both sides.
	for _, u := range []string{"u0", "u512", "u1099"} {
		g, err := got.Lookup(u)
		if err != nil {
			t.Fatal(err)
		}
		w, _ := want.Lookup(u)
		if g != w {
			t.Fatalf("Lookup(%s) = %v, want %v", u, g, w)
		}
	}
}

func TestCloneWithMovesChain(t *testing.T) {
	db := cowDB(t, 1100)
	oracle := db.Clone()
	cur := db
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 10; round++ {
		moves := make(map[int]geo.Point, 8)
		for len(moves) < 8 {
			moves[rng.Intn(1100)] = geo.Point{X: rng.Int31n(1 << 12), Y: rng.Int31n(1 << 12)}
		}
		for i, to := range moves {
			oracle.MoveAt(i, to)
		}
		cur = cur.CloneWithMoves(moves)
		if cur.Version() != oracle.Version() {
			t.Fatalf("round %d: version %d, want %d", round, cur.Version(), oracle.Version())
		}
	}
	for i := 0; i < 1100; i++ {
		if cur.At(i) != oracle.At(i) {
			t.Fatalf("record %d = %+v, want %+v", i, cur.At(i), oracle.At(i))
		}
	}
	// Records() on the paged chain tip returns a fresh copy each call:
	// mutating one materialization must not leak into the next.
	r1 := cur.Records()
	r1[0].Loc = geo.Point{X: -99, Y: -99}
	if cur.Records()[0].Loc == (geo.Point{X: -99, Y: -99}) {
		t.Fatal("Records() on a paged snapshot exposed shared storage")
	}
}

// TestCloneWithMovesIsolation: in-place mutation of either side never
// bleeds into the other.
func TestCloneWithMovesIsolation(t *testing.T) {
	parent := cowDB(t, 1100)
	p600 := parent.At(600).Loc
	child := parent.CloneWithMoves(map[int]geo.Point{600: {X: 7, Y: 7}})

	// Mutating the child (forces flatten) leaves the parent alone.
	child.MoveAt(0, geo.Point{X: 8, Y: 8})
	if got := parent.At(0).Loc; got == (geo.Point{X: 8, Y: 8}) {
		t.Fatal("child MoveAt wrote through to parent")
	}
	if got := parent.At(600).Loc; got != p600 {
		t.Fatalf("parent record 600 = %v, want %v", got, p600)
	}
	// Mutating the parent leaves the (already flattened) child alone.
	parent.MoveAt(600, geo.Point{X: 9, Y: 9})
	if got := child.At(600).Loc; got != (geo.Point{X: 7, Y: 7}) {
		t.Fatalf("parent MoveAt visible in child: %v", got)
	}

	// Add on a derived snapshot un-shares the user index: the parent must
	// not learn about the new user.
	fresh := cowDB(t, 700)
	derived := fresh.CloneWithMoves(map[int]geo.Point{1: {X: 1, Y: 1}})
	if err := derived.Add("newcomer", geo.Point{X: 5, Y: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := derived.Lookup("newcomer"); err != nil {
		t.Fatalf("derived lost its own user: %v", err)
	}
	if _, err := fresh.Lookup("newcomer"); err == nil {
		t.Fatal("Add on derived snapshot leaked into the shared index")
	}
	if fresh.Len() != 700 || derived.Len() != 701 {
		t.Fatalf("lens %d/%d, want 700/701", fresh.Len(), derived.Len())
	}
}
