package location

import (
	"fmt"
	"math"

	"policyanon/internal/geo"
)

// Grid is a uniform spatial index over one snapshot, answering containment
// queries (how many / which users fall in a region) without scanning the
// whole database. The attacker's policy-unaware audits and the LBS-side
// tooling use it for large snapshots.
type Grid struct {
	db     *DB
	bounds geo.Rect
	cell   int32
	cols   int32
	rows   int32
	cells  [][]int32 // record indices per cell
}

// NewGrid indexes the snapshot. bounds must contain every location; a
// cell side of 0 picks a default targeting a few users per cell.
func NewGrid(db *DB, bounds geo.Rect, cell int32) (*Grid, error) {
	if bounds.Empty() {
		return nil, fmt.Errorf("location: empty grid bounds")
	}
	if cell <= 0 {
		target := db.Len()/4 + 1
		cell = int32(math.Sqrt(float64(bounds.Area()) / float64(target)))
		if cell < 1 {
			cell = 1
		}
	}
	g := &Grid{
		db: db, bounds: bounds, cell: cell,
		cols: int32((bounds.Width() + int64(cell) - 1) / int64(cell)),
		rows: int32((bounds.Height() + int64(cell) - 1) / int64(cell)),
	}
	g.cells = make([][]int32, int(g.cols)*int(g.rows))
	for i := 0; i < db.Len(); i++ {
		p := db.At(i).Loc
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("location: record %d at %v outside grid bounds %v", i, p, bounds)
		}
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g, nil
}

func (g *Grid) cellOf(p geo.Point) int {
	cx := (p.X - g.bounds.MinX) / g.cell
	cy := (p.Y - g.bounds.MinY) / g.cell
	return int(cy)*int(g.cols) + int(cx)
}

// CountInClosed returns the number of users inside the closed rectangle r
// (boundary included), matching the containment semantics of anonymized
// request cloaks (Definition 2).
func (g *Grid) CountInClosed(r geo.Rect) int {
	n := 0
	g.scan(r, func(i int32) {
		if r.ContainsClosed(g.db.At(int(i)).Loc) {
			n++
		}
	})
	return n
}

// UsersInClosed returns the record indices of users inside the closed
// rectangle, in ascending order per cell scan order.
func (g *Grid) UsersInClosed(r geo.Rect) []int32 {
	var out []int32
	g.scan(r, func(i int32) {
		if r.ContainsClosed(g.db.At(int(i)).Loc) {
			out = append(out, i)
		}
	})
	return out
}

// scan visits every record in cells overlapping the closed rectangle.
func (g *Grid) scan(r geo.Rect, visit func(int32)) {
	clipped := r.Intersect(geo.Rect{
		MinX: g.bounds.MinX, MinY: g.bounds.MinY,
		MaxX: g.bounds.MaxX, MaxY: g.bounds.MaxY,
	})
	if clipped.Empty() && !g.bounds.Intersects(geo.NewRect(r.MinX, r.MinY, r.MaxX+1, r.MaxY+1)) {
		return
	}
	x0 := (clampLo(r.MinX, g.bounds.MinX) - g.bounds.MinX) / g.cell
	y0 := (clampLo(r.MinY, g.bounds.MinY) - g.bounds.MinY) / g.cell
	x1 := (clampHi(r.MaxX, g.bounds.MaxX-1) - g.bounds.MinX) / g.cell
	y1 := (clampHi(r.MaxY, g.bounds.MaxY-1) - g.bounds.MinY) / g.cell
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, i := range g.cells[int(cy)*int(g.cols)+int(cx)] {
				visit(i)
			}
		}
	}
}

func clampLo(v, lo int32) int32 {
	if v < lo {
		return lo
	}
	return v
}

func clampHi(v, hi int32) int32 {
	if v > hi {
		return hi
	}
	return v
}
