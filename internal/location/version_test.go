package location

import (
	"testing"

	"policyanon/internal/geo"
)

// Version must bump on every mutation and survive Clone, because the
// engine caching middleware keys memo entries on (db, version).
func TestVersionTracksMutations(t *testing.T) {
	db := New(0)
	v0 := db.Version()
	if err := db.Add("a", geo.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("b", geo.Point{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	v2 := db.Version()
	if v2 <= v0 {
		t.Fatalf("Add did not bump version: %d -> %d", v0, v2)
	}
	if _, err := db.Move("a", geo.Point{X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	if db.Version() <= v2 {
		t.Fatal("Move did not bump version")
	}
	v3 := db.Version()
	db.MoveAt(1, geo.Point{X: 4, Y: 4})
	if db.Version() <= v3 {
		t.Fatal("MoveAt did not bump version")
	}
	clone := db.Clone()
	if clone.Version() != db.Version() {
		t.Fatalf("Clone version %d != original %d", clone.Version(), db.Version())
	}
	// Mutating the clone must not advance the original.
	before := db.Version()
	clone.MoveAt(0, geo.Point{X: 5, Y: 5})
	if db.Version() != before {
		t.Fatal("clone mutation bumped the original's version")
	}
}
