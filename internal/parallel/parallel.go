// Package parallel implements the scale-out technique of Section V
// ("Parallel Anonymization"): the map is statically partitioned into
// jurisdictions drawn from the nodes of a binary cloaking tree by a greedy
// load-balancing rule, and an independent anonymization server (here: a
// goroutine-backed worker) runs the optimal policy-aware algorithm over
// each jurisdiction. The master policy anonymizes a location by deferring
// to the server owning the jurisdiction it falls in.
//
// Jurisdiction cloaks never span jurisdiction borders, so the combined
// policy can cost slightly more than the single-server optimum; the
// Section VI-D experiment (reproduced in the benchmarks) measures that
// divergence.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/obs"
	"policyanon/internal/tree"
)

// Partition greedily selects up to n jurisdictions from the nodes of a
// binary cloaking tree over db, following the paper's rule: starting from
// {root}, repeatedly replace the heaviest node all of whose children
// contain either zero or at least k locations with its children, until the
// list reaches n entries or no node can be split. The returned rectangles
// partition the map.
func Partition(db *location.DB, bounds geo.Rect, k, n int) ([]geo.Rect, error) {
	return PartitionContext(context.Background(), db, bounds, k, n)
}

// PartitionContext is Partition with tracing: the greedy jurisdiction
// selection is recorded as a "parallel.partition" span.
func PartitionContext(ctx context.Context, db *location.DB, bounds geo.Rect, k, n int) ([]geo.Rect, error) {
	if n < 1 {
		return nil, fmt.Errorf("parallel: need at least 1 jurisdiction, got %d", n)
	}
	ctx, sp := obs.Start(ctx, "parallel.partition")
	if sp != nil {
		sp.SetInt("requested", int64(n))
		defer sp.End()
	}
	t, err := tree.BuildContext(ctx, db.Points(), bounds, tree.Options{Kind: tree.Binary, MinCountToSplit: k})
	if err != nil {
		return nil, err
	}
	list := []tree.NodeID{t.Root()}
	for len(list) < n {
		best := -1
		for i, id := range list {
			if t.IsLeaf(id) {
				continue
			}
			splittable := true
			for _, c := range t.Children(id) {
				if cnt := t.Count(c); cnt != 0 && cnt < k {
					splittable = false
				}
			}
			if !splittable {
				continue
			}
			if best == -1 || t.Count(id) > t.Count(list[best]) {
				best = i
			}
		}
		if best == -1 {
			break // no further balanced split possible
		}
		id := list[best]
		list = append(list[:best], list[best+1:]...)
		list = append(list, t.Children(id)...)
	}
	// Deterministic order: by rectangle position.
	sort.Slice(list, func(i, j int) bool {
		a, b := t.Rect(list[i]), t.Rect(list[j])
		if a.MinX != b.MinX {
			return a.MinX < b.MinX
		}
		return a.MinY < b.MinY
	})
	out := make([]geo.Rect, len(list))
	for i, id := range list {
		out[i] = t.Rect(id)
	}
	return out, nil
}

// Engine is a pool of per-jurisdiction anonymization servers sharing one
// logical snapshot.
type Engine struct {
	k             int
	db            *location.DB
	jurisdictions []geo.Rect
	servers       []*server
	owner         []int // record index -> jurisdiction index
}

type server struct {
	jurisdiction geo.Rect
	sub          *location.DB
	anon         *core.Anonymizer // core path only (Options.Engine == nil)
	policy       *lbs.Assignment  // engine path only
	globalIdx    []int            // sub record index -> master record index
	elapsed      time.Duration
}

// Options configures the engine.
type Options struct {
	// K is the anonymity parameter (required).
	K int
	// Servers is the requested pool size; the partitioner may return
	// fewer when the population cannot be split further. Default 1.
	Servers int
	// Sequential runs the per-jurisdiction servers one after another
	// instead of concurrently. Use it when measuring CriticalPath on a
	// machine with fewer cores than servers: concurrent goroutines
	// time-slice a shared core, which inflates each server's wall time
	// and makes the per-server measurements meaningless.
	Sequential bool
	// Workers is the intra-tree DP worker budget handed to each
	// jurisdiction server (core.Options.Workers): the two parallelism
	// levels compose, jurisdictions across servers and subtrees within
	// each server's tree. 0 divides GOMAXPROCS evenly across the
	// concurrently running non-empty jurisdictions (so the composition
	// never oversubscribes the machine), or leaves the core automatic
	// policy in charge when servers run sequentially. A negative value
	// forces the sequential DP in every jurisdiction.
	Workers int
	// DP carries the core dynamic-program ablation switches (core path
	// only; ignored when Engine is set).
	DP core.Options
	// Engine, when non-nil, is the per-jurisdiction anonymizer each
	// server runs instead of the built-in core dynamic program. Any
	// engine.Engine works; the core path (nil Engine) additionally keeps
	// the per-server Anonymizer for incremental maintenance and exact
	// OptimalCost reporting.
	Engine engine.Engine
}

// NewEngine partitions the map, shards the snapshot, and runs the bulk
// dynamic program on every non-empty jurisdiction concurrently, one
// goroutine per server.
func NewEngine(db *location.DB, bounds geo.Rect, opt Options) (*Engine, error) {
	return NewEngineContext(context.Background(), db, bounds, opt)
}

// NewEngineContext is NewEngine with tracing: the whole build is recorded
// as a "parallel.build" span; every per-jurisdiction server runs as a
// "parallel.worker" span on its own display lane, so a Chrome trace shows
// the critical-path imbalance that CriticalPath() summarizes as one
// number.
func NewEngineContext(ctx context.Context, db *location.DB, bounds geo.Rect, opt Options) (*Engine, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("parallel: k must be >= 1, got %d", opt.K)
	}
	if opt.Servers < 1 {
		opt.Servers = 1
	}
	ctx, bsp := obs.Start(ctx, "parallel.build")
	if bsp != nil {
		bsp.SetInt("users", int64(db.Len()))
		bsp.SetInt("servers", int64(opt.Servers))
		defer bsp.End()
	}
	jur, err := PartitionContext(ctx, db, bounds, opt.K, opt.Servers)
	if err != nil {
		return nil, err
	}
	e := &Engine{k: opt.K, db: db, jurisdictions: jur, owner: make([]int, db.Len())}
	subs := make([]*location.DB, len(jur))
	globalIdx := make([][]int, len(jur))
	for j := range jur {
		subs[j] = location.New(0)
	}
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		j := ownerOf(jur, rec.Loc)
		if j < 0 {
			return nil, fmt.Errorf("parallel: location %v outside every jurisdiction", rec.Loc)
		}
		e.owner[i] = j
		if err := subs[j].Add(rec.UserID, rec.Loc); err != nil {
			return nil, err
		}
		globalIdx[j] = append(globalIdx[j], i)
	}
	e.servers = make([]*server, len(jur))
	nonEmpty := 0
	for j := range jur {
		if subs[j].Len() > 0 {
			nonEmpty++
		}
	}
	dpWorkers := opt.Workers
	if dpWorkers == 0 && !opt.Sequential && nonEmpty > 0 {
		// Concurrent jurisdictions already occupy one core each; split
		// the machine so intra-tree pools never oversubscribe it.
		if dpWorkers = runtime.GOMAXPROCS(0) / nonEmpty; dpWorkers < 1 {
			dpWorkers = 1
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(jur))
	runServer := func(j int) {
		wctx, wsp := obs.StartLane(ctx, "parallel.worker")
		if wsp != nil {
			wsp.SetInt("jurisdiction", int64(j))
			wsp.SetInt("users", int64(subs[j].Len()))
			if rid := audit.RequestID(ctx); rid != "" {
				// Workers run on their own display lanes; the request ID
				// ties their spans back to the originating request.
				wsp.SetAttr("rid", rid)
			}
		}
		start := time.Now()
		if opt.Engine != nil {
			params := engine.Params{K: opt.K}
			if dpWorkers != 0 {
				// Engines without Info.Parallel ignore the option.
				params.Opts = map[string]string{"workers": strconv.Itoa(dpWorkers)}
			}
			pol, err := opt.Engine.Anonymize(wctx, subs[j], squareOver(jur[j]), params)
			e.servers[j].elapsed = time.Since(start)
			wsp.End()
			if err != nil {
				errs[j] = fmt.Errorf("parallel: jurisdiction %d: %w", j, err)
				return
			}
			e.servers[j].policy = pol
			return
		}
		dp := opt.DP
		if dp.Workers == 0 {
			dp.Workers = dpWorkers
		}
		anon, err := core.NewAnonymizerContext(wctx, subs[j], squareOver(jur[j]), core.AnonymizerOptions{
			K: opt.K, DP: dp,
		})
		e.servers[j].elapsed = time.Since(start)
		wsp.End()
		if err != nil {
			errs[j] = fmt.Errorf("parallel: jurisdiction %d: %w", j, err)
			return
		}
		e.servers[j].anon = anon
	}
	for j := range jur {
		e.servers[j] = &server{jurisdiction: jur[j], sub: subs[j], globalIdx: globalIdx[j]}
	}
	for j := range jur {
		if subs[j].Len() == 0 {
			continue
		}
		if opt.Sequential {
			runServer(j)
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			runServer(j)
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// ownerOf returns the index of the jurisdiction containing p, or -1.
func ownerOf(jur []geo.Rect, p geo.Point) int {
	for j, r := range jur {
		if r.Contains(p) {
			return j
		}
	}
	return -1
}

// squareOver returns a square cloaking-map region for a jurisdiction
// rectangle. Binary-tree jurisdictions are either squares or 1x2 portrait
// semi-quadrants; the latter are anonymized over their own (rectangular)
// region by rooting the binary tree at the semi-quadrant itself, which the
// tree package supports only for squares — so semi-quadrants are covered
// by their bounding square anchored at the rectangle's origin. Cloaks
// remain inside the jurisdiction whenever possible because all its
// locations are, and only the root cloak can spill over.
func squareOver(r geo.Rect) geo.Rect {
	if r.Width() == r.Height() {
		return r
	}
	side := r.Width()
	if r.Height() > side {
		side = r.Height()
	}
	return geo.NewRect(r.MinX, r.MinY, r.MinX+int32(side), r.MinY+int32(side))
}

// NumServers returns the number of jurisdictions (including empty ones).
func (e *Engine) NumServers() int { return len(e.servers) }

// Jurisdictions returns a copy of the map partition; mutating it does not
// affect the engine.
func (e *Engine) Jurisdictions() []geo.Rect {
	return append([]geo.Rect(nil), e.jurisdictions...)
}

// TotalCost sums the per-server optimal costs: the cost of the master
// policy if every user issues one request.
func (e *Engine) TotalCost() (int64, error) {
	var total int64
	for _, s := range e.servers {
		if s.anon == nil {
			if s.policy != nil {
				total += s.policy.Cost()
			}
			continue
		}
		c, err := s.anon.OptimalCost()
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Policy assembles the master policy: each user's cloak comes from the
// server owning her jurisdiction.
func (e *Engine) Policy() (*lbs.Assignment, error) {
	cloaks := make([]geo.Rect, e.db.Len())
	for _, s := range e.servers {
		switch {
		case s.anon != nil:
			sub, err := s.anon.Matrix().Extract()
			if err != nil {
				return nil, err
			}
			for li, gi := range s.globalIdx {
				cloaks[gi] = sub[li]
			}
		case s.policy != nil:
			for li, gi := range s.globalIdx {
				cloaks[gi] = s.policy.CloakAt(li)
			}
		}
	}
	return lbs.NewAssignment(e.db, cloaks)
}

// CriticalPath returns the maximum per-server anonymization time: the
// wall time a deployment with one physical machine per jurisdiction would
// observe (the paper's Figure 4(a) setting). On machines with fewer cores
// than servers, total wall time exceeds this, but the critical path is
// the hardware-independent scaling metric.
func (e *Engine) CriticalPath() time.Duration {
	var worst time.Duration
	for _, s := range e.servers {
		if s.elapsed > worst {
			worst = s.elapsed
		}
	}
	return worst
}

// ServerLoads returns the number of users per jurisdiction, the
// load-balance metric of the greedy partitioner.
func (e *Engine) ServerLoads() []int {
	loads := make([]int, len(e.servers))
	for j, s := range e.servers {
		loads[j] = s.sub.Len()
	}
	return loads
}
