package parallel_test

import (
	"fmt"
	"math/rand"

	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/parallel"
)

// ExampleNewEngine partitions a snapshot over four servers and checks
// that the master policy's cost matches the engine total.
func ExampleNewEngine() {
	rng := rand.New(rand.NewSource(1))
	db := location.New(400)
	for i := 0; i < 400; i++ {
		if err := db.Add(fmt.Sprintf("u%03d", i),
			geo.Point{X: rng.Int31n(1 << 10), Y: rng.Int31n(1 << 10)}); err != nil {
			panic(err)
		}
	}
	eng, err := parallel.NewEngine(db, geo.NewRect(0, 0, 1<<10, 1<<10),
		parallel.Options{K: 10, Servers: 4})
	if err != nil {
		panic(err)
	}
	total, err := eng.TotalCost()
	if err != nil {
		panic(err)
	}
	master, err := eng.Policy()
	if err != nil {
		panic(err)
	}
	fmt.Println("servers:", eng.NumServers())
	fmt.Println("master cost equals engine total:", master.Cost() == total)
	// Output:
	// servers: 4
	// master cost equals engine total: true
}
