package parallel

import (
	"context"
	"fmt"
	"strconv"

	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// DefaultServers is the jurisdiction count the registered "parallel"
// engine requests when the "servers" option is absent — the smallest pool
// where the Section V partition is non-trivial.
const DefaultServers = 4

// init self-registers the parallel deployment into the engine registry,
// demonstrating that the registry is open: the engine package never
// imports this one. The registered engine runs the bulkdp-binary optimum
// independently per jurisdiction; "servers" (int), "sequential" ("true"),
// and "workers" (int, per-jurisdiction intra-tree DP pool) options map
// onto Options.
func init() {
	engine.MustRegister(engine.Info{
		Name:        "parallel",
		Description: "Section V parallel deployment: per-jurisdiction bulkdp-binary over a greedy map partition",
		PolicyAware: true,
		Parallel:    true,
	}, engine.New("parallel", func(ctx context.Context, db *location.DB, bounds geo.Rect, p engine.Params) (*lbs.Assignment, error) {
		servers := DefaultServers
		if v := p.Opt("servers", ""); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("parallel: option servers=%q: %w", v, err)
			}
			servers = n
		}
		workers := 0
		if v := p.Opt("workers", ""); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("parallel: option workers=%q: %w", v, err)
			}
			workers = n
		}
		e, err := NewEngineContext(ctx, db, bounds, Options{
			K:          p.K,
			Servers:    servers,
			Sequential: p.Opt("sequential", "") == "true",
			Workers:    workers,
		})
		if err != nil {
			return nil, err
		}
		return e.Policy()
	}))
}
