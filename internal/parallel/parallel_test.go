package parallel

import (
	"math/rand"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/workload"
)

func synthDB(t *testing.T, n int, seed int64) (*location.DB, geo.Rect) {
	t.Helper()
	cfg := workload.Config{
		MapSide: 1 << 12, Intersections: n / 5, UsersPerIntersection: 5, SpreadSigma: 60,
	}
	db := workload.Generate(cfg, seed)
	return db, workload.MapBounds(cfg.MapSide)
}

func TestPartitionCoversMap(t *testing.T) {
	db, bounds := synthDB(t, 2000, 1)
	const k = 20
	for _, n := range []int{1, 2, 4, 7, 16} {
		jur, err := Partition(db, bounds, k, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(jur) > n {
			t.Fatalf("requested %d jurisdictions, got %d", n, len(jur))
		}
		var area int64
		for i, a := range jur {
			area += a.Area()
			for j := i + 1; j < len(jur); j++ {
				if a.Intersects(jur[j]) {
					t.Fatalf("jurisdictions %v and %v overlap", a, jur[j])
				}
			}
		}
		if area != bounds.Area() {
			t.Fatalf("jurisdiction areas sum to %d, want %d", area, bounds.Area())
		}
		// The greedy rule only splits nodes whose children hold 0 or >= k
		// users, so every jurisdiction must hold 0 or >= k users.
		for _, a := range jur {
			if c := db.CountIn(a); c != 0 && c < k {
				t.Fatalf("jurisdiction %v holds %d users (0 < n < k)", a, c)
			}
		}
	}
}

func TestPartitionRejectsBadN(t *testing.T) {
	db, bounds := synthDB(t, 100, 2)
	if _, err := Partition(db, bounds, 5, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestEngineSingleServerMatchesDirect(t *testing.T) {
	db, bounds := synthDB(t, 1500, 3)
	const k = 15
	eng, err := NewEngine(db, bounds, Options{K: k, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.TotalCost()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("single-server engine cost %d != direct %d", got, want)
	}
}

func TestEngineCostNeverBelowOptimumAndPolicySafe(t *testing.T) {
	db, bounds := synthDB(t, 3000, 4)
	const k = 25
	direct, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := direct.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16} {
		eng, err := NewEngine(db, bounds, Options{K: k, Servers: n})
		if err != nil {
			t.Fatal(err)
		}
		cost, err := eng.TotalCost()
		if err != nil {
			t.Fatal(err)
		}
		if cost < opt {
			t.Fatalf("%d servers: cost %d below single-server optimum %d", n, cost, opt)
		}
		// Section VI-D expectation: divergence stays tiny for modest
		// server pools. Allow 5% here; the benchmark records the real
		// figure.
		if float64(cost) > 1.05*float64(opt) {
			t.Fatalf("%d servers: cost %d diverges more than 5%% from optimum %d", n, cost, opt)
		}
		pol, err := eng.Policy()
		if err != nil {
			t.Fatal(err)
		}
		if pol.Cost() != cost {
			t.Fatalf("%d servers: master policy cost %d != engine total %d", n, pol.Cost(), cost)
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("%d servers: master policy not policy-aware %d-anonymous", n, k)
		}
	}
}

func TestEngineLoadsCoverEveryone(t *testing.T) {
	db, bounds := synthDB(t, 2500, 5)
	eng, err := NewEngine(db, bounds, Options{K: 20, Servers: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range eng.ServerLoads() {
		total += l
	}
	if total != db.Len() {
		t.Fatalf("server loads sum to %d, want %d", total, db.Len())
	}
	if eng.NumServers() != len(eng.Jurisdictions()) {
		t.Fatal("server count does not match jurisdiction count")
	}
}

func TestEngineRejectsBadK(t *testing.T) {
	db, bounds := synthDB(t, 100, 6)
	if _, err := NewEngine(db, bounds, Options{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGreedyPartitionBalancesLoad(t *testing.T) {
	// With a uniform population the heaviest-first greedy rule should
	// produce loads within a small factor of each other.
	rng := rand.New(rand.NewSource(7))
	db := location.New(4096)
	for i := 0; i < 4096; i++ {
		if err := db.Add("u"+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('A'+(i/260)%26))+string(rune('0'+(i/7)%10))+string(rune('a'+(i/2600)%26)), geo.Point{X: rng.Int31n(1 << 12), Y: rng.Int31n(1 << 12)}); err != nil {
			t.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, 1<<12, 1<<12)
	eng, err := NewEngine(db, bounds, Options{K: 10, Servers: 16})
	if err != nil {
		t.Fatal(err)
	}
	loads := eng.ServerLoads()
	maxL, minL := 0, db.Len()
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
		if l < minL {
			minL = l
		}
	}
	if maxL > 4*db.Len()/len(loads) {
		t.Fatalf("heaviest server holds %d users, mean %d", maxL, db.Len()/len(loads))
	}
}
