package parallel

import (
	"testing"

	"policyanon/internal/engine"
)

// TestEngineWorkersBudgetParity checks that the intra-tree DP worker
// budget composes with jurisdiction parallelism without changing the
// master policy: per-jurisdiction matrices are bit-identical regardless
// of the pool size, so the assembled cloaks must be too.
func TestEngineWorkersBudgetParity(t *testing.T) {
	db, bounds := synthDB(t, 2000, 8)
	const k = 20
	seq, err := NewEngine(db, bounds, Options{K: k, Servers: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(db, bounds, Options{K: k, Servers: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.Policy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("costs differ: %d with workers=1, %d with workers=3", a.Cost(), b.Cost())
	}
	for i := 0; i < a.Len(); i++ {
		if a.CloakAt(i) != b.CloakAt(i) {
			t.Fatalf("cloak %d differs: %v sequential, %v parallel", i, a.CloakAt(i), b.CloakAt(i))
		}
	}
}

// TestEngineWorkersBudgetEnginePath checks the budget reaches engines run
// through Options.Engine as the "workers" option.
func TestEngineWorkersBudgetEnginePath(t *testing.T) {
	db, bounds := synthDB(t, 1500, 9)
	const k = 15
	eng, err := engine.Get(engine.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(db, bounds, Options{K: k, Servers: 2, Engine: eng, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(db, bounds, Options{K: k, Servers: 2, Engine: eng, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.Policy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("costs differ: %d with workers=1, %d with workers=4", a.Cost(), b.Cost())
	}
}
