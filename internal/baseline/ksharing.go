package baseline

import (
	"fmt"
	"sort"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// ksGroup is one active cloaking group of the k-sharing anonymizer.
type ksGroup struct {
	cloak   geo.Rect
	members []int
}

// KSharing simulates a k-sharing cloaking anonymizer in the spirit of
// Chow–Mokbel [11] over one snapshot. Requests arrive in the given order
// (record indices; repeats allowed). The anonymizer maintains disjoint
// cloaking groups built on demand:
//
//   - a requester already in an active group is answered with the group's
//     cloak (this is what makes the policy k-sharing: at least k-1 other
//     users in the cloak have the same region as THEIR cloak);
//   - an ungrouped requester founds a new group with her k-1 nearest
//     still-ungrouped users, cloaked by the group's minimum bounding box;
//   - if fewer than k users remain ungrouped, the requester joins the
//     nearest existing group, enlarging its box if needed.
//
// It returns one cloak per request. Because the grouping depends on
// arrival order, the policy leaks to policy-aware attackers; see
// FirstRequestCandidates and the Fig. 6(a) test.
func KSharing(db *location.DB, k int, order []int) ([]geo.Rect, error) {
	n := db.Len()
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, n, k)
	}
	var groups []*ksGroup
	groupOf := make([]*ksGroup, n)
	ungrouped := n
	out := make([]geo.Rect, 0, len(order))
	for _, req := range order {
		if req < 0 || req >= n {
			return nil, fmt.Errorf("baseline: request index %d out of range", req)
		}
		if g := groupOf[req]; g != nil {
			out = append(out, g.cloak)
			continue
		}
		if ungrouped >= k {
			members := nearestUngrouped(db, groupOf, req, k)
			var mbr geo.Rect
			for _, m := range members {
				mbr = mbr.ExpandToPoint(db.At(m).Loc)
			}
			g := &ksGroup{cloak: mbr, members: members}
			for _, m := range members {
				groupOf[m] = g
			}
			ungrouped -= len(members)
			groups = append(groups, g)
			out = append(out, g.cloak)
			continue
		}
		// Fewer than k ungrouped users remain: join the nearest group.
		g := nearestGroup(db, groups, req)
		g.cloak = g.cloak.ExpandToPoint(db.At(req).Loc)
		g.members = append(g.members, req)
		groupOf[req] = g
		ungrouped--
		out = append(out, g.cloak)
	}
	return out, nil
}

// nearestUngrouped returns lead plus its k-1 nearest ungrouped users.
func nearestUngrouped(db *location.DB, groupOf []*ksGroup, lead, k int) []int {
	type cand struct {
		idx  int
		dist int64
	}
	from := db.At(lead).Loc
	var cands []cand
	for i := 0; i < db.Len(); i++ {
		if groupOf[i] != nil || i == lead {
			continue
		}
		cands = append(cands, cand{i, from.DistSq(db.At(i).Loc)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	members := []int{lead}
	for i := 0; i < k-1 && i < len(cands); i++ {
		members = append(members, cands[i].idx)
	}
	return members
}

// nearestGroup returns the group whose nearest member is closest to the
// requester. Callers guarantee at least one group exists (n >= k and the
// requester is ungrouped with fewer than k ungrouped users remaining).
func nearestGroup(db *location.DB, groups []*ksGroup, req int) *ksGroup {
	from := db.At(req).Loc
	var best *ksGroup
	bestDist := int64(-1)
	for _, g := range groups {
		for _, m := range g.members {
			if d := from.DistSq(db.At(m).Loc); best == nil || d < bestDist {
				best, bestDist = g, d
			}
		}
	}
	return best
}

// FirstRequestCandidates models the Fig. 6(a) policy-aware attack on the
// k-sharing anonymizer: the attacker observes the cloak of the FIRST
// request against a fresh snapshot and knows the algorithm, so the
// possible senders are exactly the users u for which a u-first run emits
// the observed cloak.
func FirstRequestCandidates(db *location.DB, k int, observed geo.Rect) ([]string, error) {
	var out []string
	for i := 0; i < db.Len(); i++ {
		cloaks, err := KSharing(db, k, []int{i})
		if err != nil {
			return nil, err
		}
		if cloaks[0] == observed {
			out = append(out, db.At(i).UserID)
		}
	}
	return out, nil
}
