package baseline

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/core"
	"policyanon/internal/geo"
)

// HilbertCloak is a deterministic static grouping, so unlike the k-inside
// policies it survives the policy-aware attacker.
func TestHilbertCloakIsPolicyAwareSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(300)
		k := 2 + rng.Intn(10)
		db := randDB(t, rng, n, 512)
		pol, err := HilbertCloak(db, geo.NewRect(0, 0, 512, 512), k)
		if err != nil {
			t.Fatal(err)
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("trial %d: HilbertCloak breached (n=%d k=%d)", trial, n, k)
		}
		// Bucket sizes are k..2k-1.
		for _, g := range pol.Groups() {
			if len(g.Members) < k || len(g.Members) >= 2*k {
				t.Fatalf("trial %d: bucket size %d outside [k,2k)", trial, len(g.Members))
			}
		}
	}
}

// HilbertCloak and the optimal tree-constrained algorithm are both
// policy-aware safe; their costs are incomparable in general (Hilbert
// buckets use unconstrained bounding boxes, which can undercut tree
// quadrants on uniform data, while curve discontinuities can blow up
// bucket boxes on clustered data). The test pins the safety of both and
// that each cost is positive and finite; the "hilbert" experiment of
// cmd/lbsbench reports the measured ratio.
func TestHilbertVersusOptimumBothSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		n := 100 + rng.Intn(400)
		k := 5 + rng.Intn(15)
		db := randDB(t, rng, n, 1024)
		bounds := geo.NewRect(0, 0, 1024, 1024)
		hil, err := HilbertCloak(db, bounds, k)
		if err != nil {
			t.Fatal(err)
		}
		if !attacker.IsKAnonymous(hil, k, attacker.PolicyAware) {
			t.Fatalf("trial %d: Hilbert policy breached", trial)
		}
		anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := anon.Policy()
		if err != nil {
			t.Fatal(err)
		}
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("trial %d: optimal policy breached", trial)
		}
		if hil.Cost() <= 0 || pol.Cost() <= 0 {
			t.Fatalf("trial %d: degenerate costs %d / %d", trial, hil.Cost(), pol.Cost())
		}
		t.Logf("trial %d (n=%d k=%d): tree-optimal %d vs hilbert %d (ratio %.2f)",
			trial, n, k, pol.Cost(), hil.Cost(), float64(pol.Cost())/float64(hil.Cost()))
	}
}

func TestHilbertCloakErrors(t *testing.T) {
	db := example1DB(t)
	if _, err := HilbertCloak(db, exampleBounds, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := HilbertCloak(db, exampleBounds, 10); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Error("k > |D| accepted")
	}
}

func TestFindMBCCoversKUsersButLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	db := randDB(t, rng, 200, 512)
	bounds := geo.NewRect(0, 0, 512, 512)
	const k = 5
	m, err := FindMBC(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	// Masking: every circle covers its user.
	for i := 0; i < db.Len(); i++ {
		if !m.CircleAt(i).ContainsPoint(db.At(i).Loc) {
			t.Fatalf("circle %d does not cover its user", i)
		}
	}
	// k-inside: every circle covers at least k users (Proposition 2).
	if got := m.PolicyUnawareAnonymity(); got < k {
		t.Fatalf("policy-unaware anonymity %d < k", got)
	}
	// The policy-aware breach: some user's circle is unique to her.
	if got := m.PolicyAwareAnonymity(); got >= k {
		t.Fatalf("expected FindMBC to leak against policy-aware attackers, min group %d", got)
	}
}

// The per-user circle is the minimum bounding circle of the user's
// k-nearest group: verify against a brute-force kNN + MEC on a small
// instance.
func TestFindMBCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	db := randDB(t, rng, 60, 256)
	bounds := geo.NewRect(0, 0, 256, 256)
	const k = 4
	m, err := FindMBC(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		from := db.At(i).Loc
		idx := make([]int, db.Len())
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			da, dbb := from.DistSq(db.At(idx[a]).Loc), from.DistSq(db.At(idx[b]).Loc)
			if da != dbb {
				return da < dbb
			}
			return idx[a] < idx[b]
		})
		pts := make([]geo.Point, k)
		for j := 0; j < k; j++ {
			pts[j] = db.At(idx[j]).Loc
		}
		want := geo.MinEnclosingCircle(pts, rand.New(rand.NewSource(9)))
		got := m.CircleAt(i)
		if got.R < want.R-1e-6 || got.R > want.R+1e-6 {
			t.Fatalf("user %d: MBC radius %v, brute force %v", i, got.R, want.R)
		}
	}
}

func TestFindMBCErrors(t *testing.T) {
	db := example1DB(t)
	if _, err := FindMBC(db, exampleBounds, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FindMBC(db, exampleBounds, 10); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Error("k > |D| accepted")
	}
}
