package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// example1DB reproduces the structure of Table I / Figure 1: Alice and Bob
// adjacent in the southwest, Carol alone in the northwest, Sam and Tom
// together in the southeast. With k=2, every k-inside policy here cloaks
// Carol into a region whose cloaking group is {Carol}.
func example1DB(t *testing.T) *location.DB {
	t.Helper()
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 5}},
		{UserID: "Sam", Loc: geo.Point{X: 5, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 6, Y: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var exampleBounds = geo.NewRect(0, 0, 8, 8)

func randDB(t *testing.T, rng *rand.Rand, n int, side int32) *location.DB {
	t.Helper()
	db := location.New(n)
	for i := 0; i < n; i++ {
		if err := db.Add("u"+itoa(i), geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func itoa(i int) string {
	s := ""
	for {
		s = string(rune('0'+i%10)) + s
		i /= 10
		if i == 0 {
			return s
		}
	}
}

func kInsidePolicies(t *testing.T, db *location.DB, bounds geo.Rect, k int) map[string]*lbs.Assignment {
	t.Helper()
	puq, err := PUQ(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := PUB(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	casper, err := Casper(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*lbs.Assignment{"PUQ": puq, "PUB": pub, "Casper": casper}
}

// Example 1 / Propositions 2 and 3: the k-inside policies resist
// policy-unaware attackers but leak Carol to a policy-aware one.
func TestExample1BreachAcrossKInsidePolicies(t *testing.T) {
	db := example1DB(t)
	const k = 2
	for name, pol := range kInsidePolicies(t, db, exampleBounds, k) {
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyUnaware) {
			t.Errorf("%s: not %d-anonymous against policy-unaware attackers (Prop. 2 violated)", name, k)
		}
		breaches, _ := attacker.Audit(pol, k, attacker.PolicyAware)
		if len(breaches) == 0 {
			t.Errorf("%s: expected a policy-aware breach on Carol (Prop. 3)", name)
			continue
		}
		foundCarol := false
		for _, b := range breaches {
			for _, c := range b.Candidates {
				if c == "Carol" {
					foundCarol = true
				}
			}
		}
		if !foundCarol {
			t.Errorf("%s: breaches %v do not expose Carol", name, breaches)
		}
	}
}

// All three baselines must be k-inside on random data: every emitted cloak
// covers at least k users.
func TestKInsideProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(200)
		k := 2 + rng.Intn(10)
		db := randDB(t, rng, n, 512)
		for name, pol := range kInsidePolicies(t, db, geo.NewRect(0, 0, 512, 512), k) {
			for i := 0; i < db.Len(); i++ {
				if got := db.CountIn(pol.CloakAt(i)); got < k {
					t.Fatalf("%s trial %d: cloak %v of user %d covers %d < k users",
						name, trial, pol.CloakAt(i), i, got)
				}
			}
			if !attacker.IsKAnonymous(pol, k, attacker.PolicyUnaware) {
				t.Fatalf("%s trial %d: Proposition 2 violated", name, trial)
			}
		}
	}
}

// Per-user cloak-size dominance: Casper and PUB cloaks are never larger
// than the PUQ cloak of the same user (they refine quadrants with
// semi-quadrants).
func TestCasperAndPUBDominatePUQ(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(200)
		k := 2 + rng.Intn(8)
		db := randDB(t, rng, n, 256)
		pols := kInsidePolicies(t, db, geo.NewRect(0, 0, 256, 256), k)
		for i := 0; i < db.Len(); i++ {
			pq := pols["PUQ"].CloakAt(i).Area()
			if ca := pols["Casper"].CloakAt(i).Area(); ca > pq {
				t.Fatalf("trial %d user %d: Casper cloak %d > PUQ %d", trial, i, ca, pq)
			}
			if ba := pols["PUB"].CloakAt(i).Area(); ba > pq {
				t.Fatalf("trial %d user %d: PUB cloak %d > PUQ %d", trial, i, ba, pq)
			}
		}
	}
}

// The optimal policy-aware cost can exceed the k-inside costs (the price
// of the stronger guarantee) but can never beat the PUB per-user tightest
// cloak total... it CAN beat it: k-inside is not cost-minimal as a
// grouping. What must always hold is that the policy-aware optimum is at
// least the cost of cloaking every user at its leaf, and that the optimum
// is policy-aware anonymous while the baselines are not necessarily.
func TestOptimumVersusBaselinesSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db := randDB(t, rng, 300, 1024)
	const k = 10
	bounds := geo.NewRect(0, 0, 1024, 1024)
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
		t.Fatal("optimal policy not policy-aware k-anonymous")
	}
	pub, err := PUB(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	// The PUB assignment cloaks each user with the tightest k-inside
	// binary node; the policy-aware optimum must be >= that total since
	// each cloaking group of >= k users at node m gives each member a
	// cloak at least as large as its tightest k-covering ancestor.
	if pol.Cost() < pub.Cost() {
		t.Fatalf("policy-aware optimum %d beat the per-user k-inside lower bound %d", pol.Cost(), pub.Cost())
	}
}

func TestBaselineErrors(t *testing.T) {
	db := example1DB(t)
	if _, err := PUQ(db, exampleBounds, 10); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Errorf("PUQ with k>|D|: %v", err)
	}
	if _, err := PUB(db, exampleBounds, 0); err == nil {
		t.Error("PUB with k=0 accepted")
	}
	if _, err := Casper(db, geo.NewRect(0, 0, 4, 8), 2); err == nil {
		t.Error("non-square bounds accepted")
	}
}

// Figure 6(a): the k-sharing policy's cloak for the first request depends
// on who sent it, so observing the {Carol,Bob} bounding box identifies
// Carol.
func TestKSharingFirstRequestBreach(t *testing.T) {
	db, err := location.FromRecords([]location.Record{
		{UserID: "A", Loc: geo.Point{X: 0, Y: 0}},
		{UserID: "B", Loc: geo.Point{X: 4, Y: 0}},
		{UserID: "C", Loc: geo.Point{X: 9, Y: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	// If C requests first it is grouped with its nearest neighbour B.
	cFirst, err := KSharing(db, k, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	observed := cFirst[0]
	if !observed.ContainsClosed(geo.Point{X: 4, Y: 0}) {
		t.Fatalf("C's group should contain B; cloak %v", observed)
	}
	if observed.ContainsClosed(geo.Point{X: 0, Y: 0}) {
		t.Fatalf("C's group should not reach A; cloak %v", observed)
	}
	// The cloak covers >= k users, so it resists policy-unaware attackers.
	if got := db.CountIn(geo.NewRect(observed.MinX, observed.MinY, observed.MaxX+1, observed.MaxY+1)); got < k {
		t.Fatalf("cloak covers %d < k users", got)
	}
	// The policy-aware attacker reverse-engineers the first sender.
	cand, err := FirstRequestCandidates(db, k, observed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cand) != 1 || cand[0] != "C" {
		t.Fatalf("Fig 6(a) attack: candidates %v, want [C]", cand)
	}
	// Had B been first, the cloak would have grouped B with A instead.
	bFirst, err := KSharing(db, k, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if bFirst[0] == observed {
		t.Fatal("B-first cloak should differ from C-first cloak")
	}
}

// The k-sharing property itself: a request from a user already in an
// active group is answered with exactly the group's cloak.
func TestKSharingSharesCloaks(t *testing.T) {
	db := example1DB(t)
	// Alice founds a group with her nearest neighbour Bob; Bob's own
	// request then reuses the identical cloak.
	cloaks, err := KSharing(db, 2, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cloaks[1] != cloaks[0] || cloaks[2] != cloaks[0] {
		t.Fatalf("group members got different cloaks: %v", cloaks)
	}
}

func TestKSharingValidation(t *testing.T) {
	db := example1DB(t)
	if _, err := KSharing(db, 2, []int{99}); err == nil {
		t.Error("out-of-range request index accepted")
	}
	if _, err := KSharing(db, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KSharing(db, 9, []int{0}); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Error("k>|D| accepted")
	}
	// When every user requests, each emitted cloak covers >= k users and
	// the leftover requester joins an existing group.
	const k = 2
	cloaks, err := KSharing(db, k, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cloaks) != 5 {
		t.Fatalf("got %d cloaks", len(cloaks))
	}
	for i, c := range cloaks {
		closed := geo.NewRect(c.MinX, c.MinY, c.MaxX+1, c.MaxY+1)
		if got := db.CountIn(closed); got < k {
			t.Fatalf("request %d: cloak %v covers %d < k users", i, c, got)
		}
		if !c.ContainsClosed(db.At([]int{0, 1, 2, 3, 4}[i]).Loc) {
			t.Fatalf("request %d: cloak does not mask the requester", i)
		}
	}
}

// Figure 6(b): the nearest-base-station circular cloaking satisfies
// 2-reciprocity yet the policy-aware attacker identifies Alice from the
// circle centered at S1.
func TestKReciprocityCircularBreach(t *testing.T) {
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 4, Y: 0}},
		{UserID: "Bob", Loc: geo.Point{X: 6, Y: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	stations := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	const k = 2
	ca, err := NearestCenterCircles(db, stations, k)
	if err != nil {
		t.Fatal(err)
	}
	// Both cloaks cover both users: the policy is k-inside and
	// 2-reciprocal.
	if !ca.IsKReciprocal(k) {
		t.Fatal("Fig 6(b) layout should satisfy 2-reciprocity")
	}
	for i := 0; i < db.Len(); i++ {
		if got := len(ca.PolicyUnawareCandidates(ca.CircleAt(i))); got < k {
			t.Fatalf("cloak %v covers %d < k users", ca.CircleAt(i), got)
		}
	}
	// The policy-aware attacker observing the S1-centered circle sees
	// only Alice as possible sender.
	aliceCloak := ca.CircleAt(0)
	if aliceCloak.Center != (geo.Point{X: 0, Y: 0}) {
		t.Fatalf("Alice's cloak should be centered at S1, got %v", aliceCloak)
	}
	cand := ca.PolicyAwareCandidates(aliceCloak)
	if len(cand) != 1 || cand[0] != "Alice" {
		t.Fatalf("Fig 6(b) attack: candidates %v, want [Alice]", cand)
	}
	if ca.MinPolicyAwareAnonymity() != 1 {
		t.Fatalf("min policy-aware anonymity = %d, want 1", ca.MinPolicyAwareAnonymity())
	}
}

func TestOptimalCircularBeatsOrMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(8) // 4..11 users
		k := 2
		db := randDB(t, rng, n, 64)
		centers := []geo.Point{
			{X: rng.Int31n(64), Y: rng.Int31n(64)},
			{X: rng.Int31n(64), Y: rng.Int31n(64)},
			{X: rng.Int31n(64), Y: rng.Int31n(64)},
		}
		exact, err := OptimalCircular(db, centers, k)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GreedyCircular(db, centers, k)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Cost() > greedy.Cost()+1e-6 {
			t.Fatalf("trial %d: exact cost %.1f > greedy %.1f", trial, exact.Cost(), greedy.Cost())
		}
		for _, ca := range []*CircleAssignment{exact, greedy} {
			if ca.MinPolicyAwareAnonymity() < k {
				t.Fatalf("trial %d: circular policy not policy-aware %d-anonymous", trial, k)
			}
		}
	}
}

func TestOptimalCircularGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	big := randDB(t, rng, MaxExactCircular+1, 64)
	centers := []geo.Point{{X: 1, Y: 1}}
	if _, err := OptimalCircular(big, centers, 2); err == nil {
		t.Error("oversized exact instance accepted")
	}
	small := randDB(t, rng, 1, 64)
	if _, err := OptimalCircular(small, centers, 2); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Error("insufficient users accepted")
	}
	if _, err := OptimalCircular(randDB(t, rng, 4, 64), nil, 2); err == nil {
		t.Error("no centers accepted")
	}
	if _, err := GreedyCircular(small, centers, 2); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Error("greedy with insufficient users accepted")
	}
	if _, err := NearestCenterCircles(small, centers, 2); !errors.Is(err, core.ErrInsufficientUsers) {
		t.Error("nearest-center with insufficient users accepted")
	}
	if _, err := NearestCenterCircles(big, nil, 2); err == nil {
		t.Error("nearest-center with no centers accepted")
	}
}

func TestCircleAssignmentValidation(t *testing.T) {
	db := example1DB(t)
	circles := make([]geo.Circle, db.Len())
	for i := range circles {
		circles[i] = geo.Circle{Center: geo.Point{X: 4, Y: 4}, Radius: 10}
	}
	if _, err := NewCircleAssignment(db, circles[:2]); err == nil {
		t.Error("short circle slice accepted")
	}
	circles[0] = geo.Circle{Center: geo.Point{X: 7, Y: 7}, Radius: 0.5} // misses Alice
	if _, err := NewCircleAssignment(db, circles); err == nil {
		t.Error("non-masking circle accepted")
	}
}
