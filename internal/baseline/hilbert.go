package baseline

import (
	"fmt"
	"math/bits"
	"sort"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// HilbertCloak implements the space-filling-curve cloaking of Kalnis et
// al. [17]: users are ordered by the Hilbert index of their location and
// partitioned into consecutive rank buckets of k users (the final bucket
// absorbs the remainder, so buckets hold between k and 2k-1 users); each
// bucket shares the minimum bounding rectangle of its members as cloak.
//
// Because the bucketing depends only on the snapshot — not on who asks —
// the policy is deterministic and its cloaking groups all have at least k
// members, so unlike the k-inside tightest-cloak policies it DOES provide
// sender k-anonymity against policy-aware attackers. Its cost is
// incomparable with the optimal quad-/binary-tree policy of the paper:
// Hilbert buckets use unconstrained minimum bounding boxes (not tree
// quadrants), which can undercut the tree-constrained optimum on benign
// data, while curve discontinuities can produce huge elongated boxes on
// clustered data, and the scheme offers no incremental-maintenance or
// parallel-decomposition story. The "hilbert" experiment of cmd/lbsbench
// measures the trade-off on the synthetic Bay-Area workload.
func HilbertCloak(db *location.DB, bounds geo.Rect, k int) (*lbs.Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	n := db.Len()
	if n < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, n, k)
	}
	order := hilbertOrderFor(bounds)
	type ranked struct {
		idx int
		d   uint64
	}
	ranks := make([]ranked, n)
	for i := 0; i < n; i++ {
		p := db.At(i).Loc
		ranks[i] = ranked{idx: i, d: geo.HilbertIndex(order, p.X-bounds.MinX, p.Y-bounds.MinY)}
	}
	sort.Slice(ranks, func(a, b int) bool {
		if ranks[a].d != ranks[b].d {
			return ranks[a].d < ranks[b].d
		}
		return ranks[a].idx < ranks[b].idx
	})
	cloaks := make([]geo.Rect, n)
	for start := 0; start < n; start += k {
		end := start + k
		if n-end < k {
			end = n // final bucket absorbs the remainder
		}
		var mbr geo.Rect
		for _, r := range ranks[start:end] {
			mbr = mbr.ExpandToPoint(db.At(r.idx).Loc)
		}
		for _, r := range ranks[start:end] {
			cloaks[r.idx] = mbr
		}
		if end == n {
			break
		}
	}
	return lbs.NewAssignment(db, cloaks)
}

// hilbertOrderFor picks the smallest curve order covering the bounds.
func hilbertOrderFor(bounds geo.Rect) uint {
	side := bounds.Width()
	if bounds.Height() > side {
		side = bounds.Height()
	}
	if side < 1 {
		return 1
	}
	return uint(bits.Len64(uint64(side - 1)))
}
