package baseline_test

import (
	"fmt"

	"policyanon/internal/attacker"
	"policyanon/internal/baseline"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

func exampleDB() *location.DB {
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 5}},
		{UserID: "Sam", Loc: geo.Point{X: 5, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 6, Y: 2}},
	})
	if err != nil {
		panic(err)
	}
	return db
}

// ExamplePUQ reproduces Example 1: the 2-inside quad-tree policy resists
// policy-unaware attackers but leaks Carol to a policy-aware one.
func ExamplePUQ() {
	pol, err := baseline.PUQ(exampleDB(), geo.NewRect(0, 0, 8, 8), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("safe vs policy-unaware:", attacker.IsKAnonymous(pol, 2, attacker.PolicyUnaware))
	breaches, _ := attacker.Audit(pol, 2, attacker.PolicyAware)
	fmt.Println("policy-aware breaches:", len(breaches))
	// Output:
	// safe vs policy-unaware: true
	// policy-aware breaches: 1
}

// ExampleNearestCenterCircles reproduces the Fig. 6(b) k-reciprocity
// breach: the policy is 2-reciprocal yet the S1-centered circle has a
// single possible sender.
func ExampleNearestCenterCircles() {
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 4, Y: 0}},
		{UserID: "Bob", Loc: geo.Point{X: 6, Y: 0}},
	})
	if err != nil {
		panic(err)
	}
	stations := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	ca, err := baseline.NearestCenterCircles(db, stations, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("2-reciprocal:", ca.IsKReciprocal(2))
	fmt.Println("policy-aware candidates:", ca.PolicyAwareCandidates(ca.CircleAt(0)))
	// Output:
	// 2-reciprocal: true
	// policy-aware candidates: [Alice]
}
