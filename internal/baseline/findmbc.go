package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// MBCAssignment is a per-user minimum-bounding-circle cloaking, the output
// of the FindMBC algorithm of Xu–Cai [27]. Circle centers are free (not
// drawn from a fixed set), so cloaks are geo.FCircle values.
type MBCAssignment struct {
	db      *location.DB
	circles []geo.FCircle
}

// FindMBC computes, for every user, the minimum bounding circle of the
// user and her k-1 nearest neighbours — the tightest circular k-inside
// cloak. Like all tightest-cloak policies it resists policy-unaware
// attackers (every circle covers at least k users) but collapses against
// a policy-aware one: distinct users almost always get distinct circles,
// so the cloaking group of an observed circle is nearly a singleton. The
// paper notes (Section VII) that by Theorem 1 extending FindMBC to
// optimal policy-aware anonymization is likely hard.
func FindMBC(db *location.DB, bounds geo.Rect, k int) (*MBCAssignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	n := db.Len()
	if n < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, n, k)
	}
	grid, err := location.NewGrid(db, bounds, 0)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1)) // Welzl shuffle only; result is unique
	circles := make([]geo.FCircle, n)
	for i := 0; i < n; i++ {
		group := kNearest(db, grid, bounds, i, k)
		pts := make([]geo.Point, len(group))
		for j, g := range group {
			pts[j] = db.At(g).Loc
		}
		circles[i] = geo.MinEnclosingCircle(pts, rng)
	}
	return &MBCAssignment{db: db, circles: circles}, nil
}

// kNearest returns user i and its k-1 nearest users (by squared Euclidean
// distance, ties by index), using an expanding grid search. The search
// stops when the k-th nearest candidate provably cannot be beaten by any
// user outside the scanned square (its distance fits within the square's
// inradius) or when the square covers the whole map.
func kNearest(db *location.DB, grid *location.Grid, bounds geo.Rect, i, k int) []int {
	from := db.At(i).Loc
	for side := int32(64); ; side *= 2 {
		r := geo.NewRect(
			maxI32(from.X-side, bounds.MinX), maxI32(from.Y-side, bounds.MinY),
			minI32(from.X+side, bounds.MaxX), minI32(from.Y+side, bounds.MaxY),
		)
		coversAll := r == bounds
		cand := grid.UsersInClosed(r)
		if len(cand) >= k {
			type dc struct {
				idx int
				d   int64
			}
			ds := make([]dc, 0, len(cand))
			for _, c := range cand {
				ds = append(ds, dc{int(c), from.DistSq(db.At(int(c)).Loc)})
			}
			sort.Slice(ds, func(a, b int) bool {
				if ds[a].d != ds[b].d {
					return ds[a].d < ds[b].d
				}
				return ds[a].idx < ds[b].idx
			})
			if coversAll || ds[k-1].d <= int64(side)*int64(side) {
				out := make([]int, k)
				for j := 0; j < k; j++ {
					out[j] = ds[j].idx
				}
				return out
			}
		}
		if coversAll {
			// Callers guarantee db.Len() >= k, so this is unreachable;
			// guard against infinite loops regardless.
			panic("baseline: kNearest exhausted the map without k users")
		}
	}
}

// DB returns the underlying snapshot.
func (m *MBCAssignment) DB() *location.DB { return m.db }

// CircleAt returns user i's cloak.
func (m *MBCAssignment) CircleAt(i int) geo.FCircle { return m.circles[i] }

// Cost returns the summed cloak areas.
func (m *MBCAssignment) Cost() float64 {
	total := 0.0
	for _, c := range m.circles {
		total += c.Area()
	}
	return total
}

// PolicyUnawareAnonymity returns the smallest number of users covered by
// any emitted circle (>= k by construction).
func (m *MBCAssignment) PolicyUnawareAnonymity() int {
	minN := m.db.Len() + 1
	for _, c := range m.circles {
		n := 0
		for i := 0; i < m.db.Len(); i++ {
			if c.ContainsPoint(m.db.At(i).Loc) {
				n++
			}
		}
		if n < minN {
			minN = n
		}
	}
	if m.db.Len() == 0 {
		return 0
	}
	return minN
}

// PolicyAwareAnonymity returns the smallest cloaking-group size: the
// number of users assigned an identical circle. For FindMBC this is
// typically 1, which is the policy-aware breach.
func (m *MBCAssignment) PolicyAwareAnonymity() int {
	groups := make(map[geo.FCircle]int)
	for _, c := range m.circles {
		groups[c]++
	}
	minN := m.db.Len() + 1
	for _, n := range groups {
		if n < minN {
			minN = n
		}
	}
	if m.db.Len() == 0 {
		return 0
	}
	return minN
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
