package baseline

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// CircleAssignment is a cloaking policy that assigns each user a circular
// cloak whose center comes from a fixed set of candidate centers (public
// landmarks or base stations) — the cloak family of Theorem 1 and of the
// Fig. 6(b) example.
type CircleAssignment struct {
	db      *location.DB
	circles []geo.Circle
}

// NewCircleAssignment validates masking and wraps the per-user circles.
func NewCircleAssignment(db *location.DB, circles []geo.Circle) (*CircleAssignment, error) {
	if len(circles) != db.Len() {
		return nil, fmt.Errorf("baseline: %d circles for %d users", len(circles), db.Len())
	}
	for i, c := range circles {
		if !c.Contains(db.At(i).Loc) {
			return nil, fmt.Errorf("baseline: circle %v does not cover user %q at %v",
				c, db.At(i).UserID, db.At(i).Loc)
		}
	}
	return &CircleAssignment{db: db, circles: circles}, nil
}

// DB returns the underlying snapshot.
func (ca *CircleAssignment) DB() *location.DB { return ca.db }

// CircleAt returns the cloak of the i-th record.
func (ca *CircleAssignment) CircleAt(i int) geo.Circle { return ca.circles[i] }

// Cost returns the summed cloak area over all users (the circular analogue
// of the Section IV cost).
func (ca *CircleAssignment) Cost() float64 {
	var total float64
	for _, c := range ca.circles {
		total += c.Area()
	}
	return total
}

// CircleGroup is a cloaking group of the circular policy.
type CircleGroup struct {
	Circle  geo.Circle
	Members []int
}

// Groups returns the cloaking groups in a deterministic order.
func (ca *CircleAssignment) Groups() []CircleGroup {
	byCircle := make(map[geo.Circle][]int)
	for i, c := range ca.circles {
		byCircle[c] = append(byCircle[c], i)
	}
	groups := make([]CircleGroup, 0, len(byCircle))
	for c, members := range byCircle {
		sort.Ints(members)
		groups = append(groups, CircleGroup{Circle: c, Members: members})
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].Circle, groups[j].Circle
		if a.Center != b.Center {
			if a.Center.X != b.Center.X {
				return a.Center.X < b.Center.X
			}
			return a.Center.Y < b.Center.Y
		}
		return a.Radius < b.Radius
	})
	return groups
}

// PolicyAwareCandidates returns the possible senders of a request with the
// observed circular cloak when the attacker knows the policy: the cloaking
// group of that circle.
func (ca *CircleAssignment) PolicyAwareCandidates(c geo.Circle) []string {
	var out []string
	for i, ci := range ca.circles {
		if ci == c {
			out = append(out, ca.db.At(i).UserID)
		}
	}
	return out
}

// PolicyUnawareCandidates returns every user covered by the circle, the
// candidate set available to an attacker who knows only the cloak family.
func (ca *CircleAssignment) PolicyUnawareCandidates(c geo.Circle) []string {
	var out []string
	for i := 0; i < ca.db.Len(); i++ {
		if c.Contains(ca.db.At(i).Loc) {
			out = append(out, ca.db.At(i).UserID)
		}
	}
	return out
}

// IsKReciprocal checks the k-reciprocity property of [17]: for every user
// x, at least k-1 of the other users inside x's cloak have x inside their
// own cloaks.
func (ca *CircleAssignment) IsKReciprocal(k int) bool {
	n := ca.db.Len()
	for x := 0; x < n; x++ {
		reciprocal := 0
		for y := 0; y < n; y++ {
			if y == x {
				continue
			}
			if ca.circles[x].Contains(ca.db.At(y).Loc) && ca.circles[y].Contains(ca.db.At(x).Loc) {
				reciprocal++
			}
		}
		if reciprocal < k-1 {
			return false
		}
	}
	return true
}

// MinPolicyAwareAnonymity returns the smallest policy-aware candidate set
// over all issued cloaks.
func (ca *CircleAssignment) MinPolicyAwareAnonymity() int {
	groups := ca.Groups()
	if len(groups) == 0 {
		return 0
	}
	minN := ca.db.Len() + 1
	for _, g := range groups {
		if len(g.Members) < minN {
			minN = len(g.Members)
		}
	}
	return minN
}

// NearestCenterCircles computes the Fig. 6(b) policy: each user's cloak is
// the circle centered at her nearest center, with the minimum radius that
// covers at least k users. The resulting cloaking is k-inside (and, in the
// Fig. 6(b) configuration, k-reciprocal) yet breaches policy-aware sender
// k-anonymity.
func NearestCenterCircles(db *location.DB, centers []geo.Point, k int) (*CircleAssignment, error) {
	if len(centers) == 0 {
		return nil, fmt.Errorf("baseline: no candidate centers")
	}
	if db.Len() < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, db.Len(), k)
	}
	circles := make([]geo.Circle, db.Len())
	for i := 0; i < db.Len(); i++ {
		loc := db.At(i).Loc
		best := centers[0]
		for _, c := range centers[1:] {
			if loc.DistSq(c) < loc.DistSq(best) {
				best = c
			}
		}
		circles[i] = geo.Circle{Center: best, Radius: kthNearestRadius(db, best, k)}
		// Masking: the circle covering the k nearest users might not cover
		// the requester herself when she is far from her nearest center;
		// enlarge it to keep the policy masking (Definition 4).
		if d := math.Sqrt(float64(best.DistSq(loc))); d > circles[i].Radius {
			circles[i].Radius = d
		}
	}
	return NewCircleAssignment(db, circles)
}

// kthNearestRadius returns the distance from center to its k-th nearest
// user, i.e. the minimum radius covering at least k users.
func kthNearestRadius(db *location.DB, center geo.Point, k int) float64 {
	ds := make([]int64, db.Len())
	for i := 0; i < db.Len(); i++ {
		ds[i] = center.DistSq(db.At(i).Loc)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return math.Sqrt(float64(ds[k-1]))
}

// MaxExactCircular bounds the exact solver's input size; the subset
// dynamic program below is Θ(3^n · n · |centers|).
const MaxExactCircular = 16

// OptimalCircular solves Optimal Policy-aware Bulk-anonymization with
// Circular cloaks exactly: it partitions the users into cloaking groups of
// size at least k, assigns each group the cheapest covering circle
// centered at a candidate center, and minimizes the summed per-user cloak
// area. Theorem 1 shows the problem NP-complete, and this solver is
// accordingly exponential; it rejects instances above MaxExactCircular
// users and exists to ground-truth the greedy heuristic and to exhibit the
// hardness gap in the ablation benchmarks.
func OptimalCircular(db *location.DB, centers []geo.Point, k int) (*CircleAssignment, error) {
	n := db.Len()
	if n > MaxExactCircular {
		return nil, fmt.Errorf("baseline: exact circular solver limited to %d users, got %d", MaxExactCircular, n)
	}
	if n < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, n, k)
	}
	if len(centers) == 0 {
		return nil, fmt.Errorf("baseline: no candidate centers")
	}
	// distSq[u][c]: squared distance of user u to center c.
	distSq := make([][]int64, n)
	for u := 0; u < n; u++ {
		distSq[u] = make([]int64, len(centers))
		for c, ctr := range centers {
			distSq[u][c] = db.At(u).Loc.DistSq(ctr)
		}
	}
	groupCost := func(mask uint32) (float64, geo.Circle) {
		best := math.Inf(1)
		var bestCircle geo.Circle
		for c, ctr := range centers {
			var worst int64
			for u := 0; u < n; u++ {
				if mask&(1<<u) != 0 && distSq[u][c] > worst {
					worst = distSq[u][c]
				}
			}
			r := math.Sqrt(float64(worst))
			cost := float64(bits.OnesCount32(mask)) * math.Pi * float64(worst)
			if cost < best {
				best = cost
				bestCircle = geo.Circle{Center: ctr, Radius: r}
			}
		}
		return best, bestCircle
	}
	full := uint32(1)<<n - 1
	f := make([]float64, full+1)
	choice := make([]uint32, full+1)
	for s := uint32(1); s <= full; s++ {
		f[s] = math.Inf(1)
		if bits.OnesCount32(s) < k {
			continue
		}
		low := s & (^s + 1) // lowest set bit must be in the chosen group
		rest := s &^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			g := sub | low
			if bits.OnesCount32(g) >= k {
				c, _ := groupCost(g)
				if rem := s &^ g; rem == 0 {
					if c < f[s] {
						f[s], choice[s] = c, g
					}
				} else if !math.IsInf(f[rem], 1) && f[rem]+c < f[s] {
					f[s], choice[s] = f[rem]+c, g
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	if math.IsInf(f[full], 1) {
		return nil, fmt.Errorf("baseline: no feasible circular partition (internal error)")
	}
	circles := make([]geo.Circle, n)
	for s := full; s != 0; {
		g := choice[s]
		_, circle := groupCost(g)
		for u := 0; u < n; u++ {
			if g&(1<<u) != 0 {
				circles[u] = circle
			}
		}
		s &^= g
	}
	return NewCircleAssignment(db, circles)
}

// GreedyCircular is the polynomial heuristic companion to OptimalCircular:
// while at least 2k users remain, it forms the cheapest (per the summed
// area) group of k users nearest to some candidate center; the final group
// absorbs all remaining users. The result is policy-aware k-anonymous but
// generally suboptimal.
func GreedyCircular(db *location.DB, centers []geo.Point, k int) (*CircleAssignment, error) {
	n := db.Len()
	if n < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, n, k)
	}
	if len(centers) == 0 {
		return nil, fmt.Errorf("baseline: no candidate centers")
	}
	circles := make([]geo.Circle, n)
	grouped := make([]bool, n)
	remaining := n
	for remaining >= 2*k {
		bestCost := math.Inf(1)
		var bestGroup []int
		var bestCircle geo.Circle
		for _, ctr := range centers {
			group := nearestTo(db, grouped, ctr, k)
			if len(group) < k {
				continue
			}
			var worst int64
			for _, u := range group {
				if d := ctr.DistSq(db.At(u).Loc); d > worst {
					worst = d
				}
			}
			cost := float64(k) * math.Pi * float64(worst)
			if cost < bestCost {
				bestCost = cost
				bestGroup = group
				bestCircle = geo.Circle{Center: ctr, Radius: math.Sqrt(float64(worst))}
			}
		}
		for _, u := range bestGroup {
			circles[u] = bestCircle
			grouped[u] = true
		}
		remaining -= len(bestGroup)
	}
	// Final group: everyone left (k <= remaining < 2k), cheapest center.
	var rest []int
	for u := 0; u < n; u++ {
		if !grouped[u] {
			rest = append(rest, u)
		}
	}
	if len(rest) > 0 {
		best := math.Inf(1)
		var bestCircle geo.Circle
		for _, ctr := range centers {
			var worst int64
			for _, u := range rest {
				if d := ctr.DistSq(db.At(u).Loc); d > worst {
					worst = d
				}
			}
			if a := math.Pi * float64(worst); a < best {
				best = a
				bestCircle = geo.Circle{Center: ctr, Radius: math.Sqrt(float64(worst))}
			}
		}
		for _, u := range rest {
			circles[u] = bestCircle
		}
	}
	return NewCircleAssignment(db, circles)
}

// nearestTo returns the (up to) size ungrouped users nearest to the center.
func nearestTo(db *location.DB, grouped []bool, center geo.Point, size int) []int {
	type cand struct {
		idx  int
		dist int64
	}
	var cands []cand
	for i := 0; i < db.Len(); i++ {
		if !grouped[i] {
			cands = append(cands, cand{i, center.DistSq(db.At(i).Loc)})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	if len(cands) > size {
		cands = cands[:size]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}
