// Package baseline implements the prior-art cloaking policies the paper
// compares against and attacks:
//
//   - PUQ, the policy-unaware quad-tree policy of Gruteser–Grunwald [16]:
//     the smallest quadrant containing the requester and at least k-1
//     other users;
//   - PUB, the same discipline over the binary semi-quadrant tree
//     (the "optimum policy-unaware binary tree" of Section VI-B);
//   - Casper, the basic algorithm of Mokbel–Chow–Aref [23], which may also
//     combine a quadrant with one adjacent sibling into a semi-quadrant,
//     choosing adaptively between the horizontal and vertical combination;
//   - a k-sharing grouping policy in the spirit of Chow–Mokbel [11], used
//     to reproduce the Fig. 6(a) policy-aware breach;
//   - circular cloaking with centers from a fixed set: the nearest-center
//     policy of the Fig. 6(b) k-reciprocity breach, a greedy heuristic,
//     and an exact exponential solver for the NP-complete optimal variant
//     of Theorem 1.
//
// All of these are k-inside policies (every emitted cloak covers at least
// k users), so by Proposition 2 they defend against policy-unaware
// attackers; the package's tests demonstrate where each fails against
// policy-aware attackers.
package baseline

import (
	"fmt"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/tree"
)

// PUQ computes the policy-unaware quad-tree cloaking of [16]: each user is
// cloaked by the smallest quadrant containing her and at least k users in
// total.
func PUQ(db *location.DB, bounds geo.Rect, k int) (*lbs.Assignment, error) {
	return kInside(db, bounds, k, tree.Quad)
}

// PUB computes the same tightest-enclosing-node cloaking over the binary
// semi-quadrant tree of Section V.
func PUB(db *location.DB, bounds geo.Rect, k int) (*lbs.Assignment, error) {
	return kInside(db, bounds, k, tree.Binary)
}

func kInside(db *location.DB, bounds geo.Rect, k int, kind tree.Kind) (*lbs.Assignment, error) {
	t, err := buildTree(db, bounds, k, kind)
	if err != nil {
		return nil, err
	}
	cloaks := make([]geo.Rect, db.Len())
	for i := range cloaks {
		id := t.LeafOf(int32(i))
		for t.Count(id) < k {
			id = t.Parent(id)
		}
		cloaks[i] = t.Rect(id)
	}
	return lbs.NewAssignment(db, cloaks)
}

// Casper computes the basic Casper cloaking of [23]: starting from the
// user's cell, it may combine the cell with the adjacent vertical or
// horizontal sibling (forming a semi-quadrant of the parent) before
// falling back to the parent quadrant, always returning the smallest
// option covering at least k users.
func Casper(db *location.DB, bounds geo.Rect, k int) (*lbs.Assignment, error) {
	t, err := buildTree(db, bounds, k, tree.Quad)
	if err != nil {
		return nil, err
	}
	cloaks := make([]geo.Rect, db.Len())
	for i := range cloaks {
		cloaks[i] = casperCloak(t, t.LeafOf(int32(i)), k)
	}
	return lbs.NewAssignment(db, cloaks)
}

// casperCloak walks up from a cell applying the Casper rules.
func casperCloak(t *tree.Tree, id tree.NodeID, k int) geo.Rect {
	for {
		if t.Count(id) >= k {
			return t.Rect(id)
		}
		parent := t.Parent(id)
		if parent == tree.None {
			return t.Rect(id) // fewer than k users overall; callers pre-check
		}
		// The parent's children are ordered SW, SE, NW, NE (the order of
		// geo.Rect.Quadrants, which the tree preserves). Locate id among
		// them and evaluate the two semi-quadrants containing it.
		kids := t.Children(parent)
		ci := -1
		for j, c := range kids {
			if c == id {
				ci = j
			}
		}
		counts := [4]int{}
		for j, c := range kids {
			counts[j] = t.Count(c)
		}
		prect := t.Rect(parent)
		type option struct {
			rect  geo.Rect
			count int
		}
		var vert, horiz option
		switch ci {
		case 0: // SW: vertical partner NW, horizontal partner SE
			vert = option{prect.WestHalf(), counts[0] + counts[2]}
			horiz = option{prect.SouthHalf(), counts[0] + counts[1]}
		case 1: // SE
			vert = option{prect.EastHalf(), counts[1] + counts[3]}
			horiz = option{prect.SouthHalf(), counts[0] + counts[1]}
		case 2: // NW
			vert = option{prect.WestHalf(), counts[0] + counts[2]}
			horiz = option{prect.NorthHalf(), counts[2] + counts[3]}
		case 3: // NE
			vert = option{prect.EastHalf(), counts[1] + counts[3]}
			horiz = option{prect.NorthHalf(), counts[2] + counts[3]}
		}
		switch {
		case vert.count >= k && (horiz.count < k || vert.count <= horiz.count):
			return vert.rect
		case horiz.count >= k:
			return horiz.rect
		}
		id = parent
	}
}

func buildTree(db *location.DB, bounds geo.Rect, k int, kind tree.Kind) (*tree.Tree, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	if db.Len() < k {
		return nil, fmt.Errorf("%w: |D|=%d, k=%d", core.ErrInsufficientUsers, db.Len(), k)
	}
	return tree.Build(db.Points(), bounds, tree.Options{Kind: kind, MinCountToSplit: k})
}
