package history

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/workload"
)

// recordEpochs simulates a few moving snapshots and appends each epoch.
func recordEpochs(t *testing.T, buf *bytes.Buffer, epochs int) (*location.DB, geo.Rect, int) {
	t.Helper()
	const (
		k    = 8
		side = int32(1 << 12)
	)
	rng := rand.New(rand.NewSource(5))
	db := location.New(600)
	for i := 0; i < 600; i++ {
		if err := db.Add(fmt.Sprintf("u%04d", i),
			geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
			t.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, side, side)
	hw := NewWriter(buf)
	for e := 0; e < epochs; e++ {
		anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := anon.Policy()
		if err != nil {
			t.Fatal(err)
		}
		if err := hw.Append(k, bounds, pol); err != nil {
			t.Fatal(err)
		}
		workload.Apply(db, workload.PlanMoves(rng, db, 1.0, 300, side))
	}
	if hw.Epochs() != epochs {
		t.Fatalf("writer counted %d epochs", hw.Epochs())
	}
	return db, bounds, k
}

func TestHistoryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recordEpochs(t, &buf, 4)
	states, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("replayed %d epochs, want 4", len(states))
	}
	for i, st := range states {
		if st.K != 8 || st.DB.Len() != 600 {
			t.Fatalf("epoch %d: k=%d users=%d", i, st.K, st.DB.Len())
		}
	}
	// Snapshots actually differ across epochs (users moved).
	same := 0
	for i := 0; i < states[0].DB.Len(); i++ {
		if states[0].DB.At(i).Loc == states[3].DB.At(i).Loc {
			same++
		}
	}
	if same == states[0].DB.Len() {
		t.Fatal("history recorded identical snapshots")
	}
}

func TestHistoryTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	recordEpochs(t, &buf, 2)
	blob := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(blob[:len(blob)-5])); err == nil {
		t.Fatal("truncated history accepted")
	}
	// Corruption inside an epoch is caught by the checkpoint checksum.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xAA
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted history accepted")
	}
}

func TestHistoryEmpty(t *testing.T) {
	states, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(states) != 0 {
		t.Fatalf("empty history: %v %v", states, err)
	}
	if _, err := ReplayTrajectory(nil, "u0001"); err == nil {
		t.Fatal("replay over empty history accepted")
	}
}

// Replaying the trajectory attack over stored history erodes anonymity
// exactly as the live attack does.
func TestReplayTrajectory(t *testing.T) {
	var buf bytes.Buffer
	recordEpochs(t, &buf, 5)
	states, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cands, err := ReplayTrajectory(states, "u0123")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("true sender lost from the intersection")
	}
	found := false
	for _, u := range cands {
		if u == "u0123" {
			found = true
		}
	}
	if !found {
		t.Fatalf("u0123 missing from its own trajectory candidates %v", cands)
	}
	// The composed set must be no larger than the first epoch's group.
	first := len(states[0].Policy.Groups())
	_ = first
	firstCloak, err := states[0].Policy.CloakOf("u0123")
	if err != nil {
		t.Fatal(err)
	}
	groupSize := 0
	for i := 0; i < states[0].DB.Len(); i++ {
		if states[0].Policy.CloakAt(i) == firstCloak {
			groupSize++
		}
	}
	if len(cands) > groupSize {
		t.Fatalf("composed %d exceeds first-epoch group %d", len(cands), groupSize)
	}
	// Unknown user errors.
	if _, err := ReplayTrajectory(states, "ghost"); err == nil {
		t.Fatal("unknown user accepted")
	}
}
