// Package history stores the sequence of (snapshot, policy) states over
// time. The paper's threat model assumes "the sequence of location
// databases is available to the attacker" (Section II-B); this package is
// that sequence made concrete: an append-only log of checkpoint-encoded
// epochs that can be written to any io.Writer, replayed from any
// io.Reader, and fed to the attacker tooling — e.g. replaying the
// trajectory-aware attack of a pinned user across stored epochs.
package history

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"

	"policyanon/internal/attacker"
	"policyanon/internal/checkpoint"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
)

// Writer appends epochs to an underlying stream.
type Writer struct {
	w      *bufio.Writer
	epochs int
}

// NewWriter wraps a destination stream.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Append records one epoch: the policy (and, via its Assignment, the
// snapshot) under anonymity level k.
func (hw *Writer) Append(k int, bounds geo.Rect, policy *lbs.Assignment) error {
	// Each epoch is a length-prefixed checkpoint blob; reusing the
	// checkpoint format buys the integrity check and safety revalidation.
	var blob bytes.Buffer
	if err := checkpoint.Save(&blob, k, bounds, policy); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	var hdr [8]byte
	putUint64(hdr[:], uint64(blob.Len()))
	if _, err := hw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("history: write header: %w", err)
	}
	if _, err := hw.w.Write(blob.Bytes()); err != nil {
		return fmt.Errorf("history: write epoch: %w", err)
	}
	hw.epochs++
	return hw.w.Flush()
}

// Epochs returns the number of epochs appended so far.
func (hw *Writer) Epochs() int { return hw.epochs }

// Reader iterates the epochs of a history stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps a history stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next stored epoch, or io.EOF at the end of history.
func (hr *Reader) Next() (*checkpoint.State, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(hr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("history: truncated epoch header: %w", err)
	}
	size := getUint64(hdr[:])
	const maxEpoch = 1 << 32
	if size > maxEpoch {
		return nil, fmt.Errorf("history: implausible epoch size %d", size)
	}
	blob := make([]byte, size)
	if _, err := io.ReadFull(hr.r, blob); err != nil {
		return nil, fmt.Errorf("history: truncated epoch body: %w", err)
	}
	st, err := checkpoint.Load(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	return st, nil
}

// ReadAll loads every epoch of a history stream.
func ReadAll(r io.Reader) ([]*checkpoint.State, error) {
	hr := NewReader(r)
	var out []*checkpoint.State
	for {
		st, err := hr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

// ReplayTrajectory reconstructs the trajectory-aware attack over stored
// history for a pinned user: for each epoch where the user exists, the
// observation pairs that epoch's policy with the user's cloak. The
// returned candidate list is the attacker's final intersected set.
func ReplayTrajectory(states []*checkpoint.State, userID string) ([]string, error) {
	var series []attacker.TrajectoryObservation
	for i, st := range states {
		cloak, err := st.Policy.CloakOf(userID)
		if err != nil {
			return nil, fmt.Errorf("history: epoch %d: user %q absent", i, userID)
		}
		series = append(series, attacker.TrajectoryObservation{
			Policy: st.Policy, Cloak: cloak, Aware: attacker.PolicyAware,
		})
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("history: empty history")
	}
	return attacker.TrajectoryCandidates(series), nil
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
