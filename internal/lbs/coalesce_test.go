package lbs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"policyanon/internal/geo"
)

// blockingProvider counts Answer calls and holds each inside the call
// until the gate opens, so a test can pile concurrent requests onto one
// in-flight lookup deterministically.
type blockingProvider struct {
	gate  chan struct{}
	fail  bool
	mu    sync.Mutex
	calls int
}

func (p *blockingProvider) Answer(ar AnonymizedRequest) ([]POI, error) {
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
	<-p.gate
	if p.fail {
		return nil, errors.New("provider down")
	}
	return []POI{{ID: "poi", Loc: geo.Point{X: 1, Y: 1}, Category: "ital"}}, nil
}

func (p *blockingProvider) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// coalesceFixture wires the 5-user table-I policy to a blocking provider.
func coalesceFixture(t *testing.T) (*CSP, *blockingProvider) {
	t.Helper()
	db := tableI(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(2, 0, 8, 8)
	pol, err := NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	provider := &blockingProvider{gate: make(chan struct{})}
	return NewCSP(pol, provider), provider
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightCoalesces is the coalescing contract: N concurrent
// identical requests against one assignment version reach the provider
// exactly once, and every caller gets the shared answer. Run with -race.
func TestSingleflightCoalesces(t *testing.T) {
	csp, provider := coalesceFixture(t)
	const n = 16
	sr := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}, Params: []Param{{Name: "cat", Value: "ital"}}}

	var wg sync.WaitGroup
	errs := make([]error, n)
	answers := make([][]POI, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, answers[i], errs[i] = csp.Serve(sr)
		}(i)
	}
	// One goroutine is the leader, held inside Answer by the gate; the
	// other n-1 must pile onto its flight before we release it.
	waitFor(t, "n-1 coalesced waiters", func() bool {
		_, coalesced := csp.CoalesceStats()
		return coalesced == n-1
	})
	close(provider.gate)
	wg.Wait()

	if got := provider.callCount(); got != 1 {
		t.Fatalf("provider saw %d lookups for %d concurrent identical requests, want 1", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(answers[i]) != 1 || answers[i][0].ID != "poi" {
			t.Fatalf("caller %d got answer %+v, want the shared lookup's answer", i, answers[i])
		}
	}
	flights, coalesced := csp.CoalesceStats()
	if flights != 1 || coalesced != n-1 {
		t.Fatalf("coalesce stats flights=%d coalesced=%d, want 1 and %d", flights, coalesced, n-1)
	}
	// Follow-up requests are plain cache hits, not flights.
	if _, _, err := csp.Serve(sr); err != nil {
		t.Fatal(err)
	}
	if hits, _ := csp.CacheStats(); hits != 1 {
		t.Fatalf("follow-up request: hits=%d, want 1", hits)
	}
}

// TestSingleflightErrorNotCached: a failed lookup propagates the error to
// every coalesced caller and leaves no cache entry or flight behind — the
// next request retries the provider.
func TestSingleflightErrorNotCached(t *testing.T) {
	csp, provider := coalesceFixture(t)
	provider.fail = true
	sr := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}}

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = csp.Serve(sr)
		}(i)
	}
	waitFor(t, "n-1 coalesced waiters", func() bool {
		_, coalesced := csp.CoalesceStats()
		return coalesced == n-1
	})
	close(provider.gate)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: provider failure not propagated", i)
		}
	}
	// The retry reaches the provider again: errors start no cache epoch.
	provider.fail = false
	provider.gate = make(chan struct{})
	close(provider.gate)
	if _, _, err := csp.Serve(sr); err != nil {
		t.Fatal(err)
	}
	if got := provider.callCount(); got != 2 {
		t.Fatalf("provider saw %d lookups, want 2 (error + retry)", got)
	}
	if hits, misses := csp.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d after error+retry, want 0/1", hits, misses)
	}
}

// TestCacheShardIsolation: requests from different jurisdictions (west
// and east cloaks) land in different shards and proceed independently —
// an in-flight west lookup never blocks east traffic. Run with -race.
func TestCacheShardIsolation(t *testing.T) {
	csp, provider := coalesceFixture(t)
	west := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}}
	east := ServiceRequest{UserID: "Tom", Loc: geo.Point{X: 4, Y: 4}}

	wk, ek := keyOf(AnonymizedRequest{Cloak: geo.NewRect(0, 0, 2, 8)}), keyOf(AnonymizedRequest{Cloak: geo.NewRect(2, 0, 8, 8)})
	if shardOf(wk) == shardOf(ek) {
		t.Logf("west and east cloaks share shard %d; isolation still holds per-key", shardOf(wk))
	}

	// Hold a west lookup open; east requests must complete regardless.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := csp.Serve(west); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, "west lookup in flight", func() bool {
		flights, _ := csp.CoalesceStats()
		return flights == 1
	})

	done := make(chan error, 1)
	go func() {
		// The east call will also block inside Answer on the shared gate,
		// so the isolation check is that it gets PAST the cache layer —
		// its own flight registers — while west's lookup is still open.
		_, _, err := csp.Serve(east)
		done <- err
	}()
	waitFor(t, "east flight registered concurrently", func() bool {
		flights, _ := csp.CoalesceStats()
		return flights == 2
	})
	close(provider.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got := provider.callCount(); got != 2 {
		t.Fatalf("provider saw %d lookups, want 2 (one per jurisdiction)", got)
	}
	// Each jurisdiction's entry serves its own followers from cache.
	for _, sr := range []ServiceRequest{west, east} {
		if _, _, err := csp.Serve(sr); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := csp.CacheStats(); hits != 2 || misses != 2 {
		t.Fatalf("cache stats hits=%d misses=%d, want 2/2", hits, misses)
	}
}

// TestCoalesceVersionScoped: a policy swap must not let new requests
// piggyback on a lookup started under the old assignment version, even
// for an identical cloak — the flight key carries the version.
func TestCoalesceVersionScoped(t *testing.T) {
	csp, provider := coalesceFixture(t)
	sr := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := csp.Serve(sr); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, "old-version flight", func() bool {
		flights, _ := csp.CoalesceStats()
		return flights == 1
	})

	// Publish a fresh (identical-shape) policy: same cloaks, new version.
	db := tableI(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(2, 0, 8, 8)
	pol2, err := NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	csp.SetPolicy(pol2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := csp.Serve(sr); err != nil {
			t.Error(err)
		}
	}()
	// The new-version request starts its OWN flight (flights hits 2)
	// rather than coalescing onto the old one.
	waitFor(t, "second flight under the new version", func() bool {
		flights, coalesced := csp.CoalesceStats()
		return flights == 2 && coalesced == 0
	})
	close(provider.gate)
	wg.Wait()
	if got := provider.callCount(); got != 2 {
		t.Fatalf("provider saw %d lookups, want 2 (one per version)", got)
	}
}

// TestConcurrentMixedTraffic hammers the sharded cache from many
// goroutines across both jurisdictions and several parameter sets; the
// provider must see each distinct (cloak, params) exactly once and the
// counters must balance. Run with -race.
func TestConcurrentMixedTraffic(t *testing.T) {
	db := tableI(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(2, 0, 8, 8)
	pol, err := NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	provider := &blockingProvider{gate: make(chan struct{})}
	close(provider.gate) // no blocking: pure throughput interleaving
	csp := NewCSP(pol, provider)

	users := []ServiceRequest{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Tom", Loc: geo.Point{X: 4, Y: 4}},
		{UserID: "Sam", Loc: geo.Point{X: 3, Y: 1}},
	}
	const perUser = 50
	var wg sync.WaitGroup
	for _, u := range users {
		for p := 0; p < 3; p++ {
			sr := u
			sr.Params = []Param{{Name: "cat", Value: fmt.Sprintf("c%d", p)}}
			for i := 0; i < perUser; i++ {
				wg.Add(1)
				go func(sr ServiceRequest) {
					defer wg.Done()
					if _, _, err := csp.Serve(sr); err != nil {
						t.Error(err)
					}
				}(sr)
			}
		}
	}
	wg.Wait()

	// 2 cloaks × 3 parameter sets = 6 distinct lookups at most.
	if got := provider.callCount(); got != 6 {
		t.Fatalf("provider saw %d lookups, want 6", got)
	}
	total := int64(len(users) * 3 * perUser)
	hits, misses := csp.CacheStats()
	flights, coalesced := csp.CoalesceStats()
	if misses != 6 || flights != 6 {
		t.Fatalf("misses=%d flights=%d, want 6/6", misses, flights)
	}
	if hits+misses+coalesced != total {
		t.Fatalf("hits(%d)+misses(%d)+coalesced(%d) != %d requests", hits, misses, coalesced, total)
	}
}
