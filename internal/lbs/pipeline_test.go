package lbs

import (
	"testing"

	"policyanon/internal/geo"
)

// pipelineFixture wires a 5-user policy to a small POI provider.
func pipelineFixture(t *testing.T) (*CSP, *POIProvider) {
	t.Helper()
	db := tableI(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(2, 0, 8, 8)
	pol, err := NewAssignment(db, []geo.Rect{west, west, west, east, east})
	if err != nil {
		t.Fatal(err)
	}
	pois := []POI{
		{ID: "luigi", Loc: geo.Point{X: 1, Y: 3}, Category: "ital"},
		{ID: "mario", Loc: geo.Point{X: 6, Y: 6}, Category: "ital"},
		{ID: "thai1", Loc: geo.Point{X: 4, Y: 4}, Category: "thai"},
	}
	store, err := NewPOIStore(pois, geo.NewRect(0, 0, 8, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	provider := NewPOIProvider(store)
	return NewCSP(pol, provider), provider
}

func TestCSPServeEndToEnd(t *testing.T) {
	csp, provider := pipelineFixture(t)
	sr := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}, Params: []Param{{Name: "cat", Value: "ital"}}}
	ar, answer, err := csp.Serve(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !ar.Masks(sr) {
		t.Fatalf("forwarded request %+v does not mask the origin", ar)
	}
	// The provider's log contains no identity and no precise location.
	log := provider.Log()
	if len(log) != 1 {
		t.Fatalf("provider saw %d requests", len(log))
	}
	if log[0].Cloak.Area() <= 1 {
		t.Fatal("provider learned a degenerate cloak")
	}
	// The client-side filter recovers Alice's true nearest italian POI.
	best, ok := FilterNearest(answer, sr.Loc)
	if !ok || best.ID != "luigi" {
		t.Fatalf("filtered answer = %+v, want luigi", best)
	}
}

func TestCSPCacheSuppressesDuplicates(t *testing.T) {
	csp, provider := pipelineFixture(t)
	params := []Param{{Name: "cat", Value: "ital"}}
	// Alice, Bob and Carol share the same cloak: the provider must see a
	// single request for the three, per the Section VII cache.
	for _, u := range []struct {
		id string
		p  geo.Point
	}{{"Alice", geo.Point{X: 1, Y: 1}}, {"Bob", geo.Point{X: 1, Y: 2}}, {"Carol", geo.Point{X: 1, Y: 4}}} {
		if _, _, err := csp.Serve(ServiceRequest{UserID: u.id, Loc: u.p, Params: params}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(provider.Log()); got != 1 {
		t.Fatalf("provider saw %d requests, want 1 (cache)", got)
	}
	hits, misses := csp.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d", hits, misses)
	}
	// Different parameters bypass the cache entry.
	if _, _, err := csp.Serve(ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1},
		Params: []Param{{Name: "cat", Value: "thai"}}}); err != nil {
		t.Fatal(err)
	}
	if got := len(provider.Log()); got != 2 {
		t.Fatalf("provider saw %d requests, want 2", got)
	}
	// Flushing reports the suppressed round-trips and resets the epoch.
	if sup := csp.FlushCache(); sup != 2 {
		t.Fatalf("FlushCache reported %d suppressed, want 2", sup)
	}
	if _, _, err := csp.Serve(ServiceRequest{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}, Params: params}); err != nil {
		t.Fatal(err)
	}
	if got := len(provider.Log()); got != 3 {
		t.Fatalf("after flush the provider should see a fresh request, saw %d", got)
	}
}

func TestCSPRejectsInvalidRequests(t *testing.T) {
	csp, _ := pipelineFixture(t)
	if _, _, err := csp.Serve(ServiceRequest{UserID: "Eve", Loc: geo.Point{X: 1, Y: 1}}); err == nil {
		t.Fatal("unknown user served")
	}
	if _, _, err := csp.Serve(ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 5, Y: 5}}); err == nil {
		t.Fatal("spoofed location served")
	}
	empty := NewCSP(nil, nil)
	if _, _, err := empty.Serve(ServiceRequest{UserID: "Alice"}); err == nil {
		t.Fatal("CSP without policy served")
	}
}

func TestProviderBilling(t *testing.T) {
	csp, provider := pipelineFixture(t)
	if _, _, err := csp.Serve(ServiceRequest{UserID: "Sam", Loc: geo.Point{X: 3, Y: 1},
		Params: []Param{{Name: "cat", Value: "ital"}}}); err != nil {
		t.Fatal(err)
	}
	b := provider.Billing()
	if b["ital"] == 0 {
		t.Fatalf("billing = %v, want ital answers counted", b)
	}
}

func TestRequestIDsAreUnique(t *testing.T) {
	csp, _ := pipelineFixture(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 5; i++ {
		ar, _, err := csp.Serve(ServiceRequest{UserID: "Tom", Loc: geo.Point{X: 4, Y: 4}})
		if err != nil {
			t.Fatal(err)
		}
		if seen[ar.RID] {
			t.Fatalf("request id %d reused", ar.RID)
		}
		seen[ar.RID] = true
	}
}
