package lbs

import (
	"fmt"
	"math"
	"sort"

	"policyanon/internal/geo"
)

// POI is a point of interest served by the LBS provider.
type POI struct {
	ID       string    `json:"id"`
	Loc      geo.Point `json:"loc"`
	Category string    `json:"category"`
}

// POIStore is the LBS provider's spatial index: a uniform grid over the
// map supporting exact nearest-neighbour, range queries, and the cloaked
// nearest-neighbour candidate evaluation used to answer anonymized
// requests.
type POIStore struct {
	bounds   geo.Rect
	cellSide int32
	cols     int32
	rows     int32
	cells    [][]int
	pois     []POI
	byCat    map[string][]int
}

// NewPOIStore indexes the points of interest. cellSide 0 picks a default
// targeting a few POIs per cell.
func NewPOIStore(pois []POI, bounds geo.Rect, cellSide int32) (*POIStore, error) {
	if bounds.Empty() {
		return nil, fmt.Errorf("lbs: empty POI store bounds")
	}
	if cellSide <= 0 {
		// Aim for ~2 POIs per cell on average.
		cells := len(pois)/2 + 1
		side := math.Sqrt(float64(bounds.Area()) / float64(cells))
		cellSide = int32(side)
		if cellSide < 1 {
			cellSide = 1
		}
	}
	s := &POIStore{
		bounds:   bounds,
		cellSide: cellSide,
		cols:     int32((bounds.Width() + int64(cellSide) - 1) / int64(cellSide)),
		rows:     int32((bounds.Height() + int64(cellSide) - 1) / int64(cellSide)),
		pois:     append([]POI(nil), pois...),
		byCat:    make(map[string][]int),
	}
	s.cells = make([][]int, int(s.cols)*int(s.rows))
	for i, p := range s.pois {
		if !bounds.Contains(p.Loc) {
			return nil, fmt.Errorf("lbs: POI %q at %v outside bounds %v", p.ID, p.Loc, bounds)
		}
		s.cells[s.cellOf(p.Loc)] = append(s.cells[s.cellOf(p.Loc)], i)
		s.byCat[p.Category] = append(s.byCat[p.Category], i)
	}
	return s, nil
}

// Len returns the number of indexed POIs.
func (s *POIStore) Len() int { return len(s.pois) }

// Add indexes a new point of interest. Section VII notes that points of
// interest appear and disappear over time; after mutating the catalogue
// the CSP should flush its result cache (CSP.FlushCache) so stale answers
// are not served past the next epoch.
func (s *POIStore) Add(p POI) error {
	if !s.bounds.Contains(p.Loc) {
		return fmt.Errorf("lbs: POI %q at %v outside bounds %v", p.ID, p.Loc, s.bounds)
	}
	for _, q := range s.pois {
		if q.ID == p.ID {
			return fmt.Errorf("lbs: duplicate POI id %q", p.ID)
		}
	}
	i := len(s.pois)
	s.pois = append(s.pois, p)
	s.cells[s.cellOf(p.Loc)] = append(s.cells[s.cellOf(p.Loc)], i)
	s.byCat[p.Category] = append(s.byCat[p.Category], i)
	return nil
}

// Remove deletes a point of interest by id. It reports whether the id was
// present. Removal rebuilds the affected index entries; the operation is
// O(n) and intended for the paper's "infrequent intervals".
func (s *POIStore) Remove(id string) bool {
	idx := -1
	for i, p := range s.pois {
		if p.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	s.pois = append(s.pois[:idx], s.pois[idx+1:]...)
	// Rebuild the positional indexes: simplest correct maintenance given
	// indices shifted.
	for c := range s.cells {
		s.cells[c] = s.cells[c][:0]
	}
	s.byCat = make(map[string][]int)
	for i, p := range s.pois {
		s.cells[s.cellOf(p.Loc)] = append(s.cells[s.cellOf(p.Loc)], i)
		s.byCat[p.Category] = append(s.byCat[p.Category], i)
	}
	return true
}

func (s *POIStore) cellOf(p geo.Point) int {
	cx := (p.X - s.bounds.MinX) / s.cellSide
	cy := (p.Y - s.bounds.MinY) / s.cellSide
	return int(cy)*int(s.cols) + int(cx)
}

// Nearest returns the POI closest to p (any category), using an expanding
// ring search over the grid. ok is false for an empty store.
func (s *POIStore) Nearest(p geo.Point) (poi POI, ok bool) {
	return s.NearestCategory(p, "")
}

// NearestCategory returns the closest POI of the given category; an empty
// category matches everything.
func (s *POIStore) NearestCategory(p geo.Point, category string) (POI, bool) {
	if len(s.pois) == 0 {
		return POI{}, false
	}
	cx := (p.X - s.bounds.MinX) / s.cellSide
	cy := (p.Y - s.bounds.MinY) / s.cellSide
	bestD := int64(math.MaxInt64)
	bestI := -1
	maxRing := int32(s.cols)
	if s.rows > maxRing {
		maxRing = s.rows
	}
	for ring := int32(0); ring <= maxRing; ring++ {
		// Once a candidate is known, stop when the ring's closest possible
		// point is farther than the candidate.
		if bestI >= 0 {
			minPossible := int64(ring-1) * int64(s.cellSide)
			if minPossible > 0 && minPossible*minPossible > bestD {
				break
			}
		}
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if maxAbs(dx, dy) != ring {
					continue // perimeter cells only
				}
				x, y := cx+dx, cy+dy
				if x < 0 || y < 0 || x >= s.cols || y >= s.rows {
					continue
				}
				for _, i := range s.cells[int(y)*int(s.cols)+int(x)] {
					if category != "" && s.pois[i].Category != category {
						continue
					}
					if d := p.DistSq(s.pois[i].Loc); d < bestD {
						bestD, bestI = d, i
					}
				}
			}
		}
	}
	if bestI < 0 {
		return POI{}, false
	}
	return s.pois[bestI], true
}

// InRange returns the POIs within radius of center, the paper's running
// range-query example ("find gas stations within 2 miles").
func (s *POIStore) InRange(center geo.Point, radius float64, category string) []POI {
	r2 := radius * radius
	var out []POI
	for _, p := range s.pois {
		if category != "" && p.Category != category {
			continue
		}
		if float64(center.DistSq(p.Loc)) <= r2 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CandidateNearest answers an anonymized nearest-neighbour request: it
// returns a set of POIs guaranteed to contain the true nearest neighbour
// of every possible sender location inside the cloak. The client filters
// the candidates against the precise location.
//
// Construction: let r* = min over POIs of the maximum distance from the
// POI to the cloak; any location in the cloak has its nearest neighbour
// within r*, so every POI whose minimum distance to the cloak exceeds r*
// can be pruned. The candidate set size (and hence the processing and
// filtering work) grows with the cloak area, which is why policy cost
// (Section IV) uses cloak area as its utility measure.
func (s *POIStore) CandidateNearest(cloak geo.Rect, category string) []POI {
	idxs := s.byCat[category]
	if category == "" {
		idxs = nil
		for i := range s.pois {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	rStar := int64(math.MaxInt64)
	for _, i := range idxs {
		if d := cloak.MaxDistSqToPoint(s.pois[i].Loc); d < rStar {
			rStar = d
		}
	}
	var out []POI
	for _, i := range idxs {
		if cloak.MinDistSqToPoint(s.pois[i].Loc) <= rStar {
			out = append(out, s.pois[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CandidateKNearest answers an anonymized top-N query: it returns a set
// guaranteed to contain, for every possible sender location in the cloak,
// that location's N nearest POIs. Construction: let rN be the N-th
// smallest over POIs of the maximum distance from the POI to the cloak —
// any cloak location has N POIs within rN — and keep every POI whose
// minimum distance to the cloak is at most rN.
func (s *POIStore) CandidateKNearest(cloak geo.Rect, n int, category string) []POI {
	if n <= 1 {
		return s.CandidateNearest(cloak, category)
	}
	idxs := s.byCat[category]
	if category == "" {
		idxs = nil
		for i := range s.pois {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	maxDists := make([]int64, len(idxs))
	for j, i := range idxs {
		maxDists[j] = cloak.MaxDistSqToPoint(s.pois[i].Loc)
	}
	sorted := append([]int64(nil), maxDists...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	rank := n - 1
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	rN := sorted[rank]
	var out []POI
	for _, i := range idxs {
		if cloak.MinDistSqToPoint(s.pois[i].Loc) <= rN {
			out = append(out, s.pois[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FilterKNearest refines a candidate set to the exact N nearest POIs of
// the precise location (fewer when the set is smaller).
func FilterKNearest(cands []POI, loc geo.Point, n int) []POI {
	out := append([]POI(nil), cands...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := loc.DistSq(out[i].Loc), loc.DistSq(out[j].Loc)
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// CandidateInRange answers an anonymized range query ("find gas stations
// within 2 miles"): it returns every POI within radius of SOME location
// in the cloak, i.e. the union of the exact answers over all possible
// senders. The client filters against the precise location. Smaller
// cloaks yield smaller candidate sets, which is the paper's utility
// argument for minimizing cloak area.
func (s *POIStore) CandidateInRange(cloak geo.Rect, radius float64, category string) []POI {
	r2 := radius * radius
	var out []POI
	for _, p := range s.pois {
		if category != "" && p.Category != category {
			continue
		}
		if float64(cloak.MinDistSqToPoint(p.Loc)) <= r2 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FilterInRange is the client-side refinement of a range-query candidate
// set: the POIs actually within radius of the precise location.
func FilterInRange(cands []POI, loc geo.Point, radius float64) []POI {
	r2 := radius * radius
	var out []POI
	for _, p := range cands {
		if float64(loc.DistSq(p.Loc)) <= r2 {
			out = append(out, p)
		}
	}
	return out
}

// FilterNearest is the client-side refinement step: the exact nearest
// candidate to the user's precise location. ok is false for an empty
// candidate set.
func FilterNearest(cands []POI, loc geo.Point) (POI, bool) {
	best := -1
	bestD := int64(math.MaxInt64)
	for i, p := range cands {
		if d := loc.DistSq(p.Loc); d < bestD {
			bestD, best = d, i
		}
	}
	if best < 0 {
		return POI{}, false
	}
	return cands[best], true
}

func maxAbs(a, b int32) int32 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
