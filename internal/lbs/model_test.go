package lbs

import (
	"errors"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

func tableI(t *testing.T) *location.DB {
	t.Helper()
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 1, Y: 4}},
		{UserID: "Sam", Loc: geo.Point{X: 3, Y: 1}},
		{UserID: "Tom", Loc: geo.Point{X: 4, Y: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var italianRestaurants = []Param{{Name: "poi", Value: "rest"}, {Name: "cat", Value: "ital"}}

func TestServiceRequestValid(t *testing.T) {
	db := tableI(t)
	sr := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}, Params: italianRestaurants}
	if !sr.Valid(db) {
		t.Fatal("Example 2's SR_a should be valid w.r.t. D1")
	}
	if (ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 2, Y: 2}}).Valid(db) {
		t.Fatal("wrong location accepted")
	}
	if (ServiceRequest{UserID: "Eve", Loc: geo.Point{X: 1, Y: 1}}).Valid(db) {
		t.Fatal("unknown user accepted")
	}
}

func TestMasks(t *testing.T) {
	// AR_a of Example 3 masks SR_a of Example 2 (Example 4).
	ar := AnonymizedRequest{RID: 167, Cloak: geo.NewRect(0, 0, 1, 2), Params: italianRestaurants}
	sr := ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}, Params: italianRestaurants}
	if !ar.Masks(sr) {
		t.Fatal("AR_a must mask SR_a")
	}
	// Different parameter vector breaks masking.
	sr2 := sr
	sr2.Params = []Param{{Name: "poi", Value: "groc"}}
	if ar.Masks(sr2) {
		t.Fatal("mismatched V accepted")
	}
	// Location outside the cloak breaks masking.
	sr3 := sr
	sr3.Loc = geo.Point{X: 3, Y: 3}
	if ar.Masks(sr3) {
		t.Fatal("unmasked location accepted")
	}
}

func TestParamsEqual(t *testing.T) {
	a := []Param{{Name: "poi", Value: "rest"}}
	if !ParamsEqual(a, []Param{{Name: "poi", Value: "rest"}}) {
		t.Fatal("equal params rejected")
	}
	if ParamsEqual(a, nil) || ParamsEqual(a, []Param{{Name: "poi", Value: "groc"}}) {
		t.Fatal("unequal params accepted")
	}
}

func TestNewAssignmentValidatesMasking(t *testing.T) {
	db := tableI(t)
	cloaks := make([]geo.Rect, db.Len())
	for i := range cloaks {
		cloaks[i] = geo.NewRect(0, 0, 8, 8)
	}
	a, err := NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	// Non-masking cloak rejected.
	cloaks[2] = geo.NewRect(5, 5, 8, 8) // Carol at (1,4) not inside
	if _, err := NewAssignment(db, cloaks); !errors.Is(err, ErrNotMasking) {
		t.Fatalf("got %v", err)
	}
	// Wrong length rejected.
	if _, err := NewAssignment(db, cloaks[:2]); err == nil {
		t.Fatal("short cloak slice accepted")
	}
}

func TestAnonymize(t *testing.T) {
	db := tableI(t)
	cloaks := make([]geo.Rect, db.Len())
	for i := range cloaks {
		cloaks[i] = geo.NewRect(0, 0, 8, 8)
	}
	a, err := NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	sr := ServiceRequest{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}, Params: italianRestaurants}
	ar, err := a.Anonymize(168, sr)
	if err != nil {
		t.Fatal(err)
	}
	if ar.RID != 168 || !ar.Masks(sr) {
		t.Fatalf("anonymized request %+v does not mask its origin", ar)
	}
	// Invalid request rejected.
	if _, err := a.Anonymize(1, ServiceRequest{UserID: "Bob", Loc: geo.Point{X: 9, Y: 9}}); err == nil {
		t.Fatal("invalid request anonymized")
	}
}

func TestCostAndGroups(t *testing.T) {
	db := tableI(t)
	west := geo.NewRect(0, 0, 2, 8)
	east := geo.NewRect(2, 0, 8, 8)
	cloaks := []geo.Rect{west, west, west, east, east}
	a, err := NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Cost(); got != 3*west.Area()+2*east.Area() {
		t.Fatalf("Cost = %d", got)
	}
	if got := a.AvgArea(); got != float64(3*west.Area()+2*east.Area())/5 {
		t.Fatalf("AvgArea = %v", got)
	}
	groups := a.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Cloak != west || len(groups[0].Members) != 3 {
		t.Fatalf("west group = %+v", groups[0])
	}
	if groups[1].Cloak != east || len(groups[1].Members) != 2 {
		t.Fatalf("east group = %+v", groups[1])
	}
	if c, err := a.CloakOf("Sam"); err != nil || c != east {
		t.Fatalf("CloakOf(Sam) = %v, %v", c, err)
	}
	if _, err := a.CloakOf("Eve"); err == nil {
		t.Fatal("unknown user got a cloak")
	}
}
