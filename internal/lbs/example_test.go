package lbs_test

import (
	"fmt"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// ExampleCSP_Serve runs one request through the privacy-conscious
// pipeline: the provider sees only the cloak, the client filter recovers
// the exact nearest POI.
func ExampleCSP_Serve() {
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 2, Y: 2}},
	})
	if err != nil {
		panic(err)
	}
	cloak := geo.NewRect(0, 0, 4, 4)
	policy, err := lbs.NewAssignment(db, []geo.Rect{cloak, cloak})
	if err != nil {
		panic(err)
	}
	store, err := lbs.NewPOIStore([]lbs.POI{
		{ID: "near", Loc: geo.Point{X: 2, Y: 1}, Category: "gas"},
		{ID: "far", Loc: geo.Point{X: 14, Y: 14}, Category: "gas"},
	}, geo.NewRect(0, 0, 16, 16), 4)
	if err != nil {
		panic(err)
	}
	provider := lbs.NewPOIProvider(store)
	csp := lbs.NewCSP(policy, provider)

	sr := lbs.ServiceRequest{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1},
		Params: []lbs.Param{{Name: "cat", Value: "gas"}}}
	_, answer, err := csp.Serve(sr)
	if err != nil {
		panic(err)
	}
	best, _ := lbs.FilterNearest(answer, sr.Loc)
	fmt.Println("nearest gas station:", best.ID)
	fmt.Println("provider learned identity:", false) // the log holds only cloaks
	// Output:
	// nearest gas station: near
	// provider learned identity: false
}

// ExamplePOIStore_CandidateInRange answers the paper's running range-query
// example over a cloak.
func ExamplePOIStore_CandidateInRange() {
	store, err := lbs.NewPOIStore([]lbs.POI{
		{ID: "a", Loc: geo.Point{X: 2, Y: 2}, Category: "gas"},
		{ID: "b", Loc: geo.Point{X: 30, Y: 30}, Category: "gas"},
	}, geo.NewRect(0, 0, 32, 32), 8)
	if err != nil {
		panic(err)
	}
	cands := store.CandidateInRange(geo.NewRect(0, 0, 4, 4), 5, "gas")
	fmt.Println("candidates within 5 m of the cloak:", len(cands))
	// Output: candidates within 5 m of the cloak: 1
}
