package lbs

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"policyanon/internal/obs"
)

// Provider is the untrusted LBS provider's query interface: it sees only
// anonymized requests.
type Provider interface {
	// Answer returns the candidate POIs for an anonymized request.
	Answer(AnonymizedRequest) ([]POI, error)
}

// POIProvider serves anonymized nearest-neighbour requests from a POIStore
// and logs everything it sees — the log is exactly what a subpoena or hack
// would expose to the attacker of Section III.
type POIProvider struct {
	mu      sync.Mutex
	store   *POIStore
	log     []AnonymizedRequest
	billing map[string]int64 // category -> answers served (the billing model of Section VII)
}

// NewPOIProvider wraps a store.
func NewPOIProvider(store *POIStore) *POIProvider {
	return &POIProvider{store: store, billing: make(map[string]int64)}
}

// Answer serves an anonymized request and logs it. The request's "cat"
// parameter selects the POI category (empty matches all); a "range"
// parameter (meters) switches from nearest-neighbour to a range query.
func (p *POIProvider) Answer(ar AnonymizedRequest) ([]POI, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = append(p.log, ar)
	category, rangeMeters := "", ""
	for _, prm := range ar.Params {
		switch prm.Name {
		case "cat":
			category = prm.Value
		case "range":
			rangeMeters = prm.Value
		}
	}
	var cands []POI
	if rangeMeters != "" {
		radius, err := strconv.ParseFloat(rangeMeters, 64)
		if err != nil || radius < 0 {
			return nil, fmt.Errorf("lbs: bad range parameter %q", rangeMeters)
		}
		cands = p.store.CandidateInRange(ar.Cloak, radius, category)
	} else {
		cands = p.store.CandidateNearest(ar.Cloak, category)
	}
	p.billing[category] += int64(len(cands))
	return cands, nil
}

// Log returns a copy of every anonymized request the provider has seen.
func (p *POIProvider) Log() []AnonymizedRequest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]AnonymizedRequest(nil), p.log...)
}

// Billing returns the per-category answer counts used to charge
// advertisers.
func (p *POIProvider) Billing() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.billing))
	for k, v := range p.billing {
		out[k] = v
	}
	return out
}

// CSP is the trusted anonymizing front end of the privacy-conscious LBS
// model (Section II-B): it holds the policy for the current snapshot,
// anonymizes user requests, forwards them to the provider, and caches
// answers by (cloak, parameters).
//
// The cache is the Section VII defence against frequency-counting attacks
// (the l-diversity / t-closeness analogue): the provider never sees
// duplicate anonymized requests within a cache epoch, so it cannot count
// them; FlushCache starts a new epoch and reports the suppressed request
// count so the CSP can settle billing in aggregate.
type CSP struct {
	mu       sync.Mutex
	policy   *Assignment
	provider Provider
	nextRID  uint64
	cache    map[cacheKey][]POI
	hits     int64
	misses   int64
}

type cacheKey struct {
	cloak  string
	params string
}

func keyOf(ar AnonymizedRequest) cacheKey {
	k := cacheKey{cloak: ar.Cloak.String()}
	for _, p := range ar.Params {
		k.params += p.Name + "=" + p.Value + ";"
	}
	return k
}

// NewCSP wires a policy to a provider.
func NewCSP(policy *Assignment, provider Provider) *CSP {
	return &CSP{policy: policy, provider: provider, cache: make(map[cacheKey][]POI)}
}

// SetPolicy installs the policy for a new snapshot. The cache is kept: for
// stationary points of interest the paper recommends flushing only at
// infrequent intervals.
func (c *CSP) SetPolicy(policy *Assignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = policy
}

// Serve handles one user request end to end: validate, anonymize, answer
// from cache or provider, and return the candidate set together with the
// anonymized request that was (or would have been) forwarded.
func (c *CSP) Serve(sr ServiceRequest) (AnonymizedRequest, []POI, error) {
	return c.ServeContext(context.Background(), sr)
}

// ServeContext is Serve with tracing: when ctx carries an obs.Tracer the
// request is recorded as a "csp.serve" span annotated with the cache
// outcome ("hit" or "miss") and the candidate count, making cache
// effectiveness visible per request in traces and per phase in metrics.
func (c *CSP) ServeContext(ctx context.Context, sr ServiceRequest) (AnonymizedRequest, []POI, error) {
	_, sp := obs.Start(ctx, "csp.serve")
	c.mu.Lock()
	policy := c.policy
	c.nextRID++
	rid := c.nextRID
	c.mu.Unlock()
	if policy == nil {
		sp.End()
		return AnonymizedRequest{}, nil, fmt.Errorf("lbs: no policy installed")
	}
	ar, err := policy.Anonymize(rid, sr)
	if err != nil {
		sp.End()
		return AnonymizedRequest{}, nil, err
	}
	key := keyOf(ar)
	c.mu.Lock()
	cached, ok := c.cache[key]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if ok {
		if sp != nil {
			sp.SetAttr("cache", "hit")
			sp.SetInt("candidates", int64(len(cached)))
			sp.End()
		}
		return ar, cached, nil
	}
	answer, err := c.provider.Answer(ar)
	if err != nil {
		sp.End()
		return ar, nil, fmt.Errorf("lbs: provider: %w", err)
	}
	c.mu.Lock()
	c.misses++
	c.cache[key] = answer
	c.mu.Unlock()
	if sp != nil {
		sp.SetAttr("cache", "miss")
		sp.SetInt("candidates", int64(len(answer)))
		sp.End()
	}
	return ar, answer, nil
}

// CacheStats returns the cache hit and miss counts since the last flush.
func (c *CSP) CacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// FlushCache starts a new cache epoch and returns the number of provider
// round-trips the cache suppressed during the ending epoch.
func (c *CSP) FlushCache() (suppressed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	suppressed = c.hits
	c.cache = make(map[cacheKey][]POI)
	c.hits, c.misses = 0, 0
	return suppressed
}
