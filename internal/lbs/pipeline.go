package lbs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"policyanon/internal/obs"
)

// Provider is the untrusted LBS provider's query interface: it sees only
// anonymized requests.
type Provider interface {
	// Answer returns the candidate POIs for an anonymized request.
	Answer(AnonymizedRequest) ([]POI, error)
}

// POIProvider serves anonymized nearest-neighbour requests from a POIStore
// and logs everything it sees — the log is exactly what a subpoena or hack
// would expose to the attacker of Section III.
type POIProvider struct {
	mu      sync.Mutex
	store   *POIStore
	log     []AnonymizedRequest
	billing map[string]int64 // category -> answers served (the billing model of Section VII)
}

// NewPOIProvider wraps a store.
func NewPOIProvider(store *POIStore) *POIProvider {
	return &POIProvider{store: store, billing: make(map[string]int64)}
}

// Answer serves an anonymized request and logs it. The request's "cat"
// parameter selects the POI category (empty matches all); a "range"
// parameter (meters) switches from nearest-neighbour to a range query.
func (p *POIProvider) Answer(ar AnonymizedRequest) ([]POI, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = append(p.log, ar)
	category, rangeMeters := "", ""
	for _, prm := range ar.Params {
		switch prm.Name {
		case "cat":
			category = prm.Value
		case "range":
			rangeMeters = prm.Value
		}
	}
	var cands []POI
	if rangeMeters != "" {
		radius, err := strconv.ParseFloat(rangeMeters, 64)
		if err != nil || radius < 0 {
			return nil, fmt.Errorf("lbs: bad range parameter %q", rangeMeters)
		}
		cands = p.store.CandidateInRange(ar.Cloak, radius, category)
	} else {
		cands = p.store.CandidateNearest(ar.Cloak, category)
	}
	p.billing[category] += int64(len(cands))
	return cands, nil
}

// Log returns a copy of every anonymized request the provider has seen.
func (p *POIProvider) Log() []AnonymizedRequest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]AnonymizedRequest(nil), p.log...)
}

// Billing returns the per-category answer counts used to charge
// advertisers.
func (p *POIProvider) Billing() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.billing))
	for k, v := range p.billing {
		out[k] = v
	}
	return out
}

// CSP is the trusted anonymizing front end of the privacy-conscious LBS
// model (Section II-B): it holds the policy for the current snapshot,
// anonymizes user requests, forwards them to the provider, and caches
// answers by (cloak, parameters).
//
// The cache is the Section VII defence against frequency-counting attacks
// (the l-diversity / t-closeness analogue): the provider never sees
// duplicate anonymized requests within a cache epoch, so it cannot count
// them; FlushCache starts a new epoch and reports the suppressed request
// count so the CSP can settle billing in aggregate.
//
// The serving hot path is built for concurrency: the policy and the
// request-ID counter are atomics (no lock), the answer cache is sharded
// by cloak hash (cloaks are jurisdiction-aligned spatial regions, so
// shards split the keyspace geographically and concurrent requests from
// different areas never contend), and concurrent misses for the same
// (assignment version, cloak, params) coalesce into ONE provider lookup —
// the singleflight — whose answer every coalesced caller shares, exactly
// as a cache hit would.
type CSP struct {
	policy   atomic.Pointer[Assignment]
	provider Provider
	nextRID  atomic.Uint64
	shards   [cacheShards]cspShard
}

// cacheShards is the shard count of the answer cache; a power of two so
// the hash folds with a mask. 16 shards keep contention negligible well
// past the worker counts the serving benchmarks sweep.
const cacheShards = 16

// cspShard is one cache shard: its slice of the answer map, the in-flight
// singleflight table, and its share of the counters (summed on read).
type cspShard struct {
	mu        sync.Mutex
	cache     map[cacheKey][]POI
	flight    map[flightKey]*flight
	hits      int64
	misses    int64
	flights   int64 // singleflight leaders (provider lookups started)
	coalesced int64 // callers who piggybacked on another's lookup
}

type cacheKey struct {
	cloak  string
	params string
}

// flightKey scopes coalescing to one published assignment version: after
// a policy swap, new requests must not piggyback on a lookup started
// under the old policy.
type flightKey struct {
	version uint64
	key     cacheKey
}

// flight is one in-progress provider lookup. The leader fills answer/err
// before closing done; waiters read after <-done (the close is the
// happens-before edge).
type flight struct {
	done   chan struct{}
	answer []POI
	err    error
}

func keyOf(ar AnonymizedRequest) cacheKey {
	k := cacheKey{cloak: ar.Cloak.String()}
	for _, p := range ar.Params {
		k.params += p.Name + "=" + p.Value + ";"
	}
	return k
}

// shardOf picks the cache shard: FNV-1a over the cloak and parameter
// strings, folded to the shard mask.
func shardOf(key cacheKey) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.cloak); i++ {
		h = (h ^ uint64(key.cloak[i])) * prime64
	}
	for i := 0; i < len(key.params); i++ {
		h = (h ^ uint64(key.params[i])) * prime64
	}
	return int(h & (cacheShards - 1))
}

// NewCSP wires a policy to a provider.
func NewCSP(policy *Assignment, provider Provider) *CSP {
	c := &CSP{provider: provider}
	c.policy.Store(policy)
	for i := range c.shards {
		c.shards[i].cache = make(map[cacheKey][]POI)
		c.shards[i].flight = make(map[flightKey]*flight)
	}
	return c
}

// SetPolicy installs the policy for a new snapshot. The cache is kept: for
// stationary points of interest the paper recommends flushing only at
// infrequent intervals.
func (c *CSP) SetPolicy(policy *Assignment) {
	c.policy.Store(policy)
}

// Serve handles one user request end to end: validate, anonymize, answer
// from cache or provider, and return the candidate set together with the
// anonymized request that was (or would have been) forwarded.
func (c *CSP) Serve(sr ServiceRequest) (AnonymizedRequest, []POI, error) {
	return c.ServeContext(context.Background(), sr)
}

// ServeContext is Serve with tracing: when ctx carries an obs.Tracer the
// request is recorded as a "csp.serve" span annotated with the cache
// outcome ("hit", "miss", or "coalesced") and the candidate count, making
// cache effectiveness visible per request in traces and per phase in
// metrics.
func (c *CSP) ServeContext(ctx context.Context, sr ServiceRequest) (AnonymizedRequest, []POI, error) {
	_, sp := obs.Start(ctx, "csp.serve")
	policy := c.policy.Load()
	if policy == nil {
		sp.End()
		return AnonymizedRequest{}, nil, fmt.Errorf("lbs: no policy installed")
	}
	rid := c.nextRID.Add(1)
	ar, err := policy.Anonymize(rid, sr)
	if err != nil {
		sp.End()
		return AnonymizedRequest{}, nil, err
	}
	key := keyOf(ar)
	sh := &c.shards[shardOf(key)]
	fk := flightKey{version: policy.Version(), key: key}

	sh.mu.Lock()
	if cached, ok := sh.cache[key]; ok {
		sh.hits++
		sh.mu.Unlock()
		if sp != nil {
			sp.SetAttr("cache", "hit")
			sp.SetInt("candidates", int64(len(cached)))
			sp.End()
		}
		return ar, cached, nil
	}
	if f, ok := sh.flight[fk]; ok {
		// Someone is already asking the provider for this exact cloak
		// and parameters under this policy version: wait for their
		// answer instead of duplicating the lookup.
		sh.coalesced++
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			sp.End()
			return ar, nil, fmt.Errorf("lbs: provider: %w", f.err)
		}
		if sp != nil {
			sp.SetAttr("cache", "coalesced")
			sp.SetInt("candidates", int64(len(f.answer)))
			sp.End()
		}
		return ar, f.answer, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flight[fk] = f
	sh.flights++
	sh.mu.Unlock()

	// This request leads a cache-miss provider lookup: vote its trace
	// interesting (the tail sampler's "flight" retention reason) — flights
	// are exactly where serving latency escapes the in-memory fast path.
	obs.MarkCapture(ctx, "flight")
	answer, err := c.provider.Answer(ar)
	f.answer, f.err = answer, err
	sh.mu.Lock()
	delete(sh.flight, fk) // errors are not cached; a retry starts fresh
	if err == nil {
		sh.misses++
		sh.cache[key] = answer
	}
	sh.mu.Unlock()
	close(f.done)
	if err != nil {
		sp.End()
		return ar, nil, fmt.Errorf("lbs: provider: %w", err)
	}
	if sp != nil {
		sp.SetAttr("cache", "miss")
		sp.SetInt("candidates", int64(len(answer)))
		sp.End()
	}
	return ar, answer, nil
}

// CacheStats returns the cache hit and miss counts since the last flush,
// summed over the shards.
func (c *CSP) CacheStats() (hits, misses int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// CoalesceStats returns the singleflight counters since the last flush:
// flights is the number of provider lookups started by a coalescing
// leader, coalesced the number of callers who shared another caller's
// in-flight lookup instead of issuing their own.
func (c *CSP) CoalesceStats() (flights, coalesced int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		flights += sh.flights
		coalesced += sh.coalesced
		sh.mu.Unlock()
	}
	return flights, coalesced
}

// FlushCache starts a new cache epoch and returns the number of provider
// round-trips the cache suppressed during the ending epoch (hits plus
// coalesced requests — neither reached the provider).
func (c *CSP) FlushCache() (suppressed int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		suppressed += sh.hits + sh.coalesced
		sh.cache = make(map[cacheKey][]POI)
		sh.hits, sh.misses = 0, 0
		sh.flights, sh.coalesced = 0, 0
		sh.mu.Unlock()
	}
	return suppressed
}
