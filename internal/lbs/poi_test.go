package lbs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

func randStore(t *testing.T, rng *rand.Rand, n int, side int32) *POIStore {
	t.Helper()
	cats := []string{"gas", "rest", "hosp"}
	pois := make([]POI, n)
	for i := range pois {
		pois[i] = POI{
			ID:       "p" + itoa(i),
			Loc:      geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)},
			Category: cats[rng.Intn(len(cats))],
		}
	}
	s, err := NewPOIStore(pois, geo.NewRect(0, 0, side, side), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func itoa(i int) string {
	s := ""
	for {
		s = string(rune('0'+i%10)) + s
		i /= 10
		if i == 0 {
			return s
		}
	}
}

// bruteNearest is the linear-scan oracle for the grid index.
func bruteNearest(s *POIStore, p geo.Point, cat string) (POI, bool) {
	best := -1
	bestD := int64(1) << 62
	for i, poi := range s.pois {
		if cat != "" && poi.Category != cat {
			continue
		}
		if d := p.DistSq(poi.Loc); d < bestD {
			bestD, best = d, i
		}
	}
	if best < 0 {
		return POI{}, false
	}
	return s.pois[best], true
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randStore(t, rng, 500, 1024)
	for trial := 0; trial < 200; trial++ {
		p := geo.Point{X: rng.Int31n(1024), Y: rng.Int31n(1024)}
		got, ok1 := s.Nearest(p)
		want, ok2 := bruteNearest(s, p, "")
		if ok1 != ok2 {
			t.Fatalf("ok mismatch at %v", p)
		}
		if p.DistSq(got.Loc) != p.DistSq(want.Loc) {
			t.Fatalf("Nearest(%v) = %v (d=%d), brute force %v (d=%d)",
				p, got, p.DistSq(got.Loc), want, p.DistSq(want.Loc))
		}
		gotC, okC := s.NearestCategory(p, "gas")
		wantC, okC2 := bruteNearest(s, p, "gas")
		if okC != okC2 || (okC && p.DistSq(gotC.Loc) != p.DistSq(wantC.Loc)) {
			t.Fatalf("NearestCategory(%v, gas) = %v, want %v", p, gotC, wantC)
		}
	}
}

func TestNearestEmptyStore(t *testing.T) {
	s, err := NewPOIStore(nil, geo.NewRect(0, 0, 16, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Nearest(geo.Point{X: 1, Y: 1}); ok {
		t.Fatal("empty store returned a POI")
	}
	if got := s.CandidateNearest(geo.NewRect(0, 0, 4, 4), ""); got != nil {
		t.Fatal("empty store returned candidates")
	}
}

func TestPOIStoreValidation(t *testing.T) {
	if _, err := NewPOIStore(nil, geo.Rect{}, 0); err == nil {
		t.Fatal("empty bounds accepted")
	}
	outside := []POI{{ID: "x", Loc: geo.Point{X: 99, Y: 99}}}
	if _, err := NewPOIStore(outside, geo.NewRect(0, 0, 16, 16), 4); err == nil {
		t.Fatal("out-of-bounds POI accepted")
	}
}

func TestInRange(t *testing.T) {
	pois := []POI{
		{ID: "a", Loc: geo.Point{X: 0, Y: 0}, Category: "gas"},
		{ID: "b", Loc: geo.Point{X: 3, Y: 4}, Category: "gas"},
		{ID: "c", Loc: geo.Point{X: 10, Y: 0}, Category: "gas"},
		{ID: "d", Loc: geo.Point{X: 1, Y: 1}, Category: "rest"},
	}
	s, err := NewPOIStore(pois, geo.NewRect(0, 0, 16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := s.InRange(geo.Point{X: 0, Y: 0}, 5, "gas")
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("InRange = %v", got)
	}
	all := s.InRange(geo.Point{X: 0, Y: 0}, 5, "")
	if len(all) != 3 {
		t.Fatalf("InRange all categories = %v", all)
	}
}

// The soundness property of cloaked nearest-neighbour evaluation: for any
// location inside the cloak, its true nearest POI is in the candidate set.
func TestCandidateNearestIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randStore(t, rng, 300, 512)
	for trial := 0; trial < 50; trial++ {
		x, y := rng.Int31n(480), rng.Int31n(480)
		w, h := 1+rng.Int31n(32), 1+rng.Int31n(32)
		cloak := geo.NewRect(x, y, x+w, y+h)
		for _, cat := range []string{"", "gas"} {
			cands := s.CandidateNearest(cloak, cat)
			inSet := make(map[string]bool, len(cands))
			for _, c := range cands {
				inSet[c.ID] = true
			}
			// Sample locations inside the cloak, including the corners.
			probes := []geo.Point{
				{X: cloak.MinX, Y: cloak.MinY},
				{X: cloak.MaxX, Y: cloak.MaxY},
			}
			for i := 0; i < 20; i++ {
				probes = append(probes, geo.Point{
					X: cloak.MinX + rng.Int31n(w+1),
					Y: cloak.MinY + rng.Int31n(h+1),
				})
			}
			for _, p := range probes {
				nn, ok := bruteNearest(s, p, cat)
				if !ok {
					continue
				}
				// Any equally-near candidate is acceptable.
				bestInSet, ok2 := FilterNearest(cands, p)
				if !ok2 || p.DistSq(bestInSet.Loc) > p.DistSq(nn.Loc) {
					t.Fatalf("cloak %v cat %q: true NN %v of %v missing from candidates %v",
						cloak, cat, nn, p, cands)
				}
				_ = inSet
			}
		}
	}
}

// Tighter cloaks can only shrink (or keep) the candidate answer, which is
// the utility argument for minimizing cloak area.
func TestCandidateSetGrowsWithCloak(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randStore(t, rng, 400, 512)
	small := geo.NewRect(100, 100, 120, 120)
	big := geo.NewRect(60, 60, 220, 220)
	if len(s.CandidateNearest(small, "")) > len(s.CandidateNearest(big, "")) {
		t.Fatal("smaller cloak produced more candidates than the enclosing cloak")
	}
}

func TestFilterNearestEmpty(t *testing.T) {
	if _, ok := FilterNearest(nil, geo.Point{}); ok {
		t.Fatal("empty candidates filtered to a POI")
	}
}

// Property: Nearest agrees with brute force on random stores.
func TestNearestProperty(t *testing.T) {
	f := func(seed int64, px, py uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		pois := make([]POI, n)
		for i := range pois {
			pois[i] = POI{ID: itoa(i), Loc: geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}}
		}
		s, err := NewPOIStore(pois, geo.NewRect(0, 0, 256, 256), 0)
		if err != nil {
			return false
		}
		p := geo.Point{X: int32(px) % 256, Y: int32(py) % 256}
		got, ok := s.Nearest(p)
		want, ok2 := bruteNearest(s, p, "")
		return ok == ok2 && p.DistSq(got.Loc) == p.DistSq(want.Loc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPOIStoreAddRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randStore(t, rng, 50, 256)
	n := s.Len()
	// Add a new nearest POI right at a probe point: it must win NN.
	probe := geo.Point{X: 77, Y: 77}
	if err := s.Add(POI{ID: "fresh", Loc: probe, Category: "gas"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n+1 {
		t.Fatalf("Len = %d after add", s.Len())
	}
	got, ok := s.NearestCategory(probe, "gas")
	if !ok || got.ID != "fresh" {
		t.Fatalf("nearest after add = %v", got)
	}
	// Duplicates and out-of-bounds are rejected.
	if err := s.Add(POI{ID: "fresh", Loc: geo.Point{X: 1, Y: 1}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.Add(POI{ID: "oob", Loc: geo.Point{X: 999, Y: 1}}); err == nil {
		t.Fatal("out-of-bounds POI accepted")
	}
	// Removal restores the previous nearest and keeps the index sound.
	if !s.Remove("fresh") {
		t.Fatal("Remove failed")
	}
	if s.Remove("fresh") {
		t.Fatal("double Remove succeeded")
	}
	if s.Len() != n {
		t.Fatalf("Len = %d after remove", s.Len())
	}
	after, ok := s.NearestCategory(probe, "gas")
	want, ok2 := bruteNearest(s, probe, "gas")
	if ok != ok2 || probe.DistSq(after.Loc) != probe.DistSq(want.Loc) {
		t.Fatalf("nearest after remove = %v, brute %v", after, want)
	}
	// Candidate queries stay sound after mutation.
	cloak := geo.NewRect(60, 60, 90, 90)
	cands := s.CandidateNearest(cloak, "gas")
	nn, _ := bruteNearest(s, geo.Point{X: 61, Y: 61}, "gas")
	best, _ := FilterNearest(cands, geo.Point{X: 61, Y: 61})
	if geoDist(best.Loc, geo.Point{X: 61, Y: 61}) != geoDist(nn.Loc, geo.Point{X: 61, Y: 61}) {
		t.Fatalf("candidates unsound after mutation")
	}
}

func geoDist(a, b geo.Point) int64 { return a.DistSq(b) }

// The Section VII flow: a POI appears, the CSP flushes, and only then do
// cached answers reflect it.
func TestCacheFlushAfterPOIChange(t *testing.T) {
	pois := []POI{{ID: "far", Loc: geo.Point{X: 30, Y: 30}, Category: "gas"}}
	store, err := NewPOIStore(pois, geo.NewRect(0, 0, 32, 32), 8)
	if err != nil {
		t.Fatal(err)
	}
	db := New2UserDB(t)
	cloak := geo.NewRect(0, 0, 8, 8)
	pol, err := NewAssignment(db, []geo.Rect{cloak, cloak})
	if err != nil {
		t.Fatal(err)
	}
	provider := NewPOIProvider(store)
	csp := NewCSP(pol, provider)
	sr := ServiceRequest{UserID: "a", Loc: geo.Point{X: 1, Y: 1},
		Params: []Param{{Name: "cat", Value: "gas"}}}
	_, first, err := csp.Serve(sr)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].ID != "far" {
		t.Fatalf("first answer %v", first)
	}
	// A closer POI appears; the cached answer is stale until a flush.
	if err := store.Add(POI{ID: "near", Loc: geo.Point{X: 2, Y: 2}, Category: "gas"}); err != nil {
		t.Fatal(err)
	}
	_, stale, err := csp.Serve(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 1 || stale[0].ID != "far" {
		t.Fatalf("expected stale cached answer, got %v", stale)
	}
	csp.FlushCache()
	_, freshAns, err := csp.Serve(sr)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := FilterNearest(freshAns, sr.Loc)
	if best.ID != "near" {
		t.Fatalf("post-flush answer %v, want near", freshAns)
	}
}

// New2UserDB builds a tiny snapshot for cache tests.
func New2UserDB(t *testing.T) *location.DB {
	t.Helper()
	db, err := location.FromRecords([]location.Record{
		{UserID: "a", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "b", Loc: geo.Point{X: 2, Y: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}
