package lbs

import (
	"math/rand"
	"testing"

	"policyanon/internal/geo"
)

// Soundness + completeness of anonymized range queries: for any location
// in the cloak, FilterInRange(CandidateInRange(...)) equals the exact
// range answer.
func TestCandidateInRangeSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randStore(t, rng, 300, 512)
	for trial := 0; trial < 40; trial++ {
		x, y := rng.Int31n(450), rng.Int31n(450)
		w, h := 1+rng.Int31n(48), 1+rng.Int31n(48)
		cloak := geo.NewRect(x, y, x+w, y+h)
		radius := 10 + rng.Float64()*80
		cands := s.CandidateInRange(cloak, radius, "gas")
		for probe := 0; probe < 10; probe++ {
			loc := geo.Point{X: cloak.MinX + rng.Int31n(w+1), Y: cloak.MinY + rng.Int31n(h+1)}
			got := FilterInRange(cands, loc, radius)
			want := s.InRange(loc, radius, "gas")
			if len(got) != len(want) {
				t.Fatalf("cloak %v r=%.1f loc %v: filtered %d POIs, exact %d",
					cloak, radius, loc, len(got), len(want))
			}
			wantIDs := make(map[string]bool, len(want))
			for _, p := range want {
				wantIDs[p.ID] = true
			}
			for _, p := range got {
				if !wantIDs[p.ID] {
					t.Fatalf("spurious POI %v in filtered range answer", p)
				}
			}
		}
	}
}

func TestProviderRangeQueries(t *testing.T) {
	csp, provider := pipelineFixture(t)
	// Sam asks for italian restaurants within 10 meters.
	sr := ServiceRequest{UserID: "Sam", Loc: geo.Point{X: 3, Y: 1},
		Params: []Param{{Name: "cat", Value: "ital"}, {Name: "range", Value: "10"}}}
	ar, answer, err := csp.Serve(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer) == 0 {
		t.Fatal("range query returned nothing")
	}
	exact := FilterInRange(answer, sr.Loc, 10)
	if len(exact) == 0 {
		t.Fatal("client filtering lost all range results")
	}
	_ = ar
	// Malformed range parameter is rejected by the provider.
	if _, err := provider.Answer(AnonymizedRequest{
		RID: 1, Cloak: geo.NewRect(0, 0, 4, 4),
		Params: []Param{{Name: "range", Value: "not-a-number"}},
	}); err == nil {
		t.Fatal("bad range parameter accepted")
	}
	if _, err := provider.Answer(AnonymizedRequest{
		RID: 2, Cloak: geo.NewRect(0, 0, 4, 4),
		Params: []Param{{Name: "range", Value: "-5"}},
	}); err == nil {
		t.Fatal("negative range accepted")
	}
}

// Candidate range answers grow with the cloak — the utility argument.
func TestCandidateInRangeGrowsWithCloak(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randStore(t, rng, 400, 512)
	small := geo.NewRect(200, 200, 210, 210)
	big := geo.NewRect(150, 150, 300, 300)
	if len(s.CandidateInRange(small, 50, "")) > len(s.CandidateInRange(big, 50, "")) {
		t.Fatal("smaller cloak produced more range candidates")
	}
}

// Soundness of CandidateKNearest: for any probe in the cloak, the probe's
// exact top-N POIs are all present in the candidate set.
func TestCandidateKNearestIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randStore(t, rng, 250, 512)
	for trial := 0; trial < 30; trial++ {
		x, y := rng.Int31n(450), rng.Int31n(450)
		w, h := 1+rng.Int31n(40), 1+rng.Int31n(40)
		cloak := geo.NewRect(x, y, x+w, y+h)
		const n = 3
		cands := s.CandidateKNearest(cloak, n, "gas")
		for probe := 0; probe < 10; probe++ {
			loc := geo.Point{X: cloak.MinX + rng.Int31n(w+1), Y: cloak.MinY + rng.Int31n(h+1)}
			got := FilterKNearest(cands, loc, n)
			// Exact top-n by brute force over the whole store.
			var all []POI
			for _, p := range s.pois {
				if p.Category == "gas" {
					all = append(all, p)
				}
			}
			want := FilterKNearest(all, loc, n)
			if len(got) != len(want) {
				t.Fatalf("cloak %v: filtered %d, want %d", cloak, len(got), len(want))
			}
			for i := range want {
				if loc.DistSq(got[i].Loc) != loc.DistSq(want[i].Loc) {
					t.Fatalf("cloak %v probe %v rank %d: got %v (d=%d), want %v (d=%d)",
						cloak, loc, i, got[i].ID, loc.DistSq(got[i].Loc), want[i].ID, loc.DistSq(want[i].Loc))
				}
			}
		}
	}
}

func TestCandidateKNearestEdges(t *testing.T) {
	s, err := NewPOIStore(nil, geo.NewRect(0, 0, 16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CandidateKNearest(geo.NewRect(0, 0, 4, 4), 3, ""); got != nil {
		t.Fatal("empty store returned kNN candidates")
	}
	s2, err := NewPOIStore([]POI{{ID: "only", Loc: geo.Point{X: 1, Y: 1}}}, geo.NewRect(0, 0, 16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.CandidateKNearest(geo.NewRect(0, 0, 4, 4), 5, "")
	if len(got) != 1 {
		t.Fatalf("n beyond store size: %v", got)
	}
	if got := FilterKNearest(nil, geo.Point{}, 3); len(got) != 0 {
		t.Fatal("empty filter returned POIs")
	}
}
