package lbs

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// deltaAssignment builds an n-user assignment whose cloaks are 4x4 squares
// around each user — big enough that small moves stay masked, small enough
// that every cloak is distinct.
func deltaAssignment(t testing.TB, n int) *Assignment {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	recs := make([]location.Record, n)
	cloaks := make([]geo.Rect, n)
	for i := range recs {
		p := geo.Point{X: 2 + rng.Int31n(1<<12), Y: 2 + rng.Int31n(1<<12)}
		recs[i] = location.Record{UserID: "u" + strconv.Itoa(i), Loc: p}
		cloaks[i] = geo.NewRect(p.X-2, p.Y-2, p.X+2, p.Y+2)
	}
	db, err := location.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestApplyDeltaCOWIsolation(t *testing.T) {
	// 1100 users: three cloak pages, so page-boundary indices are real.
	parent := deltaAssignment(t, 1100)
	beforeLoc := parent.DB().At(600).Loc
	beforeCloak := parent.CloakAt(600)
	parentCloaks := append([]geo.Rect(nil), parent.Cloaks()...)

	to := geo.Point{X: beforeLoc.X + 1, Y: beforeLoc.Y + 1}
	newCloak := geo.NewRect(to.X-3, to.Y-3, to.X+3, to.Y+3)
	child, err := parent.ApplyDelta(
		[]Move{{Index: 600, From: beforeLoc, To: to}},
		[]CloakChange{{Index: 600, Old: beforeCloak, New: newCloak}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Parent is untouched in both layers.
	if got := parent.DB().At(600).Loc; got != beforeLoc {
		t.Fatalf("parent record mutated: %v, want %v", got, beforeLoc)
	}
	if got := parent.CloakAt(600); got != beforeCloak {
		t.Fatalf("parent cloak mutated: %v, want %v", got, beforeCloak)
	}
	// Child sees the new state at 600 and the parent's everywhere else.
	if got := child.DB().At(600).Loc; got != to {
		t.Fatalf("child record = %v, want %v", got, to)
	}
	if got := child.CloakAt(600); got != newCloak {
		t.Fatalf("child cloak = %v, want %v", got, newCloak)
	}
	for _, i := range []int{0, 511, 512, 599, 601, 1023, 1024, 1099} {
		if got := child.CloakAt(i); got != parentCloaks[i] {
			t.Fatalf("untouched cloak %d = %v, want %v", i, got, parentCloaks[i])
		}
	}
	// Cloaks() on the paged child matches element-wise CloakAt.
	mat := child.Cloaks()
	if len(mat) != child.Len() {
		t.Fatalf("Cloaks() len %d, want %d", len(mat), child.Len())
	}
	for i, c := range mat {
		if c != child.CloakAt(i) {
			t.Fatalf("Cloaks()[%d] = %v, CloakAt = %v", i, c, child.CloakAt(i))
		}
	}
	// Versions are strictly increasing and the delta is recorded.
	if child.Version() <= parent.Version() {
		t.Fatalf("child version %d not after parent %d", child.Version(), parent.Version())
	}
	d := child.Delta()
	if d == nil || d.ParentVersion != parent.Version() {
		t.Fatalf("delta = %+v, want parent version %d", d, parent.Version())
	}
	if len(d.Moves) != 1 || len(d.Cloaks) != 1 || d.Moves[0].Index != 600 || d.Cloaks[0].New != newCloak {
		t.Fatalf("delta contents: %+v", d)
	}
	if parent.Delta() != nil {
		t.Fatal("from-scratch parent reports a delta")
	}
}

func TestApplyDeltaChained(t *testing.T) {
	a := deltaAssignment(t, 1100)
	cur := a
	// Walk a chain of deltas across page boundaries; each link must verify
	// against its immediate parent and preserve all earlier rewrites.
	want := append([]geo.Rect(nil), a.Cloaks()...)
	for step, idx := range []int{0, 511, 512, 1023, 1024, 1099, 512} {
		from := cur.DB().At(idx).Loc
		to := geo.Point{X: from.X + 1, Y: from.Y}
		nc := geo.NewRect(to.X-4-int32(step), to.Y-4, to.X+4, to.Y+4)
		next, err := cur.ApplyDelta(
			[]Move{{Index: idx, From: from, To: to}},
			[]CloakChange{{Index: idx, Old: cur.CloakAt(idx), New: nc}},
		)
		if err != nil {
			t.Fatalf("step %d (index %d): %v", step, idx, err)
		}
		if next.Version() <= cur.Version() {
			t.Fatalf("step %d: version %d not after %d", step, next.Version(), cur.Version())
		}
		want[idx] = nc
		cur = next
	}
	for i := range want {
		if got := cur.CloakAt(i); got != want[i] {
			t.Fatalf("after chain, cloak %d = %v, want %v", i, got, want[i])
		}
	}
	// The original root never moved.
	if got := a.CloakAt(512); got == cur.CloakAt(512) {
		t.Fatal("root cloak 512 equals chain tip — COW broken")
	}
}

func TestApplyDeltaRejectsMismatch(t *testing.T) {
	a := deltaAssignment(t, 600)
	loc := a.DB().At(10).Loc
	cloak := a.CloakAt(10)
	ok := geo.Point{X: loc.X + 1, Y: loc.Y}

	// Wrong From: the delta was computed against different record state.
	_, err := a.ApplyDelta([]Move{{Index: 10, From: geo.Point{X: loc.X + 9, Y: loc.Y}, To: ok}}, nil)
	if !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("wrong From: %v, want ErrDeltaMismatch", err)
	}
	// Wrong Old: the delta was computed against different cloak state.
	bad := geo.NewRect(cloak.MinX-1, cloak.MinY, cloak.MaxX, cloak.MaxY)
	_, err = a.ApplyDelta(nil, []CloakChange{{Index: 10, Old: bad, New: cloak}})
	if !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("wrong Old: %v, want ErrDeltaMismatch", err)
	}
	// Out-of-range indices.
	if _, err := a.ApplyDelta([]Move{{Index: 600, From: loc, To: ok}}, nil); err == nil {
		t.Fatal("out-of-range move index accepted")
	}
	if _, err := a.ApplyDelta(nil, []CloakChange{{Index: -1, Old: cloak, New: cloak}}); err == nil {
		t.Fatal("negative cloak index accepted")
	}
	// New cloak that does not mask the (unmoved) user.
	far := geo.NewRect(loc.X+100, loc.Y+100, loc.X+104, loc.Y+104)
	_, err = a.ApplyDelta(nil, []CloakChange{{Index: 10, Old: cloak, New: far}})
	if !errors.Is(err, ErrNotMasking) {
		t.Fatalf("non-masking New: %v, want ErrNotMasking", err)
	}
	// Move out from under the cloak without a matching cloak change.
	out := geo.Point{X: loc.X + 50, Y: loc.Y}
	_, err = a.ApplyDelta([]Move{{Index: 10, From: loc, To: out}}, nil)
	if !errors.Is(err, ErrNotMasking) {
		t.Fatalf("move without re-cloak: %v, want ErrNotMasking", err)
	}
	// The failed attempts must not have corrupted the parent.
	if a.DB().At(10).Loc != loc || a.CloakAt(10) != cloak {
		t.Fatal("failed ApplyDelta mutated the parent")
	}
}
