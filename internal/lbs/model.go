// Package lbs models the privacy-conscious location-based-service setting
// of Section II: service requests created by the CSP (Definition 1),
// anonymized requests with cloaks (Definition 2), masking (Definition 3),
// and cloaking policies (Definition 4) represented as per-snapshot cloak
// assignments. It also provides the LBS provider substrate: a point-of-
// interest store with cloaked nearest-neighbour evaluation, and the
// anonymizing CSP front end with the result cache of Section VII.
package lbs

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// Param is one name-value pair of a request's parameter vector V.
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ServiceRequest is the tuple <u,(x,y),V> of Definition 1, assembled by the
// CSP from the user's query and the MPC-provided location.
type ServiceRequest struct {
	UserID string
	Loc    geo.Point
	Params []Param
}

// Valid reports whether the request is valid w.r.t. the snapshot: the user
// exists and is at the stated location (Definition 1).
func (sr ServiceRequest) Valid(db *location.DB) bool {
	p, err := db.Lookup(sr.UserID)
	return err == nil && p == sr.Loc
}

// AnonymizedRequest is the tuple <rid, rho, V> of Definition 2 with a
// rectangular cloak.
type AnonymizedRequest struct {
	RID    uint64
	Cloak  geo.Rect
	Params []Param
}

// Masks reports whether ar masks sr (Definition 3): the service request's
// location lies in the (closed) cloak and the parameter vectors agree.
func (ar AnonymizedRequest) Masks(sr ServiceRequest) bool {
	return ar.Cloak.ContainsClosed(sr.Loc) && ParamsEqual(ar.Params, sr.Params)
}

// ParamsEqual compares two parameter vectors element-wise.
func ParamsEqual(a, b []Param) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Assignment is a cloaking policy for one location snapshot, in the
// location-to-cloak form the paper adopts from Section IV on: every user in
// the snapshot is mapped to a cloak. Together with the convention that the
// policy is deterministic and depends only on the snapshot, an Assignment
// fully determines the Definition-4 policy on this snapshot.
//
// Assignments are immutable once built and versioned: a policy change
// produces a new value, either from scratch (NewAssignment, flat cloak
// storage) or derived from a predecessor (ApplyDelta, paged copy-on-write
// storage sharing every unchanged page with the parent). Version()
// increases monotonically across both paths, so consumers can memoize
// per-assignment results and, via Delta(), invalidate only what a delta
// publish actually touched.
type Assignment struct {
	db *location.DB
	// cloaks is the flat storage of from-scratch assignments (nil iff
	// paged); pages is the copy-on-write storage of delta-derived ones.
	cloaks []geo.Rect // indexed like db records
	pages  [][]geo.Rect
	n      int

	version uint64
	delta   *Delta
}

// Cloak pages hold 128 entries: small enough that rewriting one cloak
// copies ~2 KiB (cloak-delta batches touch pages roughly one per changed
// user, so page size sets the COW traffic per publish almost linearly),
// large enough that the page table of the paper's 1.75M Master set stays
// around fourteen thousand entries.
const (
	cloakPageShift = 7
	cloakPageSize  = 1 << cloakPageShift
	cloakPageMask  = cloakPageSize - 1
)

// assignVersion mints globally monotonic assignment versions.
var assignVersion atomic.Uint64

// Move is one record relocation between a parent assignment's snapshot and
// its delta-derived successor.
type Move struct {
	Index    int
	From, To geo.Point
}

// CloakChange is one record's cloak rewrite between a parent assignment
// and its delta-derived successor.
type CloakChange struct {
	Index    int
	Old, New geo.Rect
}

// Delta records how a delta-derived assignment differs from its parent.
// Consumers (the auditor's per-cloak memo, delta-scoped verification) use
// it to bound their work by what actually changed.
type Delta struct {
	// ParentVersion is the Version() of the assignment ApplyDelta derived
	// this one from.
	ParentVersion uint64
	// Moves are the record relocations applied to the snapshot.
	Moves []Move
	// Cloaks are the cloak rewrites applied to the policy.
	Cloaks []CloakChange
}

// ErrNotMasking is returned when an assignment would not be a masking
// policy (Definition 4).
var ErrNotMasking = errors.New("lbs: cloak does not contain the user location")

// ErrDeltaMismatch is returned by ApplyDelta when a move's From location
// or a change's Old cloak disagrees with the parent assignment — the delta
// was computed against different state, and applying it would publish a
// corrupt policy. Callers recover by publishing from scratch.
var ErrDeltaMismatch = errors.New("lbs: delta does not match the parent assignment")

// NewAssignment wraps per-record cloaks over a snapshot, verifying the
// masking property. The cloaks slice is copied, so later mutation of the
// caller's slice cannot corrupt the assignment.
func NewAssignment(db *location.DB, cloaks []geo.Rect) (*Assignment, error) {
	if len(cloaks) != db.Len() {
		return nil, fmt.Errorf("lbs: %d cloaks for %d users", len(cloaks), db.Len())
	}
	for i, c := range cloaks {
		if !c.ContainsClosed(db.At(i).Loc) {
			return nil, fmt.Errorf("%w: user %q at %v, cloak %v",
				ErrNotMasking, db.At(i).UserID, db.At(i).Loc, c)
		}
	}
	return &Assignment{
		db:      db,
		cloaks:  append([]geo.Rect(nil), cloaks...),
		n:       db.Len(),
		version: assignVersion.Add(1),
	}, nil
}

// ApplyDelta derives the successor assignment: the parent's snapshot with
// moves applied (through location.DB's copy-on-write clone) and the
// parent's cloaks with changes applied (copying only the touched cloak
// pages). The cost is O(moves + changes), not O(|D|): unchanged record and
// cloak pages are shared with the parent, which stays fully usable.
//
// Every move's From and every change's Old is checked against the parent —
// a mismatch returns ErrDeltaMismatch — and masking is re-verified for
// exactly the records the delta touched. ApplyDelta takes ownership of
// both slices (they are retained in Delta()); callers must not reuse them.
func (a *Assignment) ApplyDelta(moves []Move, changes []CloakChange) (*Assignment, error) {
	n := a.Len()
	mm := make(map[int]geo.Point, len(moves))
	for _, mv := range moves {
		if mv.Index < 0 || mv.Index >= n {
			return nil, fmt.Errorf("lbs: delta move index %d out of range [0,%d)", mv.Index, n)
		}
		if got := a.db.At(mv.Index).Loc; got != mv.From {
			return nil, fmt.Errorf("%w: move %d from %v, parent has %v", ErrDeltaMismatch, mv.Index, mv.From, got)
		}
		mm[mv.Index] = mv.To
	}
	next := &Assignment{
		db:      a.db.CloneWithMoves(mm),
		n:       n,
		version: assignVersion.Add(1),
		delta:   &Delta{ParentVersion: a.version, Moves: moves, Cloaks: changes},
	}
	// Page table: adopt the parent's pages, or pageify flat storage with
	// zero copying (the parent is immutable, so subslicing is safe — a
	// rewrite below replaces the whole page, never writes through).
	if a.pages != nil {
		next.pages = append(make([][]geo.Rect, 0, len(a.pages)), a.pages...)
	} else {
		next.pages = make([][]geo.Rect, (n+cloakPageSize-1)/cloakPageSize)
		for p := range next.pages {
			lo := p << cloakPageShift
			hi := lo + cloakPageSize
			if hi > n {
				hi = n
			}
			next.pages[p] = a.cloaks[lo:hi:hi]
		}
	}
	copied := make(map[int]struct{}, len(changes)>>4+1)
	for _, c := range changes {
		if c.Index < 0 || c.Index >= n {
			return nil, fmt.Errorf("lbs: delta cloak index %d out of range [0,%d)", c.Index, n)
		}
		p := c.Index >> cloakPageShift
		if _, ok := copied[p]; !ok {
			next.pages[p] = append([]geo.Rect(nil), next.pages[p]...)
			copied[p] = struct{}{}
		}
		if got := next.pages[p][c.Index&cloakPageMask]; got != c.Old {
			return nil, fmt.Errorf("%w: cloak %d old %v, parent has %v", ErrDeltaMismatch, c.Index, c.Old, got)
		}
		next.pages[p][c.Index&cloakPageMask] = c.New
	}
	// Masking, re-verified for exactly what the delta touched (NewAssignment
	// verifies all of |D|; everything untouched was verified when the
	// ancestor was built).
	for _, c := range changes {
		if loc := next.db.At(c.Index).Loc; !c.New.ContainsClosed(loc) {
			return nil, fmt.Errorf("%w: user %q at %v, cloak %v",
				ErrNotMasking, next.db.At(c.Index).UserID, loc, c.New)
		}
	}
	for _, mv := range moves {
		if cl := next.CloakAt(mv.Index); !cl.ContainsClosed(mv.To) {
			return nil, fmt.Errorf("%w: user %q moved to %v, cloak %v",
				ErrNotMasking, next.db.At(mv.Index).UserID, mv.To, cl)
		}
	}
	return next, nil
}

// Version returns the assignment's globally monotonic version: later-built
// assignments always have larger versions, and two assignments never share
// one. It keys per-assignment memoization.
func (a *Assignment) Version() uint64 { return a.version }

// Delta returns how this assignment differs from its parent, or nil for
// assignments built from scratch. The returned value is shared, not a
// copy; callers must not mutate it.
func (a *Assignment) Delta() *Delta { return a.delta }

// DB returns the snapshot the assignment covers.
func (a *Assignment) DB() *location.DB { return a.db }

// Len returns the number of users covered.
func (a *Assignment) Len() int { return a.n }

// CloakAt returns the cloak of the i-th record.
func (a *Assignment) CloakAt(i int) geo.Rect {
	if a.cloaks != nil {
		return a.cloaks[i]
	}
	return a.pages[i>>cloakPageShift][i&cloakPageMask]
}

// Cloaks returns a freshly allocated copy of the per-record cloaks in
// record order; mutating it does not affect the assignment.
func (a *Assignment) Cloaks() []geo.Rect {
	if a.cloaks != nil {
		return append([]geo.Rect(nil), a.cloaks...)
	}
	out := make([]geo.Rect, 0, a.n)
	for _, pg := range a.pages {
		out = append(out, pg...)
	}
	return out
}

// CloakOf returns the cloak assigned to a user.
func (a *Assignment) CloakOf(userID string) (geo.Rect, error) {
	i := a.db.Index(userID)
	if i < 0 {
		return geo.Rect{}, fmt.Errorf("%w: %q", location.ErrUnknownUser, userID)
	}
	return a.CloakAt(i), nil
}

// Anonymize applies the policy to a service request (Definition 4),
// producing the anonymized request the CSP forwards to the LBS.
func (a *Assignment) Anonymize(rid uint64, sr ServiceRequest) (AnonymizedRequest, error) {
	if !sr.Valid(a.db) {
		return AnonymizedRequest{}, fmt.Errorf("lbs: request by %q invalid w.r.t. snapshot", sr.UserID)
	}
	cloak, err := a.CloakOf(sr.UserID)
	if err != nil {
		return AnonymizedRequest{}, err
	}
	return AnonymizedRequest{RID: rid, Cloak: cloak, Params: sr.Params}, nil
}

// Cost returns the Section-IV policy cost: the summed cloak area if every
// user issues exactly one request.
func (a *Assignment) Cost() int64 {
	var c int64
	for i := 0; i < a.n; i++ {
		c += a.CloakAt(i).Area()
	}
	return c
}

// AvgArea returns Cost / |D|, the metric of Fig. 5(a).
func (a *Assignment) AvgArea() float64 {
	if a.Len() == 0 {
		return 0
	}
	return float64(a.Cost()) / float64(a.Len())
}

// Groups returns the cloaking groups: for each distinct cloak, the indices
// of users assigned to it, each group sorted ascending and the groups
// ordered deterministically.
func (a *Assignment) Groups() []Group {
	byRect := make(map[geo.Rect][]int)
	for i := 0; i < a.n; i++ {
		byRect[a.CloakAt(i)] = append(byRect[a.CloakAt(i)], i)
	}
	groups := make([]Group, 0, len(byRect))
	for r, members := range byRect {
		sort.Ints(members)
		groups = append(groups, Group{Cloak: r, Members: members})
	}
	sort.Slice(groups, func(i, j int) bool { return rectLess(groups[i].Cloak, groups[j].Cloak) })
	return groups
}

// Group is one cloaking group: the set of users sharing a cloak.
type Group struct {
	Cloak   geo.Rect
	Members []int
}

func rectLess(a, b geo.Rect) bool {
	if a.MinX != b.MinX {
		return a.MinX < b.MinX
	}
	if a.MinY != b.MinY {
		return a.MinY < b.MinY
	}
	if a.MaxX != b.MaxX {
		return a.MaxX < b.MaxX
	}
	return a.MaxY < b.MaxY
}
