// Package lbs models the privacy-conscious location-based-service setting
// of Section II: service requests created by the CSP (Definition 1),
// anonymized requests with cloaks (Definition 2), masking (Definition 3),
// and cloaking policies (Definition 4) represented as per-snapshot cloak
// assignments. It also provides the LBS provider substrate: a point-of-
// interest store with cloaked nearest-neighbour evaluation, and the
// anonymizing CSP front end with the result cache of Section VII.
package lbs

import (
	"errors"
	"fmt"
	"sort"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// Param is one name-value pair of a request's parameter vector V.
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ServiceRequest is the tuple <u,(x,y),V> of Definition 1, assembled by the
// CSP from the user's query and the MPC-provided location.
type ServiceRequest struct {
	UserID string
	Loc    geo.Point
	Params []Param
}

// Valid reports whether the request is valid w.r.t. the snapshot: the user
// exists and is at the stated location (Definition 1).
func (sr ServiceRequest) Valid(db *location.DB) bool {
	p, err := db.Lookup(sr.UserID)
	return err == nil && p == sr.Loc
}

// AnonymizedRequest is the tuple <rid, rho, V> of Definition 2 with a
// rectangular cloak.
type AnonymizedRequest struct {
	RID    uint64
	Cloak  geo.Rect
	Params []Param
}

// Masks reports whether ar masks sr (Definition 3): the service request's
// location lies in the (closed) cloak and the parameter vectors agree.
func (ar AnonymizedRequest) Masks(sr ServiceRequest) bool {
	return ar.Cloak.ContainsClosed(sr.Loc) && ParamsEqual(ar.Params, sr.Params)
}

// ParamsEqual compares two parameter vectors element-wise.
func ParamsEqual(a, b []Param) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Assignment is a cloaking policy for one location snapshot, in the
// location-to-cloak form the paper adopts from Section IV on: every user in
// the snapshot is mapped to a cloak. Together with the convention that the
// policy is deterministic and depends only on the snapshot, an Assignment
// fully determines the Definition-4 policy on this snapshot.
type Assignment struct {
	db     *location.DB
	cloaks []geo.Rect // indexed like db records
}

// ErrNotMasking is returned when an assignment would not be a masking
// policy (Definition 4).
var ErrNotMasking = errors.New("lbs: cloak does not contain the user location")

// NewAssignment wraps per-record cloaks over a snapshot, verifying the
// masking property. The cloaks slice is copied, so later mutation of the
// caller's slice cannot corrupt the assignment.
func NewAssignment(db *location.DB, cloaks []geo.Rect) (*Assignment, error) {
	if len(cloaks) != db.Len() {
		return nil, fmt.Errorf("lbs: %d cloaks for %d users", len(cloaks), db.Len())
	}
	for i, c := range cloaks {
		if !c.ContainsClosed(db.At(i).Loc) {
			return nil, fmt.Errorf("%w: user %q at %v, cloak %v",
				ErrNotMasking, db.At(i).UserID, db.At(i).Loc, c)
		}
	}
	return &Assignment{db: db, cloaks: append([]geo.Rect(nil), cloaks...)}, nil
}

// DB returns the snapshot the assignment covers.
func (a *Assignment) DB() *location.DB { return a.db }

// Len returns the number of users covered.
func (a *Assignment) Len() int { return a.db.Len() }

// CloakAt returns the cloak of the i-th record.
func (a *Assignment) CloakAt(i int) geo.Rect { return a.cloaks[i] }

// Cloaks returns a freshly allocated copy of the per-record cloaks in
// record order; mutating it does not affect the assignment.
func (a *Assignment) Cloaks() []geo.Rect {
	return append([]geo.Rect(nil), a.cloaks...)
}

// CloakOf returns the cloak assigned to a user.
func (a *Assignment) CloakOf(userID string) (geo.Rect, error) {
	i := a.db.Index(userID)
	if i < 0 {
		return geo.Rect{}, fmt.Errorf("%w: %q", location.ErrUnknownUser, userID)
	}
	return a.cloaks[i], nil
}

// Anonymize applies the policy to a service request (Definition 4),
// producing the anonymized request the CSP forwards to the LBS.
func (a *Assignment) Anonymize(rid uint64, sr ServiceRequest) (AnonymizedRequest, error) {
	if !sr.Valid(a.db) {
		return AnonymizedRequest{}, fmt.Errorf("lbs: request by %q invalid w.r.t. snapshot", sr.UserID)
	}
	cloak, err := a.CloakOf(sr.UserID)
	if err != nil {
		return AnonymizedRequest{}, err
	}
	return AnonymizedRequest{RID: rid, Cloak: cloak, Params: sr.Params}, nil
}

// Cost returns the Section-IV policy cost: the summed cloak area if every
// user issues exactly one request.
func (a *Assignment) Cost() int64 {
	var c int64
	for _, r := range a.cloaks {
		c += r.Area()
	}
	return c
}

// AvgArea returns Cost / |D|, the metric of Fig. 5(a).
func (a *Assignment) AvgArea() float64 {
	if a.Len() == 0 {
		return 0
	}
	return float64(a.Cost()) / float64(a.Len())
}

// Groups returns the cloaking groups: for each distinct cloak, the indices
// of users assigned to it, each group sorted ascending and the groups
// ordered deterministically.
func (a *Assignment) Groups() []Group {
	byRect := make(map[geo.Rect][]int)
	for i, r := range a.cloaks {
		byRect[r] = append(byRect[r], i)
	}
	groups := make([]Group, 0, len(byRect))
	for r, members := range byRect {
		sort.Ints(members)
		groups = append(groups, Group{Cloak: r, Members: members})
	}
	sort.Slice(groups, func(i, j int) bool { return rectLess(groups[i].Cloak, groups[j].Cloak) })
	return groups
}

// Group is one cloaking group: the set of users sharing a cloak.
type Group struct {
	Cloak   geo.Rect
	Members []int
}

func rectLess(a, b geo.Rect) bool {
	if a.MinX != b.MinX {
		return a.MinX < b.MinX
	}
	if a.MinY != b.MinY {
		return a.MinY < b.MinY
	}
	if a.MaxX != b.MaxX {
		return a.MaxX < b.MaxX
	}
	return a.MaxY < b.MaxY
}
