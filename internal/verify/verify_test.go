package verify

import (
	"math/rand"
	"strings"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

func optimalPolicy(t *testing.T, n, k int, seed int64) *lbs.Assignment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := location.New(n)
	for i := 0; i < n; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+(i/260)%26)) + string(rune('0'+(i/7)%10))
		if err := db.Add(id, geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}); err != nil {
			t.Fatal(err)
		}
	}
	anon, err := core.NewAnonymizer(db, geo.NewRect(0, 0, 256, 256), core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestVerifyOptimalPolicyPasses(t *testing.T) {
	const k = 6
	pol := optimalPolicy(t, 120, k, 1)
	r := Policy(pol, k)
	if !r.OK() {
		t.Fatalf("optimal policy failed verification: %v", r.Problems)
	}
	if !r.Masking || !r.PolicyAware || !r.PolicyUnaware {
		t.Fatalf("flags wrong: %+v", r)
	}
	if r.MinAware < k || r.MinUnaware < r.MinAware {
		t.Fatalf("min anonymity wrong: aware=%d unaware=%d", r.MinAware, r.MinUnaware)
	}
	// The Definition 6 witness must exist with exactly k PREs covering
	// every issued cloak.
	if len(r.Witness) != k {
		t.Fatalf("witness has %d PREs, want %d", len(r.Witness), k)
	}
	groups := pol.Groups()
	for i, pre := range r.Witness {
		if len(pre) != len(groups) {
			t.Fatalf("PRE %d covers %d cloaks, want %d", i, len(pre), len(groups))
		}
	}
	if !strings.Contains(r.String(), "OK") {
		t.Fatalf("report string: %s", r)
	}
}

func TestVerifyDetectsBrokenPolicy(t *testing.T) {
	db, err := location.FromRecords([]location.Record{
		{UserID: "Alice", Loc: geo.Point{X: 1, Y: 1}},
		{UserID: "Bob", Loc: geo.Point{X: 1, Y: 2}},
		{UserID: "Carol", Loc: geo.Point{X: 6, Y: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := geo.NewRect(0, 0, 4, 4)
	all := geo.NewRect(0, 0, 8, 8)
	pol, err := lbs.NewAssignment(db, []geo.Rect{sw, sw, all})
	if err != nil {
		t.Fatal(err)
	}
	r := Policy(pol, 2)
	if r.OK() {
		t.Fatal("breached policy passed verification")
	}
	if r.PolicyAware {
		t.Fatal("Carol's singleton group not detected")
	}
	if r.Witness != nil {
		t.Fatal("witness built for breached policy")
	}
	found := false
	for _, p := range r.Problems {
		if strings.Contains(p, "Carol") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems do not name Carol: %v", r.Problems)
	}
}

func TestVerifyRejectsBadK(t *testing.T) {
	pol := optimalPolicy(t, 20, 2, 3)
	r := Policy(pol, 0)
	if r.OK() {
		t.Fatal("k=0 passed verification")
	}
}

func TestVerifyEmptyAssignment(t *testing.T) {
	db := location.New(0)
	pol, err := lbs.NewAssignment(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Policy(pol, 2)
	if !r.OK() {
		t.Fatalf("empty policy failed: %v", r.Problems)
	}
	if r.Witness != nil {
		t.Fatal("witness built for empty policy")
	}
}
