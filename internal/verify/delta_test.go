package verify

import (
	"math/rand"
	"strings"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// maintainedDelta runs one move batch through the real delta pipeline —
// matrix maintenance, ExtractDelta, ApplyDelta against a rebound parent —
// and returns the delta-derived assignment.
func maintainedDelta(t *testing.T, n, k int, seed int64) *lbs.Assignment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := location.New(n)
	for i := 0; i < n; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+(i/260)%26)) + string(rune('0'+(i/7)%10))
		if err := db.Add(id, geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}); err != nil {
			t.Fatal(err)
		}
	}
	anon, err := core.NewAnonymizer(db, geo.NewRect(0, 0, 256, 256), core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := lbs.NewAssignment(pol.DB().Clone(), pol.Cloaks())
	if err != nil {
		t.Fatal(err)
	}
	var mvs []lbs.Move
	for j := 0; j < 6; j++ {
		i := rng.Intn(n)
		to := geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}
		mvs = append(mvs, lbs.Move{Index: i, From: db.At(i).Loc, To: to})
		if err := anon.Move(i, to); err != nil {
			t.Fatal(err)
		}
	}
	anon.Refresh()
	changes, _, err := anon.Matrix().ExtractDelta()
	if err != nil {
		t.Fatal(err)
	}
	child, err := parent.ApplyDelta(mvs, changes)
	if err != nil {
		t.Fatal(err)
	}
	return child
}

func TestVerifyDeltaOnMaintainedPolicy(t *testing.T) {
	const k = 6
	child := maintainedDelta(t, 120, k, 3)
	r := Delta(child, k)
	if !r.OK() {
		t.Fatalf("delta-derived policy failed delta verification: %v", r.Problems)
	}
	if !r.DeltaScoped {
		t.Fatal("report not marked delta-scoped")
	}
	if !r.Masking || !r.PolicyAware || !r.PolicyUnaware {
		t.Fatalf("flags wrong: %+v", r)
	}
	if r.Witness != nil {
		t.Fatal("delta-scoped verification should not build a witness")
	}
	// The same assignment must also survive the full first-principles
	// verification (the anchor the cadence falls back to).
	if full := Policy(child, k); !full.OK() {
		t.Fatalf("delta-derived policy failed full verification: %v", full.Problems)
	}
}

func TestVerifyDeltaFallsBackToFull(t *testing.T) {
	const k = 6
	pol := optimalPolicy(t, 120, k, 4)
	r := Delta(pol, k)
	if r.DeltaScoped {
		t.Fatal("from-scratch assignment verified delta-scoped")
	}
	if !r.OK() || len(r.Witness) != k {
		t.Fatalf("fallback did not run the full verification: ok=%v witness=%d", r.OK(), len(r.Witness))
	}
}

// TestVerifyDeltaCatchesShrunkCloak pins the negative case: a delta that
// rewrites one user's cloak to a singleton must trip both attacker checks
// in the delta-scoped pass.
func TestVerifyDeltaCatchesShrunkCloak(t *testing.T) {
	db, err := location.FromRecords([]location.Record{
		{UserID: "a", Loc: geo.Point{X: 0, Y: 0}},
		{UserID: "b", Loc: geo.Point{X: 0, Y: 1}},
		{UserID: "c", Loc: geo.Point{X: 10, Y: 10}},
		{UserID: "d", Loc: geo.Point{X: 10, Y: 11}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pair1 := geo.NewRect(0, 0, 0, 1)
	pair2 := geo.NewRect(10, 10, 10, 11)
	parent, err := lbs.NewAssignment(db, []geo.Rect{pair1, pair1, pair2, pair2})
	if err != nil {
		t.Fatal(err)
	}
	if r := Policy(parent, 2); !r.OK() {
		t.Fatalf("pairing baseline should verify: %v", r.Problems)
	}
	// Rewrite b's cloak to the singleton containing only her location: the
	// delta still masks, so ApplyDelta accepts it — verification is what
	// must catch the anonymity breach.
	single := geo.NewRect(0, 1, 0, 1)
	child, err := parent.ApplyDelta(nil, []lbs.CloakChange{{Index: 1, Old: pair1, New: single}})
	if err != nil {
		t.Fatal(err)
	}
	r := Delta(child, 2)
	if r.OK() {
		t.Fatal("singleton cloak passed delta verification")
	}
	if !r.DeltaScoped || r.PolicyAware || r.PolicyUnaware {
		t.Fatalf("flags wrong: %+v", r)
	}
	if r.MinAware != 1 || r.MinUnaware != 1 {
		t.Fatalf("min candidates aware=%d unaware=%d, want 1/1", r.MinAware, r.MinUnaware)
	}
	found := false
	for _, p := range r.Problems {
		if strings.Contains(p, "policy-aware") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no policy-aware problem reported: %v", r.Problems)
	}
}
