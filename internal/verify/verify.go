// Package verify is the defence-in-depth validation harness run before a
// policy is trusted: it re-derives, from first principles, every property
// the system promises about an assignment — the masking property
// (Definition 4), sender k-anonymity against both attacker classes
// (Definition 6, including the explicit construction of the k Possible
// Reverse Engineerings whose existence the definition requires), and the
// structural sanity of the cloaking groups.
//
// The anonymization pipeline already guarantees these properties by
// construction; this package exists so that operational surfaces
// (checkpoint restore, cluster assembly, simulation) can verify rather
// than trust, and so the Definition 6 witness lives in library code
// instead of only in tests.
package verify

import (
	"fmt"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// Report is the outcome of a full policy verification.
type Report struct {
	K     int
	Users int
	// Masking is true when every cloak contains its user's location.
	Masking bool
	// PolicyAware / PolicyUnaware report sender k-anonymity against each
	// attacker class.
	PolicyAware   bool
	PolicyUnaware bool
	// MinAware / MinUnaware are the smallest candidate sets observed.
	MinAware   int
	MinUnaware int
	// Witness holds, when PolicyAware is true, the k PREs of
	// Definition 6: Witness[i] maps every issued cloak to the i-th
	// distinct possible sender.
	Witness []map[geo.Rect]string
	// DeltaScoped marks a report produced by Delta: checks covered only
	// the cloaks a delta publish could have affected, the Min fields range
	// over those cloaks only, and no Definition 6 witness was built.
	DeltaScoped bool
	// Problems lists human-readable violations (empty when OK()).
	Problems []string
}

// OK reports whether the policy passed every check.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// String summarizes the report.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("FAILED (%d problems)", len(r.Problems))
	}
	return fmt.Sprintf("verify: %s — %d users, k=%d, masking=%v, aware=%v(min %d), unaware=%v(min %d)",
		status, r.Users, r.K, r.Masking, r.PolicyAware, r.MinAware, r.PolicyUnaware, r.MinUnaware)
}

// Policy runs the full verification of an assignment at anonymity level k.
func Policy(a *lbs.Assignment, k int) *Report {
	r := &Report{K: k, Users: a.Len(), Masking: true}
	if k < 1 {
		r.Problems = append(r.Problems, fmt.Sprintf("k=%d is not a valid anonymity level", k))
		return r
	}
	db := a.DB()
	for i := 0; i < db.Len(); i++ {
		if !a.CloakAt(i).ContainsClosed(db.At(i).Loc) {
			r.Masking = false
			r.Problems = append(r.Problems, fmt.Sprintf(
				"cloak %v of user %q does not contain her location %v",
				a.CloakAt(i), db.At(i).UserID, db.At(i).Loc))
		}
	}
	awareBreaches, minAware := attacker.Audit(a, k, attacker.PolicyAware)
	r.MinAware = minAware
	r.PolicyAware = len(awareBreaches) == 0
	for _, b := range awareBreaches {
		r.Problems = append(r.Problems, "policy-aware: "+b.String())
	}
	unawareBreaches, minUnaware := attacker.Audit(a, k, attacker.PolicyUnaware)
	r.MinUnaware = minUnaware
	r.PolicyUnaware = len(unawareBreaches) == 0
	for _, b := range unawareBreaches {
		r.Problems = append(r.Problems, "policy-unaware: "+b.String())
	}
	// Proposition 1 cross-check: policy-aware anonymity must imply
	// policy-unaware anonymity; if the audits ever disagree in the other
	// direction, the attacker model itself is broken.
	if r.PolicyAware && !r.PolicyUnaware {
		r.Problems = append(r.Problems, "Proposition 1 violated: aware-safe but unaware-breached")
	}
	// Definition 6 witness: k PREs with pairwise distinct senders per
	// observed cloak, each mapping back to the observed cloak under the
	// policy itself.
	if r.PolicyAware && a.Len() > 0 {
		witness, err := buildWitness(a, k)
		if err != nil {
			r.Problems = append(r.Problems, "witness construction failed: "+err.Error())
		} else {
			r.Witness = witness
		}
	}
	return r
}

// Delta verifies a delta-derived assignment by re-checking only what its
// delta could have changed, in O(|D| + touched) instead of Policy's
// O(|D| * groups) witness construction. Soundness rests on two facts:
// a policy-aware candidate set (users sharing a cloak verbatim) changes
// only for the Old/New rectangles of a cloak rewrite, and a policy-unaware
// candidate set (users geometrically inside a cloak) changes only for
// cloaks containing a move's From or To point. Everything else was checked
// when an ancestor assignment was verified in full — callers enforce a
// full-verify cadence (motion.Config.VerifyEvery) so that anchor exists.
// For assignments without a delta it falls back to Policy.
func Delta(a *lbs.Assignment, k int) *Report {
	d := a.Delta()
	if d == nil {
		return Policy(a, k)
	}
	r := &Report{K: k, Users: a.Len(), Masking: true, DeltaScoped: true}
	if k < 1 {
		r.Problems = append(r.Problems, fmt.Sprintf("k=%d is not a valid anonymity level", k))
		return r
	}
	db := a.DB()
	checkMask := func(i int) {
		if !a.CloakAt(i).ContainsClosed(db.At(i).Loc) {
			r.Masking = false
			r.Problems = append(r.Problems, fmt.Sprintf(
				"cloak %v of user %q does not contain her location %v",
				a.CloakAt(i), db.At(i).UserID, db.At(i).Loc))
		}
	}
	touched := make(map[geo.Rect]struct{}, 2*len(d.Cloaks))
	for _, c := range d.Cloaks {
		checkMask(c.Index)
		touched[c.Old] = struct{}{}
		touched[c.New] = struct{}{}
	}
	for _, mv := range d.Moves {
		checkMask(mv.Index)
	}
	// One pass over the snapshot: the policy-aware candidate count of every
	// published cloak.
	aware := make(map[geo.Rect]int, a.Len()/k+1)
	for i := 0; i < a.Len(); i++ {
		aware[a.CloakAt(i)]++
	}
	// Cloaks whose geometric membership a move can have changed.
	for rect := range aware {
		for _, mv := range d.Moves {
			if rect.ContainsClosed(mv.From) || rect.ContainsClosed(mv.To) {
				touched[rect] = struct{}{}
				break
			}
		}
	}
	r.PolicyAware, r.PolicyUnaware = true, true
	minAware, minUnaware := -1, -1
	var grid *location.Grid
	for rect := range touched {
		n := aware[rect]
		if n == 0 {
			continue // retired cloak: no user publishes it any more
		}
		if minAware < 0 || n < minAware {
			minAware = n
		}
		if n < k {
			r.PolicyAware = false
			r.Problems = append(r.Problems, fmt.Sprintf(
				"policy-aware: cloak %v has only %d of %d required candidates", rect, n, k))
		}
		if grid == nil {
			g, err := location.NewGrid(db, db.Bounds(), 0)
			if err != nil {
				r.PolicyUnaware = false
				r.Problems = append(r.Problems, "unaware index build failed: "+err.Error())
				continue
			}
			grid = g
		}
		u := grid.CountInClosed(rect)
		if minUnaware < 0 || u < minUnaware {
			minUnaware = u
		}
		if u < k {
			r.PolicyUnaware = false
			r.Problems = append(r.Problems, fmt.Sprintf(
				"policy-unaware: cloak %v covers only %d of %d required users", rect, u, k))
		}
	}
	// An empty touched set constrains nothing; report the trivial bound.
	if minAware < 0 {
		minAware = r.Users
	}
	if minUnaware < 0 {
		minUnaware = r.Users
	}
	r.MinAware, r.MinUnaware = minAware, minUnaware
	if r.PolicyAware && !r.PolicyUnaware {
		r.Problems = append(r.Problems, "Proposition 1 violated: aware-safe but unaware-breached")
	}
	return r
}

// buildWitness constructs and validates the k PREs of Definition 6.
func buildWitness(a *lbs.Assignment, k int) ([]map[geo.Rect]string, error) {
	witness := make([]map[geo.Rect]string, k)
	for i := range witness {
		witness[i] = make(map[geo.Rect]string)
	}
	db := a.DB()
	for _, g := range a.Groups() {
		cands := attacker.Candidates(a, g.Cloak, attacker.PolicyAware)
		if len(cands) < k {
			return nil, fmt.Errorf("cloak %v admits only %d PREs", g.Cloak, len(cands))
		}
		for i := 0; i < k; i++ {
			witness[i][g.Cloak] = cands[i]
		}
	}
	// Validate each PRE against Definition 5: the mapped service request
	// is valid w.r.t. D and the policy maps it back to the observed cloak.
	for i, pre := range witness {
		for cloak, user := range pre {
			loc, err := db.Lookup(user)
			if err != nil {
				return nil, fmt.Errorf("PRE %d maps %v to unknown user %q", i, cloak, user)
			}
			back, err := a.CloakOf(user)
			if err != nil || back != cloak {
				return nil, fmt.Errorf("PRE %d not reproduced by the policy for %q", i, user)
			}
			if !cloak.ContainsClosed(loc) {
				return nil, fmt.Errorf("PRE %d violates masking for %q", i, user)
			}
			for j := 0; j < i; j++ {
				if witness[j][cloak] == user {
					return nil, fmt.Errorf("PREs %d and %d collide on %v", i, j, cloak)
				}
			}
		}
	}
	return witness, nil
}
