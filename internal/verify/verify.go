// Package verify is the defence-in-depth validation harness run before a
// policy is trusted: it re-derives, from first principles, every property
// the system promises about an assignment — the masking property
// (Definition 4), sender k-anonymity against both attacker classes
// (Definition 6, including the explicit construction of the k Possible
// Reverse Engineerings whose existence the definition requires), and the
// structural sanity of the cloaking groups.
//
// The anonymization pipeline already guarantees these properties by
// construction; this package exists so that operational surfaces
// (checkpoint restore, cluster assembly, simulation) can verify rather
// than trust, and so the Definition 6 witness lives in library code
// instead of only in tests.
package verify

import (
	"fmt"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
)

// Report is the outcome of a full policy verification.
type Report struct {
	K     int
	Users int
	// Masking is true when every cloak contains its user's location.
	Masking bool
	// PolicyAware / PolicyUnaware report sender k-anonymity against each
	// attacker class.
	PolicyAware   bool
	PolicyUnaware bool
	// MinAware / MinUnaware are the smallest candidate sets observed.
	MinAware   int
	MinUnaware int
	// Witness holds, when PolicyAware is true, the k PREs of
	// Definition 6: Witness[i] maps every issued cloak to the i-th
	// distinct possible sender.
	Witness []map[geo.Rect]string
	// Problems lists human-readable violations (empty when OK()).
	Problems []string
}

// OK reports whether the policy passed every check.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// String summarizes the report.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("FAILED (%d problems)", len(r.Problems))
	}
	return fmt.Sprintf("verify: %s — %d users, k=%d, masking=%v, aware=%v(min %d), unaware=%v(min %d)",
		status, r.Users, r.K, r.Masking, r.PolicyAware, r.MinAware, r.PolicyUnaware, r.MinUnaware)
}

// Policy runs the full verification of an assignment at anonymity level k.
func Policy(a *lbs.Assignment, k int) *Report {
	r := &Report{K: k, Users: a.Len(), Masking: true}
	if k < 1 {
		r.Problems = append(r.Problems, fmt.Sprintf("k=%d is not a valid anonymity level", k))
		return r
	}
	db := a.DB()
	for i := 0; i < db.Len(); i++ {
		if !a.CloakAt(i).ContainsClosed(db.At(i).Loc) {
			r.Masking = false
			r.Problems = append(r.Problems, fmt.Sprintf(
				"cloak %v of user %q does not contain her location %v",
				a.CloakAt(i), db.At(i).UserID, db.At(i).Loc))
		}
	}
	awareBreaches, minAware := attacker.Audit(a, k, attacker.PolicyAware)
	r.MinAware = minAware
	r.PolicyAware = len(awareBreaches) == 0
	for _, b := range awareBreaches {
		r.Problems = append(r.Problems, "policy-aware: "+b.String())
	}
	unawareBreaches, minUnaware := attacker.Audit(a, k, attacker.PolicyUnaware)
	r.MinUnaware = minUnaware
	r.PolicyUnaware = len(unawareBreaches) == 0
	for _, b := range unawareBreaches {
		r.Problems = append(r.Problems, "policy-unaware: "+b.String())
	}
	// Proposition 1 cross-check: policy-aware anonymity must imply
	// policy-unaware anonymity; if the audits ever disagree in the other
	// direction, the attacker model itself is broken.
	if r.PolicyAware && !r.PolicyUnaware {
		r.Problems = append(r.Problems, "Proposition 1 violated: aware-safe but unaware-breached")
	}
	// Definition 6 witness: k PREs with pairwise distinct senders per
	// observed cloak, each mapping back to the observed cloak under the
	// policy itself.
	if r.PolicyAware && a.Len() > 0 {
		witness, err := buildWitness(a, k)
		if err != nil {
			r.Problems = append(r.Problems, "witness construction failed: "+err.Error())
		} else {
			r.Witness = witness
		}
	}
	return r
}

// buildWitness constructs and validates the k PREs of Definition 6.
func buildWitness(a *lbs.Assignment, k int) ([]map[geo.Rect]string, error) {
	witness := make([]map[geo.Rect]string, k)
	for i := range witness {
		witness[i] = make(map[geo.Rect]string)
	}
	db := a.DB()
	for _, g := range a.Groups() {
		cands := attacker.Candidates(a, g.Cloak, attacker.PolicyAware)
		if len(cands) < k {
			return nil, fmt.Errorf("cloak %v admits only %d PREs", g.Cloak, len(cands))
		}
		for i := 0; i < k; i++ {
			witness[i][g.Cloak] = cands[i]
		}
	}
	// Validate each PRE against Definition 5: the mapped service request
	// is valid w.r.t. D and the policy maps it back to the observed cloak.
	for i, pre := range witness {
		for cloak, user := range pre {
			loc, err := db.Lookup(user)
			if err != nil {
				return nil, fmt.Errorf("PRE %d maps %v to unknown user %q", i, cloak, user)
			}
			back, err := a.CloakOf(user)
			if err != nil || back != cloak {
				return nil, fmt.Errorf("PRE %d not reproduced by the policy for %q", i, user)
			}
			if !cloak.ContainsClosed(loc) {
				return nil, fmt.Errorf("PRE %d violates masking for %q", i, user)
			}
			for j := 0; j < i; j++ {
				if witness[j][cloak] == user {
					return nil, fmt.Errorf("PREs %d and %d collide on %v", i, j, cloak)
				}
			}
		}
	}
	return witness, nil
}
