package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"policyanon/internal/geo"
	"policyanon/internal/server"
)

// This file implements the tracked serving-throughput benchmark: the
// amortized hot path of POST /v1/request/batch (one snapshot
// acquisition, parallel item resolution, CSP singleflight) against the
// per-request baseline of sequential POST /v1/request calls, written as
// BENCH_serve.json. The acceptance gate is that batch serving sustains
// at least ServeBatchSpeedupFloor times the single-request throughput;
// -check-bench re-validates the tracked document in CI.

// ServeBatchSpeedupFloor is the required throughput ratio of batch over
// single-request serving. The batch path amortizes the HTTP round trip
// and the server's snapshot acquisition over every item, so the floor
// holds even on a single-core box — it gates protocol amortization, not
// hardware parallelism.
const ServeBatchSpeedupFloor = 2.0

// ServeBenchRow is one serving mode's measurement.
type ServeBenchRow struct {
	Mode      string  `json:"mode"`                // "single" or "batch"
	BatchSize int     `json:"batchSize,omitempty"` // requests per POST (batch mode)
	Requests  int64   `json:"requests"`            // user requests served
	ReqPerSec float64 `json:"reqPerSec"`
	NsPerReq  float64 `json:"nsPerReq"`
	// P50Ms/P99Ms are per-POST wall-time percentiles: one request's
	// latency in single mode, one whole batch's in batch mode.
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// ServeBench is the BENCH_serve.json document.
type ServeBench struct {
	// Bench discriminates benchmark documents for -check-bench; always
	// "serve" here.
	Bench   string `json:"bench"`
	Dataset string `json:"dataset"` // lbsbench scale name
	Users   int    `json:"users"`
	K       int    `json:"k"`
	Engine  string `json:"engine"`
	// Machine metadata, as in BENCH_bulkdp.json.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	CPUModel   string `json:"cpuModel"`
	GoVersion  string `json:"goVersion"`
	// Single and Batch measure the same request mix request-by-request
	// and in batches; Speedup is Batch.ReqPerSec / Single.ReqPerSec.
	Single  ServeBenchRow `json:"single"`
	Batch   ServeBenchRow `json:"batch"`
	Speedup float64       `json:"speedup"`
	// Singleflight counters accumulated during the batch run, from
	// /v1/stats: how many provider lookups actually started and how many
	// requests piggybacked on another's in-flight lookup.
	CoalesceFlights   int64 `json:"coalesceFlights"`
	CoalesceCoalesced int64 `json:"coalesceCoalesced"`
}

// ServeSweep benchmarks single-request and batched serving against a
// real HTTP server and returns the tracked document. batchSize is the
// number of requests per batch POST; minTime is the measurement budget
// per mode.
func ServeSweep(d Dataset, users, k, batchSize int, minTime time.Duration) (*ServeBench, error) {
	if batchSize < 2 {
		return nil, fmt.Errorf("experiments: serve batch size %d < 2", batchSize)
	}
	db, err := d.Sample(users)
	if err != nil {
		return nil, err
	}
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	side := d.Bounds.MaxX
	snap := server.SnapshotRequest{K: k, MapSide: side, Users: make([]server.UserJSON, db.Len())}
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		snap.Users[i] = server.UserJSON{ID: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y}
	}
	if err := postJSON(client, ts.URL+"/v1/snapshot", snap); err != nil {
		return nil, fmt.Errorf("experiments: serve bench snapshot: %w", err)
	}
	pois := struct {
		MapSide int32            `json:"mapSide"`
		POIs    []server.POIJSON `json:"pois"`
	}{MapSide: side}
	for i := 0; i < 16; i++ {
		p := geo.Point{X: int32(i) * side / 16, Y: int32(i) * side / 16}
		pois.POIs = append(pois.POIs, server.POIJSON{ID: fmt.Sprintf("poi%d", i), X: p.X, Y: p.Y, Category: "gas"})
	}
	if err := postJSON(client, ts.URL+"/v1/pois", pois); err != nil {
		return nil, fmt.Errorf("experiments: serve bench pois: %w", err)
	}

	// The same cycle of users drives both modes, so the cache and
	// coalescing regimes they see are comparable.
	nReqs := db.Len()
	if nReqs > 256 {
		nReqs = 256
	}
	reqs := make([]server.ServiceRequestJSON, nReqs)
	for i := range reqs {
		rec := db.At(i)
		reqs[i] = server.ServiceRequestJSON{User: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y}
	}
	singleBodies := make([][]byte, nReqs)
	for i, rq := range reqs {
		if singleBodies[i], err = json.Marshal(rq); err != nil {
			return nil, err
		}
	}
	var batchBodies [][]byte
	for at := 0; at < nReqs; at += batchSize {
		end := at + batchSize
		if end > nReqs {
			end = nReqs
		}
		body, err := json.Marshal(server.BatchRequestJSON{Requests: reqs[at:end]})
		if err != nil {
			return nil, err
		}
		batchBodies = append(batchBodies, body)
	}

	post := func(path string, body []byte) (time.Duration, error) {
		start := time.Now()
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%s status %s", path, resp.Status)
		}
		return time.Since(start), nil
	}

	// measure drives bodies[i%len] POSTs at path until minTime elapses;
	// perPost is how many user requests one POST carries.
	measure := func(mode, path string, bodies [][]byte, perPost func(i int) int) (ServeBenchRow, error) {
		for i := 0; i < 8; i++ { // warm connections and caches
			if _, err := post(path, bodies[i%len(bodies)]); err != nil {
				return ServeBenchRow{}, err
			}
		}
		var lat []time.Duration
		var requests int64
		start := time.Now()
		var elapsed time.Duration
		for i := 0; elapsed < minTime; i++ {
			d, err := post(path, bodies[i%len(bodies)])
			if err != nil {
				return ServeBenchRow{}, err
			}
			lat = append(lat, d)
			requests += int64(perPost(i % len(bodies)))
			elapsed = time.Since(start)
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(lat)-1))
			return float64(lat[idx].Nanoseconds()) / 1e6
		}
		return ServeBenchRow{
			Mode:      mode,
			Requests:  requests,
			ReqPerSec: float64(requests) / elapsed.Seconds(),
			NsPerReq:  float64(elapsed.Nanoseconds()) / float64(requests),
			P50Ms:     pct(0.50),
			P99Ms:     pct(0.99),
		}, nil
	}

	single, err := measure("single", "/v1/request", singleBodies, func(int) int { return 1 })
	if err != nil {
		return nil, err
	}
	statsBefore, err := fetchServeStats(client, ts.URL)
	if err != nil {
		return nil, err
	}
	batchLens := make([]int, len(batchBodies))
	for i := range batchBodies {
		end := (i + 1) * batchSize
		if end > nReqs {
			end = nReqs
		}
		batchLens[i] = end - i*batchSize
	}
	batch, err := measure("batch", "/v1/request/batch", batchBodies, func(i int) int { return batchLens[i] })
	if err != nil {
		return nil, err
	}
	batch.BatchSize = batchSize
	statsAfter, err := fetchServeStats(client, ts.URL)
	if err != nil {
		return nil, err
	}

	return &ServeBench{
		Bench:             "serve",
		Users:             db.Len(),
		K:                 k,
		Engine:            srv.DefaultEngine(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		CPUModel:          cpuModel(),
		GoVersion:         runtime.Version(),
		Single:            single,
		Batch:             batch,
		Speedup:           batch.ReqPerSec / single.ReqPerSec,
		CoalesceFlights:   statsAfter.CoalesceFlights - statsBefore.CoalesceFlights,
		CoalesceCoalesced: statsAfter.CoalesceCoalesced - statsBefore.CoalesceCoalesced,
	}, nil
}

// serveStats is the slice of /v1/stats the serve benchmark records.
type serveStats struct {
	CoalesceFlights   int64 `json:"coalesceFlights"`
	CoalesceCoalesced int64 `json:"coalesceCoalesced"`
}

func fetchServeStats(client *http.Client, base string) (serveStats, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return serveStats{}, err
	}
	defer resp.Body.Close()
	var st serveStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serveStats{}, err
	}
	return st, nil
}

// LoadServeBench decodes and validates a BENCH_serve.json document,
// enforcing the ServeBatchSpeedupFloor throughput gate; CI uses it to
// fail on malformed or regressed benchmark output.
func LoadServeBench(r io.Reader) (*ServeBench, error) {
	var b ServeBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: decode BENCH_serve.json: %w", err)
	}
	if b.Bench != "serve" {
		return nil, fmt.Errorf("experiments: BENCH_serve.json bench = %q, want \"serve\"", b.Bench)
	}
	if b.Users < 1 || b.K < 1 {
		return nil, fmt.Errorf("experiments: BENCH_serve.json metadata invalid: users=%d k=%d", b.Users, b.K)
	}
	if b.GOMAXPROCS < 1 || b.GoVersion == "" {
		return nil, fmt.Errorf("experiments: BENCH_serve.json machine metadata missing")
	}
	for _, row := range []ServeBenchRow{b.Single, b.Batch} {
		if row.Requests < 1 || row.ReqPerSec <= 0 || row.NsPerReq <= 0 || row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
			return nil, fmt.Errorf("experiments: BENCH_serve.json row invalid: %+v", row)
		}
	}
	if b.Batch.BatchSize < 2 {
		return nil, fmt.Errorf("experiments: BENCH_serve.json batch row has batchSize %d < 2", b.Batch.BatchSize)
	}
	if b.Speedup < ServeBatchSpeedupFloor {
		return nil, fmt.Errorf("experiments: batch serving speedup %.2fx below the %.1fx gate",
			b.Speedup, ServeBatchSpeedupFloor)
	}
	return &b, nil
}

// ServeBenchTable renders the measurement for the lbsbench table formats.
func ServeBenchTable(b *ServeBench) Table {
	tbl := Table{
		Name:   "serve_throughput",
		Header: []string{"mode", "batch_size", "requests", "req_per_sec", "p50_ms", "p99_ms"},
	}
	for _, r := range []ServeBenchRow{b.Single, b.Batch} {
		size := r.BatchSize
		if size == 0 {
			size = 1
		}
		tbl.Rows = append(tbl.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.0f", r.ReqPerSec),
			fmt.Sprintf("%.3f", r.P50Ms),
			fmt.Sprintf("%.3f", r.P99Ms),
		})
	}
	return tbl
}

// PrintServeBench writes the human table plus the speedup summary line.
func PrintServeBench(w io.Writer, b *ServeBench) {
	fmt.Fprintf(w, "%-8s %10s %10s %14s %10s %10s\n", "mode", "batch", "requests", "req/sec", "p50 ms", "p99 ms")
	for _, r := range []ServeBenchRow{b.Single, b.Batch} {
		size := r.BatchSize
		if size == 0 {
			size = 1
		}
		fmt.Fprintf(w, "%-8s %10d %10d %14.0f %10.3f %10.3f\n", r.Mode, size, r.Requests, r.ReqPerSec, r.P50Ms, r.P99Ms)
	}
	fmt.Fprintln(w, ServeSpeedupSummary(b))
}

// ServeSpeedupSummary renders the one-line gate summary, e.g.
// "serve throughput: single 1234 req/s, batch(64) 5678 req/s — 4.60x
// (gate 2.0x); singleflight: 12 flights, 340 coalesced".
func ServeSpeedupSummary(b *ServeBench) string {
	return fmt.Sprintf("serve throughput: single %.0f req/s, batch(%d) %.0f req/s — %.2fx (gate %.1fx); singleflight: %d flights, %d coalesced",
		b.Single.ReqPerSec, b.Batch.BatchSize, b.Batch.ReqPerSec, b.Speedup, ServeBatchSpeedupFloor,
		b.CoalesceFlights, b.CoalesceCoalesced)
}
