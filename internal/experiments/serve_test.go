package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func TestServeSweepProducesValidDoc(t *testing.T) {
	d := NewDataset(workload.Config{
		MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 5)
	bench, err := ServeSweep(d, 500, 10, 16, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Bench != "serve" {
		t.Errorf("bench discriminator = %q", bench.Bench)
	}
	if bench.Single.Requests < 1 || bench.Batch.Requests < 1 {
		t.Fatalf("no requests measured: %+v", bench)
	}
	if bench.Batch.BatchSize != 16 {
		t.Errorf("batch row batchSize = %d, want 16", bench.Batch.BatchSize)
	}
	for _, row := range []ServeBenchRow{bench.Single, bench.Batch} {
		if row.ReqPerSec <= 0 || row.NsPerReq <= 0 || row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
			t.Errorf("row %s inconsistent: %+v", row.Mode, row)
		}
	}
	if bench.Speedup <= 0 {
		t.Errorf("speedup = %v", bench.Speedup)
	}
	// The batch run drives the CSP singleflight: at least one flight must
	// have started (the counters are a delta across the batch phase).
	if bench.CoalesceFlights < 0 || bench.CoalesceCoalesced < 0 {
		t.Errorf("negative coalesce counters: %+v", bench)
	}
	if bench.GOMAXPROCS < 1 || bench.GoVersion == "" || bench.CPUModel == "" {
		t.Errorf("machine metadata incomplete: %+v", bench)
	}
	tbl := ServeBenchTable(bench)
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != len(tbl.Header) {
		t.Errorf("table shape wrong: %+v", tbl)
	}
	var buf bytes.Buffer
	PrintServeBench(&buf, bench)
	if !strings.Contains(buf.String(), "serve throughput:") {
		t.Errorf("print output missing summary: %q", buf.String())
	}

	if _, err := ServeSweep(d, 500, 10, 1, time.Millisecond); err == nil {
		t.Error("batch size 1 accepted")
	}
}

// TestLoadServeBenchGates exercises the BENCH_serve.json CI gate on
// synthetic documents: the speedup floor, the structural checks, and the
// discriminator.
func TestLoadServeBenchGates(t *testing.T) {
	doc := func(speedup float64, batchSize int) string {
		b := ServeBench{
			Bench: "serve", Dataset: "small", Users: 100, K: 10, Engine: "bulkdp-binary",
			GOMAXPROCS: 4, NumCPU: 4, CPUModel: "test", GoVersion: "go1.x",
			Single: ServeBenchRow{Mode: "single", Requests: 1000, ReqPerSec: 1000, NsPerReq: 1e6, P50Ms: 1, P99Ms: 2},
			Batch: ServeBenchRow{Mode: "batch", BatchSize: batchSize, Requests: 1000,
				ReqPerSec: 1000 * speedup, NsPerReq: 1e6 / speedup, P50Ms: 1, P99Ms: 2},
			Speedup: speedup,
		}
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	if _, err := LoadServeBench(strings.NewReader(doc(3.5, 64))); err != nil {
		t.Errorf("healthy document rejected: %v", err)
	}
	if _, err := LoadServeBench(strings.NewReader(doc(1.4, 64))); err == nil {
		t.Error("speedup 1.4x passed the 2.0x gate")
	} else if !strings.Contains(err.Error(), "below the 2.0x gate") {
		t.Errorf("wrong gate error: %v", err)
	}
	if _, err := LoadServeBench(strings.NewReader(doc(3.5, 1))); err == nil {
		t.Error("batchSize 1 accepted")
	}
	bad := strings.Replace(doc(3.5, 64), `"bench":"serve"`, `"bench":"nope"`, 1)
	if _, err := LoadServeBench(strings.NewReader(bad)); err == nil {
		t.Error("wrong discriminator accepted")
	}
	if _, err := LoadServeBench(strings.NewReader(`{"bench":"serve"}`)); err == nil {
		t.Error("empty document accepted")
	}
}
