package experiments

import (
	"bytes"
	"strings"
	"testing"

	"policyanon/internal/workload"
)

// smallDataset keeps experiment tests fast: ~10k users on a 16 km map.
func smallDataset() Dataset {
	return NewDataset(workload.Config{
		MapSide: 1 << 14, Intersections: 2000, UsersPerIntersection: 5, SpreadSigma: 120,
	}, 7)
}

func TestFig2(t *testing.T) {
	d := smallDataset()
	rows := Fig2(d, []int{8, 16})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SkewRatio <= 1 {
			t.Errorf("grid %d: synthetic data should be skewed, got %.2f", r.Cells, r.SkewRatio)
		}
		if float64(r.MaxUsers) < r.MeanUsers {
			t.Errorf("grid %d: max < mean", r.Cells)
		}
	}
	var buf bytes.Buffer
	PrintFig2(&buf, rows)
	if !strings.Contains(buf.String(), "skew") {
		t.Error("PrintFig2 output missing header")
	}
}

func TestFig3(t *testing.T) {
	d := smallDataset()
	const k = 25
	rows, err := Fig3(d, []int{2000, 6000, 10000}, k)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, r := range rows {
		if r.MaxLeafCount >= k {
			t.Errorf("|D|=%d: leaf with %d >= k users", r.N, r.MaxLeafCount)
		}
		if r.Nodes < prev {
			t.Errorf("|D|=%d: node count decreased (%d -> %d)", r.N, prev, r.Nodes)
		}
		prev = r.Nodes
		if r.MaxHeight > 40 {
			t.Errorf("|D|=%d: implausible height %d", r.N, r.MaxHeight)
		}
	}
	var buf bytes.Buffer
	PrintFig3(&buf, rows)
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 4 {
		t.Errorf("PrintFig3 rows wrong:\n%s", buf.String())
	}
}

func TestFig4a(t *testing.T) {
	d := smallDataset()
	rows, err := Fig4a(d, []int{3000, 9000}, []int{1, 4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Cost at a given size must not depend on the pool size by more than
	// the border effect; and multi-server cost >= single-server cost.
	for i := 0; i+1 < len(rows); i += 2 {
		if rows[i].N != rows[i+1].N {
			t.Fatal("row pairing broken")
		}
		if rows[i+1].Cost < rows[i].Cost {
			t.Errorf("|D|=%d: 4 servers cost %d below 1 server %d", rows[i].N, rows[i+1].Cost, rows[i].Cost)
		}
	}
	var buf bytes.Buffer
	PrintFig4a(&buf, rows)
	if !strings.Contains(buf.String(), "servers") {
		t.Error("PrintFig4a header missing")
	}
}

func TestFig4b(t *testing.T) {
	d := smallDataset()
	rows, err := Fig4b(d, 8000, []int{5, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	// Larger k can only increase the optimal cost (coarser grouping).
	for i := 1; i < len(rows); i++ {
		if rows[i].Cost < rows[i-1].Cost {
			t.Errorf("cost decreased from k=%d (%d) to k=%d (%d)",
				rows[i-1].K, rows[i-1].Cost, rows[i].K, rows[i].Cost)
		}
	}
	var buf bytes.Buffer
	PrintFig4b(&buf, rows)
	if !strings.Contains(buf.String(), "cost") {
		t.Error("PrintFig4b header missing")
	}
}

func TestFig5a(t *testing.T) {
	d := smallDataset()
	const k = 20
	rows, err := Fig5a(d, []int{4000, 10000}, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Casper refines PUQ, so its average area cannot exceed PUQ's.
		if r.Casper > r.PUQ {
			t.Errorf("|D|=%d: Casper %f > PUQ %f", r.N, r.Casper, r.PUQ)
		}
		if r.PUB > r.PUQ {
			t.Errorf("|D|=%d: PUB %f > PUQ %f", r.N, r.PUB, r.PUQ)
		}
		// The paper's headline claim: policy-aware cost at most ~1.7x
		// Casper; allow 2x slack for the synthetic data.
		if r.RatioToCasper > 2.0 {
			t.Errorf("|D|=%d: policy-aware/Casper ratio %.2f implausibly high", r.N, r.RatioToCasper)
		}
		if r.PolicyAware <= 0 {
			t.Errorf("|D|=%d: nonpositive policy-aware area", r.N)
		}
	}
	var buf bytes.Buffer
	PrintFig5a(&buf, rows)
	if !strings.Contains(buf.String(), "policy-aware") {
		t.Error("PrintFig5a header missing")
	}
}

func TestFig5b(t *testing.T) {
	d := smallDataset()
	rows, err := Fig5b(d, 8000, 20, []float64{0.001, 0.05}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].RowsRecomputed > rows[1].RowsRecomputed {
		t.Errorf("more movement should touch at least as many rows: %d vs %d",
			rows[0].RowsRecomputed, rows[1].RowsRecomputed)
	}
	var buf bytes.Buffer
	PrintFig5b(&buf, rows)
	if !strings.Contains(buf.String(), "incremental") {
		t.Error("PrintFig5b header missing")
	}
}

func TestParallelUtility(t *testing.T) {
	d := smallDataset()
	rows, err := ParallelUtility(d, 10000, 20, []int{1, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DivergencePct != 0 {
		t.Errorf("single jurisdiction should match the optimum, divergence %.3f%%", rows[0].DivergencePct)
	}
	for _, r := range rows {
		if r.DivergencePct < 0 {
			t.Errorf("negative divergence %.3f%% at %d jurisdictions", r.DivergencePct, r.Jurisdictions)
		}
		// Section VI-D: divergence stays under 1% even under stress.
		if r.DivergencePct > 1.0 {
			t.Errorf("divergence %.3f%% exceeds the paper's 1%% envelope at %d jurisdictions",
				r.DivergencePct, r.Jurisdictions)
		}
	}
	var buf bytes.Buffer
	PrintParallel(&buf, rows)
	if !strings.Contains(buf.String(), "divergence") {
		t.Error("PrintParallel header missing")
	}
}

func TestAnswerSize(t *testing.T) {
	d := smallDataset()
	rows, err := AnswerSize(d, 6000, 20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]UtilityRow)
	for _, r := range rows {
		if r.AvgAnswerSize < 1 {
			t.Errorf("%s: answer size %.2f below 1", r.Policy, r.AvgAnswerSize)
		}
		byName[r.Policy] = r
	}
	// Answer size should broadly track cloak area: PUQ (largest cloaks)
	// must not return smaller answers than Casper (smallest cloaks).
	if byName["PUQ"].AvgAnswerSize < byName["Casper"].AvgAnswerSize {
		t.Errorf("PUQ answers (%.2f) smaller than Casper answers (%.2f)",
			byName["PUQ"].AvgAnswerSize, byName["Casper"].AvgAnswerSize)
	}
	var buf bytes.Buffer
	PrintUtility(&buf, rows)
	if !strings.Contains(buf.String(), "answer size") {
		t.Error("PrintUtility header missing")
	}
}

func TestHilbertExperiment(t *testing.T) {
	d := smallDataset()
	rows, err := Hilbert(d, []int{3000}, 15)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.OptimalMinAnon < 15 || r.HilbertMinAnon < 15 {
		t.Fatalf("policy-aware-safe schemes below k: %+v", r)
	}
	if r.FindMBCAwareAnon >= 15 {
		t.Fatalf("FindMBC unexpectedly policy-aware safe: %+v", r)
	}
	if r.OptimalAvgArea <= 0 || r.HilbertAvgArea <= 0 || r.FindMBCAvgArea <= 0 {
		t.Fatalf("degenerate areas: %+v", r)
	}
	var buf bytes.Buffer
	PrintHilbert(&buf, rows)
	if !strings.Contains(buf.String(), "HilbertCloak") {
		t.Error("PrintHilbert header missing")
	}
}

func TestTrajectoryErosionExperiment(t *testing.T) {
	d := smallDataset()
	rows, err := TrajectoryErosion(d, 4000, 15, 5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := rows[0].Composed
	for i, r := range rows {
		if r.PerSnapshot < 15 {
			t.Fatalf("snapshot %d per-snapshot anonymity %d below k", i, r.PerSnapshot)
		}
		if r.Composed > r.PerSnapshot {
			t.Fatalf("snapshot %d composed %d exceeds per-snapshot %d", i, r.Composed, r.PerSnapshot)
		}
		if r.Composed > prev {
			t.Fatalf("snapshot %d composed anonymity grew: %d -> %d", i, prev, r.Composed)
		}
		prev = r.Composed
	}
	if rows[len(rows)-1].Composed >= rows[0].Composed {
		t.Fatal("trajectory attack failed to erode anonymity")
	}
	var buf bytes.Buffer
	PrintTrajectory(&buf, rows)
	if !strings.Contains(buf.String(), "composed") {
		t.Error("PrintTrajectory header missing")
	}
}

func TestSampleClamps(t *testing.T) {
	d := smallDataset()
	db, err := d.Sample(d.Master.Len() * 2)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != d.Master.Len() {
		t.Fatalf("oversized sample should return the master set")
	}
	small, err := d.Sample(100)
	if err != nil || small.Len() != 100 {
		t.Fatalf("sample(100): %d %v", small.Len(), err)
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	d := smallDataset()
	rows, err := Adaptive(d, []int{3000, 6000}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CostRatio > 1.0000001 {
			t.Fatalf("|D|=%d: adaptive ratio %.4f exceeds 1", r.N, r.CostRatio)
		}
		if r.AdaptiveAvg <= 0 || r.StaticAvgArea <= 0 {
			t.Fatalf("degenerate areas: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintAdaptive(&buf, rows)
	if !strings.Contains(buf.String(), "ratio") {
		t.Error("PrintAdaptive header missing")
	}
}
