package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"policyanon/internal/geo"
	"policyanon/internal/ledger"
	"policyanon/internal/server"
)

// This file implements the tracked privacy-observatory benchmark: the
// serving-path overhead of audit sampling on /v1/request, written as
// BENCH_audit.json. The acceptance gate is that sampled auditing at the
// default rate costs the request path less than MaxAuditOverheadPct of
// throughput; -check-bench re-validates the tracked document in CI.

// MaxAuditOverheadPct is the throughput-loss budget of the sampled audit
// path; LoadAuditBench fails documents that exceed it.
const MaxAuditOverheadPct = 5.0

// AuditBenchRow is one sampling mode's measurement over the request path.
type AuditBenchRow struct {
	Mode      string  `json:"mode"` // "off" or "sampled"
	Rate      float64 `json:"rate"`
	Requests  int64   `json:"requests"`
	ReqPerSec float64 `json:"reqPerSec"`
	NsPerReq  float64 `json:"nsPerReq"`
	Audited   int64   `json:"audited"` // requests the auditor selected
}

// AuditBench is the BENCH_audit.json document.
type AuditBench struct {
	// Bench discriminates benchmark documents for -check-bench; always
	// "audit" here.
	Bench   string `json:"bench"`
	Dataset string `json:"dataset"` // lbsbench scale name
	Users   int    `json:"users"`
	K       int    `json:"k"`
	Engine  string `json:"engine"`
	// Machine metadata, as in BENCH_bulkdp.json.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	CPUModel   string `json:"cpuModel"`
	GoVersion  string `json:"goVersion"`
	// Off and Sampled measure the same request mix with auditing disabled
	// and at Sampled.Rate; OverheadPct is the relative throughput loss.
	Off         AuditBenchRow `json:"off"`
	Sampled     AuditBenchRow `json:"sampled"`
	OverheadPct float64       `json:"overheadPct"`
	// Ledgered measures the same mix with sampling at Sampled.Rate AND the
	// tamper-evident ledger enabled (file anchor, default batching);
	// LedgerOverheadPct is its throughput loss relative to Off. Pointers:
	// absent on documents predating the ledger, and the gate only applies
	// when measured.
	Ledgered          *AuditBenchRow `json:"ledgered,omitempty"`
	LedgerOverheadPct *float64       `json:"ledgerOverheadPct,omitempty"`
	// Achieved-anonymity facts from the sampled run's rolling report,
	// recording what the observatory actually measured while benchmarked.
	MinKAware   int   `json:"minKAware"`
	MinKUnaware int   `json:"minKUnaware"`
	Breaches    int64 `json:"breaches"`
}

// AuditSweep benchmarks the /v1/request serving path of a real HTTP
// server with audit sampling off and at rate, and returns the tracked
// document. minTime is the measurement budget per mode.
func AuditSweep(d Dataset, users, k int, rate float64, minTime time.Duration) (*AuditBench, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("experiments: audit rate %v outside (0,1]", rate)
	}
	db, err := d.Sample(users)
	if err != nil {
		return nil, err
	}
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	side := d.Bounds.MaxX
	snap := server.SnapshotRequest{K: k, MapSide: side, Users: make([]server.UserJSON, db.Len())}
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		snap.Users[i] = server.UserJSON{ID: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y}
	}
	if err := postJSON(client, ts.URL+"/v1/snapshot", snap); err != nil {
		return nil, fmt.Errorf("experiments: audit bench snapshot: %w", err)
	}
	pois := struct {
		MapSide int32            `json:"mapSide"`
		POIs    []server.POIJSON `json:"pois"`
	}{MapSide: side}
	for i := 0; i < 16; i++ {
		p := geo.Point{X: int32(i) * side / 16, Y: int32(i) * side / 16}
		pois.POIs = append(pois.POIs, server.POIJSON{ID: fmt.Sprintf("poi%d", i), X: p.X, Y: p.Y, Category: "gas"})
	}
	if err := postJSON(client, ts.URL+"/v1/pois", pois); err != nil {
		return nil, fmt.Errorf("experiments: audit bench pois: %w", err)
	}

	// Pre-marshal a cycle of request bodies so the driver measures the
	// server, not the encoder.
	nBodies := db.Len()
	if nBodies > 256 {
		nBodies = 256
	}
	bodies := make([][]byte, nBodies)
	for i := range bodies {
		rec := db.At(i)
		bodies[i], err = json.Marshal(server.ServiceRequestJSON{User: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y})
		if err != nil {
			return nil, err
		}
	}
	next := 0
	doRequest := func() error {
		body := bodies[next%len(bodies)]
		next++
		resp, err := client.Post(ts.URL+"/v1/request", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("request status %s", resp.Status)
		}
		return nil
	}

	measure := func(mode string, r float64) (AuditBenchRow, error) {
		srv.SetAuditRate(r)
		for i := 0; i < 32; i++ { // warm connections and caches
			if err := doRequest(); err != nil {
				return AuditBenchRow{}, err
			}
		}
		warm := srv.Auditor().Report().RequestAudits
		start := time.Now()
		var n int64
		var elapsed time.Duration
		for elapsed < minTime {
			if err := doRequest(); err != nil {
				return AuditBenchRow{}, err
			}
			n++
			elapsed = time.Since(start)
		}
		return AuditBenchRow{
			Mode:      mode,
			Rate:      r,
			Requests:  n,
			ReqPerSec: float64(n) / elapsed.Seconds(),
			NsPerReq:  float64(elapsed.Nanoseconds()) / float64(n),
			Audited:   srv.Auditor().Report().RequestAudits - warm,
		}, nil
	}

	off, err := measure("off", 0)
	if err != nil {
		return nil, err
	}
	sampled, err := measure("sampled", rate)
	if err != nil {
		return nil, err
	}

	// Third mode: same sampling rate with the tamper-evident ledger on at
	// default batching, anchored to a real file so the fsync cost is in
	// the measurement. Sealing is asynchronous, so the serving-path cost
	// is one hash + append per audited event.
	ledgerDir, err := os.MkdirTemp("", "lbsbench-ledger")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ledgerDir)
	anchorPath := filepath.Join(ledgerDir, "audit.ledger")
	fileAnchor, err := ledger.OpenFileAnchor(anchorPath, srv.Metrics(), nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: ledger anchor: %w", err)
	}
	led, err := ledger.New(fileAnchor, ledger.Options{Registry: srv.Metrics()})
	if err != nil {
		return nil, fmt.Errorf("experiments: ledger: %w", err)
	}
	srv.EnableLedger(led)
	ledgered, err := measure("ledgered", rate)
	if err != nil {
		return nil, err
	}
	srv.EnableLedger(nil)
	if err := led.Close(context.Background()); err != nil {
		return nil, fmt.Errorf("experiments: ledger close: %w", err)
	}
	if err := fileAnchor.Close(); err != nil {
		return nil, fmt.Errorf("experiments: ledger anchor close: %w", err)
	}
	// The benchmark doubles as an integrity check: the anchor file written
	// under load must replay-verify offline.
	if _, err := ledger.VerifyAnchorFile(anchorPath, nil); err != nil {
		return nil, fmt.Errorf("experiments: ledger anchor failed offline verification: %w", err)
	}

	rep := srv.Auditor().Report()
	bench := &AuditBench{
		Bench:      "audit",
		Users:      db.Len(),
		K:          k,
		Engine:     srv.DefaultEngine(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GoVersion:  runtime.Version(),
		Off:        off,
		Sampled:    sampled,
		OverheadPct: (off.ReqPerSec - sampled.ReqPerSec) /
			off.ReqPerSec * 100,
		MinKAware:   rep.Aware.Min,
		MinKUnaware: rep.Unaware.Min,
		Breaches:    rep.Aware.Breaches + rep.Unaware.Breaches,
	}
	bench.Ledgered = &ledgered
	ledgerOverhead := (off.ReqPerSec - ledgered.ReqPerSec) / off.ReqPerSec * 100
	bench.LedgerOverheadPct = &ledgerOverhead
	return bench, nil
}

// postJSON posts v and fails on a non-200 answer.
func postJSON(client *http.Client, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// LoadAuditBench decodes and validates a BENCH_audit.json document,
// enforcing the MaxAuditOverheadPct serving-overhead gate; CI uses it to
// fail on malformed or out-of-budget benchmark output.
func LoadAuditBench(r io.Reader) (*AuditBench, error) {
	var b AuditBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: decode BENCH_audit.json: %w", err)
	}
	if b.Bench != "audit" {
		return nil, fmt.Errorf("experiments: BENCH_audit.json bench = %q, want \"audit\"", b.Bench)
	}
	if b.Users < 1 || b.K < 1 {
		return nil, fmt.Errorf("experiments: BENCH_audit.json metadata invalid: users=%d k=%d", b.Users, b.K)
	}
	if b.GOMAXPROCS < 1 || b.GoVersion == "" {
		return nil, fmt.Errorf("experiments: BENCH_audit.json machine metadata missing")
	}
	for _, row := range []AuditBenchRow{b.Off, b.Sampled} {
		if row.Requests < 1 || row.ReqPerSec <= 0 || row.NsPerReq <= 0 {
			return nil, fmt.Errorf("experiments: BENCH_audit.json row invalid: %+v", row)
		}
	}
	if b.Sampled.Rate <= 0 {
		return nil, fmt.Errorf("experiments: BENCH_audit.json sampled row has no rate")
	}
	if b.OverheadPct >= MaxAuditOverheadPct {
		return nil, fmt.Errorf("experiments: audit overhead %.2f%% exceeds the %.1f%% budget",
			b.OverheadPct, MaxAuditOverheadPct)
	}
	if b.Ledgered != nil {
		if b.Ledgered.Requests < 1 || b.Ledgered.ReqPerSec <= 0 || b.Ledgered.NsPerReq <= 0 {
			return nil, fmt.Errorf("experiments: BENCH_audit.json ledgered row invalid: %+v", *b.Ledgered)
		}
		if b.LedgerOverheadPct == nil {
			return nil, fmt.Errorf("experiments: BENCH_audit.json has a ledgered row but no ledgerOverheadPct")
		}
		if *b.LedgerOverheadPct >= MaxAuditOverheadPct {
			return nil, fmt.Errorf("experiments: ledger overhead %.2f%% exceeds the %.1f%% budget",
				*b.LedgerOverheadPct, MaxAuditOverheadPct)
		}
	}
	return &b, nil
}

// AuditBenchTable renders the measurement for the lbsbench table formats.
func AuditBenchTable(b *AuditBench) Table {
	tbl := Table{
		Name:   "audit_overhead",
		Header: []string{"mode", "rate", "req_per_sec", "ns_per_req", "audited"},
	}
	rows := []AuditBenchRow{b.Off, b.Sampled}
	if b.Ledgered != nil {
		rows = append(rows, *b.Ledgered)
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.Mode,
			fmt.Sprintf("%.4f", r.Rate),
			fmt.Sprintf("%.0f", r.ReqPerSec),
			fmt.Sprintf("%.0f", r.NsPerReq),
			fmt.Sprintf("%d", r.Audited),
		})
	}
	return tbl
}

// PrintAuditBench writes the human table plus the overhead summary line.
func PrintAuditBench(w io.Writer, b *AuditBench) {
	fmt.Fprintf(w, "%-8s %10s %14s %14s %10s\n", "mode", "rate", "req/sec", "ns/req", "audited")
	rows := []AuditBenchRow{b.Off, b.Sampled}
	if b.Ledgered != nil {
		rows = append(rows, *b.Ledgered)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.4f %14.0f %14.0f %10d\n", r.Mode, r.Rate, r.ReqPerSec, r.NsPerReq, r.Audited)
	}
	fmt.Fprintln(w, AuditOverheadSummary(b))
}

// clampOverhead floors a measured overhead at zero for display: a
// negative value means the audited run out-ran the baseline, which is
// measurement noise, not a speedup. The note keeps the raw value visible.
func clampOverhead(pct float64) string {
	if pct < 0 {
		return fmt.Sprintf("0.00%% (measured %.2f%%, within noise)", pct)
	}
	return fmt.Sprintf("%.2f%%", pct)
}

// AuditOverheadSummary renders the one-line gate summary, e.g.
// "audit overhead: 1.23% at rate 1/64 (budget 5.0%); window min k 50/52".
// Negative measured overheads are clamped to 0 with the raw value noted.
func AuditOverheadSummary(b *AuditBench) string {
	s := fmt.Sprintf("audit overhead: %s at rate %.4f (budget %.1f%%)",
		clampOverhead(b.OverheadPct), b.Sampled.Rate, MaxAuditOverheadPct)
	if b.LedgerOverheadPct != nil {
		s += fmt.Sprintf("; ledger overhead: %s", clampOverhead(*b.LedgerOverheadPct))
	}
	return s + fmt.Sprintf("; min achieved-k %d aware / %d unaware, %d breaches",
		b.MinKAware, b.MinKUnaware, b.Breaches)
}
