package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"policyanon/internal/engine"
	"policyanon/internal/motion"
	"policyanon/internal/workload"
)

// This file implements the tracked streaming-churn benchmark: sustained
// movement-update throughput of the live motion pipeline under forced
// incremental maintenance versus forced full rebuilds, written as
// BENCH_churn.json. The acceptance gate is that incremental maintenance
// with delta publication outruns rebuild-per-batch by at least
// ChurnSpeedupGate (matrix maintenance alone bought ~1.7x; extracting and
// publishing only changed cloaks is what unlocks the rest);
// -check-bench re-validates the tracked document in CI.

// ChurnBatchSize is the flush size ChurnSweep drives the pipeline with:
// large enough to amortize per-batch overhead, small enough that a
// rebuild engine recomputes many times per measurement window.
const ChurnBatchSize = 64

// ChurnSpeedupGate is the minimum IncrementalSpeedup LoadChurnBench
// accepts: the delta publication path (ExtractDelta + copy-on-write
// ApplyDelta/CloneWithMoves) must beat rebuild-per-batch by at least this
// factor, not merely edge it out.
const ChurnSpeedupGate = 5.0

// ChurnBenchRow is one maintenance strategy's measurement.
type ChurnBenchRow struct {
	Strategy string `json:"strategy"` // "incremental" or "rebuild"
	Batches  int64  `json:"batches"`
	Moves    int64  `json:"moves"`
	Rows     int64  `json:"rowsRecomputed"`
	// RowsExtracted counts tree nodes the policy-exhibition pass
	// re-assigned; CloaksChanged counts per-user cloak rewrites published.
	// On the delta path both are O(changes) per batch instead of |D|.
	RowsExtracted int64   `json:"rowsExtracted"`
	CloaksChanged int64   `json:"cloaksChanged"`
	UpdatesPerSec float64 `json:"updatesPerSec"`
	NsPerBatch    float64 `json:"nsPerBatch"`
}

// ChurnBench is the BENCH_churn.json document.
type ChurnBench struct {
	// Bench discriminates benchmark documents for -check-bench; always
	// "churn" here.
	Bench   string `json:"bench"`
	Dataset string `json:"dataset"` // lbsbench scale name
	Users   int    `json:"users"`
	K       int    `json:"k"`
	Engine  string `json:"engine"`
	Batch   int    `json:"batch"` // MaxBatch the pipeline flushed at
	// Machine metadata, as in the other tracked BENCH documents.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	CPUModel   string `json:"cpuModel"`
	GoVersion  string `json:"goVersion"`
	// Incremental and Rebuild measure the same bounded-motion feed under
	// the two forced strategies; IncrementalSpeedup is the throughput
	// ratio incremental/rebuild.
	Incremental        ChurnBenchRow `json:"incremental"`
	Rebuild            ChurnBenchRow `json:"rebuild"`
	IncrementalSpeedup float64       `json:"incrementalSpeedup"`
}

// ChurnSweep measures sustained update throughput through a live motion
// pipeline — ingest queue, coalescing, maintenance, snapshot publish —
// once per forced strategy, over the same deterministic bounded-motion
// feed. minTime is the feed budget per strategy (draining the queue is
// measured on top, so every accepted update counts).
func ChurnSweep(d Dataset, users, k int, minTime time.Duration) (*ChurnBench, error) {
	measure := func(strategy motion.Strategy) (ChurnBenchRow, error) {
		base, err := d.Sample(users)
		if err != nil {
			return ChurnBenchRow{}, err
		}
		// The pipeline mutates its DB; never hand it the shared master.
		db := base.Clone()
		cfg := motion.Config{
			K:             k,
			QueueCapacity: 4 * ChurnBatchSize,
			MaxBatch:      ChurnBatchSize,
			FlushInterval: time.Hour, // flush on size only: fixed batches
			Strategy:      strategy,
			MaxMoveMeters: -1, // the feed is bounded by construction
			SkipVerify:    true,
			BaseContext:   d.ctx(),
		}
		p, err := motion.New(db, d.Bounds, cfg)
		if err != nil {
			return ChurnBenchRow{}, err
		}
		stream := workload.NewMoveStream(d.Seed+3, db, 200, d.Bounds.MaxX)
		ctx := context.Background()
		feed := func(n int) error {
			for _, mv := range stream.NextBatch(n) {
				u := motion.Update{
					UserID: stream.UserID(mv.Index),
					X:      float64(mv.To.X),
					Y:      float64(mv.To.Y),
				}
				if err := p.Enqueue(ctx, u); err != nil {
					return err
				}
			}
			return nil
		}
		// Warm up one batch (first apply pays one-off allocation costs),
		// then feed under backpressure for the budget and drain.
		if err := feed(ChurnBatchSize); err != nil {
			return ChurnBenchRow{}, err
		}
		warmDeadline := time.Now().Add(time.Minute)
		for p.Epoch() < 2 {
			if time.Now().After(warmDeadline) {
				return ChurnBenchRow{}, fmt.Errorf("experiments: churn warmup batch never applied")
			}
			time.Sleep(time.Millisecond)
		}
		warm := p.Stats()
		start := time.Now()
		for time.Since(start) < minTime {
			if err := feed(ChurnBatchSize); err != nil {
				return ChurnBenchRow{}, err
			}
		}
		drainCtx, cancel := context.WithTimeout(ctx, 5*time.Minute)
		defer cancel()
		if err := p.Close(drainCtx); err != nil {
			return ChurnBenchRow{}, fmt.Errorf("experiments: churn drain (%s): %w", strategy, err)
		}
		elapsed := time.Since(start)
		st := p.Stats()
		batches := st.Batches - warm.Batches
		moves := st.Moves - warm.Moves
		if batches < 1 || moves < 1 {
			return ChurnBenchRow{}, fmt.Errorf("experiments: churn (%s) applied no batches", strategy)
		}
		if strategy == motion.StrategyIncremental && st.Rebuilds > 0 {
			return ChurnBenchRow{}, fmt.Errorf("experiments: churn incremental run fell back to %d rebuilds", st.Rebuilds)
		}
		if strategy == motion.StrategyIncremental && st.DeltaPublishes == 0 {
			return ChurnBenchRow{}, fmt.Errorf("experiments: churn incremental run never took the delta publish path")
		}
		return ChurnBenchRow{
			Strategy:      string(strategy),
			Batches:       batches,
			Moves:         moves,
			Rows:          st.Rows - warm.Rows,
			RowsExtracted: st.RowsExtracted - warm.RowsExtracted,
			CloaksChanged: st.CloaksChanged - warm.CloaksChanged,
			UpdatesPerSec: float64(moves) / elapsed.Seconds(),
			NsPerBatch:    float64(elapsed.Nanoseconds()) / float64(batches),
		}, nil
	}

	inc, err := measure(motion.StrategyIncremental)
	if err != nil {
		return nil, err
	}
	reb, err := measure(motion.StrategyRebuild)
	if err != nil {
		return nil, err
	}
	bench := &ChurnBench{
		Bench:              "churn",
		Users:              users,
		K:                  k,
		Engine:             engine.DefaultName,
		Batch:              ChurnBatchSize,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		CPUModel:           cpuModel(),
		GoVersion:          runtime.Version(),
		Incremental:        inc,
		Rebuild:            reb,
		IncrementalSpeedup: inc.UpdatesPerSec / reb.UpdatesPerSec,
	}
	return bench, nil
}

// LoadChurnBench decodes and validates a BENCH_churn.json document,
// enforcing the incremental-wins gate; CI uses it to fail on malformed
// or regressed benchmark output.
func LoadChurnBench(r io.Reader) (*ChurnBench, error) {
	var b ChurnBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: decode BENCH_churn.json: %w", err)
	}
	if b.Bench != "churn" {
		return nil, fmt.Errorf("experiments: BENCH_churn.json bench = %q, want \"churn\"", b.Bench)
	}
	if b.Users < 1 || b.K < 1 || b.Batch < 1 {
		return nil, fmt.Errorf("experiments: BENCH_churn.json metadata invalid: users=%d k=%d batch=%d", b.Users, b.K, b.Batch)
	}
	if b.GOMAXPROCS < 1 || b.GoVersion == "" {
		return nil, fmt.Errorf("experiments: BENCH_churn.json machine metadata missing")
	}
	for _, row := range []ChurnBenchRow{b.Incremental, b.Rebuild} {
		if row.Batches < 1 || row.Moves < 1 || row.UpdatesPerSec <= 0 || row.NsPerBatch <= 0 {
			return nil, fmt.Errorf("experiments: BENCH_churn.json row invalid: %+v", row)
		}
	}
	if b.Incremental.Strategy != string(motion.StrategyIncremental) ||
		b.Rebuild.Strategy != string(motion.StrategyRebuild) {
		return nil, fmt.Errorf("experiments: BENCH_churn.json rows mislabelled: %q/%q",
			b.Incremental.Strategy, b.Rebuild.Strategy)
	}
	if b.IncrementalSpeedup < ChurnSpeedupGate {
		return nil, fmt.Errorf("experiments: incremental maintenance speedup %.2fx below the %.0fx delta-publication gate",
			b.IncrementalSpeedup, ChurnSpeedupGate)
	}
	return &b, nil
}

// ChurnBenchTable renders the measurement for the lbsbench table formats.
func ChurnBenchTable(b *ChurnBench) Table {
	tbl := Table{
		Name:   "churn",
		Header: []string{"strategy", "batches", "moves", "rows_recomputed", "rows_extracted", "cloaks_changed", "updates_per_sec", "ns_per_batch"},
	}
	for _, r := range []ChurnBenchRow{b.Incremental, b.Rebuild} {
		tbl.Rows = append(tbl.Rows, []string{
			r.Strategy,
			fmt.Sprintf("%d", r.Batches),
			fmt.Sprintf("%d", r.Moves),
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d", r.RowsExtracted),
			fmt.Sprintf("%d", r.CloaksChanged),
			fmt.Sprintf("%.0f", r.UpdatesPerSec),
			fmt.Sprintf("%.0f", r.NsPerBatch),
		})
	}
	return tbl
}

// PrintChurnBench writes the human table plus the speedup summary line.
func PrintChurnBench(w io.Writer, b *ChurnBench) {
	fmt.Fprintf(w, "%-12s %9s %10s %12s %12s %12s %15s %15s\n",
		"strategy", "batches", "moves", "rows", "extracted", "cloaks", "updates/sec", "ns/batch")
	for _, r := range []ChurnBenchRow{b.Incremental, b.Rebuild} {
		fmt.Fprintf(w, "%-12s %9d %10d %12d %12d %12d %15.0f %15.0f\n",
			r.Strategy, r.Batches, r.Moves, r.Rows, r.RowsExtracted, r.CloaksChanged, r.UpdatesPerSec, r.NsPerBatch)
	}
	fmt.Fprintln(w, ChurnSpeedupSummary(b))
}

// ChurnSpeedupSummary renders the one-line gate summary, e.g.
// "incremental maintenance: 14.2x rebuild throughput (61k vs 4k updates/sec)".
func ChurnSpeedupSummary(b *ChurnBench) string {
	return fmt.Sprintf("incremental maintenance: %.2fx rebuild throughput (%.0f vs %.0f updates/sec, batch %d, %d users)",
		b.IncrementalSpeedup, b.Incremental.UpdatesPerSec, b.Rebuild.UpdatesPerSec, b.Batch, b.Users)
}
