package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"policyanon/internal/core"
	"policyanon/internal/tree"
)

// This file implements the tracked Bulk_dp benchmark baseline: a worker
// sweep over the bottom-up dynamic program whose results are written as
// BENCH_bulkdp.json, the perf trajectory every future change is compared
// against. The sweep measures the DP main loop in isolation (tree build
// and extraction excluded) via Matrix.Recompute, so nodes/sec and ns/op
// track exactly the code the intra-tree worker pool parallelizes.

// BulkDPSweepRow is one worker count's measurement.
type BulkDPSweepRow struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"nsPerOp"`     // one full bottom-up pass
	NodesPerSec float64 `json:"nodesPerSec"` // tree nodes combined per second
	AllocsPerOp float64 `json:"allocsPerOp"` // steady-state allocations per pass
	Speedup     float64 `json:"speedup"`     // vs the workers=1 row
}

// BulkDPBench is the BENCH_bulkdp.json document.
type BulkDPBench struct {
	Dataset  string `json:"dataset"` // lbsbench scale name
	Users    int    `json:"users"`
	K        int    `json:"k"`
	TreeKind string `json:"treeKind"`
	Nodes    int    `json:"nodes"`
	// Machine metadata, for cross-machine comparability of the tracked
	// baseline: speedups from a 1-core container and a 32-core box are
	// not comparable without it.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	CPUModel   string `json:"cpuModel"`
	GoVersion  string `json:"goVersion"`
	// ComputeRowAllocs is the steady-state allocation count of a single
	// interior-node combine (the zero-alloc regression gate).
	ComputeRowAllocs float64          `json:"computeRowAllocsPerOp"`
	Sweep            []BulkDPSweepRow `json:"sweep"`
}

// cpuModel reads the CPU model name from /proc/cpuinfo, falling back to
// GOARCH on platforms without it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}

// WorkersSweep benchmarks Matrix.Recompute over the dataset at every
// worker count and returns the tracked-baseline document. minTime is the
// measurement budget per worker count (e.g. time.Second; CI smoke runs
// use less).
func WorkersSweep(d Dataset, users, k int, workerCounts []int, minTime time.Duration) (*BulkDPBench, error) {
	db, err := d.Sample(users)
	if err != nil {
		return nil, err
	}
	t, err := tree.BuildContext(d.ctx(), db.Points(), d.Bounds, tree.Options{
		Kind: tree.Binary, MinCountToSplit: k,
	})
	if err != nil {
		return nil, err
	}
	bench := &BulkDPBench{
		Users:      db.Len(),
		K:          k,
		TreeKind:   "binary",
		Nodes:      t.NumNodes(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GoVersion:  runtime.Version(),
	}
	var baseline float64
	for _, nw := range workerCounts {
		if nw < 1 {
			return nil, fmt.Errorf("experiments: worker count %d < 1", nw)
		}
		m, err := core.NewMatrix(t, k, core.Options{Workers: nw})
		if err != nil {
			return nil, err
		}
		nsPerOp := measure(m.Recompute, minTime)
		// Allocations of a warm full pass. The parallel path allocates a
		// bounded amount of pool bookkeeping per pass; the sequential path
		// is allocation-free modulo the PostOrder closure.
		allocs := allocsPerRun(3, m.Recompute)
		row := BulkDPSweepRow{
			Workers:     nw,
			NsPerOp:     nsPerOp,
			NodesPerSec: float64(t.NumNodes()) / (nsPerOp / 1e9),
			AllocsPerOp: allocs,
		}
		if nw == 1 {
			baseline = nsPerOp
		}
		if baseline > 0 {
			row.Speedup = baseline / nsPerOp
		}
		bench.Sweep = append(bench.Sweep, row)
	}
	// The zero-alloc gate: recomputing one warm interior row.
	if m, err := core.NewMatrix(t, k, core.Options{Workers: 1}); err == nil {
		bench.ComputeRowAllocs = m.RowAllocsPerRun()
	}
	return bench, nil
}

// allocsPerRun mirrors testing.AllocsPerRun without linking the testing
// package into lbsbench: warm once, then average mallocs over runs.
func allocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// measure times fn until minTime has elapsed and returns ns per call.
func measure(fn func(), minTime time.Duration) float64 {
	fn() // warm caches, pools, and row storage
	var total time.Duration
	var calls int
	for total < minTime {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return float64(total.Nanoseconds()) / float64(calls)
}

// Bulkdp performance gates enforced by LoadBulkDPBench. The allocation
// gates hold on any machine (they measure the code, not the hardware);
// the speedup gate is machine-aware — see SpeedupGateNote.
const (
	// bulkDPAllocBudget bounds steady-state allocs per warm pass at every
	// worker count (and per warm computeRow). The per-worker scratch
	// arenas make the true value 0; <1 tolerates measurement jitter.
	bulkDPAllocBudget = 1.0
	// bulkDPSpeedupFloor is the required speedup at 4 workers on a box
	// with ≥4 CPUs.
	bulkDPSpeedupFloor = 2.0
	// bulkDPSpeedupFloorSmall is the relaxed floor for 2–3 CPU boxes
	// (GitHub-hosted runners are often 2-core): parallelism must at
	// least pay for itself with visible headroom.
	bulkDPSpeedupFloorSmall = 1.3
)

// SpeedupGateNote explains a skipped or relaxed speedup gate, or returns
// "" when the full ≥2× @ 4 workers gate applied. lbsbench -check-bench
// surfaces it so a "valid" verdict from a single-core container is never
// mistaken for a multi-core speedup proof.
func (b *BulkDPBench) SpeedupGateNote() string {
	switch {
	case b.NumCPU <= 1 || b.GOMAXPROCS <= 1:
		return fmt.Sprintf(" (note: speedup gate skipped: recorded on a single-core box, numCPU=%d GOMAXPROCS=%d — speedups are not measurable there)",
			b.NumCPU, b.GOMAXPROCS)
	case b.NumCPU < 4:
		return fmt.Sprintf(" (note: speedup gate relaxed to ≥%.1fx: recorded numCPU=%d < 4)",
			bulkDPSpeedupFloorSmall, b.NumCPU)
	}
	return ""
}

// LoadBulkDPBench decodes and validates a BENCH_bulkdp.json document; CI
// uses it to fail on malformed or regressed benchmark output. Beyond
// structure, it enforces the performance gates: steady-state allocations
// below bulkDPAllocBudget at every worker count (and for a single warm
// computeRow), and — machine-aware — the multi-worker speedup: ≥2× at 4
// workers when the document was recorded with ≥4 CPUs, a relaxed floor
// on 2–3 CPU boxes, skipped entirely (see SpeedupGateNote) when the
// recording box had one CPU or GOMAXPROCS=1.
func LoadBulkDPBench(r io.Reader) (*BulkDPBench, error) {
	var b BulkDPBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: decode BENCH_bulkdp.json: %w", err)
	}
	if len(b.Sweep) == 0 {
		return nil, fmt.Errorf("experiments: BENCH_bulkdp.json has an empty sweep")
	}
	if b.Users < 1 || b.Nodes < 1 || b.K < 1 {
		return nil, fmt.Errorf("experiments: BENCH_bulkdp.json metadata invalid: users=%d nodes=%d k=%d", b.Users, b.Nodes, b.K)
	}
	if b.GOMAXPROCS < 1 || b.GoVersion == "" {
		return nil, fmt.Errorf("experiments: BENCH_bulkdp.json machine metadata missing")
	}
	if b.ComputeRowAllocs >= bulkDPAllocBudget {
		return nil, fmt.Errorf("experiments: BENCH_bulkdp.json computeRowAllocsPerOp %.1f exceeds the zero-alloc gate (<%.0f)",
			b.ComputeRowAllocs, bulkDPAllocBudget)
	}
	hasBaseline := false
	var speedup4 float64
	bestMulti := 0.0
	for _, row := range b.Sweep {
		if row.Workers < 1 || row.NsPerOp <= 0 || row.NodesPerSec <= 0 {
			return nil, fmt.Errorf("experiments: BENCH_bulkdp.json sweep row invalid: %+v", row)
		}
		if row.AllocsPerOp >= bulkDPAllocBudget {
			return nil, fmt.Errorf("experiments: BENCH_bulkdp.json workers=%d allocsPerOp %.1f exceeds the zero-alloc gate (<%.0f)",
				row.Workers, row.AllocsPerOp, bulkDPAllocBudget)
		}
		if row.Workers == 1 {
			hasBaseline = true
		} else if row.Speedup > bestMulti {
			bestMulti = row.Speedup
		}
		if row.Workers == 4 {
			speedup4 = row.Speedup
		}
	}
	if !hasBaseline {
		return nil, fmt.Errorf("experiments: BENCH_bulkdp.json sweep lacks the workers=1 baseline row")
	}
	switch {
	case b.NumCPU <= 1 || b.GOMAXPROCS <= 1:
		// Single-core recording box: no parallel speedup is measurable;
		// the gate is skipped and SpeedupGateNote says so.
	case b.NumCPU < 4:
		if bestMulti < bulkDPSpeedupFloorSmall {
			return nil, fmt.Errorf("experiments: BENCH_bulkdp.json best multi-worker speedup %.2fx below the relaxed %.1fx gate (numCPU=%d)",
				bestMulti, bulkDPSpeedupFloorSmall, b.NumCPU)
		}
	default:
		if speedup4 == 0 {
			return nil, fmt.Errorf("experiments: BENCH_bulkdp.json sweep lacks the workers=4 row the speedup gate checks (numCPU=%d)", b.NumCPU)
		}
		if speedup4 < bulkDPSpeedupFloor {
			return nil, fmt.Errorf("experiments: BENCH_bulkdp.json speedup %.2fx at 4 workers below the %.1fx gate (numCPU=%d)",
				speedup4, bulkDPSpeedupFloor, b.NumCPU)
		}
	}
	return &b, nil
}

// BulkDPBenchTable renders the sweep for the lbsbench table formats.
func BulkDPBenchTable(b *BulkDPBench) Table {
	tbl := Table{
		Name:   "bulkdp_workers",
		Header: []string{"workers", "ns_per_op", "nodes_per_sec", "allocs_per_op", "speedup"},
	}
	for _, r := range b.Sweep {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.NodesPerSec),
			fmt.Sprintf("%.1f", r.AllocsPerOp),
			fmt.Sprintf("%.2f", r.Speedup),
		})
	}
	return tbl
}

// PrintBulkDPBench writes the human table plus the one-line speedup
// summary (workers -> wall time per pass).
func PrintBulkDPBench(w io.Writer, b *BulkDPBench) {
	fmt.Fprintf(w, "%-8s %14s %14s %14s %8s\n", "workers", "ns/op", "nodes/sec", "allocs/op", "speedup")
	for _, r := range b.Sweep {
		fmt.Fprintf(w, "%-8d %14.0f %14.0f %14.1f %7.2fx\n",
			r.Workers, r.NsPerOp, r.NodesPerSec, r.AllocsPerOp, r.Speedup)
	}
	fmt.Fprintf(w, "computeRow steady-state allocs/op: %.1f\n", b.ComputeRowAllocs)
	fmt.Fprintln(w, SpeedupSummary(b))
}

// SpeedupSummary renders the one-line sweep summary, e.g.
// "bulkdp workers sweep: 1→12.3ms 2→6.4ms 4→3.4ms 8→2.1ms (best 5.86x @ 8 workers, GOMAXPROCS=8)".
func SpeedupSummary(b *BulkDPBench) string {
	var sb strings.Builder
	sb.WriteString("bulkdp workers sweep:")
	best := 0
	for i, r := range b.Sweep {
		fmt.Fprintf(&sb, " %d→%s", r.Workers, time.Duration(r.NsPerOp).Round(10*time.Microsecond))
		if r.Speedup > b.Sweep[best].Speedup {
			best = i
		}
	}
	fmt.Fprintf(&sb, " (best %.2fx @ %d workers, GOMAXPROCS=%d)",
		b.Sweep[best].Speedup, b.Sweep[best].Workers, b.GOMAXPROCS)
	return sb.String()
}
