package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func TestAuditSweepProducesValidDoc(t *testing.T) {
	d := NewDataset(workload.Config{
		MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 5)
	bench, err := AuditSweep(d, 500, 10, 0.5, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Bench != "audit" {
		t.Errorf("bench discriminator = %q", bench.Bench)
	}
	if bench.Off.Requests < 1 || bench.Sampled.Requests < 1 {
		t.Fatalf("no requests measured: %+v", bench)
	}
	if bench.Off.Audited != 0 {
		t.Errorf("off mode audited %d requests", bench.Off.Audited)
	}
	if bench.Sampled.Audited < 1 {
		t.Errorf("sampled mode at rate 0.5 audited nothing over %d requests", bench.Sampled.Requests)
	}
	if bench.MinKAware < 1 || bench.MinKUnaware < bench.MinKAware {
		t.Errorf("achieved-k summary inconsistent: aware=%d unaware=%d", bench.MinKAware, bench.MinKUnaware)
	}
	if bench.GOMAXPROCS < 1 || bench.GoVersion == "" || bench.CPUModel == "" {
		t.Errorf("machine metadata incomplete: %+v", bench)
	}
	if bench.Ledgered == nil || bench.LedgerOverheadPct == nil {
		t.Fatalf("ledgered measurement missing: %+v", bench)
	}
	if bench.Ledgered.Requests < 1 || bench.Ledgered.Audited < 1 {
		t.Errorf("ledgered row empty: %+v", *bench.Ledgered)
	}
	tbl := AuditBenchTable(bench)
	if len(tbl.Rows) != 3 || len(tbl.Rows[0]) != len(tbl.Header) {
		t.Errorf("table shape wrong: %+v", tbl)
	}
	var buf bytes.Buffer
	PrintAuditBench(&buf, bench)
	if !strings.Contains(buf.String(), "audit overhead:") {
		t.Errorf("print output missing summary: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "ledger overhead:") {
		t.Errorf("print output missing ledger overhead: %q", buf.String())
	}
}

func TestAuditOverheadSummaryClampsNoise(t *testing.T) {
	// A faster-than-baseline audited run is measurement noise: the
	// summary reports 0 but keeps the raw value visible.
	neg := -0.47
	b := &AuditBench{
		OverheadPct:       -0.47,
		LedgerOverheadPct: &neg,
		Sampled:           AuditBenchRow{Rate: 1.0 / 64},
		MinKAware:         10, MinKUnaware: 12,
	}
	s := AuditOverheadSummary(b)
	if !strings.Contains(s, "audit overhead: 0.00%") {
		t.Errorf("negative overhead not clamped: %q", s)
	}
	if !strings.Contains(s, "measured -0.47%") {
		t.Errorf("raw noise value dropped: %q", s)
	}
	if !strings.Contains(s, "ledger overhead: 0.00%") {
		t.Errorf("ledger overhead not clamped: %q", s)
	}
	b.OverheadPct = 1.25
	b.LedgerOverheadPct = nil
	s = AuditOverheadSummary(b)
	if !strings.Contains(s, "audit overhead: 1.25%") || strings.Contains(s, "noise") {
		t.Errorf("positive overhead mangled: %q", s)
	}
	if strings.Contains(s, "ledger overhead") {
		t.Errorf("absent ledger row still summarized: %q", s)
	}
}

func TestLoadAuditBenchGatesOverhead(t *testing.T) {
	valid := `{"bench":"audit","dataset":"small","users":500,"k":10,"engine":"bulkdp-binary",
		"gomaxprocs":4,"numCPU":4,"cpuModel":"x","goVersion":"go1.24",
		"off":{"mode":"off","rate":0,"requests":1000,"reqPerSec":5000,"nsPerReq":200000,"audited":0},
		"sampled":{"mode":"sampled","rate":0.015625,"requests":990,"reqPerSec":4950,"nsPerReq":202000,"audited":15},
		"overheadPct":1.0,"minKAware":10,"minKUnaware":12,"breaches":0}`
	if _, err := LoadAuditBench(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	over := strings.Replace(valid, `"overheadPct":1.0`, `"overheadPct":7.5`, 1)
	if _, err := LoadAuditBench(strings.NewReader(over)); err == nil {
		t.Error("overheadPct 7.5 accepted against the 5% budget")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Errorf("overhead failure has wrong message: %v", err)
	}
	// A pre-ledger document (no ledgered fields) stays loadable — checked
	// above — and a ledgered document gates on its own overhead.
	ledgered := strings.Replace(valid, `"overheadPct":1.0`,
		`"overheadPct":1.0,"ledgered":{"mode":"ledgered","rate":0.015625,"requests":980,"reqPerSec":4900,"nsPerReq":204000,"audited":15},"ledgerOverheadPct":2.0`, 1)
	if _, err := LoadAuditBench(strings.NewReader(ledgered)); err != nil {
		t.Fatalf("ledgered doc rejected: %v", err)
	}
	ledgerOver := strings.Replace(ledgered, `"ledgerOverheadPct":2.0`, `"ledgerOverheadPct":6.5`, 1)
	if _, err := LoadAuditBench(strings.NewReader(ledgerOver)); err == nil {
		t.Error("ledgerOverheadPct 6.5 accepted against the 5% budget")
	}
	for name, doc := range map[string]string{
		"not-json":      `{`,
		"ledgered-row-no-pct": strings.Replace(valid, `"overheadPct":1.0`,
			`"overheadPct":1.0,"ledgered":{"mode":"ledgered","rate":0.015625,"requests":980,"reqPerSec":4900,"nsPerReq":204000,"audited":15}`, 1),
		"ledgered-empty-row": strings.Replace(ledgered, `"requests":980`, `"requests":0`, 1),
		"wrong-kind":    strings.Replace(valid, `"bench":"audit"`, `"bench":"bulkdp"`, 1),
		"unknown-field": strings.Replace(valid, `"users":500`, `"users":500,"bogus":1`, 1),
		"zero-users":    strings.Replace(valid, `"users":500`, `"users":0`, 1),
		"no-machine":    strings.Replace(valid, `"gomaxprocs":4`, `"gomaxprocs":0`, 1),
		"empty-row":     strings.Replace(valid, `"requests":1000`, `"requests":0`, 1),
		"no-rate":       strings.Replace(valid, `"rate":0.015625`, `"rate":0`, 1),
	} {
		if _, err := LoadAuditBench(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
