package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func TestAuditSweepProducesValidDoc(t *testing.T) {
	d := NewDataset(workload.Config{
		MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 5)
	bench, err := AuditSweep(d, 500, 10, 0.5, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Bench != "audit" {
		t.Errorf("bench discriminator = %q", bench.Bench)
	}
	if bench.Off.Requests < 1 || bench.Sampled.Requests < 1 {
		t.Fatalf("no requests measured: %+v", bench)
	}
	if bench.Off.Audited != 0 {
		t.Errorf("off mode audited %d requests", bench.Off.Audited)
	}
	if bench.Sampled.Audited < 1 {
		t.Errorf("sampled mode at rate 0.5 audited nothing over %d requests", bench.Sampled.Requests)
	}
	if bench.MinKAware < 1 || bench.MinKUnaware < bench.MinKAware {
		t.Errorf("achieved-k summary inconsistent: aware=%d unaware=%d", bench.MinKAware, bench.MinKUnaware)
	}
	if bench.GOMAXPROCS < 1 || bench.GoVersion == "" || bench.CPUModel == "" {
		t.Errorf("machine metadata incomplete: %+v", bench)
	}
	tbl := AuditBenchTable(bench)
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != len(tbl.Header) {
		t.Errorf("table shape wrong: %+v", tbl)
	}
	var buf bytes.Buffer
	PrintAuditBench(&buf, bench)
	if !strings.Contains(buf.String(), "audit overhead:") {
		t.Errorf("print output missing summary: %q", buf.String())
	}
}

func TestLoadAuditBenchGatesOverhead(t *testing.T) {
	valid := `{"bench":"audit","dataset":"small","users":500,"k":10,"engine":"bulkdp-binary",
		"gomaxprocs":4,"numCPU":4,"cpuModel":"x","goVersion":"go1.24",
		"off":{"mode":"off","rate":0,"requests":1000,"reqPerSec":5000,"nsPerReq":200000,"audited":0},
		"sampled":{"mode":"sampled","rate":0.015625,"requests":990,"reqPerSec":4950,"nsPerReq":202000,"audited":15},
		"overheadPct":1.0,"minKAware":10,"minKUnaware":12,"breaches":0}`
	if _, err := LoadAuditBench(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	over := strings.Replace(valid, `"overheadPct":1.0`, `"overheadPct":7.5`, 1)
	if _, err := LoadAuditBench(strings.NewReader(over)); err == nil {
		t.Error("overheadPct 7.5 accepted against the 5% budget")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Errorf("overhead failure has wrong message: %v", err)
	}
	for name, doc := range map[string]string{
		"not-json":      `{`,
		"wrong-kind":    strings.Replace(valid, `"bench":"audit"`, `"bench":"bulkdp"`, 1),
		"unknown-field": strings.Replace(valid, `"users":500`, `"users":500,"bogus":1`, 1),
		"zero-users":    strings.Replace(valid, `"users":500`, `"users":0`, 1),
		"no-machine":    strings.Replace(valid, `"gomaxprocs":4`, `"gomaxprocs":0`, 1),
		"empty-row":     strings.Replace(valid, `"requests":1000`, `"requests":0`, 1),
		"no-rate":       strings.Replace(valid, `"rate":0.015625`, `"rate":0`, 1),
	} {
		if _, err := LoadAuditBench(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
