package experiments

import (
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func TestWorkersSweepProducesValidDoc(t *testing.T) {
	d := NewDataset(workload.Config{
		MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 5)
	bench, err := WorkersSweep(d, 2000, 20, []int{1, 2}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Sweep) != 2 {
		t.Fatalf("sweep has %d rows, want 2", len(bench.Sweep))
	}
	if bench.Sweep[0].Speedup != 1 {
		t.Errorf("workers=1 speedup = %v, want 1", bench.Sweep[0].Speedup)
	}
	if bench.GOMAXPROCS < 1 || bench.GoVersion == "" || bench.CPUModel == "" {
		t.Errorf("machine metadata incomplete: %+v", bench)
	}
	if bench.ComputeRowAllocs != 0 {
		t.Errorf("steady-state computeRow allocates %.1f/op, want 0", bench.ComputeRowAllocs)
	}
	if s := SpeedupSummary(bench); !strings.Contains(s, "GOMAXPROCS=") {
		t.Errorf("summary lacks machine context: %q", s)
	}
}

func TestLoadBulkDPBenchRejectsMalformed(t *testing.T) {
	valid := `{"dataset":"small","users":100,"k":5,"treeKind":"binary","nodes":50,
		"gomaxprocs":1,"numCPU":1,"cpuModel":"x","goVersion":"go1.23",
		"computeRowAllocsPerOp":0,
		"sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5,"allocsPerOp":0,"speedup":1}]}`
	if _, err := LoadBulkDPBench(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	for name, doc := range map[string]string{
		"not-json":         `{`,
		"empty-sweep":      `{"users":100,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[]}`,
		"no-baseline":      `{"users":100,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":2,"nsPerOp":10,"nodesPerSec":5}]}`,
		"zero-ns":          `{"users":100,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":1,"nsPerOp":0,"nodesPerSec":5}]}`,
		"missing-machine":  `{"users":100,"k":5,"nodes":50,"sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5}]}`,
		"unknown-field":    `{"users":100,"bogus":1,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5}]}`,
		"invalid-metadata": `{"users":0,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5}]}`,
	} {
		if _, err := LoadBulkDPBench(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
