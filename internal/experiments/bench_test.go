package experiments

import (
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func TestWorkersSweepProducesValidDoc(t *testing.T) {
	d := NewDataset(workload.Config{
		MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 5)
	bench, err := WorkersSweep(d, 2000, 20, []int{1, 2}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Sweep) != 2 {
		t.Fatalf("sweep has %d rows, want 2", len(bench.Sweep))
	}
	if bench.Sweep[0].Speedup != 1 {
		t.Errorf("workers=1 speedup = %v, want 1", bench.Sweep[0].Speedup)
	}
	if bench.GOMAXPROCS < 1 || bench.GoVersion == "" || bench.CPUModel == "" {
		t.Errorf("machine metadata incomplete: %+v", bench)
	}
	if bench.ComputeRowAllocs != 0 {
		t.Errorf("steady-state computeRow allocates %.1f/op, want 0", bench.ComputeRowAllocs)
	}
	if s := SpeedupSummary(bench); !strings.Contains(s, "GOMAXPROCS=") {
		t.Errorf("summary lacks machine context: %q", s)
	}
}

func TestLoadBulkDPBenchRejectsMalformed(t *testing.T) {
	valid := `{"dataset":"small","users":100,"k":5,"treeKind":"binary","nodes":50,
		"gomaxprocs":1,"numCPU":1,"cpuModel":"x","goVersion":"go1.23",
		"computeRowAllocsPerOp":0,
		"sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5,"allocsPerOp":0,"speedup":1}]}`
	if _, err := LoadBulkDPBench(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	for name, doc := range map[string]string{
		"not-json":         `{`,
		"empty-sweep":      `{"users":100,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[]}`,
		"no-baseline":      `{"users":100,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":2,"nsPerOp":10,"nodesPerSec":5}]}`,
		"zero-ns":          `{"users":100,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":1,"nsPerOp":0,"nodesPerSec":5}]}`,
		"missing-machine":  `{"users":100,"k":5,"nodes":50,"sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5}]}`,
		"unknown-field":    `{"users":100,"bogus":1,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5}]}`,
		"invalid-metadata": `{"users":0,"k":5,"nodes":50,"gomaxprocs":1,"goVersion":"go1.23","sweep":[{"workers":1,"nsPerOp":10,"nodesPerSec":5}]}`,
	} {
		if _, err := LoadBulkDPBench(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadBulkDPBenchGates exercises the machine-aware performance gates:
// the allocation budget holds everywhere, the ≥2× @ 4 workers speedup
// gate applies only to documents recorded on ≥4-CPU boxes, 2–3 CPU boxes
// get the relaxed floor, and single-core boxes skip with a note.
func TestLoadBulkDPBenchGates(t *testing.T) {
	doc := func(gmp, ncpu int, sweep string) string {
		return `{"dataset":"small","users":100,"k":5,"treeKind":"binary","nodes":50,
			"gomaxprocs":` + itoa(gmp) + `,"numCPU":` + itoa(ncpu) + `,"cpuModel":"x","goVersion":"go1.23",
			"computeRowAllocsPerOp":0,"sweep":[` + sweep + `]}`
	}
	base := `{"workers":1,"nsPerOp":100,"nodesPerSec":5,"allocsPerOp":0,"speedup":1}`
	fast4 := base + `,{"workers":4,"nsPerOp":40,"nodesPerSec":12,"allocsPerOp":0,"speedup":2.5}`
	slow4 := base + `,{"workers":4,"nsPerOp":90,"nodesPerSec":6,"allocsPerOp":0,"speedup":1.1}`
	alloc4 := base + `,{"workers":4,"nsPerOp":40,"nodesPerSec":12,"allocsPerOp":46,"speedup":2.5}`

	if _, err := LoadBulkDPBench(strings.NewReader(doc(8, 8, fast4))); err != nil {
		t.Errorf("multi-core 2.5x rejected: %v", err)
	}
	if _, err := LoadBulkDPBench(strings.NewReader(doc(8, 8, slow4))); err == nil {
		t.Error("multi-core 1.1x @ 4 workers accepted, want speedup-gate failure")
	}
	if _, err := LoadBulkDPBench(strings.NewReader(doc(8, 8, alloc4))); err == nil {
		t.Error("46 allocs/op accepted, want zero-alloc-gate failure")
	}
	if _, err := LoadBulkDPBench(strings.NewReader(doc(8, 8, base))); err == nil {
		t.Error("multi-core doc without a workers=4 row accepted")
	}
	// Relaxed floor on a 2-core box: 1.4x passes, 1.1x fails.
	relaxedOK := base + `,{"workers":2,"nsPerOp":71,"nodesPerSec":7,"allocsPerOp":0,"speedup":1.4}`
	if _, err := LoadBulkDPBench(strings.NewReader(doc(2, 2, relaxedOK))); err != nil {
		t.Errorf("2-core 1.4x rejected: %v", err)
	}
	if _, err := LoadBulkDPBench(strings.NewReader(doc(2, 2, slow4))); err == nil {
		t.Error("2-core 1.1x accepted, want relaxed-gate failure")
	}
	// Single-core recording box: no speedup is measurable — the gate
	// skips regardless of the recorded ratios, and the note says so.
	b, err := LoadBulkDPBench(strings.NewReader(doc(1, 1, slow4)))
	if err != nil {
		t.Fatalf("single-core doc rejected: %v", err)
	}
	if note := b.SpeedupGateNote(); !strings.Contains(note, "skipped") || !strings.Contains(note, "numCPU=1") {
		t.Errorf("single-core note = %q, want skip explanation", note)
	}
	if b, err := LoadBulkDPBench(strings.NewReader(doc(8, 8, fast4))); err != nil || b.SpeedupGateNote() != "" {
		t.Errorf("multi-core note = %q (err %v), want empty", b.SpeedupGateNote(), err)
	}
	// The alloc gates hold even where the speedup gate skips.
	if _, err := LoadBulkDPBench(strings.NewReader(doc(1, 1, alloc4))); err == nil {
		t.Error("single-core 46 allocs/op accepted, want zero-alloc-gate failure")
	}
	rowAllocs := `{"dataset":"small","users":100,"k":5,"treeKind":"binary","nodes":50,
		"gomaxprocs":1,"numCPU":1,"cpuModel":"x","goVersion":"go1.23",
		"computeRowAllocsPerOp":3,"sweep":[` + base + `]}`
	if _, err := LoadBulkDPBench(strings.NewReader(rowAllocs)); err == nil {
		t.Error("computeRowAllocsPerOp=3 accepted, want zero-alloc-gate failure")
	}
}
