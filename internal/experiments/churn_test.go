package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func churnDataset() Dataset {
	cfg := workload.Config{MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60}
	return NewDataset(cfg, 7)
}

func TestChurnSweepShape(t *testing.T) {
	d := churnDataset()
	b, err := ChurnSweep(d, 1500, 10, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bench != "churn" || b.Users != 1500 || b.K != 10 || b.Batch != ChurnBatchSize {
		t.Fatalf("metadata: %+v", b)
	}
	for _, row := range []ChurnBenchRow{b.Incremental, b.Rebuild} {
		if row.Batches < 1 || row.Moves < row.Batches || row.UpdatesPerSec <= 0 {
			t.Fatalf("row %+v", row)
		}
	}
	// The rebuild row recomputes the full snapshot every batch; the
	// incremental row must touch far fewer rows per batch.
	if b.Rebuild.Rows != b.Rebuild.Batches*int64(b.Users) {
		t.Fatalf("rebuild rows = %d over %d batches of %d users", b.Rebuild.Rows, b.Rebuild.Batches, b.Users)
	}
	if b.Incremental.Rows >= b.Rebuild.Rows {
		t.Fatalf("incremental recomputed %d rows, rebuild %d — no maintenance advantage measured",
			b.Incremental.Rows, b.Rebuild.Rows)
	}
	// The incremental row must have gone through the delta publish path:
	// far fewer cloaks rewritten than a full republish per batch.
	if b.Incremental.CloaksChanged >= b.Incremental.Batches*int64(b.Users) {
		t.Fatalf("incremental published %d cloak rewrites over %d batches — delta path not engaged",
			b.Incremental.CloaksChanged, b.Incremental.Batches)
	}
	// Round-trip through the document loader (without the speedup gate:
	// a 20ms measurement is noise, so synthesize a passing ratio).
	b.IncrementalSpeedup = ChurnSpeedupGate + 1
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(b); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChurnBench(&buf); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestLoadChurnBenchGates(t *testing.T) {
	valid := ChurnBench{
		Bench: "churn", Dataset: "small", Users: 1000, K: 10, Engine: "bulkdp-binary", Batch: 64,
		GOMAXPROCS: 4, NumCPU: 4, GoVersion: "go1.23",
		Incremental: ChurnBenchRow{
			Strategy: "incremental", Batches: 10, Moves: 640, Rows: 900,
			RowsExtracted: 1200, CloaksChanged: 800, UpdatesPerSec: 15000, NsPerBatch: 1e6,
		},
		Rebuild: ChurnBenchRow{
			Strategy: "rebuild", Batches: 5, Moves: 320, Rows: 5000,
			RowsExtracted: 5000, CloaksChanged: 5000, UpdatesPerSec: 2000, NsPerBatch: 3e6,
		},
		IncrementalSpeedup: 7.5,
	}
	mustFail := func(name string, mutate func(*ChurnBench), wantErr string) {
		t.Helper()
		b := valid
		mutate(&b)
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		_, err = LoadChurnBench(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: err = %v, want %q", name, err, wantErr)
		}
	}

	data, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChurnBench(bytes.NewReader(data)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	mustFail("wrong kind", func(b *ChurnBench) { b.Bench = "audit" }, `want "churn"`)
	mustFail("no users", func(b *ChurnBench) { b.Users = 0 }, "metadata invalid")
	mustFail("no machine", func(b *ChurnBench) { b.GoVersion = "" }, "machine metadata")
	mustFail("empty row", func(b *ChurnBench) { b.Rebuild.Batches = 0 }, "row invalid")
	mustFail("mislabelled", func(b *ChurnBench) { b.Incremental.Strategy = "rebuild" }, "mislabelled")
	mustFail("regressed", func(b *ChurnBench) { b.IncrementalSpeedup = 0.9 }, "delta-publication gate")
	mustFail("below gate", func(b *ChurnBench) { b.IncrementalSpeedup = 4.9 }, "delta-publication gate")
	if _, err := LoadChurnBench(strings.NewReader(`{"bench":"churn","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
