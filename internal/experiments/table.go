package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table is the machine-readable form of an experiment's results, used by
// cmd/lbsbench's -format csv and -format markdown outputs so runs can be
// archived and diffed.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// WriteCSV emits the table as CSV with a leading "# name" comment row.
func (t Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Name); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown emits the table as a GitHub-flavoured markdown table.
func (t Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func itoa(v int) string   { return strconv.Itoa(v) }
func i64(v int64) string  { return strconv.FormatInt(v, 10) }
func f0(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Microseconds())/1000, 'f', 1, 64)
}

// Fig2Table converts density rows.
func Fig2Table(rows []Fig2Row) Table {
	t := Table{Name: "fig2-density", Header: []string{"cells", "max_per_cell", "mean_per_cell", "skew"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{itoa(r.Cells), itoa(r.MaxUsers), f2(r.MeanUsers), f2(r.SkewRatio)})
	}
	return t
}

// Fig3Table converts tree-shape rows.
func Fig3Table(rows []Fig3Row) Table {
	t := Table{Name: "fig3-tree-shape", Header: []string{"users", "nodes", "leaves", "max_height", "max_leaf_count", "build_ms"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), itoa(r.Nodes), itoa(r.Leaves), itoa(r.MaxHeight),
			itoa(r.MaxLeafCount), ms(r.BuildTime),
		})
	}
	return t
}

// Fig4aTable converts bulk-time rows.
func Fig4aTable(rows []Fig4aRow) Table {
	t := Table{Name: "fig4a-bulk-time", Header: []string{"users", "servers", "wall_ms", "critical_path_ms", "cost"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), itoa(r.Servers), ms(r.Elapsed), ms(r.CriticalPath), i64(r.Cost),
		})
	}
	return t
}

// Fig4bTable converts vary-k rows.
func Fig4bTable(rows []Fig4bRow) Table {
	t := Table{Name: "fig4b-vary-k", Header: []string{"k", "time_ms", "cost"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{itoa(r.K), ms(r.Elapsed), i64(r.Cost)})
	}
	return t
}

// Fig5aTable converts cost-overhead rows. Column keys follow the engine
// registry names (bulkdp-binary is the paper's policy-aware optimum), so
// BENCH output keys stay stable as engines are added.
func Fig5aTable(rows []Fig5aRow) Table {
	t := Table{Name: "fig5a-cost-overhead", Header: []string{
		"users", "casper_avg_area", "pub_avg_area", "puq_avg_area",
		"bulkdp-binary_avg_area", "bulkdp-binary_over_casper", "bulkdp-binary_over_puq",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), f0(r.Casper), f0(r.PUB), f0(r.PUQ),
			f0(r.PolicyAware), f2(r.RatioToCasper), f2(r.RatioToPUQ),
		})
	}
	return t
}

// Fig5bTable converts incremental-maintenance rows.
func Fig5bTable(rows []Fig5bRow) Table {
	t := Table{Name: "fig5b-incremental", Header: []string{"move_percent", "incremental_ms", "bulk_ms", "rows_recomputed"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{f2(r.MovePercent), ms(r.Incremental), ms(r.Bulk), itoa(r.RowsRecomputed)})
	}
	return t
}

// ParallelTable converts utility-loss rows.
func ParallelTable(rows []ParallelRow) Table {
	t := Table{Name: "vi-d-parallel-utility", Header: []string{"jurisdictions", "cost", "divergence_percent"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{itoa(r.Jurisdictions), i64(r.Cost), f3(r.DivergencePct)})
	}
	return t
}

// UtilityTable converts answer-size rows; the policy column holds engine
// registry names.
func UtilityTable(rows []UtilityRow) Table {
	t := Table{Name: "utility-answer-size", Header: []string{"engine", "avg_cloak_area", "avg_answer_size"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Policy, f0(r.AvgCloakArea), f2(r.AvgAnswerSize)})
	}
	return t
}

// EnginesTable converts cross-engine sweep rows, keyed by registry name.
func EnginesTable(rows []EngineRow) Table {
	t := Table{Name: "engine-sweep", Header: []string{
		"engine", "policy_aware", "avg_area", "cost", "time_ms",
		"min_aware_anon", "min_unaware_anon", "verified",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%t", r.PolicyAware), f0(r.AvgArea), i64(r.Cost),
			ms(r.Elapsed), itoa(r.MinAware), itoa(r.MinUnaware), fmt.Sprintf("%t", r.OK),
		})
	}
	return t
}

// HilbertTable converts the policy-aware-safe comparison rows.
func HilbertTable(rows []HilbertRow) Table {
	t := Table{Name: "hilbert-comparison", Header: []string{
		"users", "optimal_avg_area", "hilbert_avg_area", "findmbc_avg_area",
		"optimal_min_anon", "hilbert_min_anon", "findmbc_aware_anon",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), f0(r.OptimalAvgArea), f0(r.HilbertAvgArea), f0(r.FindMBCAvgArea),
			itoa(r.OptimalMinAnon), itoa(r.HilbertMinAnon), itoa(r.FindMBCAwareAnon),
		})
	}
	return t
}

// TrajectoryTable converts erosion rows.
func TrajectoryTable(rows []TrajectoryRow) Table {
	t := Table{Name: "trajectory-erosion", Header: []string{"snapshot", "per_snapshot_anonymity", "composed_anonymity"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{itoa(r.Snapshot), itoa(r.PerSnapshot), itoa(r.Composed)})
	}
	return t
}
