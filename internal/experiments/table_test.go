package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func sampleTable() Table {
	return Table{
		Name:   "sample",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x"}, {"2", "y"}},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "# sample" {
		t.Fatalf("missing name comment: %q", lines[0])
	}
	rows, err := csv.NewReader(strings.NewReader(strings.Join(lines[1:], "\n"))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "a" || rows[2][1] != "y" {
		t.Fatalf("csv rows = %v", rows)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### sample", "| a | b |", "| --- | --- |", "| 2 | y |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestConvertersShapeMatchesHeaders(t *testing.T) {
	tables := []Table{
		Fig2Table([]Fig2Row{{Cells: 8, MaxUsers: 10, MeanUsers: 2, SkewRatio: 5}}),
		Fig3Table([]Fig3Row{{N: 1, Nodes: 2, Leaves: 1, MaxHeight: 3, MaxLeafCount: 4, BuildTime: time.Millisecond}}),
		Fig4aTable([]Fig4aRow{{N: 1, Servers: 2, Elapsed: time.Second, CriticalPath: time.Millisecond, Cost: 5}}),
		Fig4bTable([]Fig4bRow{{K: 5, Elapsed: time.Second, Cost: 7}}),
		Fig5aTable([]Fig5aRow{{N: 1, Casper: 1, PUB: 2, PUQ: 3, PolicyAware: 4, RatioToCasper: 4, RatioToPUQ: 1.3}}),
		Fig5bTable([]Fig5bRow{{MovePercent: 1, Incremental: time.Second, Bulk: time.Second, RowsRecomputed: 9}}),
		ParallelTable([]ParallelRow{{Jurisdictions: 4, Cost: 100, DivergencePct: 0.5}}),
		UtilityTable([]UtilityRow{{Policy: "x", AvgCloakArea: 1, AvgAnswerSize: 2}}),
		HilbertTable([]HilbertRow{{N: 1, OptimalAvgArea: 1, HilbertAvgArea: 2, FindMBCAvgArea: 3, OptimalMinAnon: 4, HilbertMinAnon: 5, FindMBCAwareAnon: 1}}),
		TrajectoryTable([]TrajectoryRow{{Snapshot: 0, PerSnapshot: 10, Composed: 5}}),
	}
	for _, tbl := range tables {
		if tbl.Name == "" {
			t.Fatal("unnamed table")
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("table %s: row width %d != header %d", tbl.Name, len(row), len(tbl.Header))
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			t.Fatalf("table %s csv: %v", tbl.Name, err)
		}
		buf.Reset()
		if err := tbl.WriteMarkdown(&buf); err != nil {
			t.Fatalf("table %s markdown: %v", tbl.Name, err)
		}
	}
}
