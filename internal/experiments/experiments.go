// Package experiments contains one harness function per table and figure
// of the paper's evaluation (Section VI), shared by cmd/lbsbench and the
// repository's benchmark suite. Each function returns structured rows so
// that callers can print, assert on, or benchmark them; Print* helpers
// render the same tables the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"policyanon/internal/attacker"
	"policyanon/internal/baseline"
	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/parallel"
	"policyanon/internal/tree"
	"policyanon/internal/verify"
	"policyanon/internal/workload"
)

// Dataset bundles the Master snapshot with its map bounds.
type Dataset struct {
	Master *location.DB
	Bounds geo.Rect
	Seed   int64
	// Ctx, when set, carries an obs.Tracer through every experiment so
	// lbsbench runs emit per-phase traces (nil = tracing disabled).
	Ctx context.Context
}

// ctx returns the observability context for experiment runs.
func (d Dataset) ctx() context.Context {
	if d.Ctx != nil {
		return d.Ctx
	}
	return context.Background()
}

// NewDataset generates the synthetic Bay-Area Master set (Section VI
// "Location Data"; our substitution is documented in DESIGN.md §2).
func NewDataset(cfg workload.Config, seed int64) Dataset {
	side := cfg.MapSide
	if side == 0 {
		side = workload.DefaultMapSide
	}
	return Dataset{Master: workload.Generate(cfg, seed), Bounds: workload.MapBounds(side), Seed: seed}
}

// SampleSizes returns samples of the master set at the requested sizes,
// mirroring the paper's 100k/200k/... sampling. Sizes above the master
// size reuse the full master set.
func (d Dataset) Sample(n int) (*location.DB, error) {
	if n >= d.Master.Len() {
		return d.Master, nil
	}
	return d.Master.Sample(rand.New(rand.NewSource(d.Seed+int64(n))), n)
}

// Fig2Row summarizes the synthetic population density (the stand-in for
// the paper's Figure 2 density maps).
type Fig2Row struct {
	Cells     int
	MaxUsers  int
	MeanUsers float64
	SkewRatio float64
}

// Fig2 bins the master set into occupancy grids of increasing resolution.
func Fig2(d Dataset, resolutions []int) []Fig2Row {
	var rows []Fig2Row
	for _, cells := range resolutions {
		grid := workload.DensityGrid(d.Master, d.Bounds.MaxX, cells)
		maxV, total := 0, 0
		for _, r := range grid {
			for _, v := range r {
				total += v
				if v > maxV {
					maxV = v
				}
			}
		}
		mean := float64(total) / float64(cells*cells)
		rows = append(rows, Fig2Row{
			Cells: cells, MaxUsers: maxV, MeanUsers: mean,
			SkewRatio: workload.SkewRatio(grid),
		})
	}
	return rows
}

// Fig3Row reports binary-tree shape for one location-database size
// (Figure 3: "Tree structure built on 1M data").
type Fig3Row struct {
	N            int
	Nodes        int
	Leaves       int
	MaxHeight    int
	MaxLeafCount int
	BuildTime    time.Duration
}

// Fig3 builds the lazy binary tree at each size and reports its shape.
func Fig3(d Dataset, sizes []int, k int) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, n := range sizes {
		db, err := d.Sample(n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		t, err := tree.BuildContext(d.ctx(), db.Points(), d.Bounds, tree.Options{Kind: tree.Binary, MinCountToSplit: k})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		s := t.Stats()
		rows = append(rows, Fig3Row{
			N: db.Len(), Nodes: s.Nodes, Leaves: s.Leaves,
			MaxHeight: s.MaxHeight, MaxLeafCount: s.MaxLeafCount, BuildTime: el,
		})
	}
	return rows, nil
}

// Fig4aRow reports bulk anonymization wall time for one (|D|, servers)
// point of Figure 4(a).
type Fig4aRow struct {
	N       int
	Servers int
	// Elapsed is the total wall time on this machine (partitioning,
	// sharding, and all servers sharing the local cores).
	Elapsed time.Duration
	// CriticalPath is the slowest single server's anonymization time —
	// the wall time the paper's one-machine-per-server deployment would
	// observe.
	CriticalPath time.Duration
	Cost         int64
}

// Fig4a measures bulk anonymization time over increasing |D| with one
// curve per server-pool size, k fixed (the paper uses k=50).
func Fig4a(d Dataset, sizes, serverCounts []int, k int) ([]Fig4aRow, error) {
	var rows []Fig4aRow
	for _, n := range sizes {
		db, err := d.Sample(n)
		if err != nil {
			return nil, err
		}
		for _, s := range serverCounts {
			start := time.Now()
			// Sequential execution keeps the per-server critical-path
			// measurement honest on machines with fewer cores than
			// servers; see parallel.Options.Sequential.
			eng, err := parallel.NewEngineContext(d.ctx(), db, d.Bounds, parallel.Options{K: k, Servers: s, Sequential: true})
			if err != nil {
				return nil, err
			}
			cost, err := eng.TotalCost()
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig4aRow{
				N: db.Len(), Servers: s, Elapsed: time.Since(start),
				CriticalPath: eng.CriticalPath(), Cost: cost,
			})
		}
	}
	return rows, nil
}

// Fig4bRow reports anonymization time as k varies at fixed |D|
// (Figure 4(b)).
type Fig4bRow struct {
	K       int
	Elapsed time.Duration
	Cost    int64
}

// Fig4b measures single-server bulk anonymization across k at fixed size.
func Fig4b(d Dataset, n int, ks []int) ([]Fig4bRow, error) {
	db, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	var rows []Fig4bRow
	for _, k := range ks {
		start := time.Now()
		anon, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			return nil, err
		}
		cost, err := anon.OptimalCost()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4bRow{K: k, Elapsed: time.Since(start), Cost: cost})
	}
	return rows, nil
}

// Fig5aRow compares average cloak areas of the four policies at one
// database size (Figure 5(a)).
type Fig5aRow struct {
	N              int
	Casper         float64
	PUB            float64
	PUQ            float64
	PolicyAware    float64
	RatioToCasper  float64 // policy-aware / Casper, the paper's <= 1.7 claim
	RatioToPUQ     float64 // policy-aware / PUQ, "nearly identical" claim
	PolicyAwareWin bool    // whether policy-aware beat PUQ outright
}

// runEngine resolves a registry engine and runs it over db under the
// dataset's observability context.
func runEngine(d Dataset, name string, db *location.DB, k int) (*lbs.Assignment, error) {
	eng, err := engine.Get(name)
	if err != nil {
		return nil, err
	}
	return eng.Anonymize(d.ctx(), db, d.Bounds, engine.Params{K: k})
}

// Fig5a computes the cost comparison of Section VI-B: every policy is
// resolved from the engine registry, so the four-way comparison is one
// loop over names.
func Fig5a(d Dataset, sizes []int, k int) ([]Fig5aRow, error) {
	var rows []Fig5aRow
	for _, n := range sizes {
		db, err := d.Sample(n)
		if err != nil {
			return nil, err
		}
		areas := make(map[string]float64, 4)
		for _, name := range []string{"casper", "pub", "puq", engine.DefaultName} {
			pol, err := runEngine(d, name, db, k)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", name, err)
			}
			areas[name] = pol.AvgArea()
		}
		row := Fig5aRow{
			N: db.Len(), Casper: areas["casper"], PUB: areas["pub"],
			PUQ: areas["puq"], PolicyAware: areas[engine.DefaultName],
		}
		row.RatioToCasper = row.PolicyAware / row.Casper
		row.RatioToPUQ = row.PolicyAware / row.PUQ
		row.PolicyAwareWin = row.PolicyAware <= row.PUQ
		rows = append(rows, row)
	}
	return rows, nil
}

// EngineRow is one engine's measurement in the cross-engine sweep: the
// cost/utility metrics of Section VI plus the first-principles anonymity
// levels from internal/verify.
type EngineRow struct {
	Name        string
	PolicyAware bool // registry capability flag
	AvgArea     float64
	Cost        int64
	Elapsed     time.Duration
	MinAware    int  // weakest policy-aware anonymity across users
	MinUnaware  int  // weakest policy-unaware anonymity across users
	OK          bool // verification verdict at the engine's claimed level
}

// EngineSweep runs every named registry engine over one sampled snapshot
// and verifies each result, generalizing the paper's fixed four-policy
// comparison to the full registry. Empty names sweeps all registered
// engines.
func EngineSweep(d Dataset, n, k int, names []string) ([]EngineRow, error) {
	db, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		names = engine.Names()
	}
	var rows []EngineRow
	for _, name := range names {
		eng, err := engine.Get(name)
		if err != nil {
			return nil, err
		}
		info, _ := engine.InfoOf(name)
		start := time.Now()
		pol, err := eng.Anonymize(d.ctx(), db, d.Bounds, engine.Params{K: k})
		if err != nil {
			return nil, fmt.Errorf("experiments: engine %s: %w", name, err)
		}
		elapsed := time.Since(start)
		rep := verify.Policy(pol, k)
		ok := rep.Masking && rep.PolicyUnaware
		if info.PolicyAware {
			ok = ok && rep.PolicyAware
		}
		rows = append(rows, EngineRow{
			Name: name, PolicyAware: info.PolicyAware,
			AvgArea: pol.AvgArea(), Cost: pol.Cost(), Elapsed: elapsed,
			MinAware: rep.MinAware, MinUnaware: rep.MinUnaware, OK: ok,
		})
	}
	return rows, nil
}

// PrintEngines renders the cross-engine sweep.
func PrintEngines(w io.Writer, rows []EngineRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tpolicy-aware\tavg area\tcost\ttime\tmin aware anon\tmin unaware anon\tverified")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%t\t%.0f\t%d\t%v\t%d\t%d\t%t\n",
			r.Name, r.PolicyAware, r.AvgArea, r.Cost,
			r.Elapsed.Round(time.Millisecond), r.MinAware, r.MinUnaware, r.OK)
	}
	tw.Flush()
}

// Fig5bRow compares incremental maintenance with bulk recomputation for
// one fraction of moving users (Figure 5(b)).
type Fig5bRow struct {
	MovePercent    float64
	Incremental    time.Duration
	Bulk           time.Duration
	RowsRecomputed int
}

// Fig5b moves the given fractions of users (bounded by maxMoveMeters, the
// paper uses 200 m) and times incremental maintenance of the optimum
// configuration matrix against recomputation from scratch.
func Fig5b(d Dataset, n, k int, fractions []float64, maxMoveMeters float64) ([]Fig5bRow, error) {
	base, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	var rows []Fig5bRow
	for fi, f := range fractions {
		db := base.Clone()
		anon, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(d.Seed + int64(fi)))
		moves := workload.PlanMoves(rng, db, f, maxMoveMeters, d.Bounds.MaxX)

		start := time.Now()
		for _, mv := range moves {
			if err := anon.Move(mv.Index, mv.To); err != nil {
				return nil, err
			}
		}
		recomputed := anon.Refresh()
		incremental := time.Since(start)
		incCost, err := anon.OptimalCost()
		if err != nil {
			return nil, err
		}

		start = time.Now()
		fresh, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			return nil, err
		}
		bulkCost, err := fresh.OptimalCost()
		if err != nil {
			return nil, err
		}
		bulk := time.Since(start)
		if incCost != bulkCost {
			return nil, fmt.Errorf("experiments: incremental cost %d != bulk %d at %.1f%% movement",
				incCost, bulkCost, 100*f)
		}
		rows = append(rows, Fig5bRow{
			MovePercent: 100 * f, Incremental: incremental, Bulk: bulk, RowsRecomputed: recomputed,
		})
	}
	return rows, nil
}

// ParallelRow reports the cost divergence of the partitioned deployment
// from the single-server optimum (Section VI-D).
type ParallelRow struct {
	Jurisdictions int
	Cost          int64
	DivergencePct float64
}

// ParallelUtility measures the Section VI-D utility-loss stress test.
func ParallelUtility(d Dataset, n, k int, serverCounts []int) ([]ParallelRow, error) {
	db, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	anon, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		return nil, err
	}
	opt, err := anon.OptimalCost()
	if err != nil {
		return nil, err
	}
	var rows []ParallelRow
	for _, s := range serverCounts {
		eng, err := parallel.NewEngineContext(d.ctx(), db, d.Bounds, parallel.Options{K: k, Servers: s})
		if err != nil {
			return nil, err
		}
		cost, err := eng.TotalCost()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParallelRow{
			Jurisdictions: eng.NumServers(),
			Cost:          cost,
			DivergencePct: 100 * (float64(cost) - float64(opt)) / float64(opt),
		})
	}
	return rows, nil
}

// UtilityRow reports the practical utility of a policy: the average size
// of the candidate answer the LBS returns for a cloaked nearest-neighbour
// request, which drives transfer and client-side filtering cost. This
// extends the paper's area-based cost metric with an end-to-end one.
type UtilityRow struct {
	Policy        string
	AvgCloakArea  float64
	AvgAnswerSize float64
}

// AnswerSize compares candidate nearest-neighbour answer sizes across the
// four policies over a synthetic POI catalogue of the given size.
func AnswerSize(d Dataset, n, k, pois int) ([]UtilityRow, error) {
	db, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(d.Seed + 777))
	catalogue := make([]lbs.POI, pois)
	for i := range catalogue {
		catalogue[i] = lbs.POI{
			ID:       fmt.Sprintf("poi%06d", i),
			Loc:      geo.Point{X: rng.Int31n(d.Bounds.MaxX), Y: rng.Int31n(d.Bounds.MaxY)},
			Category: "gas",
		}
	}
	store, err := lbs.NewPOIStore(catalogue, d.Bounds, 0)
	if err != nil {
		return nil, err
	}
	// Policies come from the engine registry, so rows carry stable
	// registry names.
	names := []string{"casper", "pub", "puq", engine.DefaultName}
	// Sample a fixed set of requesters across all policies.
	sampleN := 500
	if sampleN > db.Len() {
		sampleN = db.Len()
	}
	idx := rng.Perm(db.Len())[:sampleN]
	var rows []UtilityRow
	for _, name := range names {
		pol, err := runEngine(d, name, db, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		total := 0
		for _, i := range idx {
			total += len(store.CandidateNearest(pol.CloakAt(i), "gas"))
		}
		rows = append(rows, UtilityRow{
			Policy:        name,
			AvgCloakArea:  pol.AvgArea(),
			AvgAnswerSize: float64(total) / float64(sampleN),
		})
	}
	return rows, nil
}

// HilbertRow compares the two policy-aware-safe schemes: the optimal
// tree-constrained policy of the paper against the HilbertCloak heuristic
// of [17], plus FindMBC [27] as the policy-unaware-only reference.
type HilbertRow struct {
	N                int
	OptimalAvgArea   float64
	HilbertAvgArea   float64
	FindMBCAvgArea   float64
	OptimalMinAnon   int
	HilbertMinAnon   int
	FindMBCAwareAnon int // policy-aware anonymity of FindMBC (typically 1)
}

// Hilbert runs the comparison at each size.
func Hilbert(d Dataset, sizes []int, k int) ([]HilbertRow, error) {
	var rows []HilbertRow
	for _, n := range sizes {
		db, err := d.Sample(n)
		if err != nil {
			return nil, err
		}
		anon, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			return nil, err
		}
		opt, err := anon.Policy()
		if err != nil {
			return nil, err
		}
		hil, err := baseline.HilbertCloak(db, d.Bounds, k)
		if err != nil {
			return nil, err
		}
		mbc, err := baseline.FindMBC(db, d.Bounds, k)
		if err != nil {
			return nil, err
		}
		_, optMin := attacker.Audit(opt, k, attacker.PolicyAware)
		_, hilMin := attacker.Audit(hil, k, attacker.PolicyAware)
		rows = append(rows, HilbertRow{
			N:                db.Len(),
			OptimalAvgArea:   opt.AvgArea(),
			HilbertAvgArea:   hil.AvgArea(),
			FindMBCAvgArea:   mbc.Cost() / float64(db.Len()),
			OptimalMinAnon:   optMin,
			HilbertMinAnon:   hilMin,
			FindMBCAwareAnon: mbc.PolicyAwareAnonymity(),
		})
	}
	return rows, nil
}

// PrintHilbert renders the comparison.
func PrintHilbert(w io.Writer, rows []HilbertRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|D|\toptimal tree\tHilbertCloak\tFindMBC\topt min-anon\thilbert min-anon\tfindmbc aware-anon")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\n",
			r.N, r.OptimalAvgArea, r.HilbertAvgArea, r.FindMBCAvgArea,
			r.OptimalMinAnon, r.HilbertMinAnon, r.FindMBCAwareAnon)
	}
	tw.Flush()
}

// AdaptiveRow compares the static vertical binary tree with the
// adaptive-orientation DP (the Section V sketched variant).
type AdaptiveRow struct {
	N              int
	StaticAvgArea  float64
	AdaptiveAvg    float64
	CostRatio      float64 // adaptive / static, <= 1 by construction
	StaticElapsed  time.Duration
	AdaptiveElapse time.Duration
}

// Adaptive runs the orientation comparison at each size.
func Adaptive(d Dataset, sizes []int, k int) ([]AdaptiveRow, error) {
	var rows []AdaptiveRow
	for _, n := range sizes {
		db, err := d.Sample(n)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		anon, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			return nil, err
		}
		staticCost, err := anon.OptimalCost()
		if err != nil {
			return nil, err
		}
		staticTime := time.Since(t0)

		t1 := time.Now()
		qt, err := tree.BuildContext(d.ctx(), db.Points(), d.Bounds, tree.Options{Kind: tree.Quad, MinCountToSplit: k})
		if err != nil {
			return nil, err
		}
		am, err := core.NewAdaptiveMatrix(qt, k, core.Options{})
		if err != nil {
			return nil, err
		}
		adaptiveCost, err := am.OptimalCost()
		if err != nil {
			return nil, err
		}
		adaptiveTime := time.Since(t1)
		rows = append(rows, AdaptiveRow{
			N:              db.Len(),
			StaticAvgArea:  float64(staticCost) / float64(db.Len()),
			AdaptiveAvg:    float64(adaptiveCost) / float64(db.Len()),
			CostRatio:      float64(adaptiveCost) / float64(staticCost),
			StaticElapsed:  staticTime,
			AdaptiveElapse: adaptiveTime,
		})
	}
	return rows, nil
}

// PrintAdaptive renders the orientation comparison.
func PrintAdaptive(w io.Writer, rows []AdaptiveRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|D|\tstatic avg area\tadaptive avg area\tratio\tstatic time\tadaptive time")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.3f\t%v\t%v\n",
			r.N, r.StaticAvgArea, r.AdaptiveAvg, r.CostRatio,
			r.StaticElapsed.Round(time.Millisecond), r.AdaptiveElapse.Round(time.Millisecond))
	}
	tw.Flush()
}

// AdaptiveTable converts the orientation comparison.
func AdaptiveTable(rows []AdaptiveRow) Table {
	t := Table{Name: "adaptive-orientation", Header: []string{
		"users", "static_avg_area", "adaptive_avg_area", "cost_ratio", "static_ms", "adaptive_ms",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), f0(r.StaticAvgArea), f0(r.AdaptiveAvg), f3(r.CostRatio),
			ms(r.StaticElapsed), ms(r.AdaptiveElapse),
		})
	}
	return t
}

// TrajectoryRow records anonymity erosion across snapshots for a pinned
// request series (the future-work attacker).
type TrajectoryRow struct {
	Snapshot    int
	PerSnapshot int
	Composed    int
}

// TrajectoryErosion tracks one user across moving snapshots and measures
// how the intersected candidate set shrinks.
func TrajectoryErosion(d Dataset, n, k, snapshots int, target int) ([]TrajectoryRow, error) {
	db, err := d.Sample(n)
	if err != nil {
		return nil, err
	}
	db = db.Clone()
	if target < 0 || target >= db.Len() {
		target = db.Len() / 2
	}
	rng := rand.New(rand.NewSource(d.Seed + 999))
	var series []attacker.TrajectoryObservation
	var rows []TrajectoryRow
	for s := 0; s < snapshots; s++ {
		anon, err := core.NewAnonymizerContext(d.ctx(), db, d.Bounds, core.AnonymizerOptions{K: k})
		if err != nil {
			return nil, err
		}
		pol, err := anon.Policy()
		if err != nil {
			return nil, err
		}
		cloak := pol.CloakAt(target)
		series = append(series, attacker.TrajectoryObservation{
			Policy: pol, Cloak: cloak, Aware: attacker.PolicyAware,
		})
		rows = append(rows, TrajectoryRow{
			Snapshot:    s,
			PerSnapshot: len(attacker.Candidates(pol, cloak, attacker.PolicyAware)),
			Composed:    attacker.TrajectoryAnonymity(series),
		})
		workload.Apply(db, workload.PlanMoves(rng, db, 1.0, 400, d.Bounds.MaxX))
	}
	return rows, nil
}

// PrintTrajectory renders the erosion table.
func PrintTrajectory(w io.Writer, rows []TrajectoryRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "snapshot\tper-snapshot anonymity\tcomposed anonymity")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\n", r.Snapshot, r.PerSnapshot, r.Composed)
	}
	tw.Flush()
}

// PrintUtility renders the answer-size comparison.
func PrintUtility(w io.Writer, rows []UtilityRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tavg cloak m^2\tavg NN answer size")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.2f\n", r.Policy, r.AvgCloakArea, r.AvgAnswerSize)
	}
	tw.Flush()
}

// PrintFig2 renders the density summary.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "grid\tmax/cell\tmean/cell\tskew(max/mean)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%dx%d\t%d\t%.1f\t%.1f\n", r.Cells, r.Cells, r.MaxUsers, r.MeanUsers, r.SkewRatio)
	}
	tw.Flush()
}

// PrintFig3 renders the tree-shape table.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|D|\tnodes\tleaves\tmax height\tmax leaf count\tbuild")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\n",
			r.N, r.Nodes, r.Leaves, r.MaxHeight, r.MaxLeafCount, r.BuildTime.Round(time.Millisecond))
	}
	tw.Flush()
}

// PrintFig4a renders the bulk-anonymization-time table.
func PrintFig4a(w io.Writer, rows []Fig4aRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|D|\tservers\twall time\tper-server critical path\tcost")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%v\t%v\t%d\n", r.N, r.Servers,
			r.Elapsed.Round(time.Millisecond), r.CriticalPath.Round(time.Millisecond), r.Cost)
	}
	tw.Flush()
}

// PrintFig4b renders the time-vs-k table.
func PrintFig4b(w io.Writer, rows []Fig4bRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\ttime\tcost")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\t%d\n", r.K, r.Elapsed.Round(time.Millisecond), r.Cost)
	}
	tw.Flush()
}

// PrintFig5a renders the average-cloak-area comparison.
func PrintFig5a(w io.Writer, rows []Fig5aRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|D|\tCasper\tPUB\tPUQ\tpolicy-aware\tPA/Casper\tPA/PUQ")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\t%.2f\n",
			r.N, r.Casper, r.PUB, r.PUQ, r.PolicyAware, r.RatioToCasper, r.RatioToPUQ)
	}
	tw.Flush()
}

// PrintFig5b renders the incremental-vs-bulk table.
func PrintFig5b(w io.Writer, rows []Fig5bRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "moving %\tincremental\tbulk\trows recomputed")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f\t%v\t%v\t%d\n",
			r.MovePercent, r.Incremental.Round(time.Millisecond), r.Bulk.Round(time.Millisecond), r.RowsRecomputed)
	}
	tw.Flush()
}

// PrintParallel renders the utility-loss table.
func PrintParallel(w io.Writer, rows []ParallelRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "jurisdictions\tcost\tdivergence %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\n", r.Jurisdictions, r.Cost, r.DivergencePct)
	}
	tw.Flush()
}
