package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"policyanon/internal/geo"
	"policyanon/internal/obs/flight"
	"policyanon/internal/server"
)

// This file implements the tracked tracing-overhead benchmark: the
// /v1/request hot path with always-on tail-sampled tracing (per-request
// capture, flight-recorder latency window, exemplar wiring) against the
// same server with request tracing disabled, written as
// BENCH_trace.json. The acceptance gate is that the observability layer
// costs less than TraceOverheadGate percent of baseline throughput —
// "always-on" is only honest if nobody is tempted to turn it off.

// TraceOverheadGate is the throughput-loss budget of always-on request
// tracing, in percent.
const TraceOverheadGate = 5.0

// TraceBenchRow is one tracing mode's measurement.
type TraceBenchRow struct {
	Mode      string  `json:"mode"` // "off" or "on"
	Requests  int64   `json:"requests"`
	ReqPerSec float64 `json:"reqPerSec"`
	NsPerReq  float64 `json:"nsPerReq"`
}

// TraceBench is the BENCH_trace.json document.
type TraceBench struct {
	// Bench discriminates benchmark documents for -check-bench; always
	// "trace" here.
	Bench   string `json:"bench"`
	Dataset string `json:"dataset"` // lbsbench scale name
	Users   int    `json:"users"`
	K       int    `json:"k"`
	Engine  string `json:"engine"`
	// Machine metadata, as in BENCH_bulkdp.json.
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	CPUModel   string `json:"cpuModel"`
	GoVersion  string `json:"goVersion"`
	// Off and On measure the same request cycle with tracing disabled
	// and enabled; OverheadPct is the relative throughput loss.
	Off         TraceBenchRow `json:"off"`
	On          TraceBenchRow `json:"on"`
	OverheadPct float64       `json:"overheadPct"`
	// Recorder accounting from the traced run: how many traces the tail
	// sampler retained (at least the one forced request) and the rolling
	// p99-derived slow threshold it converged to.
	Retained    int64   `json:"retained"`
	ThresholdMs float64 `json:"slowThresholdMs"`
}

// TraceSweep benchmarks the /v1/request path with tracing off and on
// against a real HTTP server and returns the tracked document. minTime
// is the measurement budget per mode.
func TraceSweep(d Dataset, users, k int, minTime time.Duration) (*TraceBench, error) {
	db, err := d.Sample(users)
	if err != nil {
		return nil, err
	}
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	side := d.Bounds.MaxX
	snap := server.SnapshotRequest{K: k, MapSide: side, Users: make([]server.UserJSON, db.Len())}
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		snap.Users[i] = server.UserJSON{ID: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y}
	}
	if err := postJSON(client, ts.URL+"/v1/snapshot", snap); err != nil {
		return nil, fmt.Errorf("experiments: trace bench snapshot: %w", err)
	}
	pois := struct {
		MapSide int32            `json:"mapSide"`
		POIs    []server.POIJSON `json:"pois"`
	}{MapSide: side}
	for i := 0; i < 16; i++ {
		p := geo.Point{X: int32(i) * side / 16, Y: int32(i) * side / 16}
		pois.POIs = append(pois.POIs, server.POIJSON{ID: fmt.Sprintf("poi%d", i), X: p.X, Y: p.Y, Category: "gas"})
	}
	if err := postJSON(client, ts.URL+"/v1/pois", pois); err != nil {
		return nil, fmt.Errorf("experiments: trace bench pois: %w", err)
	}

	// Pre-marshal a cycle of request bodies so the driver measures the
	// server, not the encoder.
	nBodies := db.Len()
	if nBodies > 256 {
		nBodies = 256
	}
	bodies := make([][]byte, nBodies)
	for i := range bodies {
		rec := db.At(i)
		bodies[i], err = json.Marshal(server.ServiceRequestJSON{User: rec.UserID, X: rec.Loc.X, Y: rec.Loc.Y})
		if err != nil {
			return nil, err
		}
	}
	next := 0
	doRequest := func(force bool) error {
		body := bodies[next%len(bodies)]
		next++
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/request", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if force {
			req.Header.Set(flight.ForceHeader, "1")
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("request status %s", resp.Status)
		}
		return nil
	}

	measure := func(mode string, tracing bool) (TraceBenchRow, error) {
		srv.SetRequestTracing(tracing)
		for i := 0; i < 32; i++ { // warm connections and caches
			if err := doRequest(false); err != nil {
				return TraceBenchRow{}, err
			}
		}
		start := time.Now()
		var n int64
		var elapsed time.Duration
		for elapsed < minTime {
			if err := doRequest(false); err != nil {
				return TraceBenchRow{}, err
			}
			n++
			elapsed = time.Since(start)
		}
		return TraceBenchRow{
			Mode:      mode,
			Requests:  n,
			ReqPerSec: float64(n) / elapsed.Seconds(),
			NsPerReq:  float64(elapsed.Nanoseconds()) / float64(n),
		}, nil
	}

	// Alternate off/on passes and keep the best of each: a single pass
	// per mode conflates the tracing delta with whichever pass the
	// scheduler or a GC cycle happened to lean on, and best-of-N only
	// discards one-sided slowdowns — it cannot flatter either mode.
	var off, on TraceBenchRow
	for pass := 0; pass < 2; pass++ {
		o, err := measure("off", false)
		if err != nil {
			return nil, err
		}
		t, err := measure("on", true)
		if err != nil {
			return nil, err
		}
		if pass == 0 || o.ReqPerSec > off.ReqPerSec {
			off = o
		}
		if pass == 0 || t.ReqPerSec > on.ReqPerSec {
			on = t
		}
	}
	// One forced request proves the retention path end to end: the
	// document's Retained count must be at least this trace.
	if err := doRequest(true); err != nil {
		return nil, err
	}

	stats := srv.FlightRecorder().Stats()
	return &TraceBench{
		Bench:       "trace",
		Users:       db.Len(),
		K:           k,
		Engine:      srv.DefaultEngine(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		CPUModel:    cpuModel(),
		GoVersion:   runtime.Version(),
		Off:         off,
		On:          on,
		OverheadPct: (off.ReqPerSec - on.ReqPerSec) / off.ReqPerSec * 100,
		Retained:    stats.Retained,
		ThresholdMs: stats.ThresholdMs,
	}, nil
}

// LoadTraceBench decodes and validates a BENCH_trace.json document,
// enforcing the TraceOverheadGate budget; CI uses it to fail on
// malformed or regressed benchmark output.
func LoadTraceBench(r io.Reader) (*TraceBench, error) {
	var b TraceBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: decode BENCH_trace.json: %w", err)
	}
	if b.Bench != "trace" {
		return nil, fmt.Errorf("experiments: BENCH_trace.json bench = %q, want \"trace\"", b.Bench)
	}
	if b.Users < 1 || b.K < 1 {
		return nil, fmt.Errorf("experiments: BENCH_trace.json metadata invalid: users=%d k=%d", b.Users, b.K)
	}
	if b.GOMAXPROCS < 1 || b.GoVersion == "" {
		return nil, fmt.Errorf("experiments: BENCH_trace.json machine metadata missing")
	}
	for _, row := range []TraceBenchRow{b.Off, b.On} {
		if row.Requests < 1 || row.ReqPerSec <= 0 || row.NsPerReq <= 0 {
			return nil, fmt.Errorf("experiments: BENCH_trace.json row invalid: %+v", row)
		}
	}
	if b.OverheadPct >= TraceOverheadGate {
		return nil, fmt.Errorf("experiments: tracing overhead %.2f%% exceeds the %.1f%% budget",
			b.OverheadPct, TraceOverheadGate)
	}
	if b.Retained < 1 {
		return nil, fmt.Errorf("experiments: BENCH_trace.json retained %d traces; the forced request never landed", b.Retained)
	}
	return &b, nil
}

// TraceBenchTable renders the measurement for the lbsbench table formats.
func TraceBenchTable(b *TraceBench) Table {
	tbl := Table{
		Name:   "trace_overhead",
		Header: []string{"mode", "requests", "req_per_sec", "ns_per_req"},
	}
	for _, r := range []TraceBenchRow{b.Off, b.On} {
		tbl.Rows = append(tbl.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.0f", r.ReqPerSec),
			fmt.Sprintf("%.0f", r.NsPerReq),
		})
	}
	return tbl
}

// PrintTraceBench writes the human table plus the overhead summary line.
func PrintTraceBench(w io.Writer, b *TraceBench) {
	fmt.Fprintf(w, "%-6s %10s %14s %14s\n", "mode", "requests", "req/sec", "ns/req")
	for _, r := range []TraceBenchRow{b.Off, b.On} {
		fmt.Fprintf(w, "%-6s %10d %14.0f %14.0f\n", r.Mode, r.Requests, r.ReqPerSec, r.NsPerReq)
	}
	fmt.Fprintln(w, TraceOverheadSummary(b))
}

// TraceOverheadSummary renders the one-line gate summary, e.g.
// "trace overhead: off 1234 req/s, on 1200 req/s — 2.75% (budget 5.0%);
// 3 traces retained, slow threshold 1.82ms".
func TraceOverheadSummary(b *TraceBench) string {
	return fmt.Sprintf("trace overhead: off %.0f req/s, on %.0f req/s — %.2f%% (budget %.1f%%); %d traces retained, slow threshold %.2fms",
		b.Off.ReqPerSec, b.On.ReqPerSec, b.OverheadPct, TraceOverheadGate, b.Retained, b.ThresholdMs)
}
