package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"policyanon/internal/workload"
)

func TestTraceSweepProducesValidDoc(t *testing.T) {
	d := NewDataset(workload.Config{
		MapSide: 1 << 12, Intersections: 400, UsersPerIntersection: 5, SpreadSigma: 60,
	}, 5)
	bench, err := TraceSweep(d, 500, 10, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Bench != "trace" {
		t.Errorf("bench discriminator = %q", bench.Bench)
	}
	for _, row := range []TraceBenchRow{bench.Off, bench.On} {
		if row.Requests < 1 || row.ReqPerSec <= 0 || row.NsPerReq <= 0 {
			t.Errorf("row %s inconsistent: %+v", row.Mode, row)
		}
	}
	// The sweep's closing forced request must have been retained — that
	// is what proves the sampling path end to end.
	if bench.Retained < 1 {
		t.Errorf("retained = %d, want >= 1", bench.Retained)
	}
	if bench.GOMAXPROCS < 1 || bench.GoVersion == "" || bench.CPUModel == "" {
		t.Errorf("machine metadata incomplete: %+v", bench)
	}
	tbl := TraceBenchTable(bench)
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != len(tbl.Header) {
		t.Errorf("table shape wrong: %+v", tbl)
	}
	var buf bytes.Buffer
	PrintTraceBench(&buf, bench)
	if !strings.Contains(buf.String(), "trace overhead:") {
		t.Errorf("print output missing summary: %q", buf.String())
	}
}

// TestLoadTraceBenchGates exercises the BENCH_trace.json CI gate on
// synthetic documents: the overhead budget, the retention proof, the
// structural checks, and the discriminator.
func TestLoadTraceBenchGates(t *testing.T) {
	doc := func(overhead float64, retained int64) string {
		b := TraceBench{
			Bench: "trace", Dataset: "small", Users: 100, K: 10, Engine: "bulkdp-binary",
			GOMAXPROCS: 4, NumCPU: 4, CPUModel: "test", GoVersion: "go1.x",
			Off:         TraceBenchRow{Mode: "off", Requests: 1000, ReqPerSec: 1000, NsPerReq: 1e6},
			On:          TraceBenchRow{Mode: "on", Requests: 1000, ReqPerSec: 1000 * (1 - overhead/100), NsPerReq: 1e6},
			OverheadPct: overhead,
			Retained:    retained,
			ThresholdMs: 1.5,
		}
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	if _, err := LoadTraceBench(strings.NewReader(doc(2.5, 3))); err != nil {
		t.Errorf("healthy document rejected: %v", err)
	}
	// A faster traced run is measurement noise, not a failure.
	if _, err := LoadTraceBench(strings.NewReader(doc(-1.2, 3))); err != nil {
		t.Errorf("negative overhead rejected: %v", err)
	}
	if _, err := LoadTraceBench(strings.NewReader(doc(7.5, 3))); err == nil {
		t.Error("overhead 7.5% passed the 5% budget")
	} else if !strings.Contains(err.Error(), "exceeds the 5.0% budget") {
		t.Errorf("wrong gate error: %v", err)
	}
	if _, err := LoadTraceBench(strings.NewReader(doc(2.5, 0))); err == nil {
		t.Error("zero retained traces accepted")
	}
	bad := strings.Replace(doc(2.5, 3), `"bench":"trace"`, `"bench":"nope"`, 1)
	if _, err := LoadTraceBench(strings.NewReader(bad)); err == nil {
		t.Error("wrong discriminator accepted")
	}
	if _, err := LoadTraceBench(strings.NewReader(`{"bench":"trace"}`)); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := LoadTraceBench(strings.NewReader(doc(2.5, 3) + `x`)); err != nil {
		t.Errorf("trailing data rejected: %v", err)
	}
}
