package motion

import (
	"context"
	"strconv"
	"testing"
	"time"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/workload"
)

// TestPipelineDeltaPublishes drives a forced-incremental pipeline with
// delta-scoped verification (full anchor every 4th publish) and asserts
// the delta publish path actually carried the traffic: snapshots share
// storage with their predecessors and each publish rewrites far fewer
// cloaks than a full republish.
func TestPipelineDeltaPublishes(t *testing.T) {
	const users, k = 300, 20
	db := testDB(t, users, 5)
	p, err := New(db, testBounds(), Config{
		K:             k,
		Strategy:      StrategyIncremental,
		MaxBatch:      32,
		FlushInterval: time.Millisecond,
		MaxMoveMeters: -1,
		VerifyEvery:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.NewMoveStream(13, db, 200, testSide)
	enqueueMoves(t, p, stream, 4*users)
	closePipeline(t, p)

	st := p.Stats()
	if st.Rebuilds != 0 || st.Fallbacks != 0 {
		t.Fatalf("want no rebuilds/fallbacks, got %d/%d", st.Rebuilds, st.Fallbacks)
	}
	if st.DeltaPublishes == 0 {
		t.Fatalf("no delta publishes over %d batches", st.Batches)
	}
	// The initial publish and the first incremental batch go out in full;
	// every later batch must ride the delta chain.
	if st.DeltaPublishes < st.Batches-1 {
		t.Fatalf("%d delta publishes over %d batches — chain keeps breaking", st.DeltaPublishes, st.Batches)
	}
	// Delta publishes rewrite O(changes) cloaks; a full republish per batch
	// would have cost Batches*users.
	if st.CloaksChanged >= st.Batches*int64(users) {
		t.Fatalf("%d cloak rewrites over %d batches of %d users — delta publication not engaged",
			st.CloaksChanged, st.Batches, users)
	}
	snap := p.Snapshot()
	if !snap.Delta {
		t.Fatalf("final snapshot not delta-published: %+v", snap)
	}
	if snap.Policy.Delta() == nil {
		t.Fatal("delta snapshot carries no Delta record")
	}
	if snap.CloaksChanged >= users {
		t.Fatalf("final delta snapshot rewrote %d cloaks of %d", snap.CloaksChanged, users)
	}
}

// smallDB places users in the lower-left corner so a deliberately narrow
// matrix can be swapped in for fallback tests.
func smallDB(t *testing.T, n int) *location.DB {
	t.Helper()
	db := location.New(n)
	for i := 0; i < n; i++ {
		if err := db.Add("u"+strconv.Itoa(i), geo.Point{X: int32(i % 64), Y: int32(i / 64)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestMaintainerFallbackOnMidBatchFailure pins the recovery contract: a
// mid-batch incremental failure (which leaves the matrix inconsistent
// with the live DB) is recovered by a full rebuild in the same apply,
// reported via the fallback flag rather than an error.
func TestMaintainerFallbackOnMidBatchFailure(t *testing.T) {
	const users, k = 128, 8
	db := smallDB(t, users)
	bounds := testBounds()
	cfg, err := Config{K: k, Strategy: StrategyIncremental}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	m, err := newMaintainer(db, bounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a matrix over a domain that excludes most of the map: moving
	// a user outside it fails incremental maintenance mid-batch, while the
	// rebuild over the true bounds succeeds.
	narrow, err := core.NewAnonymizer(db, geo.NewRect(0, 0, 128, 128), core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	m.anon = narrow

	res, err := m.apply(context.Background(), map[int]geo.Point{3: {X: 3000, Y: 3000}})
	if err != nil {
		t.Fatalf("apply should have recovered by rebuild: %v", err)
	}
	if !res.fallback {
		t.Fatalf("fallback not reported: %+v", res)
	}
	if res.strategy != StrategyRebuild || res.delta {
		t.Fatalf("fallback result: strategy %q delta %v", res.strategy, res.delta)
	}
	if got := res.policy.DB().At(3).Loc; got != (geo.Point{X: 3000, Y: 3000}) {
		t.Fatalf("published record 3 at %v after fallback", got)
	}
	if m.lastPub != res.policy {
		t.Fatal("fallback publish did not re-anchor the delta chain")
	}
	// The next batch rides the re-anchored chain as a delta.
	res2, err := m.apply(context.Background(), map[int]geo.Point{5: {X: 40, Y: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.delta || res2.fallback {
		t.Fatalf("post-fallback batch: delta %v fallback %v", res2.delta, res2.fallback)
	}
}

// TestMaintainerDeltaMismatchSelfHeals pins ApplyDelta's validation as the
// safety net: when the published parent silently disagrees with the
// matrix baseline, the batch publishes from scratch (no error, no corrupt
// policy) and the chain re-anchors.
func TestMaintainerDeltaMismatchSelfHeals(t *testing.T) {
	const users, k = 128, 8
	db := smallDB(t, users)
	cfg, err := Config{K: k, Strategy: StrategyIncremental}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	m, err := newMaintainer(db, testBounds(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.apply(ctx, map[int]geo.Point{1: {X: 10, Y: 10}}); err != nil {
		t.Fatal(err)
	}
	res, err := m.apply(ctx, map[int]geo.Point{2: {X: 11, Y: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.delta {
		t.Fatalf("second batch did not publish a delta: %+v", res)
	}

	// Corrupt the chain: replace lastPub with an assignment whose record 0
	// sits elsewhere inside its cloak. The next batch's From for record 0
	// (captured from the live DB) won't match this parent.
	bad := m.lastPub.DB().Clone()
	cl := m.lastPub.CloakAt(0)
	other := geo.Point{X: cl.MinX, Y: cl.MinY}
	if other == bad.At(0).Loc {
		other = geo.Point{X: cl.MaxX, Y: cl.MaxY}
	}
	bad.MoveAt(0, other)
	m.lastPub, err = lbs.NewAssignment(bad, m.lastPub.Cloaks())
	if err != nil {
		t.Fatal(err)
	}

	res, err = m.apply(ctx, map[int]geo.Point{0: {X: 12, Y: 12}})
	if err != nil {
		t.Fatalf("mismatched delta should self-heal, got: %v", err)
	}
	if res.delta || res.fallback {
		t.Fatalf("mismatched batch published delta=%v fallback=%v, want full incremental publish", res.delta, res.fallback)
	}
	if res.strategy != StrategyIncremental {
		t.Fatalf("strategy %q", res.strategy)
	}
	if got := m.lastPub.DB().At(0).Loc; got != (geo.Point{X: 12, Y: 12}) {
		t.Fatalf("re-anchored publish has record 0 at %v", got)
	}
	// Chain is intact again.
	res, err = m.apply(ctx, map[int]geo.Point{4: {X: 13, Y: 13}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.delta {
		t.Fatalf("chain did not re-anchor after self-heal: %+v", res)
	}
}
