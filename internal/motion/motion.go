// Package motion is the live-motion subsystem: it turns the snapshot-at-a-
// time anonymization server into a continuously maintained one. Movement
// updates stream into a bounded, batched ingest queue (size- and time-
// triggered flush, explicit backpressure); a single maintenance loop
// coalesces each batch per user and applies it to the live location state —
// incrementally through the Section V configuration-matrix maintenance when
// the engine supports it, by a full rebuild otherwise or when a batch's
// churn crosses the rebuild threshold — and then atomically swaps a
// double-buffered snapshot so the read path never blocks on a write and
// never observes a half-applied batch.
//
// Concurrency model. Writes and reads are concurrent for the first time in
// this repository, so the ownership rules are strict:
//
//   - The live location.DB and core.Anonymizer belong exclusively to the
//     maintenance loop after New/NewWithState; no other goroutine may touch
//     them.
//   - Readers only ever see *Snapshot values through an atomic front
//     pointer. Each snapshot binds the policy to an immutable clone of the
//     location DB, so a (snapshot, policy) pair is internally consistent
//     forever, even while the loop mutates the live state behind it.
//   - The swap is double-buffered: the loop builds the next snapshot in its
//     private back buffer and publishes it with a single atomic store; the
//     previous front remains valid for readers that still hold it (the GC
//     reclaims it when the last reader drops it, which is what makes the
//     buffer reuse safe without read locks).
//
// Backpressure. The queue is a fixed-capacity channel. Under the Block
// policy, Enqueue waits for space (bounded by its context); under Drop it
// rejects the incoming update with ErrQueueFull so the caller can shed load
// explicitly (the HTTP layer maps it to 429). Either way the queue cannot
// grow without bound, and its depth is exported continuously.
//
// Validation. Updates are validated at the ingest boundary against the
// published snapshot: non-finite or out-of-bounds coordinates, unknown
// users, and moves that violate the bounded-motion model (more than
// MaxMoveMeters from the user's last published location; the paper bounds
// movement by 200 m per 10 s snapshot interval) are rejected with typed
// errors and per-reason counters instead of corrupting the location DB.
package motion

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
	"policyanon/internal/tree"
)

// Update is one user movement on its way into the pipeline. Coordinates
// are float64 at this boundary — the one place the system accepts
// unvalidated numeric input — so non-finite values can be detected and
// rejected instead of being silently truncated into the int32 domain.
type Update struct {
	UserID string
	X, Y   float64
}

// BackpressurePolicy selects what Enqueue does when the queue is full.
type BackpressurePolicy int

const (
	// Block makes Enqueue wait for queue space (bounded by its context).
	Block BackpressurePolicy = iota
	// Drop makes Enqueue reject the incoming update with ErrQueueFull.
	Drop
)

// String names the policy.
func (p BackpressurePolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("BackpressurePolicy(%d)", int(p))
	}
}

// Strategy selects how batches are applied to the matrix.
type Strategy string

const (
	// StrategyAuto applies incrementally when the engine supports it and
	// the batch churn is below RebuildThreshold, rebuilding otherwise.
	StrategyAuto Strategy = "auto"
	// StrategyIncremental always maintains incrementally (requires an
	// Incremental-capable engine).
	StrategyIncremental Strategy = "incremental"
	// StrategyRebuild always recomputes the policy from scratch.
	StrategyRebuild Strategy = "rebuild"
)

// Errors returned by Enqueue.
var (
	// ErrClosed reports an enqueue after Close: the pipeline has stopped
	// accepting moves and is draining.
	ErrClosed = errors.New("motion: pipeline closed")
	// ErrQueueFull reports that the Drop backpressure policy shed the
	// incoming update.
	ErrQueueFull = errors.New("motion: ingest queue full")
)

// Reject reasons, used as RejectError.Reason and metric label suffixes.
const (
	ReasonNonFinite   = "nonfinite"
	ReasonOutOfBounds = "bounds"
	ReasonUnknownUser = "unknown"
	ReasonSpeed       = "speed"
)

// RejectError is a validation failure at the ingest boundary; Reason is
// one of the Reason* constants and selects the metrics counter bumped.
type RejectError struct {
	Reason string
	Detail string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("motion: rejected update (%s): %s", e.Reason, e.Detail)
}

// Config parameterizes a Pipeline. The zero value is completed with the
// documented defaults by New.
type Config struct {
	// Engine is the registry name of the anonymization engine (default
	// engine.DefaultName). Its Incremental capability flag decides whether
	// batches can be maintained through the configuration matrix.
	Engine string
	// K is the anonymity parameter (required, >= 1).
	K int
	// Opts carries engine options by name (e.g. "workers").
	Opts map[string]string
	// TreeKind selects the cloaking tree of the core maintainer used for
	// incremental engines (default tree.Binary, the Section V
	// semi-quadrant tree; the matrix maintenance itself is kind-agnostic).
	TreeKind tree.Kind

	// QueueCapacity bounds the ingest queue (default 4096 updates).
	QueueCapacity int
	// MaxBatch is the size trigger: a flush happens as soon as this many
	// coalescible updates are collected (default 512).
	MaxBatch int
	// FlushInterval is the time trigger: a non-empty batch is flushed at
	// least this often (default 50 ms).
	FlushInterval time.Duration
	// Policy selects the backpressure behaviour of a full queue (default
	// Block).
	Policy BackpressurePolicy

	// Strategy selects incremental-vs-rebuild dispatch (default
	// StrategyAuto).
	Strategy Strategy
	// RebuildThreshold is the batch churn fraction (coalesced moves /
	// users) above which StrategyAuto falls back to a full rebuild
	// (default 0.25). The incremental maintenance of Fig. 5b wins far
	// below it and loses far above it.
	RebuildThreshold float64
	// MaxMoveMeters is the bounded-motion validation limit per update
	// against the user's last published location (default 200, the
	// paper's 200 m / 10 s model; negative disables the check).
	MaxMoveMeters float64
	// SkipVerify disables the defence-in-depth policy verification before
	// each snapshot swap. Verification re-derives masking and k-anonymity
	// from first principles (internal/verify); leave it on in production.
	SkipVerify bool
	// VerifyEvery sets the full-verification cadence for delta publishes:
	// every VerifyEvery-th publish is verified in full (verify.Policy,
	// including the Definition 6 witness), the others delta-scoped
	// (verify.Delta, O(touched cloaks)). 0 or 1 verifies every publish in
	// full. Full (non-delta) publishes are always verified in full.
	VerifyEvery int

	// CheckpointEvery persists state every N applied batches through
	// Checkpoint (0 disables periodic persistence; the final drain always
	// checkpoints when Checkpoint is set).
	CheckpointEvery int
	// Checkpoint persists a freshly published snapshot; it runs on the
	// maintenance loop, so it must not call back into the pipeline.
	Checkpoint func(*Snapshot) error
	// OnSwap observes every published snapshot (including the initial
	// one); it runs on the maintenance loop, so it must not block or call
	// back into the pipeline.
	OnSwap func(*Snapshot)

	// Registry receives the motion_* metric families (default: a private
	// registry).
	Registry *metrics.Registry
	// Logger receives apply/drain diagnostics (nil disables logging).
	Logger *slog.Logger
	// Flight, when set (and BaseContext carries an obs tracer), opens a
	// trace capture around every applied batch and retains its span tree
	// into the recorder when the batch fell back to a full rebuild or the
	// apply errored — the motion analogue of the server's tail sampling.
	// Fallbacks and errors are also pinned to the recorder's event ring.
	Flight *flight.Recorder
	// BaseContext is the maintenance loop's context, e.g. to carry an
	// obs.Tracer (default context.Background()).
	BaseContext context.Context
}

// withDefaults validates and completes the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.K < 1 {
		return c, fmt.Errorf("motion: K must be >= 1, got %d", c.K)
	}
	if c.Engine == "" {
		c.Engine = engine.DefaultName
	}
	if _, err := engine.Get(c.Engine); err != nil {
		return c, err
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 4096
	}
	if c.QueueCapacity < 1 {
		return c, fmt.Errorf("motion: QueueCapacity must be >= 1, got %d", c.QueueCapacity)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 512
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("motion: MaxBatch must be >= 1, got %d", c.MaxBatch)
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.FlushInterval < 0 {
		return c, fmt.Errorf("motion: FlushInterval must be positive, got %v", c.FlushInterval)
	}
	switch c.Strategy {
	case "":
		c.Strategy = StrategyAuto
	case StrategyAuto, StrategyIncremental, StrategyRebuild:
	default:
		return c, fmt.Errorf("motion: unknown strategy %q", c.Strategy)
	}
	info, _ := engine.InfoOf(c.Engine)
	if c.Strategy == StrategyIncremental && !info.Incremental {
		return c, fmt.Errorf("motion: engine %q is not incremental-capable", c.Engine)
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 0.25
	}
	if c.MaxMoveMeters == 0 {
		c.MaxMoveMeters = 200
	}
	if c.VerifyEvery < 0 {
		return c, fmt.Errorf("motion: VerifyEvery must be >= 0, got %d", c.VerifyEvery)
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("motion: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	return c, nil
}

// Snapshot is one published (location clone, policy) pair. Snapshots are
// immutable after publication; readers may hold them indefinitely.
type Snapshot struct {
	// Policy is the cloak assignment, bound to an immutable clone of the
	// location DB as it stood when the producing batch finished applying.
	Policy *lbs.Assignment
	// K and Bounds echo the pipeline configuration so a snapshot is a
	// self-contained persistence record: a Checkpoint callback can save
	// it without reaching back into the pipeline (or any lock).
	K      int
	Bounds geo.Rect
	// Epoch counts published snapshots, starting at 1 for the initial one.
	Epoch int64
	// Strategy records how this snapshot was produced: "initial",
	// "incremental", or "rebuild".
	Strategy string
	// Moves is the number of coalesced moves the producing batch applied.
	Moves int
	// Rows is the number of configuration-matrix rows recomputed
	// (incremental) or the full snapshot size (rebuild).
	Rows int
	// RowsExtracted is the number of tree nodes the policy-exhibition pass
	// re-assigned: O(dirty subtrees) for delta publishes, |D| otherwise.
	RowsExtracted int
	// CloaksChanged is the number of per-user cloak rewrites this snapshot
	// carries relative to its predecessor (|D| for full publishes).
	CloaksChanged int
	// Delta marks a snapshot published through the copy-on-write
	// ApplyDelta path, sharing unchanged storage with its predecessor.
	Delta bool
	// Fallback marks a snapshot produced by the full-rebuild recovery of a
	// failed incremental batch.
	Fallback bool
	// AppliedAt is when the snapshot was published.
	AppliedAt time.Time
	// ApplyTime is the wall time of the producing apply (maintenance +
	// extraction + verification).
	ApplyTime time.Duration
}

// queued is one validated update inside the queue: the record index is
// resolved at the boundary so the loop never does map lookups.
type queued struct {
	idx int
	to  geo.Point
}

// Stats is a point-in-time view of the pipeline.
type Stats struct {
	Epoch          int64   `json:"epoch"`
	QueueDepth     int     `json:"queueDepth"`
	QueueCapacity  int     `json:"queueCapacity"`
	Enqueued       int64   `json:"enqueued"`
	Dropped        int64   `json:"dropped"`
	Rejected       int64   `json:"rejected"`
	Batches        int64   `json:"batches"`
	Moves          int64   `json:"moves"`
	Rows           int64   `json:"rowsRecomputed"`
	Incremental    int64   `json:"incrementalApplies"`
	Rebuilds       int64   `json:"rebuildApplies"`
	RowsExtracted  int64   `json:"rowsExtracted"`
	CloaksChanged  int64   `json:"cloaksChanged"`
	DeltaPublishes int64   `json:"deltaPublishes"`
	Fallbacks      int64   `json:"fallbacks"`
	VerifyFailures int64   `json:"verifyFailures"`
	Checkpoints    int64   `json:"checkpoints"`
	LastBatch      int     `json:"lastBatch"`
	LastApplyMs    float64 `json:"lastApplyMs"`
	Closed         bool    `json:"closed"`
}

// Pipeline is the streaming-update subsystem. Create with New or
// NewWithState; feed with Enqueue; read with Snapshot/Policy; stop with
// Close.
type Pipeline struct {
	cfg Config
	m   *maintainer

	q      chan queued
	sendMu sync.RWMutex // write-held only by Close; guards closed+q close
	closed bool

	// front is the published buffer of the double-buffered snapshot; the
	// maintenance loop owns the back buffer it is building.
	front atomic.Pointer[Snapshot]

	done      chan struct{}
	closeOnce sync.Once

	enqueued       atomic.Int64
	dropped        atomic.Int64
	rejected       atomic.Int64
	batches        atomic.Int64
	moves          atomic.Int64
	rows           atomic.Int64
	incremental    atomic.Int64
	rebuilds       atomic.Int64
	rowsExtracted  atomic.Int64
	cloaksChanged  atomic.Int64
	deltaPublishes atomic.Int64
	fallbacks      atomic.Int64
	verifyFailures atomic.Int64
	checkpoints    atomic.Int64
	lastBatch      atomic.Int64
	lastApplyNs    atomic.Int64
	isClosed       atomic.Bool
}

// New builds the initial policy over db (taking ownership of it) and
// starts the maintenance loop.
func New(db *location.DB, bounds geo.Rect, cfg Config) (*Pipeline, error) {
	return NewWithState(db, bounds, cfg, nil, nil)
}

// NewWithState is New for callers that already computed the snapshot's
// state (e.g. the HTTP server after /v1/snapshot): anon, when non-nil, is
// adopted as the live configuration matrix; policy, when non-nil, is
// republished (rebound to an immutable clone) instead of being recomputed.
// The pipeline takes ownership of db and anon.
func NewWithState(db *location.DB, bounds geo.Rect, cfg Config, anon *core.Anonymizer, policy *lbs.Assignment) (*Pipeline, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if db.Len() < cfg.K {
		return nil, fmt.Errorf("motion: %d users below k=%d", db.Len(), cfg.K)
	}
	m, err := newMaintainer(db, bounds, cfg)
	if err != nil {
		return nil, err
	}
	m.anon = anon
	p := &Pipeline{
		cfg:  cfg,
		m:    m,
		q:    make(chan queued, cfg.QueueCapacity),
		done: make(chan struct{}),
	}
	initial, err := p.initialSnapshot(policy)
	if err != nil {
		return nil, err
	}
	p.publish(initial)
	go p.loop()
	return p, nil
}

// initialSnapshot republishes (or computes) the epoch-1 snapshot.
func (p *Pipeline) initialSnapshot(policy *lbs.Assignment) (*Snapshot, error) {
	start := time.Now()
	if policy == nil {
		built, _, err := p.m.rebuild(p.cfg.BaseContext)
		if err != nil {
			return nil, err
		}
		policy = built
	}
	// Rebind to an immutable clone: the caller's policy references the
	// live DB the maintenance loop is about to mutate.
	pub, err := p.m.rebind(policy)
	if err != nil {
		return nil, err
	}
	if err := p.m.verify(pub); err != nil {
		return nil, err
	}
	// Anchor the delta chain: subsequent incremental batches derive their
	// published assignments from this one via ApplyDelta.
	p.m.notePublished(pub)
	return &Snapshot{
		Policy:        pub,
		K:             p.cfg.K,
		Bounds:        p.m.bounds,
		Epoch:         1,
		Strategy:      "initial",
		Rows:          pub.Len(),
		RowsExtracted: pub.Len(),
		CloaksChanged: pub.Len(),
		AppliedAt:     start,
		ApplyTime:     time.Since(start),
	}, nil
}

// Snapshot returns the currently published snapshot. It never blocks.
func (p *Pipeline) Snapshot() *Snapshot { return p.front.Load() }

// Policy returns the currently published policy. It never blocks.
func (p *Pipeline) Policy() *lbs.Assignment { return p.front.Load().Policy }

// Epoch returns the published snapshot's epoch.
func (p *Pipeline) Epoch() int64 { return p.front.Load().Epoch }

// Config returns the pipeline's effective (defaulted) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Stats returns a point-in-time view of the pipeline's accounting.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Epoch:          p.Epoch(),
		QueueDepth:     len(p.q),
		QueueCapacity:  p.cfg.QueueCapacity,
		Enqueued:       p.enqueued.Load(),
		Dropped:        p.dropped.Load(),
		Rejected:       p.rejected.Load(),
		Batches:        p.batches.Load(),
		Moves:          p.moves.Load(),
		Rows:           p.rows.Load(),
		Incremental:    p.incremental.Load(),
		Rebuilds:       p.rebuilds.Load(),
		RowsExtracted:  p.rowsExtracted.Load(),
		CloaksChanged:  p.cloaksChanged.Load(),
		DeltaPublishes: p.deltaPublishes.Load(),
		Fallbacks:      p.fallbacks.Load(),
		VerifyFailures: p.verifyFailures.Load(),
		Checkpoints:    p.checkpoints.Load(),
		LastBatch:      int(p.lastBatch.Load()),
		LastApplyMs:    float64(p.lastApplyNs.Load()) / 1e6,
		Closed:         p.isClosed.Load(),
	}
}

// Validate checks one update against the published snapshot without
// enqueueing it. Failures bump the per-reason motion_rejected counters.
func (p *Pipeline) Validate(u Update) error {
	_, err := p.validate(u)
	return err
}

// validate resolves and checks an update, returning its queued form.
func (p *Pipeline) validate(u Update) (queued, error) {
	reject := func(reason, detail string) (queued, error) {
		p.rejected.Add(1)
		p.cfg.Registry.Counter("motion_rejected").Inc()
		p.cfg.Registry.Counter("motion_rejected:" + reason).Inc()
		return queued{}, &RejectError{Reason: reason, Detail: detail}
	}
	if math.IsNaN(u.X) || math.IsNaN(u.Y) || math.IsInf(u.X, 0) || math.IsInf(u.Y, 0) {
		return reject(ReasonNonFinite, fmt.Sprintf("user %q moved to (%v,%v)", u.UserID, u.X, u.Y))
	}
	b := p.m.bounds
	if u.X < float64(b.MinX) || u.X >= float64(b.MaxX) || u.Y < float64(b.MinY) || u.Y >= float64(b.MaxY) {
		return reject(ReasonOutOfBounds, fmt.Sprintf("user %q moved to (%v,%v) outside %v", u.UserID, u.X, u.Y, b))
	}
	to := geo.Point{X: int32(math.Floor(u.X)), Y: int32(math.Floor(u.Y))}
	// Resolve against the published clone: same users, same insertion
	// order as the live DB, and reading it is lock-free.
	pub := p.front.Load().Policy.DB()
	idx := pub.Index(u.UserID)
	if idx < 0 {
		return reject(ReasonUnknownUser, fmt.Sprintf("user %q not in the snapshot", u.UserID))
	}
	if max := p.cfg.MaxMoveMeters; max >= 0 {
		from := pub.At(idx).Loc
		dx, dy := u.X-float64(from.X), u.Y-float64(from.Y)
		if dist := math.Hypot(dx, dy); dist > max {
			return reject(ReasonSpeed, fmt.Sprintf(
				"user %q moved %.0f m since the last published snapshot (bound %.0f m)", u.UserID, dist, max))
		}
	}
	return queued{idx: idx, to: to}, nil
}

// Enqueue validates one update and admits it to the ingest queue. It
// returns a *RejectError for invalid updates, ErrQueueFull when the Drop
// policy sheds load, ErrClosed after Close, or the context error when the
// Block policy waits past the caller's deadline.
func (p *Pipeline) Enqueue(ctx context.Context, u Update) error {
	it, err := p.validate(u)
	if err != nil {
		return err
	}
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	switch p.cfg.Policy {
	case Drop:
		select {
		case p.q <- it:
		default:
			p.dropped.Add(1)
			p.cfg.Registry.Counter("motion_dropped").Inc()
			return ErrQueueFull
		}
	default: // Block
		select {
		case p.q <- it:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	p.enqueued.Add(1)
	p.cfg.Registry.Counter("motion_enqueued").Inc()
	p.cfg.Registry.Gauge("motion_queue_depth").Set(int64(len(p.q)))
	return nil
}

// Close stops accepting moves, drains the ingest queue, applies the final
// batch, writes a final checkpoint (when configured), and returns once
// the maintenance loop has exited or ctx expires. It is idempotent.
func (p *Pipeline) Close(ctx context.Context) error {
	p.closeOnce.Do(func() {
		p.isClosed.Store(true)
		p.sendMu.Lock()
		p.closed = true
		close(p.q)
		p.sendMu.Unlock()
	})
	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("motion: drain interrupted: %w", ctx.Err())
	}
}

// loop is the maintenance goroutine: batch, coalesce, apply, swap.
func (p *Pipeline) loop() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]queued, 0, p.cfg.MaxBatch)
	flush := func() {
		if len(batch) > 0 {
			p.apply(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case it, ok := <-p.q:
			if !ok {
				// Drain complete: the queue is closed and empty.
				flush()
				p.finalCheckpoint()
				return
			}
			batch = append(batch, it)
			p.cfg.Registry.Gauge("motion_queue_depth").Set(int64(len(p.q)))
			if len(batch) >= p.cfg.MaxBatch {
				flush()
			}
		case <-ticker.C:
			flush()
		}
	}
}

// apply coalesces one batch per user (last write wins), applies it through
// the maintainer, and publishes the resulting snapshot. With a flight
// recorder configured, the batch runs inside a trace capture whose span
// tree is retained when the batch is interesting (fallback or error).
func (p *Pipeline) apply(batch []queued) {
	base := p.cfg.BaseContext
	var cap *obs.Capture
	if p.cfg.Flight != nil && obs.TracerFrom(base) != nil {
		cap = obs.NewCapture(flight.MintTraceID(), 0)
		base = obs.WithCapture(base, cap)
	}
	wallStart := time.Now()
	fellBack, applyErr := p.applyBatch(base, batch)
	if cap != nil {
		p.recordFlight(cap, wallStart, time.Since(wallStart), len(batch), fellBack, applyErr)
	}
}

// recordFlight is the motion side of tail-based sampling: fallbacks and
// apply errors land in the flight recorder's event ring, and their
// batch's full span tree is retained for GET /v1/debug/trace.
func (p *Pipeline) recordFlight(cap *obs.Capture, start time.Time, elapsed time.Duration, batchLen int, fellBack bool, applyErr error) {
	rec := p.cfg.Flight
	var reasons []string
	if applyErr != nil {
		reasons = append(reasons, flight.ReasonError)
		rec.Emit(&flight.Event{
			Time: time.Now(), Kind: "motion_apply_error",
			TraceID: cap.TraceID(), Detail: applyErr.Error(),
		})
	}
	if fellBack {
		reasons = append(reasons, flight.ReasonFallback)
		rec.Emit(&flight.Event{
			Time: time.Now(), Kind: "motion_fallback",
			TraceID: cap.TraceID(), Detail: fmt.Sprintf("batch of %d fell back to full rebuild", batchLen),
		})
	}
	reasons = append(reasons, cap.Marks()...)
	if len(reasons) == 0 {
		return
	}
	rec.Retain(&flight.Trace{
		TraceID: cap.TraceID(), Route: "motion.batch",
		Start: start, Dur: elapsed, Reasons: reasons,
		Spans: cap.Spans(), SpansDropped: cap.Dropped(),
	})
}

func (p *Pipeline) applyBatch(base context.Context, batch []queued) (fellBack bool, applyErr error) {
	ctx, sp := obs.Start(base, "motion.apply")
	if sp != nil {
		sp.SetInt("batch", int64(len(batch)))
		defer sp.End()
	}
	// Coalesce: one DB/matrix touch per user however often it moved while
	// queued. Iterating in arrival order makes the last update win.
	coalesced := make(map[int]geo.Point, len(batch))
	for _, it := range batch {
		coalesced[it.idx] = it.to
	}
	start := time.Now()
	res, err := p.m.apply(ctx, coalesced)
	if err != nil {
		// An apply error leaves the previous snapshot published; moves of
		// the failed batch stay applied to the live DB and are re-covered
		// by the next batch's maintenance (rebuilds always re-derive from
		// the live DB).
		p.verifyFailures.Add(1)
		p.cfg.Registry.Counter("motion_verify_failures").Inc()
		if p.cfg.Logger != nil {
			p.cfg.Logger.Error("motion apply failed", "err", err, "batch", len(batch))
		}
		return false, err
	}
	elapsed := time.Since(start)
	prev := p.front.Load()
	next := &Snapshot{
		Policy:        res.policy,
		K:             p.cfg.K,
		Bounds:        p.m.bounds,
		Epoch:         prev.Epoch + 1,
		Strategy:      string(res.strategy),
		Moves:         len(coalesced),
		Rows:          res.rows,
		RowsExtracted: res.rowsExtracted,
		CloaksChanged: res.cloaksChanged,
		Delta:         res.delta,
		Fallback:      res.fallback,
		AppliedAt:     time.Now(),
		ApplyTime:     elapsed,
	}
	// Account before publishing: anyone who observes the new epoch also
	// observes counters that cover it (readers adopt snapshots keyed on
	// the epoch and copy Stats at adoption time).
	p.batches.Add(1)
	p.moves.Add(int64(len(coalesced)))
	p.rows.Add(int64(res.rows))
	p.rowsExtracted.Add(int64(res.rowsExtracted))
	p.cloaksChanged.Add(int64(res.cloaksChanged))
	if res.delta {
		p.deltaPublishes.Add(1)
	}
	if res.fallback {
		p.fallbacks.Add(1)
	}
	p.lastBatch.Store(int64(len(coalesced)))
	p.lastApplyNs.Store(elapsed.Nanoseconds())
	p.publish(next)

	reg := p.cfg.Registry
	reg.Counter("motion_batches").Inc()
	reg.Counter("motion_moves").Add(int64(len(coalesced)))
	reg.Counter("motion_rows_extracted").Add(int64(res.rowsExtracted))
	reg.Counter("motion_cloaks_changed").Add(int64(res.cloaksChanged))
	reg.ValueHistogram("motion_batch_size").Observe(int64(len(coalesced)))
	reg.Histogram("motion_apply_latency").Observe(elapsed)
	reg.Gauge("motion_epoch").Set(next.Epoch)
	reg.Gauge("motion_queue_depth").Set(int64(len(p.q)))
	if res.strategy == StrategyIncremental {
		p.incremental.Add(1)
		reg.Counter("motion_apply_incremental").Inc()
	} else {
		p.rebuilds.Add(1)
		reg.Counter("motion_apply_rebuild").Inc()
	}
	if res.delta {
		reg.Counter("motion_delta_publishes").Inc()
	}
	if res.fallback {
		reg.Counter("motion_fallback_total").Inc()
	}
	if sp != nil {
		sp.SetAttr("strategy", string(res.strategy))
		sp.SetInt("moves", int64(len(coalesced)))
		sp.SetInt("rows", int64(res.rows))
		sp.SetInt("rows_extracted", int64(res.rowsExtracted))
		sp.SetInt("cloaks_changed", int64(res.cloaksChanged))
		if res.delta {
			sp.SetAttr("publish", "delta")
		} else {
			sp.SetAttr("publish", "full")
		}
	}
	if p.cfg.Logger != nil {
		p.cfg.Logger.Debug("motion batch applied",
			"epoch", next.Epoch, "strategy", next.Strategy,
			"moves", next.Moves, "rows", res.rows,
			"rowsExtracted", res.rowsExtracted, "cloaksChanged", res.cloaksChanged,
			"delta", res.delta, "fallback", res.fallback,
			"ms", float64(elapsed.Microseconds())/1000)
	}
	if n := p.cfg.CheckpointEvery; n > 0 && p.cfg.Checkpoint != nil && p.batches.Load()%int64(n) == 0 {
		p.checkpoint(next)
	}
	return res.fallback, nil
}

// publish swaps the snapshot front buffer and notifies the observer.
func (p *Pipeline) publish(s *Snapshot) {
	p.front.Store(s)
	if p.cfg.OnSwap != nil {
		p.cfg.OnSwap(s)
	}
}

// checkpoint persists one snapshot, counting failures instead of dying:
// persistence is best-effort, serving is not.
func (p *Pipeline) checkpoint(s *Snapshot) {
	if err := p.cfg.Checkpoint(s); err != nil {
		p.cfg.Registry.Counter("motion_checkpoint_failures").Inc()
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("motion checkpoint failed", "epoch", s.Epoch, "err", err)
		}
		return
	}
	p.checkpoints.Add(1)
	p.cfg.Registry.Counter("motion_checkpoints").Inc()
}

// finalCheckpoint persists the last published snapshot during drain.
func (p *Pipeline) finalCheckpoint() {
	if p.cfg.Checkpoint == nil {
		return
	}
	p.checkpoint(p.front.Load())
	if p.cfg.Logger != nil {
		p.cfg.Logger.Info("motion final checkpoint", "epoch", p.Epoch(), "moves", p.moves.Load())
	}
}
