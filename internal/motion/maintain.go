package motion

import (
	"context"
	"errors"
	"fmt"

	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/verify"
)

// maintainer owns the live location state and applies coalesced batches to
// it. Every field is confined to the maintenance loop after construction
// (construction itself runs before the loop starts, so no locks are
// needed anywhere here).
type maintainer struct {
	db     *location.DB
	bounds geo.Rect
	cfg    Config
	eng    engine.Engine
	info   engine.Info
	params engine.Params

	// anon is the live configuration matrix (Section V); non-nil only for
	// Incremental-capable engines once a matrix has been built. Rebuilds
	// replace it so later batches can go back to incremental maintenance.
	anon *core.Anonymizer

	// lastPub is the most recently published assignment when the delta
	// chain is intact: the next delta publish derives from it via
	// ApplyDelta, sharing all unchanged storage. It is nil whenever the
	// matrix baseline and the published assignment may disagree (before the
	// first publish, after a failed publish, after a rebuild starts) —
	// then the next publish goes from scratch and re-anchors the chain.
	lastPub *lbs.Assignment
	// publishes counts successful publishes, driving the VerifyEvery
	// full-verification cadence.
	publishes int64
}

// verifyError wraps a failure of the publish-gate verification. apply
// distinguishes it from maintenance failures: a policy that fails
// verification must surface (rebuilding would re-derive the same policy),
// while a mid-batch maintenance failure is recovered by a rebuild.
type verifyError struct{ err error }

func (e *verifyError) Error() string { return e.err.Error() }
func (e *verifyError) Unwrap() error { return e.err }

func newMaintainer(db *location.DB, bounds geo.Rect, cfg Config) (*maintainer, error) {
	eng, err := engine.Get(cfg.Engine)
	if err != nil {
		return nil, err
	}
	info, _ := engine.InfoOf(cfg.Engine)
	return &maintainer{
		db:     db,
		bounds: bounds,
		cfg:    cfg,
		eng:    eng,
		info:   info,
		params: engine.Params{K: cfg.K, Opts: cfg.Opts},
	}, nil
}

// choose dispatches one batch to a maintenance strategy, driven by the
// engine's Incremental capability flag and the batch's churn fraction:
// Section V's incremental maintenance recomputes only the matrix rows
// whose relevant-subtree contents changed, which wins while batches move
// a small fraction of users and loses to a from-scratch rebuild past the
// RebuildThreshold.
func (m *maintainer) choose(moves int) Strategy {
	switch m.cfg.Strategy {
	case StrategyIncremental:
		return StrategyIncremental
	case StrategyRebuild:
		return StrategyRebuild
	}
	if !m.info.Incremental || m.anon == nil {
		return StrategyRebuild
	}
	if float64(moves) > m.cfg.RebuildThreshold*float64(m.db.Len()) {
		return StrategyRebuild
	}
	return StrategyIncremental
}

// applyResult describes one successful batch apply, ready to publish.
type applyResult struct {
	policy   *lbs.Assignment
	strategy Strategy
	// rows is the number of configuration-matrix rows recomputed
	// (incremental) or the snapshot size (rebuild).
	rows int
	// rowsExtracted is the number of tree nodes the policy-exhibition pass
	// re-assigned: O(dirty subtrees) on the delta path, the full node walk
	// otherwise (reported as |D|).
	rowsExtracted int
	// cloaksChanged is the number of cloak rewrites a delta publish
	// carried; full publishes rewrite everything and report |D|.
	cloaksChanged int
	// delta marks a publish through the copy-on-write ApplyDelta path.
	delta bool
	// fallback marks a batch whose incremental maintenance failed mid-way
	// and was recovered by a full rebuild.
	fallback bool
}

// apply performs one coalesced batch against the live state and returns
// the next policy bound to an immutable snapshot (a copy-on-write delta of
// the previous one when possible, a full clone otherwise), verified and
// ready to publish. A mid-batch incremental maintenance failure — which
// leaves the matrix inconsistent with the live DB — is recovered by
// falling back to a full rebuild instead of failing the batch.
func (m *maintainer) apply(ctx context.Context, moves map[int]geo.Point) (applyResult, error) {
	if m.choose(len(moves)) == StrategyIncremental {
		res, err := m.applyIncremental(ctx, moves)
		if err == nil {
			return res, nil
		}
		var ve *verifyError
		if errors.As(err, &ve) {
			// The extracted policy itself failed the publish gate; a
			// rebuild would re-derive it, so surface instead of masking.
			return applyResult{}, ve.err
		}
		res, ferr := m.applyRebuild(ctx, moves)
		if ferr != nil {
			var fve *verifyError
			if errors.As(ferr, &fve) {
				ferr = fve.err
			}
			return applyResult{}, fmt.Errorf(
				"motion: incremental maintenance failed (%v); rebuild fallback: %w", err, ferr)
		}
		res.fallback = true
		return res, nil
	}
	res, err := m.applyRebuild(ctx, moves)
	if err != nil {
		var ve *verifyError
		if errors.As(err, &ve) {
			err = ve.err
		}
		return applyResult{}, err
	}
	return res, nil
}

// applyIncremental maintains the live matrix through the batch and
// publishes a delta when the chain allows it: ExtractDelta re-assigns only
// dirty subtrees and ApplyDelta derives the next published assignment from
// the previous one without cloning the DB or the cloaks. Any break in the
// chain (no baseline, stale parent, adoption mismatch) degrades to the
// full extract-rebind path within the same batch.
func (m *maintainer) applyIncremental(ctx context.Context, moves map[int]geo.Point) (applyResult, error) {
	if m.anon == nil {
		// Forced-incremental pipeline adopted a policy without a
		// matrix: build one over the pre-move state, then maintain it.
		if _, _, err := m.rebuild(ctx); err != nil {
			return applyResult{}, err
		}
	}
	// Capture From locations before mutating: ApplyDelta validates them
	// against the parent assignment, whose contents match the live DB
	// exactly while the chain is intact.
	var mvs []lbs.Move
	if m.lastPub != nil {
		mvs = make([]lbs.Move, 0, len(moves))
		for idx, to := range moves {
			mvs = append(mvs, lbs.Move{Index: idx, From: m.db.At(idx).Loc, To: to})
		}
	}
	for idx, to := range moves {
		if err := m.anon.Move(idx, to); err != nil {
			return applyResult{}, err
		}
	}
	rows := m.anon.Refresh()
	res := applyResult{strategy: StrategyIncremental, rows: rows}
	if m.lastPub != nil {
		changes, visited, err := m.anon.Matrix().ExtractDelta()
		if err == nil {
			pub, aerr := m.lastPub.ApplyDelta(mvs, changes)
			if aerr == nil {
				res.policy = pub
				res.rowsExtracted = visited
				res.cloaksChanged = len(changes)
				res.delta = true
				if verr := m.verifyPub(pub); verr != nil {
					// The matrix baseline advanced past lastPub when
					// ExtractDelta succeeded; the chain is broken.
					m.lastPub = nil
					return applyResult{}, &verifyError{verr}
				}
				m.notePublished(pub)
				return res, nil
			}
			// The delta does not match the published parent (e.g. an
			// adopted policy differing from the matrix baseline). The
			// matrix has already absorbed the changes, so drop the chain
			// and publish from scratch; ApplyDelta's validation makes this
			// self-healing rather than silently corrupting.
			m.lastPub = nil
		}
		// ErrNoDeltaBaseline (fresh matrix) falls through likewise; other
		// extraction errors will recur below and surface there.
	}
	policy, err := m.anon.Policy()
	if err != nil {
		return applyResult{}, err
	}
	pub, err := m.rebind(policy)
	if err != nil {
		m.lastPub = nil
		return applyResult{}, err
	}
	res.policy = pub
	res.rowsExtracted = pub.Len()
	res.cloaksChanged = pub.Len()
	if verr := m.verifyPub(pub); verr != nil {
		m.lastPub = nil
		return applyResult{}, &verifyError{verr}
	}
	m.notePublished(pub)
	return res, nil
}

// applyRebuild applies the batch straight to the live DB and recomputes
// the policy from scratch. Re-applying moves some of which an aborted
// incremental attempt already performed is safe: MoveAt is idempotent on
// contents, and the rebuild re-derives tree and matrix from the DB alone.
func (m *maintainer) applyRebuild(ctx context.Context, moves map[int]geo.Point) (applyResult, error) {
	m.lastPub = nil // chain is broken until this publish lands
	for idx, to := range moves {
		m.db.MoveAt(idx, to)
	}
	policy, rows, err := m.rebuild(ctx)
	if err != nil {
		return applyResult{}, err
	}
	pub, err := m.rebind(policy)
	if err != nil {
		return applyResult{}, err
	}
	res := applyResult{
		policy:        pub,
		strategy:      StrategyRebuild,
		rows:          rows,
		rowsExtracted: pub.Len(),
		cloaksChanged: pub.Len(),
	}
	if verr := m.verifyPub(pub); verr != nil {
		return applyResult{}, &verifyError{verr}
	}
	m.notePublished(pub)
	return res, nil
}

// notePublished re-anchors the delta chain on a successfully verified
// publish and advances the VerifyEvery cadence.
func (m *maintainer) notePublished(pub *lbs.Assignment) {
	m.lastPub = pub
	m.publishes++
}

// rebuild recomputes the policy from scratch over the live DB. For
// Incremental-capable engines it goes through a fresh core maintainer so
// the configuration matrix stays live for subsequent incremental batches;
// other engines are invoked directly.
func (m *maintainer) rebuild(ctx context.Context) (*lbs.Assignment, int, error) {
	if m.info.Incremental {
		dp, err := engine.DPOptions(m.params)
		if err != nil {
			return nil, 0, err
		}
		anon, err := core.NewAnonymizerContext(ctx, m.db, m.bounds, core.AnonymizerOptions{
			K:    m.cfg.K,
			Kind: m.cfg.TreeKind,
			DP:   dp,
		})
		if err != nil {
			return nil, 0, err
		}
		m.anon = anon
		policy, err := anon.Policy()
		if err != nil {
			return nil, 0, err
		}
		return policy, m.db.Len(), nil
	}
	policy, err := m.eng.Anonymize(ctx, m.db, m.bounds, m.params)
	if err != nil {
		return nil, 0, err
	}
	return policy, m.db.Len(), nil
}

// rebind binds a policy to an immutable clone of the live DB: the policy
// returned by the engine or matrix references the live state the loop
// will keep mutating, and published snapshots must never see that.
func (m *maintainer) rebind(policy *lbs.Assignment) (*lbs.Assignment, error) {
	return lbs.NewAssignment(policy.DB().Clone(), policy.Cloaks())
}

// verify is the defence-in-depth gate of every publish (unless disabled):
// masking and k-anonymity re-derived from first principles.
func (m *maintainer) verify(policy *lbs.Assignment) error {
	if m.cfg.SkipVerify {
		return nil
	}
	if rep := verify.Policy(policy, m.cfg.K); !rep.OK() {
		return fmt.Errorf("motion: refusing to publish: %s", rep.Problems[0])
	}
	return nil
}

// verifyPub gates one batch publish. Delta-derived policies are verified
// delta-scoped (O(touched), sound relative to the last fully verified
// ancestor) except every VerifyEvery-th publish, which re-runs the full
// first-principles verification as the anchor; VerifyEvery <= 1 verifies
// every publish in full. Full publishes always verify in full.
func (m *maintainer) verifyPub(pub *lbs.Assignment) error {
	if m.cfg.SkipVerify {
		return nil
	}
	if pub.Delta() != nil && m.cfg.VerifyEvery > 1 && (m.publishes+1)%int64(m.cfg.VerifyEvery) != 0 {
		if rep := verify.Delta(pub, m.cfg.K); !rep.OK() {
			return fmt.Errorf("motion: refusing to publish: %s", rep.Problems[0])
		}
		return nil
	}
	return m.verify(pub)
}
