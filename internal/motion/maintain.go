package motion

import (
	"context"
	"fmt"

	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/verify"
)

// maintainer owns the live location state and applies coalesced batches to
// it. Every field is confined to the maintenance loop after construction
// (construction itself runs before the loop starts, so no locks are
// needed anywhere here).
type maintainer struct {
	db     *location.DB
	bounds geo.Rect
	cfg    Config
	eng    engine.Engine
	info   engine.Info
	params engine.Params

	// anon is the live configuration matrix (Section V); non-nil only for
	// Incremental-capable engines once a matrix has been built. Rebuilds
	// replace it so later batches can go back to incremental maintenance.
	anon *core.Anonymizer
}

func newMaintainer(db *location.DB, bounds geo.Rect, cfg Config) (*maintainer, error) {
	eng, err := engine.Get(cfg.Engine)
	if err != nil {
		return nil, err
	}
	info, _ := engine.InfoOf(cfg.Engine)
	return &maintainer{
		db:     db,
		bounds: bounds,
		cfg:    cfg,
		eng:    eng,
		info:   info,
		params: engine.Params{K: cfg.K, Opts: cfg.Opts},
	}, nil
}

// choose dispatches one batch to a maintenance strategy, driven by the
// engine's Incremental capability flag and the batch's churn fraction:
// Section V's incremental maintenance recomputes only the matrix rows
// whose relevant-subtree contents changed, which wins while batches move
// a small fraction of users and loses to a from-scratch rebuild past the
// RebuildThreshold.
func (m *maintainer) choose(moves int) Strategy {
	switch m.cfg.Strategy {
	case StrategyIncremental:
		return StrategyIncremental
	case StrategyRebuild:
		return StrategyRebuild
	}
	if !m.info.Incremental || m.anon == nil {
		return StrategyRebuild
	}
	if float64(moves) > m.cfg.RebuildThreshold*float64(m.db.Len()) {
		return StrategyRebuild
	}
	return StrategyIncremental
}

// apply performs one coalesced batch against the live state and returns
// the next policy rebound to an immutable snapshot clone, verified and
// ready to publish.
func (m *maintainer) apply(ctx context.Context, moves map[int]geo.Point) (*lbs.Assignment, Strategy, int, error) {
	strategy := m.choose(len(moves))
	var (
		policy *lbs.Assignment
		rows   int
		err    error
	)
	switch strategy {
	case StrategyIncremental:
		if m.anon == nil {
			// Forced-incremental pipeline adopted a policy without a
			// matrix: build one over the pre-move state, then maintain it.
			if _, _, err = m.rebuild(ctx); err != nil {
				return nil, strategy, 0, err
			}
		}
		for idx, to := range moves {
			if err = m.anon.Move(idx, to); err != nil {
				return nil, strategy, 0, err
			}
		}
		rows = m.anon.Refresh()
		policy, err = m.anon.Policy()
	default:
		for idx, to := range moves {
			m.db.MoveAt(idx, to)
		}
		policy, rows, err = m.rebuild(ctx)
	}
	if err != nil {
		return nil, strategy, 0, err
	}
	pub, err := m.rebind(policy)
	if err != nil {
		return nil, strategy, 0, err
	}
	if err := m.verify(pub); err != nil {
		return nil, strategy, 0, err
	}
	return pub, strategy, rows, nil
}

// rebuild recomputes the policy from scratch over the live DB. For
// Incremental-capable engines it goes through a fresh core maintainer so
// the configuration matrix stays live for subsequent incremental batches;
// other engines are invoked directly.
func (m *maintainer) rebuild(ctx context.Context) (*lbs.Assignment, int, error) {
	if m.info.Incremental {
		dp, err := engine.DPOptions(m.params)
		if err != nil {
			return nil, 0, err
		}
		anon, err := core.NewAnonymizerContext(ctx, m.db, m.bounds, core.AnonymizerOptions{
			K:    m.cfg.K,
			Kind: m.cfg.TreeKind,
			DP:   dp,
		})
		if err != nil {
			return nil, 0, err
		}
		m.anon = anon
		policy, err := anon.Policy()
		if err != nil {
			return nil, 0, err
		}
		return policy, m.db.Len(), nil
	}
	policy, err := m.eng.Anonymize(ctx, m.db, m.bounds, m.params)
	if err != nil {
		return nil, 0, err
	}
	return policy, m.db.Len(), nil
}

// rebind binds a policy to an immutable clone of the live DB: the policy
// returned by the engine or matrix references the live state the loop
// will keep mutating, and published snapshots must never see that.
func (m *maintainer) rebind(policy *lbs.Assignment) (*lbs.Assignment, error) {
	return lbs.NewAssignment(policy.DB().Clone(), policy.Cloaks())
}

// verify is the defence-in-depth gate of every publish (unless disabled):
// masking and k-anonymity re-derived from first principles.
func (m *maintainer) verify(policy *lbs.Assignment) error {
	if m.cfg.SkipVerify {
		return nil
	}
	if rep := verify.Policy(policy, m.cfg.K); !rep.OK() {
		return fmt.Errorf("motion: refusing to publish: %s", rep.Problems[0])
	}
	return nil
}
