package motion

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/tree"
	"policyanon/internal/workload"
)

const testSide int32 = 1 << 12

// testDB builds a small skewed population for pipeline tests.
func testDB(t *testing.T, users int, seed int64) *location.DB {
	t.Helper()
	per := 6
	db := workload.Generate(workload.Config{
		MapSide:              testSide,
		Intersections:        users / per,
		UsersPerIntersection: per,
	}, seed)
	if db.Len() != users {
		t.Fatalf("testDB: got %d users, want %d", db.Len(), users)
	}
	return db
}

func testBounds() geo.Rect { return workload.MapBounds(testSide) }

// enqueueMoves feeds n stream moves through the pipeline, addressing
// users by id like the HTTP boundary does.
func enqueueMoves(t *testing.T, p *Pipeline, s *workload.MoveStream, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		mv := s.Next()
		u := Update{UserID: s.UserID(mv.Index), X: float64(mv.To.X), Y: float64(mv.To.Y)}
		if err := p.Enqueue(ctx, u); err != nil {
			t.Fatalf("enqueue move %d: %v", i, err)
		}
	}
}

func closePipeline(t *testing.T, p *Pipeline) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestParityIncrementalVsRebuild is the golden parity check of the
// incremental maintenance (acceptance criterion): after a randomized
// churn sequence flows through the pipeline incrementally, the published
// cloaks must be byte-identical to a from-scratch rebuild over the same
// final positions — across two tree kinds, and clean under -race.
func TestParityIncrementalVsRebuild(t *testing.T) {
	kinds := map[string]tree.Kind{"binary": tree.Binary, "quad": tree.Quad}
	for name, kind := range kinds {
		t.Run(name, func(t *testing.T) {
			const users, k = 300, 20
			db := testDB(t, users, 7)
			p, err := New(db, testBounds(), Config{
				K:             k,
				TreeKind:      kind,
				Strategy:      StrategyIncremental,
				MaxBatch:      64,
				FlushInterval: time.Millisecond,
				MaxMoveMeters: -1, // parity exercises maintenance, not validation
			})
			if err != nil {
				t.Fatal(err)
			}
			// Three full passes over the population: every user moves
			// three times, coalescing and multi-batch maintenance both
			// get exercised.
			stream := workload.NewMoveStream(11, db, 300, testSide)
			enqueueMoves(t, p, stream, 3*users)
			closePipeline(t, p)

			st := p.Stats()
			if st.Rebuilds != 0 || st.Incremental == 0 {
				t.Fatalf("want purely incremental applies, got %d incremental / %d rebuilds", st.Incremental, st.Rebuilds)
			}
			snap := p.Snapshot()
			if snap.Epoch < 2 {
				t.Fatalf("epoch did not advance: %d", snap.Epoch)
			}

			// From-scratch rebuild over the exact final positions.
			fresh, err := core.NewAnonymizer(snap.Policy.DB().Clone(), testBounds(), core.AnonymizerOptions{K: k, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Policy()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < users; i++ {
				if got, w := snap.Policy.CloakAt(i), want.CloakAt(i); got != w {
					t.Fatalf("cloak %d diverged: incremental %v, rebuild %v", i, got, w)
				}
			}
		})
	}
}

// TestRebuildFallback checks the capability/threshold dispatch: a batch
// moving more than RebuildThreshold of the population must fall back to a
// full rebuild under StrategyAuto, and a non-Incremental engine must
// always rebuild.
func TestRebuildFallback(t *testing.T) {
	const users, k = 240, 20
	t.Run("churn-threshold", func(t *testing.T) {
		db := testDB(t, users, 3)
		p, err := New(db, testBounds(), Config{
			K:                k,
			MaxBatch:         users, // one batch swallows the whole burst
			FlushInterval:    time.Hour,
			RebuildThreshold: 0.10,
			MaxMoveMeters:    -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		stream := workload.NewMoveStream(5, db, 300, testSide)
		enqueueMoves(t, p, stream, users/2) // 50% churn >> 10% threshold
		closePipeline(t, p)
		st := p.Stats()
		if st.Rebuilds == 0 {
			t.Fatalf("50%% churn batch should have rebuilt: %+v", st)
		}
	})
	t.Run("non-incremental-engine", func(t *testing.T) {
		db := testDB(t, users, 4)
		p, err := New(db, testBounds(), Config{
			K:             k,
			Engine:        "hilbert", // policy-aware but not Incremental
			MaxBatch:      16,
			FlushInterval: time.Millisecond,
			MaxMoveMeters: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		stream := workload.NewMoveStream(6, db, 150, testSide)
		enqueueMoves(t, p, stream, 64)
		closePipeline(t, p)
		st := p.Stats()
		if st.Incremental != 0 || st.Rebuilds == 0 {
			t.Fatalf("non-incremental engine must always rebuild: %+v", st)
		}
	})
}

// blockedPipeline builds a pipeline whose maintenance loop is parked
// inside OnSwap after consuming exactly one update, so tests can fill the
// queue deterministically. Returns the release function.
func blockedPipeline(t *testing.T, db *location.DB, cfg Config) (*Pipeline, func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	var swaps atomic.Int64
	cfg.K = 10
	cfg.MaxBatch = 1
	cfg.FlushInterval = time.Hour
	cfg.MaxMoveMeters = -1
	cfg.OnSwap = func(*Snapshot) {
		// The initial publish happens on the constructor goroutine;
		// every later swap parks the maintenance loop on the gate.
		if swaps.Add(1) > 1 {
			<-gate
		}
	}
	p, err := New(db, testBounds(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		closePipeline(t, p)
	})
	return p, release
}

// fillQueue enqueues one consumed update, waits until the loop is parked,
// then fills the queue to capacity.
func fillQueue(t *testing.T, p *Pipeline, s *workload.MoveStream) {
	t.Helper()
	enqueueMoves(t, p, s, 1)
	// Wait for the loop to consume it (queue back to empty) before
	// measuring capacity.
	deadline := time.Now().Add(10 * time.Second)
	for len(p.q) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintenance loop never consumed the first update")
		}
		time.Sleep(time.Millisecond)
	}
	enqueueMoves(t, p, s, p.cfg.QueueCapacity)
}

// TestBackpressureDrop asserts the Drop policy sheds load with
// ErrQueueFull instead of growing the queue without bound.
func TestBackpressureDrop(t *testing.T) {
	db := testDB(t, 120, 8)
	p, release := blockedPipeline(t, db, Config{QueueCapacity: 8, Policy: Drop})
	stream := workload.NewMoveStream(9, db, 150, testSide)
	fillQueue(t, p, stream)

	mv := stream.Next()
	err := p.Enqueue(context.Background(), Update{UserID: stream.UserID(mv.Index), X: float64(mv.To.X), Y: float64(mv.To.Y)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue under Drop: got %v, want ErrQueueFull", err)
	}
	if st := p.Stats(); st.Dropped != 1 || st.QueueDepth != st.QueueCapacity {
		t.Fatalf("drop accounting: %+v", st)
	}
	release()
}

// TestBackpressureBlock asserts the Block policy makes Enqueue wait for
// queue space, bounded by the caller's context.
func TestBackpressureBlock(t *testing.T) {
	db := testDB(t, 120, 8)
	p, release := blockedPipeline(t, db, Config{QueueCapacity: 8, Policy: Block})
	stream := workload.NewMoveStream(9, db, 150, testSide)
	fillQueue(t, p, stream)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	mv := stream.Next()
	err := p.Enqueue(ctx, Update{UserID: stream.UserID(mv.Index), X: float64(mv.To.X), Y: float64(mv.To.Y)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full queue under Block: got %v, want DeadlineExceeded", err)
	}
	if st := p.Stats(); st.Dropped != 0 {
		t.Fatalf("Block must not count drops: %+v", st)
	}
	// Released, the loop drains and a bounded Enqueue succeeds again.
	release()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	mv = stream.Next()
	if err := p.Enqueue(ctx2, Update{UserID: stream.UserID(mv.Index), X: float64(mv.To.X), Y: float64(mv.To.Y)}); err != nil {
		t.Fatalf("enqueue after release: %v", err)
	}
}

// TestDrainNoBatchLost is the graceful-shutdown guarantee: everything
// accepted before Close must be applied and visible in the final
// snapshot, and the final checkpoint must see it too.
func TestDrainNoBatchLost(t *testing.T) {
	const users = 150
	db := testDB(t, users, 12)
	var checkpointed atomic.Pointer[Snapshot]
	p, err := New(db, testBounds(), Config{
		K:             10,
		MaxBatch:      32,
		FlushInterval: time.Hour, // flushes driven by size + drain only
		MaxMoveMeters: -1,
		Checkpoint: func(s *Snapshot) error {
			checkpointed.Store(s)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One move per distinct user: coalescing is the identity, so every
	// accepted update must survive as exactly one applied move.
	stream := workload.NewMoveStream(13, db, 150, testSide)
	moves := make([]workload.Move, users)
	ctx := context.Background()
	for i := range moves {
		moves[i] = stream.Next()
		u := Update{UserID: stream.UserID(moves[i].Index), X: float64(moves[i].To.X), Y: float64(moves[i].To.Y)}
		if err := p.Enqueue(ctx, u); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	closePipeline(t, p)

	st := p.Stats()
	if st.Moves != users {
		t.Fatalf("drain lost moves: applied %d of %d accepted", st.Moves, users)
	}
	final := p.Snapshot().Policy.DB()
	for _, mv := range moves {
		if got := final.At(mv.Index).Loc; got != mv.To {
			t.Fatalf("user %d: final snapshot at %v, move said %v", mv.Index, got, mv.To)
		}
	}
	ck := checkpointed.Load()
	if ck == nil {
		t.Fatal("drain did not write a final checkpoint")
	}
	if ck.Epoch != p.Epoch() {
		t.Fatalf("final checkpoint at epoch %d, pipeline at %d", ck.Epoch, p.Epoch())
	}
	// Closed pipeline rejects further traffic.
	if err := p.Enqueue(ctx, Update{UserID: db.At(0).UserID, X: 1, Y: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: got %v, want ErrClosed", err)
	}
	// Close is idempotent.
	closePipeline(t, p)
}

// TestValidation covers the ingest-boundary rejections: non-finite and
// out-of-bounds coordinates, unknown users, and bounded-motion (speed)
// violations, each with its distinct reason.
func TestValidation(t *testing.T) {
	db := testDB(t, 120, 14)
	p, err := New(db, testBounds(), Config{K: 10, MaxMoveMeters: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer closePipeline(t, p)
	// Pick a user comfortably interior to the map so the speed case
	// cannot accidentally trip the bounds check instead.
	interior := -1
	for i := 0; i < db.Len(); i++ {
		l := db.At(i).Loc
		if l.X > 300 && l.Y > 300 && l.X < testSide-300 && l.Y < testSide-300 {
			interior = i
			break
		}
	}
	if interior < 0 {
		t.Fatal("no interior user in the test population")
	}
	known := db.At(interior).UserID
	loc := db.At(interior).Loc
	cases := []struct {
		name   string
		u      Update
		reason string
	}{
		{"nan", Update{UserID: known, X: math.NaN(), Y: 10}, ReasonNonFinite},
		{"inf", Update{UserID: known, X: 10, Y: math.Inf(1)}, ReasonNonFinite},
		{"negative", Update{UserID: known, X: -5, Y: 10}, ReasonOutOfBounds},
		{"past-edge", Update{UserID: known, X: float64(testSide), Y: 10}, ReasonOutOfBounds},
		{"unknown-user", Update{UserID: "nobody", X: 10, Y: 10}, ReasonUnknownUser},
		{"speed", Update{UserID: known, X: float64(loc.X), Y: float64(loc.Y) + 201}, ReasonSpeed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := p.Enqueue(context.Background(), tc.u)
			var rej *RejectError
			if !errors.As(err, &rej) {
				t.Fatalf("got %v, want RejectError", err)
			}
			if rej.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", rej.Reason, tc.reason)
			}
		})
	}
	if st := p.Stats(); st.Rejected != int64(len(cases)) || st.Enqueued != 0 {
		t.Fatalf("rejection accounting: %+v", st)
	}
	// A bounded move from the published location is accepted.
	ok := Update{UserID: known, X: float64(loc.X), Y: float64(loc.Y) + 150}
	if err := p.Enqueue(context.Background(), ok); err != nil {
		t.Fatalf("bounded move rejected: %v", err)
	}
}

// TestCheckpointCadence asserts periodic persistence fires every
// CheckpointEvery batches plus once at drain.
func TestCheckpointCadence(t *testing.T) {
	const users = 120
	db := testDB(t, users, 15)
	var calls atomic.Int64
	p, err := New(db, testBounds(), Config{
		K:               10,
		MaxBatch:        10,
		FlushInterval:   time.Hour,
		MaxMoveMeters:   -1,
		CheckpointEvery: 2,
		Checkpoint:      func(*Snapshot) error { calls.Add(1); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.NewMoveStream(16, db, 150, testSide)
	enqueueMoves(t, p, stream, 40) // 4 full batches of 10
	closePipeline(t, p)
	// 4 batches / every 2 = 2 periodic checkpoints, plus the final one.
	if got := calls.Load(); got < 3 {
		t.Fatalf("checkpoint calls = %d, want >= 3", got)
	}
	if st := p.Stats(); st.Checkpoints != calls.Load() {
		t.Fatalf("checkpoint accounting: %+v vs %d calls", st, calls.Load())
	}
}

// TestConcurrentReadsDuringApplies hammers the published snapshot from
// reader goroutines while churn streams through the pipeline, asserting
// every observed (snapshot, policy) pair is internally consistent — the
// torn-snapshot check of the acceptance criteria, run under -race in CI.
func TestConcurrentReadsDuringApplies(t *testing.T) {
	const users, k = 240, 20
	db := testDB(t, users, 17)
	p, err := New(db, testBounds(), Config{
		K:             k,
		MaxBatch:      32,
		FlushInterval: time.Millisecond,
		MaxMoveMeters: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var torn atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			i := int(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := p.Snapshot()
				policy, sdb := snap.Policy, snap.Policy.DB()
				idx := i % sdb.Len()
				i++
				cloak := policy.CloakAt(idx)
				// Consistency within one snapshot: the cloak masks the
				// user's position in the SAME snapshot and holds k users
				// of it (closed semantics — cloaks are closed rectangles,
				// Definition 2). A torn pair (old policy over new
				// positions or vice versa) fails one of these.
				inCloak := 0
				for _, rec := range sdb.Records() {
					if cloak.ContainsClosed(rec.Loc) {
						inCloak++
					}
				}
				if !cloak.ContainsClosed(sdb.At(idx).Loc) || inCloak < k {
					torn.Add(1)
					return
				}
				reads.Add(1)
			}
		}(int64(r))
	}
	// Five churn passes, each requiring reader progress before the next:
	// this forces genuine interleaving of reads with batch applies even
	// on a single-CPU box where goroutine scheduling is coarse.
	stream := workload.NewMoveStream(18, db, 150, testSide)
	prev := int64(0)
	for pass := 0; pass < 5; pass++ {
		enqueueMoves(t, p, stream, users)
		deadline := time.Now().Add(30 * time.Second)
		for reads.Load() < prev+100 && torn.Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("readers starved during churn")
			}
			time.Sleep(time.Millisecond)
		}
		prev = reads.Load()
	}
	closePipeline(t, p)
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn snapshots observed", torn.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	if st := p.Stats(); st.Batches == 0 {
		t.Fatalf("no batches applied during the read storm: %+v", st)
	}
	t.Logf("reads=%d batches=%d epoch=%d", reads.Load(), p.Stats().Batches, p.Epoch())
}

// TestStrategyValidation rejects a forced-incremental pipeline on a
// non-incremental engine at construction time.
func TestStrategyValidation(t *testing.T) {
	db := testDB(t, 120, 19)
	_, err := New(db, testBounds(), Config{K: 10, Engine: "casper", Strategy: StrategyIncremental})
	if err == nil {
		t.Fatal("forced incremental on casper must fail")
	}
}
