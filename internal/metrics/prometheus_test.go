package metrics

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond) // must not panic on the zero value
	h.Time(func() {})
	s := h.Summary()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if got := s.Under[(10 * time.Millisecond).String()]; got != 2 {
		t.Errorf("under 10ms = %d, want 2 (default bounds adopted)", got)
	}
	bounds, cum, count, _ := h.export()
	if len(bounds) != len(DefaultLatencyBounds) {
		t.Errorf("bounds = %v, want defaults", bounds)
	}
	if count != 2 || cum[len(cum)-1] != 2 {
		t.Errorf("export count = %d, cum = %v", count, cum)
	}
}

// promLine matches one valid exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? -?[0-9][0-9eE+.\-]*$`)

func TestWritePrometheusGrammarAndContent(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests:POST /v1/snapshot").Add(3)
	r.Counter("plain").Inc()
	r.Gauge("users").Set(42)
	r.Histogram("latency:GET /v1/cloak").Observe(2 * time.Millisecond)
	r.Histogram("phase:bulkdp.combine").Observe(30 * time.Millisecond)
	r.Histogram("phase:bulkdp.combine").Observe(300 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`policyanon_requests_total{name="POST /v1/snapshot"} 3`,
		`policyanon_plain_total 1`,
		`policyanon_users 42`,
		`# TYPE policyanon_latency_seconds histogram`,
		`policyanon_latency_seconds_bucket{name="GET /v1/cloak",le="0.01"} 1`,
		`policyanon_latency_seconds_bucket{name="GET /v1/cloak",le="+Inf"} 1`,
		`policyanon_latency_seconds_count{name="GET /v1/cloak"} 1`,
		`policyanon_phase_seconds_bucket{name="bulkdp.combine",le="1"} 2`,
		`policyanon_phase_seconds_count{name="bulkdp.combine"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Every non-comment, non-blank line must parse as a sample.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	// Buckets must be cumulative (non-decreasing).
	bucketRe := regexp.MustCompile(`policyanon_phase_seconds_bucket\{name="bulkdp\.combine",le="[^"]+"\} (\d+)`)
	prev := int64(-1)
	for _, m := range bucketRe.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("buckets not cumulative: %d after %d", v, prev)
		}
		prev = v
	}
}

// TestValueHistogramExposition pins the exposition shape of the audit
// metric families: custom achieved-k style bounds, cumulative le buckets,
// the +Inf terminal, and sum/count lines.
func TestValueHistogramExposition(t *testing.T) {
	r := NewRegistry()
	bounds := []int64{1, 2, 5, 10}
	h := r.ValueHistogramBounds("anon_achieved_k:bulkdp/policy-aware", bounds)
	for _, v := range []int64{1, 2, 2, 7, 40} {
		h.Observe(v)
	}
	// Repeat lookups must return the same histogram, not re-create it.
	if r.ValueHistogramBounds("anon_achieved_k:bulkdp/policy-aware", bounds) != h {
		t.Fatal("ValueHistogramBounds re-created an existing histogram")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# TYPE policyanon_anon_achieved_k histogram`,
		`policyanon_anon_achieved_k_bucket{name="bulkdp/policy-aware",le="1"} 1`,
		`policyanon_anon_achieved_k_bucket{name="bulkdp/policy-aware",le="2"} 3`,
		`policyanon_anon_achieved_k_bucket{name="bulkdp/policy-aware",le="5"} 3`,
		`policyanon_anon_achieved_k_bucket{name="bulkdp/policy-aware",le="10"} 4`,
		`policyanon_anon_achieved_k_bucket{name="bulkdp/policy-aware",le="+Inf"} 5`,
		`policyanon_anon_achieved_k_sum{name="bulkdp/policy-aware"} 52`,
		`policyanon_anon_achieved_k_count{name="bulkdp/policy-aware"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

// TestValueHistogramBoundsSafety covers the degenerate creations: invalid
// bounds fall back to the defaults, and a created-but-never-observed
// histogram still exports a well-formed all-zero series.
func TestValueHistogramBoundsSafety(t *testing.T) {
	r := NewRegistry()
	h := r.ValueHistogramBounds("bad", []int64{5, 5, 1})
	if got := len(h.Summary().Under); got != len(DefaultValueBounds)+1 {
		t.Errorf("invalid bounds not replaced by defaults: %d buckets", got)
	}
	r.ValueHistogramBounds("empty", []int64{1, 2})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`policyanon_empty_bucket{le="+Inf"} 0`,
		`policyanon_empty_count 0`,
		`policyanon_empty_sum 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-value exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter(`weird:va"lue\with` + "\n" + `newline`).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `policyanon_weird_total{name="va\"lue\\with\nnewline"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaping wrong:\n%s", buf.String())
	}
}
