package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled so the
// package stays dependency-free.
//
// Registry names follow the "family:instance" convention (for example
// "latency:GET /v1/cloak" or "phase:bulkdp.combine"). The encoder maps
// the family to a sanitized metric name under the "policyanon" namespace
// and the instance to a {name="..."} label, so one scrape config covers
// every route and phase:
//
//	requests:POST /v1/snapshot  -> policyanon_requests_total{name="POST /v1/snapshot"}
//	latency:POST /v1/snapshot   -> policyanon_latency_seconds{name="POST /v1/snapshot"} (histogram)
//	phase:bulkdp.combine        -> policyanon_phase_seconds{name="bulkdp.combine"} (histogram)
//
// Durations are exported in seconds, per Prometheus convention.

// ContentTypePrometheus is the scrape response content type.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

const promNamespace = "policyanon"

// splitName separates a registry name into its metric family and the
// optional instance label value.
func splitName(name string) (family, label string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// sanitize rewrites s into a legal Prometheus metric-name fragment.
func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "unnamed"
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func labelSuffix(label string) string {
	if label == "" {
		return ""
	}
	return `{name="` + escapeLabel(label) + `"}`
}

func histoLabels(label string, le string) string {
	if label == "" {
		return `{le="` + le + `"}`
	}
	return `{name="` + escapeLabel(label) + `",le="` + le + `"}`
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// WritePrometheus renders every metric in the registry in Prometheus text
// exposition format 0.0.4. Families are emitted in sorted order with one
// HELP/TYPE header each, making the output stable for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	values := make(map[string]*ValueHistogram, len(r.values))
	for k, v := range r.values {
		values[k] = v
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	writeFamilies(bw, counters, func(bw *bufio.Writer, fam string, names []string) {
		metric := promNamespace + "_" + sanitize(fam) + "_total"
		fmt.Fprintf(bw, "# HELP %s Cumulative count of %s events.\n", metric, fam)
		fmt.Fprintf(bw, "# TYPE %s counter\n", metric)
		for _, name := range names {
			_, label := splitName(name)
			fmt.Fprintf(bw, "%s%s %d\n", metric, labelSuffix(label), counters[name].Value())
		}
	})
	writeFamilies(bw, gauges, func(bw *bufio.Writer, fam string, names []string) {
		metric := promNamespace + "_" + sanitize(fam)
		fmt.Fprintf(bw, "# HELP %s Instantaneous %s value.\n", metric, fam)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", metric)
		for _, name := range names {
			_, label := splitName(name)
			fmt.Fprintf(bw, "%s%s %d\n", metric, labelSuffix(label), gauges[name].Value())
		}
	})
	writeFamilies(bw, histograms, func(bw *bufio.Writer, fam string, names []string) {
		metric := promNamespace + "_" + sanitize(fam) + "_seconds"
		fmt.Fprintf(bw, "# HELP %s Latency distribution of %s in seconds.\n", metric, fam)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", metric)
		for _, name := range names {
			_, label := splitName(name)
			bounds, cum, count, sum := histograms[name].export()
			for i, b := range bounds {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", metric, histoLabels(label, formatSeconds(b)), cum[i])
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", metric, histoLabels(label, "+Inf"), count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", metric, labelSuffix(label), formatSeconds(sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", metric, labelSuffix(label), count)
		}
	})
	writeFamilies(bw, values, func(bw *bufio.Writer, fam string, names []string) {
		metric := promNamespace + "_" + sanitize(fam)
		fmt.Fprintf(bw, "# HELP %s Distribution of %s values.\n", metric, fam)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", metric)
		for _, name := range names {
			_, label := splitName(name)
			bounds, cum, count, sum := values[name].export()
			for i, b := range bounds {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", metric, histoLabels(label, strconv.FormatInt(b, 10)), cum[i])
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", metric, histoLabels(label, "+Inf"), count)
			fmt.Fprintf(bw, "%s_sum%s %d\n", metric, labelSuffix(label), sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", metric, labelSuffix(label), count)
		}
	})
	return bw.Flush()
}

// writeFamilies groups registry names by family, sorts both levels, and
// hands each family to emit.
func writeFamilies[M any](bw *bufio.Writer, metrics map[string]M, emit func(*bufio.Writer, string, []string)) {
	families := make(map[string][]string)
	for name := range metrics {
		fam, _ := splitName(name)
		families[fam] = append(families[fam], name)
	}
	famNames := make([]string, 0, len(families))
	for fam := range families {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		names := families[fam]
		sort.Strings(names)
		emit(bw, fam, names)
	}
}
