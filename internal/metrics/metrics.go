// Package metrics provides the lightweight instrumentation used by the
// anonymization server and simulation: counters, gauges and fixed-bucket
// latency histograms, all safe for concurrent use and exportable as JSON.
// It deliberately avoids external dependencies; the exported snapshot is
// shaped so a scraper can ingest it directly.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-boundary latency histogram. The zero value is
// ready to use and lazily adopts DefaultLatencyBounds on the first
// observation; use NewHistogram to choose custom bounds.
type Histogram struct {
	mu        sync.Mutex
	bounds    []time.Duration // upper bounds, ascending; implicit +inf last
	counts    []int64         // len(bounds)+1
	exemplars []string        // last exemplar per bucket ("" = none); nil until one is set
	total     int64
	sum       time.Duration
	maxSeen   time.Duration
}

// DefaultLatencyBounds covers microseconds to seconds.
var DefaultLatencyBounds = []time.Duration{
	100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	100 * time.Millisecond, time.Second, 10 * time.Second,
}

// NewHistogram returns a histogram with the given ascending upper bounds
// (DefaultLatencyBounds when nil).
func NewHistogram(bounds []time.Duration) (*Histogram, error) {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}, nil
}

// lazyInit installs the default bounds on a zero-value histogram. Callers
// must hold h.mu.
func (h *Histogram) lazyInit() {
	if h.counts == nil {
		h.bounds = append([]time.Duration(nil), DefaultLatencyBounds...)
		h.counts = make([]int64, len(h.bounds)+1)
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveExemplar(d, "")
}

// ObserveExemplar records one duration and, when exemplar is non-empty,
// remembers it as the bucket's latest exemplar — in practice a retained
// trace ID, so a latency outlier in the histogram links straight to its
// flight-recorder trace. An empty exemplar is a plain Observe.
func (h *Histogram) ObserveExemplar(d time.Duration, exemplar string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lazyInit()
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += d
	if d > h.maxSeen {
		h.maxSeen = d
	}
	if exemplar != "" {
		if h.exemplars == nil {
			h.exemplars = make([]string, len(h.bounds)+1)
		}
		h.exemplars[i] = exemplar
	}
}

// Time runs fn and records its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Summary reports the aggregate view of a histogram. Exemplars maps a
// bucket's upper bound ("inf" for the overflow bucket) to the latest
// exemplar recorded in it — the trace-ID hook from latency buckets into
// GET /v1/debug/trace. It is omitted while no exemplar has been set and
// is deliberately absent from the Prometheus exposition, which stays
// byte-stable.
type Summary struct {
	Count     int64             `json:"count"`
	Mean      time.Duration     `json:"meanNs"`
	Max       time.Duration     `json:"maxNs"`
	Under     map[string]int64  `json:"under"`
	Exemplars map[string]string `json:"exemplars,omitempty"`
}

// Summary returns the aggregate view.
func (h *Histogram) Summary() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lazyInit()
	s := Summary{Count: h.total, Max: h.maxSeen, Under: make(map[string]int64, len(h.bounds)+1)}
	if h.total > 0 {
		s.Mean = h.sum / time.Duration(h.total)
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Under[b.String()] = cum
	}
	s.Under["inf"] = h.total
	if h.exemplars != nil {
		s.Exemplars = make(map[string]string)
		for i, ex := range h.exemplars {
			if ex == "" {
				continue
			}
			if i < len(h.bounds) {
				s.Exemplars[h.bounds[i].String()] = ex
			} else {
				s.Exemplars["inf"] = ex
			}
		}
	}
	return s
}

// export returns the histogram internals the Prometheus encoder needs:
// upper bounds, cumulative per-bucket counts (one extra entry for +Inf),
// total count, and the observation sum.
func (h *Histogram) export() (bounds []time.Duration, cum []int64, count int64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lazyInit()
	bounds = append([]time.Duration(nil), h.bounds...)
	cum = make([]int64, len(h.counts))
	running := int64(0)
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return bounds, cum, h.total, h.sum
}

// ValueHistogram is a fixed-boundary histogram over unitless int64
// observations (policy costs, answer sizes), the dimensionless sibling of
// the latency Histogram. The zero value is ready to use and lazily adopts
// DefaultValueBounds on the first observation.
type ValueHistogram struct {
	mu      sync.Mutex
	bounds  []int64 // upper bounds, ascending; implicit +inf last
	counts  []int64 // len(bounds)+1
	total   int64
	sum     int64
	maxSeen int64
}

// DefaultValueBounds covers decades from 10 to 10^8, wide enough for
// per-snapshot policy costs at every benchmark scale.
var DefaultValueBounds = []int64{10, 100, 1000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// NewValueHistogram returns a value histogram with the given ascending
// upper bounds (DefaultValueBounds when nil).
func NewValueHistogram(bounds []int64) (*ValueHistogram, error) {
	if bounds == nil {
		bounds = DefaultValueBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: value histogram bounds not ascending at %d", i)
		}
	}
	return &ValueHistogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}, nil
}

// lazyInit installs the default bounds on a zero-value histogram. Callers
// must hold h.mu.
func (h *ValueHistogram) lazyInit() {
	if h.counts == nil {
		h.bounds = append([]int64(nil), DefaultValueBounds...)
		h.counts = make([]int64, len(h.bounds)+1)
	}
}

// Observe records one value.
func (h *ValueHistogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lazyInit()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
}

// ValueSummary reports the aggregate view of a value histogram.
type ValueSummary struct {
	Count int64            `json:"count"`
	Mean  float64          `json:"mean"`
	Max   int64            `json:"max"`
	Under map[string]int64 `json:"under"`
}

// Summary returns the aggregate view.
func (h *ValueHistogram) Summary() ValueSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lazyInit()
	s := ValueSummary{Count: h.total, Max: h.maxSeen, Under: make(map[string]int64, len(h.bounds)+1)}
	if h.total > 0 {
		s.Mean = float64(h.sum) / float64(h.total)
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Under[fmt.Sprintf("%d", b)] = cum
	}
	s.Under["inf"] = h.total
	return s
}

// export returns the internals the Prometheus encoder needs: upper bounds,
// cumulative per-bucket counts, total count, and the observation sum.
func (h *ValueHistogram) export() (bounds []int64, cum []int64, count int64, sum int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lazyInit()
	bounds = append([]int64(nil), h.bounds...)
	cum = make([]int64, len(h.counts))
	running := int64(0)
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return bounds, cum, h.total, h.sum
}

// Registry names and exports a set of metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	values     map[string]*ValueHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		values:     make(map[string]*ValueHistogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use with default bounds) the named
// histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h, _ = NewHistogram(nil)
		r.histograms[name] = h
	}
	return h
}

// ValueHistogram returns (creating on first use with default bounds) the
// named value histogram.
func (r *Registry) ValueHistogram(name string) *ValueHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.values == nil {
		r.values = make(map[string]*ValueHistogram)
	}
	h, ok := r.values[name]
	if !ok {
		h, _ = NewValueHistogram(nil)
		r.values[name] = h
	}
	return h
}

// ValueHistogramBounds returns (creating on first use with the given
// ascending upper bounds) the named value histogram. An existing
// histogram is returned as-is — the bounds of the first creation win, so
// every caller of one family should pass the same bounds. Invalid bounds
// fall back to the defaults.
func (r *Registry) ValueHistogramBounds(name string, bounds []int64) *ValueHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.values == nil {
		r.values = make(map[string]*ValueHistogram)
	}
	h, ok := r.values[name]
	if !ok {
		var err error
		if h, err = NewValueHistogram(bounds); err != nil {
			h, _ = NewValueHistogram(nil)
		}
		r.values[name] = h
	}
	return h
}

// Snapshot is the JSON-exportable state of a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]Summary      `json:"histograms"`
	Values     map[string]ValueSummary `json:"values,omitempty"`
}

// Snapshot captures the current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]Summary, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Summary()
	}
	if len(r.values) > 0 {
		s.Values = make(map[string]ValueSummary, len(r.values))
		for name, h := range r.values {
			s.Values[name] = h.Summary()
		}
	}
	return s
}

// MarshalJSON exports the registry state.
func (r *Registry) MarshalJSON() ([]byte, error) { return json.Marshal(r.Snapshot()) }
