package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent counter = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(50 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second)
	s := h.Summary()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 2*time.Second {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Under["100µs"] != 1 {
		t.Fatalf("under 100µs = %d", s.Under["100µs"])
	}
	if s.Under["10ms"] != 2 {
		t.Fatalf("under 10ms = %d", s.Under["10ms"])
	}
	if s.Under["inf"] != 3 {
		t.Fatalf("under inf = %d", s.Under["inf"])
	}
	if s.Mean <= 0 {
		t.Fatal("mean not computed")
	}
}

func TestHistogramExemplars(t *testing.T) {
	h, _ := NewHistogram(nil)
	h.Observe(50 * time.Microsecond)
	if s := h.Summary(); s.Exemplars != nil {
		t.Fatalf("Exemplars = %v before any exemplar set", s.Exemplars)
	}
	h.ObserveExemplar(5*time.Millisecond, "t-old")
	h.ObserveExemplar(5*time.Millisecond, "t-new") // latest wins per bucket
	h.ObserveExemplar(time.Minute, "t-slow")       // overflow bucket
	s := h.Summary()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Exemplars["10ms"] != "t-new" {
		t.Errorf("10ms exemplar = %q, want t-new", s.Exemplars["10ms"])
	}
	if s.Exemplars["inf"] != "t-slow" {
		t.Errorf("inf exemplar = %q, want t-slow", s.Exemplars["inf"])
	}
	if _, ok := s.Exemplars["100µs"]; ok {
		t.Error("plain Observe bucket gained an exemplar")
	}
}

func TestHistogramBadBounds(t *testing.T) {
	if _, err := NewHistogram([]time.Duration{time.Second, time.Millisecond}); err == nil {
		t.Fatal("descending bounds accepted")
	}
}

func TestHistogramTime(t *testing.T) {
	h, _ := NewHistogram(nil)
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Summary().Count != 1 {
		t.Fatal("Time did not observe")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	if r.Counter("requests").Value() != 3 {
		t.Fatal("counter identity not preserved")
	}
	r.Gauge("users").Set(100)
	r.Histogram("latency").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["requests"] != 3 || s.Gauges["users"] != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Histograms["latency"].Count != 1 {
		t.Fatalf("histogram snapshot %+v", s.Histograms["latency"])
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["requests"] != 3 {
		t.Fatalf("json round trip %+v", back)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h").Observe(time.Microsecond)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 1600 {
		t.Fatalf("count = %d", r.Counter("c").Value())
	}
}
