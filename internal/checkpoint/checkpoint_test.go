package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

func makeState(t *testing.T, n, k int) (*location.DB, geo.Rect, int, *State) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	db := location.New(n)
	for i := 0; i < n; i++ {
		if err := db.Add(userID(i), geo.Point{X: rng.Int31n(256), Y: rng.Int31n(256)}); err != nil {
			t.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, 256, 256)
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, k, bounds, pol); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return db, bounds, k, st
}

func userID(i int) string {
	s := ""
	for {
		s = string(rune('a'+i%26)) + s
		i /= 26
		if i == 0 {
			return "u" + s
		}
	}
}

func TestRoundTrip(t *testing.T) {
	db, bounds, k, st := makeState(t, 80, 5)
	if st.K != k || st.Bounds != bounds || st.DB.Len() != db.Len() {
		t.Fatalf("restored state mismatch: %+v", st)
	}
	for i := 0; i < db.Len(); i++ {
		orig := db.At(i)
		got, err := st.DB.Lookup(orig.UserID)
		if err != nil || got != orig.Loc {
			t.Fatalf("user %q restored at %v, want %v", orig.UserID, got, orig.Loc)
		}
		cloak, err := st.Policy.CloakOf(orig.UserID)
		if err != nil || !cloak.ContainsClosed(orig.Loc) {
			t.Fatalf("restored cloak %v invalid for %q", cloak, orig.UserID)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := location.New(20)
	for i := 0; i < 20; i++ {
		if err := db.Add(userID(i), geo.Point{X: rng.Int31n(64), Y: rng.Int31n(64)}); err != nil {
			t.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, 64, 64)
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, 3, bounds, pol); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one byte in the middle of the payload.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bit flip accepted")
	}
	// Truncate.
	if _, err := Load(bytes.NewReader(good[:len(good)-3])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated stream: %v", err)
	}
	// Wrong magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 'X'
	if _, err := Load(bytes.NewReader(bad2)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	// Empty stream.
	if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestUnsafeCheckpointRejected(t *testing.T) {
	// Build a checkpoint whose policy is NOT k-anonymous for the claimed
	// k by saving with an inflated k value.
	rng := rand.New(rand.NewSource(3))
	db := location.New(10)
	for i := 0; i < 10; i++ {
		if err := db.Add(userID(i), geo.Point{X: rng.Int31n(64), Y: rng.Int31n(64)}); err != nil {
			t.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, 64, 64)
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, 9, bounds, pol); err != nil { // claims k=9
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("unsafe checkpoint: %v", err)
	}
}

func TestSaveNilPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, 2, geo.NewRect(0, 0, 4, 4), nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestEmptySnapshotRoundTrip(t *testing.T) {
	db := location.New(0)
	pol, err := lbs.NewAssignment(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, 2, geo.NewRect(0, 0, 4, 4), pol); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.DB.Len() != 0 {
		t.Fatalf("restored %d users from empty checkpoint", st.DB.Len())
	}
}
