// Package checkpoint serializes an anonymization state — one location
// snapshot together with its computed policy-aware cloaking — so an
// anonymization server can restart, or hand over a jurisdiction, without
// recomputing the optimum configuration matrix. The format is a gob
// stream wrapped with a magic header, a format version and a CRC32
// integrity checksum; Load re-validates the masking property and the
// policy-aware k-anonymity of the restored policy, so a corrupted or
// tampered checkpoint can never install an unsafe policy.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
)

// magic identifies checkpoint streams.
var magic = [8]byte{'P', 'A', 'N', 'O', 'N', 'C', 'K', '1'}

// Version is the current checkpoint format version.
const Version = 1

// ErrCorrupt is returned when the stream fails structural or checksum
// validation.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated stream")

// ErrUnsafe is returned when a decoded checkpoint's policy fails the
// masking or k-anonymity re-validation.
var ErrUnsafe = errors.New("checkpoint: restored policy failed safety validation")

// payload is the gob-encoded body.
type payload struct {
	Version int
	K       int
	Bounds  geo.Rect
	Users   []userRec
}

type userRec struct {
	ID    string
	Loc   geo.Point
	Cloak geo.Rect
}

// State is a restored anonymization state.
type State struct {
	K      int
	Bounds geo.Rect
	DB     *location.DB
	Policy *lbs.Assignment
}

// Save writes the checkpoint of a snapshot and its policy.
func Save(w io.Writer, k int, bounds geo.Rect, policy *lbs.Assignment) error {
	if policy == nil {
		return fmt.Errorf("checkpoint: nil policy")
	}
	db := policy.DB()
	p := payload{Version: Version, K: k, Bounds: bounds, Users: make([]userRec, db.Len())}
	for i := 0; i < db.Len(); i++ {
		rec := db.At(i)
		p.Users[i] = userRec{ID: rec.UserID, Loc: rec.Loc, Cloak: policy.CloakAt(i)}
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(p); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("checkpoint: write magic: %w", err)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(body.Len()))
	binary.BigEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(body.Bytes()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := bw.Write(body.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: write body: %w", err)
	}
	return bw.Flush()
}

// Load reads and validates a checkpoint. It fails with ErrCorrupt for
// structural damage and ErrUnsafe if the restored policy does not mask
// its users or does not provide policy-aware sender k-anonymity.
func Load(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	size := binary.BigEndian.Uint64(hdr[:8])
	const maxCheckpoint = 1 << 32 // 4 GiB sanity cap
	if size > maxCheckpoint {
		return nil, fmt.Errorf("%w: implausible payload size %d", ErrCorrupt, size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(hdr[8:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var p payload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", p.Version)
	}
	if p.K < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrUnsafe, p.K)
	}
	db := location.New(len(p.Users))
	cloaks := make([]geo.Rect, len(p.Users))
	for i, u := range p.Users {
		if err := db.Add(u.ID, u.Loc); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		cloaks[i] = u.Cloak
	}
	policy, err := lbs.NewAssignment(db, cloaks)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsafe, err)
	}
	if db.Len() > 0 && !attacker.IsKAnonymous(policy, p.K, attacker.PolicyAware) {
		return nil, fmt.Errorf("%w: restored policy not policy-aware %d-anonymous", ErrUnsafe, p.K)
	}
	return &State{K: p.K, Bounds: p.Bounds, DB: db, Policy: policy}, nil
}
