package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// FuzzLoad ensures arbitrary byte streams never panic the loader and that
// anything it accepts satisfies the safety invariants (masking + declared
// k-anonymity), i.e. corruption can damage availability but never safety.
func FuzzLoad(f *testing.F) {
	// Seed with a valid checkpoint and a few mutations of it.
	rng := rand.New(rand.NewSource(1))
	db := location.New(12)
	for i := 0; i < 12; i++ {
		if err := db.Add(userID(i), geo.Point{X: rng.Int31n(64), Y: rng.Int31n(64)}); err != nil {
			f.Fatal(err)
		}
	}
	bounds := geo.NewRect(0, 0, 64, 64)
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: 3})
	if err != nil {
		f.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, 3, bounds, pol); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("PANONCK1garbage"))
	flipped := append([]byte(nil), good...)
	flipped[20] ^= 0x55
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, blob []byte) {
		st, err := Load(bytes.NewReader(blob))
		if err != nil {
			return
		}
		// Anything accepted must be safe.
		if st.K < 1 {
			t.Fatalf("accepted state with k=%d", st.K)
		}
		for i := 0; i < st.DB.Len(); i++ {
			if !st.Policy.CloakAt(i).ContainsClosed(st.DB.At(i).Loc) {
				t.Fatal("accepted non-masking policy")
			}
		}
		for _, g := range st.Policy.Groups() {
			if st.DB.Len() > 0 && len(g.Members) < st.K {
				t.Fatalf("accepted policy with group of %d < k=%d", len(g.Members), st.K)
			}
		}
	})
}
