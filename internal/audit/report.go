package audit

import (
	"sort"
)

// KStats summarizes the achieved anonymity-set sizes in the rolling
// window under one attacker class. Percentiles use the nearest-rank
// method over the window samples; Breaches is cumulative since the
// auditor was created (a breach must never age out of the report).
type KStats struct {
	Count    int   `json:"count"`
	Min      int   `json:"min"`
	P50      int   `json:"p50"`
	P95      int   `json:"p95"`
	Max      int   `json:"max"`
	Breaches int64 `json:"breachTotal"`
}

// Report is the rolling privacy report served at GET /v1/audit: the
// achieved-anonymity distribution under both attacker classes over the
// most recent window of audited events, plus cumulative audit counters.
type Report struct {
	// SampleRate is the request-path sampling rate in effect.
	SampleRate float64 `json:"sampleRate"`
	// WindowCap and WindowSamples size the rolling window.
	WindowCap     int `json:"windowCap"`
	WindowSamples int `json:"windowSamples"`
	// PolicyAudits / RequestAudits / Skipped count audit decisions since
	// the auditor was created.
	PolicyAudits  int64 `json:"policyAudits"`
	RequestAudits int64 `json:"requestAudits"`
	Skipped       int64 `json:"skipped"`
	// Aware / Unaware summarize achieved anonymity per attacker class.
	Aware   KStats `json:"policyAware"`
	Unaware KStats `json:"policyUnaware"`
	// AvgCloakArea is the mean utility measure over the window (m²).
	AvgCloakArea float64 `json:"avgCloakArea"`
	// Engines lists every engine observed since creation, sorted.
	Engines []string `json:"engines"`
	// Shards is the number of per-shard reports merged into this one
	// (0 for a single-server report). On merged reports the percentiles
	// are count-weighted means of the shard percentiles — an
	// approximation; Min/Max/counts/breaches are exact.
	Shards int `json:"shards,omitempty"`
	// LedgerRoots lists the latest sealed tamper-evident ledger checkpoint
	// per shard (at most one entry for a single-server report, absent when
	// the ledger is disabled or nothing has sealed yet). Merge
	// concatenates, so a coordinator report carries every shard's root.
	LedgerRoots []LedgerRoot `json:"ledgerRoots,omitempty"`
}

// LedgerRoot is one shard's latest sealed ledger checkpoint, enough to
// pin its chain head: fetch the full signed checkpoint and proofs from
// the shard's /v1/audit/root and /v1/audit/proof endpoints.
type LedgerRoot struct {
	// Worker is the shard's base URL; empty on a single-server report
	// (the coordinator stamps it when merging).
	Worker    string `json:"worker,omitempty"`
	BatchSeq  uint64 `json:"batchSeq"`
	Events    uint64 `json:"events"`
	ChainRoot string `json:"chainRoot"`
	SealedMs  int64  `json:"sealedMs"`
}

// push appends an entry to the rolling window. Callers must hold a.mu.
func (a *Auditor) push(e windowEntry) {
	if cap(a.ring) == 0 {
		return
	}
	if len(a.ring) < cap(a.ring) {
		a.ring = append(a.ring, e)
		return
	}
	a.ring[a.next] = e
	a.next = (a.next + 1) % len(a.ring)
	a.filled = true
}

// Report assembles the current rolling report.
func (a *Auditor) Report() Report {
	a.mu.Lock()
	entries := append([]windowEntry(nil), a.ring...)
	r := Report{
		SampleRate:    a.rate,
		WindowCap:     cap(a.ring),
		WindowSamples: len(entries),
		PolicyAudits:  a.policyAudits,
		RequestAudits: a.requestAudits,
		Skipped:       a.skipped.Load(),
		Engines:       make([]string, 0, len(a.engines)),
	}
	for e := range a.engines {
		r.Engines = append(r.Engines, e)
	}
	breachAware, breachUnaware := a.breachAware, a.breachUnaware
	a.mu.Unlock()
	sort.Strings(r.Engines)

	if l := a.led.Load(); l != nil {
		if cp, ok := l.Latest(); ok {
			r.LedgerRoots = []LedgerRoot{{
				BatchSeq:  cp.BatchSeq,
				Events:    cp.FirstSeq + uint64(cp.Count) - 1,
				ChainRoot: cp.ChainRoot,
				SealedMs:  cp.SealedMs,
			}}
		}
	}

	aware := make([]int, len(entries))
	unaware := make([]int, len(entries))
	var areaSum float64
	for i, e := range entries {
		aware[i] = e.aware
		unaware[i] = e.unaware
		areaSum += e.area
	}
	r.Aware = kStats(aware)
	r.Aware.Breaches = breachAware
	r.Unaware = kStats(unaware)
	r.Unaware.Breaches = breachUnaware
	if len(entries) > 0 {
		r.AvgCloakArea = areaSum / float64(len(entries))
	}
	return r
}

// kStats computes nearest-rank order statistics over ks.
func kStats(ks []int) KStats {
	if len(ks) == 0 {
		return KStats{}
	}
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	return KStats{
		Count: len(sorted),
		Min:   sorted[0],
		P50:   nearestRank(sorted, 0.50),
		P95:   nearestRank(sorted, 0.95),
		Max:   sorted[len(sorted)-1],
	}
}

// nearestRank returns the q-quantile of a sorted slice by nearest rank.
func nearestRank(sorted []int, q float64) int {
	i := int(float64(len(sorted))*q+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Merge folds per-shard reports into one cluster-wide report: counts,
// breach totals, and extrema are exact sums/min/max; percentiles are
// count-weighted means of the shard percentiles (exact merging would need
// the raw windows); the sample rate is taken from the first shard that
// reports one. Shard reports with empty windows contribute only their
// counters.
func Merge(reports ...Report) Report {
	var out Report
	out.Shards = len(reports)
	engines := make(map[string]bool)
	var awareW, unawareW, areaW float64 // count-weighted percentile sums
	var p50A, p95A, p50U, p95U float64
	firstAware, firstUnaware := true, true
	for _, r := range reports {
		if out.SampleRate == 0 {
			out.SampleRate = r.SampleRate
		}
		out.WindowCap += r.WindowCap
		out.WindowSamples += r.WindowSamples
		out.PolicyAudits += r.PolicyAudits
		out.RequestAudits += r.RequestAudits
		out.Skipped += r.Skipped
		out.Aware.Breaches += r.Aware.Breaches
		out.Unaware.Breaches += r.Unaware.Breaches
		for _, e := range r.Engines {
			engines[e] = true
		}
		if r.Aware.Count > 0 {
			w := float64(r.Aware.Count)
			out.Aware.Count += r.Aware.Count
			p50A += w * float64(r.Aware.P50)
			p95A += w * float64(r.Aware.P95)
			awareW += w
			if firstAware || r.Aware.Min < out.Aware.Min {
				out.Aware.Min = r.Aware.Min
			}
			if r.Aware.Max > out.Aware.Max {
				out.Aware.Max = r.Aware.Max
			}
			firstAware = false
		}
		if r.Unaware.Count > 0 {
			w := float64(r.Unaware.Count)
			out.Unaware.Count += r.Unaware.Count
			p50U += w * float64(r.Unaware.P50)
			p95U += w * float64(r.Unaware.P95)
			unawareW += w
			if firstUnaware || r.Unaware.Min < out.Unaware.Min {
				out.Unaware.Min = r.Unaware.Min
			}
			if r.Unaware.Max > out.Unaware.Max {
				out.Unaware.Max = r.Unaware.Max
			}
			firstUnaware = false
		}
		if r.WindowSamples > 0 {
			areaW += float64(r.WindowSamples) * r.AvgCloakArea
		}
		out.LedgerRoots = append(out.LedgerRoots, r.LedgerRoots...)
	}
	if awareW > 0 {
		out.Aware.P50 = int(p50A/awareW + 0.5)
		out.Aware.P95 = int(p95A/awareW + 0.5)
	}
	if unawareW > 0 {
		out.Unaware.P50 = int(p50U/unawareW + 0.5)
		out.Unaware.P95 = int(p95U/unawareW + 0.5)
	}
	if out.WindowSamples > 0 {
		out.AvgCloakArea = areaW / float64(out.WindowSamples)
	}
	out.Engines = make([]string, 0, len(engines))
	for e := range engines {
		out.Engines = append(out.Engines, e)
	}
	sort.Strings(out.Engines)
	return out
}
