// Package audit is the privacy observatory of the serving stack: it
// watches live anonymization traffic and continuously measures the
// guarantee the paper is actually about — the achieved anonymity-set size
// under both attacker classes of Section III (policy-aware and
// policy-unaware, Definitions 5–6) — together with the utility price paid
// for it (cloak area, the Section IV cost function).
//
// The pipeline already *verifies* policies before trusting them
// (internal/verify); this package instead *observes* them in production,
// cheaply and continuously:
//
//   - An Auditor samples served requests at a configurable rate and, per
//     sampled request, computes the candidate-sender set of the observed
//     cloak under both attacker.Awareness modes plus its utility measures.
//   - Policy-change events (snapshot installs, movement recomputes) are
//     audited in full via attacker.Audit, which is near-linear in |D|.
//   - Results feed three sinks at once: Prometheus metric families in a
//     metrics.Registry (anon_achieved_k, anon_breach_total,
//     anon_cloak_area, audit_sampled_total), a rolling window that
//     GET /v1/audit reports as min/p50/p95 achieved-k, and — on breach —
//     a structured log/slog line plus attributes on the enclosing obs
//     span, all carrying the request ID minted by the HTTP layer so one
//     breach correlates across log, trace, and metric.
//
// Everything is safe for concurrent use; attacker.Audit and
// attacker.Candidates only read the assignment, so samplers may run on
// request goroutines without coordination beyond the Auditor's own state.
package audit

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/ledger"
	"policyanon/internal/metrics"
	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
)

// DefaultRate is the default request-path sampling rate: one audited
// request per 64 served. At this rate the O(|D|) candidate scan amortizes
// to well under the <5% overhead budget the benchmark gate enforces.
const DefaultRate = 1.0 / 64

// DefaultWindow is the default rolling-window capacity (samples retained
// for the percentile report).
const DefaultWindow = 1024

// AchievedKBounds are the ValueHistogram bucket bounds used for the
// anon_achieved_k families: finer than the decade defaults, because the
// interesting distinctions (k=2 vs k=10 vs k=50) all live below 100.
var AchievedKBounds = []int64{1, 2, 3, 5, 8, 12, 20, 32, 50, 80, 128, 256, 512, 1024, 4096}

// Sampler makes deterministic 1-in-N sampling decisions. The first call
// is always sampled (so a fresh server's first policy or request is
// observed immediately and /v1/audit is never empty after traffic), then
// every N-th thereafter. The zero value never samples.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler firing on ~rate of calls. rate <= 0 never
// samples; rate >= 1 samples every call.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return &Sampler{}
	}
	if rate >= 1 {
		return &Sampler{every: 1}
	}
	every := uint64(math.Round(1 / rate))
	if every < 1 {
		every = 1
	}
	return &Sampler{every: every}
}

// Sample reports whether this call is selected.
func (s *Sampler) Sample() bool {
	switch s.every {
	case 0:
		return false
	case 1:
		return true
	default:
		return s.n.Add(1)%s.every == 1
	}
}

// Options configures an Auditor.
type Options struct {
	// Rate is the request-path sampling rate in [0,1]; 0 disables
	// request sampling (policy audits are always caller-triggered).
	// Negative or NaN values are treated as 0.
	Rate float64
	// Window is the rolling-window capacity (DefaultWindow when <= 0).
	Window int
	// Logger, when non-nil, receives structured breach (Warn) and audit
	// (Debug) records. Records carry the request ID from the context.
	Logger *slog.Logger
	// ExpectPolicyAware reports whether the named engine claims sender
	// k-anonymity against policy-aware attackers. Breaches of engines
	// that do NOT claim it (the k-inside family, Proposition 2) are
	// logged as expected=true: the observatory reports ground truth
	// either way, but operators can filter the known-by-construction
	// breaches out. nil holds every engine to the policy-aware standard.
	ExpectPolicyAware func(engine string) bool
}

// windowEntry is one rolling-window sample: achieved anonymity under both
// attacker classes plus the utility measure (area in m²).
type windowEntry struct {
	aware   int
	unaware int
	area    float64
}

// Auditor samples anonymization traffic into a metrics registry, a
// rolling window, and a structured log. Create with New; all methods are
// safe for concurrent use.
type Auditor struct {
	reg    *metrics.Registry
	expect func(string) bool

	skipped atomic.Int64

	// led, when set, receives every audit outcome as a tamper-evident
	// ledger event (see SetLedger). Atomic so the serving path never takes
	// a.mu just to discover the ledger is disabled.
	led atomic.Pointer[ledger.Ledger]

	// rec, when set, receives every breach as a flight-recorder event,
	// pinning the incident to its retained trace (see SetFlight).
	rec atomic.Pointer[flight.Recorder]

	mu            sync.Mutex
	rate          float64
	sampler       *Sampler
	logger        *slog.Logger
	ring          []windowEntry
	next          int
	filled        bool
	engines       map[string]bool
	policyAudits  int64
	requestAudits int64
	breachAware   int64
	breachUnaware int64

	// Per-cloak candidate-set sizes, memoized per assignment. Assignments
	// are immutable once built (policy changes produce a new one), so
	// their monotonic Version keys the cache generation; cloaks repeat
	// across requests, so after the first sample per cloak the
	// request-path audit is O(1). When a new assignment is a delta of the
	// cached one, only the entries its delta could have invalidated are
	// evicted, so the memo survives delta publishes instead of restarting
	// cold every batch.
	kmu    sync.Mutex
	kVer   uint64
	kCache map[geo.Rect][2]int
}

// New returns an Auditor recording into reg.
func New(reg *metrics.Registry, opts Options) *Auditor {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	rate := opts.Rate
	if rate <= 0 || math.IsNaN(rate) {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	return &Auditor{
		reg:     reg,
		expect:  opts.ExpectPolicyAware,
		rate:    rate,
		sampler: NewSampler(rate),
		logger:  opts.Logger,
		ring:    make([]windowEntry, 0, opts.Window),
		engines: make(map[string]bool),
	}
}

// Rate returns the current request-path sampling rate.
func (a *Auditor) Rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rate
}

// SetRate replaces the request-path sampling rate (0 disables sampling).
// The sampling counter restarts, so the next request after enabling is
// sampled immediately.
func (a *Auditor) SetRate(rate float64) {
	if rate <= 0 || math.IsNaN(rate) {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	a.mu.Lock()
	a.rate = rate
	a.sampler = NewSampler(rate)
	a.mu.Unlock()
}

// SetLogger replaces the structured-log sink (nil disables logging).
func (a *Auditor) SetLogger(l *slog.Logger) {
	a.mu.Lock()
	a.logger = l
	a.mu.Unlock()
}

// SetLedger attaches a tamper-evident ledger: from then on every policy
// audit, sampled request verdict, and breach is appended as a ledger
// event (kinds policy_audit / request_verdict / breach) whose detail is
// the sample's JSON. nil detaches. Append is a single hash + slice
// append; sealing happens on the ledger's own goroutine, so the serving
// path stays within the audit overhead budget.
func (a *Auditor) SetLedger(l *ledger.Ledger) {
	a.led.Store(l)
}

// Ledger returns the attached ledger, or nil.
func (a *Auditor) Ledger() *ledger.Ledger {
	return a.led.Load()
}

// SetFlight attaches a flight recorder: every breach is emitted as a
// notable event carrying the request and trace IDs, and the enclosing
// capture (if a traced request is in flight) is marked "breach" so the
// tail sampler retains its span tree. nil detaches.
func (a *Auditor) SetFlight(rec *flight.Recorder) {
	a.rec.Store(rec)
}

// record appends an audit outcome to the attached ledger, if any. Ledger
// failures must never fail the audit itself — the event is dropped and
// the ledger's own metrics/log carry the error.
func (a *Auditor) record(ctx context.Context, kind ledger.Kind, engineName string, detail any) {
	l := a.led.Load()
	if l == nil {
		return
	}
	payload, err := json.Marshal(detail)
	if err != nil {
		return
	}
	l.Append(ctx, kind, engineName, RequestID(ctx), string(payload))
}

// PolicySample is the outcome of one full-policy audit: the achieved
// anonymity floor of the whole assignment under each attacker class, the
// breached-group counts, and the policy's utility measures.
type PolicySample struct {
	Engine          string  `json:"engine"`
	K               int     `json:"k"`
	Users           int     `json:"users"`
	MinKAware       int     `json:"minKAware"`
	MinKUnaware     int     `json:"minKUnaware"`
	BreachesAware   int     `json:"breachesAware"`
	BreachesUnaware int     `json:"breachesUnaware"`
	Cost            int64   `json:"cost"`
	AvgCloakArea    float64 `json:"avgCloakArea"`
	Groups          int     `json:"groups"`
}

// ObservePolicy audits a whole assignment (a policy-change event: a
// snapshot install or a movement recompute) under both attacker classes
// and records the outcome. It is the caller's job to decide how often to
// call it — engine.WithAudit samples, serving surfaces audit every
// install because policies change far less often than requests arrive.
func (a *Auditor) ObservePolicy(ctx context.Context, engineName string, pol *lbs.Assignment, k int) PolicySample {
	s := PolicySample{Engine: engineName, K: k, Users: pol.Len()}
	if pol.Len() == 0 {
		return s
	}
	awBreaches, minAware := attacker.Audit(pol, k, attacker.PolicyAware)
	unBreaches, minUnaware := attacker.Audit(pol, k, attacker.PolicyUnaware)
	s.MinKAware = minAware
	s.MinKUnaware = minUnaware
	s.BreachesAware = len(awBreaches)
	s.BreachesUnaware = len(unBreaches)
	s.Cost = pol.Cost()
	s.AvgCloakArea = pol.AvgArea()
	s.Groups = len(pol.Groups())

	a.reg.Counter("audit_sampled:" + engineName + "/policy").Inc()
	a.observeK(engineName, minAware, minUnaware)
	a.reg.ValueHistogram("anon_cloak_area:" + engineName).Observe(int64(s.AvgCloakArea))

	a.mu.Lock()
	a.policyAudits++
	a.engines[engineName] = true
	a.push(windowEntry{aware: minAware, unaware: minUnaware, area: s.AvgCloakArea})
	logger := a.logger
	a.mu.Unlock()

	a.record(ctx, ledger.KindPolicyAudit, engineName, s)

	if s.BreachesAware > 0 {
		var first geo.Rect
		if len(awBreaches) > 0 {
			first = awBreaches[0].Cloak
		}
		a.breach(ctx, logger, engineName, attacker.PolicyAware, minAware, k,
			s.BreachesAware, first)
	}
	if s.BreachesUnaware > 0 {
		var first geo.Rect
		if len(unBreaches) > 0 {
			first = unBreaches[0].Cloak
		}
		a.breach(ctx, logger, engineName, attacker.PolicyUnaware, minUnaware, k,
			s.BreachesUnaware, first)
	}
	return s
}

// RequestSample is the outcome of auditing one served request: the
// candidate-sender set sizes of the observed cloak under each attacker
// class, and the cloak's area.
type RequestSample struct {
	Engine    string `json:"engine"`
	K         int    `json:"k"`
	KAware    int    `json:"kAware"`
	KUnaware  int    `json:"kUnaware"`
	CloakArea int64  `json:"cloakArea"`
}

// candidateSizes returns the candidate-set sizes of cloak under both
// attacker classes, memoized per (assignment, cloak): the first sample of
// a cloak pays two O(|D|) attacker.Candidates scans, repeats are a map
// lookup. The cache resets when a different assignment comes in.
func (a *Auditor) candidateSizes(pol *lbs.Assignment, cloak geo.Rect) (aware, unaware int) {
	ver := pol.Version()
	a.kmu.Lock()
	if a.kVer != ver || a.kCache == nil {
		if d := pol.Delta(); d != nil && d.ParentVersion == a.kVer && a.kCache != nil {
			a.evictDeltaLocked(d)
		} else {
			a.kCache = make(map[geo.Rect][2]int)
		}
		a.kVer = ver
	}
	if v, ok := a.kCache[cloak]; ok {
		a.kmu.Unlock()
		return v[0], v[1]
	}
	a.kmu.Unlock()
	aware = len(attacker.Candidates(pol, cloak, attacker.PolicyAware))
	unaware = len(attacker.Candidates(pol, cloak, attacker.PolicyUnaware))
	a.kmu.Lock()
	if a.kVer == ver {
		a.kCache[cloak] = [2]int{aware, unaware}
	}
	a.kmu.Unlock()
	return aware, unaware
}

// evictDeltaLocked drops exactly the memo entries a delta publish could
// have invalidated: a cloak's policy-aware candidate set (users assigned
// that cloak verbatim) changes only for the Old/New rectangles of a cloak
// rewrite, and its policy-unaware set (users geometrically inside it)
// changes only for cloaks containing a move's From or To point — the same
// soundness argument as verify.Delta. Everything else stays cached.
func (a *Auditor) evictDeltaLocked(d *lbs.Delta) {
	for _, c := range d.Cloaks {
		delete(a.kCache, c.Old)
		delete(a.kCache, c.New)
	}
	if len(d.Moves) == 0 {
		return
	}
	for rect := range a.kCache {
		for _, mv := range d.Moves {
			if rect.ContainsClosed(mv.From) || rect.ContainsClosed(mv.To) {
				delete(a.kCache, rect)
				break
			}
		}
	}
}

// ObserveRequest audits one served anonymized request unconditionally:
// the candidate sets of its cloak are computed under both attacker
// classes via the per-cloak memo (worst case two O(|D|) scans — this is
// why the serving path goes through MaybeObserveRequest instead).
func (a *Auditor) ObserveRequest(ctx context.Context, engineName string, pol *lbs.Assignment, cloak geo.Rect, k int) RequestSample {
	nAware, nUnaware := a.candidateSizes(pol, cloak)
	s := RequestSample{
		Engine: engineName, K: k,
		KAware: nAware, KUnaware: nUnaware,
		CloakArea: cloak.Area(),
	}

	a.reg.Counter("audit_sampled:" + engineName + "/request").Inc()
	a.observeK(engineName, nAware, nUnaware)
	a.reg.ValueHistogram("anon_cloak_area:" + engineName).Observe(s.CloakArea)

	a.mu.Lock()
	a.requestAudits++
	a.engines[engineName] = true
	a.push(windowEntry{aware: nAware, unaware: nUnaware, area: float64(s.CloakArea)})
	logger := a.logger
	a.mu.Unlock()

	a.record(ctx, ledger.KindRequestVerdict, engineName, s)

	if nAware < k {
		a.breach(ctx, logger, engineName, attacker.PolicyAware, nAware, k, 1, cloak)
	}
	if nUnaware < k {
		a.breach(ctx, logger, engineName, attacker.PolicyUnaware, nUnaware, k, 1, cloak)
	}
	return s
}

// MaybeObserveRequest is the serving-path entry point: it audits the
// request only when the sampler selects it, and reports whether it did.
func (a *Auditor) MaybeObserveRequest(ctx context.Context, engineName string, pol *lbs.Assignment, cloak geo.Rect, k int) (RequestSample, bool) {
	a.mu.Lock()
	sampler := a.sampler
	a.mu.Unlock()
	if !sampler.Sample() {
		a.skipped.Add(1)
		return RequestSample{}, false
	}
	return a.ObserveRequest(ctx, engineName, pol, cloak, k), true
}

// observeK feeds the achieved-k value histograms, one per awareness mode.
func (a *Auditor) observeK(engineName string, aware, unaware int) {
	a.reg.ValueHistogramBounds("anon_achieved_k:"+engineName+"/"+attacker.PolicyAware.String(),
		AchievedKBounds).Observe(int64(aware))
	a.reg.ValueHistogramBounds("anon_achieved_k:"+engineName+"/"+attacker.PolicyUnaware.String(),
		AchievedKBounds).Observe(int64(unaware))
}

// breachEvent is the JSON detail payload of a KindBreach ledger event.
type breachEvent struct {
	Engine         string `json:"engine"`
	Awareness      string `json:"awareness"`
	AchievedK      int    `json:"achievedK"`
	WantK          int    `json:"wantK"`
	BreachedGroups int    `json:"breachedGroups"`
	Expected       bool   `json:"expected"`
	Cloak          string `json:"cloak"`
}

// breach records one breach event into every sink: the anon_breach
// counter, the cumulative totals, the enclosing obs span, the ledger,
// and the structured log (correlated by the context's request ID).
func (a *Auditor) breach(ctx context.Context, logger *slog.Logger, engineName string,
	aw attacker.Awareness, achieved, want, groups int, cloak geo.Rect) {
	a.reg.Counter("anon_breach:" + engineName + "/" + aw.String()).Add(int64(groups))
	a.mu.Lock()
	if aw == attacker.PolicyAware {
		a.breachAware += int64(groups)
	} else {
		a.breachUnaware += int64(groups)
	}
	a.mu.Unlock()

	expected := false
	if aw == attacker.PolicyAware && a.expect != nil && !a.expect(engineName) {
		// A k-inside engine breaching against a policy-aware attacker is
		// Proposition 3 doing what it says, not an incident.
		expected = true
	}
	if sp := obs.Current(ctx); sp != nil {
		sp.SetAttr("audit.breach", aw.String())
		sp.SetInt("audit.achievedK", int64(achieved))
	}
	// Vote the enclosing traced request interesting and pin the incident
	// to its trace in the flight recorder's event ring.
	obs.MarkCapture(ctx, flight.ReasonBreach)
	if rec := a.rec.Load(); rec != nil {
		rec.Emit(&flight.Event{
			Time: time.Now(), Kind: "breach",
			RID: RequestID(ctx), TraceID: obs.CaptureFrom(ctx).TraceID(),
			Detail: fmt.Sprintf("%s/%s achievedK=%d wantK=%d groups=%d expected=%v",
				engineName, aw, achieved, want, groups, expected),
		})
	}
	a.record(ctx, ledger.KindBreach, engineName, breachEvent{
		Engine: engineName, Awareness: aw.String(),
		AchievedK: achieved, WantK: want,
		BreachedGroups: groups, Expected: expected,
		Cloak: cloak.String(),
	})
	if logger != nil {
		logger.LogAttrs(ctx, slog.LevelWarn, "anonymity breach",
			slog.String("rid", RequestID(ctx)),
			slog.String("engine", engineName),
			slog.String("awareness", aw.String()),
			slog.Int("achievedK", achieved),
			slog.Int("wantK", want),
			slog.Int("breachedGroups", groups),
			slog.Bool("expected", expected),
			slog.String("cloak", cloak.String()),
		)
	}
}
