package audit

// White-box test of the per-cloak candidate memo's delta eviction (the
// public-surface tests live in package audit_test).

import (
	"strconv"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
)

func TestCandidateMemoDeltaEviction(t *testing.T) {
	const k = 2
	// Three well-separated pair-cloaks.
	var recs []location.Record
	var cloaks []geo.Rect
	for g := int32(0); g < 3; g++ {
		base := geo.Point{X: 100 * g, Y: 100 * g}
		recs = append(recs,
			location.Record{UserID: "u" + strconv.Itoa(int(2*g)), Loc: base},
			location.Record{UserID: "u" + strconv.Itoa(int(2*g+1)), Loc: geo.Point{X: base.X, Y: base.Y + 1}},
		)
		cloaks = append(cloaks, geo.NewRect(base.X, base.Y, base.X, base.Y+1))
	}
	db, err := location.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := lbs.NewAssignment(db, []geo.Rect{
		cloaks[0], cloaks[0], cloaks[1], cloaks[1], cloaks[2], cloaks[2],
	})
	if err != nil {
		t.Fatal(err)
	}

	a := New(metrics.NewRegistry(), Options{})
	for _, c := range cloaks {
		if aw, un := a.candidateSizes(parent, c); aw != k || un != k {
			t.Fatalf("cloak %v: %d/%d candidates, want %d/%d", c, aw, un, k, k)
		}
	}
	if a.kVer != parent.Version() || len(a.kCache) != 3 {
		t.Fatalf("memo after warm-up: ver %d (want %d), %d entries", a.kVer, parent.Version(), len(a.kCache))
	}

	// Delta: group 1 widens its cloak by one row (both users), group 2
	// user 4 moves within her cloak. Group 0 is untouched.
	wide := geo.NewRect(100, 100, 100, 102)
	moveTo := geo.Point{X: 200, Y: 201}
	child, err := parent.ApplyDelta(
		[]lbs.Move{{Index: 4, From: recs[4].Loc, To: moveTo}},
		[]lbs.CloakChange{
			{Index: 2, Old: cloaks[1], New: wide},
			{Index: 3, Old: cloaks[1], New: wide},
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	// Poison the untouched entry: if the next lookup recomputes instead of
	// hitting the memo, we'll see the true value instead of the sentinel.
	a.kCache[cloaks[0]] = [2]int{99, 99}
	if aw, un := a.candidateSizes(child, cloaks[0]); aw != 99 || un != 99 {
		t.Fatalf("untouched cloak was recomputed (%d/%d) — partial eviction not engaged", aw, un)
	}
	if a.kVer != child.Version() {
		t.Fatalf("memo generation %d, want %d", a.kVer, child.Version())
	}
	// The rewritten cloak (Old) and the move-touched cloak were evicted.
	if _, ok := a.kCache[cloaks[1]]; ok {
		t.Fatal("rewritten cloak survived eviction")
	}
	if _, ok := a.kCache[cloaks[2]]; ok {
		t.Fatal("cloak containing the move's endpoints survived eviction")
	}
	// Fresh lookups against the child recompute correct values.
	if aw, un := a.candidateSizes(child, wide); aw != k || un != k {
		t.Fatalf("new cloak: %d/%d, want %d/%d", aw, un, k, k)
	}
	if aw, un := a.candidateSizes(child, cloaks[2]); aw != k || un != k {
		t.Fatalf("move-touched cloak: %d/%d, want %d/%d", aw, un, k, k)
	}

	// A non-delta assignment (or a delta whose parent isn't the cached
	// generation) resets the whole memo.
	fresh, err := lbs.NewAssignment(child.DB().Clone(), child.Cloaks())
	if err != nil {
		t.Fatal(err)
	}
	a.kCache[wide] = [2]int{88, 88}
	if aw, un := a.candidateSizes(fresh, wide); aw != k || un != k {
		t.Fatalf("stale memo survived a full reset: %d/%d", aw, un)
	}
}
